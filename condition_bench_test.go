package smartchaindb

import (
	"strings"
	"testing"

	"smartchaindb/internal/txn"
	"smartchaindb/internal/txtype"
	"smartchaindb/internal/validate"
)

// BenchmarkBidConditionBreakdown times each condition of C_BID
// individually. Because the declarative model represents condition
// sets as data, a cost-based optimizer can measure and reorder them —
// the automatic-optimization opportunity the paper contrasts with
// opaque smart-contract code. The output shows where BID validation
// time actually goes (signature verification dominates; the capability
// subset check is an index lookup).
func BenchmarkBidConditionBreakdown(b *testing.B) {
	registry, ctx, bid, _ := buildBidScenario(b)
	ty, ok := registry.Type(txn.OpBid)
	if !ok {
		b.Fatal("BID type missing")
	}
	for _, cond := range ty.Conditions {
		cond := cond
		b.Run(cond.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := cond.Check(ctx, bid); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkConditionOrderingEffect demonstrates the optimization the
// introspection enables: against an invalid transaction, evaluating
// the cheap structural conditions first (the registered order) rejects
// far faster than a worst-case order that runs signature verification
// before noticing the transaction is a duplicate.
func BenchmarkConditionOrderingEffect(b *testing.B) {
	registry, ctx, bid, _ := buildBidScenario(b)
	// Make the bid invalid in the cheapest possible way: submit it as a
	// duplicate of a committed transaction.
	if err := registry.Validate(ctx, bid); err != nil {
		b.Fatal(err)
	}
	st, okState := ctx.State.(interface {
		CommitTx(*txn.Transaction) error
	})
	if !okState {
		b.Fatal("state lacks CommitTx")
	}
	if err := st.CommitTx(bid); err != nil {
		b.Fatal(err)
	}
	ty, _ := registry.Type(txn.OpBid)

	b.Run("registered-order", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := ty.Validate(ctx, bid); err == nil {
				b.Fatal("duplicate should fail")
			}
		}
	})
	b.Run("signatures-first", func(b *testing.B) {
		reversed := &txtype.Type{Op: ty.Op}
		// Move the duplicate check last: every evaluation now pays for
		// signature verification before discovering the duplicate.
		var dup txtype.Condition
		for _, c := range ty.Conditions {
			if strings.HasSuffix(c.Name, ".dup") {
				dup = c
				continue
			}
			reversed.Conditions = append(reversed.Conditions, c)
		}
		reversed.Conditions = append(reversed.Conditions, dup)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := reversed.Validate(ctx, bid); err == nil {
				b.Fatal("duplicate should fail")
			}
		}
	})
}

// Compile-time check that the validate registry exposes what the
// benchmarks introspect.
var _ = validate.NewRegistry
