// Analytics: the business-intelligence queries of §2.1 that smart
// contracts cannot serve, run against a marketplace with several
// concurrent auctions: open-request discovery by capability, per-account
// bid history, auction outcomes, and operation rollups — all
// index-backed document queries against the chain's collections.
//
//	go run ./examples/analytics
package main

import (
	"fmt"
	"log"
	"sort"

	"smartchaindb/internal/query"
	"smartchaindb/internal/server"
	"smartchaindb/internal/txn"
	"smartchaindb/internal/workload"
)

func main() {
	node := server.NewNode(server.Config{ReservedSeed: 21})
	gen := workload.NewGenerator(77, node.Escrow())

	apply := func(txs ...*txn.Transaction) {
		for _, t := range txs {
			if err := node.Apply(t); err != nil {
				log.Fatalf("apply %s: %v", t.Operation, err)
			}
		}
	}

	// Three auctions: two settle, one stays open.
	specs := []struct {
		caps    []string
		bidders int
		settle  bool
	}{
		{[]string{"3d-printing"}, 4, true},
		{[]string{"cnc-milling", "anodizing"}, 3, true},
		{[]string{"3d-printing", "injection-molding"}, 5, false},
	}
	groups := make([]*workload.AuctionGroup, 0, len(specs))
	base := 0
	for _, s := range specs {
		g := gen.NewAuctionGroup(base, workload.AuctionGroupSpec{
			BiddersPerAuction: s.bidders,
			Capabilities:      s.caps,
		})
		base += s.bidders + 1
		apply(g.Request)
		apply(g.Creates...)
		apply(g.Bids...)
		if s.settle {
			apply(g.Accept)
		}
		groups = append(groups, g)
	}

	q := query.New(node.State())

	fmt.Println("Open service requests by capability (provider discovery):")
	for _, cap := range []string{"3d-printing", "cnc-milling", "injection-molding"} {
		open := q.OpenRequestsWithCapability(cap)
		fmt.Printf("  %-18s %d open request(s)\n", cap, len(open))
	}

	fmt.Println("\nAuction outcomes:")
	for i, g := range groups {
		if out, ok := q.AuctionOutcome(g.Request.ID); ok {
			fmt.Printf("  auction %d: winner %s..., %d returns, settled=%v\n",
				i+1, out.Winner[:10], len(out.Losers), out.Settled)
		} else {
			fmt.Printf("  auction %d: still open with %d bids\n",
				i+1, len(q.BidsForRequest(g.Request.ID)))
		}
	}

	fmt.Println("\nBid history for one supplier:")
	supplier := groups[0].Bidders[0]
	for _, bid := range q.BidsByAccount(supplier.PublicBase58()) {
		fmt.Printf("  bid %s on request %s\n", bid.ID[:12]+"...", bid.Refs[0][:12]+"...")
	}

	fmt.Println("\nAssets advertising 3d-printing capability:")
	assets := q.AssetsWithCapability("3d-printing")
	fmt.Printf("  %d assets registered\n", len(assets))

	fmt.Println("\nChain composition (operation rollup):")
	counts := q.OperationCounts()
	ops := make([]string, 0, len(counts))
	for op := range counts {
		ops = append(ops, op)
	}
	sort.Strings(ops)
	total := 0
	for _, op := range ops {
		fmt.Printf("  %-12s %4d\n", op, counts[op])
		total += counts[op]
	}
	fmt.Printf("  %-12s %4d\n", "TOTAL", total)
}
