// Sealedbid-recovery: the §4.2.1 failure drill. A sealed-bid auction's
// ACCEPT_BID commits non-locking; the node then "crashes" between
// logging the recovery record and draining the return queue, so no
// child transaction reaches the network. On restart, the recovery log
// replays the pending children and every escrowed bid settles — the
// eventual-commit guarantee of nested blockchain transactions.
//
//	go run ./examples/sealedbid-recovery
package main

import (
	"fmt"
	"log"

	"smartchaindb/internal/keys"
	"smartchaindb/internal/ledger"
	"smartchaindb/internal/nested"
	"smartchaindb/internal/txn"
)

func main() {
	state := ledger.NewState()
	reserved := keys.NewReservedWithDefaults(9)
	escrow := reserved.Escrow()
	requester := keys.MustGenerate()

	// Sealed bids: three suppliers lock assets into escrow.
	fmt.Println("Setting up a sealed-bid auction with 3 bids in escrow:")
	rfq := txn.NewRequest(requester.PublicBase58(), map[string]any{"capabilities": []any{"forging"}}, nil)
	must(txn.Sign(rfq, requester))
	must(state.CommitTx(rfq))
	var bidders []*keys.KeyPair
	var bids []*txn.Transaction
	for i := 0; i < 3; i++ {
		kp := keys.MustGenerate()
		bidders = append(bidders, kp)
		asset := txn.NewCreate(kp.PublicBase58(), map[string]any{"capabilities": []any{"forging"}, "n": i}, 1, nil)
		must(txn.Sign(asset, kp))
		must(state.CommitTx(asset))
		bid := txn.NewBid(kp.PublicBase58(), asset.ID,
			txn.Spend{Ref: txn.OutputRef{TxID: asset.ID, Index: 0}, Owners: []string{kp.PublicBase58()}},
			1, escrow.PublicBase58(), rfq.ID, nil)
		must(txn.Sign(bid, kp))
		must(state.CommitTx(bid))
		bids = append(bids, bid)
		fmt.Printf("  bid %d escrowed (%s)\n", i+1, bid.ID[:12]+"...")
	}

	// The requester accepts bid 1. Non-locking: the parent commits
	// immediately.
	accept, err := txn.NewAcceptBid(requester.PublicBase58(), escrow.PublicBase58(), rfq.ID, bids[0], bids[1:], nil)
	must(err)
	must(txn.Sign(accept, escrow, requester))
	must(state.CommitTx(accept))
	fmt.Printf("\nACCEPT_BID committed (non-locking): %s\n", accept.ID[:12]+"...")

	// The node logs the children... and crashes before submitting any.
	crashed := nested.NewEngine(state, escrow, func(*txn.Transaction) {
		log.Fatal("must not submit: the node is about to crash")
	})
	must(crashed.OnParentCommitted(accept, requester.PublicBase58()))
	fmt.Printf("recovery log written: %d children pending\n", crashed.QueueLen())
	fmt.Println("*** node crashes before draining the return queue ***")

	// Immutability means the committed parent cannot be undone, and the
	// escrowed outputs are frozen — but the recovery log survives.
	rec, err := state.RecoveryFor(accept.ID)
	must(err)
	fmt.Printf("after crash: recovery status=%s, pending=%d, committed children=%d\n",
		rec.Status, len(rec.Pending), len(rec.Done))

	// Restart: a fresh engine replays the log and submits the children.
	fmt.Println("\n*** node restarts ***")
	var delivered []*txn.Transaction
	restarted := nested.NewEngine(state, escrow, func(child *txn.Transaction) {
		delivered = append(delivered, child)
	})
	replayed := restarted.Recover()
	fmt.Printf("recovery replayed %d pending children\n", replayed)
	restarted.Drain()
	for _, child := range delivered {
		must(state.CommitTx(child))
		restarted.OnChildCommitted(child)
		fmt.Printf("  child %s (%s) committed\n", child.ID[:12]+"...", child.Operation)
	}

	rec, err = state.RecoveryFor(accept.ID)
	must(err)
	fmt.Printf("\nfinal recovery status: %s\n", rec.Status)
	fmt.Printf("requester owns winning asset: %v\n",
		state.Balance(requester.PublicBase58(), mustAsset(state, bids[0])) == 1)
	for i, kp := range bidders[1:] {
		fmt.Printf("losing bidder %d refunded:     %v\n", i+2,
			state.Balance(kp.PublicBase58(), mustAsset(state, bids[i+1])) == 1)
	}

	// Replaying recovery again is harmless: children are deterministic
	// and already spent outputs are skipped.
	if n := restarted.Recover(); n != 0 {
		log.Fatalf("second recovery re-enqueued %d children, want 0", n)
	}
	fmt.Println("second recovery pass: nothing to do (idempotent)")
}

func mustAsset(state *ledger.State, bid *txn.Transaction) string {
	t, err := state.GetTx(bid.ID)
	if err != nil {
		log.Fatal(err)
	}
	return t.AssetID()
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
