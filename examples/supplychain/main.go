// Supplychain: asset provenance and workflow tracking across a parts
// supply chain — the queryability story of §2.1. A component is minted
// by a foundry, transferred through a machining shop and a distributor
// to an OEM; every hop is a native TRANSFER, so the full custody chain
// is a document query, not a smart-contract storage archaeology dig.
//
//	go run ./examples/supplychain
package main

import (
	"fmt"
	"log"
	"strings"

	"smartchaindb/internal/keys"
	"smartchaindb/internal/query"
	"smartchaindb/internal/server"
	"smartchaindb/internal/txn"
	"smartchaindb/internal/workflow"
)

func main() {
	node := server.NewNode(server.Config{ReservedSeed: 3})

	foundry := keys.MustGenerate()
	machinist := keys.MustGenerate()
	distributor := keys.MustGenerate()
	oem := keys.MustGenerate()
	parties := map[string]string{
		foundry.PublicBase58():     "foundry",
		machinist.PublicBase58():   "machinist",
		distributor.PublicBase58(): "distributor",
		oem.PublicBase58():         "oem",
	}

	// The foundry mints a batch of 1000 castings.
	create := txn.NewCreate(foundry.PublicBase58(), map[string]any{
		"part":         "turbine-casting-TC4",
		"alloy":        "Ti-6Al-4V",
		"capabilities": []any{"casting"},
	}, 1000, map[string]any{"lot": "L-2026-117"})
	must(txn.Sign(create, foundry))
	must(node.Apply(create))
	fmt.Printf("foundry minted 1000 castings (asset %s)\n", create.ID[:12]+"...")

	// Each hop spends the previous output; divisible shares model
	// partial shipments.
	hop := func(fromKP *keys.KeyPair, prev *txn.Transaction, prevIdx int, to *keys.KeyPair, amount, change uint64) *txn.Transaction {
		outs := []*txn.Output{{PublicKeys: []string{to.PublicBase58()}, Amount: amount, PrevOwners: []string{fromKP.PublicBase58()}}}
		if change > 0 {
			outs = append(outs, &txn.Output{PublicKeys: []string{fromKP.PublicBase58()}, Amount: change})
		}
		tr := txn.NewTransfer(create.ID,
			[]txn.Spend{{Ref: txn.OutputRef{TxID: prev.ID, Index: prevIdx}, Owners: []string{fromKP.PublicBase58()}}},
			outs, map[string]any{"shipment": fmt.Sprintf("%s->%s", parties[fromKP.PublicBase58()], parties[to.PublicBase58()])})
		must(txn.Sign(tr, fromKP))
		must(node.Apply(tr))
		fmt.Printf("%-12s shipped %4d units to %s\n", parties[fromKP.PublicBase58()], amount, parties[to.PublicBase58()])
		return tr
	}

	t1 := hop(foundry, create, 0, machinist, 600, 400) // 600 to machining, 400 kept
	t2 := hop(machinist, t1, 0, distributor, 600, 0)   // all machined units onward
	t3 := hop(distributor, t2, 0, oem, 250, 350)       // partial delivery to the OEM

	// Provenance: who touched the asset, in order.
	q := query.New(node.State())
	fmt.Println("\nProvenance of the asset (chain query, no contract code):")
	for _, step := range q.AssetProvenance(create.ID) {
		names := make([]string, 0, len(step.Owners))
		for _, o := range step.Owners {
			if n, ok := parties[o]; ok {
				names = append(names, n)
			}
		}
		fmt.Printf("  %-9s %s  owners: %s\n", step.Operation, step.TxID[:12]+"...", strings.Join(names, ", "))
	}

	// Current holders of unspent shares.
	fmt.Println("\nCurrent holders:")
	for owner, amount := range q.HolderOf(create.ID) {
		name := parties[owner]
		if name == "" {
			name = owner[:8]
		}
		fmt.Printf("  %-12s %4d units\n", name, amount)
	}

	// The op path conforms to the simple-transfer workflow spec.
	ops, _, err := workflow.Trace(node.State(), t3.ID)
	must(err)
	if err := workflow.SimpleTransfer().ValidSequence(ops); err != nil {
		log.Fatalf("workflow violation: %v", err)
	}
	fmt.Printf("\nworkflow %v validates against the simple-transfer spec\n", ops)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
