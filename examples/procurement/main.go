// Procurement: the paper's motivating scenario — a manufacturing
// reverse auction run entirely with native declarative transactions
// through the client driver, against a 4-validator cluster. A buyer
// requests 3-D printing capacity, three suppliers bid with their
// capability assets, the buyer accepts one bid, and the nested
// transaction machinery settles the escrow automatically.
//
//	go run ./examples/procurement
package main

import (
	"fmt"
	"log"
	"time"

	"smartchaindb/internal/consensus"
	"smartchaindb/internal/driver"
	"smartchaindb/internal/keys"
	"smartchaindb/internal/query"
	"smartchaindb/internal/server"
	"smartchaindb/internal/simclock"
	"smartchaindb/internal/txn"
)

// simClock adapts the cluster's virtual clock to the driver.
type simClock struct{ s *simclock.Scheduler }

func (c simClock) After(d time.Duration, fn func()) { c.s.After(d, fn) }

func main() {
	cluster := server.NewCluster(server.ClusterConfig{
		Nodes: 4, Seed: 11, BlockInterval: 70 * time.Millisecond, MaxBlockTxs: 8, Pipelined: true,
	})
	escrow := cluster.ServerNode(0).Escrow()

	// Drivers submit into the cluster and hear about commits through
	// the cluster's commit hook.
	var drivers []*driver.Driver
	transport := driver.TransportFunc(func(t *txn.Transaction) error {
		cluster.Submit(t)
		return nil
	})
	newDriver := func(kp *keys.KeyPair) *driver.Driver {
		d, err := driver.New(driver.Config{
			Keypair:      kp,
			EscrowPub:    escrow.PublicBase58(),
			EscrowSigner: escrow,
			Transport:    transport,
			Clock:        simClock{cluster.Sched()},
			Timeout:      2 * time.Second,
		})
		if err != nil {
			log.Fatal(err)
		}
		drivers = append(drivers, d)
		return d
	}
	cluster.OnCommit(func(tx consensus.Tx, _ time.Duration) {
		for _, d := range drivers {
			d.NotifyCommitted(tx.Hash())
		}
	})

	buyer := newDriver(keys.MustGenerate())
	suppliers := []*driver.Driver{
		newDriver(keys.MustGenerate()),
		newDriver(keys.MustGenerate()),
		newDriver(keys.MustGenerate()),
	}

	// Submit and wait by running the simulation until the callback.
	waitCommit := func(label string, d *driver.Driver, t *txn.Transaction) {
		done := false
		if err := d.Submit(t, driver.Sync, func(r driver.Result) {
			if r.Status != driver.StatusCommitted {
				log.Fatalf("%s: %v (%v)", label, r.Status, r.Err)
			}
			done = true
		}); err != nil {
			log.Fatal(err)
		}
		for !done {
			if !cluster.Sched().Step() {
				log.Fatalf("%s: simulation drained before commit", label)
			}
		}
		fmt.Printf("  %-10s %s committed\n", label, t.ID[:12]+"...")
	}

	fmt.Println("Buyer publishes a request for 500 brackets (3-D printing + anodizing):")
	rfq, err := buyer.PrepareRequest(map[string]any{
		"capabilities": []any{"3d-printing", "anodizing"},
		"item":         "bracket-B7",
		"quantity":     500,
		"deadline":     "2026-08-01",
	}, nil)
	if err != nil {
		log.Fatal(err)
	}
	waitCommit("REQUEST", buyer, rfq)

	fmt.Println("\nSuppliers register capability assets and bid:")
	bids := make([]*txn.Transaction, 0, len(suppliers))
	for i, sup := range suppliers {
		asset, err := sup.PrepareCreate(map[string]any{
			"capabilities": []any{"3d-printing", "anodizing", "cnc-milling"},
			"plant":        fmt.Sprintf("plant-%d", i+1),
			"certified":    true,
		}, 1, nil)
		if err != nil {
			log.Fatal(err)
		}
		waitCommit("CREATE", sup, asset)
		bid, err := sup.PrepareBid(asset.ID,
			txn.Spend{Ref: txn.OutputRef{TxID: asset.ID, Index: 0}, Owners: []string{sup.Address()}},
			1, rfq.ID, map[string]any{"price": 900 + 50*i, "lead_days": 10 + i})
		if err != nil {
			log.Fatal(err)
		}
		waitCommit("BID", sup, bid)
		bids = append(bids, bid)
	}

	fmt.Println("\nBuyer accepts the cheapest bid; escrow settles automatically:")
	accept, err := buyer.PrepareAcceptBid(rfq.ID, bids[0], bids[1:], nil)
	if err != nil {
		log.Fatal(err)
	}
	waitCommit("ACCEPT_BID", buyer, accept)
	// Let the child TRANSFER/RETURNs commit.
	deadline := cluster.Sched().Now() + 10*time.Second
	for cluster.Sched().Now() < deadline && cluster.Sched().Step() {
	}

	st := cluster.ServerNode(0).State()
	q := query.New(st)
	outcome, ok := q.AuctionOutcome(rfq.ID)
	if !ok {
		log.Fatal("no auction outcome")
	}
	fmt.Printf("\nOutcome: winner %s..., %d losing bids returned, settled=%v\n",
		outcome.Winner[:12], len(outcome.Losers), outcome.Settled)
	fmt.Printf("Buyer now holds the winning capability asset: %v\n",
		st.Balance(buyer.Address(), mustBidAsset(st, bids[0])) == 1)
}

func mustBidAsset(st interface {
	GetTx(string) (*txn.Transaction, error)
}, bid *txn.Transaction) string {
	t, err := st.GetTx(bid.ID)
	if err != nil {
		log.Fatal(err)
	}
	return t.AssetID()
}
