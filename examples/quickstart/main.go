// Quickstart: mint an asset, transfer it, and query the chain — the
// declarative equivalent of the "hello world" token flow, on a single
// standalone SmartchainDB node (no consensus needed).
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"smartchaindb/internal/keys"
	"smartchaindb/internal/server"
	"smartchaindb/internal/txn"
)

func main() {
	// A standalone node validates and commits synchronously.
	node := server.NewNode(server.Config{ReservedSeed: 1})

	alice := keys.MustGenerate()
	bob := keys.MustGenerate()

	// CREATE: alice mints 100 shares of a new asset. The asset's data
	// document is schema-validated and queryable on chain.
	create := txn.NewCreate(alice.PublicBase58(), map[string]any{
		"name":         "industrial-widget",
		"capabilities": []any{"cnc-milling"},
	}, 100, map[string]any{"batch": "2026-06"})
	if err := txn.Sign(create, alice); err != nil {
		log.Fatal(err)
	}
	if err := node.Apply(create); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("CREATE committed: asset %s, alice holds %d shares\n",
		create.ID[:12]+"...", node.State().Balance(alice.PublicBase58(), create.ID))

	// TRANSFER: 40 shares to bob, 60 back to alice (divisible assets).
	transfer := txn.NewTransfer(create.ID,
		[]txn.Spend{{Ref: txn.OutputRef{TxID: create.ID, Index: 0}, Owners: []string{alice.PublicBase58()}}},
		[]*txn.Output{
			{PublicKeys: []string{bob.PublicBase58()}, Amount: 40},
			{PublicKeys: []string{alice.PublicBase58()}, Amount: 60},
		}, nil)
	if err := txn.Sign(transfer, alice); err != nil {
		log.Fatal(err)
	}
	if err := node.Apply(transfer); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("TRANSFER committed: alice %d, bob %d\n",
		node.State().Balance(alice.PublicBase58(), create.ID),
		node.State().Balance(bob.PublicBase58(), create.ID))

	// Double spends are rejected by the native validation semantics —
	// no user code required.
	doubleSpend := txn.NewTransfer(create.ID,
		[]txn.Spend{{Ref: txn.OutputRef{TxID: create.ID, Index: 0}, Owners: []string{alice.PublicBase58()}}},
		[]*txn.Output{{PublicKeys: []string{alice.PublicBase58()}, Amount: 100}}, nil)
	if err := txn.Sign(doubleSpend, alice); err != nil {
		log.Fatal(err)
	}
	if err := node.Apply(doubleSpend); err != nil {
		fmt.Printf("double spend rejected: %v\n", err)
	} else {
		log.Fatal("double spend was not rejected!")
	}
}
