module smartchaindb

go 1.24
