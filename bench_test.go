// Package smartchaindb's root benchmark suite regenerates every table
// and figure of the paper's evaluation:
//
//	BenchmarkFig2TransferNativeVsContract  — Figure 2
//	BenchmarkFig7aLatencyRequestCreate     — Figure 7a
//	BenchmarkFig7bLatencyBidAccept         — Figure 7b
//	BenchmarkFig7cThroughput               — Figure 7c
//	BenchmarkFig8aScdbClusterLatency       — Figure 8a
//	BenchmarkFig8bEthClusterLatency        — Figure 8b
//	BenchmarkFig8cClusterThroughput        — Figure 8c
//	BenchmarkUsabilityLoC                  — §5.2.2 usability
//
// Latencies and throughputs are measured in simulated time on the
// deterministic cluster simulators and reported through custom metrics
// (sim-ms, sim-tps); wall-clock ns/op only reflects how fast the
// simulation executes. `go run ./cmd/scdb-bench` prints the same
// numbers as paper-style tables.
//
// Ablation benchmarks quantify the design decisions DESIGN.md calls
// out: block pipelining and non-locking nested commits.
package smartchaindb

import (
	"fmt"
	"testing"
	"time"

	"smartchaindb/internal/bench"
	"smartchaindb/internal/consensus"
	"smartchaindb/internal/keys"
	"smartchaindb/internal/ledger"
	"smartchaindb/internal/nested"
	"smartchaindb/internal/schema"
	"smartchaindb/internal/server"
	"smartchaindb/internal/txn"
	"smartchaindb/internal/txtype"
	"smartchaindb/internal/validate"
	"smartchaindb/internal/workload"
)

var benchScale = bench.Fig7Scale{Auctions: 2, Bidders: 5}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// BenchmarkFig2TransferNativeVsContract regenerates Figure 2: gas and
// commit latency of the native TRANSFER vs its contract equivalent.
func BenchmarkFig2TransferNativeVsContract(b *testing.B) {
	var last bench.Fig2Result
	for i := 0; i < b.N; i++ {
		r, err := bench.RunFig2(int64(i))
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(float64(last.NativeGas), "native-gas")
	b.ReportMetric(float64(last.ContractGas), "contract-gas")
	b.ReportMetric(last.GasOverheadPct, "gas-overhead-%")
	b.ReportMetric(ms(last.NativeLatency), "native-sim-ms")
	b.ReportMetric(ms(last.ContractLatency), "contract-sim-ms")
}

// BenchmarkFig7aLatencyRequestCreate regenerates Figure 7a: REQUEST and
// CREATE latency at the smallest and largest payload sizes.
func BenchmarkFig7aLatencyRequestCreate(b *testing.B) {
	for _, size := range []int{112, 1740} {
		b.Run(fmt.Sprintf("size=%dB", size), func(b *testing.B) {
			var scdb bench.SCDBResult
			var eth bench.ETHResult
			for i := 0; i < b.N; i++ {
				scdb = bench.RunSCDB(bench.SCDBParams{
					PayloadBytes: size, Auctions: benchScale.Auctions, Bidders: benchScale.Bidders, Seed: int64(i),
				})
				var err error
				eth, err = bench.RunETH(bench.ETHParams{
					PayloadBytes: size, Auctions: benchScale.Auctions, Bidders: benchScale.Bidders, Seed: int64(i),
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(ms(scdb.PerOp["CREATE"].Mean), "scdb-create-sim-ms")
			b.ReportMetric(ms(eth.PerOp["CREATE"].Mean), "eth-create-sim-ms")
			b.ReportMetric(ms(scdb.PerOp["REQUEST"].Mean), "scdb-request-sim-ms")
			b.ReportMetric(ms(eth.PerOp["REQUEST"].Mean), "eth-request-sim-ms")
		})
	}
}

// BenchmarkFig7bLatencyBidAccept regenerates Figure 7b: BID and
// ACCEPT_BID latency across payload sizes.
func BenchmarkFig7bLatencyBidAccept(b *testing.B) {
	for _, size := range []int{112, 1740} {
		b.Run(fmt.Sprintf("size=%dB", size), func(b *testing.B) {
			var scdb bench.SCDBResult
			var eth bench.ETHResult
			for i := 0; i < b.N; i++ {
				scdb = bench.RunSCDB(bench.SCDBParams{
					PayloadBytes: size, Auctions: benchScale.Auctions, Bidders: benchScale.Bidders, Seed: int64(i),
				})
				var err error
				eth, err = bench.RunETH(bench.ETHParams{
					PayloadBytes: size, Auctions: benchScale.Auctions, Bidders: benchScale.Bidders, Seed: int64(i),
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(ms(scdb.PerOp["BID"].Mean), "scdb-bid-sim-ms")
			b.ReportMetric(ms(eth.PerOp["BID"].Mean), "eth-bid-sim-ms")
			b.ReportMetric(ms(scdb.PerOp["ACCEPT_BID"].Mean), "scdb-accept-sim-ms")
			b.ReportMetric(ms(eth.PerOp["ACCEPT_BID"].Mean), "eth-accept-sim-ms")
			if scdbBid := scdb.PerOp["BID"].Mean; scdbBid > 0 {
				b.ReportMetric(float64(eth.PerOp["BID"].Mean)/float64(scdbBid), "bid-latency-ratio")
			}
		})
	}
}

// BenchmarkFig7cThroughput regenerates Figure 7c: throughput vs
// transaction size for both systems.
func BenchmarkFig7cThroughput(b *testing.B) {
	for _, size := range []int{112, 1740} {
		b.Run(fmt.Sprintf("size=%dB", size), func(b *testing.B) {
			var scdb bench.SCDBResult
			var eth bench.ETHResult
			for i := 0; i < b.N; i++ {
				scdb = bench.RunSCDB(bench.SCDBParams{
					PayloadBytes: size, Auctions: benchScale.Auctions, Bidders: benchScale.Bidders, Seed: int64(i),
				})
				var err error
				eth, err = bench.RunETH(bench.ETHParams{
					PayloadBytes: size, Auctions: benchScale.Auctions, Bidders: benchScale.Bidders, Seed: int64(i),
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(scdb.Throughput, "scdb-sim-tps")
			b.ReportMetric(eth.Throughput, "eth-sim-tps")
		})
	}
}

// BenchmarkFig8aScdbClusterLatency regenerates Figure 8a: SmartchainDB
// latency across validator counts at the fixed 1.09 KB payload.
func BenchmarkFig8aScdbClusterLatency(b *testing.B) {
	for _, nodes := range bench.ClusterSizes {
		b.Run(fmt.Sprintf("nodes=%d", nodes), func(b *testing.B) {
			var res bench.SCDBResult
			for i := 0; i < b.N; i++ {
				res = bench.RunSCDB(bench.SCDBParams{
					Nodes: nodes, PayloadBytes: bench.Fig8PayloadBytes,
					Auctions: benchScale.Auctions, Bidders: benchScale.Bidders, Seed: int64(i),
				})
			}
			for _, op := range []string{"CREATE", "REQUEST", "BID", "ACCEPT_BID"} {
				b.ReportMetric(ms(res.PerOp[op].Mean), "scdb-"+op+"-sim-ms")
			}
		})
	}
}

// BenchmarkFig8bEthClusterLatency regenerates Figure 8b: ETH-SC latency
// across validator counts.
func BenchmarkFig8bEthClusterLatency(b *testing.B) {
	for _, nodes := range []int{4, 16} {
		b.Run(fmt.Sprintf("nodes=%d", nodes), func(b *testing.B) {
			var res bench.ETHResult
			for i := 0; i < b.N; i++ {
				var err error
				res, err = bench.RunETH(bench.ETHParams{
					Nodes: nodes, PayloadBytes: bench.Fig8PayloadBytes,
					Auctions: benchScale.Auctions, Bidders: benchScale.Bidders, Seed: int64(i),
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			for _, op := range []string{"CREATE", "REQUEST", "BID", "ACCEPT_BID"} {
				b.ReportMetric(ms(res.PerOp[op].Mean), "eth-"+op+"-sim-ms")
			}
		})
	}
}

// BenchmarkFig8cClusterThroughput regenerates Figure 8c: throughput vs
// cluster size for both systems.
func BenchmarkFig8cClusterThroughput(b *testing.B) {
	for _, nodes := range []int{4, 32} {
		b.Run(fmt.Sprintf("nodes=%d", nodes), func(b *testing.B) {
			var scdb bench.SCDBResult
			var eth bench.ETHResult
			for i := 0; i < b.N; i++ {
				scdb = bench.RunSCDB(bench.SCDBParams{
					Nodes: nodes, PayloadBytes: bench.Fig8PayloadBytes,
					Auctions: benchScale.Auctions, Bidders: benchScale.Bidders, Seed: int64(i),
				})
				var err error
				eth, err = bench.RunETH(bench.ETHParams{
					Nodes: nodes, PayloadBytes: bench.Fig8PayloadBytes,
					Auctions: benchScale.Auctions, Bidders: benchScale.Bidders, Seed: int64(i),
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(scdb.Throughput, "scdb-sim-tps")
			b.ReportMetric(eth.Throughput, "eth-sim-tps")
		})
	}
}

// BenchmarkUsabilityLoC regenerates the §5.2.2 usability comparison.
func BenchmarkUsabilityLoC(b *testing.B) {
	var res bench.UsabilityResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = bench.RunUsability()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.ContractLines), "contract-loc")
	b.ReportMetric(float64(res.DeclarativeLines), "declarative-loc")
}

// --- Ablations --------------------------------------------------------

// BenchmarkAblationPipelining quantifies the throughput effect of
// BigchainDB-style block pipelining (DESIGN.md decision 2).
func BenchmarkAblationPipelining(b *testing.B) {
	for _, pipelined := range []bool{false, true} {
		b.Run(fmt.Sprintf("pipelined=%t", pipelined), func(b *testing.B) {
			var tps float64
			for i := 0; i < b.N; i++ {
				cluster := server.NewCluster(server.ClusterConfig{
					Nodes: 4, Seed: int64(i), BlockInterval: 50 * time.Millisecond,
					MaxBlockTxs: 8, Pipelined: pipelined,
				})
				gen := workload.NewGenerator(int64(i), cluster.ServerNode(0).Escrow())
				at := time.Duration(0)
				n := 0
				for g := 0; g < 4; g++ {
					grp := gen.NewAuctionGroup(g*10, workload.AuctionGroupSpec{BiddersPerAuction: 5})
					cluster.SubmitAt(at, grp.Request)
					n++
					for _, c := range grp.Creates {
						at += time.Millisecond
						cluster.SubmitAt(at, c)
						n++
					}
				}
				cluster.RunUntilCommitted(n, time.Hour)
				tps = cluster.Summarize().Throughput
			}
			b.ReportMetric(tps, "sim-tps")
		})
	}
}

// BenchmarkAblationNestedLockingVsNonLocking compares the locking
// nested-commit strategy against the non-locking pipeline (DESIGN.md
// decision 1), measuring how long the parent's commit is exposed.
func BenchmarkAblationNestedLockingVsNonLocking(b *testing.B) {
	setup := func(i int) (*ledger.State, *keys.KeyPair, *keys.KeyPair, *txn.Transaction) {
		state := ledger.NewState()
		escrow := keys.DeterministicKeyPair(int64(i)*100 + 1)
		requester := keys.DeterministicKeyPair(int64(i)*100 + 2)
		rfq := txn.NewRequest(requester.PublicBase58(), map[string]any{"capabilities": []any{"c"}, "i": i}, nil)
		if err := txn.Sign(rfq, requester); err != nil {
			b.Fatal(err)
		}
		if err := state.CommitTx(rfq); err != nil {
			b.Fatal(err)
		}
		var bids []*txn.Transaction
		for k := 0; k < 10; k++ {
			bidder := keys.DeterministicKeyPair(int64(i)*100 + 10 + int64(k))
			asset := txn.NewCreate(bidder.PublicBase58(), map[string]any{"capabilities": []any{"c"}, "k": k, "i": i}, 1, nil)
			if err := txn.Sign(asset, bidder); err != nil {
				b.Fatal(err)
			}
			if err := state.CommitTx(asset); err != nil {
				b.Fatal(err)
			}
			bid := txn.NewBid(bidder.PublicBase58(), asset.ID,
				txn.Spend{Ref: txn.OutputRef{TxID: asset.ID, Index: 0}, Owners: []string{bidder.PublicBase58()}},
				1, escrow.PublicBase58(), rfq.ID, nil)
			if err := txn.Sign(bid, bidder); err != nil {
				b.Fatal(err)
			}
			if err := state.CommitTx(bid); err != nil {
				b.Fatal(err)
			}
			bids = append(bids, bid)
		}
		accept, err := txn.NewAcceptBid(requester.PublicBase58(), escrow.PublicBase58(), rfq.ID, bids[0], bids[1:], nil)
		if err != nil {
			b.Fatal(err)
		}
		if err := txn.Sign(accept, escrow, requester); err != nil {
			b.Fatal(err)
		}
		return state, escrow, requester, accept
	}
	b.Run("locking", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			state, escrow, requester, accept := setup(i)
			if _, err := nested.LockingCommit(state, escrow, accept, requester.PublicBase58()); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("nonlocking-parent-only", func(b *testing.B) {
		// The parent commit alone: the latency the client observes
		// before the non-locking engine finishes children in background.
		for i := 0; i < b.N; i++ {
			state, _, _, accept := setup(i)
			if err := state.CommitTx(accept); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- Micro-benchmarks on the validation hot path ----------------------

func buildBidScenario(b *testing.B) (*txtype.Registry, *txtype.Context, *txn.Transaction, *schema.Registry) {
	b.Helper()
	state := ledger.NewState()
	reserved := keys.NewReservedWithDefaults(1)
	escrow := reserved.Escrow()
	requester := keys.MustGenerate()
	bidder := keys.MustGenerate()
	rfq := txn.NewRequest(requester.PublicBase58(), map[string]any{"capabilities": []any{"cnc", "3d"}}, nil)
	if err := txn.Sign(rfq, requester); err != nil {
		b.Fatal(err)
	}
	if err := state.CommitTx(rfq); err != nil {
		b.Fatal(err)
	}
	asset := txn.NewCreate(bidder.PublicBase58(), map[string]any{"capabilities": []any{"cnc", "3d", "laser"}}, 1, nil)
	if err := txn.Sign(asset, bidder); err != nil {
		b.Fatal(err)
	}
	if err := state.CommitTx(asset); err != nil {
		b.Fatal(err)
	}
	bid := txn.NewBid(bidder.PublicBase58(), asset.ID,
		txn.Spend{Ref: txn.OutputRef{TxID: asset.ID, Index: 0}, Owners: []string{bidder.PublicBase58()}},
		1, escrow.PublicBase58(), rfq.ID, map[string]any{"price": 100})
	if err := txn.Sign(bid, bidder); err != nil {
		b.Fatal(err)
	}
	ctx := &txtype.Context{State: state, Reserved: reserved}
	return validate.NewRegistry(), ctx, bid, schema.MustNewRegistry()
}

// BenchmarkSchemaValidateBid measures Algorithm 1 on a BID payload.
func BenchmarkSchemaValidateBid(b *testing.B) {
	_, _, bid, schemas := buildBidScenario(b)
	doc := bid.ToDoc()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := schemas.ValidateDoc(doc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSemanticValidateBid measures Algorithm 2 (the full C_BID
// condition set) against committed state.
func BenchmarkSemanticValidateBid(b *testing.B) {
	registry, ctx, bid, _ := buildBidScenario(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := registry.Validate(ctx, bid); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCanonicalSerialize measures canonical JSON rendering, the
// basis of transaction identity.
func BenchmarkCanonicalSerialize(b *testing.B) {
	_, _, bid, _ := buildBidScenario(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = bid.MarshalCanonical()
	}
}

// BenchmarkSignAndVerify measures transaction signing plus fulfillment
// verification.
func BenchmarkSignAndVerify(b *testing.B) {
	kp := keys.MustGenerate()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tx := txn.NewCreate(kp.PublicBase58(), map[string]any{"i": i}, 1, nil)
		if err := txn.Sign(tx, kp); err != nil {
			b.Fatal(err)
		}
		if err := txn.VerifyFulfillments(tx); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkConsensusCommitPath measures end-to-end simulated commits
// through the 4-node cluster per wall-clock second.
func BenchmarkConsensusCommitPath(b *testing.B) {
	apps := 0
	_ = apps
	cluster := consensus.NewCluster(consensus.Config{Nodes: 4, Seed: 1}, func(int) consensus.App {
		return nopApp{}
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cluster.SubmitAt(cluster.Sched().Now(), strTx(fmt.Sprintf("tx%d", i)))
		cluster.RunUntilCommitted(i+1, cluster.Sched().Now()+time.Hour)
	}
}

type strTx string

func (s strTx) Hash() string { return string(s) }

type nopApp struct{}

func (nopApp) CheckTx(consensus.Tx) error                  { return nil }
func (nopApp) ValidateBlock([]consensus.Tx) []consensus.Tx { return nil }
func (nopApp) ReceiverTime(consensus.Tx) time.Duration     { return time.Millisecond }
func (nopApp) ValidationTime([]consensus.Tx) time.Duration { return time.Millisecond }
func (nopApp) Commit(int64, []consensus.Tx)                {}
