package main

import (
	"reflect"
	"strings"
	"testing"
)

func TestSelectExperimentsSubset(t *testing.T) {
	got, err := selectExperiments("parallel, storage ,parallel", experimentOrder)
	if err != nil {
		t.Fatalf("selectExperiments: %v", err)
	}
	if want := []string{"parallel", "storage"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("selected %v, want %v", got, want)
	}
}

func TestSelectExperimentsAll(t *testing.T) {
	got, err := selectExperiments("all", experimentOrder)
	if err != nil {
		t.Fatalf("selectExperiments: %v", err)
	}
	if !reflect.DeepEqual(got, experimentOrder) {
		t.Fatalf("all expanded to %v, want %v", got, experimentOrder)
	}
	// "all" plus an explicit name stays deduplicated.
	got, err = selectExperiments("query,all", experimentOrder)
	if err != nil {
		t.Fatalf("selectExperiments: %v", err)
	}
	if len(got) != len(experimentOrder) || got[0] != "query" {
		t.Fatalf("query,all selected %v", got)
	}
}

func TestSelectExperimentsUnknown(t *testing.T) {
	for _, spec := range []string{"bogus", "parallel,bogus", "quer"} {
		_, err := selectExperiments(spec, experimentOrder)
		if err == nil {
			t.Fatalf("spec %q: expected an error, got none", spec)
		}
		msg := err.Error()
		if !strings.Contains(msg, "unknown experiment") {
			t.Fatalf("spec %q: error %q does not flag the unknown name", spec, msg)
		}
		// The error teaches the valid set instead of just rejecting.
		for _, name := range experimentOrder {
			if !strings.Contains(msg, name) {
				t.Fatalf("spec %q: error %q does not list known experiment %q", spec, msg, name)
			}
		}
	}
}

func TestSelectExperimentsEmpty(t *testing.T) {
	for _, spec := range []string{"", " , ,"} {
		if _, err := selectExperiments(spec, experimentOrder); err == nil {
			t.Fatalf("spec %q: expected an error, got none", spec)
		}
	}
}

func TestExperimentOrderRegistersMVCC(t *testing.T) {
	found := false
	for _, n := range experimentOrder {
		if n == "mvcc" {
			found = true
		}
	}
	if !found {
		t.Fatal("mvcc experiment not registered in experimentOrder")
	}
}

func TestExperimentOrderRegistersShard(t *testing.T) {
	found := false
	for _, n := range experimentOrder {
		if n == "shard" {
			found = true
		}
	}
	if !found {
		t.Fatal("shard experiment not registered in experimentOrder")
	}
	// The shard experiment is selectable on its own and rides "all".
	got, err := selectExperiments("shard", experimentOrder)
	if err != nil || len(got) != 1 || got[0] != "shard" {
		t.Fatalf("selectExperiments(shard) = %v, %v", got, err)
	}
}

func TestExperimentOrderRegistersTraffic(t *testing.T) {
	found := false
	for _, n := range experimentOrder {
		if n == "traffic" {
			found = true
		}
	}
	if !found {
		t.Fatal("traffic experiment not registered in experimentOrder")
	}
	// The traffic experiment is selectable on its own and rides "all".
	got, err := selectExperiments("traffic", experimentOrder)
	if err != nil || len(got) != 1 || got[0] != "traffic" {
		t.Fatalf("selectExperiments(traffic) = %v, %v", got, err)
	}
}
