// Command scdb-bench regenerates the paper's evaluation tables and
// figures on the simulated SmartchainDB and ETH-SC clusters and prints
// them side by side with the published numbers.
//
// Usage:
//
//	scdb-bench -exp all                 # every experiment
//	scdb-bench -exp fig7 -auctions 4 -bidders 10
//	scdb-bench -exp fig8 -nodes 4,8,16,32
//	scdb-bench -exp fig2
//	scdb-bench -exp usability
//	scdb-bench -exp parallel -parallel 1,2,4,8 -batchtxs 256 -conflict 0.1
//	scdb-bench -exp parallel -paper     # paper-mix scale: ~110k transactions
//	scdb-bench -exp storage -storageblocks 8 -storagesizes 64,256,1024
//	scdb-bench -exp mempool -mempooltxs 2048 -conflicts 0.1,0.25,0.5
//	scdb-bench -exp commit -commitblocks 6 -committxs 256 -conflicts 0.25,0.5
//	scdb-bench -exp pipeline -pipedepths 1,2,4,8 -pipeblocks 8 -pipetxs 256
//	scdb-bench -exp query -querydocs 1000,10000,50000 -queryreps 64
//	scdb-bench -exp mvcc -mvccblocks 8 -mvcctxs 256 -mvccreaders 4
//	scdb-bench -exp obs -obsgate 3      # instrumentation overhead vs the no-op registry
//	scdb-bench -exp shard -shardcounts 1,2,4 -shardcross 0,0.1,0.3
//	scdb-bench -exp traffic -trafficusers 1000000 -traffictxs 16384 -trafficrates 2000,6000
//	scdb-bench -exp traffic -cpuprofile cpu.out -memprofile mem.out
//	scdb-bench -exp commit -json out.json   # machine-readable results alongside the tables
//	scdb-bench -exp fig7 -valworkers 4  # headline curves on the parallel pipeline
//	scdb-bench -exp parallel,storage    # comma-separated subsets
//
// An unrecognized experiment name fails fast with the known set; it is
// never silently skipped.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"smartchaindb/internal/bench"
)

func main() {
	var (
		exp        = flag.String("exp", "all", "comma-separated experiments: fig2 | fig7 | fig8 | usability | mix | recovery | parallel | storage | mempool | commit | pipeline | query | mvcc | obs | shard | traffic | all")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile covering every selected experiment to this path")
		memProfile = flag.String("memprofile", "", "write a heap profile (after the last experiment) to this path")
		jsonPath   = flag.String("json", "", "also write every selected experiment's full results as JSON to this path")
		obsGate    = flag.Float64("obsgate", 0, "obs experiment: fail if instrumentation overhead exceeds this percent (0 = report only)")
		auctions   = flag.Int("auctions", 4, "auctions per run")
		bidders    = flag.Int("bidders", 10, "bidders per auction")
		seed       = flag.Int64("seed", 42, "simulation seed")
		sizes      = flag.String("sizes", "", "comma-separated payload sizes in bytes (default: the paper's 0.11-1.74 KB sweep)")
		nodes      = flag.String("nodes", "", "comma-separated validator counts (default 4,8,16,32)")
		mixScale   = flag.Int("scale", 1000, "mix experiment: divide the paper's 110k-tx mix by this factor")
		workers    = flag.String("parallel", "1,2,4,8", "parallel/mempool experiments: comma-separated worker counts (1 = sequential baseline)")
		batchTxs   = flag.Int("batchtxs", 256, "parallel experiment: transactions per block")
		batches    = flag.Int("batches", 4, "parallel experiment: blocks per measurement")
		conflict   = flag.Float64("conflict", 0.1, "parallel experiment: fraction of conflicting transactions per block")
		paper      = flag.Bool("paper", false, "parallel experiment: paper-mix scale — ~110k transactions (430 blocks x 256 txs, single rep)")
		valWorkers = flag.Int("valworkers", 4, "fig7/fig8: per-validator parallel-pipeline workers (0 = sequential paths)")
		stBlocks   = flag.Int("storageblocks", 8, "storage experiment: blocks per measurement")
		stSizes    = flag.String("storagesizes", "64,256,1024", "storage experiment: comma-separated transactions per block")
		mpTxs      = flag.Int("mempooltxs", 2048, "mempool experiment: admission stream length")
		mpBatch    = flag.Int("mempoolbatch", 64, "mempool experiment: admission batch size")
		mpBlock    = flag.Int("packblock", 64, "mempool experiment: packed block size")
		mpPackW    = flag.Int("packworkers", 8, "mempool experiment: validation workers the packer balances for")
		mpRates    = flag.String("conflicts", "0.1,0.25,0.5", "mempool/commit experiments: comma-separated conflict rates")
		cmBlocks   = flag.Int("commitblocks", 6, "commit experiment: blocks per measurement")
		cmTxs      = flag.Int("committxs", 256, "commit experiment: transactions per block")
		ppDepths   = flag.String("pipedepths", "1,2,4,8", "pipeline experiment: comma-separated concurrently-applying block bounds (1 = serial baseline)")
		ppBlocks   = flag.Int("pipeblocks", 8, "pipeline experiment: blocks per measurement")
		ppTxs      = flag.Int("pipetxs", 256, "pipeline experiment: transactions per block")
		ppWorkers  = flag.Int("pipeworkers", 4, "pipeline experiment: per-block commit apply workers")
		ppConflict = flag.Float64("pipeconflict", 0.25, "pipeline experiment: intra-block chain rate")
		qDocs      = flag.String("querydocs", "1000,10000,50000", "query experiment: comma-separated collection sizes for the planner-vs-scan latency sweep")
		qReps      = flag.Int("queryreps", 64, "query experiment: queries per shape per measurement")
		qBlocks    = flag.Int("queryblocks", 8, "query experiment: blocks committed during the concurrent-throughput leg")
		qTxs       = flag.Int("querytxs", 256, "query experiment: transactions per concurrent-leg block")
		qReaders   = flag.Int("queryreaders", 4, "query experiment: concurrent query goroutines")
		mvBlocks   = flag.Int("mvccblocks", 8, "mvcc experiment: commit-load blocks (half warm the state)")
		mvTxs      = flag.Int("mvcctxs", 256, "mvcc experiment: transactions per commit-load block")
		mvReaders  = flag.Int("mvccreaders", 4, "mvcc experiment: concurrent snapshot-query goroutines")
		shCounts   = flag.String("shardcounts", "1,2,4", "shard experiment: comma-separated shard counts (1 = unsharded baseline)")
		shCross    = flag.String("shardcross", "0,0.1,0.3", "shard experiment: comma-separated cross-shard transfer rates")
		shChains   = flag.Int("shardchains", 32, "shard experiment: concurrent transfer chains split across shards")
		shRounds   = flag.Int("shardrounds", 8, "shard experiment: lockstep rounds (one transfer per chain per round)")
		trUsers    = flag.Int("trafficusers", 0, "traffic experiment: pre-generated keypair population (default 1,000,000)")
		trTxs      = flag.Int("traffictxs", 0, "traffic experiment: transactions per leg (default 16384)")
		trInputs   = flag.Int("trafficinputs", 0, "traffic experiment: inputs per transfer (default 4)")
		trRates    = flag.String("trafficrates", "", "traffic experiment: comma-separated offered loads in tx/s (default 2000,6000)")
		trBatch    = flag.Int("trafficbatch", 0, "traffic experiment: admission batch size (default 128)")
		trDepths   = flag.String("trafficdepths", "", "traffic experiment: comma-separated commit pipeline depths (default 1,4)")
		trBackends = flag.String("trafficbackends", "", "traffic experiment: comma-separated backends (default memory,disk)")
	)
	flag.Parse()

	sizeList := bench.PayloadSizes
	if *sizes != "" {
		var err error
		sizeList, err = parseInts(*sizes)
		if err != nil {
			fatal(err)
		}
	}
	nodeList := bench.ClusterSizes
	if *nodes != "" {
		var err error
		nodeList, err = parseInts(*nodes)
		if err != nil {
			fatal(err)
		}
	}
	scale := bench.Fig7Scale{Auctions: *auctions, Bidders: *bidders, Workers: *valWorkers}

	// Every experiment records its full result here; -json writes the
	// accumulated report after the last one prints.
	report := bench.NewReport()

	runFig2 := func() {
		r, err := bench.RunFig2(*seed)
		if err != nil {
			fatal(err)
		}
		report.Add("fig2", r)
		bench.PrintFig2(os.Stdout, r)
	}
	runFig7 := func() {
		fmt.Printf("Experiment 1 — %d auctions x %d bidders per size point\n\n", *auctions, *bidders)
		rows, err := bench.RunFig7(sizeList, scale, *seed)
		if err != nil {
			fatal(err)
		}
		report.Add("fig7", rows)
		bench.PrintFig7(os.Stdout, rows)
	}
	runFig8 := func() {
		fmt.Printf("Experiment 2 — 1.09 KB transactions, %d auctions x %d bidders per cluster size\n\n", *auctions, *bidders)
		rows, err := bench.RunFig8(nodeList, scale, *seed)
		if err != nil {
			fatal(err)
		}
		report.Add("fig8", rows)
		bench.PrintFig8(os.Stdout, rows)
	}
	runUsability := func() {
		r, err := bench.RunUsability()
		if err != nil {
			fatal(err)
		}
		report.Add("usability", r)
		bench.PrintUsability(os.Stdout, r)
	}
	runMix := func() {
		r := bench.RunMix(*mixScale, *seed)
		report.Add("mix", r)
		bench.PrintMix(os.Stdout, r)
	}
	runRecovery := func() {
		r, err := bench.RunRecovery(*bidders, *seed)
		if err != nil {
			fatal(err)
		}
		report.Add("recovery", r)
		bench.PrintRecovery(os.Stdout, r)
	}
	runParallel := func() {
		workerList, err := parseInts(*workers)
		if err != nil {
			fatal(err)
		}
		params := bench.ParallelParams{
			Batches:      *batches,
			BatchTxs:     *batchTxs,
			Workers:      workerList,
			ConflictRate: *conflict,
			Seed:         *seed,
		}
		if *paper {
			// The paper's E4 mix size: 110,000 transactions through the
			// wall-clock validation sweep (430 x 256 = 110,080). One rep:
			// at this scale the run is minutes, not milliseconds.
			// Explicitly passed -batches/-batchtxs still win.
			explicit := map[string]bool{}
			flag.Visit(func(f *flag.Flag) { explicit[f.Name] = true })
			if !explicit["batches"] {
				params.Batches = 430
			}
			if !explicit["batchtxs"] {
				params.BatchTxs = 256
			}
			params.Reps = 1
		}
		r := bench.RunParallel(params)
		report.Add("parallel", r)
		bench.PrintParallel(os.Stdout, r)
	}
	runStorage := func() {
		sizeList, err := parseInts(*stSizes)
		if err != nil {
			fatal(err)
		}
		r := bench.RunStorage(bench.StorageParams{
			Blocks:     *stBlocks,
			BlockSizes: sizeList,
			Seed:       *seed,
		})
		report.Add("storage", r)
		bench.PrintStorage(os.Stdout, r)
	}
	runMempool := func() {
		workerList, err := parseInts(*workers)
		if err != nil {
			fatal(err)
		}
		rateList, err := parseFloats(*mpRates)
		if err != nil {
			fatal(err)
		}
		r := bench.RunMempool(bench.MempoolParams{
			Txs:           *mpTxs,
			Batch:         *mpBatch,
			Workers:       workerList,
			ConflictRates: rateList,
			BlockTxs:      *mpBlock,
			PackWorkers:   *mpPackW,
			Seed:          *seed,
		})
		report.Add("mempool", r)
		bench.PrintMempool(os.Stdout, r)
	}

	runCommit := func() {
		workerList, err := parseInts(*workers)
		if err != nil {
			fatal(err)
		}
		rateList, err := parseFloats(*mpRates)
		if err != nil {
			fatal(err)
		}
		r := bench.RunCommit(bench.CommitParams{
			Blocks:        *cmBlocks,
			BlockTxs:      *cmTxs,
			Workers:       workerList,
			ConflictRates: rateList,
			Seed:          *seed,
		})
		report.Add("commit", r)
		bench.PrintCommit(os.Stdout, r)
	}

	runPipeline := func() {
		depthList, err := parseInts(*ppDepths)
		if err != nil {
			fatal(err)
		}
		r := bench.RunPipeline(bench.PipelineParams{
			Blocks:       *ppBlocks,
			BlockTxs:     *ppTxs,
			Depths:       depthList,
			ConflictRate: *ppConflict,
			Workers:      *ppWorkers,
			Seed:         *seed,
		})
		report.Add("pipeline", r)
		bench.PrintPipeline(os.Stdout, r)
	}

	runQuery := func() {
		docList, err := parseInts(*qDocs)
		if err != nil {
			fatal(err)
		}
		r := bench.RunQuery(bench.QueryParams{
			Docs:     docList,
			Reps:     *qReps,
			Blocks:   *qBlocks,
			BlockTxs: *qTxs,
			Readers:  *qReaders,
			Seed:     *seed,
		})
		report.Add("query", r)
		bench.PrintQuery(os.Stdout, r)
	}

	runMVCC := func() {
		r := bench.RunMVCC(bench.MVCCParams{
			Blocks:   *mvBlocks,
			BlockTxs: *mvTxs,
			Readers:  *mvReaders,
			Seed:     *seed,
		})
		report.Add("mvcc", r)
		bench.PrintMVCC(os.Stdout, r)
	}

	runObs := func() {
		r := bench.RunObs(bench.ObsParams{Seed: *seed})
		report.Add("obs", r)
		bench.PrintObs(os.Stdout, r)
		if *obsGate > 0 && r.OverheadPct > *obsGate {
			fatal(fmt.Errorf("obs overhead %.2f%% exceeds gate %.2f%%", r.OverheadPct, *obsGate))
		}
	}

	runShard := func() {
		counts, err := parseInts(*shCounts)
		if err != nil {
			fatal(err)
		}
		rates, err := parseFloats(*shCross)
		if err != nil {
			fatal(err)
		}
		r := bench.RunShard(bench.ShardParams{
			ShardCounts: counts,
			CrossRates:  rates,
			Chains:      *shChains,
			Rounds:      *shRounds,
			Seed:        *seed,
		})
		report.Add("shard", r)
		bench.PrintShard(os.Stdout, r)
	}

	runTraffic := func() {
		params := bench.TrafficParams{
			Users:  *trUsers,
			Txs:    *trTxs,
			Inputs: *trInputs,
			Batch:  *trBatch,
			Seed:   *seed,
		}
		if *trRates != "" {
			rates, err := parseFloats(*trRates)
			if err != nil {
				fatal(err)
			}
			params.Rates = rates
		}
		if *trDepths != "" {
			depths, err := parseInts(*trDepths)
			if err != nil {
				fatal(err)
			}
			params.Depths = depths
		}
		if *trBackends != "" {
			for _, b := range strings.Split(*trBackends, ",") {
				params.Backends = append(params.Backends, strings.TrimSpace(b))
			}
		}
		r := bench.RunTraffic(params)
		report.Add("traffic", r)
		bench.PrintTraffic(os.Stdout, r)
	}

	experiments := map[string]func(){
		"fig2":      runFig2,
		"fig7":      runFig7,
		"fig8":      runFig8,
		"usability": runUsability,
		"mix":       runMix,
		"recovery":  runRecovery,
		"parallel":  runParallel,
		"storage":   runStorage,
		"mempool":   runMempool,
		"commit":    runCommit,
		"pipeline":  runPipeline,
		"query":     runQuery,
		"mvcc":      runMVCC,
		"obs":       runObs,
		"shard":     runShard,
		"traffic":   runTraffic,
	}
	selected, err := selectExperiments(*exp, experimentOrder)
	if err != nil {
		fatal(err)
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	for _, name := range selected {
		experiments[name]()
	}
	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			fatal(err)
		}
		runtime.GC() // report live allocations, not garbage
		if err := pprof.WriteHeapProfile(f); err != nil {
			fatal(err)
		}
		f.Close()
	}
	if *jsonPath != "" {
		if err := report.WriteFile(*jsonPath); err != nil {
			fatal(err)
		}
		fmt.Printf("results written to %s\n", *jsonPath)
	}
}

// experimentOrder is the canonical run order; "all" expands to it and
// selectExperiments validates against it.
var experimentOrder = []string{"fig2", "fig7", "fig8", "usability", "mix", "recovery", "parallel", "storage", "mempool", "commit", "pipeline", "query", "mvcc", "obs", "shard", "traffic"}

// selectExperiments expands a comma-separated -exp value against the
// known experiment names: "all" expands to every experiment in
// canonical order, duplicates collapse (first mention wins), and an
// unrecognized name is an error naming the known set — never a silent
// skip, so a typo cannot masquerade as a clean run that measured
// nothing.
func selectExperiments(spec string, known []string) ([]string, error) {
	isKnown := make(map[string]bool, len(known))
	for _, n := range known {
		isKnown[n] = true
	}
	var selected []string
	seen := make(map[string]bool)
	add := func(name string) {
		if !seen[name] {
			seen[name] = true
			selected = append(selected, name)
		}
	}
	for _, name := range strings.Split(spec, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		if name == "all" {
			for _, n := range known {
				add(n)
			}
			continue
		}
		if !isKnown[name] {
			return nil, fmt.Errorf("unknown experiment %q (known: %s, all)", name, strings.Join(known, ", "))
		}
		add(name)
	}
	if len(selected) == 0 {
		return nil, fmt.Errorf("no experiment selected (known: %s, all)", strings.Join(known, ", "))
	}
	return selected, nil
}

func parseInts(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad integer %q", p)
		}
		out = append(out, v)
	}
	return out, nil
}

func parseFloats(s string) ([]float64, error) {
	parts := strings.Split(s, ",")
	out := make([]float64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("bad float %q", p)
		}
		out = append(out, v)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "scdb-bench:", err)
	os.Exit(1)
}
