// Command minisolc compiles and executes minisol contracts — the
// Solidity-subset language of the ETH-SC baseline. It prints contract
// inventories (structs, functions, meaningful LoC) and can deploy a
// contract and call a function with gas reporting.
//
// Usage:
//
//	minisolc contract.sol                          # inspect
//	minisolc -run Marketplace.createRfq -args cnc,milling contract.sol
//	minisolc -builtin marketplace                  # inspect the embedded contract
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"smartchaindb/internal/ethchain"
	"smartchaindb/internal/minisol"
)

func main() {
	var (
		run     = flag.String("run", "", "Contract.function to deploy and call")
		args    = flag.String("args", "", "comma-separated call arguments (int, true/false, or string)")
		sender  = flag.String("sender", "alice", "msg.sender for the call")
		gasCap  = flag.Uint64("gas", 0, "gas limit (0 = unlimited)")
		builtin = flag.String("builtin", "", "use an embedded contract: marketplace | token")
	)
	flag.Parse()

	var src string
	switch {
	case *builtin != "":
		s, err := ethchain.ContractSource(*builtin)
		fatalIf(err)
		src = s
	case flag.NArg() == 1:
		b, err := os.ReadFile(flag.Arg(0))
		fatalIf(err)
		src = string(b)
	default:
		fmt.Fprintln(os.Stderr, "usage: minisolc [-run C.fn] [-args a,b] (file.sol | -builtin name)")
		os.Exit(2)
	}

	prog, err := minisol.Compile(src)
	fatalIf(err)

	if *run == "" {
		inspect(prog)
		return
	}
	contractName, fnName, ok := strings.Cut(*run, ".")
	if !ok {
		fatalIf(fmt.Errorf("-run wants Contract.function, got %q", *run))
	}
	inst, deployGas, err := minisol.Deploy(prog, contractName, minisol.DefaultGasTable(), minisol.Msg{Sender: *sender})
	fatalIf(err)
	fmt.Printf("deployed %s (gas %d)\n", contractName, deployGas)

	var callArgs []minisol.Value
	if *args != "" {
		for _, a := range strings.Split(*args, ",") {
			callArgs = append(callArgs, parseArg(strings.TrimSpace(a)))
		}
	}
	res := inst.Call(fnName, minisol.Msg{Sender: *sender}, *gasCap, callArgs...)
	fmt.Printf("call %s(%s) as %s\n", fnName, *args, *sender)
	fmt.Printf("  gas used: %d\n", res.GasUsed)
	if res.Err != nil {
		fmt.Printf("  failed:   %v\n", res.Err)
		os.Exit(1)
	}
	if res.Ret != nil {
		fmt.Printf("  returned: %s\n", minisol.FormatValue(res.Ret))
	}
	for _, log := range res.Logs {
		parts := make([]string, len(log.Args))
		for i, a := range log.Args {
			parts[i] = minisol.FormatValue(a)
		}
		fmt.Printf("  event %s(%s)\n", log.Name, strings.Join(parts, ", "))
	}
}

func inspect(prog *minisol.Program) {
	for _, c := range prog.File.Contracts {
		fmt.Printf("contract %s — %d meaningful lines\n", c.Name, c.SourceLines)
		var names []string
		for name := range c.Structs {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			fmt.Printf("  struct %s (%d fields)\n", name, len(c.Structs[name].Fields))
		}
		names = names[:0]
		for name := range c.Functions {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			fn := c.Functions[name]
			params := make([]string, len(fn.Params))
			for i, p := range fn.Params {
				params[i] = p.Type.Kind + " " + p.Name
			}
			fmt.Printf("  function %s(%s) %s\n", name, strings.Join(params, ", "), fn.Visibility)
		}
	}
}

func parseArg(s string) minisol.Value {
	if v, err := strconv.ParseInt(s, 10, 64); err == nil {
		return minisol.Int(v)
	}
	switch s {
	case "true":
		return minisol.Bool(true)
	case "false":
		return minisol.Bool(false)
	}
	return minisol.Str(s)
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "minisolc:", err)
		os.Exit(1)
	}
}
