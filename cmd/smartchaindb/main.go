// Command smartchaindb runs a simulated SmartchainDB validator cluster
// and drives a complete reverse-auction through it, printing the
// transaction life cycle (Figure 4) step by step: schema validation,
// semantic validation, consensus commit, and the nested ACCEPT_BID
// pipeline with its child RETURN transactions.
//
// Usage:
//
//	smartchaindb -nodes 4 -bidders 3 -seed 7
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"smartchaindb/internal/keys"
	"smartchaindb/internal/obs"
	"smartchaindb/internal/query"
	"smartchaindb/internal/server"
	"smartchaindb/internal/shard"
	"smartchaindb/internal/txn"
	"smartchaindb/internal/workflow"
)

func main() {
	var (
		nodes        = flag.Int("nodes", 4, "validator count")
		bidders      = flag.Int("bidders", 3, "bidders in the auction")
		seed         = flag.Int64("seed", 7, "simulation seed")
		datadir      = flag.String("datadir", "", "persist each validator's chain state under this directory (WAL + segments per node); empty keeps state in memory")
		packing      = flag.String("packing", "makespan", "block packing policy off the footprint-indexed mempool: makespan (conflict-aware) or fifo (arrival order)")
		admitBatch   = flag.Int("admitbatch", 64, "admission batch size: arrivals buffered while the receiver is busy join the next CheckTx batch")
		admitWorkers = flag.Int("admitworkers", 4, "CheckTx-stage admission workers per node (<2 validates each batch sequentially)")
		valWorkers   = flag.Int("valworkers", 4, "DeliverTx-stage block-validation workers per node (<2 = sequential)")
		commitW      = flag.Int("commitworkers", 4, "commit-stage per-conflict-group apply workers per node (<2 = sequential commit)")
		asyncCommit  = flag.Bool("asynccommit", true, "overlap block h's commit with height h+1's validation behind the commit fence (same as -commitdepth 2)")
		commitDepth  = flag.Int("commitdepth", 0, "commit pipeline depth D: up to D-1 decided blocks apply concurrently behind stacked footprint fences, sealing in height order (1 = synchronous; 0 derives from -asynccommit)")
		opsAddr      = flag.String("opsaddr", "", "serve the ops endpoint (/metrics, /traces, /debug/pprof) on this address, e.g. localhost:6060 or :0; /metrics labels validator 0's registry node-0 and, with -shards, each shard's registry shard-<id>")
		shards       = flag.Int("shards", 0, "after the auction, demo a horizontally sharded cluster with this many footprint-routed shards: a local create on shard 0 then a cross-shard 2PC migration (0 disables)")
	)
	flag.Parse()
	if _, err := server.ParsePacking(*packing); err != nil {
		fmt.Fprintln(os.Stderr, "smartchaindb:", err)
		os.Exit(2)
	}

	// Observability is per-component: validator 0 gets a live registry,
	// and with -shards every shard gets its own, so one /metrics scrape
	// keeps them distinguishable by label. Everything else keeps the
	// no-op build.
	var reg *obs.Registry
	var shardRegs []*obs.Registry
	if *opsAddr != "" {
		reg = obs.New()
		regs := map[string]*obs.Registry{"node-0": reg}
		if *shards > 1 {
			shardRegs = make([]*obs.Registry, *shards)
			for i := range shardRegs {
				shardRegs[i] = obs.New()
				regs[fmt.Sprintf("shard-%02d", i)] = shardRegs[i]
			}
		}
		ops, err := obs.ServeLabeled(*opsAddr, regs)
		must(err)
		defer ops.Close()
		fmt.Printf("ops endpoint: http://%s/metrics\n", ops.Addr())
	}

	cluster := server.NewCluster(server.ClusterConfig{
		Nodes:         *nodes,
		Seed:          *seed,
		BlockInterval: 70 * time.Millisecond,
		MaxBlockTxs:   8,
		Pipelined:     true,
		DataDir:       *datadir,
		Packing:       *packing,
		ObsFor: func(node int) *obs.Registry {
			if node == 0 {
				return reg
			}
			return nil
		},
		Node: server.Config{
			ParallelWorkers:  *valWorkers,
			AdmissionWorkers: *admitWorkers,
			MempoolBatch:     *admitBatch,
			CommitWorkers:    *commitW,
			AsyncCommit:      *asyncCommit,
			CommitDepth:      *commitDepth,
		},
	})
	defer cluster.Close()
	if *datadir != "" {
		h := cluster.ServerNode(0).State().Height()
		fmt.Printf("persistent storage: %s (validator 0 recovered at height %d)\n", *datadir, h)
	}
	escrow := cluster.ServerNode(0).Escrow()
	fmt.Printf("SmartchainDB cluster: %d validators, escrow account %s\n\n",
		*nodes, escrow.PublicBase58()[:12]+"...")

	submit := func(label string, t *txn.Transaction, expected int) {
		cluster.Submit(t)
		got := cluster.RunUntilCommitted(expected, cluster.Sched().Now()+time.Hour)
		if got < expected {
			fmt.Fprintf(os.Stderr, "%s did not commit (%d of %d)\n", label, got, expected)
			os.Exit(1)
		}
		lat, _ := cluster.Latency(t.ID)
		fmt.Printf("  %-12s %s  committed in %6.1f ms (simulated)\n", label, t.ID[:12]+"...", float64(lat)/float64(time.Millisecond))
	}

	// The buyer publishes a request for quotes.
	requester := keys.MustGenerate()
	rfq := txn.NewRequest(requester.PublicBase58(),
		map[string]any{"capabilities": []any{"3d-printing", "cnc-milling"}, "item": "bracket", "quantity": 500}, nil)
	must(txn.Sign(rfq, requester))
	fmt.Println("Phase 1 — REQUEST and bidder assets:")
	committed := 1
	submit("REQUEST", rfq, committed)

	// Providers mint their capability assets.
	type bidderState struct {
		kp    *keys.KeyPair
		asset *txn.Transaction
		bid   *txn.Transaction
	}
	states := make([]*bidderState, *bidders)
	for i := range states {
		kp := keys.MustGenerate()
		asset := txn.NewCreate(kp.PublicBase58(),
			map[string]any{"capabilities": []any{"3d-printing", "cnc-milling", "anodizing"}, "plant": i}, 1, nil)
		must(txn.Sign(asset, kp))
		states[i] = &bidderState{kp: kp, asset: asset}
		committed++
		submit("CREATE", asset, committed)
	}

	fmt.Println("\nPhase 2 — sealed bids (assets move into escrow):")
	for _, st := range states {
		bid := txn.NewBid(st.kp.PublicBase58(), st.asset.ID,
			txn.Spend{Ref: txn.OutputRef{TxID: st.asset.ID, Index: 0}, Owners: []string{st.kp.PublicBase58()}},
			1, escrow.PublicBase58(), rfq.ID, map[string]any{"price": 1000})
		must(txn.Sign(bid, st.kp))
		st.bid = bid
		committed++
		submit("BID", bid, committed)
	}

	fmt.Println("\nPhase 3 — nested ACCEPT_BID (non-locking commit + child pipeline):")
	win := states[0].bid
	losing := make([]*txn.Transaction, 0, len(states)-1)
	for _, st := range states[1:] {
		losing = append(losing, st.bid)
	}
	accept, err := txn.NewAcceptBid(requester.PublicBase58(), escrow.PublicBase58(), rfq.ID, win, losing, nil)
	must(err)
	must(txn.Sign(accept, escrow, requester))
	committed++
	submit("ACCEPT_BID", accept, committed)
	// The children (1 TRANSFER + n-1 RETURNs) commit asynchronously.
	committed += len(states)
	cluster.RunUntilCommitted(committed, cluster.Sched().Now()+time.Hour)
	cluster.RunUntil(cluster.Sched().Now() + time.Second)

	parent, err := cluster.ServerNode(0).State().GetTx(accept.ID)
	must(err)
	fmt.Printf("  children:    %d committed (1 TRANSFER to requester, %d RETURNs)\n",
		len(parent.Children), len(states)-1)

	fmt.Println("\nFinal state (validator 0):")
	st := cluster.ServerNode(0).State()
	fmt.Printf("  requester owns winning asset: %v\n",
		st.Balance(requester.PublicBase58(), states[0].asset.ID) == 1)
	for i, s := range states[1:] {
		fmt.Printf("  losing bidder %d refunded:     %v\n", i+1,
			st.Balance(s.kp.PublicBase58(), s.asset.ID) == 1)
	}
	rec, err := st.RecoveryFor(accept.ID)
	must(err)
	fmt.Printf("  recovery log status:          %s\n", rec.Status)

	q := query.New(st)
	fmt.Printf("  open requests remaining:      %d\n", len(q.OpenRequests()))
	for _, childID := range parent.Children {
		child, err := st.GetTx(childID)
		must(err)
		if child.Operation == txn.OpTransfer {
			ops, _, err := workflow.Trace(st, childID)
			must(err)
			fmt.Printf("  winning asset workflow:       %v\n", ops)
			break
		}
	}
	sum := cluster.Summarize()
	fmt.Printf("\n%d transactions committed, mean latency %.1f ms, %.1f tps (simulated)\n",
		sum.Committed, float64(sum.MeanLatency)/float64(time.Millisecond), sum.Throughput)

	if *shards > 1 {
		shardDemo(*shards, shardRegs)
	}
}

// shardDemo runs the horizontal-sharding walkthrough: an asset is
// created on shard 0 through the zero-coordination local path, then a
// hinted transfer migrates it to shard 1 through the cross-shard
// two-phase commit. Each shard's registry (when -opsaddr is live)
// records its side under its own label.
func shardDemo(shards int, regs []*obs.Registry) {
	fmt.Printf("\nSharded cluster: %d footprint-routed shards, each with its own ledger, mempool, and WAL\n", shards)
	sc := shard.New(shard.Config{Shards: shards, ObsFor: func(i int) *obs.Registry {
		if i < len(regs) {
			return regs[i]
		}
		return nil
	}})
	defer sc.Close()

	owner := keys.MustGenerate()
	asset := txn.NewCreate(owner.PublicBase58(),
		map[string]any{"capabilities": []any{"3d-printing"}, "item": "migrating-asset"}, 1,
		map[string]any{shard.MetaShardHint: float64(0)})
	must(txn.Sign(asset, owner))
	must(sc.Submit(asset))
	sc.DrainLocal(8)
	fmt.Printf("  CREATE   %s  committed on shard 0 (local block, zero coordination)\n", asset.ID[:12]+"...")

	buyer := keys.MustGenerate()
	cross := txn.NewTransfer(asset.ID,
		[]txn.Spend{{Ref: txn.OutputRef{TxID: asset.ID, Index: 0}, Owners: []string{owner.PublicBase58()}}},
		[]*txn.Output{{PublicKeys: []string{buyer.PublicBase58()}, Amount: 1}},
		map[string]any{shard.MetaShardHint: float64(1)})
	must(txn.Sign(cross, owner))
	must(sc.Submit(cross))
	home, _ := sc.Directory().Lookup(cross.ID)
	fmt.Printf("  TRANSFER %s  migrated to shard %d (cross-shard 2PC: hold, stage, prepare, decide, apply)\n",
		cross.ID[:12]+"...", home)
	for i := 0; i < sc.Shards(); i++ {
		fmt.Printf("  shard %d height: %d\n", i, sc.Shard(i).Node.State().Height())
	}
}

func must(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "smartchaindb:", err)
		os.Exit(1)
	}
}
