# Tier-1 verification targets. `make test` is the gate every PR must
# keep green: build, go vet, the full suite on the memory backend, the
# storage-sensitive suites again over the disk engine
# (SCDB_BACKEND=disk swaps every ledger.NewState onto a throwaway
# WAL+segment engine), and a seconds-scale bench smoke run.
# `make test-race` runs the concurrency-sensitive packages under the
# race detector on both backends.

GO ?= go

.PHONY: all build vet test test-disk test-race bench-parallel bench-storage bench-mempool bench-commit bench-query bench-mvcc bench-obs bench-shard bench-traffic bench-pipeline bench-smoke ci

all: build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test: build vet
	$(GO) test ./...
	$(MAKE) test-disk
	$(MAKE) bench-smoke

# The tier-1 suites that touch chain state (ledger, server/cluster,
# nested recovery, bench differential, query) re-run over the disk
# backend — including the MVCC snapshot suites (storage version
# chains, docstore snapshot isolation, ledger StateAt differentials)
# and the sharding suite (per-shard WALs, cross-shard 2PC crash
# convergence, directory rebuild across reopen). -count=1 forces a
# fresh run under the env switch.
test-disk:
	SCDB_BACKEND=disk $(GO) test -count=1 ./internal/ledger ./internal/server ./internal/consensus ./internal/nested ./internal/bench ./internal/query ./internal/docstore ./internal/obs ./internal/shard

# The race gate covers the commit pipeline end to end: the ledger's
# per-conflict-group appliers, the server's commit fence (incl. the
# h+1-reads-race-h's-appliers stress test), the docstore's planner —
# planned point/range/intersect/union reads racing writers (the
# docstore suites self-parameterize over both backends) — the MVCC
# snapshot suites (lock-free snapshot readers racing block appliers
# at every layer), and the consensus overlap. The SCDB_BACKEND=disk
# leg re-runs the ledger-backed suites, incl. the
# query-engine-vs-block-commit race, over the WAL engine. The
# txn/keys/driver leg covers the admission fast path: the per-tx
# canonical-bytes memo (CAS copy-forward) and the batched signature
# verifier's worker fan-out.
test-race:
	$(GO) test -race ./internal/mempool ./internal/parallel ./internal/ledger ./internal/consensus ./internal/server ./internal/bench ./internal/storage ./internal/docstore ./internal/query ./internal/obs ./internal/shard ./internal/txn ./internal/keys ./internal/driver
	SCDB_BACKEND=disk $(GO) test -race -count=1 ./internal/ledger ./internal/server ./internal/consensus ./internal/query ./internal/shard

# Reproduce the parallel-validation experiment (wall-clock sweep plus
# the virtual-time consensus leg) at the paper-mix scale: ~110k
# transactions through the validation sweep.
bench-parallel:
	$(GO) run ./cmd/scdb-bench -exp parallel -paper

# Storage-engine experiment: commit throughput and reopen/recovery
# time, memory vs disk, across block sizes.
bench-storage:
	$(GO) run ./cmd/scdb-bench -exp storage

# Mempool-subsystem experiment: batched parallel admission vs serial
# CheckTx, plus conflict-aware vs FIFO block packing.
bench-mempool:
	$(GO) run ./cmd/scdb-bench -exp mempool

# Commit-stage experiment: serial apply vs per-conflict-group
# appliers, the serialized validate→commit loop vs the overlapped
# pipeline (wall clock, both backends), and the commit-bound consensus
# simulation (virtual time, deterministic).
bench-commit:
	$(GO) run ./cmd/scdb-bench -exp commit

# Query-planner experiment: planned (index point/range/intersect/
# union) reads vs forced full scans across collection sizes, plus
# sustained query throughput concurrent with block commits on both
# backends.
bench-query:
	$(GO) run ./cmd/scdb-bench -exp query

# MVCC snapshot-read experiment: the marketplace query mix on
# height-pinned snapshots, idle vs concurrent with block commits, both
# backends — quantifies query-vs-commit interference on the fence-free
# read path.
bench-mvcc:
	$(GO) run ./cmd/scdb-bench -exp mvcc

# Observability overhead: the pipelined commit with a live metrics
# registry plus per-tx stage tracing vs the no-op (nil-registry)
# build, gated at 3% — instrumentation must stay within noise of off.
bench-obs:
	$(GO) run ./cmd/scdb-bench -exp obs -obsgate 3

# Horizontal-sharding experiment: per-cross-rate makespan speedup over
# shard count — near-linear at 0% cross-shard, degrading gracefully as
# the 2PC rate sweeps up.
bench-shard:
	$(GO) run ./cmd/scdb-bench -exp shard

# Admission fast-path experiment: open-loop Poisson traffic from a
# million-user keypair population through CheckTxBatch → commit,
# sweeping offered load, caches on vs off — the throughput-gain and
# p99-latency proof for the batched signature verifier and the
# canonical-bytes cache.
bench-traffic:
	$(GO) run ./cmd/scdb-bench -exp traffic

# Deep-commit-pipeline experiment: the depth sweep D=1,2,4,8 (blocks
# concurrently mid-apply behind stacked footprint fences, sealing in
# height order), both backends, with every depth's fingerprint checked
# byte-for-byte against the sequential reference, plus the commit-bound
# consensus simulation over server CommitDepth.
bench-pipeline:
	$(GO) run ./cmd/scdb-bench -exp pipeline

# Seconds-scale smoke run of the parallel, storage, mempool, commit,
# pipeline, query, mvcc, obs, shard, and traffic experiments — part of
# the default `make test` gate so a broken experiment path fails the
# build, not the next benchmarking session. Writes the
# machine-readable results alongside the tables (obs is ungated here:
# the smoke gate is shape, not noise; the pipeline leg still hard-fails
# on any fingerprint divergence from the sequential reference).
bench-smoke:
	$(GO) run ./cmd/scdb-bench -exp parallel,storage,mempool,commit,pipeline,query,mvcc,obs,shard,traffic -json bench-smoke.json -batches 1 -batchtxs 64 -parallel 1,4 -storageblocks 2 -storagesizes 64 -mempooltxs 256 -commitblocks 3 -committxs 96 -conflicts 0.25,0.5 -pipeblocks 4 -pipetxs 64 -pipedepths 1,2,4 -pipeworkers 2 -querydocs 512,4096 -queryreps 16 -queryblocks 2 -querytxs 64 -queryreaders 2 -mvccblocks 4 -mvcctxs 64 -mvccreaders 2 -shardcounts 1,2 -shardcross 0,0.25 -shardchains 8 -shardrounds 2 -trafficusers 256 -traffictxs 256 -trafficinputs 2 -trafficrates 4000 -trafficbatch 32 -trafficdepths 1,2 -trafficbackends memory

ci: test test-race
