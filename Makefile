# Tier-1 verification targets. `make test` is the gate every PR must
# keep green; `make test-race` runs the concurrency-sensitive packages
# (the parallel validation pipeline and everything it touches) under
# the race detector.

GO ?= go

.PHONY: all build test test-race bench-parallel ci

all: build test

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

test-race:
	$(GO) test -race ./internal/parallel ./internal/ledger ./internal/consensus ./internal/server ./internal/bench

# Reproduce the parallel-validation experiment (wall-clock sweep plus
# the virtual-time consensus leg).
bench-parallel:
	$(GO) run ./cmd/scdb-bench -exp parallel

ci: test test-race
