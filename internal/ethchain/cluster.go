package ethchain

import (
	"crypto/sha3"
	"encoding/hex"
	"fmt"
	"time"

	"smartchaindb/internal/consensus"
	"smartchaindb/internal/netsim"
)

// ClusterConfig parameterizes the Quorum/IBFT-style baseline network.
type ClusterConfig struct {
	// Nodes is the validator count.
	Nodes int
	// BlockPeriod is the IBFT block interval (Quorum defaults to ~1-5s;
	// the experiments use 5s).
	BlockPeriod time.Duration
	// BlockGasLimit caps the gas packed into one block (Ethereum
	// mainnet uses 30M).
	BlockGasLimit uint64
	// GasPerSecond is the sequential execution speed of a validator —
	// the gas→time model (EVM nodes process on the order of tens of
	// millions of gas per second).
	GasPerSecond float64
	// ReceiverTime is the fixed RPC/admission overhead per transaction.
	ReceiverTime time.Duration
	// Latency models inter-validator delay.
	Latency netsim.LatencyModel
	// Seed drives all randomness.
	Seed int64
}

func (c *ClusterConfig) fill() {
	if c.Nodes <= 0 {
		c.Nodes = 4
	}
	if c.BlockPeriod <= 0 {
		c.BlockPeriod = 5 * time.Second
	}
	if c.BlockGasLimit == 0 {
		c.BlockGasLimit = 30_000_000
	}
	if c.GasPerSecond <= 0 {
		c.GasPerSecond = 15_000_000
	}
	if c.ReceiverTime <= 0 {
		c.ReceiverTime = 2 * time.Millisecond
	}
}

// app adapts a Chain to the consensus engine: speculative block
// execution on a clone during validation, adoption at commit.
type app struct {
	cfg   ClusterConfig
	chain *Chain

	// speculative post-states keyed by block content hash
	staged map[string]*staged
}

type staged struct {
	post     *Chain
	receipts []*Receipt
	gasUsed  uint64
}

func blockKey(txs []consensus.Tx) string {
	h := sha3.New256()
	for _, tx := range txs {
		h.Write([]byte(tx.Hash()))
	}
	return hex.EncodeToString(h.Sum(nil))
}

func (a *app) CheckTx(tx consensus.Tx) error {
	t, ok := tx.(*Tx)
	if !ok {
		return fmt.Errorf("ethchain: unexpected tx type %T", tx)
	}
	// Ethereum-style intrinsic checks: a call must fit the block.
	if t.Kind != KindNativeTransfer && t.GasLimit > a.cfg.BlockGasLimit {
		return fmt.Errorf("ethchain: gas limit %d exceeds block gas limit %d", t.GasLimit, a.cfg.BlockGasLimit)
	}
	return nil
}

// execute runs the block speculatively (once per block content) and
// caches the post-state.
func (a *app) execute(txs []consensus.Tx) *staged {
	key := blockKey(txs)
	if st, ok := a.staged[key]; ok {
		return st
	}
	post := a.chain.Clone()
	ethTxs := make([]*Tx, 0, len(txs))
	for _, tx := range txs {
		if t, ok := tx.(*Tx); ok {
			ethTxs = append(ethTxs, t)
		}
	}
	receipts, gasUsed := post.ExecuteBlock(ethTxs)
	st := &staged{post: post, receipts: receipts, gasUsed: gasUsed}
	a.staged[key] = st
	return st
}

func (a *app) ValidateBlock(txs []consensus.Tx) []consensus.Tx {
	// Ethereum includes failed transactions; execution itself is the
	// validation. Nothing is excluded here.
	a.execute(txs)
	return nil
}

func (a *app) ReceiverTime(consensus.Tx) time.Duration { return a.cfg.ReceiverTime }

// ValidationTime is the sequential execution time of the block: total
// gas divided by the node's gas throughput — the heart of the gas→time
// model.
func (a *app) ValidationTime(txs []consensus.Tx) time.Duration {
	st := a.execute(txs)
	return time.Duration(float64(st.gasUsed) / a.cfg.GasPerSecond * float64(time.Second))
}

func (a *app) Commit(height int64, txs []consensus.Tx) {
	st := a.execute(txs)
	a.chain = st.post
	// Drop stale speculative states.
	a.staged = map[string]*staged{}
}

// Cluster is the simulated baseline network.
type Cluster struct {
	*consensus.Cluster
	apps []*app
	cfg  ClusterConfig

	nonce uint64
}

// NewCluster builds an IBFT-style baseline cluster whose genesis runs
// fn (e.g. contract deployment) on every replica identically.
func NewCluster(cfg ClusterConfig, genesis func(*Chain)) *Cluster {
	cfg.fill()
	c := &Cluster{cfg: cfg}
	c.apps = make([]*app, cfg.Nodes)
	packer := func(pending []consensus.Tx) []consensus.Tx {
		var block []consensus.Tx
		var gas uint64
		for _, tx := range pending {
			t, ok := tx.(*Tx)
			if !ok {
				continue
			}
			cost := t.GasLimit
			if t.Kind == KindNativeTransfer {
				cost = NativeTransferGas
			}
			if len(block) > 0 && gas+cost > cfg.BlockGasLimit {
				break
			}
			block = append(block, tx)
			gas += cost
		}
		return block
	}
	cc := consensus.NewCluster(consensus.Config{
		Nodes:         cfg.Nodes,
		BlockInterval: cfg.BlockPeriod,
		MaxBlockTxs:   1 << 30, // gas-limited, not count-limited
		Packer:        packer,
		Pipelined:     false, // IBFT finalizes sequentially
		Latency:       cfg.Latency,
		Seed:          cfg.Seed,
	}, func(i int) consensus.App {
		chain := NewChain()
		if genesis != nil {
			genesis(chain)
		}
		a := &app{cfg: cfg, chain: chain, staged: map[string]*staged{}}
		c.apps[i] = a
		return a
	})
	c.Cluster = cc
	return c
}

// Chain returns validator i's current chain state (read-only use).
func (c *Cluster) Chain(i int) *Chain { return c.apps[i].chain }

// NextNonce hands out client-side nonces so otherwise-identical
// transactions stay distinct.
func (c *Cluster) NextNonce() uint64 {
	c.nonce++
	return c.nonce
}

// Receipt finds the receipt for a committed transaction on any node.
func (c *Cluster) Receipt(txID string) (*Receipt, bool) {
	for _, a := range c.apps {
		if r, ok := a.chain.Receipt(txID); ok {
			return r, true
		}
	}
	return nil, false
}

// Submit schedules a client submission now.
func (c *Cluster) Submit(tx *Tx) { c.SubmitAt(c.Sched().Now(), tx) }
