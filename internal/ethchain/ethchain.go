// Package ethchain is the baseline system of the paper's evaluation:
// an Ethereum/Quorum-style permissioned chain executing minisol smart
// contracts sequentially under gas metering, replicated with an
// IBFT-style consensus (quorum 2n/3+1, fixed block period, block gas
// limit). Latency and throughput emerge from the same mechanics the
// paper attributes to ETH-SC: every validator re-executes every
// transaction in order, execution time is proportional to gas, and
// oversized transactions queue behind the block gas limit.
package ethchain

import (
	"crypto/sha3"
	"embed"
	"encoding/hex"
	"fmt"
	"sort"

	"smartchaindb/internal/minisol"
)

//go:embed contracts/*.sol
var contractFS embed.FS

// ContractSource returns the embedded source of a named contract file
// ("marketplace" or "token").
func ContractSource(name string) (string, error) {
	b, err := contractFS.ReadFile("contracts/" + name + ".sol")
	if err != nil {
		return "", fmt.Errorf("ethchain: no contract source %q", name)
	}
	return string(b), nil
}

// TxKind discriminates transaction types.
type TxKind int

// Transaction kinds.
const (
	KindNativeTransfer TxKind = iota
	KindDeploy
	KindCall
)

// Tx is one Ethereum-style transaction.
type Tx struct {
	Kind     TxKind
	From     string
	To       string // recipient (native) or contract address (call)
	Amount   int64  // native transfer value
	Source   string // contract source (deploy)
	Contract string // contract name within source (deploy)
	Fn       string // function name (call)
	Args     []minisol.Value
	GasLimit uint64
	Nonce    uint64 // distinguishes otherwise-identical transactions

	hash string
}

// Hash returns a stable identifier for the transaction.
func (t *Tx) Hash() string {
	if t.hash != "" {
		return t.hash
	}
	h := sha3.New256()
	fmt.Fprintf(h, "%d|%s|%s|%d|%s|%s|%d|%d|", t.Kind, t.From, t.To, t.Amount, t.Contract, t.Fn, t.GasLimit, t.Nonce)
	for _, a := range t.Args {
		fmt.Fprintf(h, "%s,", minisol.FormatValue(a))
	}
	if t.Kind == KindDeploy {
		h.Write([]byte(t.Source))
	}
	t.hash = hex.EncodeToString(h.Sum(nil))
	return t.hash
}

// Receipt records the execution outcome of a transaction.
type Receipt struct {
	TxID    string
	GasUsed uint64
	Err     error // revert/OOG; the transaction is still included
	Ret     minisol.Value
	Logs    []minisol.Event
	// ContractAddr is set for deployments.
	ContractAddr string
}

// Failed reports whether execution reverted or ran out of gas.
func (r *Receipt) Failed() bool { return r.Err != nil }

// NativeTransferGas is the fixed intrinsic cost of a native transfer.
const NativeTransferGas = 21000

// Chain is one node's replicated chain state.
type Chain struct {
	gas       minisol.GasTable
	balances  map[string]int64
	contracts map[string]*minisol.Instance
	programs  map[string]*minisol.Program // contract address -> program (for cloning)
	names     map[string]string           // contract address -> contract name
	receipts  map[string]*Receipt
	height    int64
}

// NewChain creates an empty chain with the default gas schedule.
func NewChain() *Chain {
	return &Chain{
		gas:       minisol.DefaultGasTable(),
		balances:  make(map[string]int64),
		contracts: make(map[string]*minisol.Instance),
		programs:  make(map[string]*minisol.Program),
		names:     make(map[string]string),
		receipts:  make(map[string]*Receipt),
	}
}

// Fund credits an account (test/genesis helper).
func (c *Chain) Fund(account string, amount int64) { c.balances[account] += amount }

// Balance reads an account balance.
func (c *Chain) Balance(account string) int64 { return c.balances[account] }

// Receipt returns the receipt for an executed transaction.
func (c *Chain) Receipt(txID string) (*Receipt, bool) {
	r, ok := c.receipts[txID]
	return r, ok
}

// Height returns the number of executed blocks.
func (c *Chain) Height() int64 { return c.height }

// ContractAddr derives the deterministic address a deploy transaction
// creates its contract at.
func ContractAddr(tx *Tx) string { return "0x" + tx.Hash()[:40] }

// Execute runs one transaction against the chain, sequentially,
// recording a receipt. Failed transactions are included with their gas
// consumed, as on Ethereum.
func (c *Chain) Execute(tx *Tx) *Receipt {
	r := &Receipt{TxID: tx.Hash()}
	c.receipts[tx.Hash()] = r
	switch tx.Kind {
	case KindNativeTransfer:
		r.GasUsed = NativeTransferGas
		if c.balances[tx.From] < tx.Amount {
			r.Err = fmt.Errorf("ethchain: insufficient balance")
			return r
		}
		c.balances[tx.From] -= tx.Amount
		c.balances[tx.To] += tx.Amount
		return r
	case KindDeploy:
		prog, err := minisol.Compile(tx.Source)
		if err != nil {
			r.Err = err
			return r
		}
		inst, gasUsed, err := minisol.Deploy(prog, tx.Contract, c.gas, minisol.Msg{Sender: tx.From, Block: c.height})
		r.GasUsed = gasUsed
		if err != nil {
			r.Err = err
			return r
		}
		addr := ContractAddr(tx)
		c.contracts[addr] = inst
		c.programs[addr] = prog
		c.names[addr] = tx.Contract
		r.ContractAddr = addr
		return r
	case KindCall:
		inst, ok := c.contracts[tx.To]
		if !ok {
			r.Err = fmt.Errorf("ethchain: no contract at %s", tx.To)
			return r
		}
		res := inst.Call(tx.Fn, minisol.Msg{Sender: tx.From, Value: tx.Amount, Block: c.height}, tx.GasLimit, tx.Args...)
		r.GasUsed = res.GasUsed
		r.Err = res.Err
		r.Ret = res.Ret
		r.Logs = res.Logs
		return r
	}
	r.Err = fmt.Errorf("ethchain: unknown tx kind %d", tx.Kind)
	return r
}

// ExecuteBlock runs a block sequentially and returns the receipts and
// total gas consumed.
func (c *Chain) ExecuteBlock(txs []*Tx) ([]*Receipt, uint64) {
	receipts := make([]*Receipt, len(txs))
	var total uint64
	for i, tx := range txs {
		receipts[i] = c.Execute(tx)
		total += receipts[i].GasUsed
	}
	c.height++
	return receipts, total
}

// Clone deep-copies the chain so a speculative block execution can be
// discarded (a proposal that never commits must not mutate state).
func (c *Chain) Clone() *Chain {
	cp := NewChain()
	cp.height = c.height
	for k, v := range c.balances {
		cp.balances[k] = v
	}
	for k, v := range c.receipts {
		cp.receipts[k] = v
	}
	for addr, inst := range c.contracts {
		prog := c.programs[addr]
		name := c.names[addr]
		ci := &minisol.Instance{Contract: inst.Contract, Gas: inst.Gas, Storage: cloneStorage(inst.Storage)}
		cp.contracts[addr] = ci
		cp.programs[addr] = prog
		cp.names[addr] = name
	}
	return cp
}

func cloneStorage(storage map[string]minisol.Value) map[string]minisol.Value {
	out := make(map[string]minisol.Value, len(storage))
	keys := make([]string, 0, len(storage))
	for k := range storage {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		out[k] = copyVal(storage[k])
	}
	return out
}

func copyVal(v minisol.Value) minisol.Value {
	switch x := v.(type) {
	case *minisol.Array:
		elems := make([]minisol.Value, len(x.Elems))
		for i, e := range x.Elems {
			elems[i] = copyVal(e)
		}
		return &minisol.Array{Elems: elems, ElemType: x.ElemType}
	case *minisol.Struct:
		fields := make(map[string]minisol.Value, len(x.Fields))
		for k, f := range x.Fields {
			fields[k] = copyVal(f)
		}
		return &minisol.Struct{TypeName: x.TypeName, Fields: fields}
	case *minisol.Map:
		entries := make(map[string]minisol.Value, len(x.Entries))
		for k, e := range x.Entries {
			entries[k] = copyVal(e)
		}
		return &minisol.Map{Entries: entries, ValType: x.ValType}
	default:
		return v
	}
}
