package ethchain

import (
	"testing"
	"time"

	"smartchaindb/internal/minisol"
)

func deployMarketplace(t *testing.T, c *Chain) string {
	t.Helper()
	src, err := ContractSource("marketplace")
	if err != nil {
		t.Fatal(err)
	}
	tx := &Tx{Kind: KindDeploy, From: "deployer", Source: src, Contract: "Marketplace", Nonce: 1}
	r := c.Execute(tx)
	if r.Failed() {
		t.Fatalf("deploy: %v", r.Err)
	}
	return r.ContractAddr
}

func caps(ss ...string) *minisol.Array {
	arr := &minisol.Array{}
	for _, s := range ss {
		arr.Elems = append(arr.Elems, minisol.Str(s))
	}
	return arr
}

func call(t *testing.T, c *Chain, addr, from, fn string, args ...minisol.Value) *Receipt {
	t.Helper()
	tx := &Tx{Kind: KindCall, From: from, To: addr, Fn: fn, Args: args, GasLimit: 500_000_000, Nonce: uint64(len(c.receipts) + 1)}
	return c.Execute(tx)
}

func TestNativeTransfer(t *testing.T) {
	c := NewChain()
	c.Fund("alice", 100)
	tx := &Tx{Kind: KindNativeTransfer, From: "alice", To: "bob", Amount: 40, Nonce: 1}
	r := c.Execute(tx)
	if r.Failed() || r.GasUsed != NativeTransferGas {
		t.Fatalf("receipt = %+v", r)
	}
	if c.Balance("alice") != 60 || c.Balance("bob") != 40 {
		t.Errorf("balances = %d / %d", c.Balance("alice"), c.Balance("bob"))
	}
	// Insufficient balance fails but is still included.
	overdraft := &Tx{Kind: KindNativeTransfer, From: "alice", To: "bob", Amount: 1000, Nonce: 2}
	r = c.Execute(overdraft)
	if !r.Failed() {
		t.Error("overdraft should fail")
	}
	if _, ok := c.Receipt(overdraft.Hash()); !ok {
		t.Error("failed tx should still have a receipt")
	}
}

func TestFig2TokenTransferVsNative(t *testing.T) {
	c := NewChain()
	src, err := ContractSource("token")
	if err != nil {
		t.Fatal(err)
	}
	deploy := &Tx{Kind: KindDeploy, From: "minter", Source: src, Contract: "Token", Nonce: 1}
	dr := c.Execute(deploy)
	if dr.Failed() {
		t.Fatal(dr.Err)
	}
	addr := dr.ContractAddr
	if r := call(t, c, addr, "minter", "mint", minisol.Addr("alice"), minisol.Int(100)); r.Failed() {
		t.Fatal(r.Err)
	}
	r := call(t, c, addr, "alice", "transfer", minisol.Addr("bob"), minisol.Int(10))
	if r.Failed() {
		t.Fatal(r.Err)
	}
	// Figure 2: the contract path costs meaningfully more gas than the
	// native primitive (the paper measures ~40% more on Ethereum).
	if r.GasUsed <= NativeTransferGas {
		t.Errorf("contract transfer gas %d should exceed native %d", r.GasUsed, NativeTransferGas)
	}
	overhead := float64(r.GasUsed)/float64(NativeTransferGas) - 1
	if overhead < 0.2 || overhead > 2.0 {
		t.Errorf("contract transfer overhead = %.0f%%, want roughly the paper's +40%%", overhead*100)
	}
	bal := call(t, c, addr, "x", "balanceOf", minisol.Addr("bob"))
	if bal.Ret != minisol.Int(10) {
		t.Errorf("balanceOf(bob) = %v", bal.Ret)
	}
}

func TestMarketplaceFullAuction(t *testing.T) {
	c := NewChain()
	addr := deployMarketplace(t, c)

	// Providers register assets.
	a1 := call(t, c, addr, "sup1", "createAsset", caps("cnc", "3d-printing"))
	a2 := call(t, c, addr, "sup2", "createAsset", caps("cnc", "3d-printing"))
	a3 := call(t, c, addr, "sup3", "createAsset", caps("cnc"))
	if a1.Failed() || a2.Failed() || a3.Failed() {
		t.Fatalf("createAsset: %v %v %v", a1.Err, a2.Err, a3.Err)
	}
	// Buyer posts an RFQ.
	rfq := call(t, c, addr, "buyer", "createRfq", caps("cnc", "3d-printing"))
	if rfq.Failed() || rfq.Ret != minisol.Int(1) {
		t.Fatalf("createRfq: %v %v", rfq.Ret, rfq.Err)
	}
	// Capable suppliers bid; the incapable one is rejected.
	b1 := call(t, c, addr, "sup1", "createBid", minisol.Int(1), minisol.Int(1))
	b2 := call(t, c, addr, "sup2", "createBid", minisol.Int(1), minisol.Int(2))
	if b1.Failed() || b2.Failed() {
		t.Fatalf("createBid: %v %v", b1.Err, b2.Err)
	}
	weak := call(t, c, addr, "sup3", "createBid", minisol.Int(1), minisol.Int(3))
	if !weak.Failed() {
		t.Fatal("bid lacking capability should revert")
	}
	// Bidding with someone else's asset is rejected.
	theft := call(t, c, addr, "sup3", "createBid", minisol.Int(1), minisol.Int(1))
	if !theft.Failed() {
		t.Fatal("bid with foreign asset should revert")
	}
	// Escrow: a bid asset is locked and cannot back a second bid.
	double := call(t, c, addr, "sup1", "createBid", minisol.Int(1), minisol.Int(1))
	if !double.Failed() {
		t.Fatal("double-bidding a locked asset should revert")
	}
	// Only the buyer can accept.
	imposter := call(t, c, addr, "sup1", "acceptBid", minisol.Int(1), minisol.Int(1))
	if !imposter.Failed() {
		t.Fatal("non-buyer accept should revert")
	}
	// Accept bid 1: asset 1 goes to the buyer, bid 2's asset unlocks.
	acc := call(t, c, addr, "buyer", "acceptBid", minisol.Int(1), minisol.Int(1))
	if acc.Failed() {
		t.Fatal(acc.Err)
	}
	owner := call(t, c, addr, "x", "assetOwner", minisol.Int(1))
	if owner.Ret != minisol.Addr("buyer") {
		t.Errorf("winning asset owner = %v", owner.Ret)
	}
	unlocked := call(t, c, addr, "x", "assetLocked", minisol.Int(2))
	if unlocked.Ret != minisol.Bool(false) {
		t.Error("losing asset should be unlocked (refunded)")
	}
	won := call(t, c, addr, "x", "bidWon", minisol.Int(1))
	if won.Ret != minisol.Bool(true) {
		t.Error("bid 1 should be marked won")
	}
	// Double accept is rejected.
	again := call(t, c, addr, "buyer", "acceptBid", minisol.Int(1), minisol.Int(2))
	if !again.Failed() {
		t.Fatal("second accept should revert")
	}
	// The closed RFQ takes no more bids.
	late := call(t, c, addr, "sup2", "createBid", minisol.Int(1), minisol.Int(2))
	if !late.Failed() {
		t.Fatal("bid on closed RFQ should revert")
	}
}

func TestMarketplaceWithdrawBid(t *testing.T) {
	c := NewChain()
	addr := deployMarketplace(t, c)
	call(t, c, addr, "sup1", "createAsset", caps("cnc"))
	call(t, c, addr, "buyer", "createRfq", caps("cnc"))
	bid := call(t, c, addr, "sup1", "createBid", minisol.Int(1), minisol.Int(1))
	if bid.Failed() {
		t.Fatal(bid.Err)
	}
	// Only the bidder may withdraw.
	if r := call(t, c, addr, "sup2", "withdrawBid", minisol.Int(1)); !r.Failed() {
		t.Fatal("foreign withdraw should revert")
	}
	if r := call(t, c, addr, "sup1", "withdrawBid", minisol.Int(1)); r.Failed() {
		t.Fatal(r.Err)
	}
	locked := call(t, c, addr, "x", "assetLocked", minisol.Int(1))
	if locked.Ret != minisol.Bool(false) {
		t.Error("withdrawn bid should unlock the asset")
	}
}

func TestGasGrowsWithPayloadAndBidIsQuadratic(t *testing.T) {
	c := NewChain()
	addr := deployMarketplace(t, c)

	long := func(n int, size int) *minisol.Array {
		arr := &minisol.Array{}
		for i := 0; i < n; i++ {
			s := make([]byte, size)
			for j := range s {
				s[j] = byte('a' + (i+j)%26)
			}
			arr.Elems = append(arr.Elems, minisol.Str(string(s)))
		}
		return arr
	}
	smallAsset := call(t, c, addr, "s1", "createAsset", long(8, 16))
	bigAsset := call(t, c, addr, "s2", "createAsset", long(8, 218))
	if smallAsset.Failed() || bigAsset.Failed() {
		t.Fatal(smallAsset.Err, bigAsset.Err)
	}
	// CREATE gas grows with payload: every 32-byte word is an SSTORE.
	if bigAsset.GasUsed < smallAsset.GasUsed*3 {
		t.Errorf("big createAsset gas %d should dwarf small %d", bigAsset.GasUsed, smallAsset.GasUsed)
	}
	smallRfq := call(t, c, addr, "b1", "createRfq", long(8, 16))
	bigRfq := call(t, c, addr, "b2", "createRfq", long(8, 218))
	if smallRfq.Failed() || bigRfq.Failed() {
		t.Fatal(smallRfq.Err, bigRfq.Err)
	}
	// BID validation compares capabilities pairwise: gas grows
	// superlinearly with capability size.
	smallBid := call(t, c, addr, "s1", "createBid", minisol.Int(1), minisol.Int(1))
	bigBid := call(t, c, addr, "s2", "createBid", minisol.Int(2), minisol.Int(2))
	if smallBid.Failed() || bigBid.Failed() {
		t.Fatal(smallBid.Err, bigBid.Err)
	}
	if bigBid.GasUsed < smallBid.GasUsed*2 {
		t.Errorf("big createBid gas %d vs small %d: want superlinear growth", bigBid.GasUsed, smallBid.GasUsed)
	}
}

func TestUsabilityLineCount(t *testing.T) {
	src, err := ContractSource("marketplace")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := minisol.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	lines := prog.File.Contracts[0].SourceLines
	// §5.2.2: "the equivalent smart contract required 175 lines of code".
	if lines < 150 || lines > 200 {
		t.Errorf("marketplace contract is %d meaningful lines, want ~175", lines)
	}
	t.Logf("marketplace contract: %d meaningful lines", lines)
}

func TestChainCloneIsolation(t *testing.T) {
	c := NewChain()
	addr := deployMarketplace(t, c)
	call(t, c, addr, "s1", "createAsset", caps("cnc"))
	cp := c.Clone()
	call(t, cp, addr, "s2", "createAsset", caps("cnc"))
	// The clone advanced; the original did not.
	orig := call(t, c, addr, "x", "assetOwner", minisol.Int(2))
	if orig.Ret != minisol.Addr("") {
		t.Errorf("original chain saw clone's asset: %v", orig.Ret)
	}
	cloned := call(t, cp, addr, "x", "assetOwner", minisol.Int(2))
	if cloned.Ret != minisol.Addr("s2") {
		t.Errorf("clone lost its own write: %v", cloned.Ret)
	}
}

func TestClusterConvergesAndQueuesOnGasLimit(t *testing.T) {
	src, err := ContractSource("marketplace")
	if err != nil {
		t.Fatal(err)
	}
	deployTx := &Tx{Kind: KindDeploy, From: "genesis", Source: src, Contract: "Marketplace", Nonce: 1}
	addr := ContractAddr(deployTx)
	cluster := NewCluster(ClusterConfig{
		Nodes:         4,
		BlockPeriod:   500 * time.Millisecond,
		BlockGasLimit: 3_000_000,
		GasPerSecond:  15_000_000,
		Seed:          3,
	}, func(c *Chain) {
		c.Execute(deployTx)
	})

	mk := func(from, fn string, nonce uint64, args ...minisol.Value) *Tx {
		return &Tx{Kind: KindCall, From: from, To: addr, Fn: fn, Args: args, GasLimit: 2_500_000, Nonce: nonce}
	}
	// Asset/rfq/bid ids are assigned in commit order, so each phase is
	// committed before the next depends on its ids.
	committed := 0
	step := func(tx *Tx) {
		t.Helper()
		cluster.Submit(tx)
		committed++
		if got := cluster.RunUntilCommitted(committed, cluster.Sched().Now()+5*time.Minute); got != committed {
			t.Fatalf("committed %d, want %d (tx %s)", got, committed, tx.Fn)
		}
	}
	first := mk("sup1", "createAsset", 1, caps("cnc"))
	step(first)
	step(mk("sup2", "createAsset", 2, caps("cnc")))
	third := mk("buyer", "createRfq", 3, caps("cnc"))
	step(third)
	step(mk("sup1", "createBid", 4, minisol.Int(1), minisol.Int(1)))
	step(mk("sup2", "createBid", 5, minisol.Int(1), minisol.Int(2)))
	accept := mk("buyer", "acceptBid", 6, minisol.Int(1), minisol.Int(1))
	step(accept)
	cluster.RunUntil(cluster.Sched().Now() + 2*time.Second)

	// All replicas agree on the outcome.
	for i := 0; i < 4; i++ {
		chain := cluster.Chain(i)
		r := chain.Execute(&Tx{Kind: KindCall, From: "x", To: addr, Fn: "assetOwner",
			Args: []minisol.Value{minisol.Int(1)}, GasLimit: 1_000_000, Nonce: 100 + uint64(i)})
		if r.Ret != minisol.Addr("buyer") {
			t.Errorf("node %d: asset owner = %v", i, r.Ret)
		}
	}
	// Receipts are queryable.
	if r, ok := cluster.Receipt(accept.Hash()); !ok || r.Failed() {
		t.Errorf("accept receipt = %+v, %v", r, ok)
	}
	// With a 3M block gas limit and 2.5M-limit calls, blocks carry one
	// call each: consecutive commits must be at least a block period
	// apart (queueing behind the block gas limit).
	t1, _ := cluster.CommitTime(first.Hash())
	t3, _ := cluster.CommitTime(third.Hash())
	if t3-t1 < 2*cluster.cfg.BlockPeriod {
		t.Errorf("gas-limited queueing not observed: %v .. %v", t1, t3)
	}
}

func TestClusterRejectsOversizedTx(t *testing.T) {
	cluster := NewCluster(ClusterConfig{Nodes: 4, BlockGasLimit: 1_000_000, Seed: 5}, nil)
	tx := &Tx{Kind: KindCall, From: "a", To: "0xnone", Fn: "x", GasLimit: 2_000_000, Nonce: 1}
	cluster.Submit(tx)
	cluster.RunUntil(30 * time.Second)
	if _, ok := cluster.CommitTime(tx.Hash()); ok {
		t.Error("oversized tx should not commit")
	}
	if _, rejected := cluster.Rejected(tx.Hash()); !rejected {
		t.Error("oversized tx should be rejected at admission")
	}
}
