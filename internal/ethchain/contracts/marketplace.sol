// Marketplace is the hand-written ETH-SC baseline of the paper's
// evaluation (§5.2.2): everything SmartchainDB offers as native
// declarative transaction types — asset registration, requests for
// quotes, escrowed bids, withdrawal, and acceptance with automatic
// refunds — re-implemented as ~175 lines of user smart-contract code.
// Capability matching compares strings pairwise, so BID validation is
// O(n²) in payload size, and every stored capability word is an
// SSTORE: the two cost drivers behind the ETH-SC curves of Figure 7.
contract Marketplace {
    struct Asset {
        uint id;
        address owner;
        bool exists;
        bool locked;
        string[] caps;
    }
    struct Rfq {
        uint id;
        address buyer;
        bool exists;
        bool open;
        string[] caps;
        uint[] bids;
    }
    struct Bid {
        uint id;
        address bidder;
        uint rfqId;
        uint assetId;
        bool exists;
        bool active;
        bool won;
    }

    uint assetCount;
    uint rfqCount;
    uint bidCount;
    mapping(uint => Asset) assets;
    mapping(uint => Rfq) rfqs;
    mapping(uint => Bid) bids;

    event AssetCreated(uint id, address owner);
    event RfqCreated(uint id, address buyer);
    event BidPlaced(uint id, uint rfqId, uint assetId, address bidder);
    event BidWithdrawn(uint id, address bidder);
    event BidAccepted(uint id, uint rfqId, address buyer);
    event BidRefunded(uint id, address bidder);

    // createAsset registers a manufacturing asset advertising caps.
    function createAsset(string[] caps) public returns (uint) {
        require(caps.length > 0, "asset must advertise a capability");
        assetCount += 1;
        Asset a;
        a.id = assetCount;
        a.owner = msg.sender;
        a.exists = true;
        a.locked = false;
        a.caps = caps;
        assets[assetCount] = a;
        emit AssetCreated(assetCount, msg.sender);
        return assetCount;
    }

    // createRfq posts a request for quotes demanding caps.
    function createRfq(string[] caps) public returns (uint) {
        require(caps.length > 0, "rfq must demand a capability");
        rfqCount += 1;
        Rfq r;
        r.id = rfqCount;
        r.buyer = msg.sender;
        r.exists = true;
        r.open = true;
        r.caps = caps;
        rfqs[rfqCount] = r;
        emit RfqCreated(rfqCount, msg.sender);
        return rfqCount;
    }

    // hasCap scans the offered capability list for one needed string.
    function hasCap(string[] offered, string needed) internal view returns (bool) {
        for (uint i = 0; i < offered.length; i++) {
            if (offered[i] == needed) {
                return true;
            }
        }
        return false;
    }

    // coversAll checks every requested capability pairwise — the
    // quadratic matching loop the paper measures.
    function coversAll(string[] needed, string[] offered) internal view returns (bool) {
        for (uint i = 0; i < needed.length; i++) {
            if (!hasCap(offered, needed[i])) {
                return false;
            }
        }
        return true;
    }

    // createBid escrows the bidder's asset against an open rfq.
    function createBid(uint rfqId, uint assetId) public returns (uint) {
        require(rfqs[rfqId].exists, "no such rfq");
        require(rfqs[rfqId].open, "rfq is closed");
        require(assets[assetId].exists, "no such asset");
        require(assets[assetId].owner == msg.sender, "bidder does not own the asset");
        require(!assets[assetId].locked, "asset is escrowed by another bid");
        require(coversAll(rfqs[rfqId].caps, assets[assetId].caps), "asset lacks a required capability");
        bidCount += 1;
        Bid b;
        b.id = bidCount;
        b.bidder = msg.sender;
        b.rfqId = rfqId;
        b.assetId = assetId;
        b.exists = true;
        b.active = true;
        b.won = false;
        bids[bidCount] = b;
        assets[assetId].locked = true;
        rfqs[rfqId].bids.push(bidCount);
        emit BidPlaced(bidCount, rfqId, assetId, msg.sender);
        return bidCount;
    }

    // withdrawBid lets the bidder retract an active bid while the
    // auction is open, unlocking the escrowed asset.
    function withdrawBid(uint bidId) public {
        require(bids[bidId].exists, "no such bid");
        require(bids[bidId].active, "bid is not active");
        require(bids[bidId].bidder == msg.sender, "only the bidder may withdraw");
        require(rfqs[bids[bidId].rfqId].open, "auction already settled");
        bids[bidId].active = false;
        assets[bids[bidId].assetId].locked = false;
        emit BidWithdrawn(bidId, msg.sender);
    }

    // acceptBid settles the auction: the winning asset moves to the
    // buyer, every losing bid is refunded, and the rfq closes.
    function acceptBid(uint rfqId, uint bidId) public {
        require(rfqs[rfqId].exists, "no such rfq");
        require(rfqs[rfqId].open, "rfq already settled");
        require(rfqs[rfqId].buyer == msg.sender, "only the rfq buyer may accept");
        require(bids[bidId].exists, "no such bid");
        require(bids[bidId].active, "bid is not active");
        require(bids[bidId].rfqId == rfqId, "bid answers a different rfq");
        uint winAsset = bids[bidId].assetId;
        assets[winAsset].owner = msg.sender;
        assets[winAsset].locked = false;
        bids[bidId].active = false;
        bids[bidId].won = true;
        uint[] list = rfqs[rfqId].bids;
        for (uint i = 0; i < list.length; i++) {
            uint other = list[i];
            if (other != bidId && bids[other].active) {
                bids[other].active = false;
                assets[bids[other].assetId].locked = false;
                emit BidRefunded(other, bids[other].bidder);
            }
        }
        rfqs[rfqId].open = false;
        emit BidAccepted(bidId, rfqId, msg.sender);
    }

    // Read-only views used by the harness and the tests.
    function assetOwner(uint assetId) public view returns (address) {
        return assets[assetId].owner;
    }

    function assetLocked(uint assetId) public view returns (bool) {
        return assets[assetId].locked;
    }

    function rfqBuyer(uint rfqId) public view returns (address) {
        return rfqs[rfqId].buyer;
    }

    function rfqOpen(uint rfqId) public view returns (bool) {
        return rfqs[rfqId].open;
    }

    function bidCountFor(uint rfqId) public view returns (uint) {
        return rfqs[rfqId].bids.length;
    }

    function bidAt(uint rfqId, uint index) public view returns (uint) {
        return rfqs[rfqId].bids[index];
    }

    function bidWon(uint bidId) public view returns (bool) {
        return bids[bidId].won;
    }

    function bidActive(uint bidId) public view returns (bool) {
        return bids[bidId].active;
    }

    function bidBidder(uint bidId) public view returns (address) {
        return bids[bidId].bidder;
    }
}
