// Token is the ERC-20-style contract behind Figure 2: the same value
// transfer the chain offers as a native primitive, re-implemented in
// user code. The extra storage reads/writes and event emission are why
// the contract path costs roughly 40% more gas than the primitive.
contract Token {
    address minter;
    uint totalSupply;
    mapping(address => uint) balances;

    event Transfer(address from, address to, uint amount);
    event Mint(address to, uint amount);

    constructor() {
        minter = msg.sender;
    }

    function mint(address to, uint amount) public {
        require(msg.sender == minter, "only the minter may mint");
        balances[to] = balances[to] + amount;
        totalSupply = totalSupply + amount;
        emit Mint(to, amount);
    }

    function transfer(address to, uint amount) public returns (bool) {
        require(balances[msg.sender] >= amount, "insufficient balance");
        balances[msg.sender] = balances[msg.sender] - amount;
        balances[to] = balances[to] + amount;
        emit Transfer(msg.sender, to, amount);
        return true;
    }

    function balanceOf(address who) public view returns (uint) {
        return balances[who];
    }

    function supply() public view returns (uint) {
        return totalSupply;
    }
}
