package shard

import (
	"errors"
	"strings"
	"testing"

	"smartchaindb/internal/mempool"
	"smartchaindb/internal/txn"
)

// The canonical cross-shard atomic transfer: an asset born on shard 0
// migrates value to shard 1 via a hinted transfer. Both shards commit
// or neither does, and the migrated output is immediately spendable
// locally on its new shard.
func TestCrossShardTransfer(t *testing.T) {
	c := newTestCluster(t, Config{Shards: 2})
	alice, bob, carol := kp(1), kp(2), kp(3)
	a := mkCreate(t, alice, 10, 0)
	submitDrain(t, c, a)
	h0, h1 := c.Shard(0).Node.State().Height(), c.Shard(1).Node.State().Height()

	ref := txn.OutputRef{TxID: a.ID, Index: 0}
	cross := mkTransfer(t, a.ID, ref, alice, []*txn.Output{out(bob, 10)}, 1)
	if err := c.Submit(cross); err != nil {
		t.Fatalf("cross-shard transfer: %v", err)
	}

	// Home shard 1 holds the transaction document and the new output;
	// shard 0 holds only the spent mark.
	if !c.Shard(1).Node.State().IsCommitted(cross.ID) {
		t.Fatal("home shard missing the transaction")
	}
	if c.Shard(0).Node.State().IsCommitted(cross.ID) {
		t.Fatal("input shard has the full transaction document")
	}
	if sp, ok := c.Shard(0).Node.State().SpenderOf(ref); !ok || sp != cross.ID {
		t.Fatalf("input not marked spent on shard 0: %q %v", sp, ok)
	}
	migrated := txn.OutputRef{TxID: cross.ID, Index: 0}
	if !c.Shard(1).Node.State().IsUnspent(migrated) {
		t.Fatal("migrated output missing on shard 1")
	}
	if s, ok := c.Directory().Lookup(cross.ID); !ok || s != 1 {
		t.Fatalf("directory homes %s on %d,%v, want 1", cross.ID[:8], s, ok)
	}
	// Each participant sealed exactly one single-transaction block.
	if got := c.Shard(0).Node.State().Height(); got != h0+1 {
		t.Fatalf("shard 0 height %d, want %d", got, h0+1)
	}
	if got := c.Shard(1).Node.State().Height(); got != h1+1 {
		t.Fatalf("shard 1 height %d, want %d", got, h1+1)
	}
	// No protocol residue: prepare records retired everywhere, holds
	// released (a rival spend of the consumed input now fails on state,
	// not on a claim).
	for s := 0; s < 2; s++ {
		indoubt, err := c.Shard(s).Node.State().InDoubt()
		if err != nil || len(indoubt) != 0 {
			t.Fatalf("shard %d in-doubt after commit: %v %v", s, indoubt, err)
		}
	}

	// The migrated value is live on its new shard: a plain local spend.
	local := mkTransfer(t, a.ID, migrated, bob, []*txn.Output{out(carol, 10)}, -1)
	if r, err := c.RouteOf(local); err != nil || r.Cross() || r.Home != 1 {
		t.Fatalf("spend of migrated output routed %+v, %v", r, err)
	}
	submitDrain(t, c, local)
	if !c.Shard(1).Node.State().IsCommitted(local.ID) {
		t.Fatal("local spend of migrated output did not commit")
	}
}

// A cross-shard transfer can also split value between the home and a
// third shard's future chains: multiple outputs all land on the home
// shard, conserving the input sum.
func TestCrossShardSplit(t *testing.T) {
	c := newTestCluster(t, Config{Shards: 3})
	alice, bob, carol := kp(1), kp(2), kp(3)
	a := mkCreate(t, alice, 10, 0)
	submitDrain(t, c, a)
	cross := mkTransfer(t, a.ID, txn.OutputRef{TxID: a.ID, Index: 0}, alice,
		[]*txn.Output{out(bob, 4), out(carol, 6)}, 2)
	if err := c.Submit(cross); err != nil {
		t.Fatalf("split transfer: %v", err)
	}
	for i := 0; i < 2; i++ {
		if !c.Shard(2).Node.State().IsUnspent(txn.OutputRef{TxID: cross.ID, Index: i}) {
			t.Fatalf("output %d missing on home shard", i)
		}
	}
}

func TestCrossShardConservationRejected(t *testing.T) {
	c := newTestCluster(t, Config{Shards: 2})
	alice, bob := kp(1), kp(2)
	a := mkCreate(t, alice, 10, 0)
	submitDrain(t, c, a)
	ref := txn.OutputRef{TxID: a.ID, Index: 0}

	inflate := mkTransfer(t, a.ID, ref, alice, []*txn.Output{out(bob, 11)}, 1)
	err := c.Submit(inflate)
	if err == nil || !strings.Contains(err.Error(), "conserve") {
		t.Fatalf("inflating transfer: %v", err)
	}
	// Nothing durable, nothing held: the correct transfer goes through.
	assertNoResidue(t, c, ref)
	good := mkTransfer(t, a.ID, ref, alice, []*txn.Output{out(bob, 10)}, 1)
	if err := c.Submit(good); err != nil {
		t.Fatalf("retry after abort: %v", err)
	}
}

func TestCrossShardOwnerMismatchRejected(t *testing.T) {
	c := newTestCluster(t, Config{Shards: 2})
	alice, bob, mallory := kp(1), kp(2), kp(66)
	a := mkCreate(t, alice, 10, 0)
	submitDrain(t, c, a)
	ref := txn.OutputRef{TxID: a.ID, Index: 0}

	// Mallory signs a well-formed transfer naming themself as the
	// input's owner; the fulfillment verifies, but the staged input
	// doc says alice.
	theft := mkTransfer(t, a.ID, ref, mallory, []*txn.Output{out(bob, 10)}, 1)
	err := c.Submit(theft)
	if err == nil || !strings.Contains(err.Error(), "owner mismatch") {
		t.Fatalf("theft transfer: %v", err)
	}
	assertNoResidue(t, c, ref)
}

func TestCrossShardHoldConflict(t *testing.T) {
	c := newTestCluster(t, Config{Shards: 2})
	alice, bob, carol := kp(1), kp(2), kp(3)
	a := mkCreate(t, alice, 10, 0)
	submitDrain(t, c, a)
	ref := txn.OutputRef{TxID: a.ID, Index: 0}

	// A pending local rival claims the input in shard 0's pool.
	rival := mkTransfer(t, a.ID, ref, alice, []*txn.Output{out(carol, 10)}, -1)
	if err := c.Submit(rival); err != nil {
		t.Fatalf("rival admit: %v", err)
	}
	cross := mkTransfer(t, a.ID, ref, alice, []*txn.Output{out(bob, 10)}, 1)
	var claimed *mempool.ErrSpendClaimed
	if err := c.Submit(cross); !errors.As(err, &claimed) {
		t.Fatalf("cross transfer over a pooled claim: %v", err)
	}
	// The rival commits locally; the cross retry now fails on state.
	c.DrainLocal(64)
	var spent *txn.DoubleSpendError
	if err := c.Submit(cross); !errors.As(err, &spent) {
		t.Fatalf("cross transfer of a spent input: %v", err)
	}
}

func TestCrossShardNonTransferRejected(t *testing.T) {
	c := newTestCluster(t, Config{Shards: 2})
	alice, bob := kp(1), kp(2)
	a := mkCreate(t, alice, 10, 0)
	submitDrain(t, c, a)
	bid := mkTransfer(t, a.ID, txn.OutputRef{TxID: a.ID, Index: 0}, alice, []*txn.Output{out(bob, 10)}, 1)
	bid.Operation = txn.OpBid
	err := c.Submit(bid)
	if err == nil || !strings.Contains(err.Error(), "not supported") {
		t.Fatalf("cross-shard BID: %v", err)
	}
}

// assertNoResidue checks an aborted 2PC round left nothing behind: no
// in-doubt records, the input still unspent, and no lingering claim
// (proven by admitting a fresh local spend of it).
func assertNoResidue(t *testing.T, c *Cluster, ref txn.OutputRef) {
	t.Helper()
	for s := 0; s < c.Shards(); s++ {
		indoubt, err := c.Shard(s).Node.State().InDoubt()
		if err != nil || len(indoubt) != 0 {
			t.Fatalf("shard %d in-doubt after abort: %v %v", s, indoubt, err)
		}
	}
	home, _ := c.dir.Lookup(ref.TxID)
	if !c.Shard(home).Node.State().IsUnspent(ref) {
		t.Fatal("aborted round consumed the input")
	}
}

// A reopened disk cluster rebuilds the directory from the shards'
// transaction logs: migrated outputs stay routable and spendable.
func TestDirectoryRebuildAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Shards: 2, DataDir: dir}
	cfg.Node.NoSync = true
	c, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	alice, bob, carol := kp(1), kp(2), kp(3)
	a := mkCreate(t, alice, 10, 0)
	submitDrain(t, c, a)
	cross := mkTransfer(t, a.ID, txn.OutputRef{TxID: a.ID, Index: 0}, alice, []*txn.Output{out(bob, 10)}, 1)
	if err := c.Submit(cross); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	c2, err := Open(cfg)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer c2.Close()
	if s, ok := c2.Directory().Lookup(cross.ID); !ok || s != 1 {
		t.Fatalf("rebuilt directory homes %s on %d,%v, want 1", cross.ID[:8], s, ok)
	}
	if s, ok := c2.Directory().Lookup(a.ID); !ok || s != 0 {
		t.Fatalf("rebuilt directory homes %s on %d,%v, want 0", a.ID[:8], s, ok)
	}
	local := mkTransfer(t, a.ID, txn.OutputRef{TxID: cross.ID, Index: 0}, bob, []*txn.Output{out(carol, 10)}, -1)
	submitDrain(t, c2, local)
	if !c2.Shard(1).Node.State().IsCommitted(local.ID) {
		t.Fatal("migrated output not spendable after reopen")
	}
}
