package shard

import "smartchaindb/internal/obs"

// shardObs caches the per-shard observability handles. Every handle is
// nil-safe: a shard without a registry records nothing.
type shardObs struct {
	localBlocks *obs.Counter // shard.local_blocks — zero-coordination commits
	crossTxs    *obs.Counter // shard.cross_txs — 2PC rounds this shard joined
	prepared    *obs.Counter // shard.2pc.prepared — durable PREPARE votes
	committed   *obs.Counter // shard.2pc.committed — applies on this shard
	aborted     *obs.Counter // shard.2pc.aborted — abort decisions recorded
	recovered   *obs.Counter // shard.2pc.indoubt_recovered — resolved at open
	height      *obs.Gauge   // shard.height — committed chain height

	prepareNs *obs.Histogram // shard.2pc.prepare_ns — stage + durable vote
	applyNs   *obs.Histogram // shard.2pc.apply_ns — decided apply
}

func newShardObs(r *obs.Registry) shardObs {
	if r == nil {
		return shardObs{}
	}
	return shardObs{
		localBlocks: r.Counter("shard.local_blocks"),
		crossTxs:    r.Counter("shard.cross_txs"),
		prepared:    r.Counter("shard.2pc.prepared"),
		committed:   r.Counter("shard.2pc.committed"),
		aborted:     r.Counter("shard.2pc.aborted"),
		recovered:   r.Counter("shard.2pc.indoubt_recovered"),
		height:      r.Gauge("shard.height"),
		prepareNs:   r.Histogram("shard.2pc.prepare_ns"),
		applyNs:     r.Histogram("shard.2pc.apply_ns"),
	}
}
