package shard

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"smartchaindb/internal/txn"
)

// The 2PC crash property: kill every shard's WAL at a consistent cut
// taken anywhere in the protocol — before or after each prepare,
// before or after the decision, mid-record — and a reopened cluster
// drives both shards to the same outcome: the cross-shard transfer is
// either committed on all participants or on none, with no in-doubt
// records surviving recovery. Always on disk engines: the property is
// about WAL replay.
func TestCrossShardCrashConvergence(t *testing.T) {
	// One clean run to learn the event schedule (names only; sizes are
	// per-trial, but the sequence is deterministic).
	events := crashRun(t, t.TempDir())
	if len(events) < 5 {
		t.Fatalf("2PC fired only %d events: %v", len(events), events)
	}
	rng := rand.New(rand.NewSource(7))
	for cut := 0; cut <= len(events); cut++ {
		for trial := 0; trial < 3; trial++ {
			name := "pre-2pc"
			if cut > 0 {
				name = events[cut-1].name
			}
			t.Run(fmt.Sprintf("cut=%s/trial=%d", name, trial), func(t *testing.T) {
				crashAt(t, cut, rng.Int63())
			})
		}
	}
}

type twopcEvent struct {
	name string
	wal  []int64 // per-shard WAL size when the event fired
}

func walPath(dir string, shard int) string {
	return filepath.Join(dir, fmt.Sprintf("shard-%02d", shard), "wal-000000.log")
}

// crashTransfer builds the deterministic scenario: an asset on shard 0
// migrating 10 shares to shard 1.
func crashTransfer(t *testing.T) (create, cross *txn.Transaction) {
	alice, bob := kp(1), kp(2)
	create = mkCreate(t, alice, 10, 0)
	cross = mkTransfer(t, create.ID, txn.OutputRef{TxID: create.ID, Index: 0}, alice,
		[]*txn.Output{out(bob, 10)}, 1)
	return create, cross
}

// crashRun executes the full protocol in dir, recording a WAL-size
// snapshot at every durable 2PC event.
func crashRun(t *testing.T, dir string) []twopcEvent {
	t.Helper()
	var events []twopcEvent
	cfg := Config{Shards: 2, DataDir: dir}
	cfg.Node.NoSync = true
	cfg.EventHook = func(ev string) {
		sizes := make([]int64, 2)
		for s := range sizes {
			if st, err := os.Stat(walPath(dir, s)); err == nil {
				sizes[s] = st.Size()
			}
		}
		events = append(events, twopcEvent{name: ev, wal: sizes})
	}
	c, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	create, cross := crashTransfer(t)
	submitDrain(t, c, create)
	if err := c.Submit(cross); err != nil {
		t.Fatalf("cross transfer: %v", err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	return events
}

// crashAt reruns the protocol fresh, truncates every shard's WAL to
// its size at global event index cut (0 = before any 2PC event) plus
// a random torn tail bounded by the next event, reopens, and asserts
// both shards converged.
func crashAt(t *testing.T, cut int, seed int64) {
	dir := t.TempDir()
	events := crashRun(t, dir)
	rng := rand.New(rand.NewSource(seed))

	// The consistent cut: both WALs at their size when event `cut`
	// fired, plus torn bytes that never reach the next global event's
	// durable frontier for that shard.
	for s := 0; s < 2; s++ {
		var at int64
		if cut == 0 {
			at = preEventSize(events, s)
		} else {
			at = events[cut-1].wal[s]
			if cut < len(events) {
				// Torn tail: random extra bytes up to the next global
				// event's durable frontier for this shard — a write
				// the crash caught mid-flight.
				if room := events[cut].wal[s] - at; room > 0 {
					at += rng.Int63n(room + 1)
				}
			}
		}
		if err := os.Truncate(walPath(dir, s), at); err != nil {
			t.Fatal(err)
		}
	}

	cfg := Config{Shards: 2, DataDir: dir}
	cfg.Node.NoSync = true
	c, err := Open(cfg)
	if err != nil {
		t.Fatalf("reopen after crash: %v", err)
	}
	defer c.Close()
	create, cross := crashTransfer(t)
	ref := txn.OutputRef{TxID: create.ID, Index: 0}

	committed := c.Shard(1).Node.State().IsCommitted(cross.ID)
	spender, spent := c.Shard(0).Node.State().SpenderOf(ref)
	if committed != (spent && spender == cross.ID) {
		t.Fatalf("diverged: home committed=%v, input spent=%v by %q", committed, spent, spender)
	}
	for s := 0; s < 2; s++ {
		indoubt, err := c.Shard(s).Node.State().InDoubt()
		if err != nil || len(indoubt) != 0 {
			t.Fatalf("shard %d still in doubt after recovery: %v %v", s, indoubt, err)
		}
	}
	if committed {
		if !c.Shard(1).Node.State().IsUnspent(txn.OutputRef{TxID: cross.ID, Index: 0}) {
			t.Fatal("committed transfer's output missing on home shard")
		}
		if c.Recovered == 0 && !spent {
			t.Fatal("inconsistent recovery accounting")
		}
	} else {
		// Aborted: the chain is live — the same transfer goes through.
		if err := c.Submit(cross); err != nil {
			t.Fatalf("resubmit after presumed abort: %v", err)
		}
		if !c.Shard(1).Node.State().IsCommitted(cross.ID) {
			t.Fatal("resubmitted transfer did not commit")
		}
	}
}

// preEventSize reports shard s's WAL size just before the first 2PC
// event — the first recorded snapshot is taken at the first event, so
// anything at or above it includes 2PC bytes; cutting at the first
// event's size is the closest consistent pre-2PC cut that still holds
// the setup blocks. The setup committed before any event fired, and
// the first events (hold/stage) write nothing durable, so this equals
// the post-setup size.
func preEventSize(events []twopcEvent, s int) int64 {
	if len(events) == 0 {
		return 0
	}
	return events[0].wal[s]
}
