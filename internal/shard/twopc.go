package shard

import (
	"fmt"
	"time"

	"smartchaindb/internal/ledger"
	"smartchaindb/internal/mempool"
	"smartchaindb/internal/txn"
)

// Cross-shard two-phase commit, coordinator side. The home shard
// coordinates; participants are exactly the shards the transaction's
// footprint touches. The protocol over each participant's ledger hooks
// (ledger/prepare.go):
//
//  1. hold    — claim the owned spend keys in every participant's
//               mempool (all-or-nothing per shard); rivals are now
//               rejected at admission, so no local block can consume
//               the inputs mid-protocol.
//  2. stage   — each participant checks and stages its owned share
//               against committed state; the coordinator cross-checks
//               ownership, asset, and conservation from the staged
//               input docs. Nothing durable yet: any failure just
//               releases the holds.
//  3. prepare — each participant durably logs its staged share as a
//               PREPARE record: the vote. From here the transaction
//               is in doubt across a crash until a decision lands.
//  4. decide  — the home shard's apply is the commit point: one
//               atomic WAL group seals its effects, records the
//               commit decision, and clears its prepare record. The
//               decision exists ⟺ the home shard applied.
//  5. apply   — the remaining participants apply the same way, each
//               recording the decision locally.
//
// A crash between 3 and 5 leaves prepare records on the laggards;
// recovery (recovery.go) finds the home shard's decision and drives
// them to the same outcome, or presumes abort when no decision
// exists anywhere.

// decisionDoc renders the coordinator's decision record.
func decisionDoc(txID, outcome string, participants []int) map[string]any {
	parts := make([]any, len(participants))
	for i, p := range participants {
		parts[i] = float64(p)
	}
	return map[string]any{
		"kind":         "decision",
		"tx":           txID,
		"outcome":      outcome,
		"participants": parts,
	}
}

// event fires the configured 2PC event hook.
func (c *Cluster) event(step, txID string) {
	if c.cfg.EventHook != nil {
		c.cfg.EventHook(step + ":" + txID[:8])
	}
}

// ownedSpendKeys lists the mempool spend-claim keys of t's inputs that
// shard id owns.
func (c *Cluster) ownedSpendKeys(t *txn.Transaction, id int) []string {
	var keys []string
	for _, ref := range t.SpentRefs() {
		if s, ok := c.dir.Lookup(ref.TxID); ok && s == id {
			keys = append(keys, "utxo:"+ref.String())
		}
	}
	return keys
}

// commitCross runs the two-phase commit for a routed cross-shard
// transaction and blocks until its global outcome. One coordinator
// round runs at a time (xmu); local commits on all shards proceed
// concurrently, fenced off the inputs by the mempool holds.
func (c *Cluster) commitCross(t *txn.Transaction, r Route) error {
	c.xmu.Lock()
	defer c.xmu.Unlock()

	home := c.shards[r.Home]
	// Only TRANSFER crosses shards: every other operation reads
	// referenced state (auction chains, escrow) the router keeps
	// co-located.
	if t.Operation != txn.OpTransfer {
		return fmt.Errorf("shard: cross-shard %s is not supported", t.Operation)
	}
	if err := home.Node.Schemas().ValidateTx(t); err != nil {
		return err
	}
	if err := txn.VerifyFulfillments(t); err != nil {
		return err
	}
	for _, id := range r.Participants {
		c.shards[id].ob.crossTxs.Inc()
	}

	// Phase 1: claim the inputs in every participant's admission
	// screen. All-or-nothing per shard; a clash anywhere aborts with
	// nothing durable taken.
	held := make(map[int][]string, len(r.Participants))
	release := func() {
		for id, keys := range held {
			c.shards[id].Pool.Release(keys, t.ID)
		}
	}
	for _, id := range r.Participants {
		keys := c.ownedSpendKeys(t, id)
		if len(keys) == 0 {
			continue // the home shard may own no inputs (pure migration)
		}
		if err := c.shards[id].Pool.Hold(keys, t.ID); err != nil {
			release()
			return err
		}
		held[id] = keys
	}
	c.event("hold", t.ID)

	// Phase 2: stage each participant's share and cross-check the
	// whole from the staged input docs.
	prepared := make(map[int]*ledger.Prepared, len(r.Participants))
	for _, id := range r.Participants {
		p, err := c.shards[id].Node.State().StageOwned(t, id == r.Home, c.ownsFn(id))
		if err != nil {
			release()
			return err
		}
		prepared[id] = p
	}
	if err := crossCheck(t, prepared); err != nil {
		release()
		return err
	}
	c.event("stage", t.ID)

	// Phase 3: durable votes. A failed vote aborts the prepared
	// participants with a durable abort decision — their surviving
	// prepare records would otherwise stay in doubt forever.
	abort := func(upto int) {
		dec := decisionDoc(t.ID, "abort", r.Participants)
		for _, id := range r.Participants[:upto] {
			if c.shards[id].Node.State().AbortPrepared(t.ID, dec) == nil {
				c.shards[id].ob.aborted.Inc()
			}
		}
		release()
	}
	for i, id := range r.Participants {
		t0 := time.Now()
		if err := c.shards[id].Node.State().LogPrepare(prepared[id]); err != nil {
			abort(i)
			return fmt.Errorf("shard %d: prepare %s: %w", id, t.ID[:8], err)
		}
		c.shards[id].ob.prepared.Inc()
		c.shards[id].ob.prepareNs.ObserveSince(t0)
		c.event(fmt.Sprintf("prepare@%d", id), t.ID)
	}

	// Phase 4: the commit point. The home shard's apply atomically
	// seals its effects and records the commit decision; failure here
	// (nothing was applied) aborts everyone.
	dec := decisionDoc(t.ID, "commit", r.Participants)
	t0 := time.Now()
	if _, err := home.Node.State().ApplyPrepared(prepared[r.Home], dec); err != nil {
		abort(len(r.Participants))
		return fmt.Errorf("shard %d: decide %s: %w", r.Home, t.ID[:8], err)
	}
	home.ob.committed.Inc()
	home.ob.applyNs.ObserveSince(t0)
	c.event("decide", t.ID)

	// Phase 5: the decision is durable — every remaining participant
	// must apply. An apply failure past the commit point cannot be
	// rolled back; surface it (recovery replays the survivor's
	// prepare record against the recorded decision on reopen).
	var applyErr error
	for _, id := range r.Participants {
		if id == r.Home {
			continue
		}
		t0 := time.Now()
		if _, err := c.shards[id].Node.State().ApplyPrepared(prepared[id], dec); err != nil {
			if applyErr == nil {
				applyErr = fmt.Errorf("shard %d: apply decided %s: %w", id, t.ID[:8], err)
			}
			continue
		}
		c.shards[id].ob.committed.Inc()
		c.shards[id].ob.applyNs.ObserveSince(t0)
		c.event(fmt.Sprintf("apply@%d", id), t.ID)
	}

	// Cleanup: sweep rival pool entries, release the holds, route the
	// new outputs to the home shard.
	for _, id := range r.Participants {
		c.shards[id].Pool.RemoveCommitted([]mempool.Tx{t})
		c.shards[id].ob.height.Set(c.shards[id].Node.State().Height())
	}
	release()
	c.dir.Set(t.ID, r.Home)
	c.event("release", t.ID)
	return applyErr
}

// crossCheck is the coordinator's semantic validation of a cross-shard
// transfer, assembled from the participants' staged input docs: every
// input must exist (staged by exactly one participant), be owned by
// the keys the fulfillment names, hold shares of the transferred
// asset, and the input and output amounts must conserve.
func crossCheck(t *txn.Transaction, prepared map[int]*ledger.Prepared) error {
	docs := make(map[string]map[string]any)
	for _, p := range prepared {
		for key, doc := range p.InputDocs {
			docs[key] = doc
		}
	}
	var in uint64
	for i, input := range t.Inputs {
		if input.Fulfills == nil {
			return fmt.Errorf("shard: input %d of %s spends nothing", i, t.ID[:8])
		}
		doc, ok := docs[input.Fulfills.String()]
		if !ok {
			return &txn.InputDoesNotExistError{TxID: input.Fulfills.TxID}
		}
		owners, _ := doc["owner"].([]any)
		if len(owners) != len(input.OwnersBefore) {
			return fmt.Errorf("shard: input %d of %s: owner mismatch", i, t.ID[:8])
		}
		for j, o := range owners {
			if s, _ := o.(string); s != input.OwnersBefore[j] {
				return fmt.Errorf("shard: input %d of %s: owner mismatch", i, t.ID[:8])
			}
		}
		if aid, _ := doc["asset_id"].(string); aid != t.AssetID() {
			return fmt.Errorf("shard: input %d of %s: asset %s, want %s", i, t.ID[:8], aid, t.AssetID())
		}
		amt, _ := doc["amount"].(float64)
		in += uint64(amt)
	}
	var out uint64
	for _, o := range t.Outputs {
		out += o.Amount
	}
	if in != out {
		return fmt.Errorf("shard: %s does not conserve: inputs %d, outputs %d", t.ID[:8], in, out)
	}
	return nil
}
