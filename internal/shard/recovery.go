package shard

import "fmt"

// Recovery of in-doubt cross-shard transactions at cluster open. Each
// shard's surviving PREPARE records are transactions whose apply never
// became durable locally. The global outcome is decided by the home
// shard's decision record — the commit point's atomic WAL group wrote
// it iff the home shard applied — so recovery searches every shard for
// a commit decision and replays the prepared share forward when one
// exists, or presumes abort when none does (no participant can have
// applied: applies only start after the decision is durable).
func (c *Cluster) recover() error {
	for _, sh := range c.shards {
		indoubt, err := sh.Node.State().InDoubt()
		if err != nil {
			return fmt.Errorf("shard %d: scan in-doubt: %w", sh.ID, err)
		}
		for txID, p := range indoubt {
			outcome := c.globalOutcome(txID)
			if outcome == "commit" {
				if sh.Node.State().Applied(p) {
					// Defensive: effects present with the prepare record
					// surviving should be impossible (one atomic group
					// clears it); just retire the record.
					if err := sh.Node.State().AbortPrepared(txID, decisionDoc(txID, "commit", nil)); err != nil {
						return fmt.Errorf("shard %d: retire %s: %w", sh.ID, txID[:8], err)
					}
				} else if _, err := sh.Node.State().ApplyPrepared(p, decisionDoc(txID, "commit", nil)); err != nil {
					return fmt.Errorf("shard %d: replay committed %s: %w", sh.ID, txID[:8], err)
				}
				sh.ob.committed.Inc()
			} else {
				if err := sh.Node.State().AbortPrepared(txID, decisionDoc(txID, "abort", nil)); err != nil {
					return fmt.Errorf("shard %d: abort in-doubt %s: %w", sh.ID, txID[:8], err)
				}
				sh.ob.aborted.Inc()
			}
			sh.ob.recovered.Inc()
			c.Recovered++
		}
	}
	return nil
}

// globalOutcome searches every shard for a decision record. Any commit
// decision wins (only the commit point writes one); an abort record
// confirms abort; no record anywhere is presumed abort.
func (c *Cluster) globalOutcome(txID string) string {
	outcome := "abort"
	for _, sh := range c.shards {
		if o, ok := sh.Node.State().Decision(txID); ok && o == "commit" {
			return "commit"
		} else if ok {
			outcome = o
		}
	}
	return outcome
}
