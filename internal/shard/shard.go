package shard

import (
	"fmt"
	"path/filepath"
	"sync"

	"smartchaindb/internal/consensus"
	"smartchaindb/internal/ledger"
	"smartchaindb/internal/mempool"
	"smartchaindb/internal/obs"
	"smartchaindb/internal/server"
	"smartchaindb/internal/txn"
)

// Config parameterizes a sharded deployment.
type Config struct {
	// Shards is the shard count (default 2).
	Shards int
	// Node configures every shard's server node. DataDir and Obs are
	// managed per shard (see DataDir and ObsFor); other fields apply
	// to each shard verbatim.
	Node server.Config
	// DataDir, when set, gives every shard a persistent storage engine
	// under DataDir/shard-<id> — its own WAL, segments, and MVCC
	// clock. A cluster reopened over existing directories recovers
	// every shard, resolves in-doubt cross-shard transactions
	// (recovery.go), and rebuilds the routing directory. Empty keeps
	// per-shard in-memory backends.
	DataDir string
	// MempoolBatch caps one admission batch per shard pool.
	MempoolBatch int
	// Place overrides the placement of transactions with no spent
	// inputs and no shard hint (default: hash of the transaction ID).
	Place func(t *txn.Transaction) int
	// ObsFor, when set, supplies each shard's observability registry;
	// per-shard registries keep every shard's metrics separable (the
	// ops endpoint serves them under shard labels). Nil entries keep
	// that shard's no-op build.
	ObsFor func(shard int) *obs.Registry
	// EventHook, when set, fires synchronously after every durable
	// 2PC step, named "<step>:<txid-prefix>" — the crash property
	// tests cut WALs at these points, and the obs stage trace rides
	// the same call sites. Steps: hold, stage, prepare@<shard>,
	// decide, apply@<shard>, release.
	EventHook func(event string)
}

func (c *Config) fill() {
	if c.Shards <= 0 {
		c.Shards = 2
	}
}

// Shard is one vertical slice: a full server node (ledger state over
// its own storage backend) plus its own footprint-indexed mempool.
type Shard struct {
	ID   int
	Node *server.Node
	Pool *mempool.Pool
	// mu serializes this shard's local commit cycles (pack → commit →
	// sweep). 2PC staging and apply do not take it: the ledger's own
	// lock orders them against local commits, and mempool holds keep
	// the footprints disjoint.
	mu sync.Mutex
	ob shardObs
}

// Cluster is the sharded deployment: S shards plus the routing
// directory and the cross-shard commit coordinator.
type Cluster struct {
	cfg    Config
	shards []*Shard
	dir    *Directory
	// xmu serializes cross-shard 2PC rounds: one coordinator at a
	// time, so prepare/decide interleavings across transactions cannot
	// deadlock on holds. Local commits on disjoint shards proceed in
	// parallel regardless.
	xmu sync.Mutex
	// Recovered counts the in-doubt transactions resolved at open.
	Recovered int
}

// Open builds (or reopens) the sharded cluster. With DataDir set, each
// shard recovers its own chain from its WAL; then in-doubt cross-shard
// transactions are driven to their global outcome and the routing
// directory is rebuilt from the shards' transaction logs.
func Open(cfg Config) (*Cluster, error) {
	cfg.fill()
	c := &Cluster{cfg: cfg, dir: NewDirectory()}
	c.shards = make([]*Shard, cfg.Shards)
	for i := range c.shards {
		nodeCfg := cfg.Node
		if cfg.DataDir != "" {
			nodeCfg.DataDir = filepath.Join(cfg.DataDir, fmt.Sprintf("shard-%02d", i))
		}
		if cfg.ObsFor != nil {
			nodeCfg.Obs = cfg.ObsFor(i)
		}
		id := i
		nodeCfg.AdmitFilter = func(t *txn.Transaction) error {
			r, err := c.RouteOf(t)
			if err != nil {
				return err
			}
			if r.Home != id {
				return &ErrWrongShard{TxID: t.ID, Got: id, Home: r.Home}
			}
			return nil
		}
		node, err := server.OpenNode(nodeCfg)
		if err != nil {
			for _, s := range c.shards[:i] {
				s.Node.Close()
			}
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		sh := &Shard{ID: i, Node: node, ob: newShardObs(nodeCfg.Obs)}
		sh.Pool = mempool.New(mempool.Config{
			BatchSize: cfg.MempoolBatch,
			Obs:       nodeCfg.Obs,
			Check: func(txs []mempool.Tx) map[string]error {
				batch := make([]consensus.Tx, len(txs))
				for i, tx := range txs {
					batch[i] = tx.(consensus.Tx)
				}
				return node.CheckTxBatch(batch)
			},
		})
		c.shards[i] = sh
	}
	if err := c.recover(); err != nil {
		c.Close()
		return nil, err
	}
	c.rebuildDirectory()
	for _, sh := range c.shards {
		sh.ob.height.Set(sh.Node.State().Height())
	}
	return c, nil
}

// New builds an in-memory sharded cluster, panicking on failure — the
// test and bench constructor.
func New(cfg Config) *Cluster {
	c, err := Open(cfg)
	if err != nil {
		panic(fmt.Sprintf("shard: open: %v", err))
	}
	return c
}

// Close releases every shard's storage backend.
func (c *Cluster) Close() error {
	var first error
	for _, sh := range c.shards {
		if sh == nil {
			continue
		}
		if err := sh.Node.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Shards reports the shard count.
func (c *Cluster) Shards() int { return len(c.shards) }

// Shard exposes one shard (for queries, tests, and the ops endpoint).
func (c *Cluster) Shard(i int) *Shard { return c.shards[i] }

// Directory exposes the routing directory.
func (c *Cluster) Directory() *Directory { return c.dir }

// place applies the configured placement for input-less transactions.
func (c *Cluster) place(t *txn.Transaction) int {
	if c.cfg.Place != nil {
		if s := c.cfg.Place(t); s >= 0 && s < len(c.shards) {
			return s
		}
	}
	return placeByHash(t, len(c.shards))
}

// rebuildDirectory scans every shard's transaction log into the
// routing directory — the open-time ground truth rebuild.
func (c *Cluster) rebuildDirectory() {
	for _, sh := range c.shards {
		ids := sh.Node.State().Store().Collection(ledger.ColTransactions).Keys()
		c.dir.SetAll(ids, sh.ID)
	}
}

// Submit routes one transaction: a single-shard route admits into the
// home shard's mempool (committed by that shard's next local block); a
// cross-shard route runs the full two-phase commit synchronously and
// returns its outcome.
func (c *Cluster) Submit(t *txn.Transaction) error {
	r, err := c.RouteOf(t)
	if err != nil {
		return err
	}
	if r.Cross() {
		return c.commitCross(t, r)
	}
	sh := c.shards[r.Home]
	res := sh.Pool.AdmitBatch([]mempool.Tx{t})
	if err, ok := res.Rejected[t.ID]; ok {
		return err
	}
	if err, ok := res.Skipped[t.ID]; ok {
		return err
	}
	return nil
}

// SubmitBatch routes a batch: each transaction lands in its home
// shard's admission batch (exercising that shard's routed
// CheckTxBatch), and cross-shard transactions run 2PC in submission
// order. Per-transaction verdicts are returned by ID; absent means
// admitted or committed.
func (c *Cluster) SubmitBatch(txs []*txn.Transaction) map[string]error {
	errs := make(map[string]error)
	perShard := make([][]mempool.Tx, len(c.shards))
	var cross []*txn.Transaction
	crossRoute := make(map[string]Route)
	for _, t := range txs {
		r, err := c.RouteOf(t)
		if err != nil {
			errs[t.ID] = err
			continue
		}
		if r.Cross() {
			cross = append(cross, t)
			crossRoute[t.ID] = r
			continue
		}
		perShard[r.Home] = append(perShard[r.Home], t)
	}
	var wg sync.WaitGroup
	var mu sync.Mutex
	for id, batch := range perShard {
		if len(batch) == 0 {
			continue
		}
		wg.Add(1)
		go func(sh *Shard, batch []mempool.Tx) {
			defer wg.Done()
			res := sh.Pool.AdmitBatch(batch)
			mu.Lock()
			for id, err := range res.Rejected {
				errs[id] = err
			}
			for id, err := range res.Skipped {
				errs[id] = err
			}
			mu.Unlock()
		}(c.shards[id], batch)
	}
	wg.Wait()
	for _, t := range cross {
		if err := c.commitCross(t, crossRoute[t.ID]); err != nil {
			errs[t.ID] = err
		}
	}
	return errs
}

// CommitLocal packs and commits one local block on shard id from its
// pending pool, with zero cross-shard coordination. Returns the
// transactions committed. Safe to call concurrently across shards —
// the single-shard scaling path.
func (c *Cluster) CommitLocal(id int, maxTxs int) []*txn.Transaction {
	sh := c.shards[id]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	packed := sh.Pool.Pack(maxTxs, c.cfg.Node.ParallelWorkers)
	if len(packed) == 0 {
		return nil
	}
	batch := make([]*txn.Transaction, len(packed))
	for i, tx := range packed {
		batch[i] = tx.(*txn.Transaction)
	}
	committed, _ := sh.Node.State().CommitBlock(batch)
	sh.Pool.RemoveCommitted(asPoolTxs(committed))
	ids := make([]string, len(committed))
	for i, t := range committed {
		ids[i] = t.ID
	}
	c.dir.SetAll(ids, id)
	sh.ob.localBlocks.Inc()
	sh.ob.height.Set(sh.Node.State().Height())
	return committed
}

// DrainLocal commits local blocks on every shard in parallel until all
// pools are empty — the test/bench settle step.
func (c *Cluster) DrainLocal(maxTxs int) int {
	total := 0
	var mu sync.Mutex
	var wg sync.WaitGroup
	for id := range c.shards {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for {
				n := len(c.CommitLocal(id, maxTxs))
				if n == 0 {
					return
				}
				mu.Lock()
				total += n
				mu.Unlock()
			}
		}(id)
	}
	wg.Wait()
	return total
}

func asPoolTxs(txs []*txn.Transaction) []mempool.Tx {
	out := make([]mempool.Tx, len(txs))
	for i, t := range txs {
		out[i] = t
	}
	return out
}
