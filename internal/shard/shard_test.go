package shard

import (
	"errors"
	"fmt"
	"os"
	"testing"

	"smartchaindb/internal/keys"
	"smartchaindb/internal/obs"
	"smartchaindb/internal/txn"
)

// newTestCluster opens a cluster over the backend SCDB_BACKEND selects
// (in-memory by default, throwaway disk engines under SCDB_BACKEND=disk
// — the switch the Makefile flips to run the suite over both).
func newTestCluster(t *testing.T, cfg Config) *Cluster {
	t.Helper()
	if os.Getenv("SCDB_BACKEND") == "disk" && cfg.DataDir == "" {
		cfg.DataDir = t.TempDir()
		cfg.Node.NoSync = true
	}
	c, err := Open(cfg)
	if err != nil {
		t.Fatalf("open cluster: %v", err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func kp(i int64) *keys.KeyPair { return keys.DeterministicKeyPair(i) }

// mkCreate mints an asset hinted to the given home shard.
func mkCreate(t *testing.T, owner *keys.KeyPair, shares uint64, home int) *txn.Transaction {
	t.Helper()
	c := txn.NewCreate(owner.PublicBase58(),
		map[string]any{"capabilities": []any{"test"}},
		shares, map[string]any{MetaShardHint: float64(home)})
	if err := txn.Sign(c, owner); err != nil {
		t.Fatal(err)
	}
	return c
}

// mkTransfer moves amount shares from ref to the given owners; hint < 0
// leaves the transfer homed with its input (chain affinity), hint >= 0
// directs the outputs to that shard.
func mkTransfer(t *testing.T, asset string, ref txn.OutputRef, from *keys.KeyPair, outs []*txn.Output, hint int) *txn.Transaction {
	t.Helper()
	var meta map[string]any
	if hint >= 0 {
		meta = map[string]any{MetaShardHint: float64(hint)}
	}
	tr := txn.NewTransfer(asset,
		[]txn.Spend{{Ref: ref, Owners: []string{from.PublicBase58()}}}, outs, meta)
	if err := txn.Sign(tr, from); err != nil {
		t.Fatal(err)
	}
	return tr
}

func out(to *keys.KeyPair, amount uint64) *txn.Output {
	return &txn.Output{PublicKeys: []string{to.PublicBase58()}, Amount: amount}
}

// submitDrain submits txs (failing the test on any verdict) and commits
// local blocks until the pools drain.
func submitDrain(t *testing.T, c *Cluster, txs ...*txn.Transaction) {
	t.Helper()
	for id, err := range c.SubmitBatch(txs) {
		t.Fatalf("submit %s: %v", id[:8], err)
	}
	c.DrainLocal(64)
}

func TestRoutingChainAffinity(t *testing.T) {
	c := newTestCluster(t, Config{Shards: 3})
	alice, bob := kp(1), kp(2)
	a := mkCreate(t, alice, 10, 0)
	b := mkCreate(t, bob, 10, 2)
	submitDrain(t, c, a, b)

	if s, ok := c.Directory().Lookup(a.ID); !ok || s != 0 {
		t.Fatalf("create A routed to %d,%v, want shard 0", s, ok)
	}
	if s, ok := c.Directory().Lookup(b.ID); !ok || s != 2 {
		t.Fatalf("create B routed to %d,%v, want shard 2", s, ok)
	}

	// A hintless transfer homes with its spent input — fully local.
	local := mkTransfer(t, a.ID, txn.OutputRef{TxID: a.ID, Index: 0}, alice, []*txn.Output{out(bob, 10)}, -1)
	r, err := c.RouteOf(local)
	if err != nil {
		t.Fatal(err)
	}
	if r.Cross() || r.Home != 0 {
		t.Fatalf("chain-affinity route = %+v, want single-shard home 0", r)
	}

	// A hinted transfer spans the input's shard and the hint target.
	cross := mkTransfer(t, a.ID, txn.OutputRef{TxID: a.ID, Index: 0}, alice, []*txn.Output{out(bob, 10)}, 2)
	r, err = c.RouteOf(cross)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Cross() || r.Home != 2 || len(r.Participants) != 2 || r.Participants[0] != 0 || r.Participants[1] != 2 {
		t.Fatalf("hinted route = %+v, want home 2 over shards [0 2]", r)
	}

	// A spend of a transaction no shard has is unroutable.
	ghost := mkTransfer(t, a.ID, txn.OutputRef{TxID: "nonexistent", Index: 0}, alice, []*txn.Output{out(bob, 10)}, -1)
	var missing *txn.InputDoesNotExistError
	if _, err := c.RouteOf(ghost); !errors.As(err, &missing) {
		t.Fatalf("unroutable input: %v", err)
	}
}

func TestAdmitFilterBouncesForeignShard(t *testing.T) {
	c := newTestCluster(t, Config{Shards: 2})
	alice := kp(1)
	a := mkCreate(t, alice, 10, 0)
	// Shard 1's validation refuses the shard-0-homed transaction.
	var wrong *ErrWrongShard
	if err := c.Shard(1).Node.ValidateTx(a); !errors.As(err, &wrong) {
		t.Fatalf("foreign admission: %v", err)
	}
	if wrong.Home != 0 || wrong.Got != 1 {
		t.Fatalf("wrong-shard verdict = %+v", wrong)
	}
	// Its own shard admits it.
	if err := c.Shard(0).Node.ValidateTx(a); err != nil {
		t.Fatalf("home admission: %v", err)
	}
}

func TestLocalChainsCommitIndependently(t *testing.T) {
	c := newTestCluster(t, Config{Shards: 2})
	// One transfer chain per shard, submitted interleaved: every
	// transaction is single-shard, so both shards commit local blocks
	// with zero coordination.
	const hops = 4
	var txs []*txn.Transaction
	owners := []*keys.KeyPair{kp(10), kp(20)}
	for s := 0; s < 2; s++ {
		a := mkCreate(t, owners[s], 10, s)
		submitDrain(t, c, a)
		ref := txn.OutputRef{TxID: a.ID, Index: 0}
		from := owners[s]
		for h := 0; h < hops; h++ {
			next := kp(int64(100*(s+1) + h))
			tr := mkTransfer(t, a.ID, ref, from, []*txn.Output{out(next, 10)}, -1)
			txs = append(txs, tr)
			ref = txn.OutputRef{TxID: tr.ID, Index: 0}
			from = next
		}
	}
	// Chained transfers conflict with their parents, so drain between
	// hops: hop i of both chains lands in one round's local blocks.
	for h := 0; h < hops; h++ {
		submitDrain(t, c, txs[h], txs[hops+h])
	}
	for s := 0; s < 2; s++ {
		st := c.Shard(s).Node.State()
		if got := st.TxCount(); got != 1+hops {
			t.Fatalf("shard %d: %d transactions, want %d", s, got, 1+hops)
		}
		if st.Height() == 0 {
			t.Fatalf("shard %d: no blocks committed", s)
		}
	}
	// The two chains never met: no 2PC records anywhere.
	for s := 0; s < 2; s++ {
		indoubt, err := c.Shard(s).Node.State().InDoubt()
		if err != nil || len(indoubt) != 0 {
			t.Fatalf("shard %d: in-doubt %v err %v", s, indoubt, err)
		}
	}
}

func TestPlacementDefaultInRange(t *testing.T) {
	c := newTestCluster(t, Config{Shards: 3})
	alice := kp(1)
	// No hint, no inputs: hash placement, stable and in range.
	cr := txn.NewCreate(alice.PublicBase58(), map[string]any{"k": "v"}, 5, nil)
	if err := txn.Sign(cr, alice); err != nil {
		t.Fatal(err)
	}
	r1, err := c.RouteOf(cr)
	if err != nil {
		t.Fatal(err)
	}
	r2, _ := c.RouteOf(cr)
	if r1.Home != r2.Home || r1.Home < 0 || r1.Home >= 3 || r1.Cross() {
		t.Fatalf("hash placement = %+v then %+v", r1, r2)
	}
}

func TestPlaceOverride(t *testing.T) {
	c := newTestCluster(t, Config{Shards: 2, Place: func(*txn.Transaction) int { return 1 }})
	alice := kp(1)
	cr := txn.NewCreate(alice.PublicBase58(), map[string]any{"k": "v"}, 5, nil)
	if err := txn.Sign(cr, alice); err != nil {
		t.Fatal(err)
	}
	if r, err := c.RouteOf(cr); err != nil || r.Home != 1 {
		t.Fatalf("Place override route = %+v, %v", r, err)
	}
}

func TestSubmitBatchVerdicts(t *testing.T) {
	c := newTestCluster(t, Config{Shards: 2})
	alice, bob := kp(1), kp(2)
	a := mkCreate(t, alice, 10, 0)
	submitDrain(t, c, a)
	ref := txn.OutputRef{TxID: a.ID, Index: 0}
	good := mkTransfer(t, a.ID, ref, alice, []*txn.Output{out(bob, 10)}, -1)
	rival := mkTransfer(t, a.ID, ref, bob, []*txn.Output{out(alice, 10)}, -1)
	errs := c.SubmitBatch([]*txn.Transaction{good, rival})
	if err := errs[good.ID]; err != nil {
		t.Fatalf("good transfer: %v", err)
	}
	if err := errs[rival.ID]; err == nil {
		t.Fatal("double-spending rival admitted")
	}
	if got := fmt.Sprint(len(errs)); got != "1" {
		t.Fatalf("verdicts = %v", errs)
	}
}

// Per-shard registries record each shard's side of the work — the data
// source the labeled ops endpoint (obs.LabeledHandler) serves under
// one label per shard.
func TestPerShardObsCounters(t *testing.T) {
	regs := []*obs.Registry{obs.New(), obs.New()}
	c := newTestCluster(t, Config{Shards: 2, ObsFor: func(i int) *obs.Registry { return regs[i] }})
	alice, bob := kp(1), kp(2)
	a := mkCreate(t, alice, 10, 0)
	submitDrain(t, c, a)

	cross := mkTransfer(t, a.ID, txn.OutputRef{TxID: a.ID, Index: 0}, alice, []*txn.Output{out(bob, 10)}, 1)
	if err := c.Submit(cross); err != nil {
		t.Fatal(err)
	}

	s0, s1 := regs[0].Snapshot(), regs[1].Snapshot()
	// Only shard 0 committed a zero-coordination local block.
	if s0.Counters["shard.local_blocks"] != 1 || s1.Counters["shard.local_blocks"] != 0 {
		t.Fatalf("local blocks = %d/%d, want 1/0",
			s0.Counters["shard.local_blocks"], s1.Counters["shard.local_blocks"])
	}
	// Both participants joined the 2PC round, voted, and applied.
	for i, s := range []obs.Snapshot{s0, s1} {
		if s.Counters["shard.cross_txs"] != 1 || s.Counters["shard.2pc.prepared"] != 1 ||
			s.Counters["shard.2pc.committed"] != 1 || s.Counters["shard.2pc.aborted"] != 0 {
			t.Fatalf("shard %d 2PC counters: %v", i, s.Counters)
		}
		if s.Histograms["shard.2pc.prepare_ns"].Count != 1 || s.Histograms["shard.2pc.apply_ns"].Count != 1 {
			t.Fatalf("shard %d 2PC histograms: %v", i, s.Histograms)
		}
	}
	// Height gauges track each shard's chain: the create block plus the
	// 2PC apply on shard 0, the migration apply alone on shard 1.
	if s0.Gauges["shard.height"] != 2 || s1.Gauges["shard.height"] != 1 {
		t.Fatalf("heights = %d/%d, want 2/1", s0.Gauges["shard.height"], s1.Gauges["shard.height"])
	}
}
