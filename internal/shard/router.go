// Package shard partitions the chain's spend-key space across S
// shards, each owning a full vertical slice of the node stack: its own
// ledger state, mempool, and storage backend (per-shard WAL, chain,
// and MVCC clock). A footprint-driven router classifies every
// transaction at admission: one whose spent inputs and home all land
// on a single shard commits fully locally, with zero cross-shard
// coordination; one whose footprint spans shards runs a
// footprint-derived two-phase commit whose participants are exactly
// the shards owning its keys (twopc.go).
package shard

import (
	"fmt"
	"hash/fnv"
	"sync"

	"smartchaindb/internal/txn"
)

// MetaShardHint is the transaction-metadata key a submitter sets to
// direct a transaction's outputs to a specific shard ("shard": <id>).
// Without it a transaction homes with its first spent input — chain
// affinity keeps every single-input chain fully local — so a hinted
// transfer is the one way value migrates between shards, and the one
// source of cross-shard work.
const MetaShardHint = "shard"

// Directory maps committed transaction IDs to the shard owning them —
// and therefore owning their outputs' UTXO keys. It is the routing
// ground truth: rebuilt at open by scanning each shard's transaction
// log, maintained at every commit.
type Directory struct {
	mu   sync.RWMutex
	home map[string]int
}

func NewDirectory() *Directory { return &Directory{home: make(map[string]int)} }

// Lookup reports the shard owning transaction id.
func (d *Directory) Lookup(id string) (int, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	s, ok := d.home[id]
	return s, ok
}

// Set records transaction id as owned by shard s.
func (d *Directory) Set(id string, s int) {
	d.mu.Lock()
	d.home[id] = s
	d.mu.Unlock()
}

// SetAll records a batch of transaction IDs as owned by shard s.
func (d *Directory) SetAll(ids []string, s int) {
	d.mu.Lock()
	for _, id := range ids {
		d.home[id] = s
	}
	d.mu.Unlock()
}

// Len reports the number of routed transactions.
func (d *Directory) Len() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.home)
}

// placeByHash is the default placement for transactions with no spent
// inputs and no hint: a stable hash of the transaction ID.
func placeByHash(t *txn.Transaction, shards int) int {
	h := fnv.New32a()
	h.Write([]byte(t.ID))
	return int(h.Sum32()) % shards
}

// hintOf extracts the shard hint from a transaction's metadata, if
// present and in range.
func hintOf(t *txn.Transaction, shards int) (int, bool) {
	if t.Metadata == nil {
		return 0, false
	}
	raw, ok := t.Metadata[MetaShardHint]
	if !ok {
		return 0, false
	}
	var s int
	switch v := raw.(type) {
	case float64:
		s = int(v)
	case int:
		s = v
	default:
		return 0, false
	}
	if s < 0 || s >= shards {
		return 0, false
	}
	return s, true
}

// Route is a classified transaction: its home shard (where the
// transaction document, outputs, and asset record land) and the full
// participant set (home plus every shard owning a spent input).
type Route struct {
	Home         int
	Participants []int // sorted, unique, always includes Home
}

// Cross reports whether the route spans more than one shard.
func (r Route) Cross() bool { return len(r.Participants) > 1 }

// RouteOf classifies t against the directory. The home shard is the
// metadata hint if present, else the shard owning the first spent
// input (chain affinity), else hash placement. An unroutable spent
// input — no shard has its transaction — is an error: the input
// cannot exist anywhere.
func (c *Cluster) RouteOf(t *txn.Transaction) (Route, error) {
	refs := t.SpentRefs()
	inputHome := make([]int, len(refs))
	for i, ref := range refs {
		s, ok := c.dir.Lookup(ref.TxID)
		if !ok {
			return Route{}, &txn.InputDoesNotExistError{TxID: ref.TxID}
		}
		inputHome[i] = s
	}
	home, hinted := hintOf(t, len(c.shards))
	if !hinted {
		if len(refs) > 0 {
			home = inputHome[0]
		} else {
			home = c.place(t)
		}
	}
	seen := map[int]bool{home: true}
	parts := []int{home}
	for _, s := range inputHome {
		if !seen[s] {
			seen[s] = true
			parts = append(parts, s)
		}
	}
	// Participant order matters to the 2PC lock/stage order only in
	// that it must be deterministic; sort by shard ID.
	for i := 1; i < len(parts); i++ {
		for j := i; j > 0 && parts[j] < parts[j-1]; j-- {
			parts[j], parts[j-1] = parts[j-1], parts[j]
		}
	}
	return Route{Home: home, Participants: parts}, nil
}

// ownsFn builds the ownership predicate StageOwned consults: shard id
// owns a spent ref iff the directory homes the ref's transaction there.
func (c *Cluster) ownsFn(id int) func(txn.OutputRef) bool {
	return func(ref txn.OutputRef) bool {
		s, ok := c.dir.Lookup(ref.TxID)
		return ok && s == id
	}
}

// ErrWrongShard is the admission filter's rejection for a transaction
// homed on a different shard: the router must resubmit it there.
type ErrWrongShard struct {
	TxID string
	Got  int
	Home int
}

func (e *ErrWrongShard) Error() string {
	return fmt.Sprintf("shard: %s is homed on shard %d, not %d", e.TxID[:8], e.Home, e.Got)
}
