// Package nested implements the non-locking execution engine for
// nested blockchain transactions (§4.2 of the paper). An ACCEPT_BID
// parent commits immediately — no lock — and its child transactions
// (one TRANSFER to the requester, n-1 RETURNs to losing bidders) are
// enqueued into a return queue, built and signed by the escrow system
// account, and submitted asynchronously with eventual-commit semantics.
// The accept_tx_recovery log makes the children replayable after a
// crash; duplicate submissions are harmless because child construction
// is deterministic (same escrow key, same parent output) so replays
// carry identical transaction IDs.
package nested

import (
	"fmt"
	"sync"

	"smartchaindb/internal/keys"
	"smartchaindb/internal/ledger"
	"smartchaindb/internal/txn"
)

// Submitter forwards a signed child transaction back into the network
// (in production: to a randomly selected validator node; in the
// simulation: into the consensus cluster).
type Submitter func(child *txn.Transaction)

// Engine is one node's return-queue worker pool and recovery driver.
type Engine struct {
	state  *ledger.State
	escrow *keys.KeyPair
	submit Submitter

	mu    sync.Mutex
	queue []ledger.ReturnSpec
}

// NewEngine wires an engine to a node's chain state and escrow key.
func NewEngine(state *ledger.State, escrow *keys.KeyPair, submit Submitter) *Engine {
	return &Engine{state: state, escrow: escrow, submit: submit}
}

// OnParentCommitted runs at the commit phase of an ACCEPT_BID
// (Algorithm 3's Commit hook): it determines the child transactions
// (deterRtrnTxs), writes the recovery log, and enqueues the children.
// It does NOT block the parent's commit — the caller already committed
// the parent before invoking this.
func (e *Engine) OnParentCommitted(accept *txn.Transaction, rfqOwner string) error {
	specs, err := e.state.PendingReturnsFor(accept, e.escrow.PublicBase58(), rfqOwner)
	if err != nil {
		return fmt.Errorf("nested: determine children of %s: %w", short(accept.ID), err)
	}
	rfqID := ""
	if len(accept.Refs) > 0 {
		rfqID = accept.Refs[0]
	}
	if err := e.state.LogAcceptRecovery(accept.ID, rfqID, specs); err != nil {
		return fmt.Errorf("nested: log recovery for %s: %w", short(accept.ID), err)
	}
	e.enqueue(specs)
	return nil
}

func (e *Engine) enqueue(specs []ledger.ReturnSpec) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.queue = append(e.queue, specs...)
}

// QueueLen reports the number of children awaiting submission.
func (e *Engine) QueueLen() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.queue)
}

// Drain builds, signs, and submits every queued child. Workers in the
// paper run in parallel; submission order does not matter because the
// children are independent.
func (e *Engine) Drain() int {
	e.mu.Lock()
	specs := e.queue
	e.queue = nil
	e.mu.Unlock()
	for _, spec := range specs {
		child := ledger.BuildChild(spec, e.escrow.PublicBase58())
		if err := txn.Sign(child, e.escrow); err != nil {
			// The escrow key is local; a signing failure is a defect,
			// not a runtime condition.
			panic(fmt.Sprintf("nested: sign child: %v", err))
		}
		e.submit(child)
	}
	return len(specs)
}

// OnChildCommitted runs when a RETURN or child TRANSFER commits: it
// marks the child done in the recovery log and refreshes the parent's
// children vector. Unrelated transactions are ignored, so the server
// can call this for every committed TRANSFER/RETURN.
func (e *Engine) OnChildCommitted(child *txn.Transaction) {
	if len(child.Inputs) == 0 || child.Inputs[0].Fulfills == nil {
		return
	}
	ref := *child.Inputs[0].Fulfills
	parent, err := e.state.GetTx(ref.TxID)
	if err != nil || parent.Operation != txn.OpAcceptBid {
		return
	}
	if err := e.state.MarkReturnDone(parent.ID, ref.Index, child.ID); err != nil {
		return // already marked by an earlier replica of this child
	}
	if rec, err := e.state.RecoveryFor(parent.ID); err == nil {
		// Children are excluded from the signing payload, so updating
		// the vector after the fact is safe.
		_ = e.state.SetChildren(parent.ID, rec.Done)
	}
}

// Recover replays the recovery log after a crash: every pending child
// of every incomplete ACCEPT_BID is re-enqueued ("enqueue all the
// RETURNs using the recovery log when the receiver node comes up
// online"). It returns the number of children re-enqueued.
func (e *Engine) Recover() int {
	n := 0
	for _, rec := range e.state.PendingRecoveries() {
		// Skip specs whose child already committed (the log may lag the
		// chain if the crash hit between commit and mark-done).
		var still []ledger.ReturnSpec
		for _, spec := range rec.Pending {
			if e.state.IsUnspent(txn.OutputRef{TxID: spec.AcceptID, Index: spec.OutputIndex}) {
				still = append(still, spec)
			}
		}
		e.enqueue(still)
		n += len(still)
	}
	return n
}

// LockingCommit is the locking alternative the paper argues against
// (§4.2): it commits the parent and all children atomically, blocking
// until every child is applied. It exists for the ablation benchmark
// comparing locking vs non-locking nested execution; the non-locking
// path is the production one.
func LockingCommit(state *ledger.State, escrow *keys.KeyPair, accept *txn.Transaction, rfqOwner string) ([]*txn.Transaction, error) {
	if err := state.CommitTx(accept); err != nil {
		return nil, err
	}
	specs, err := state.PendingReturnsFor(accept, escrow.PublicBase58(), rfqOwner)
	if err != nil {
		return nil, err
	}
	children := make([]*txn.Transaction, 0, len(specs))
	ids := make([]string, 0, len(specs))
	for _, spec := range specs {
		child := ledger.BuildChild(spec, escrow.PublicBase58())
		if err := txn.Sign(child, escrow); err != nil {
			return nil, err
		}
		if err := state.CommitTx(child); err != nil {
			return nil, fmt.Errorf("nested: locking commit child: %w", err)
		}
		children = append(children, child)
		ids = append(ids, child.ID)
	}
	if err := state.SetChildren(accept.ID, ids); err != nil {
		return nil, err
	}
	return children, nil
}

func short(s string) string {
	if len(s) <= 8 {
		return s
	}
	return s[:8] + "..."
}
