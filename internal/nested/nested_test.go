package nested

import (
	"testing"

	"smartchaindb/internal/keys"
	"smartchaindb/internal/ledger"
	"smartchaindb/internal/txn"
)

// auction bundles a committed REQUEST with escrow-held bids and an
// ACCEPT_BID ready to commit.
type auction struct {
	state     *ledger.State
	escrow    *keys.KeyPair
	requester *keys.KeyPair
	bidders   []*keys.KeyPair
	rfq       *txn.Transaction
	bids      []*txn.Transaction
	accept    *txn.Transaction
}

var seq int

func newAuction(t *testing.T, nBids int) *auction {
	t.Helper()
	a := &auction{
		state:     ledger.NewState(),
		escrow:    keys.MustGenerate(),
		requester: keys.MustGenerate(),
	}
	seq++
	rfq := txn.NewRequest(a.requester.PublicBase58(), map[string]any{"capabilities": []any{"cnc"}, "seq": seq}, nil)
	if err := txn.Sign(rfq, a.requester); err != nil {
		t.Fatal(err)
	}
	if err := a.state.CommitTx(rfq); err != nil {
		t.Fatal(err)
	}
	a.rfq = rfq
	for i := 0; i < nBids; i++ {
		bidder := keys.MustGenerate()
		a.bidders = append(a.bidders, bidder)
		seq++
		asset := txn.NewCreate(bidder.PublicBase58(), map[string]any{"capabilities": []any{"cnc"}, "seq": seq}, 1, nil)
		if err := txn.Sign(asset, bidder); err != nil {
			t.Fatal(err)
		}
		if err := a.state.CommitTx(asset); err != nil {
			t.Fatal(err)
		}
		bid := txn.NewBid(bidder.PublicBase58(), asset.ID,
			txn.Spend{Ref: txn.OutputRef{TxID: asset.ID, Index: 0}, Owners: []string{bidder.PublicBase58()}},
			1, a.escrow.PublicBase58(), rfq.ID, nil)
		if err := txn.Sign(bid, bidder); err != nil {
			t.Fatal(err)
		}
		if err := a.state.CommitTx(bid); err != nil {
			t.Fatal(err)
		}
		a.bids = append(a.bids, bid)
	}
	acc, err := txn.NewAcceptBid(a.requester.PublicBase58(), a.escrow.PublicBase58(), rfq.ID, a.bids[0], a.bids[1:], nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := txn.Sign(acc, a.escrow, a.requester); err != nil {
		t.Fatal(err)
	}
	a.accept = acc
	return a
}

func TestNonLockingPipeline(t *testing.T) {
	a := newAuction(t, 3)
	// Non-locking: the parent commits first.
	if err := a.state.CommitTx(a.accept); err != nil {
		t.Fatal(err)
	}

	var submitted []*txn.Transaction
	eng := NewEngine(a.state, a.escrow, func(c *txn.Transaction) { submitted = append(submitted, c) })
	if err := eng.OnParentCommitted(a.accept, a.requester.PublicBase58()); err != nil {
		t.Fatal(err)
	}
	if eng.QueueLen() != 3 {
		t.Fatalf("queue = %d, want 3 (1 transfer + 2 returns)", eng.QueueLen())
	}
	if n := eng.Drain(); n != 3 {
		t.Fatalf("drained %d", n)
	}
	if eng.QueueLen() != 0 {
		t.Error("queue should be empty after drain")
	}
	// Children are valid, committable, and complete the recovery record.
	for _, child := range submitted {
		if err := a.state.CommitTx(child); err != nil {
			t.Fatalf("commit child: %v", err)
		}
		eng.OnChildCommitted(child)
	}
	rec, err := a.state.RecoveryFor(a.accept.ID)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Status != ledger.RecoveryComplete || len(rec.Done) != 3 {
		t.Errorf("recovery = %+v", rec)
	}
	// Parent's children vector filled in.
	parent, err := a.state.GetTx(a.accept.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(parent.Children) != 3 {
		t.Errorf("children = %v", parent.Children)
	}
	// Funds routed: requester owns winner's asset, losers refunded.
	winAsset := a.bids[0].AssetID()
	if a.state.Balance(a.requester.PublicBase58(), winAsset) != 1 {
		t.Error("requester missing winning asset")
	}
	for i := 1; i < 3; i++ {
		if a.state.Balance(a.bidders[i].PublicBase58(), a.bids[i].AssetID()) != 1 {
			t.Errorf("bidder %d not refunded", i)
		}
	}
}

func TestCrashBeforeDrainRecovers(t *testing.T) {
	a := newAuction(t, 3)
	if err := a.state.CommitTx(a.accept); err != nil {
		t.Fatal(err)
	}
	// First engine logs and enqueues, then "crashes" before draining.
	dead := NewEngine(a.state, a.escrow, func(*txn.Transaction) { t.Fatal("must not submit") })
	if err := dead.OnParentCommitted(a.accept, a.requester.PublicBase58()); err != nil {
		t.Fatal(err)
	}
	// Node restarts: a fresh engine replays the recovery log.
	var submitted []*txn.Transaction
	fresh := NewEngine(a.state, a.escrow, func(c *txn.Transaction) { submitted = append(submitted, c) })
	if n := fresh.Recover(); n != 3 {
		t.Fatalf("Recover re-enqueued %d, want 3", n)
	}
	fresh.Drain()
	if len(submitted) != 3 {
		t.Fatalf("submitted %d children after recovery", len(submitted))
	}
	for _, child := range submitted {
		if err := a.state.CommitTx(child); err != nil {
			t.Fatalf("recovered child does not commit: %v", err)
		}
		fresh.OnChildCommitted(child)
	}
	rec, _ := a.state.RecoveryFor(a.accept.ID)
	if rec.Status != ledger.RecoveryComplete {
		t.Errorf("recovery status = %s", rec.Status)
	}
}

func TestCrashMidwayRecoversOnlyPending(t *testing.T) {
	a := newAuction(t, 3)
	if err := a.state.CommitTx(a.accept); err != nil {
		t.Fatal(err)
	}
	var firstBatch []*txn.Transaction
	eng := NewEngine(a.state, a.escrow, func(c *txn.Transaction) { firstBatch = append(firstBatch, c) })
	if err := eng.OnParentCommitted(a.accept, a.requester.PublicBase58()); err != nil {
		t.Fatal(err)
	}
	eng.Drain()
	// One child commits before the crash; mark-done is lost (crash hit
	// between commit and mark).
	if err := a.state.CommitTx(firstBatch[0]); err != nil {
		t.Fatal(err)
	}
	// Restart: recovery must skip the already-spent output.
	var resubmitted []*txn.Transaction
	fresh := NewEngine(a.state, a.escrow, func(c *txn.Transaction) { resubmitted = append(resubmitted, c) })
	if n := fresh.Recover(); n != 2 {
		t.Fatalf("Recover re-enqueued %d, want 2", n)
	}
	fresh.Drain()
	for _, child := range resubmitted {
		if err := a.state.CommitTx(child); err != nil {
			t.Fatalf("resubmitted child: %v", err)
		}
	}
}

func TestChildrenAreDeterministic(t *testing.T) {
	a := newAuction(t, 2)
	if err := a.state.CommitTx(a.accept); err != nil {
		t.Fatal(err)
	}
	collect := func() []string {
		var ids []string
		eng := NewEngine(a.state, a.escrow, func(c *txn.Transaction) { ids = append(ids, c.ID) })
		if err := eng.OnParentCommitted(a.accept, a.requester.PublicBase58()); err != nil {
			t.Fatal(err)
		}
		eng.Drain()
		return ids
	}
	x, y := collect(), collect()
	if len(x) != 2 || len(y) != 2 || x[0] != y[0] || x[1] != y[1] {
		t.Errorf("child IDs differ across replicas: %v vs %v", x, y)
	}
}

func TestOnChildCommittedIgnoresUnrelated(t *testing.T) {
	a := newAuction(t, 2)
	eng := NewEngine(a.state, a.escrow, func(*txn.Transaction) {})
	stranger := keys.MustGenerate()
	seq++
	create := txn.NewCreate(stranger.PublicBase58(), map[string]any{"seq": seq}, 1, nil)
	if err := txn.Sign(create, stranger); err != nil {
		t.Fatal(err)
	}
	if err := a.state.CommitTx(create); err != nil {
		t.Fatal(err)
	}
	tr := txn.NewTransfer(create.ID,
		[]txn.Spend{{Ref: txn.OutputRef{TxID: create.ID, Index: 0}, Owners: []string{stranger.PublicBase58()}}},
		[]*txn.Output{{PublicKeys: []string{stranger.PublicBase58()}, Amount: 1}}, nil)
	if err := txn.Sign(tr, stranger); err != nil {
		t.Fatal(err)
	}
	if err := a.state.CommitTx(tr); err != nil {
		t.Fatal(err)
	}
	eng.OnChildCommitted(tr) // must not panic or corrupt anything
	eng.OnChildCommitted(create)
}

func TestLockingCommit(t *testing.T) {
	a := newAuction(t, 3)
	children, err := LockingCommit(a.state, a.escrow, a.accept, a.requester.PublicBase58())
	if err != nil {
		t.Fatal(err)
	}
	if len(children) != 3 {
		t.Fatalf("children = %d", len(children))
	}
	parent, err := a.state.GetTx(a.accept.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(parent.Children) != 3 {
		t.Errorf("parent children vector = %v", parent.Children)
	}
	// Same end state as the non-locking path.
	if a.state.Balance(a.requester.PublicBase58(), a.bids[0].AssetID()) != 1 {
		t.Error("requester missing winning asset")
	}
	for i := 1; i < 3; i++ {
		if a.state.Balance(a.bidders[i].PublicBase58(), a.bids[i].AssetID()) != 1 {
			t.Errorf("bidder %d not refunded", i)
		}
	}
}

func TestLockingCommitDuplicateParent(t *testing.T) {
	a := newAuction(t, 2)
	if _, err := LockingCommit(a.state, a.escrow, a.accept, a.requester.PublicBase58()); err != nil {
		t.Fatal(err)
	}
	if _, err := LockingCommit(a.state, a.escrow, a.accept, a.requester.PublicBase58()); err == nil {
		t.Error("second locking commit should fail")
	}
}
