package schema

import (
	"embed"
	"fmt"
	"strings"
	"sync"

	"smartchaindb/internal/txn"
	"smartchaindb/internal/yamlite"
)

//go:embed schemas/*.yaml
var schemaFS embed.FS

var opFiles = map[string]string{
	txn.OpCreate:    "schemas/create.yaml",
	txn.OpTransfer:  "schemas/transfer.yaml",
	txn.OpRequest:   "schemas/request.yaml",
	txn.OpBid:       "schemas/bid.yaml",
	txn.OpReturn:    "schemas/return.yaml",
	txn.OpAcceptBid: "schemas/accept_bid.yaml",
	"WITHDRAW_BID":  "schemas/withdraw_bid.yaml",
}

// Registry maps operation names to compiled schemas and implements
// Algorithm 1 (validateT-schema) over incoming transaction documents.
// New transaction types can be added at runtime with Register — the
// extensibility point the declarative model promises.
type Registry struct {
	mu   sync.RWMutex
	byOp map[string]*Schema
}

// NewRegistry loads and compiles the embedded schemas for all native
// transaction types.
func NewRegistry() (*Registry, error) {
	commonSrc, err := schemaFS.ReadFile("schemas/common.yaml")
	if err != nil {
		return nil, fmt.Errorf("schema: read common.yaml: %w", err)
	}
	common, err := yamlite.ParseMap(string(commonSrc))
	if err != nil {
		return nil, fmt.Errorf("schema: parse common.yaml: %w", err)
	}
	commonDefs, _ := common["definitions"].(map[string]any)

	r := &Registry{byOp: make(map[string]*Schema, len(opFiles))}
	for op, file := range opFiles {
		src, err := schemaFS.ReadFile(file)
		if err != nil {
			return nil, fmt.Errorf("schema: read %s: %w", file, err)
		}
		doc, err := yamlite.ParseMap(string(src))
		if err != nil {
			return nil, fmt.Errorf("schema: parse %s: %w", file, err)
		}
		merged := mergeDefinitions(doc, commonDefs)
		s, err := Compile(merged)
		if err != nil {
			return nil, fmt.Errorf("schema: compile %s: %w", file, err)
		}
		r.byOp[op] = s
	}
	return r, nil
}

// MustNewRegistry is NewRegistry that panics on failure; the embedded
// schemas are compiled into the binary, so failure is a build defect.
func MustNewRegistry() *Registry {
	r, err := NewRegistry()
	if err != nil {
		panic(err)
	}
	return r
}

func mergeDefinitions(doc map[string]any, commonDefs map[string]any) map[string]any {
	defs, _ := doc["definitions"].(map[string]any)
	if defs == nil {
		defs = make(map[string]any, len(commonDefs))
	}
	for k, v := range commonDefs {
		if _, exists := defs[k]; !exists {
			defs[k] = v
		}
	}
	out := make(map[string]any, len(doc)+1)
	for k, v := range doc {
		out[k] = v
	}
	out["definitions"] = defs
	return out
}

// Register installs a schema for a (possibly new) operation name.
func (r *Registry) Register(op string, s *Schema) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.byOp[op] = s
}

// ForOperation returns the compiled schema for an operation.
func (r *Registry) ForOperation(op string) (*Schema, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s, ok := r.byOp[op]
	return s, ok
}

// Operations lists the registered operation names.
func (r *Registry) Operations() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	ops := make([]string, 0, len(r.byOp))
	for op := range r.byOp {
		ops = append(ops, op)
	}
	return ops
}

// ValidateDoc implements Algorithm 1: it dispatches the document to the
// schema for its operation, rejects unknown operations outright, and
// applies the language-key checks on asset data and metadata
// (validateTxObj / validateLanguageKey in the paper's pseudocode).
func (r *Registry) ValidateDoc(doc map[string]any) error {
	op, ok := doc["operation"].(string)
	if !ok {
		return &txn.SchemaError{Op: "?", Path: "$.operation", Msg: "missing or non-string operation"}
	}
	s, ok := r.ForOperation(op)
	if !ok {
		return &txn.SchemaError{Op: op, Path: "$.operation", Msg: fmt.Sprintf("unknown operation %q", op)}
	}
	if err := s.Validate(doc); err != nil {
		if v, ok := err.(Violation); ok {
			return &txn.SchemaError{Op: op, Path: v.Path, Msg: v.Msg}
		}
		return &txn.SchemaError{Op: op, Path: "$", Msg: err.Error()}
	}
	if asset, ok := doc["asset"].(map[string]any); ok {
		if data, ok := asset["data"].(map[string]any); ok {
			if err := validateKeys(op, data, "$.asset.data"); err != nil {
				return err
			}
		}
	}
	if meta, ok := doc["metadata"].(map[string]any); ok {
		if err := validateKeys(op, meta, "$.metadata"); err != nil {
			return err
		}
	}
	return nil
}

// ValidateTx runs ValidateDoc over a Transaction value.
func (r *Registry) ValidateTx(t *txn.Transaction) error {
	return r.ValidateDoc(t.ToDoc())
}

// validateKeys rejects document keys the storage layer cannot index:
// empty keys and keys containing '$', '.', or NUL (the same constraint
// BigchainDB inherits from MongoDB).
func validateKeys(op string, m map[string]any, path string) error {
	for k, v := range m {
		if k == "" {
			return &txn.SchemaError{Op: op, Path: path, Msg: "empty key"}
		}
		if strings.ContainsAny(k, "$.\x00") {
			return &txn.SchemaError{Op: op, Path: path + "." + k, Msg: "key contains reserved character ($, ., or NUL)"}
		}
		if child, ok := v.(map[string]any); ok {
			if err := validateKeys(op, child, path+"."+k); err != nil {
				return err
			}
		}
		if list, ok := v.([]any); ok {
			for i, e := range list {
				if child, ok := e.(map[string]any); ok {
					if err := validateKeys(op, child, fmt.Sprintf("%s.%s[%d]", path, k, i)); err != nil {
						return err
					}
				}
			}
		}
	}
	return nil
}
