// Package schema implements SmartchainDB's declarative structural
// validation layer (Algorithm 1, validateT-schema). Each transaction
// type ships a YAML schema document — a JSON-Schema-subset blueprint —
// and every incoming payload is checked against the schema for its
// operation before semantic validation runs.
//
// Supported keywords: type (single or list), properties, required,
// additionalProperties (boolean), items, pattern, enum, anyOf,
// minimum/maximum, minLength/maxLength, minItems/maxItems,
// definitions and local $ref ("#/definitions/name").
package schema

import (
	"fmt"
	"regexp"
	"strings"

	"smartchaindb/internal/yamlite"
)

// Schema is a compiled schema node.
type Schema struct {
	name string // for error messages; set on the root

	types      []string // empty means any
	properties map[string]*Schema
	required   []string
	additional *bool // nil = allow, false = forbid extra properties
	items      *Schema
	pattern    *regexp.Regexp
	patternSrc string
	enum       []any
	anyOf      []*Schema
	minimum    *float64
	maximum    *float64
	minLength  *int
	maxLength  *int
	minItems   *int
	maxItems   *int

	defs map[string]*Schema // only on the root
	ref  string             // unresolved local $ref
	root *Schema
}

// Compile builds a Schema from a parsed YAML/JSON document.
func Compile(doc map[string]any) (*Schema, error) {
	root := &Schema{defs: map[string]*Schema{}}
	root.root = root
	if defs, ok := doc["definitions"].(map[string]any); ok {
		for name, d := range defs {
			dm, ok := d.(map[string]any)
			if !ok {
				return nil, fmt.Errorf("schema: definition %q is %T, want mapping", name, d)
			}
			ds, err := compileNode(dm, root)
			if err != nil {
				return nil, fmt.Errorf("schema: definition %q: %w", name, err)
			}
			root.defs[name] = ds
		}
	}
	node, err := compileNode(doc, root)
	if err != nil {
		return nil, err
	}
	node.defs = root.defs
	node.root = node
	// Re-point children compiled with the temporary root.
	repoint(node, node)
	for _, d := range node.defs {
		repoint(d, node)
	}
	if title, ok := doc["title"].(string); ok {
		node.name = title
	}
	return node, nil
}

func repoint(s, root *Schema) {
	if s == nil {
		return
	}
	s.root = root
	for _, c := range s.properties {
		repoint(c, root)
	}
	repoint(s.items, root)
	for _, c := range s.anyOf {
		repoint(c, root)
	}
}

// CompileYAML parses a YAML document and compiles it.
func CompileYAML(src string) (*Schema, error) {
	doc, err := yamlite.ParseMap(src)
	if err != nil {
		return nil, err
	}
	return Compile(doc)
}

func compileNode(doc map[string]any, root *Schema) (*Schema, error) {
	s := &Schema{root: root}
	if ref, ok := doc["$ref"].(string); ok {
		name, found := strings.CutPrefix(ref, "#/definitions/")
		if !found {
			return nil, fmt.Errorf("unsupported $ref %q (only #/definitions/... is supported)", ref)
		}
		s.ref = name
		return s, nil
	}
	switch t := doc["type"].(type) {
	case string:
		s.types = []string{t}
	case []any:
		for _, e := range t {
			ts, ok := e.(string)
			if !ok {
				return nil, fmt.Errorf("type list contains %T", e)
			}
			s.types = append(s.types, ts)
		}
	case nil:
	default:
		return nil, fmt.Errorf("type is %T", t)
	}
	for _, ty := range s.types {
		switch ty {
		case "object", "array", "string", "integer", "number", "boolean", "null":
		default:
			return nil, fmt.Errorf("unknown type %q", ty)
		}
	}
	if props, ok := doc["properties"].(map[string]any); ok {
		s.properties = make(map[string]*Schema, len(props))
		for k, v := range props {
			vm, ok := v.(map[string]any)
			if !ok {
				return nil, fmt.Errorf("property %q is %T, want mapping", k, v)
			}
			c, err := compileNode(vm, root)
			if err != nil {
				return nil, fmt.Errorf("property %q: %w", k, err)
			}
			s.properties[k] = c
		}
	}
	if req, ok := doc["required"].([]any); ok {
		for _, e := range req {
			rs, ok := e.(string)
			if !ok {
				return nil, fmt.Errorf("required contains %T", e)
			}
			s.required = append(s.required, rs)
		}
	}
	if ap, ok := doc["additionalProperties"].(bool); ok {
		s.additional = &ap
	}
	if items, ok := doc["items"].(map[string]any); ok {
		c, err := compileNode(items, root)
		if err != nil {
			return nil, fmt.Errorf("items: %w", err)
		}
		s.items = c
	}
	if pat, ok := doc["pattern"].(string); ok {
		re, err := regexp.Compile(pat)
		if err != nil {
			return nil, fmt.Errorf("pattern %q: %w", pat, err)
		}
		s.pattern, s.patternSrc = re, pat
	}
	if enum, ok := doc["enum"].([]any); ok {
		s.enum = enum
	}
	if any_, ok := doc["anyOf"].([]any); ok {
		for i, e := range any_ {
			em, ok := e.(map[string]any)
			if !ok {
				return nil, fmt.Errorf("anyOf[%d] is %T", i, e)
			}
			c, err := compileNode(em, root)
			if err != nil {
				return nil, fmt.Errorf("anyOf[%d]: %w", i, err)
			}
			s.anyOf = append(s.anyOf, c)
		}
	}
	var err error
	if s.minimum, err = floatKey(doc, "minimum"); err != nil {
		return nil, err
	}
	if s.maximum, err = floatKey(doc, "maximum"); err != nil {
		return nil, err
	}
	if s.minLength, err = intKey(doc, "minLength"); err != nil {
		return nil, err
	}
	if s.maxLength, err = intKey(doc, "maxLength"); err != nil {
		return nil, err
	}
	if s.minItems, err = intKey(doc, "minItems"); err != nil {
		return nil, err
	}
	if s.maxItems, err = intKey(doc, "maxItems"); err != nil {
		return nil, err
	}
	return s, nil
}

func floatKey(doc map[string]any, key string) (*float64, error) {
	v, ok := doc[key]
	if !ok {
		return nil, nil
	}
	switch x := v.(type) {
	case int64:
		f := float64(x)
		return &f, nil
	case float64:
		return &x, nil
	}
	return nil, fmt.Errorf("%s is %T, want number", key, v)
}

func intKey(doc map[string]any, key string) (*int, error) {
	v, ok := doc[key]
	if !ok {
		return nil, nil
	}
	if x, ok := v.(int64); ok {
		i := int(x)
		return &i, nil
	}
	return nil, fmt.Errorf("%s is %T, want integer", key, v)
}

// Violation describes one schema violation with its document path.
type Violation struct {
	Path string
	Msg  string
}

func (v Violation) Error() string { return fmt.Sprintf("%s: %s", v.Path, v.Msg) }

// Validate checks value against the schema and returns the first
// violation found, or nil.
func (s *Schema) Validate(value any) error {
	return s.validate(value, "$")
}

func (s *Schema) resolve() (*Schema, error) {
	if s.ref == "" {
		return s, nil
	}
	d, ok := s.root.defs[s.ref]
	if !ok {
		return nil, fmt.Errorf("schema: unresolved $ref %q", s.ref)
	}
	return d, nil
}

func (s *Schema) validate(value any, path string) error {
	rs, err := s.resolve()
	if err != nil {
		return err
	}
	s = rs
	if len(s.anyOf) > 0 {
		var firstErr error
		for _, alt := range s.anyOf {
			if err := alt.validate(value, path); err == nil {
				firstErr = nil
				break
			} else if firstErr == nil {
				firstErr = err
			}
		}
		if firstErr != nil {
			return Violation{Path: path, Msg: fmt.Sprintf("no anyOf alternative matched (first failure: %v)", firstErr)}
		}
	}
	if len(s.types) > 0 {
		ok := false
		for _, t := range s.types {
			if typeMatches(t, value) {
				ok = true
				break
			}
		}
		if !ok {
			return Violation{Path: path, Msg: fmt.Sprintf("is %s, want %s", jsonTypeName(value), strings.Join(s.types, " or "))}
		}
	}
	if s.enum != nil {
		found := false
		for _, e := range s.enum {
			if scalarEqual(e, value) {
				found = true
				break
			}
		}
		if !found {
			return Violation{Path: path, Msg: fmt.Sprintf("value %v not in enum %v", value, s.enum)}
		}
	}
	switch v := value.(type) {
	case string:
		if s.pattern != nil && !s.pattern.MatchString(v) {
			return Violation{Path: path, Msg: fmt.Sprintf("%q does not match pattern %q", truncate(v), s.patternSrc)}
		}
		if s.minLength != nil && len(v) < *s.minLength {
			return Violation{Path: path, Msg: fmt.Sprintf("length %d < minLength %d", len(v), *s.minLength)}
		}
		if s.maxLength != nil && len(v) > *s.maxLength {
			return Violation{Path: path, Msg: fmt.Sprintf("length %d > maxLength %d", len(v), *s.maxLength)}
		}
	case map[string]any:
		for _, r := range s.required {
			if _, ok := v[r]; !ok {
				return Violation{Path: path, Msg: fmt.Sprintf("missing required property %q", r)}
			}
		}
		for k, e := range v {
			child, ok := s.properties[k]
			if !ok {
				if s.additional != nil && !*s.additional {
					return Violation{Path: path, Msg: fmt.Sprintf("unexpected property %q", k)}
				}
				continue
			}
			if err := child.validate(e, path+"."+k); err != nil {
				return err
			}
		}
	case []any:
		if s.minItems != nil && len(v) < *s.minItems {
			return Violation{Path: path, Msg: fmt.Sprintf("has %d items, want at least %d", len(v), *s.minItems)}
		}
		if s.maxItems != nil && len(v) > *s.maxItems {
			return Violation{Path: path, Msg: fmt.Sprintf("has %d items, want at most %d", len(v), *s.maxItems)}
		}
		if s.items != nil {
			for i, e := range v {
				if err := s.items.validate(e, fmt.Sprintf("%s[%d]", path, i)); err != nil {
					return err
				}
			}
		}
	case float64:
		if s.minimum != nil && v < *s.minimum {
			return Violation{Path: path, Msg: fmt.Sprintf("%v < minimum %v", v, *s.minimum)}
		}
		if s.maximum != nil && v > *s.maximum {
			return Violation{Path: path, Msg: fmt.Sprintf("%v > maximum %v", v, *s.maximum)}
		}
	case int64:
		f := float64(v)
		if s.minimum != nil && f < *s.minimum {
			return Violation{Path: path, Msg: fmt.Sprintf("%v < minimum %v", v, *s.minimum)}
		}
		if s.maximum != nil && f > *s.maximum {
			return Violation{Path: path, Msg: fmt.Sprintf("%v > maximum %v", v, *s.maximum)}
		}
	}
	return nil
}

func typeMatches(t string, v any) bool {
	switch t {
	case "object":
		_, ok := v.(map[string]any)
		return ok
	case "array":
		_, ok := v.([]any)
		return ok
	case "string":
		_, ok := v.(string)
		return ok
	case "boolean":
		_, ok := v.(bool)
		return ok
	case "null":
		return v == nil
	case "number":
		return isNumber(v)
	case "integer":
		switch x := v.(type) {
		case int64:
			return true
		case float64:
			return x == float64(int64(x))
		}
		return false
	}
	return false
}

func isNumber(v any) bool {
	switch v.(type) {
	case int64, float64:
		return true
	}
	return false
}

func scalarEqual(a, b any) bool {
	if isNumber(a) && isNumber(b) {
		return toFloat(a) == toFloat(b)
	}
	return a == b
}

func toFloat(v any) float64 {
	switch x := v.(type) {
	case int64:
		return float64(x)
	case float64:
		return x
	}
	return 0
}

func jsonTypeName(v any) string {
	switch v.(type) {
	case nil:
		return "null"
	case bool:
		return "boolean"
	case string:
		return "string"
	case float64, int64:
		return "number"
	case map[string]any:
		return "object"
	case []any:
		return "array"
	}
	return fmt.Sprintf("%T", v)
}

func truncate(s string) string {
	if len(s) > 40 {
		return s[:40] + "..."
	}
	return s
}
