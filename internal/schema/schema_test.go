package schema

import (
	"errors"
	"strings"
	"testing"

	"smartchaindb/internal/keys"
	"smartchaindb/internal/txn"
)

func TestCompileAndValidateBasics(t *testing.T) {
	s, err := CompileYAML(`
type: object
required: [name, age]
additionalProperties: false
properties:
  name:
    type: string
    minLength: 1
    maxLength: 10
  age:
    type: integer
    minimum: 0
    maximum: 150
  tags:
    type: array
    minItems: 1
    items:
      type: string
`)
	if err != nil {
		t.Fatal(err)
	}
	ok := map[string]any{"name": "ada", "age": int64(36), "tags": []any{"x"}}
	if err := s.Validate(ok); err != nil {
		t.Errorf("valid doc rejected: %v", err)
	}
	cases := []map[string]any{
		{"name": "ada"},                                           // missing age
		{"name": "", "age": int64(1)},                             // minLength
		{"name": "ada", "age": int64(-1)},                         // minimum
		{"name": "ada", "age": int64(200)},                        // maximum
		{"name": "ada", "age": "old"},                             // type
		{"name": "ada", "age": int64(1), "extra": true},           // additionalProperties
		{"name": "ada", "age": int64(1), "tags": []any{}},         // minItems
		{"name": "ada", "age": int64(1), "tags": []any{int64(1)}}, // items type
		{"name": strings.Repeat("x", 11), "age": int64(1)},        // maxLength
	}
	for i, c := range cases {
		if err := s.Validate(c); err == nil {
			t.Errorf("case %d should be rejected: %v", i, c)
		}
	}
}

func TestValidatePatternEnumAnyOf(t *testing.T) {
	s, err := CompileYAML(`
type: object
properties:
  id:
    type: string
    pattern: "^[0-9a-f]{4}$"
  op:
    enum: [CREATE, TRANSFER, 3]
  val:
    anyOf:
      - type: string
      - type: integer
        minimum: 10
`)
	if err != nil {
		t.Fatal(err)
	}
	good := []map[string]any{
		{"id": "ab12"},
		{"op": "CREATE"},
		{"op": int64(3)},
		{"val": "str"},
		{"val": int64(11)},
	}
	for _, g := range good {
		if err := s.Validate(g); err != nil {
			t.Errorf("%v rejected: %v", g, err)
		}
	}
	bad := []map[string]any{
		{"id": "zzzz"},
		{"id": "ab123"},
		{"op": "DELETE"},
		{"val": int64(5)},
		{"val": true},
	}
	for _, b := range bad {
		if err := s.Validate(b); err == nil {
			t.Errorf("%v should be rejected", b)
		}
	}
}

func TestValidateTypeList(t *testing.T) {
	s, err := CompileYAML(`
type: object
properties:
  meta:
    type: [object, "null"]
`)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(map[string]any{"meta": nil}); err != nil {
		t.Errorf("null should pass: %v", err)
	}
	if err := s.Validate(map[string]any{"meta": map[string]any{}}); err != nil {
		t.Errorf("object should pass: %v", err)
	}
	if err := s.Validate(map[string]any{"meta": "s"}); err == nil {
		t.Error("string should fail")
	}
}

func TestIntegerAcceptsWholeFloat(t *testing.T) {
	s, err := CompileYAML("type: integer\n")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(float64(5)); err != nil {
		t.Errorf("5.0 should be a valid integer: %v", err)
	}
	if err := s.Validate(5.5); err == nil {
		t.Error("5.5 should not be a valid integer")
	}
}

func TestRefResolution(t *testing.T) {
	s, err := CompileYAML(`
definitions:
  hexid:
    type: string
    pattern: "^[0-9a-f]+$"
type: object
properties:
  a:
    $ref: "#/definitions/hexid"
  list:
    type: array
    items:
      $ref: "#/definitions/hexid"
`)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(map[string]any{"a": "ff", "list": []any{"aa", "bb"}}); err != nil {
		t.Errorf("valid refs rejected: %v", err)
	}
	if err := s.Validate(map[string]any{"a": "XYZ"}); err == nil {
		t.Error("bad ref value should fail")
	}
	if err := s.Validate(map[string]any{"list": []any{"GG"}}); err == nil {
		t.Error("bad ref item should fail")
	}
}

func TestCompileErrors(t *testing.T) {
	bad := []string{
		"type: zebra\n",
		"type: 3\n",
		"pattern: \"[\"\ntype: string\n",
		"properties:\n  a: 3\n",
		"$ref: \"http://remote\"\n",
		"required: [1]\n",
		"anyOf: [3]\n",
		"minLength: x\n",
	}
	for _, src := range bad {
		if _, err := CompileYAML(src); err == nil {
			t.Errorf("CompileYAML(%q) should fail", src)
		}
	}
}

func TestUnresolvedRefSurfacesAtValidation(t *testing.T) {
	s, err := CompileYAML(`
type: object
properties:
  a:
    $ref: "#/definitions/missing"
`)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(map[string]any{"a": 1}); err == nil {
		t.Error("unresolved ref should error at validation")
	}
}

func newTestRegistry(t *testing.T) *Registry {
	t.Helper()
	r, err := NewRegistry()
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func signedCreate(t *testing.T, kp *keys.KeyPair) *txn.Transaction {
	t.Helper()
	tx := txn.NewCreate(kp.PublicBase58(), map[string]any{"capabilities": []any{"cnc"}}, 3, map[string]any{"k": "v"})
	if err := txn.Sign(tx, kp); err != nil {
		t.Fatal(err)
	}
	return tx
}

func TestRegistryValidatesAllNativeTypes(t *testing.T) {
	r := newTestRegistry(t)
	if got := len(r.Operations()); got != 7 {
		t.Fatalf("registry has %d operations, want 7 (6 paper types + WITHDRAW_BID)", got)
	}
	issuer := keys.MustGenerate()
	escrow := keys.MustGenerate()
	requester := keys.MustGenerate()

	create := signedCreate(t, issuer)
	if err := r.ValidateTx(create); err != nil {
		t.Errorf("CREATE: %v", err)
	}

	request := txn.NewRequest(requester.PublicBase58(),
		map[string]any{"capabilities": []any{"cnc", "3d-printing"}}, nil)
	if err := txn.Sign(request, requester); err != nil {
		t.Fatal(err)
	}
	if err := r.ValidateTx(request); err != nil {
		t.Errorf("REQUEST: %v", err)
	}

	transfer := txn.NewTransfer(create.ID,
		[]txn.Spend{{Ref: txn.OutputRef{TxID: create.ID, Index: 0}, Owners: []string{issuer.PublicBase58()}}},
		[]*txn.Output{{PublicKeys: []string{requester.PublicBase58()}, Amount: 3}}, nil)
	if err := txn.Sign(transfer, issuer); err != nil {
		t.Fatal(err)
	}
	if err := r.ValidateTx(transfer); err != nil {
		t.Errorf("TRANSFER: %v", err)
	}

	bid := txn.NewBid(issuer.PublicBase58(), create.ID,
		txn.Spend{Ref: txn.OutputRef{TxID: create.ID, Index: 0}, Owners: []string{issuer.PublicBase58()}},
		3, escrow.PublicBase58(), request.ID, nil)
	if err := txn.Sign(bid, issuer); err != nil {
		t.Fatal(err)
	}
	if err := r.ValidateTx(bid); err != nil {
		t.Errorf("BID: %v", err)
	}

	accept, err := txn.NewAcceptBid(requester.PublicBase58(), escrow.PublicBase58(), request.ID, bid, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := txn.Sign(accept, escrow, requester); err != nil {
		t.Fatal(err)
	}
	if err := r.ValidateTx(accept); err != nil {
		t.Errorf("ACCEPT_BID: %v", err)
	}

	ret := txn.NewReturn(escrow.PublicBase58(), accept.ID, 0, issuer.PublicBase58(), 3, create.ID, nil)
	if err := txn.Sign(ret, escrow); err != nil {
		t.Fatal(err)
	}
	if err := r.ValidateTx(ret); err != nil {
		t.Errorf("RETURN: %v", err)
	}
}

func TestRegistryRejectsUnknownOperation(t *testing.T) {
	r := newTestRegistry(t)
	err := r.ValidateDoc(map[string]any{"operation": "DESTROY"})
	var se *txn.SchemaError
	if !errors.As(err, &se) {
		t.Fatalf("want SchemaError, got %v", err)
	}
	if err := r.ValidateDoc(map[string]any{}); err == nil {
		t.Error("missing operation should fail")
	}
	if err := r.ValidateDoc(map[string]any{"operation": 5.0}); err == nil {
		t.Error("non-string operation should fail")
	}
}

func TestRegistryRejectsStructuralViolations(t *testing.T) {
	r := newTestRegistry(t)
	issuer := keys.MustGenerate()
	base := signedCreate(t, issuer)

	mutate := func(f func(doc map[string]any)) map[string]any {
		doc := base.ToDoc()
		f(doc)
		return doc
	}
	cases := map[string]map[string]any{
		"bad id":          mutate(func(d map[string]any) { d["id"] = "xyz" }),
		"missing outputs": mutate(func(d map[string]any) { delete(d, "outputs") }),
		"empty outputs":   mutate(func(d map[string]any) { d["outputs"] = []any{} }),
		"two create inputs": mutate(func(d map[string]any) {
			ins := d["inputs"].([]any)
			d["inputs"] = append(ins, ins[0])
		}),
		"create with refs": mutate(func(d map[string]any) { d["refs"] = []any{base.ID} }),
		"bad version":      mutate(func(d map[string]any) { d["version"] = "9.9" }),
		"zero amount": mutate(func(d map[string]any) {
			d["outputs"].([]any)[0].(map[string]any)["amount"] = 0.0
		}),
		"extra field": mutate(func(d map[string]any) { d["bonus"] = 1.0 }),
		"create with asset link": mutate(func(d map[string]any) {
			d["asset"] = map[string]any{"id": strings.Repeat("a", 64)}
		}),
	}
	for name, doc := range cases {
		if err := r.ValidateDoc(doc); err == nil {
			t.Errorf("%s: should be rejected", name)
		}
	}
}

func TestRegistryRejectsReservedKeys(t *testing.T) {
	r := newTestRegistry(t)
	issuer := keys.MustGenerate()
	for _, data := range []map[string]any{
		{"$where": "1"},
		{"a.b": "1"},
		{"nested": map[string]any{"$bad": true}},
		{"list": []any{map[string]any{"x.y": 1}}},
	} {
		tx := txn.NewCreate(issuer.PublicBase58(), data, 1, nil)
		if err := txn.Sign(tx, issuer); err != nil {
			t.Fatal(err)
		}
		if err := r.ValidateTx(tx); err == nil {
			t.Errorf("data %v should be rejected", data)
		}
	}
	// Reserved keys in metadata too.
	tx := txn.NewCreate(issuer.PublicBase58(), nil, 1, map[string]any{"a.b": 1})
	if err := txn.Sign(tx, issuer); err != nil {
		t.Fatal(err)
	}
	if err := r.ValidateTx(tx); err == nil {
		t.Error("reserved metadata key should be rejected")
	}
}

func TestRequestSchemaRequiresCapabilities(t *testing.T) {
	r := newTestRegistry(t)
	requester := keys.MustGenerate()
	req := txn.NewRequest(requester.PublicBase58(), map[string]any{"item": "widget"}, nil)
	if err := txn.Sign(req, requester); err != nil {
		t.Fatal(err)
	}
	if err := r.ValidateTx(req); err == nil {
		t.Error("REQUEST without capabilities should fail schema validation")
	}
}

func TestBidSchemaRequiresReference(t *testing.T) {
	r := newTestRegistry(t)
	bidder, escrow := keys.MustGenerate(), keys.MustGenerate()
	asset := signedCreate(t, bidder)
	bid := txn.NewBid(bidder.PublicBase58(), asset.ID,
		txn.Spend{Ref: txn.OutputRef{TxID: asset.ID, Index: 0}, Owners: []string{bidder.PublicBase58()}},
		3, escrow.PublicBase58(), strings.Repeat("a", 64), nil)
	bid.Refs = nil // violates BID.2
	if err := txn.Sign(bid, bidder); err != nil {
		t.Fatal(err)
	}
	if err := r.ValidateTx(bid); err == nil {
		t.Error("BID without refs should fail schema validation")
	}
}

func TestRegisterCustomOperation(t *testing.T) {
	r := newTestRegistry(t)
	s, err := CompileYAML(`
type: object
required: [operation]
properties:
  operation:
    enum: [INTEREST]
`)
	if err != nil {
		t.Fatal(err)
	}
	r.Register("INTEREST", s)
	if err := r.ValidateDoc(map[string]any{"operation": "INTEREST"}); err != nil {
		t.Errorf("custom operation rejected: %v", err)
	}
	if len(r.Operations()) != 8 {
		t.Errorf("Operations() = %v", r.Operations())
	}
}
