package workload

import (
	"testing"

	"smartchaindb/internal/keys"
	"smartchaindb/internal/server"
	"smartchaindb/internal/txn"
)

func TestDeterministicAccounts(t *testing.T) {
	esc := keys.DeterministicKeyPair(1)
	a := NewGenerator(5, esc)
	b := NewGenerator(5, esc)
	if a.Account(3).PublicBase58() != b.Account(3).PublicBase58() {
		t.Error("same seed should give same accounts")
	}
	if a.Account(3).PublicBase58() == a.Account(4).PublicBase58() {
		t.Error("different indices should differ")
	}
	if a.Escrow().PublicBase58() != esc.PublicBase58() {
		t.Error("escrow mismatch")
	}
}

func TestCapabilityStringsSize(t *testing.T) {
	g := NewGenerator(7, keys.DeterministicKeyPair(1))
	for _, total := range []int{100, 1090, 1740} {
		caps := g.CapabilityStrings(4, total)
		if len(caps) != 4 {
			t.Fatalf("len = %d", len(caps))
		}
		sum := 0
		for _, c := range caps {
			sum += len(c)
		}
		if sum < total*8/10 || sum > total*12/10 {
			t.Errorf("total %d: rendered %d bytes, want within 20%%", total, sum)
		}
	}
	// Degenerate inputs do not panic.
	if got := g.CapabilityStrings(0, 10); len(got) != 1 {
		t.Errorf("n=0 -> %d strings", len(got))
	}
}

func TestPayloadSizeGrowsWireSize(t *testing.T) {
	g := NewGenerator(7, keys.DeterministicKeyPair(1))
	owner := g.Account(0)
	small := g.Create(owner, []string{"cnc"}, 100)
	large := g.Create(owner, []string{"cnc"}, 1740)
	smallLen := len(small.MarshalCanonical())
	largeLen := len(large.MarshalCanonical())
	if largeLen <= smallLen+1000 {
		t.Errorf("payload padding ineffective: %d vs %d bytes", smallLen, largeLen)
	}
}

func TestAuctionGroupAppliesCleanly(t *testing.T) {
	node := server.NewNode(server.Config{ReservedSeed: 31})
	g := NewGenerator(11, node.Escrow())
	grp := g.NewAuctionGroup(0, AuctionGroupSpec{BiddersPerAuction: 4, PayloadBytes: 256})

	if len(grp.Creates) != 4 || len(grp.Bids) != 4 {
		t.Fatalf("group shape: %d creates, %d bids", len(grp.Creates), len(grp.Bids))
	}
	apply := func(txs ...*txn.Transaction) {
		t.Helper()
		for _, tx := range txs {
			if err := node.Apply(tx); err != nil {
				t.Fatalf("apply %s: %v", tx.Operation, err)
			}
		}
	}
	apply(grp.Request)
	apply(grp.Creates...)
	apply(grp.Bids...)
	apply(grp.Accept)
	// Auction settled: 1 request + 4 creates + 4 bids + 1 accept +
	// 4 children (1 transfer + 3 returns) = 14 transactions.
	if got := node.State().TxCount(); got != 14 {
		t.Errorf("tx count = %d, want 14", got)
	}
}

func TestGroupsRespectMixRatios(t *testing.T) {
	g := NewGenerator(13, keys.DeterministicKeyPair(2))
	mix := Mix{Creates: 40, Bids: 40, Requests: 4, Accepts: 4}
	groups := g.Groups(mix, 128)
	if len(groups) != 4 {
		t.Fatalf("groups = %d", len(groups))
	}
	for _, grp := range groups {
		if len(grp.Bids) != 10 {
			t.Errorf("bids per group = %d, want 10", len(grp.Bids))
		}
		if grp.Accept == nil {
			t.Error("group missing accept")
		}
	}
	// Distinct groups use distinct accounts.
	if groups[0].Requester.PublicBase58() == groups[1].Requester.PublicBase58() {
		t.Error("groups share requester accounts")
	}
}

func TestPaperMixAndScale(t *testing.T) {
	m := PaperMix()
	if m.Total() != 110000 {
		t.Errorf("paper mix total = %d", m.Total())
	}
	s := m.Scale(1000)
	if s.Creates != 50 || s.Bids != 50 || s.Requests != 5 || s.Accepts != 5 {
		t.Errorf("scaled = %+v", s)
	}
	if got := m.Scale(1); got != m {
		t.Error("scale 1 should be identity")
	}
	tiny := Mix{Creates: 1, Bids: 1, Requests: 1, Accepts: 1}.Scale(10)
	if tiny.Creates != 1 {
		t.Error("scale floors at 1")
	}
}

func TestGroupsEmptyMix(t *testing.T) {
	g := NewGenerator(13, keys.DeterministicKeyPair(2))
	if got := g.Groups(Mix{}, 0); got != nil {
		t.Errorf("empty mix should give no groups: %v", got)
	}
}
