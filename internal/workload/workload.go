// Package workload generates the synthetic transaction workloads of the
// paper's evaluation (§5.1.3): deterministic account populations,
// reverse-auction groups matching the published mix (50,000 CREATE,
// 50,000 BID, 5,000 REQUEST, 5,000 ACCEPT_BID), and payload-size sweeps
// that pad transaction metadata with manufacturing-capability strings
// of controlled size (0.10–1.74 KB in Figure 7).
package workload

import (
	"fmt"
	"math/rand"

	"smartchaindb/internal/keys"
	"smartchaindb/internal/txn"
)

// Generator produces deterministic signed transactions.
type Generator struct {
	rng      *rand.Rand
	escrow   *keys.KeyPair
	accounts map[int]*keys.KeyPair
	seedBase int64
	seq      int
}

// NewGenerator creates a generator. All output is a pure function of
// (seed, escrow key, call sequence).
func NewGenerator(seed int64, escrow *keys.KeyPair) *Generator {
	return &Generator{
		rng:      rand.New(rand.NewSource(seed)),
		escrow:   escrow,
		accounts: make(map[int]*keys.KeyPair),
		seedBase: seed * 1_000_003,
	}
}

// Account returns the i-th deterministic client account.
func (g *Generator) Account(i int) *keys.KeyPair {
	if kp, ok := g.accounts[i]; ok {
		return kp
	}
	kp := keys.DeterministicKeyPair(g.seedBase + int64(i))
	g.accounts[i] = kp
	return kp
}

// Escrow returns the escrow account bids target.
func (g *Generator) Escrow() *keys.KeyPair { return g.escrow }

// CapabilityStrings builds n capability labels whose total rendered
// size is close to totalBytes — the "list of strings of various sizes
// ... representing digital manufacturing capabilities" of Experiment 1.
func (g *Generator) CapabilityStrings(n, totalBytes int) []string {
	if n <= 0 {
		n = 1
	}
	per := totalBytes / n
	if per < 8 {
		per = 8
	}
	caps := make([]string, n)
	for i := range caps {
		label := fmt.Sprintf("capability-%02d-", i)
		pad := per - len(label)
		if pad < 0 {
			pad = 0
		}
		buf := make([]byte, pad)
		const alphabet = "abcdefghijklmnopqrstuvwxyz0123456789"
		for j := range buf {
			buf[j] = alphabet[g.rng.Intn(len(alphabet))]
		}
		caps[i] = label + string(buf)
	}
	return caps
}

func anyStrings(ss []string) []any {
	out := make([]any, len(ss))
	for i, s := range ss {
		out[i] = s
	}
	return out
}

func (g *Generator) nextSeq() int {
	g.seq++
	return g.seq
}

// meta builds the standard transaction metadata: the size padding plus
// a monotone client timestamp. The timestamp is the generator's
// logical clock — deterministic per seed, so fingerprint differentials
// stay byte-identical — and feeds the ledger's ordered
// metadata.timestamp index (recency queries like "most recent open
// requests").
func (g *Generator) meta(payloadBytes int) map[string]any {
	return map[string]any{
		"pad":       anyStrings(g.CapabilityStrings(4, payloadBytes)),
		"timestamp": g.nextSeq(),
	}
}

func mustSign(t *txn.Transaction, signers ...*keys.KeyPair) *txn.Transaction {
	if err := txn.Sign(t, signers...); err != nil {
		// Generator inputs are all locally produced; failure is a defect.
		panic(fmt.Sprintf("workload: sign: %v", err))
	}
	return t
}

// Create mints an asset for owner advertising caps, with payloadBytes
// of capability metadata.
func (g *Generator) Create(owner *keys.KeyPair, caps []string, payloadBytes int) *txn.Transaction {
	data := map[string]any{
		"capabilities": anyStrings(caps),
		"seq":          g.nextSeq(),
	}
	meta := g.meta(payloadBytes)
	return mustSign(txn.NewCreate(owner.PublicBase58(), data, 1, meta), owner)
}

// Request publishes an RFQ from requester demanding caps.
func (g *Generator) Request(requester *keys.KeyPair, caps []string, payloadBytes int) *txn.Transaction {
	data := map[string]any{
		"capabilities": anyStrings(caps),
		"seq":          g.nextSeq(),
	}
	meta := g.meta(payloadBytes)
	return mustSign(txn.NewRequest(requester.PublicBase58(), data, meta), requester)
}

// Bid answers rfq with bidder's asset, with payloadBytes of metadata.
func (g *Generator) Bid(bidder *keys.KeyPair, asset, rfq *txn.Transaction, payloadBytes int) *txn.Transaction {
	meta := g.meta(payloadBytes)
	return mustSign(txn.NewBid(bidder.PublicBase58(), asset.ID,
		txn.Spend{Ref: txn.OutputRef{TxID: asset.ID, Index: 0}, Owners: []string{bidder.PublicBase58()}},
		1, g.escrow.PublicBase58(), rfq.ID, meta), bidder)
}

// Accept closes an auction, winning bid first.
func (g *Generator) Accept(requester *keys.KeyPair, rfq, win *txn.Transaction, losing []*txn.Transaction) *txn.Transaction {
	t, err := txn.NewAcceptBid(requester.PublicBase58(), g.escrow.PublicBase58(), rfq.ID, win, losing, nil)
	if err != nil {
		panic(fmt.Sprintf("workload: accept: %v", err))
	}
	return mustSign(t, g.escrow, requester)
}

// AuctionGroup is one complete reverse auction: a REQUEST, the bidders'
// backing CREATEs, the BIDs, and the closing ACCEPT_BID. Submission
// must respect the phases: Creates+Request commit before Bids, Bids
// before Accept.
type AuctionGroup struct {
	Requester *keys.KeyPair
	Bidders   []*keys.KeyPair
	Request   *txn.Transaction
	Creates   []*txn.Transaction
	Bids      []*txn.Transaction
	Accept    *txn.Transaction
}

// AuctionGroupSpec parameterizes group generation.
type AuctionGroupSpec struct {
	BiddersPerAuction int
	// PayloadBytes pads each transaction's metadata (Experiment 1's
	// transaction-size axis).
	PayloadBytes int
	// Capabilities demanded by the REQUEST and advertised by assets.
	Capabilities []string
}

// NewAuctionGroup builds one coherent auction. accountBase offsets the
// deterministic accounts so groups do not share keys.
func (g *Generator) NewAuctionGroup(accountBase int, spec AuctionGroupSpec) *AuctionGroup {
	if spec.BiddersPerAuction <= 0 {
		spec.BiddersPerAuction = 10
	}
	if len(spec.Capabilities) == 0 {
		spec.Capabilities = []string{"3d-printing", "cnc-milling"}
	}
	grp := &AuctionGroup{Requester: g.Account(accountBase)}
	grp.Request = g.Request(grp.Requester, spec.Capabilities, spec.PayloadBytes)
	for i := 0; i < spec.BiddersPerAuction; i++ {
		bidder := g.Account(accountBase + 1 + i)
		grp.Bidders = append(grp.Bidders, bidder)
		asset := g.Create(bidder, spec.Capabilities, spec.PayloadBytes)
		grp.Creates = append(grp.Creates, asset)
		grp.Bids = append(grp.Bids, g.Bid(bidder, asset, grp.Request, spec.PayloadBytes))
	}
	win := g.rng.Intn(len(grp.Bids))
	losing := make([]*txn.Transaction, 0, len(grp.Bids)-1)
	for i, b := range grp.Bids {
		if i != win {
			losing = append(losing, b)
		}
	}
	grp.Accept = g.Accept(grp.Requester, grp.Request, grp.Bids[win], losing)
	return grp
}

// Mix is the paper's workload composition.
type Mix struct {
	Creates  int
	Bids     int
	Requests int
	Accepts  int
}

// PaperMix is the published 110,000-transaction composition.
func PaperMix() Mix { return Mix{Creates: 50000, Bids: 50000, Requests: 5000, Accepts: 5000} }

// Scale shrinks a mix by an integer factor, preserving the ratios, for
// laptop-scale runs.
func (m Mix) Scale(factor int) Mix {
	if factor <= 1 {
		return m
	}
	scale := func(v int) int {
		s := v / factor
		if s < 1 {
			s = 1
		}
		return s
	}
	return Mix{Creates: scale(m.Creates), Bids: scale(m.Bids), Requests: scale(m.Requests), Accepts: scale(m.Accepts)}
}

// Total returns the transaction count of the mix.
func (m Mix) Total() int { return m.Creates + m.Bids + m.Requests + m.Accepts }

// Groups renders the mix as auction groups: one group per REQUEST with
// Bids/Requests bidders each. The group construction consumes the
// CREATE budget as bid-backing assets, matching the paper's 10:1
// bid-to-request ratio.
func (g *Generator) Groups(m Mix, payloadBytes int) []*AuctionGroup {
	if m.Requests <= 0 {
		return nil
	}
	bidders := m.Bids / m.Requests
	if bidders < 1 {
		bidders = 1
	}
	groups := make([]*AuctionGroup, 0, m.Requests)
	base := 0
	for i := 0; i < m.Requests; i++ {
		groups = append(groups, g.NewAuctionGroup(base, AuctionGroupSpec{
			BiddersPerAuction: bidders,
			PayloadBytes:      payloadBytes,
		}))
		base += bidders + 1
	}
	return groups
}
