// Package netsim simulates the validator network: message passing with
// configurable latency distributions, node crashes and restarts, and
// partitions, all on the deterministic simclock scheduler. It stands in
// for the Digital Ocean VM clusters of the paper's evaluation, giving
// the experiments controllable node counts and reproducible timing.
package netsim

import (
	"fmt"
	"time"

	"smartchaindb/internal/simclock"
)

// NodeID identifies a simulated node.
type NodeID int

// Message is what travels between nodes.
type Message struct {
	From    NodeID
	To      NodeID
	Payload any
}

// Handler consumes a delivered message on the receiving node.
type Handler func(msg Message)

// LatencyModel samples the one-way delivery delay for a message.
type LatencyModel interface {
	Sample(from, to NodeID, rng interface{ Float64() float64 }) time.Duration
}

// UniformLatency delays every message by Base plus uniform jitter in
// [0, Jitter). Local loopback (from == to) is free.
type UniformLatency struct {
	Base   time.Duration
	Jitter time.Duration
}

// Sample implements LatencyModel.
func (u UniformLatency) Sample(from, to NodeID, rng interface{ Float64() float64 }) time.Duration {
	if from == to {
		return 0
	}
	d := u.Base
	if u.Jitter > 0 {
		d += time.Duration(rng.Float64() * float64(u.Jitter))
	}
	return d
}

// Network connects nodes over a latency model with fault injection.
type Network struct {
	sched    *simclock.Scheduler
	latency  LatencyModel
	handlers map[NodeID]Handler
	ids      []NodeID // registration order, for deterministic broadcast
	down     map[NodeID]bool
	cut      map[[2]NodeID]bool // severed directed links

	// Stats
	sent      int
	delivered int
	dropped   int
}

// New creates a network on the given scheduler and latency model.
func New(sched *simclock.Scheduler, latency LatencyModel) *Network {
	return &Network{
		sched:    sched,
		latency:  latency,
		handlers: make(map[NodeID]Handler),
		down:     make(map[NodeID]bool),
		cut:      make(map[[2]NodeID]bool),
	}
}

// Scheduler returns the underlying scheduler.
func (n *Network) Scheduler() *simclock.Scheduler { return n.sched }

// AddNode registers a node and its message handler.
func (n *Network) AddNode(id NodeID, h Handler) {
	if _, dup := n.handlers[id]; dup {
		panic(fmt.Sprintf("netsim: node %d already registered", id))
	}
	n.handlers[id] = h
	n.ids = append(n.ids, id)
}

// Nodes returns the registered node count.
func (n *Network) Nodes() int { return len(n.handlers) }

// Send schedules delivery of payload from -> to after a sampled
// latency. Messages from or to crashed nodes, or across severed links,
// are dropped silently — the failure mode BFT consensus must tolerate.
func (n *Network) Send(from, to NodeID, payload any) {
	n.sent++
	if n.down[from] || n.cut[[2]NodeID{from, to}] {
		n.dropped++
		return
	}
	delay := n.latency.Sample(from, to, n.sched.Rand())
	msg := Message{From: from, To: to, Payload: payload}
	n.sched.After(delay, func() {
		// Crash state is evaluated at delivery time: a node that went
		// down while the message was in flight never sees it.
		if n.down[to] {
			n.dropped++
			return
		}
		h, ok := n.handlers[to]
		if !ok {
			n.dropped++
			return
		}
		n.delivered++
		h(msg)
	})
}

// Broadcast sends payload from one node to every other node (not
// itself), in registration order so runs stay deterministic.
func (n *Network) Broadcast(from NodeID, payload any) {
	for _, id := range n.ids {
		if id != from {
			n.Send(from, id, payload)
		}
	}
}

// Crash takes a node offline: it neither sends nor receives until
// restarted.
func (n *Network) Crash(id NodeID) { n.down[id] = true }

// Restart brings a crashed node back online.
func (n *Network) Restart(id NodeID) { delete(n.down, id) }

// IsDown reports whether the node is crashed.
func (n *Network) IsDown(id NodeID) bool { return n.down[id] }

// DownCount returns the number of crashed nodes.
func (n *Network) DownCount() int { return len(n.down) }

// CutLink severs the directed link a -> b.
func (n *Network) CutLink(a, b NodeID) { n.cut[[2]NodeID{a, b}] = true }

// HealLink restores the directed link a -> b.
func (n *Network) HealLink(a, b NodeID) { delete(n.cut, [2]NodeID{a, b}) }

// Partition severs every link between the two groups, both directions.
func (n *Network) Partition(groupA, groupB []NodeID) {
	for _, a := range groupA {
		for _, b := range groupB {
			n.CutLink(a, b)
			n.CutLink(b, a)
		}
	}
}

// Heal restores all severed links.
func (n *Network) Heal() { n.cut = make(map[[2]NodeID]bool) }

// Stats reports message counters: sent, delivered, dropped.
func (n *Network) Stats() (sent, delivered, dropped int) {
	return n.sent, n.delivered, n.dropped
}
