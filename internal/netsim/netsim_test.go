package netsim

import (
	"testing"
	"time"

	"smartchaindb/internal/simclock"
)

func newNet(seed int64, nodes int, record func(id NodeID, msg Message)) (*Network, *simclock.Scheduler) {
	sched := simclock.NewScheduler(seed)
	net := New(sched, UniformLatency{Base: 10 * time.Millisecond, Jitter: 5 * time.Millisecond})
	for i := 0; i < nodes; i++ {
		id := NodeID(i)
		net.AddNode(id, func(msg Message) { record(id, msg) })
	}
	return net, sched
}

func TestSendDeliversAfterLatency(t *testing.T) {
	var got []Message
	var at time.Duration
	var sched *simclock.Scheduler
	var net *Network
	net, sched = newNet(1, 2, func(id NodeID, msg Message) {
		got = append(got, msg)
		at = sched.Now()
	})
	net.Send(0, 1, "hello")
	sched.Run()
	if len(got) != 1 || got[0].Payload != "hello" || got[0].From != 0 {
		t.Fatalf("got %v", got)
	}
	if at < 10*time.Millisecond || at >= 15*time.Millisecond {
		t.Errorf("delivered at %v, want within [10ms, 15ms)", at)
	}
}

func TestLoopbackIsFree(t *testing.T) {
	at := time.Duration(-1)
	var sched *simclock.Scheduler
	var net *Network
	net, sched = newNet(1, 1, func(id NodeID, msg Message) { at = sched.Now() })
	net.Send(0, 0, "self")
	sched.Run()
	if at != 0 {
		t.Errorf("loopback delivered at %v, want 0", at)
	}
}

func TestBroadcastReachesAllButSender(t *testing.T) {
	counts := make(map[NodeID]int)
	net, sched := newNet(1, 5, func(id NodeID, msg Message) { counts[id]++ })
	net.Broadcast(2, "x")
	sched.Run()
	if counts[2] != 0 {
		t.Error("sender should not receive its own broadcast")
	}
	for _, id := range []NodeID{0, 1, 3, 4} {
		if counts[id] != 1 {
			t.Errorf("node %d received %d messages", id, counts[id])
		}
	}
}

func TestCrashedNodesDropTraffic(t *testing.T) {
	counts := make(map[NodeID]int)
	net, sched := newNet(1, 3, func(id NodeID, msg Message) { counts[id]++ })
	net.Crash(1)
	if !net.IsDown(1) || net.DownCount() != 1 {
		t.Fatal("crash bookkeeping wrong")
	}
	net.Send(0, 1, "to crashed")   // dropped at delivery
	net.Send(1, 2, "from crashed") // dropped at send
	sched.Run()
	if counts[1] != 0 || counts[2] != 0 {
		t.Errorf("counts = %v, want no deliveries", counts)
	}
	_, _, dropped := net.Stats()
	if dropped != 2 {
		t.Errorf("dropped = %d, want 2", dropped)
	}

	net.Restart(1)
	net.Send(0, 1, "after restart")
	sched.Run()
	if counts[1] != 1 {
		t.Errorf("restarted node received %d", counts[1])
	}
}

func TestCrashDuringFlightDropsMessage(t *testing.T) {
	counts := make(map[NodeID]int)
	net, sched := newNet(1, 2, func(id NodeID, msg Message) { counts[id]++ })
	net.Send(0, 1, "in flight")
	// Crash the receiver before delivery time.
	sched.After(time.Millisecond, func() { net.Crash(1) })
	sched.Run()
	if counts[1] != 0 {
		t.Error("message delivered to node that crashed mid-flight")
	}
}

func TestPartitionAndHeal(t *testing.T) {
	counts := make(map[NodeID]int)
	net, sched := newNet(1, 4, func(id NodeID, msg Message) { counts[id]++ })
	net.Partition([]NodeID{0, 1}, []NodeID{2, 3})
	net.Send(0, 2, "across")
	net.Send(2, 0, "back")
	net.Send(0, 1, "within")
	sched.Run()
	if counts[2] != 0 || counts[0] != 0 {
		t.Errorf("partition leaked: %v", counts)
	}
	if counts[1] != 1 {
		t.Errorf("intra-partition traffic should flow: %v", counts)
	}
	net.Heal()
	net.Send(0, 2, "healed")
	sched.Run()
	if counts[2] != 1 {
		t.Errorf("healed link should deliver: %v", counts)
	}
}

func TestDeterministicDelivery(t *testing.T) {
	run := func() []time.Duration {
		var times []time.Duration
		sched := simclock.NewScheduler(7)
		net := New(sched, UniformLatency{Base: 5 * time.Millisecond, Jitter: 10 * time.Millisecond})
		for i := 0; i < 3; i++ {
			net.AddNode(NodeID(i), func(msg Message) { times = append(times, sched.Now()) })
		}
		net.Broadcast(0, "a")
		net.Broadcast(1, "b")
		sched.Run()
		return times
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("delivery %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestDuplicateNodePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on duplicate node")
		}
	}()
	net, _ := newNet(1, 1, func(NodeID, Message) {})
	net.AddNode(0, func(Message) {})
}
