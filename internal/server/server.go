// Package server implements the SmartchainDB server node: the
// transaction life cycle of Figure 4. Incoming payloads pass schema
// validation (Algorithm 1) and semantic validation (Algorithms 2–3) on
// a receiver node, are re-checked on every validator via CheckTx,
// validated a third time at the DeliverTx stage, and finally committed
// to the node's MongoDB-style document store. Committing a nested
// ACCEPT_BID triggers the non-locking child pipeline of §4.2.
package server

import (
	"fmt"
	"sync"
	"time"

	"smartchaindb/internal/consensus"
	"smartchaindb/internal/keys"
	"smartchaindb/internal/ledger"
	"smartchaindb/internal/nested"
	"smartchaindb/internal/obs"
	"smartchaindb/internal/parallel"
	"smartchaindb/internal/schema"
	"smartchaindb/internal/storage"
	"smartchaindb/internal/txn"
	"smartchaindb/internal/txtype"
	"smartchaindb/internal/validate"
)

// Config parameterizes one server node.
type Config struct {
	// ReservedSeed derives the shared system accounts (ESCROW, ADMIN);
	// every node in a cluster must use the same seed.
	ReservedSeed int64
	// ReceiverTime is the simulated wall time the receiver node spends
	// validating one incoming transaction. SmartchainDB validation cost
	// is dominated by fixed-cost index lookups, so it is independent of
	// payload size — the property behind the flat curves of Figure 7.
	ReceiverTime time.Duration
	// ValidationTimePerTx is the simulated per-transaction cost of the
	// DeliverTx-stage block validation.
	ValidationTimePerTx time.Duration
	// ParallelWorkers selects the dependency-aware parallel validation
	// pipeline for DeliverTx-stage block checks: a block's batch is
	// partitioned into conflict groups from the transactions'
	// declarative footprints and non-conflicting groups validate
	// concurrently. Values below 2 keep the sequential path. The
	// valid/invalid partition is identical either way; only the
	// validation latency changes.
	ParallelWorkers int
	// AdmissionWorkers does the same for the CheckTx-stage receiver
	// path: incoming transactions are admitted in batches, and one
	// batch's schema + semantic validation is dispatched over the
	// conflict-group scheduler on this many workers, with
	// per-transaction verdicts. Values below 2 validate each batch
	// sequentially (still batched, still index-screened).
	AdmissionWorkers int
	// MempoolBatch caps one admission batch (default 64). Arrivals
	// while the receiver is busy accumulate up to this size into the
	// next batch.
	MempoolBatch int
	// CommitWorkers selects the pipelined block commit in the ledger:
	// the block's conflict groups apply concurrently on this many
	// workers and seal in block order as one WAL group. Values below 2
	// keep the sequential commit. State bytes are identical either
	// way.
	CommitWorkers int
	// AsyncCommit lets the consensus engine overlap block h's commit
	// with height h+1's validation: Commit runs behind the node's
	// commit fence (reads at h+1 that touch h's write footprint wait
	// on the fence; disjoint ones proceed). Wired through
	// consensus.Config.AsyncCommit by the cluster. Kept for
	// compatibility: AsyncCommit is exactly CommitDepth 2, and setting
	// CommitDepth explicitly overrides it.
	AsyncCommit bool
	// CommitDepth is the commit pipeline's depth: how many pipeline
	// stages a decided block can overlap. Depth 1 serializes —
	// validation of h+1 starts only after block h seals (the
	// synchronous reference path). Depth 2 overlaps one in-flight
	// commit with the next height's validation (the old AsyncCommit).
	// Depth D lets up to D-1 blocks be mid-apply concurrently —
	// admitted by the footprint fence, staged against MVCC overlays,
	// sealed strictly in height order so the WAL fsync is the only
	// serial stage. Blocks whose footprints intersect never apply
	// concurrently regardless of depth, so state bytes are identical
	// to the sequential commit at every depth. Zero picks the default:
	// 2 when AsyncCommit is set, else 1.
	CommitDepth int
	// CommitTimePerTx is the simulated per-transaction cost of the
	// commit stage on the consensus engine's commit resource (only
	// meaningful with AsyncCommit; zero keeps commits free in virtual
	// time, as the synchronous path models them).
	CommitTimePerTx time.Duration
	// DataDir selects the persistent storage engine: the node's chain
	// state lives in a write-ahead log plus segment files under this
	// directory, every committed block lands as one atomic fsynced WAL
	// batch, and a restarted node recovers to its exact committed
	// height. Empty keeps the in-memory backend (state dies with the
	// process).
	DataDir string
	// NoSync keeps the disk backend's files but skips fsync — the
	// crash-consistency formats without the per-block flush cost.
	// Only meaningful with DataDir set.
	NoSync bool
	// AdmitFilter, when set, screens every transaction before any
	// validation work — the hook a sharded deployment uses to bounce
	// transactions homed on another shard at the door (the router
	// resubmits them where they belong). A non-nil error rejects the
	// transaction from CheckTx/CheckTxBatch/ValidateTx without running
	// schema or semantic validation. Nil admits everything.
	AdmitFilter func(*txn.Transaction) error
	// DisableAdmissionFastPath turns off the batched, deduplicating
	// signature pre-verification CheckTxBatch runs before dispatching
	// the semantic condition sets, and with it this node's
	// canonical-bytes cache scope: a disabled node re-canonicalizes and
	// re-verifies from scratch on every validation, without touching
	// the memos cached nodes in the same process maintain. The verdict
	// set is identical either way; only latency changes. Exists for
	// benchmarks that measure the uncached baseline.
	DisableAdmissionFastPath bool
	// Obs attaches an observability registry to every layer of the
	// node: ledger commit histograms, docstore planner counters,
	// storage WAL/MVCC metrics, the validation fence counters, and the
	// per-transaction stage tracer. Nil (the default) keeps the no-op
	// build — instrumentation compiles in but every record is a
	// nil-receiver no-op.
	Obs *obs.Registry
}

func (c *Config) fill() {
	if c.ReceiverTime <= 0 {
		c.ReceiverTime = 5 * time.Millisecond
	}
	if c.ValidationTimePerTx <= 0 {
		c.ValidationTimePerTx = time.Millisecond
	}
	if c.CommitDepth <= 0 {
		if c.AsyncCommit {
			c.CommitDepth = 2
		} else {
			c.CommitDepth = 1
		}
	}
	// The depth is authoritative; the boolean is its >= 2 shadow, kept
	// coherent for layers that still branch on it.
	c.AsyncCommit = c.CommitDepth >= 2
}

// fenceDepth maps the pipeline depth onto the fence's in-flight
// bound: stage one of a depth-D pipeline is the next height's
// validation, so up to D-1 commits may be mid-flight at once (never
// below 1 — the synchronous path still publishes its single in-flight
// footprint).
func (c *Config) fenceDepth() int {
	if d := c.CommitDepth - 1; d > 1 {
		return d
	}
	return 1
}

// Node is one SmartchainDB validator.
type Node struct {
	cfg      Config
	schemas  *schema.Registry
	types    *txtype.Registry
	state    *ledger.State
	reserved *keys.Reserved
	nested   *nested.Engine
	sched    *parallel.Scheduler
	ob       nodeObs

	// cache is this node's canonical-bytes cache scope, threaded into
	// every validation path so one process can host cached and
	// uncached validators side by side.
	cache *txn.CacheScope

	// baseHeight is the ledger height recovered at open; consensus
	// heights (always starting at 1 per run) are committed relative
	// to it so a restarted node extends its chain instead of
	// overwriting historical block records.
	baseHeight int64

	// One-entry conflict-plan memo: the consensus engine asks for a
	// block's ValidationTime and then validates the same batch, so
	// the plan built for the first call is reused by the second.
	planMu  sync.Mutex
	planTxs []*txn.Transaction
	plan    *parallel.Plan

	// fence orders validation against the in-flight asynchronous block
	// commits: while up to CommitDepth-1 blocks apply in the
	// background their write footprints are published here, and
	// validation paths whose footprints intersect any of them wait for
	// the seal — a cross-height data dependency (a verdict at h+k must
	// observe the overlapping unsealed writes), not a memory-safety
	// requirement. The fence also gates the appliers themselves
	// (WaitApply: intersecting blocks never apply concurrently) and
	// bounds the pipeline (Begin parks when the ring is full). Plain
	// reads — queries, analytics, fingerprints — take no fence at all:
	// they run on MVCC snapshots of the last sealed block
	// (ledger.StateView).
	fence parallel.PipelineFence

	submitChild nested.Submitter
}

// NewNode builds a node with fresh state and the native type registry.
// It panics if cfg.DataDir is set but cannot be opened; use OpenNode
// to handle storage errors.
func NewNode(cfg Config) *Node {
	n, err := OpenNode(cfg)
	if err != nil {
		panic(fmt.Sprintf("server: open node: %v", err))
	}
	return n
}

// OpenNode builds a node, opening (or recovering) the persistent
// storage engine when cfg.DataDir is set. A node reopened over an
// existing data directory resumes from its last committed block.
func OpenNode(cfg Config) (*Node, error) {
	cfg.fill()
	state, err := openState(cfg)
	if err != nil {
		return nil, err
	}
	cache := txn.NewCacheScope(!cfg.DisableAdmissionFastPath)
	n := &Node{
		cfg:      cfg,
		schemas:  schema.MustNewRegistry(),
		types:    validate.NewRegistry(),
		state:    state,
		reserved: keys.NewReservedWithDefaults(cfg.ReservedSeed),
		sched:    &parallel.Scheduler{Workers: cfg.ParallelWorkers, Cache: cache},
		ob:       newNodeObs(cfg.Obs),
		cache:    cache,
	}
	n.fence.SetDepth(cfg.fenceDepth())
	n.submitChild = func(child *txn.Transaction) {
		// Standalone default: apply children locally and synchronously.
		_ = n.Apply(child)
	}
	// The simulated consensus engine numbers blocks from 1 in every
	// process; a node recovered from disk keeps counting the ledger
	// from where it stopped.
	n.baseHeight = state.Height()
	n.nested = nested.NewEngine(n.state, n.reserved.Escrow(), func(child *txn.Transaction) {
		n.submitChild(child)
	})
	return n, nil
}

// openState builds the node's chain state over the configured backend.
func openState(cfg Config) (*ledger.State, error) {
	var state *ledger.State
	if cfg.DataDir == "" {
		state = ledger.NewState()
	} else {
		eng, err := storage.Open(cfg.DataDir, storage.Options{NoSync: cfg.NoSync})
		if err != nil {
			return nil, err
		}
		state = ledger.NewStateWith(eng)
	}
	state.SetCommitWorkers(cfg.CommitWorkers)
	if cfg.Obs != nil {
		state.SetObs(cfg.Obs)
	}
	return state, nil
}

// DrainCommits blocks until no asynchronous block commit is in
// flight. Callers reading state-wide snapshots (fingerprints, dumps)
// from outside the engine thread drain first: a commit whose
// CommitStart ran but whose applier has not yet taken the state lock
// would otherwise be invisible to the snapshot.
func (n *Node) DrainCommits() { n.fence.Drain() }

// Close waits for any in-flight asynchronous commit to seal, then
// flushes and releases the node's storage backend.
func (n *Node) Close() error {
	n.fence.Drain()
	return n.state.Close()
}

// SetChildSubmitter routes child transactions produced by the nested
// engine (e.g. into a consensus cluster instead of local apply).
func (n *Node) SetChildSubmitter(s nested.Submitter) { n.submitChild = s }

// State exposes the node's chain state (for queries and tests).
func (n *Node) State() *ledger.State { return n.state }

// Reserved exposes the node's reserved-account registry.
func (n *Node) Reserved() *keys.Reserved { return n.reserved }

// Escrow returns the shared escrow system account.
func (n *Node) Escrow() *keys.KeyPair { return n.reserved.Escrow() }

// Types exposes the declarative type registry so applications can
// register additional transaction types.
func (n *Node) Types() *txtype.Registry { return n.types }

// Schemas exposes the structural schema registry.
func (n *Node) Schemas() *schema.Registry { return n.schemas }

// Nested exposes the nested-transaction engine (recovery hooks).
func (n *Node) Nested() *nested.Engine { return n.nested }

// ValidateTx runs the receiver-node validation of Figure 4: schema
// first (Algorithm 1), then the semantic condition set for the
// operation against committed state. If an asynchronous block commit
// is in flight and this transaction's footprint touches its writes,
// the check waits for the seal; disjoint transactions validate
// concurrently with the appliers. The condition set then runs against
// a pinned snapshot of the newest sealed block, so a commit landing
// mid-validation cannot flip individual reads under the verdict.
func (n *Node) ValidateTx(t *txn.Transaction) error {
	if n.cfg.AdmitFilter != nil {
		if err := n.cfg.AdmitFilter(t); err != nil {
			return err
		}
	}
	if err := n.schemas.ValidateTx(t); err != nil {
		return err
	}
	n.waitFence(parallel.TouchKeys([]*txn.Transaction{t}))
	ctx := &txtype.Context{State: n.state.View(), Reserved: n.reserved, Cache: n.cache}
	return n.types.Validate(ctx, t)
}

// Apply validates and commits a transaction synchronously against this
// single node — the standalone (consensus-free) mode used by examples
// and tests. Nested children are applied recursively.
func (n *Node) Apply(t *txn.Transaction) error {
	if err := n.ValidateTx(t); err != nil {
		return err
	}
	if err := n.state.CommitTx(t); err != nil {
		return err
	}
	n.afterCommit(t)
	return nil
}

// afterCommit runs the nested hooks for one committed transaction.
func (n *Node) afterCommit(t *txn.Transaction) {
	switch t.Operation {
	case txn.OpAcceptBid:
		owner, err := n.rfqOwnerOf(t)
		if err != nil {
			return
		}
		if err := n.nested.OnParentCommitted(t, owner); err != nil {
			return
		}
		n.nested.Drain()
	case txn.OpTransfer, txn.OpReturn:
		n.nested.OnChildCommitted(t)
	}
}

func (n *Node) rfqOwnerOf(accept *txn.Transaction) (string, error) {
	if len(accept.Refs) == 0 {
		return "", fmt.Errorf("server: ACCEPT_BID %s has no REQUEST reference", accept.ID[:8])
	}
	rfq, err := n.state.GetTx(accept.Refs[0])
	if err != nil {
		return "", err
	}
	if len(rfq.Outputs) == 0 || len(rfq.Outputs[0].PublicKeys) == 0 {
		return "", fmt.Errorf("server: REQUEST %s has no owner", rfq.ID[:8])
	}
	return rfq.Outputs[0].PublicKeys[0], nil
}

// Recover replays the nested recovery log after a crash and resubmits
// the pending children.
func (n *Node) Recover() int {
	replayed := n.nested.Recover()
	n.nested.Drain()
	return replayed
}

// --- consensus.App implementation -----------------------------------

// CheckTx admits a transaction to the mempool: full schema + semantic
// validation against committed state.
func (n *Node) CheckTx(tx consensus.Tx) error {
	t, ok := tx.(*txn.Transaction)
	if !ok {
		return fmt.Errorf("server: unexpected tx type %T", tx)
	}
	return n.ValidateTx(t)
}

// CheckTxBatch validates one admission batch with per-transaction
// verdicts: schema validation per transaction (Algorithm 1, cheap and
// independent), then the semantic condition sets dispatched over the
// conflict-group scheduler on AdmissionWorkers workers. Intra-batch
// conflicts are caught the same way the DeliverTx stage catches
// intra-block ones: the first claimant of an output wins, in batch
// order, so the verdict set is deterministic.
func (n *Node) CheckTxBatch(txs []consensus.Tx) map[string]error {
	errs := make(map[string]error)
	batch := make([]*txn.Transaction, 0, len(txs))
	for _, tx := range txs {
		t, ok := tx.(*txn.Transaction)
		if !ok {
			errs[tx.Hash()] = fmt.Errorf("server: unexpected tx type %T", tx)
			continue
		}
		if n.cfg.AdmitFilter != nil {
			if err := n.cfg.AdmitFilter(t); err != nil {
				errs[t.ID] = err
				continue
			}
		}
		if err := n.schemas.ValidateTx(t); err != nil {
			errs[t.ID] = err
			continue
		}
		batch = append(batch, t)
	}
	if !n.cfg.DisableAdmissionFastPath && len(batch) > 0 {
		// Verify the whole batch's fulfillments as one unit: identical
		// (pub, payload) pairs — a multi-input transaction signs its one
		// payload once per input — collapse to a single ed25519 check,
		// and distinct checks fan out over the admission workers. The
		// verdicts are deliberately NOT authoritative: successes are
		// memoized on the transactions so the condition sets below serve
		// the signature condition in O(1), while a failed transaction
		// simply stays cold and re-verifies inside its condition set,
		// failing with the exact error — including the condition name
		// and ordering relative to structural conditions — the per-tx
		// path produces. Correctness never depends on this stage.
		_, stats := n.cache.VerifyFulfillmentsBatch(batch, n.cfg.AdmissionWorkers)
		n.observeFastPath(stats)
	}
	sched := &parallel.Scheduler{Workers: n.cfg.AdmissionWorkers, Cache: n.cache}
	var plan *parallel.Plan
	if n.cfg.AdmissionWorkers > 1 && len(batch) > 1 {
		// The plan doubles as the fence key source, so the batch's
		// footprints are derived once, not once per consumer.
		plan = parallel.BuildPlan(batch)
		n.waitFence(plan.TouchKeys())
	} else {
		n.waitFence(parallel.TouchKeys(batch))
	}
	// One snapshot for the whole batch: every worker's condition set
	// reads the same sealed height (the one the fence wait just
	// guaranteed covers the batch's footprints), so the verdict set is
	// deterministic even with commits racing in the background.
	res := sched.ValidateBatchPlan(n.types, n.state.View(), n.reserved, batch, plan)
	for id, err := range res.Errs {
		errs[id] = err
	}
	if len(errs) == 0 {
		return nil
	}
	return errs
}

// ReceiverBatchTime reports the simulated receiver cost of one batched
// admission. With AdmissionWorkers > 1 it is the makespan of the
// batch's conflict groups on the admission pool — the simulated
// counterpart of the wall-clock speedup CheckTxBatch gets from the
// scheduler; otherwise the per-transaction sum, identical to admitting
// one at a time.
func (n *Node) ReceiverBatchTime(txs []consensus.Tx) time.Duration {
	if w := n.cfg.AdmissionWorkers; w > 1 && len(txs) > 1 {
		span := parallel.BuildPlan(asTransactions(txs)).Makespan(w)
		return time.Duration(span) * n.cfg.ReceiverTime
	}
	return time.Duration(len(txs)) * n.cfg.ReceiverTime
}

// ValidateBlock re-validates a proposed block with intra-block conflict
// detection (the CurrentTxs context of Algorithms 2–3) and returns the
// transactions that must not be included. With ParallelWorkers > 1 the
// batch is validated by the dependency-aware parallel scheduler;
// transactions in one conflict group keep block order, so the result
// is identical to the sequential pass.
func (n *Node) ValidateBlock(txs []consensus.Tx) []consensus.Tx {
	return n.ValidateBlockFresh(txs, nil)
}

// ValidateBlockFresh is ValidateBlock with verdict reuse (the
// consensus.VerdictReuseApp surface): transactions flagged fresh skip
// their semantic condition sets — their admission verdict was proven
// against committed state and nothing committed since has written
// into their footprints — and re-run only the structural duplicate
// and intra-block double-spend checks. A nil fresh re-validates
// everything. Either way the block first waits out any in-flight
// asynchronous commit whose writes its footprints touch.
func (n *Node) ValidateBlockFresh(txs []consensus.Tx, fresh []bool) []consensus.Tx {
	batch, freshBatch := asTransactionsFresh(txs, fresh)
	var plan *parallel.Plan
	var fenceD time.Duration
	if n.cfg.ParallelWorkers > 1 {
		plan = n.planFor(batch)
		fenceD = n.waitFence(plan.TouchKeys())
	} else {
		fenceD = n.waitFence(parallel.TouchKeys(batch))
	}
	if n.ob.tracer != nil {
		n.ob.tracer.ObserveEach(n.batchIDs(batch), obs.StageFenceWait, fenceD)
	}
	validateT := time.Now()
	res := n.sched.ValidateBatchFresh(n.types, n.state.View(), n.reserved, batch, plan, freshBatch)
	n.observeValidation(batch, res, time.Since(validateT))
	rejected := make(map[*txn.Transaction]bool, len(res.Invalid))
	for _, t := range res.Invalid {
		rejected[t] = true
	}
	var invalid []consensus.Tx
	for _, tx := range txs {
		t, ok := tx.(*txn.Transaction)
		if !ok || rejected[t] {
			invalid = append(invalid, tx)
		}
	}
	return invalid
}

// ReceiverTime reports the simulated receiver-node validation cost.
func (n *Node) ReceiverTime(consensus.Tx) time.Duration { return n.cfg.ReceiverTime }

// ValidationTime reports the simulated block validation cost. Under
// parallel validation the cost is the makespan of scheduling the
// block's conflict groups on the worker pool rather than the batch
// size — the simulated counterpart of the wall-clock speedup.
func (n *Node) ValidationTime(txs []consensus.Tx) time.Duration {
	return n.ValidationTimeFresh(txs, nil)
}

// ValidationTimeFresh is ValidationTime with verdict reuse: fresh
// transactions cost nothing (their semantic checks are skipped), so
// the block's cost is the weighted makespan of its stale remainder.
func (n *Node) ValidationTimeFresh(txs []consensus.Tx, fresh []bool) time.Duration {
	batch, freshBatch := asTransactionsFresh(txs, fresh)
	weight := func(i int) int {
		if i < len(freshBatch) && freshBatch[i] {
			return 0
		}
		return 1
	}
	if n.cfg.ParallelWorkers > 1 {
		span := n.planFor(batch).MakespanWeighted(n.cfg.ParallelWorkers, weight)
		return time.Duration(span) * n.cfg.ValidationTimePerTx
	}
	stale := 0
	for i := range batch {
		stale += weight(i)
	}
	return time.Duration(stale) * n.cfg.ValidationTimePerTx
}

// planFor returns the conflict plan for a batch, reusing the last
// computed one when the batch holds the same transactions.
func (n *Node) planFor(batch []*txn.Transaction) *parallel.Plan {
	n.planMu.Lock()
	defer n.planMu.Unlock()
	if n.plan != nil && len(batch) == len(n.planTxs) {
		same := true
		for i := range batch {
			if batch[i] != n.planTxs[i] {
				same = false
				break
			}
		}
		if same {
			return n.plan
		}
	}
	n.planTxs = append(n.planTxs[:0], batch...)
	n.plan = parallel.BuildPlan(batch)
	return n.plan
}

// asTransactions filters the consensus batch down to the SmartchainDB
// transactions it carries; foreign entries are handled by the callers.
func asTransactions(txs []consensus.Tx) []*txn.Transaction {
	batch, _ := asTransactionsFresh(txs, nil)
	return batch
}

// asTransactionsFresh is asTransactions keeping the freshness flags
// aligned with the filtered batch. A nil fresh yields a nil flag
// slice (validate everything).
func asTransactionsFresh(txs []consensus.Tx, fresh []bool) ([]*txn.Transaction, []bool) {
	batch := make([]*txn.Transaction, 0, len(txs))
	var flags []bool
	if fresh != nil {
		flags = make([]bool, 0, len(txs))
	}
	for i, tx := range txs {
		t, ok := tx.(*txn.Transaction)
		if !ok {
			continue
		}
		batch = append(batch, t)
		if fresh != nil {
			flags = append(flags, i < len(fresh) && fresh[i])
		}
	}
	return batch, flags
}

// Commit applies a decided block through the ledger's batched commit —
// one lock acquisition and one atomic WAL batch per block instead of
// per transaction — and fires the nested pipeline for each committed
// transaction in block order. Per-transaction commit failures indicate
// duplicates delivered through catch-up, which are safe to skip; a
// storage failure means the node's durable state can no longer be
// trusted and is fatal.
func (n *Node) Commit(height int64, txs []consensus.Tx) {
	join := n.CommitStart(height, txs)
	join()
}

// CommitStart is the asynchronous half of the commit pipeline (the
// consensus.AsyncApp surface): it admits the block into the depth-N
// pipeline — publishing its write footprint on the commit fence and
// reserving its slot in the seal order — then stages and seals it in
// the background, and returns a join. Validation of later heights
// proceeds meanwhile; reads into any unsealed block's writes wait on
// the fence, disjoint reads run concurrently with the appliers. With
// CommitDepth > 2 several disjoint blocks stage concurrently; blocks
// whose footprints intersect serialize at the fence's apply gate, and
// every block's WAL group seals strictly in height order, so the
// durable prefix is always a block prefix. Begin parks when
// CommitDepth-1 blocks are already in flight — the backpressure that
// bounds the pipeline. The join blocks until the block is sealed and
// then runs the nested-transaction hooks on the caller's thread —
// child submissions re-enter the network at join time, never from the
// background goroutine.
func (n *Node) CommitStart(height int64, txs []consensus.Tx) (join func()) {
	batch := asTransactions(txs)
	h := n.baseHeight + height
	if waited := n.fence.Begin(h, parallel.WriteKeys(batch)); waited {
		n.ob.stackWaits.Inc()
	}
	n.ob.inflight.Set(int64(n.fence.InFlight()))
	// Reserve the seal slot on the caller's (ordered) thread, so the
	// ledger seals blocks in decide order no matter how the background
	// appliers interleave.
	pending := n.state.BeginBlockCommit(h)
	done := make(chan struct{})
	var committed []*txn.Transaction
	go func() {
		defer close(done)
		// Apply gate: stage only once no earlier unsealed block's
		// writes intersect this block's reads or writes — the
		// precondition that makes overlapped staging read exactly the
		// sequential prefix.
		if stalled := n.fence.WaitApply(h, parallel.TouchKeys(batch)); stalled {
			n.ob.applyStalls.Inc()
		}
		pending.Stage(batch)
		var err error
		committed, _, err = pending.Seal()
		if err != nil {
			panic(fmt.Sprintf("server: block %d lost durability: %v", height, err))
		}
		n.fence.End(h)
		n.ob.inflight.Set(int64(n.fence.InFlight()))
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			<-done
			for _, t := range committed {
				n.afterCommit(t)
			}
		})
	}
}

// CommitTime reports the simulated duration a block occupies the
// consensus engine's commit resource: the makespan of its conflict
// groups on the commit workers (the per-group appliers), in
// CommitTimePerTx units. Zero cost unless configured — the
// synchronous path modeled commits as free, and the default keeps
// that calibration.
func (n *Node) CommitTime(txs []consensus.Tx) time.Duration {
	if n.cfg.CommitTimePerTx <= 0 {
		return 0
	}
	batch := asTransactions(txs)
	if w := n.cfg.CommitWorkers; w > 1 {
		span := n.planFor(batch).Makespan(w)
		return time.Duration(span) * n.cfg.CommitTimePerTx
	}
	return time.Duration(len(batch)) * n.cfg.CommitTimePerTx
}
