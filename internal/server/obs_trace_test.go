package server

import (
	"testing"
	"time"

	"smartchaindb/internal/consensus"
	"smartchaindb/internal/obs"
	"smartchaindb/internal/txn"
	"smartchaindb/internal/workload"
)

// runTracedWorkload drives a multi-auction workload through a
// single-validator cluster — proposer == committer, so every pipeline
// stage of every committed transaction runs on the one instrumented
// node — and returns the live registry plus the committed hashes.
func runTracedWorkload(t *testing.T, dataDir string) (*obs.Registry, []string) {
	t.Helper()
	reg := obs.New()
	var committed []string
	cluster := NewCluster(ClusterConfig{
		Nodes:         1,
		Seed:          99,
		BlockInterval: 30 * time.Millisecond,
		MaxBlockTxs:   8,
		Pipelined:     true,
		DataDir:       dataDir,
		ChildDelay:    50 * time.Millisecond,
		ObsFor:        func(int) *obs.Registry { return reg },
		Node: Config{
			ParallelWorkers:  2,
			AdmissionWorkers: 2,
			MempoolBatch:     8,
			CommitWorkers:    2,
			AsyncCommit:      true,
		},
	})
	defer cluster.Close()
	cluster.OnCommit(func(tx consensus.Tx, _ time.Duration) {
		committed = append(committed, tx.Hash())
	})

	const auctions, bidders = 2, 3
	gen := workload.NewGenerator(7, cluster.ServerNode(0).Escrow())
	groups := make([]*workload.AuctionGroup, 0, auctions)
	base := 0
	for i := 0; i < auctions; i++ {
		groups = append(groups, gen.NewAuctionGroup(base, workload.AuctionGroupSpec{
			BiddersPerAuction: bidders, PayloadBytes: 96,
		}))
		base += bidders + 1
	}
	at := cluster.Sched().Now()
	count, children := 0, 0
	submit := func(tx *txn.Transaction) {
		cluster.SubmitAt(at, tx)
		at += 2 * time.Millisecond
		count++
	}
	settle := func() {
		cluster.RunUntil(cluster.Sched().Now() + time.Second)
		at = cluster.Sched().Now()
	}
	for _, g := range groups {
		submit(g.Request)
		for _, c := range g.Creates {
			submit(c)
		}
	}
	cluster.RunUntilCommitted(count, at+time.Hour)
	settle()
	for _, g := range groups {
		for _, b := range g.Bids {
			submit(b)
		}
	}
	cluster.RunUntilCommitted(count, at+time.Hour)
	settle()
	for _, g := range groups {
		submit(g.Accept)
		children += len(g.Bids)
	}
	if got := cluster.RunUntilCommitted(count+children, at+time.Hour); got != count+children {
		t.Fatalf("committed %d of %d", got, count+children)
	}
	settle()
	// A decided block may still be applying in the background; drain so
	// the last block's apply/seal observations and height stamps land.
	cluster.ServerNode(0).DrainCommits()
	return reg, committed
}

// assertTracesComplete is the tentpole's trace acceptance: every
// committed transaction's trace is height-stamped and reports every
// pipeline stage. Exactly-once is structural (stages record
// first-observation-wins), so observed == recorded exactly once.
func assertTracesComplete(t *testing.T, reg *obs.Registry, committed []string) {
	t.Helper()
	if len(committed) == 0 {
		t.Fatal("no transactions committed")
	}
	tracer := reg.Tracer()
	for _, h := range committed {
		tr, ok := tracer.Trace(h)
		if !ok {
			t.Errorf("committed tx %s has no trace", h)
			continue
		}
		if tr.Height <= 0 {
			t.Errorf("committed tx %s: trace not height-stamped (height %d)", h, tr.Height)
		}
		for s := obs.Stage(0); s < obs.StageCount; s++ {
			if !tr.Observed(s) {
				t.Errorf("committed tx %s: stage %s never observed", h, s)
			}
		}
	}
	if n := tracer.Dropped(); n != 0 {
		t.Errorf("tracer dropped %d traces at the active bound", n)
	}
	// The aggregate seal histogram counts one observation per committed
	// transaction: stages cannot double-record.
	if got := tracer.StageHistogram(obs.StageSeal).Snapshot().Count; got != uint64(len(committed)) {
		t.Errorf("seal stage recorded %d observations for %d committed txs", got, len(committed))
	}
}

func TestClusterTracesEveryStage(t *testing.T) {
	for _, backend := range []string{"memory", "disk"} {
		t.Run(backend, func(t *testing.T) {
			dir := ""
			if backend == "disk" {
				dir = t.TempDir()
			}
			reg, committed := runTracedWorkload(t, dir)
			assertTracesComplete(t, reg, committed)

			// The registry's snapshot carries the same stages for the ops
			// endpoint: every stage histogram saw every committed tx.
			snap := reg.Snapshot()
			for s := obs.Stage(0); s < obs.StageCount; s++ {
				d, ok := snap.Stages[s.String()]
				if !ok || d.Count < uint64(len(committed)) {
					t.Errorf("snapshot stage %s: %d observations for %d committed txs (present %t)",
						s, d.Count, len(committed), ok)
				}
			}
		})
	}
}

// TestTraceIDsAreTxIDs pins the cross-layer contract every tracer call
// site relies on: consensus keys traces by Tx.Hash, the ledger by
// Transaction.ID — they must be the same string or traces split.
func TestTraceIDsAreTxIDs(t *testing.T) {
	tx := &txn.Transaction{ID: "abc123"}
	if got := tx.Hash(); got != tx.ID {
		t.Fatalf("Transaction.Hash() = %q, want ID %q", got, tx.ID)
	}
}
