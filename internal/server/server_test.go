package server

import (
	"testing"
	"time"

	"smartchaindb/internal/keys"
	"smartchaindb/internal/txn"
)

var seq int

func signedCreate(t *testing.T, owner *keys.KeyPair, caps ...any) *txn.Transaction {
	t.Helper()
	seq++
	tx := txn.NewCreate(owner.PublicBase58(), map[string]any{"capabilities": caps, "seq": seq}, 1, nil)
	if err := txn.Sign(tx, owner); err != nil {
		t.Fatal(err)
	}
	return tx
}

func signedRequest(t *testing.T, requester *keys.KeyPair, caps ...any) *txn.Transaction {
	t.Helper()
	seq++
	tx := txn.NewRequest(requester.PublicBase58(), map[string]any{"capabilities": caps, "seq": seq}, nil)
	if err := txn.Sign(tx, requester); err != nil {
		t.Fatal(err)
	}
	return tx
}

func signedBid(t *testing.T, bidder *keys.KeyPair, asset *txn.Transaction, escrowPub, rfqID string) *txn.Transaction {
	t.Helper()
	tx := txn.NewBid(bidder.PublicBase58(), asset.ID,
		txn.Spend{Ref: txn.OutputRef{TxID: asset.ID, Index: 0}, Owners: []string{bidder.PublicBase58()}},
		1, escrowPub, rfqID, nil)
	if err := txn.Sign(tx, bidder); err != nil {
		t.Fatal(err)
	}
	return tx
}

func TestStandaloneNodeFullAuction(t *testing.T) {
	n := NewNode(Config{ReservedSeed: 42})
	requester := keys.MustGenerate()
	b1, b2 := keys.MustGenerate(), keys.MustGenerate()
	escrowPub := n.Escrow().PublicBase58()

	rfq := signedRequest(t, requester, "cnc")
	if err := n.Apply(rfq); err != nil {
		t.Fatal(err)
	}
	asset1 := signedCreate(t, b1, "cnc")
	asset2 := signedCreate(t, b2, "cnc")
	if err := n.Apply(asset1); err != nil {
		t.Fatal(err)
	}
	if err := n.Apply(asset2); err != nil {
		t.Fatal(err)
	}
	bid1 := signedBid(t, b1, asset1, escrowPub, rfq.ID)
	bid2 := signedBid(t, b2, asset2, escrowPub, rfq.ID)
	if err := n.Apply(bid1); err != nil {
		t.Fatal(err)
	}
	if err := n.Apply(bid2); err != nil {
		t.Fatal(err)
	}

	acc, err := txn.NewAcceptBid(requester.PublicBase58(), escrowPub, rfq.ID, bid1, []*txn.Transaction{bid2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := txn.Sign(acc, n.Escrow(), requester); err != nil {
		t.Fatal(err)
	}
	if err := n.Apply(acc); err != nil {
		t.Fatal(err)
	}
	// Standalone mode applies children synchronously.
	if n.State().Balance(requester.PublicBase58(), asset1.ID) != 1 {
		t.Error("requester should own the winning asset")
	}
	if n.State().Balance(b2.PublicBase58(), asset2.ID) != 1 {
		t.Error("losing bidder should be refunded")
	}
	rec, err := n.State().RecoveryFor(acc.ID)
	if err != nil || rec.Status != "COMPLETE" {
		t.Errorf("recovery = %+v, %v", rec, err)
	}
	parent, _ := n.State().GetTx(acc.ID)
	if len(parent.Children) != 2 {
		t.Errorf("children = %v", parent.Children)
	}
}

func TestStandaloneNodeRejectsInvalid(t *testing.T) {
	n := NewNode(Config{ReservedSeed: 42})
	bidder := keys.MustGenerate()
	requester := keys.MustGenerate()

	rfq := signedRequest(t, requester, "cnc", "welding")
	if err := n.Apply(rfq); err != nil {
		t.Fatal(err)
	}
	asset := signedCreate(t, bidder, "cnc") // lacks welding
	if err := n.Apply(asset); err != nil {
		t.Fatal(err)
	}
	weak := signedBid(t, bidder, asset, n.Escrow().PublicBase58(), rfq.ID)
	if err := n.Apply(weak); err == nil {
		t.Fatal("bid lacking capability should be rejected")
	}
	// Schema violations are caught before semantics.
	garbage := signedCreate(t, bidder, "x")
	garbage.Version = "9.9"
	if err := n.Apply(garbage); err == nil {
		t.Fatal("bad version should be rejected at schema stage")
	}
}

func newTestCluster(nodes int, seed int64) *Cluster {
	return NewCluster(ClusterConfig{
		Nodes:         nodes,
		Seed:          seed,
		BlockInterval: 20 * time.Millisecond,
		MaxBlockTxs:   32,
		Pipelined:     true,
	})
}

func TestClusterFullAuctionConverges(t *testing.T) {
	c := newTestCluster(4, 7)
	escrowPair := c.ServerNode(0).Escrow()
	requester := keys.MustGenerate()
	b1, b2, b3 := keys.MustGenerate(), keys.MustGenerate(), keys.MustGenerate()

	rfq := signedRequest(t, requester, "cnc")
	a1, a2, a3 := signedCreate(t, b1, "cnc"), signedCreate(t, b2, "cnc"), signedCreate(t, b3, "cnc")
	for _, tx := range []*txn.Transaction{rfq, a1, a2, a3} {
		c.Submit(tx)
	}
	if got := c.RunUntilCommitted(4, time.Minute); got != 4 {
		t.Fatalf("phase 1 committed %d, want 4", got)
	}

	bid1 := signedBid(t, b1, a1, escrowPair.PublicBase58(), rfq.ID)
	bid2 := signedBid(t, b2, a2, escrowPair.PublicBase58(), rfq.ID)
	bid3 := signedBid(t, b3, a3, escrowPair.PublicBase58(), rfq.ID)
	for _, tx := range []*txn.Transaction{bid1, bid2, bid3} {
		c.Submit(tx)
	}
	if got := c.RunUntilCommitted(7, 2*time.Minute); got != 7 {
		t.Fatalf("phase 2 committed %d, want 7", got)
	}

	acc, err := txn.NewAcceptBid(requester.PublicBase58(), escrowPair.PublicBase58(), rfq.ID, bid2, []*txn.Transaction{bid1, bid3}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := txn.Sign(acc, escrowPair, requester); err != nil {
		t.Fatal(err)
	}
	c.Submit(acc)
	// Parent + 3 children = 11 transactions total.
	if got := c.RunUntilCommitted(11, 5*time.Minute); got != 11 {
		t.Fatalf("final committed %d, want 11", got)
	}
	c.RunUntil(c.Sched().Now() + time.Second)

	// Every replica converged to the same state.
	for i := 0; i < 4; i++ {
		st := c.ServerNode(i).State()
		if st.TxCount() != 11 {
			t.Errorf("node %d has %d txs, want 11", i, st.TxCount())
		}
		if st.Balance(requester.PublicBase58(), a2.ID) != 1 {
			t.Errorf("node %d: requester lacks winning asset", i)
		}
		if st.Balance(b1.PublicBase58(), a1.ID) != 1 {
			t.Errorf("node %d: bidder 1 not refunded", i)
		}
		if st.Balance(b3.PublicBase58(), a3.ID) != 1 {
			t.Errorf("node %d: bidder 3 not refunded", i)
		}
		rec, err := st.RecoveryFor(acc.ID)
		if err != nil || rec.Status != "COMPLETE" {
			t.Errorf("node %d recovery: %+v, %v", i, rec, err)
		}
	}
	// Nested commit ordering: the parent committed before its children
	// (non-locking semantics).
	pCommit, _ := c.CommitTime(acc.ID)
	for _, childID := range mustChildren(t, c, acc.ID) {
		cCommit, ok := c.CommitTime(childID)
		if !ok {
			t.Fatalf("child %s never committed", childID[:8])
		}
		if cCommit < pCommit {
			t.Errorf("child committed before parent: %v < %v", cCommit, pCommit)
		}
	}
}

func mustChildren(t *testing.T, c *Cluster, acceptID string) []string {
	t.Helper()
	parent, err := c.ServerNode(0).State().GetTx(acceptID)
	if err != nil {
		t.Fatal(err)
	}
	if len(parent.Children) == 0 {
		t.Fatal("no children recorded")
	}
	return parent.Children
}

func TestClusterRejectsDoubleSpendAcrossSubmissions(t *testing.T) {
	c := newTestCluster(4, 9)
	alice, bob, eve := keys.MustGenerate(), keys.MustGenerate(), keys.MustGenerate()
	create := signedCreate(t, alice, "x")
	c.Submit(create)
	if got := c.RunUntilCommitted(1, time.Minute); got != 1 {
		t.Fatal("create did not commit")
	}
	mk := func(to string) *txn.Transaction {
		tr := txn.NewTransfer(create.ID,
			[]txn.Spend{{Ref: txn.OutputRef{TxID: create.ID, Index: 0}, Owners: []string{alice.PublicBase58()}}},
			[]*txn.Output{{PublicKeys: []string{to}, Amount: 1}}, nil)
		if err := txn.Sign(tr, alice); err != nil {
			t.Fatal(err)
		}
		return tr
	}
	t1, t2 := mk(bob.PublicBase58()), mk(eve.PublicBase58())
	c.Submit(t1)
	c.Submit(t2)
	c.RunUntil(c.Sched().Now() + 10*time.Second)
	_, ok1 := c.CommitTime(t1.ID)
	_, ok2 := c.CommitTime(t2.ID)
	if ok1 && ok2 {
		t.Fatal("both conflicting transfers committed")
	}
	if !ok1 && !ok2 {
		t.Fatal("neither transfer committed")
	}
}

func TestClusterCrashRecoveryOfChildren(t *testing.T) {
	c := newTestCluster(4, 11)
	escrowPair := c.ServerNode(0).Escrow()
	requester := keys.MustGenerate()
	b1, b2 := keys.MustGenerate(), keys.MustGenerate()

	rfq := signedRequest(t, requester, "cnc")
	a1, a2 := signedCreate(t, b1, "cnc"), signedCreate(t, b2, "cnc")
	for _, tx := range []*txn.Transaction{rfq, a1, a2} {
		c.Submit(tx)
	}
	c.RunUntilCommitted(3, time.Minute)
	bid1 := signedBid(t, b1, a1, escrowPair.PublicBase58(), rfq.ID)
	bid2 := signedBid(t, b2, a2, escrowPair.PublicBase58(), rfq.ID)
	c.Submit(bid1)
	c.Submit(bid2)
	c.RunUntilCommitted(5, 2*time.Minute)

	// Simulate "crash while enqueueing RETURNs": every node's child
	// submitter is disconnected before the accept commits.
	for i := 0; i < 4; i++ {
		c.ServerNode(i).SetChildSubmitter(func(*txn.Transaction) {})
	}
	acc, err := txn.NewAcceptBid(requester.PublicBase58(), escrowPair.PublicBase58(), rfq.ID, bid1, []*txn.Transaction{bid2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := txn.Sign(acc, escrowPair, requester); err != nil {
		t.Fatal(err)
	}
	c.Submit(acc)
	if got := c.RunUntilCommitted(6, 2*time.Minute); got != 6 {
		t.Fatalf("accept did not commit: %d", got)
	}
	c.RunUntil(c.Sched().Now() + 5*time.Second)
	if c.CommittedCount() != 6 {
		t.Fatalf("children committed despite disconnected queue: %d", c.CommittedCount())
	}
	// Reconnect one node's submitter and replay its recovery log.
	n0 := c.ServerNode(0)
	n0.SetChildSubmitter(func(child *txn.Transaction) {
		c.SubmitAt(c.Sched().Now()+time.Millisecond, child)
	})
	c.Sched().After(0, func() { n0.Recover() })
	if got := c.RunUntilCommitted(8, c.Sched().Now()+5*time.Minute); got != 8 {
		t.Fatalf("recovery did not commit children: %d of 8", got)
	}
	c.RunUntil(c.Sched().Now() + 5*time.Second) // let node 0 apply stragglers
	rec, err := n0.State().RecoveryFor(acc.ID)
	if err != nil || rec.Status != "COMPLETE" {
		t.Errorf("recovery record = %+v, %v", rec, err)
	}
}

func TestClusterValidatorCrashDuringAuction(t *testing.T) {
	c := newTestCluster(4, 13)
	escrowPair := c.ServerNode(0).Escrow()
	requester := keys.MustGenerate()
	b1 := keys.MustGenerate()

	rfq := signedRequest(t, requester, "cnc")
	a1 := signedCreate(t, b1, "cnc")
	c.Submit(rfq)
	c.Submit(a1)
	c.RunUntilCommitted(2, time.Minute)

	c.Crash(2) // one validator down; quorum 3 of 4 remains
	bid1 := signedBid(t, b1, a1, escrowPair.PublicBase58(), rfq.ID)
	c.Submit(bid1)
	if got := c.RunUntilCommitted(3, 2*time.Minute); got != 3 {
		t.Fatalf("bid did not commit with one validator down: %d", got)
	}
	c.RestartNode(2)
	acc, err := txn.NewAcceptBid(requester.PublicBase58(), escrowPair.PublicBase58(), rfq.ID, bid1, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := txn.Sign(acc, escrowPair, requester); err != nil {
		t.Fatal(err)
	}
	c.Submit(acc)
	if got := c.RunUntilCommitted(5, c.Sched().Now()+5*time.Minute); got != 5 {
		t.Fatalf("auction did not complete after restart: %d of 5", got)
	}
}
