package server

import (
	"fmt"
	"runtime"
	"sync"
	"testing"

	"smartchaindb/internal/consensus"
	"smartchaindb/internal/mempool"
	"smartchaindb/internal/txn"
	"smartchaindb/internal/workload"
)

// TestMempoolAdmissionRace drives the real ingest pipeline — batched
// admission through CheckTxBatch, concurrent block packing, and
// commit-time index sweeps against the node's ledger — from multiple
// goroutines at once. It runs over whichever storage backend
// SCDB_BACKEND selects, so the race gate exercises it on both memory
// and disk. Semantics are checked loosely (races, not outcomes, are
// the target): everything committed must have left the pool, and
// nothing may commit twice.
func TestMempoolAdmissionRace(t *testing.T) {
	node := NewNode(Config{ReservedSeed: 321, AdmissionWorkers: 4, ParallelWorkers: 4})
	defer node.Close()
	gen := workload.NewGenerator(17, node.Escrow())

	// Backing assets committed up front; the contested stream transfers
	// them (some twice, the double-spend traffic the spend index
	// screens).
	const owners = 96
	streams := make([][]*txn.Transaction, 3)
	for i := 0; i < owners; i++ {
		owner := gen.Account(i)
		asset := gen.Create(owner, []string{"cnc"}, 64)
		if err := node.State().CommitTx(asset); err != nil {
			t.Fatal(err)
		}
		for s := range streams {
			recipient := gen.Account(10_000 + i*len(streams) + s)
			tr := txn.NewTransfer(asset.ID,
				[]txn.Spend{{Ref: txn.OutputRef{TxID: asset.ID, Index: 0}, Owners: []string{owner.PublicBase58()}}},
				[]*txn.Output{{PublicKeys: []string{recipient.PublicBase58()}, Amount: 1}},
				nil)
			if err := txn.Sign(tr, owner); err != nil {
				t.Fatal(err)
			}
			streams[s] = append(streams[s], tr)
		}
	}

	pool := mempool.New(mempool.Config{
		BatchSize:   16,
		Policy:      mempool.PackMakespan,
		PackWorkers: 4,
		Footprint:   mempool.ForTransaction,
		Check: func(txs []mempool.Tx) map[string]error {
			batch := make([]consensus.Tx, len(txs))
			for i, tx := range txs {
				batch[i] = tx.(consensus.Tx)
			}
			return node.CheckTxBatch(batch)
		},
	})

	// Admitters: each stream spends the same backing outputs, so the
	// spend index arbitrates across goroutines.
	var admitters sync.WaitGroup
	for _, stream := range streams {
		admitters.Add(1)
		go func(stream []*txn.Transaction) {
			defer admitters.Done()
			for start := 0; start < len(stream); start += 16 {
				end := start + 16
				if end > len(stream) {
					end = len(stream)
				}
				batch := make([]mempool.Tx, 0, end-start)
				for _, tr := range stream[start:end] {
					batch = append(batch, tr)
				}
				pool.AdmitBatch(batch)
			}
		}(stream)
	}

	// Proposer + commit path: pack a block, commit it to the ledger,
	// sweep the pool — the applyBlock compaction under contention. It
	// stops once the admitters finished and the pool is drained.
	done := make(chan struct{})
	committed := make(map[string]bool)
	var commitErr error
	var committer sync.WaitGroup
	committer.Add(1)
	go func() {
		defer committer.Done()
		height := node.State().Height()
		for {
			block := pool.Pack(24, 4)
			if len(block) == 0 {
				select {
				case <-done:
					if pool.Len() == 0 {
						return
					}
				default:
				}
				runtime.Gosched()
				continue
			}
			batch := make([]*txn.Transaction, len(block))
			for i, tx := range block {
				batch[i] = tx.(*txn.Transaction)
			}
			height++
			applied, _, err := node.State().CommitBlockAt(height, batch)
			if err != nil {
				commitErr = err
				return
			}
			for _, tr := range applied {
				if committed[tr.ID] {
					commitErr = fmt.Errorf("transaction %.12s committed twice", tr.ID)
					return
				}
				committed[tr.ID] = true
			}
			removed := make([]mempool.Tx, len(batch))
			for i, tr := range batch {
				removed[i] = tr
			}
			pool.RemoveCommitted(removed)
		}
	}()

	admitters.Wait()
	close(done)
	committer.Wait()

	if commitErr != nil {
		t.Fatal(commitErr)
	}
	for id := range committed {
		if pool.Contains(id) {
			t.Errorf("committed %.12s still pooled", id)
		}
	}
	if len(committed) == 0 {
		t.Fatal("nothing committed")
	}
}
