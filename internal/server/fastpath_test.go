package server

import (
	"testing"

	"smartchaindb/internal/consensus"
	"smartchaindb/internal/keys"
	"smartchaindb/internal/txn"
)

// fastPathBatch builds an admission batch mixing valid transactions
// with every rejection class the signature stage produces: tampered
// payload, forged signature, and missing fulfillment.
func fastPathBatch(t *testing.T) []consensus.Tx {
	t.Helper()
	alice := keys.DeterministicKeyPair(61)
	mallory := keys.DeterministicKeyPair(62)

	good1 := signedCreate(t, alice, "cnc")
	good2 := signedCreate(t, alice, "mill")

	tampered := signedCreate(t, alice, "lathe")
	tampered.Asset.Data["seq"] = -1
	tampered.Invalidate()

	forged := signedCreate(t, alice, "drill")
	forged.Inputs[0].Fulfillment = mallory.Sign(forged.SigningPayload())

	unsigned := signedCreate(t, alice, "press")
	unsigned.Inputs[0].Fulfillment = ""
	unsigned.Invalidate()

	return []consensus.Tx{good1, good2, tampered, forged, unsigned}
}

// TestAdmissionFastPathParity pins the fast path's contract: for the
// same batch, CheckTxBatch with the batched signature stage produces
// exactly the verdict set (same IDs, same error strings) as the
// per-transaction slow path.
func TestAdmissionFastPathParity(t *testing.T) {
	slowNode := NewNode(Config{ReservedSeed: 71, DisableAdmissionFastPath: true})
	fastNode := NewNode(Config{ReservedSeed: 71})

	batch := fastPathBatch(t)
	// Clone per node so neither sees the other's memoized verdicts.
	clone := func() []consensus.Tx {
		out := make([]consensus.Tx, len(batch))
		for i, tx := range batch {
			out[i] = tx.(*txn.Transaction).Clone()
		}
		return out
	}

	slow := slowNode.CheckTxBatch(clone())
	fast := fastNode.CheckTxBatch(clone())

	if len(slow) != 3 {
		t.Fatalf("slow path rejected %d of 5, want 3: %v", len(slow), slow)
	}
	if len(fast) != len(slow) {
		t.Fatalf("verdict sets differ: fast=%d slow=%d\nfast: %v\nslow: %v", len(fast), len(slow), fast, slow)
	}
	for id, serr := range slow {
		ferr, ok := fast[id]
		if !ok {
			t.Fatalf("fast path admitted tx %.8s, slow path rejected it: %v", id, serr)
		}
		if ferr.Error() != serr.Error() {
			t.Fatalf("tx %.8s: fast=%q slow=%q", id, ferr, serr)
		}
	}
}

// TestAdmissionFastPathMutatedAfterCache: a transaction whose payload
// is mutated after its encodings were memoized must still be rejected
// — Invalidate drops the memo, and a clone never inherits one.
func TestAdmissionFastPathMutatedAfterCache(t *testing.T) {
	n := NewNode(Config{ReservedSeed: 72})
	alice := keys.DeterministicKeyPair(63)
	tx := signedCreate(t, alice, "cnc")
	// Warm the memo through a passing batch on a clone.
	if errs := n.CheckTxBatch([]consensus.Tx{tx.Clone()}); len(errs) != 0 {
		t.Fatalf("pristine tx rejected: %v", errs)
	}
	// Mutate the original and resubmit: the verified clone's verdict
	// must not leak to the tampered original.
	tx.Asset.Data["seq"] = -99
	tx.Invalidate()
	if errs := n.CheckTxBatch([]consensus.Tx{tx}); len(errs) != 1 {
		t.Fatalf("tampered tx admitted after cache warm-up: %v", errs)
	}
}
