package server

import (
	"time"

	"smartchaindb/internal/obs"
	"smartchaindb/internal/parallel"
	"smartchaindb/internal/txn"
)

// nodeObs caches the node's validation-path metric handles. The zero
// value (all-nil handles) is the no-op build — every obs method is
// nil-safe — so the instrumented paths never branch on "is
// observability on"; only tracer batch-ID slices are guarded to keep
// the no-op path allocation-free.
type nodeObs struct {
	fenceWaitNs *obs.Histogram // server.fence.wait_ns
	overlapWon  *obs.Counter   // server.fence.overlap_won
	overlapLost *obs.Counter   // server.fence.overlap_lost
	// Deep commit pipeline: the live in-flight depth, admissions that
	// parked because the ring was full (fence stack waits), and
	// appliers that stalled at the apply gate behind an intersecting
	// earlier block.
	inflight    *obs.Gauge   // server.pipeline.inflight
	stackWaits  *obs.Counter // server.fence.stack_waits
	applyStalls *obs.Counter // server.fence.apply_stalls
	validateNs  *obs.Histogram // server.validate_ns
	groups      *obs.Histogram // server.validate.conflict_groups
	largest     *obs.Histogram // server.validate.largest_group
	sigTasks    *obs.Counter   // server.admit.sig_tasks
	sigDedup    *obs.Counter   // server.admit.sig_dedup_hits
	sigReused   *obs.Counter   // server.admit.sig_reused
	canonHits   *obs.Gauge     // txn.canonical_cache.hits
	canonMisses *obs.Gauge     // txn.canonical_cache.misses
	tracer      *obs.Tracer
}

func newNodeObs(reg *obs.Registry) nodeObs {
	if reg == nil {
		return nodeObs{}
	}
	return nodeObs{
		fenceWaitNs: reg.Histogram("server.fence.wait_ns"),
		overlapWon:  reg.Counter("server.fence.overlap_won"),
		overlapLost: reg.Counter("server.fence.overlap_lost"),
		inflight:    reg.Gauge("server.pipeline.inflight"),
		stackWaits:  reg.Counter("server.fence.stack_waits"),
		applyStalls: reg.Counter("server.fence.apply_stalls"),
		validateNs:  reg.Histogram("server.validate_ns"),
		groups:      reg.Histogram("server.validate.conflict_groups"),
		largest:     reg.Histogram("server.validate.largest_group"),
		sigTasks:    reg.Counter("server.admit.sig_tasks"),
		sigDedup:    reg.Counter("server.admit.sig_dedup_hits"),
		sigReused:   reg.Counter("server.admit.sig_reused"),
		canonHits:   reg.Gauge("txn.canonical_cache.hits"),
		canonMisses: reg.Gauge("txn.canonical_cache.misses"),
		tracer:      reg.Tracer(),
	}
}

// observeFastPath accounts one batched signature verification and
// refreshes the canonical-bytes cache gauges from this node's cache
// scope, so /metrics always shows the latest totals without the hot
// path touching the registry per transaction.
func (n *Node) observeFastPath(stats txn.BatchVerifyStats) {
	n.ob.sigTasks.Add(uint64(stats.Sig.Tasks))
	n.ob.sigDedup.Add(uint64(stats.Sig.DedupHits))
	n.ob.sigReused.Add(uint64(stats.Reused))
	if n.ob.canonHits != nil {
		hits, misses := n.cache.Stats()
		n.ob.canonHits.Set(int64(hits))
		n.ob.canonMisses.Set(int64(misses))
	}
}

// waitFence consults the commit fence and scores the overlap: a
// validation that proceeded concurrently with the in-flight appliers
// won the overlap, one whose footprint forced it to wait for the seal
// lost it. Returns the time spent at the fence.
func (n *Node) waitFence(keys []string) time.Duration {
	t0 := time.Now()
	inflight, blocked := n.fence.WaitKeysReport(keys)
	d := time.Since(t0)
	if inflight {
		if blocked {
			n.ob.overlapLost.Inc()
		} else {
			n.ob.overlapWon.Inc()
		}
		n.ob.fenceWaitNs.ObserveDuration(d)
	}
	return d
}

// batchIDs collects transaction IDs for a tracer batch call; returns
// nil (allocating nothing) when no tracer is attached.
func (n *Node) batchIDs(batch []*txn.Transaction) []string {
	if n.ob.tracer == nil || len(batch) == 0 {
		return nil
	}
	ids := make([]string, len(batch))
	for i, t := range batch {
		ids[i] = t.ID
	}
	return ids
}

// Obs returns the node's observability registry (nil when the node
// runs the no-op build). The consensus engine picks it up through its
// optional ObsApp surface to wire each node's mempool and stage
// tracer to the same registry.
func (n *Node) Obs() *obs.Registry { return n.cfg.Obs }

// observeValidation records one block validation's shape: the
// conflict-group fan-out the scheduler saw and the wall latency,
// attributed per member transaction as the validate stage.
func (n *Node) observeValidation(batch []*txn.Transaction, res *parallel.Result, d time.Duration) {
	n.ob.validateNs.ObserveDuration(d)
	n.ob.groups.Observe(int64(res.Groups))
	n.ob.largest.Observe(int64(res.Largest))
	if n.ob.tracer != nil {
		n.ob.tracer.ObserveEach(n.batchIDs(batch), obs.StageValidate, d)
	}
}
