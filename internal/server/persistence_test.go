package server

import (
	"fmt"
	"reflect"
	"testing"

	"smartchaindb/internal/consensus"
	"smartchaindb/internal/keys"
	"smartchaindb/internal/ledger"
	"smartchaindb/internal/txn"
)

// nodeDump captures the state the acceptance criterion compares across
// a kill/restart: committed height, TxCount, the full UTXO set, and
// the recovery records.
type nodeDump struct {
	Height   int64
	TxCount  int
	TxKeys   []string
	UTXOs    []map[string]any
	Recovery []map[string]any
}

func dumpNode(n *Node) nodeDump {
	st := n.State().Store()
	return nodeDump{
		Height:   n.State().Height(),
		TxCount:  n.State().TxCount(),
		TxKeys:   st.Collection(ledger.ColTransactions).Keys(),
		UTXOs:    st.Collection(ledger.ColUTXOs).Find(nil),
		Recovery: st.Collection(ledger.ColRecovery).Find(nil),
	}
}

// commitBlock pushes a batch through the consensus App surface the
// real cluster uses: ValidateBlock filters it, Commit applies it at
// the given height.
func commitBlock(t *testing.T, n *Node, height int64, batch ...*txn.Transaction) {
	t.Helper()
	txs := make([]consensus.Tx, len(batch))
	for i, tx := range batch {
		txs[i] = tx
	}
	if invalid := n.ValidateBlock(txs); len(invalid) != 0 {
		t.Fatalf("block %d: %d transactions rejected", height, len(invalid))
	}
	n.Commit(height, txs)
}

// TestNodeDataDirKillRestartRecoversIdenticalState is the acceptance
// test: a smartchaindb node started with a data directory, killed
// (abandoned, never closed) after committing N blocks including a
// nested ACCEPT_BID, restarts with identical TxCount, UTXO set, and
// recovery records, at the exact committed height.
func TestNodeDataDirKillRestartRecoversIdenticalState(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{ReservedSeed: 42, DataDir: dir}
	n := NewNode(cfg)

	requester := keys.MustGenerate()
	b1, b2 := keys.MustGenerate(), keys.MustGenerate()
	escrowPub := n.Escrow().PublicBase58()

	rfq := signedRequest(t, requester, "cnc")
	asset1 := signedCreate(t, b1, "cnc")
	asset2 := signedCreate(t, b2, "cnc")
	commitBlock(t, n, 1, rfq, asset1, asset2)

	bid1 := signedBid(t, b1, asset1, escrowPub, rfq.ID)
	bid2 := signedBid(t, b2, asset2, escrowPub, rfq.ID)
	commitBlock(t, n, 2, bid1, bid2)

	acc, err := txn.NewAcceptBid(requester.PublicBase58(), escrowPub, rfq.ID, bid1, []*txn.Transaction{bid2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := txn.Sign(acc, n.Escrow(), requester); err != nil {
		t.Fatal(err)
	}
	// Route the nested children into block 4 instead of the default
	// synchronous apply, like the cluster does.
	var children []*txn.Transaction
	n.SetChildSubmitter(func(child *txn.Transaction) { children = append(children, child) })
	commitBlock(t, n, 3, acc)
	if len(children) != 2 {
		t.Fatalf("nested engine produced %d children, want 2", len(children))
	}
	commitBlock(t, n, 4, children...)

	want := dumpNode(n)
	if want.Height != 4 || want.TxCount != 8 {
		t.Fatalf("pre-kill height %d txcount %d", want.Height, want.TxCount)
	}
	rec, err := n.State().RecoveryFor(acc.ID)
	if err != nil || rec.Status != ledger.RecoveryComplete {
		t.Fatalf("pre-kill recovery record: %+v, %v", rec, err)
	}

	// "Kill" the node: every block was already fsynced at commit, so
	// Close adds no durability — it only releases the directory lock,
	// as the kernel would for a SIGKILLed process (the real-kill case
	// is exercised through the smartchaindb -datadir CLI).
	if err := n.Close(); err != nil {
		t.Fatal(err)
	}
	n2, err := OpenNode(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer n2.Close()
	got := dumpNode(n2)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("restarted node state differs:\ngot  %+v\nwant %+v", got, want)
	}
	// Semantic spot-checks on the recovered state.
	if n2.State().Balance(requester.PublicBase58(), asset1.ID) != 1 {
		t.Error("restarted node lost the requester's winning asset")
	}
	if n2.State().Balance(b2.PublicBase58(), asset2.ID) != 1 {
		t.Error("restarted node lost the losing bidder's refund")
	}
	// And the restarted node keeps committing: consensus numbers its
	// blocks from 1 again, but the ledger keeps counting from the
	// recovered height instead of overwriting history.
	extra := signedCreate(t, b1, "cnc")
	commitBlock(t, n2, 1, extra)
	if n2.State().Height() != 5 || !n2.State().IsCommitted(extra.ID) {
		t.Fatalf("restarted node cannot extend the chain (height %d)", n2.State().Height())
	}
	doc, err := n2.State().Store().Collection(ledger.ColBlocks).Get(fmt.Sprintf("%016d", 1))
	if err != nil {
		t.Fatal(err)
	}
	if doc["count"].(float64) != 3 {
		t.Fatalf("historical block 1 was overwritten: %v", doc)
	}
}

// TestNodeRestartReplaysPendingRecovery kills the node between the
// ACCEPT_BID block and its children: the restarted node must see the
// PENDING recovery record and Recover() must resubmit both children.
func TestNodeRestartReplaysPendingRecovery(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{ReservedSeed: 42, DataDir: dir}
	n := NewNode(cfg)

	requester := keys.MustGenerate()
	b1, b2 := keys.MustGenerate(), keys.MustGenerate()
	escrowPub := n.Escrow().PublicBase58()

	rfq := signedRequest(t, requester, "cnc")
	asset1 := signedCreate(t, b1, "cnc")
	asset2 := signedCreate(t, b2, "cnc")
	commitBlock(t, n, 1, rfq, asset1, asset2)
	bid1 := signedBid(t, b1, asset1, escrowPub, rfq.ID)
	bid2 := signedBid(t, b2, asset2, escrowPub, rfq.ID)
	commitBlock(t, n, 2, bid1, bid2)
	acc, err := txn.NewAcceptBid(requester.PublicBase58(), escrowPub, rfq.ID, bid1, []*txn.Transaction{bid2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := txn.Sign(acc, n.Escrow(), requester); err != nil {
		t.Fatal(err)
	}
	n.SetChildSubmitter(func(*txn.Transaction) {}) // children lost in flight
	commitBlock(t, n, 3, acc)

	// Kill before any child commits; restart and replay.
	if err := n.Close(); err != nil {
		t.Fatal(err)
	}
	n2, err := OpenNode(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer n2.Close()
	rec, err := n2.State().RecoveryFor(acc.ID)
	if err != nil || rec.Status != ledger.RecoveryPending || len(rec.Pending) != 2 {
		t.Fatalf("recovered record = %+v, %v", rec, err)
	}
	var resubmitted []*txn.Transaction
	n2.SetChildSubmitter(func(child *txn.Transaction) { resubmitted = append(resubmitted, child) })
	if replayed := n2.Recover(); replayed != 2 {
		t.Fatalf("Recover replayed %d pending children, want 2", replayed)
	}
	if len(resubmitted) != 2 {
		t.Fatalf("Recover resubmitted %d children, want 2", len(resubmitted))
	}
	commitBlock(t, n2, 1, resubmitted...) // ledger height 4 = recovered 3 + consensus 1
	rec, err = n2.State().RecoveryFor(acc.ID)
	if err != nil || rec.Status != ledger.RecoveryComplete {
		t.Fatalf("post-replay record = %+v, %v", rec, err)
	}
	if n2.State().Balance(requester.PublicBase58(), asset1.ID) != 1 ||
		n2.State().Balance(b2.PublicBase58(), asset2.ID) != 1 {
		t.Error("replayed children did not settle the auction")
	}
}
