package server

import (
	"fmt"
	"sort"
	"sync"
	"testing"
	"time"

	"smartchaindb/internal/consensus"
	"smartchaindb/internal/txn"
	"smartchaindb/internal/workload"
)

// runAuctionWorkload drives a deterministic multi-auction workload
// through a cluster and returns the sorted committed hashes plus every
// validator's state fingerprint.
func runAuctionWorkload(t *testing.T, nodeCfg Config) (committed []string, fingerprints []string) {
	t.Helper()
	const auctions, bidders = 3, 4
	cluster := NewCluster(ClusterConfig{
		Nodes:         4,
		Seed:          777, // identical across runs: same scheduling, same workload
		BlockInterval: 30 * time.Millisecond,
		MaxBlockTxs:   8,
		Pipelined:     true,
		ChildDelay:    100 * time.Millisecond,
		Node:          nodeCfg,
	})
	defer cluster.Close()
	cluster.OnCommit(func(tx consensus.Tx, _ time.Duration) {
		committed = append(committed, tx.Hash())
	})
	gen := workload.NewGenerator(31, cluster.ServerNode(0).Escrow())
	groups := make([]*workload.AuctionGroup, 0, auctions)
	base := 0
	for i := 0; i < auctions; i++ {
		groups = append(groups, gen.NewAuctionGroup(base, workload.AuctionGroupSpec{
			BiddersPerAuction: bidders, PayloadBytes: 96,
		}))
		base += bidders + 1
	}
	at := cluster.Sched().Now()
	count, children := 0, 0
	submit := func(tx *txn.Transaction) {
		cluster.SubmitAt(at, tx)
		at += 2 * time.Millisecond
		count++
	}
	settle := func() {
		cluster.RunUntil(cluster.Sched().Now() + time.Second)
		at = cluster.Sched().Now()
	}
	for _, g := range groups {
		submit(g.Request)
		for _, c := range g.Creates {
			submit(c)
		}
	}
	cluster.RunUntilCommitted(count, at+time.Hour)
	settle()
	for _, g := range groups {
		for _, b := range g.Bids {
			submit(b)
		}
	}
	cluster.RunUntilCommitted(count, at+time.Hour)
	settle()
	for _, g := range groups {
		submit(g.Accept)
		children += len(g.Bids)
	}
	if got := cluster.RunUntilCommitted(count+children, at+time.Hour); got != count+children {
		t.Fatalf("committed %d of %d", got, count+children)
	}
	cluster.RunUntil(cluster.Sched().Now() + time.Second)
	sort.Strings(committed)
	for i := 0; i < 4; i++ {
		// Drain any in-flight background commit before snapshotting.
		cluster.ServerNode(i).DrainCommits()
		fingerprints = append(fingerprints, cluster.ServerNode(i).State().Fingerprint())
	}
	return committed, fingerprints
}

// TestAsyncCommitDifferential runs the identical auction workload with
// the synchronous commit and with the full overlapped pipeline (async
// commit + per-group appliers + verdict reuse over the commit fence)
// and requires byte-identical committed sets and chain state. Overlap
// may reshape wall-clock, never state.
func TestAsyncCommitDifferential(t *testing.T) {
	base := Config{
		ReceiverTime:        2 * time.Millisecond,
		ValidationTimePerTx: time.Millisecond,
		ParallelWorkers:     4,
		AdmissionWorkers:    4,
		MempoolBatch:        16,
	}
	syncCommitted, syncFPs := runAuctionWorkload(t, base)

	async := base
	async.AsyncCommit = true
	async.CommitWorkers = 4
	async.CommitTimePerTx = time.Millisecond
	asyncCommitted, asyncFPs := runAuctionWorkload(t, async)

	if len(syncCommitted) == 0 {
		t.Fatal("sync run committed nothing")
	}
	if len(syncCommitted) != len(asyncCommitted) {
		t.Fatalf("committed counts differ: sync=%d async=%d", len(syncCommitted), len(asyncCommitted))
	}
	for i := range syncCommitted {
		if syncCommitted[i] != asyncCommitted[i] {
			t.Fatalf("committed sets differ at %d: %.8s vs %.8s", i, syncCommitted[i], asyncCommitted[i])
		}
	}
	for i, fp := range syncFPs {
		if fp != syncFPs[0] {
			t.Fatalf("sync node %d diverged", i)
		}
	}
	for i, fp := range asyncFPs {
		if fp != asyncFPs[0] {
			t.Fatalf("async node %d diverged", i)
		}
	}
	if syncFPs[0] != asyncFPs[0] {
		t.Fatal("overlapped commit pipeline changed committed state")
	}
}

// TestCommitFenceStress races height h+1 reads against block h's
// in-flight appliers: while a block commits asynchronously through
// CommitStart, a footprint-disjoint batch must validate concurrently
// with the appliers, and a batch spending the in-flight block's
// outputs must wait on the fence and then validate cleanly against
// the sealed state — validating it early would see missing inputs.
// Under -race this is the commit-fence stress test of the race gate.
func TestCommitFenceStress(t *testing.T) {
	node := NewNode(Config{ReservedSeed: 99, ParallelWorkers: 4, CommitWorkers: 4})
	defer node.Close()
	gen := workload.NewGenerator(5, node.Escrow())

	const width = 24
	acct := 0
	nextAccount := func() int { acct++; return acct }
	// transferOf builds a signed transfer spending asset's output 0.
	transferOf := func(asset *txn.Transaction, owner int, tag string) *txn.Transaction {
		kp := gen.Account(owner)
		tr := txn.NewTransfer(asset.ID,
			[]txn.Spend{{Ref: txn.OutputRef{TxID: asset.ID, Index: 0}, Owners: []string{kp.PublicBase58()}}},
			[]*txn.Output{{PublicKeys: []string{gen.Account(nextAccount()).PublicBase58()}, Amount: 1}},
			map[string]any{"tag": tag})
		if err := txn.Sign(tr, kp); err != nil {
			t.Fatal(err)
		}
		return tr
	}

	for round := 0; round < 4; round++ {
		// Disjoint batch: transfers of assets committed before round h.
		var disjoint []consensus.Tx
		for i := 0; i < width; i++ {
			owner := nextAccount()
			asset := gen.Create(gen.Account(owner), []string{"cnc"}, 64)
			if err := node.State().CommitTx(asset); err != nil {
				t.Fatal(err)
			}
			disjoint = append(disjoint, transferOf(asset, owner, fmt.Sprintf("d%d-%d", round, i)))
		}
		// Block h: fresh CREATEs. The dependent batch spends their
		// outputs, so it must not validate before h seals.
		var block, dependent []consensus.Tx
		for i := 0; i < width; i++ {
			owner := nextAccount()
			asset := gen.Create(gen.Account(owner), []string{"cnc"}, 64)
			block = append(block, asset)
			dependent = append(dependent, transferOf(asset, owner, fmt.Sprintf("c%d-%d", round, i)))
		}

		join := node.CommitStart(int64(round*2+1), block)
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			if bad := node.ValidateBlock(disjoint); len(bad) != 0 {
				t.Errorf("round %d: disjoint batch invalidated during overlap: %d rejected", round, len(bad))
			}
		}()
		go func() {
			defer wg.Done()
			if bad := node.ValidateBlock(dependent); len(bad) != 0 {
				t.Errorf("round %d: dependent batch saw pre-seal state: %d rejected", round, len(bad))
			}
		}()
		wg.Wait()
		join()
		// Seal the dependents as the next block so every round starts
		// from quiesced state.
		node.CommitStart(int64(round*2+2), dependent)()
		if got := node.State().Height(); got != int64(round*2+2) {
			t.Fatalf("round %d: height %d after seal, want %d", round, got, round*2+2)
		}
	}
}
