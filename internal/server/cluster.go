package server

import (
	"fmt"
	"path/filepath"
	"time"

	"smartchaindb/internal/consensus"
	"smartchaindb/internal/mempool"
	"smartchaindb/internal/netsim"
	"smartchaindb/internal/obs"
	"smartchaindb/internal/txn"
)

// ClusterConfig parameterizes a full SmartchainDB validator cluster.
type ClusterConfig struct {
	// Nodes is the validator count (4–32 in the paper's experiments).
	Nodes int
	// Node configures each server node.
	Node Config
	// BlockInterval paces block production.
	BlockInterval time.Duration
	// MaxBlockTxs caps block size.
	MaxBlockTxs int
	// Pipelined enables BigchainDB-style block pipelining.
	Pipelined bool
	// Latency models inter-validator network delay.
	Latency netsim.LatencyModel
	// ChildDelay is the queue delay before a nested child re-enters the
	// network (the asynchronous return-queue worker hop).
	ChildDelay time.Duration
	// DataDir, when set, gives every validator a persistent storage
	// engine under DataDir/node-<i>; each node's committed blocks land
	// as atomic WAL batches it recovers from on reopen.
	DataDir string
	// Packing selects the proposers' block-packing policy off the
	// footprint-indexed mempool: "makespan" (the default) balances
	// conflict-group chains across the validators' ParallelWorkers so
	// packed blocks validate with minimal makespan; "fifo" keeps
	// arrival order. With ParallelWorkers < 2 the two are identical.
	Packing string
	// MempoolShards is the spend-index shard count (default 16).
	MempoolShards int
	// ObsFor, when set, supplies each validator's observability
	// registry (nil entries keep that node's no-op build). Registries
	// are per node — each validator's mempool, stage tracer, and
	// storage metrics record into its own — so Node.Obs overrides,
	// when both are set, apply to every node and are almost never what
	// a cluster wants.
	ObsFor func(node int) *obs.Registry
	// Seed drives all randomness.
	Seed int64
}

// ParsePacking maps a ClusterConfig.Packing string to the mempool
// policy — the one place the valid policy names live. Command-line
// front ends validate flags through it; NewCluster panics on what it
// rejects (programmatic misuse, like NewNode on an unopenable DataDir).
func ParsePacking(s string) (mempool.Policy, error) {
	switch s {
	case "", "makespan":
		return mempool.PackMakespan, nil
	case "fifo":
		return mempool.PackFIFO, nil
	}
	return 0, fmt.Errorf("server: unknown packing policy %q (want fifo or makespan)", s)
}

// Cluster is a simulated SmartchainDB network: n server nodes replicated
// over BFT consensus, with the nested-transaction pipeline wired back
// into the cluster's submission path.
type Cluster struct {
	*consensus.Cluster
	nodes []*Node
	cfg   ClusterConfig
}

// NewCluster builds the cluster. Pipelining defaults on, matching
// BigchainDB.
func NewCluster(cfg ClusterConfig) *Cluster {
	if cfg.Nodes <= 0 {
		cfg.Nodes = 4
	}
	if cfg.ChildDelay <= 0 {
		cfg.ChildDelay = time.Millisecond
	}
	cfg.Node.ReservedSeed = cfg.Seed + 1000 // shared by all nodes
	policy, err := ParsePacking(cfg.Packing)
	if err != nil {
		panic(err)
	}
	c := &Cluster{cfg: cfg}
	c.nodes = make([]*Node, cfg.Nodes)
	cc := consensus.NewCluster(consensus.Config{
		Nodes:         cfg.Nodes,
		BlockInterval: cfg.BlockInterval,
		MaxBlockTxs:   cfg.MaxBlockTxs,
		Pipelined:     cfg.Pipelined,
		AsyncCommit:   cfg.Node.AsyncCommit,
		CommitDepth:   cfg.Node.CommitDepth,
		Latency:       cfg.Latency,
		Mempool: mempool.Config{
			Shards:      cfg.MempoolShards,
			BatchSize:   cfg.Node.MempoolBatch,
			Policy:      policy,
			PackWorkers: cfg.Node.ParallelWorkers,
		},
		Seed: cfg.Seed,
	}, func(i int) consensus.App {
		nodeCfg := cfg.Node
		if cfg.DataDir != "" {
			nodeCfg.DataDir = filepath.Join(cfg.DataDir, fmt.Sprintf("node-%02d", i))
		}
		if cfg.ObsFor != nil {
			nodeCfg.Obs = cfg.ObsFor(i)
		}
		n := NewNode(nodeCfg)
		c.nodes[i] = n
		return n
	})
	c.Cluster = cc
	// Nested children re-enter the network asynchronously. Every node
	// submits deterministically identical children, so duplicates
	// coalesce at the cluster's submission layer.
	for _, n := range c.nodes {
		n.SetChildSubmitter(func(child *txn.Transaction) {
			cc.SubmitAt(cc.Sched().Now()+c.cfg.ChildDelay, child)
		})
	}
	return c
}

// ServerNode returns validator i's server node.
func (c *Cluster) ServerNode(i int) *Node { return c.nodes[i] }

// Escrow returns the cluster-wide escrow account.
func (c *Cluster) Escrow() string { return c.nodes[0].Escrow().PublicBase58() }

// Close flushes and releases every validator's storage backend.
func (c *Cluster) Close() error {
	var first error
	for _, n := range c.nodes {
		if err := n.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Submit schedules a client submission now.
func (c *Cluster) Submit(t *txn.Transaction) { c.SubmitAt(c.Sched().Now(), t) }

// RestartNode brings a crashed validator back and replays its nested
// recovery log, the crash-handling path of §4.2.1.
func (c *Cluster) RestartNode(i int) {
	c.Cluster.Restart(i)
	n := c.nodes[i]
	c.Sched().After(0, func() { n.Recover() })
}
