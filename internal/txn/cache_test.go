package txn

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"

	"smartchaindb/internal/keys"
)

// --- canonical encoder: differential against encoding/json ----------

// randomDoc builds a JSON-safe document exercising nesting, arrays,
// every scalar class, awkward floats, and strings that hit every
// escaping branch.
func randomDoc(rng *rand.Rand, depth int) map[string]any {
	doc := make(map[string]any)
	n := 1 + rng.Intn(6)
	for i := 0; i < n; i++ {
		doc[randomKey(rng)] = randomValue(rng, depth)
	}
	return doc
}

func randomKey(rng *rand.Rand) string {
	keys := []string{"a", "B", "zz", "key_1", "ключ", "k<&>", "line\nbreak", "", "\x00ctl", "emoji🙂"}
	return keys[rng.Intn(len(keys))] + fmt.Sprint(rng.Intn(4))
}

func randomValue(rng *rand.Rand, depth int) any {
	if depth > 0 && rng.Float64() < 0.3 {
		if rng.Float64() < 0.5 {
			return randomDoc(rng, depth-1)
		}
		n := rng.Intn(4)
		arr := make([]any, n)
		for i := range arr {
			arr[i] = randomValue(rng, depth-1)
		}
		return arr
	}
	switch rng.Intn(6) {
	case 0:
		return nil
	case 1:
		return rng.Float64() < 0.5
	case 2:
		return randomString(rng)
	case 3: // awkward floats: huge, tiny, negative zero boundary, integral
		floats := []float64{0, 1, -1, 3.14, 1e-7, 2e-7, 1e21, 9.99e20, -1e-9,
			math.MaxFloat64, math.SmallestNonzeroFloat64, 1e6, 123456789.123}
		return floats[rng.Intn(len(floats))]
	case 4:
		return float64(rng.Int63n(1 << 53))
	default:
		return randomString(rng)
	}
}

func randomString(rng *rand.Rand) string {
	parts := []string{"plain", "with \"quotes\"", "back\\slash", "<script>&amp;", "tab\tnl\n",
		"\u2028sep\u2029", "high\uffff", "bad:\xff\xfe", "nul\x00", "ünïcødé", "🙂🙃"}
	out := ""
	for i := 0; i < 1+rng.Intn(3); i++ {
		out += parts[rng.Intn(len(parts))]
	}
	return out
}

// TestCanonicalizeMatchesEncodingJSON pins the hand-rolled encoder to
// json.Marshal byte for byte — both sort map keys, so the outputs must
// be identical, including HTML escaping, invalid-UTF-8 replacement,
// and float formatting.
func TestCanonicalizeMatchesEncodingJSON(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 500; i++ {
		doc := randomDoc(rng, 3)
		want, err := json.Marshal(doc)
		if err != nil {
			t.Fatalf("doc %d: json.Marshal: %v", i, err)
		}
		got := CanonicalizeDoc(doc)
		if !bytes.Equal(got, want) {
			t.Fatalf("doc %d:\ncanonical: %s\njson:      %s", i, got, want)
		}
		// The append path must agree with the one-shot path and respect
		// an existing prefix.
		buf := AppendCanonicalDoc([]byte("prefix:"), doc)
		if !bytes.Equal(buf, append([]byte("prefix:"), want...)) {
			t.Fatalf("doc %d: append path diverged", i)
		}
	}
}

func TestCanonicalizeFloatPanicsOnNaN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("canonicalize(NaN) did not panic")
		}
	}()
	CanonicalizeDoc(map[string]any{"x": math.NaN()})
}

// --- canonical-bytes cache ------------------------------------------

func signedTransfer(t *testing.T, seed int64) (*Transaction, *keys.KeyPair) {
	t.Helper()
	kp := keys.DeterministicKeyPair(seed)
	tr := NewTransfer("a1",
		[]Spend{
			{Ref: OutputRef{TxID: "a1", Index: 0}, Owners: []string{kp.PublicBase58()}},
			{Ref: OutputRef{TxID: "a1", Index: 1}, Owners: []string{kp.PublicBase58()}},
		},
		[]*Output{{PublicKeys: []string{kp.PublicBase58()}, Amount: 2}}, nil)
	if err := Sign(tr, kp); err != nil {
		t.Fatalf("sign: %v", err)
	}
	return tr, kp
}

// TestCachedEncodingsStable: repeated calls return identical bytes and
// the memo actually serves them (same backing array on the second hit).
func TestCachedEncodingsStable(t *testing.T) {
	tr, _ := signedTransfer(t, 21)
	p1, p2 := tr.SigningPayload(), tr.SigningPayload()
	if !bytes.Equal(p1, p2) {
		t.Fatal("payload changed between calls")
	}
	c1, c2 := tr.MarshalCanonical(), tr.MarshalCanonical()
	if !bytes.Equal(c1, c2) {
		t.Fatal("canonical changed between calls")
	}
	if &c1[0] != &c2[0] {
		t.Fatal("second MarshalCanonical did not come from the memo")
	}
}

// TestSignInvalidatesMemo: the validate tests' pattern — mutate a
// signed transaction, re-Sign — must produce the new payload, not the
// memoized old one.
func TestSignInvalidatesMemo(t *testing.T) {
	tr, kp := signedTransfer(t, 22)
	oldID := tr.ID
	old := append([]byte(nil), tr.SigningPayload()...)
	tr.Outputs[0].Amount = 7
	if err := Sign(tr, kp); err != nil {
		t.Fatalf("re-sign: %v", err)
	}
	if bytes.Equal(tr.SigningPayload(), old) {
		t.Fatal("re-sign served the stale memoized payload")
	}
	if tr.ID == oldID {
		t.Fatal("re-sign kept the stale ID")
	}
	if err := VerifyFulfillments(tr); err != nil {
		t.Fatalf("re-signed tx fails verification: %v", err)
	}
}

// TestInvalidateAfterInPlaceMutation: without Invalidate a raw field
// write would be masked by the memo; with it, verification fails
// closed on the tampered content.
func TestInvalidateAfterInPlaceMutation(t *testing.T) {
	tr, _ := signedTransfer(t, 23)
	if err := VerifyFulfillments(tr); err != nil {
		t.Fatalf("pristine: %v", err)
	}
	tr.Outputs[0].Amount = 99
	tr.Invalidate()
	if err := VerifyFulfillments(tr); err == nil {
		t.Fatal("tampered tx verified after Invalidate")
	}
}

// TestCloneStartsCold: the tamper-detection pattern (clone, mutate,
// verify) must keep failing closed — a clone shares no memo with its
// source, even a verified one.
func TestCloneStartsCold(t *testing.T) {
	tr, _ := signedTransfer(t, 24)
	if err := VerifyFulfillments(tr); err != nil {
		t.Fatalf("pristine: %v", err)
	}
	c := tr.Clone()
	c.Outputs[0].Amount = 99
	if err := VerifyFulfillments(c); err == nil {
		t.Fatal("mutated clone inherited the verified memo")
	}
}

// TestVerifiedMemoSkipsRecheck: a second VerifyFulfillments on an
// unmutated transaction is served by the memo (observable through the
// hit counter moving without new misses).
func TestVerifiedMemoSkipsRecheck(t *testing.T) {
	tr, _ := signedTransfer(t, 25)
	if err := VerifyFulfillments(tr); err != nil {
		t.Fatalf("first: %v", err)
	}
	if !tr.sigVerified(nil) {
		t.Fatal("verdict not memoized")
	}
	if err := VerifyFulfillments(tr); err != nil {
		t.Fatalf("second: %v", err)
	}
}

// TestDisabledScopeMemoizesNothing: a disabled scope verifies
// correctly but records nothing on the transaction — no encodings, no
// verdict — and, since it never consults the cache, tallies neither
// hits nor misses.
func TestDisabledScopeMemoizesNothing(t *testing.T) {
	sc := NewCacheScope(false)
	tr, _ := signedTransfer(t, 26)
	tr.Invalidate() // Sign ran under the default scope; start cold
	if err := sc.VerifyFulfillments(tr); err != nil {
		t.Fatalf("verify: %v", err)
	}
	if tr.memo.Load() != nil {
		t.Fatal("memo populated with cache disabled")
	}
	if h, m := sc.Stats(); h != 0 || m != 0 {
		t.Fatalf("disabled scope tallied %d hits / %d misses, want 0/0", h, m)
	}
}

// TestScopesCoexist: one process hosting a cached and an uncached
// validator over the same transaction object. The enabled scope
// memoizes and reuses; the disabled scope keeps re-verifying from
// scratch, blind to the memo the other one wrote.
func TestScopesCoexist(t *testing.T) {
	on := NewCacheScope(true)
	off := NewCacheScope(false)
	tr, _ := signedTransfer(t, 27)
	tr.Invalidate()

	if err := on.VerifyFulfillments(tr); err != nil {
		t.Fatalf("enabled verify: %v", err)
	}
	if !tr.sigVerified(on) {
		t.Fatal("enabled scope did not memoize the verdict")
	}
	_, misses := on.Stats()
	if misses == 0 {
		t.Fatal("enabled scope's cold verify recorded no misses")
	}

	// The disabled scope ignores the memo entirely: its fast path stays
	// cold and a batch run reuses nothing.
	if tr.sigVerified(off) {
		t.Fatal("disabled scope saw the enabled scope's verdict")
	}
	errs, stats := off.VerifyFulfillmentsBatch([]*Transaction{tr}, 2)
	if len(errs) != 0 {
		t.Fatalf("disabled batch errs = %v", errs)
	}
	if stats.Reused != 0 || stats.Sig.Tasks == 0 {
		t.Fatalf("disabled batch stats = %+v, want 0 reused and fresh signature work", stats)
	}

	// Meanwhile the enabled scope serves everything from the memo.
	errs, stats = on.VerifyFulfillmentsBatch([]*Transaction{tr}, 2)
	if len(errs) != 0 || stats.Reused != 1 || stats.Sig.Tasks != 0 {
		t.Fatalf("enabled batch errs=%v stats=%+v, want clean reuse", errs, stats)
	}
}

// --- batched fulfillment verification -------------------------------

// batchCase builds transactions covering every verifyInput branch.
func batchCase(t *testing.T) []*Transaction {
	t.Helper()
	a := keys.DeterministicKeyPair(31)
	b := keys.DeterministicKeyPair(32)
	c := keys.DeterministicKeyPair(33)

	var ts []*Transaction
	// Valid multi-input single-sig (dedup target).
	tr1, _ := signedTransfer(t, 34)
	ts = append(ts, tr1)
	// Valid multisig (2 owners).
	m := NewTransfer("a2",
		[]Spend{{Ref: OutputRef{TxID: "a2", Index: 0}, Owners: []string{a.PublicBase58(), b.PublicBase58()}}},
		[]*Output{{PublicKeys: []string{c.PublicBase58()}, Amount: 1}}, nil)
	if err := Sign(m, a, b); err != nil {
		t.Fatalf("sign multisig: %v", err)
	}
	ts = append(ts, m)
	// Tampered payload (ID mismatch).
	bad := tr1.Clone()
	bad.Outputs[0].Amount = 42
	ts = append(ts, bad)
	// Wrong signer: clone a valid tx and splice in a signature by c.
	forged := tr1.Clone()
	forged.Inputs[0].Fulfillment = c.Sign(forged.SigningPayload())
	forged.Inputs[1].Fulfillment = forged.Inputs[0].Fulfillment
	ts = append(ts, forged)
	// Missing fulfillment.
	miss := tr1.Clone()
	miss.Inputs[1].Fulfillment = ""
	ts = append(ts, miss)
	// Multisig missing one owner's signature.
	half := m.Clone()
	halfPayload := half.SigningPayload()
	half.Inputs[0].Fulfillment = keys.SignMulti(halfPayload, 2, a).String()
	ts = append(ts, half)
	// Single signature but multiple owners.
	multiOwner := tr1.Clone()
	multiOwner.Inputs[0].OwnersBefore = []string{a.PublicBase58(), b.PublicBase58()}
	ts = append(ts, multiOwner)
	return ts
}

// TestVerifyFulfillmentsBatchDifferential pins the batched verifier to
// the per-transaction one: same verdicts, same error strings, across
// worker counts, on cold clones each round.
func TestVerifyFulfillmentsBatchDifferential(t *testing.T) {
	base := batchCase(t)
	want := make(map[string]string)
	for _, tx := range base {
		c := tx.Clone()
		if err := VerifyFulfillments(c); err != nil {
			want[c.ID] = err.Error()
		}
	}
	for _, workers := range []int{1, 4} {
		fresh := make([]*Transaction, len(base))
		for i, tx := range base {
			fresh[i] = tx.Clone()
		}
		errs, stats := VerifyFulfillmentsBatch(fresh, workers)
		if len(errs) != len(want) {
			t.Fatalf("workers=%d: %d errors, want %d: %v", workers, len(errs), len(want), errs)
		}
		for id, msg := range want {
			got, ok := errs[id]
			if !ok {
				t.Fatalf("workers=%d: tx %.8s should fail with %q", workers, id, msg)
			}
			if got.Error() != msg {
				t.Fatalf("workers=%d: tx %.8s error = %q, want %q", workers, id, got.Error(), msg)
			}
		}
		if stats.Sig.DedupHits == 0 {
			t.Fatalf("workers=%d: no dedup hits on a multi-input batch: %+v", workers, stats)
		}
		// Successes are memoized exactly like the per-tx path.
		for _, tx := range fresh {
			if _, bad := errs[tx.ID]; bad {
				continue
			}
			if !tx.sigVerified(nil) {
				t.Fatalf("workers=%d: passing tx %.8s not memoized", workers, tx.ID)
			}
		}
	}
}

// TestVerifyFulfillmentsBatchReusesVerdicts: already-verified
// transactions are skipped wholesale.
func TestVerifyFulfillmentsBatchReusesVerdicts(t *testing.T) {
	tr, _ := signedTransfer(t, 41)
	if err := VerifyFulfillments(tr); err != nil {
		t.Fatalf("warm-up: %v", err)
	}
	errs, stats := VerifyFulfillmentsBatch([]*Transaction{tr}, 2)
	if len(errs) != 0 {
		t.Fatalf("errs = %v", errs)
	}
	if stats.Reused != 1 || stats.Sig.Tasks != 0 {
		t.Fatalf("stats = %+v, want 1 reused / 0 tasks", stats)
	}
}

// TestMemoConcurrentReaders hammers one transaction's memo from many
// goroutines — payload reads, canonical reads, and batch verification
// racing the CAS copy-forward — and checks every reader saw the same
// bytes. Run under -race, this pins the generation swap.
func TestMemoConcurrentReaders(t *testing.T) {
	tr, _ := signedTransfer(t, 27)
	want := append([]byte(nil), tr.SigningPayload()...)
	tr.Invalidate() // start everyone from a cold memo
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				switch (g + i) % 3 {
				case 0:
					if !bytes.Equal(tr.SigningPayload(), want) {
						t.Error("payload diverged")
						return
					}
				case 1:
					tr.MarshalCanonical()
				default:
					if err := VerifyFulfillments(tr); err != nil {
						t.Errorf("verify: %v", err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
}

// --- allocation regression ------------------------------------------

// TestAppendCanonicalDocZeroAlloc pins the steady-state append path at
// zero allocations: warm pool, pre-sized buffer.
func TestAppendCanonicalDocZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector disables sync.Pool reuse; allocation count is meaningless")
	}
	doc := map[string]any{
		"operation": "TRANSFER",
		"amount":    float64(3),
		"nested":    map[string]any{"a": "x", "b": float64(2)},
		"list":      []any{"p", "q", float64(1)},
	}
	buf := AppendCanonicalDoc(nil, doc)
	buf = buf[:0]
	allocs := testing.AllocsPerRun(200, func() {
		buf = AppendCanonicalDoc(buf[:0], doc)
	})
	if allocs != 0 {
		t.Fatalf("AppendCanonicalDoc allocations = %v, want 0", allocs)
	}
}

// TestCachedSigningPayloadZeroAlloc pins the cache hit at zero
// allocations — the property that lets screen→verify→fingerprint share
// one encode.
func TestCachedSigningPayloadZeroAlloc(t *testing.T) {
	tr, _ := signedTransfer(t, 51)
	tr.SigningPayload() // populate
	allocs := testing.AllocsPerRun(200, func() {
		tr.SigningPayload()
	})
	if allocs != 0 {
		t.Fatalf("cached SigningPayload allocations = %v, want 0", allocs)
	}
	tr.MarshalCanonical()
	allocs = testing.AllocsPerRun(200, func() {
		tr.MarshalCanonical()
	})
	if allocs != 0 {
		t.Fatalf("cached MarshalCanonical allocations = %v, want 0", allocs)
	}
}
