//go:build race

package txn

// raceEnabled reports that this binary was built with the race
// detector, which disables sync.Pool reuse and so makes
// zero-allocation assertions on pooled paths meaningless.
const raceEnabled = true
