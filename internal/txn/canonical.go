package txn

import (
	"crypto/sha3"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"
)

// ToDoc converts the transaction into a plain document
// (map[string]any) suitable for schema validation and storage. Numbers
// become float64 where JSON would produce float64, except share amounts
// which are kept as uint64-compatible json.Number-free float64 values;
// the docstore treats them uniformly.
func (t *Transaction) ToDoc() map[string]any {
	raw, err := json.Marshal(t)
	if err != nil {
		// Transaction contains only JSON-safe types; a failure here is
		// a programming error.
		panic(fmt.Sprintf("txn: marshal: %v", err))
	}
	var doc map[string]any
	if err := json.Unmarshal(raw, &doc); err != nil {
		panic(fmt.Sprintf("txn: unmarshal: %v", err))
	}
	return doc
}

// FromDoc parses a document produced by ToDoc (or received as a JSON
// payload) back into a Transaction.
func FromDoc(doc map[string]any) (*Transaction, error) {
	raw, err := json.Marshal(doc)
	if err != nil {
		return nil, fmt.Errorf("txn: encode doc: %w", err)
	}
	var t Transaction
	if err := json.Unmarshal(raw, &t); err != nil {
		return nil, fmt.Errorf("txn: decode doc: %w", err)
	}
	return &t, nil
}

// MarshalCanonical renders the transaction as canonical JSON: keys
// sorted lexicographically at every level, no insignificant whitespace.
// Two transactions with equal content always produce identical bytes,
// which is what makes SHA3-256 identifiers and signatures stable across
// nodes and languages.
func (t *Transaction) MarshalCanonical() []byte {
	return canonicalize(t.ToDoc())
}

// SigningPayload returns the canonical bytes that identify and are
// signed for this transaction: the canonical JSON with the ID zeroed
// and every input fulfillment removed (a signature cannot cover
// itself). Children are also excluded because a nested parent's child
// IDs are assigned by the server after signing.
func (t *Transaction) SigningPayload() []byte {
	doc := t.ToDoc()
	doc["id"] = ""
	delete(doc, "children")
	if ins, ok := doc["inputs"].([]any); ok {
		for _, in := range ins {
			if m, ok := in.(map[string]any); ok {
				delete(m, "fulfillment")
			}
		}
	}
	return canonicalize(doc)
}

// ComputeID returns the transaction identifier: lowercase hex SHA3-256
// of the signing payload.
func (t *Transaction) ComputeID() string {
	sum := sha3.Sum256(t.SigningPayload())
	return hex.EncodeToString(sum[:])
}

// SetID stamps the computed identifier onto the transaction.
func (t *Transaction) SetID() { t.ID = t.ComputeID() }

// VerifyID reports whether the stored ID matches the recomputed one.
func (t *Transaction) VerifyID() bool { return t.ID != "" && t.ID == t.ComputeID() }

// CanonicalizeDoc renders any JSON-safe document in the same canonical
// form as MarshalCanonical — sorted keys, no whitespace — so byte-wise
// comparisons and fingerprints over stored documents are stable.
func CanonicalizeDoc(doc map[string]any) []byte { return canonicalize(doc) }

// canonicalize writes any JSON-safe value with sorted keys and no
// whitespace. encoding/json already sorts map keys, but we write our
// own encoder so the canonical form is explicit, stable, and immune to
// struct-field ordering.
func canonicalize(v any) []byte {
	var buf []byte
	buf = appendCanonical(buf, v)
	return buf
}

func appendCanonical(buf []byte, v any) []byte {
	switch x := v.(type) {
	case nil:
		return append(buf, "null"...)
	case map[string]any:
		keys := make([]string, 0, len(x))
		for k := range x {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		buf = append(buf, '{')
		for i, k := range keys {
			if i > 0 {
				buf = append(buf, ',')
			}
			buf = appendJSONString(buf, k)
			buf = append(buf, ':')
			buf = appendCanonical(buf, x[k])
		}
		return append(buf, '}')
	case []any:
		buf = append(buf, '[')
		for i, e := range x {
			if i > 0 {
				buf = append(buf, ',')
			}
			buf = appendCanonical(buf, e)
		}
		return append(buf, ']')
	default:
		b, err := json.Marshal(x)
		if err != nil {
			panic(fmt.Sprintf("txn: canonicalize %T: %v", v, err))
		}
		return append(buf, b...)
	}
}

func appendJSONString(buf []byte, s string) []byte {
	b, err := json.Marshal(s)
	if err != nil {
		panic(err)
	}
	return append(buf, b...)
}
