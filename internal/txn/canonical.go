package txn

import (
	"crypto/sha3"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"
	"slices"
	"strconv"
	"sync"
	"unicode/utf8"
)

// ToDoc converts the transaction into a plain document
// (map[string]any) suitable for schema validation and storage. Numbers
// become float64 where JSON would produce float64, except share amounts
// which are kept as uint64-compatible json.Number-free float64 values;
// the docstore treats them uniformly.
func (t *Transaction) ToDoc() map[string]any {
	raw, err := json.Marshal(t)
	if err != nil {
		// Transaction contains only JSON-safe types; a failure here is
		// a programming error.
		panic(fmt.Sprintf("txn: marshal: %v", err))
	}
	var doc map[string]any
	if err := json.Unmarshal(raw, &doc); err != nil {
		panic(fmt.Sprintf("txn: unmarshal: %v", err))
	}
	return doc
}

// FromDoc parses a document produced by ToDoc (or received as a JSON
// payload) back into a Transaction.
func FromDoc(doc map[string]any) (*Transaction, error) {
	raw, err := json.Marshal(doc)
	if err != nil {
		return nil, fmt.Errorf("txn: encode doc: %w", err)
	}
	var t Transaction
	if err := json.Unmarshal(raw, &t); err != nil {
		return nil, fmt.Errorf("txn: decode doc: %w", err)
	}
	return &t, nil
}

// MarshalCanonical renders the transaction as canonical JSON: keys
// sorted lexicographically at every level, no insignificant whitespace.
// Two transactions with equal content always produce identical bytes,
// which is what makes SHA3-256 identifiers and signatures stable across
// nodes and languages. The result is memoized (see cache.go) — callers
// must treat it as read-only.
func (t *Transaction) MarshalCanonical() []byte { return t.marshalCanonical(nil) }

// marshalCanonical is MarshalCanonical under an explicit cache scope
// (nil = the package default, caching on).
func (t *Transaction) marshalCanonical(sc *CacheScope) []byte {
	if b := t.cachedCanonical(sc); b != nil {
		return b
	}
	b := canonicalize(t.ToDoc())
	t.storeCanonical(sc, b)
	return b
}

// SigningPayload returns the canonical bytes that identify and are
// signed for this transaction: the canonical JSON with the ID zeroed
// and every input fulfillment removed (a signature cannot cover
// itself). Children are also excluded because a nested parent's child
// IDs are assigned by the server after signing. The result is memoized
// (see cache.go) — callers must treat it as read-only.
func (t *Transaction) SigningPayload() []byte { return t.signingPayload(nil) }

// signingPayload is SigningPayload under an explicit cache scope (nil
// = the package default, caching on).
func (t *Transaction) signingPayload(sc *CacheScope) []byte {
	if b := t.cachedSigning(sc); b != nil {
		return b
	}
	doc := t.ToDoc()
	doc["id"] = ""
	delete(doc, "children")
	if ins, ok := doc["inputs"].([]any); ok {
		for _, in := range ins {
			if m, ok := in.(map[string]any); ok {
				delete(m, "fulfillment")
			}
		}
	}
	b := canonicalize(doc)
	t.storeSigning(sc, b)
	return b
}

// ComputeID returns the transaction identifier: lowercase hex SHA3-256
// of the signing payload.
func (t *Transaction) ComputeID() string { return t.computeID(nil) }

func (t *Transaction) computeID(sc *CacheScope) string {
	sum := sha3.Sum256(t.signingPayload(sc))
	return hex.EncodeToString(sum[:])
}

// SetID stamps the computed identifier onto the transaction. The
// memoized canonical encoding (which covers the ID) is dropped; the
// signing payload (which excludes it) survives.
func (t *Transaction) SetID() {
	t.ID = t.ComputeID()
	t.dropDerivedMemo()
}

// VerifyID reports whether the stored ID matches the recomputed one.
func (t *Transaction) VerifyID() bool { return t.verifyID(nil) }

func (t *Transaction) verifyID(sc *CacheScope) bool {
	return t.ID != "" && t.ID == t.computeID(sc)
}

// CanonicalizeDoc renders any JSON-safe document in the same canonical
// form as MarshalCanonical — sorted keys, no whitespace — so byte-wise
// comparisons and fingerprints over stored documents are stable.
func CanonicalizeDoc(doc map[string]any) []byte { return canonicalize(doc) }

// AppendCanonicalDoc appends doc's canonical encoding to dst and
// returns the extended slice. With a dst of sufficient capacity the
// steady state allocates nothing (encoder scratch is pooled), which is
// what lets fingerprint loops hash thousands of documents through one
// reused buffer.
func AppendCanonicalDoc(dst []byte, doc map[string]any) []byte {
	e := encPool.Get().(*canonEncoder)
	dst = e.append(dst, doc, 0)
	encPool.Put(e)
	return dst
}

// canonicalize writes any JSON-safe value with sorted keys and no
// whitespace. encoding/json already sorts map keys, but we write our
// own encoder so the canonical form is explicit, stable, and immune to
// struct-field ordering. The output is byte-identical to json.Marshal
// of the same document (pinned by a differential test), including HTML
// escaping and float formatting.
func canonicalize(v any) []byte {
	e := encPool.Get().(*canonEncoder)
	buf := e.append(nil, v, 0)
	encPool.Put(e)
	return buf
}

// canonEncoder holds the per-depth key-sorting scratch so repeated
// encodes allocate nothing once warm. Instances are pooled; the
// recursion carries an explicit depth so nested maps never share a
// scratch slice.
type canonEncoder struct {
	keys [][]string
}

var encPool = sync.Pool{New: func() any { return new(canonEncoder) }}

func (e *canonEncoder) append(buf []byte, v any, depth int) []byte {
	switch x := v.(type) {
	case nil:
		return append(buf, "null"...)
	case map[string]any:
		for depth >= len(e.keys) {
			e.keys = append(e.keys, nil)
		}
		ks := e.keys[depth][:0]
		for k := range x {
			ks = append(ks, k)
		}
		slices.Sort(ks)
		e.keys[depth] = ks
		buf = append(buf, '{')
		for i, k := range ks {
			if i > 0 {
				buf = append(buf, ',')
			}
			buf = appendJSONString(buf, k)
			buf = append(buf, ':')
			buf = e.append(buf, x[k], depth+1)
		}
		return append(buf, '}')
	case []any:
		buf = append(buf, '[')
		for i, el := range x {
			if i > 0 {
				buf = append(buf, ',')
			}
			buf = e.append(buf, el, depth)
		}
		return append(buf, ']')
	case string:
		return appendJSONString(buf, x)
	case bool:
		if x {
			return append(buf, "true"...)
		}
		return append(buf, "false"...)
	case float64:
		return appendJSONFloat(buf, x)
	case int:
		return strconv.AppendInt(buf, int64(x), 10)
	case int64:
		return strconv.AppendInt(buf, x, 10)
	case uint64:
		return strconv.AppendUint(buf, x, 10)
	default:
		b, err := json.Marshal(x)
		if err != nil {
			panic(fmt.Sprintf("txn: canonicalize %T: %v", v, err))
		}
		return append(buf, b...)
	}
}

// appendJSONFloat renders f exactly as encoding/json does: shortest
// representation, 'f' form inside [1e-6, 1e21), 'e' form outside with
// the leading zero of a two-digit negative exponent trimmed
// ("2e-07" → "2e-7").
func appendJSONFloat(buf []byte, f float64) []byte {
	if math.IsNaN(f) || math.IsInf(f, 0) {
		panic(fmt.Sprintf("txn: canonicalize float64: unsupported value: %v", f))
	}
	abs := math.Abs(f)
	format := byte('f')
	if abs != 0 && (abs < 1e-6 || abs >= 1e21) {
		format = 'e'
	}
	buf = strconv.AppendFloat(buf, f, format, -1, 64)
	if format == 'e' {
		if n := len(buf); n >= 4 && buf[n-4] == 'e' && buf[n-3] == '-' && buf[n-2] == '0' {
			buf[n-2] = buf[n-1]
			buf = buf[:n-1]
		}
	}
	return buf
}

const hexDigits = "0123456789abcdef"

// appendJSONString escapes s exactly as encoding/json with HTML
// escaping on: control characters, quotes, backslashes, <, >, &,
// U+2028/U+2029, and invalid UTF-8 replaced by the replacement rune.
func appendJSONString(buf []byte, s string) []byte {
	buf = append(buf, '"')
	start := 0
	for i := 0; i < len(s); {
		if c := s[i]; c < utf8.RuneSelf {
			if c >= 0x20 && c != '"' && c != '\\' && c != '<' && c != '>' && c != '&' {
				i++
				continue
			}
			buf = append(buf, s[start:i]...)
			switch c {
			case '\\', '"':
				buf = append(buf, '\\', c)
			case '\b':
				buf = append(buf, '\\', 'b')
			case '\f':
				buf = append(buf, '\\', 'f')
			case '\n':
				buf = append(buf, '\\', 'n')
			case '\r':
				buf = append(buf, '\\', 'r')
			case '\t':
				buf = append(buf, '\\', 't')
			default:
				buf = append(buf, '\\', 'u', '0', '0', hexDigits[c>>4], hexDigits[c&0xF])
			}
			i++
			start = i
			continue
		}
		c, size := utf8.DecodeRuneInString(s[i:])
		if c == utf8.RuneError && size == 1 {
			buf = append(buf, s[start:i]...)
			buf = append(buf, '\\', 'u', 'f', 'f', 'f', 'd')
			i += size
			start = i
			continue
		}
		if c == '\u2028' || c == '\u2029' {
			buf = append(buf, s[start:i]...)
			buf = append(buf, '\\', 'u', '2', '0', '2', hexDigits[c&0xF])
			i += size
			start = i
			continue
		}
		i += size
	}
	buf = append(buf, s[start:]...)
	return append(buf, '"')
}
