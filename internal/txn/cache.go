// Canonical-bytes caching. Canonicalizing a transaction is the second
// largest admission cost after ed25519 verification: every ID check,
// signature verification, and fingerprint re-marshals the same bytes.
// Each Transaction therefore memoizes its signing payload and
// canonical encoding (plus the signature verdict derived from them) in
// an immutable, atomically swapped cell, so concurrent validators on
// different nodes of an in-process cluster can share one transaction
// object without locks or races.
//
// Whether a code path consults and populates the memo is decided per
// CacheScope, not process-wide: each validator node owns a scope, so
// one process can host cached and uncached validators side by side
// (the benchmarks' caches-on-vs-off legs run as two node configs, not
// a global flip). Unscoped entry points use the package default scope,
// which is always enabled.
//
// Invalidation contract: the blessed mutation points inside this
// package (Sign re-canonicalizes from scratch; SetID drops the
// ID-covering encoding) maintain the cache themselves. Code that
// mutates a Transaction's exported fields in place after signing must
// call Invalidate — otherwise verification answers for the bytes the
// transaction had when the cache was populated. Clone never copies the
// cache: a clone starts cold, so the tamper-detection tests' pattern
// (clone, mutate, verify) keeps failing closed.
package txn

import "sync/atomic"

// txMemo is one immutable cache generation. The byte slices are
// written once before the memo is published and never mutated after;
// only the verified flag flips in place (false → true is the sole
// transition, and a lost flip merely costs one re-verification).
type txMemo struct {
	signing   []byte
	canonical []byte
	verified  atomic.Bool
}

// CacheScope is one validator's policy handle for the canonical-bytes
// cache: whether memoized encodings and signature verdicts are
// consulted and recorded, and whose hit/miss tallies move. The memo
// cells themselves live on the Transaction and are shared across every
// scope that has caching on — a disabled scope simply never reads or
// writes them. A nil *CacheScope means the package default scope
// (caching on), so zero-configured callers keep the fast behavior.
type CacheScope struct {
	disabled bool
	hits     atomic.Uint64
	misses   atomic.Uint64
}

// NewCacheScope returns a scope with caching on or off. The off scope
// is what an uncached validator threads through its validation paths;
// it never consults the memo, so its measurements are honest re-work.
func NewCacheScope(enabled bool) *CacheScope {
	return &CacheScope{disabled: !enabled}
}

// defaultCacheScope backs every unscoped entry point in this package.
var defaultCacheScope = &CacheScope{}

// DefaultCacheScope returns the always-enabled scope unscoped calls
// use — the process-wide hit/miss tallies live here.
func DefaultCacheScope() *CacheScope { return defaultCacheScope }

func (s *CacheScope) orDefault() *CacheScope {
	if s == nil {
		return defaultCacheScope
	}
	return s
}

// Enabled reports whether this scope consults the cache (nil-safe).
func (s *CacheScope) Enabled() bool { return !s.orDefault().disabled }

// Stats reports this scope's canonical-bytes cache hits and misses
// (SigningPayload + MarshalCanonical lookups; nil-safe).
func (s *CacheScope) Stats() (hits, misses uint64) {
	s = s.orDefault()
	return s.hits.Load(), s.misses.Load()
}

// CacheStats reports the default scope's canonical-bytes cache hits
// and misses — the tallies of every unscoped lookup in the process.
func CacheStats() (hits, misses uint64) { return defaultCacheScope.Stats() }

// Invalidate drops every memoized encoding and the signature verdict.
// Call it after mutating a transaction's fields in place; Sign calls
// it implicitly.
func (t *Transaction) Invalidate() { t.memo.Store(nil) }

// dropDerivedMemo keeps the signing payload but discards the canonical
// encoding and the signature verdict — what SetID needs: the new ID is
// covered by the canonical bytes but excluded from the payload.
func (t *Transaction) dropDerivedMemo() {
	for {
		old := t.memo.Load()
		if old == nil {
			return
		}
		if old.canonical == nil && !old.verified.Load() {
			return
		}
		next := &txMemo{signing: old.signing}
		if t.memo.CompareAndSwap(old, next) {
			return
		}
	}
}

func (t *Transaction) cachedSigning(sc *CacheScope) []byte {
	sc = sc.orDefault()
	if sc.disabled {
		return nil
	}
	if m := t.memo.Load(); m != nil && m.signing != nil {
		sc.hits.Add(1)
		return m.signing
	}
	sc.misses.Add(1)
	return nil
}

func (t *Transaction) cachedCanonical(sc *CacheScope) []byte {
	sc = sc.orDefault()
	if sc.disabled {
		return nil
	}
	if m := t.memo.Load(); m != nil && m.canonical != nil {
		sc.hits.Add(1)
		return m.canonical
	}
	sc.misses.Add(1)
	return nil
}

// storeSigning publishes a freshly computed signing payload,
// preserving whatever else the current generation holds. Racing
// writers compute identical bytes, so last-write-wins is benign.
func (t *Transaction) storeSigning(sc *CacheScope, b []byte) {
	if sc.orDefault().disabled {
		return
	}
	for {
		old := t.memo.Load()
		next := &txMemo{signing: b}
		if old != nil {
			next.canonical = old.canonical
			next.verified.Store(old.verified.Load())
		}
		if t.memo.CompareAndSwap(old, next) {
			return
		}
	}
}

func (t *Transaction) storeCanonical(sc *CacheScope, b []byte) {
	if sc.orDefault().disabled {
		return
	}
	for {
		old := t.memo.Load()
		next := &txMemo{canonical: b}
		if old != nil {
			next.signing = old.signing
			next.verified.Store(old.verified.Load())
		}
		if t.memo.CompareAndSwap(old, next) {
			return
		}
	}
}

// sigVerified reports a memoized successful VerifyFulfillments for the
// current cache generation.
func (t *Transaction) sigVerified(sc *CacheScope) bool {
	if sc.orDefault().disabled {
		return false
	}
	m := t.memo.Load()
	return m != nil && m.verified.Load()
}

// markSigVerified memoizes a successful VerifyFulfillments so the
// per-type condition sets (which re-run it during block validation)
// pay O(1) for a transaction the admission batch already proved.
func (t *Transaction) markSigVerified(sc *CacheScope) {
	if sc.orDefault().disabled {
		return
	}
	if m := t.memo.Load(); m != nil {
		m.verified.Store(true)
		return
	}
	next := &txMemo{}
	next.verified.Store(true)
	t.memo.CompareAndSwap(nil, next)
}
