// Canonical-bytes caching. Canonicalizing a transaction is the second
// largest admission cost after ed25519 verification: every ID check,
// signature verification, and fingerprint re-marshals the same bytes.
// Each Transaction therefore memoizes its signing payload and
// canonical encoding (plus the signature verdict derived from them) in
// an immutable, atomically swapped cell, so concurrent validators on
// different nodes of an in-process cluster can share one transaction
// object without locks or races.
//
// Invalidation contract: the blessed mutation points inside this
// package (Sign re-canonicalizes from scratch; SetID drops the
// ID-covering encoding) maintain the cache themselves. Code that
// mutates a Transaction's exported fields in place after signing must
// call Invalidate — otherwise verification answers for the bytes the
// transaction had when the cache was populated. Clone never copies the
// cache: a clone starts cold, so the tamper-detection tests' pattern
// (clone, mutate, verify) keeps failing closed.
package txn

import "sync/atomic"

// txMemo is one immutable cache generation. The byte slices are
// written once before the memo is published and never mutated after;
// only the verified flag flips in place (false → true is the sole
// transition, and a lost flip merely costs one re-verification).
type txMemo struct {
	signing   []byte
	canonical []byte
	verified  atomic.Bool
}

var (
	cacheOn     atomic.Bool
	cacheHits   atomic.Uint64
	cacheMisses atomic.Uint64
)

func init() { cacheOn.Store(true) }

// SetCacheEnabled toggles the process-wide canonical-bytes cache and
// returns the previous setting. It exists for benchmarks that measure
// the uncached baseline and must not be flipped while transactions are
// in flight (a disabled cache is never consulted, so stale reads are
// impossible, but hit/miss accounting becomes meaningless).
func SetCacheEnabled(on bool) bool { return cacheOn.Swap(on) }

// CacheStats reports process-wide canonical-bytes cache hits and
// misses (SigningPayload + MarshalCanonical lookups).
func CacheStats() (hits, misses uint64) {
	return cacheHits.Load(), cacheMisses.Load()
}

// Invalidate drops every memoized encoding and the signature verdict.
// Call it after mutating a transaction's fields in place; Sign calls
// it implicitly.
func (t *Transaction) Invalidate() { t.memo.Store(nil) }

// dropDerivedMemo keeps the signing payload but discards the canonical
// encoding and the signature verdict — what SetID needs: the new ID is
// covered by the canonical bytes but excluded from the payload.
func (t *Transaction) dropDerivedMemo() {
	for {
		old := t.memo.Load()
		if old == nil {
			return
		}
		if old.canonical == nil && !old.verified.Load() {
			return
		}
		next := &txMemo{signing: old.signing}
		if t.memo.CompareAndSwap(old, next) {
			return
		}
	}
}

func (t *Transaction) cachedSigning() []byte {
	if !cacheOn.Load() {
		return nil
	}
	if m := t.memo.Load(); m != nil && m.signing != nil {
		cacheHits.Add(1)
		return m.signing
	}
	cacheMisses.Add(1)
	return nil
}

func (t *Transaction) cachedCanonical() []byte {
	if !cacheOn.Load() {
		return nil
	}
	if m := t.memo.Load(); m != nil && m.canonical != nil {
		cacheHits.Add(1)
		return m.canonical
	}
	cacheMisses.Add(1)
	return nil
}

// storeSigning publishes a freshly computed signing payload,
// preserving whatever else the current generation holds. Racing
// writers compute identical bytes, so last-write-wins is benign.
func (t *Transaction) storeSigning(b []byte) {
	if !cacheOn.Load() {
		return
	}
	for {
		old := t.memo.Load()
		next := &txMemo{signing: b}
		if old != nil {
			next.canonical = old.canonical
			next.verified.Store(old.verified.Load())
		}
		if t.memo.CompareAndSwap(old, next) {
			return
		}
	}
}

func (t *Transaction) storeCanonical(b []byte) {
	if !cacheOn.Load() {
		return
	}
	for {
		old := t.memo.Load()
		next := &txMemo{canonical: b}
		if old != nil {
			next.signing = old.signing
			next.verified.Store(old.verified.Load())
		}
		if t.memo.CompareAndSwap(old, next) {
			return
		}
	}
}

// sigVerified reports a memoized successful VerifyFulfillments for the
// current cache generation.
func (t *Transaction) sigVerified() bool {
	if !cacheOn.Load() {
		return false
	}
	m := t.memo.Load()
	return m != nil && m.verified.Load()
}

// markSigVerified memoizes a successful VerifyFulfillments so the
// per-type condition sets (which re-run it during block validation)
// pay O(1) for a transaction the admission batch already proved.
func (t *Transaction) markSigVerified() {
	if !cacheOn.Load() {
		return
	}
	if m := t.memo.Load(); m != nil {
		m.verified.Store(true)
		return
	}
	next := &txMemo{}
	next.verified.Store(true)
	t.memo.CompareAndSwap(nil, next)
}
