package txn

import "fmt"

// Builders construct unsigned transactions following the per-type
// templates the SmartchainDB driver ships ("Prepare" in the paper's
// Figure 4). Callers fill in signatures with Sign, which also stamps
// the transaction ID.

// Spend names an unspent output and the keys that control it.
type Spend struct {
	Ref    OutputRef
	Owners []string
}

// NewCreate builds a CREATE transaction: issuer mints an asset with the
// given data document and number of divisible shares, initially owned
// by the issuer.
func NewCreate(issuer string, data map[string]any, shares uint64, meta map[string]any) *Transaction {
	if shares == 0 {
		shares = 1
	}
	return &Transaction{
		Operation: OpCreate,
		Asset:     &Asset{Data: data, Shares: shares},
		Inputs:    []*Input{{OwnersBefore: []string{issuer}}},
		Outputs:   []*Output{{PublicKeys: []string{issuer}, Amount: shares}},
		Metadata:  meta,
		Version:   Version,
	}
}

// NewRequest builds a REQUEST (request-for-quote) transaction: the
// requester publishes requirements — typically a "capabilities" list —
// that bidding assets must satisfy. Like CREATE it mints a new
// on-chain object (the RFQ) owned by the requester.
func NewRequest(requester string, requirements map[string]any, meta map[string]any) *Transaction {
	return &Transaction{
		Operation: OpRequest,
		Asset:     &Asset{Data: requirements, Shares: 1},
		Inputs:    []*Input{{OwnersBefore: []string{requester}}},
		Outputs:   []*Output{{PublicKeys: []string{requester}, Amount: 1}},
		Metadata:  meta,
		Version:   Version,
	}
}

// NewTransfer builds a TRANSFER moving shares of asset assetID from the
// spent outputs to the new outputs.
func NewTransfer(assetID string, spends []Spend, outputs []*Output, meta map[string]any) *Transaction {
	t := &Transaction{
		Operation: OpTransfer,
		Asset:     &Asset{ID: assetID},
		Outputs:   outputs,
		Metadata:  meta,
		Version:   Version,
	}
	for _, s := range spends {
		ref := s.Ref
		t.Inputs = append(t.Inputs, &Input{Fulfills: &ref, OwnersBefore: s.Owners})
	}
	return t
}

// NewBid builds a BID transaction answering REQUEST rfqID: the bidder
// moves amount shares of the backing asset into the escrow account
// escrowPub, recording themself as previous owner so an unsuccessful
// bid can be returned. The REQUEST is referenced (R), not spent.
func NewBid(bidder, assetID string, spend Spend, amount uint64, escrowPub, rfqID string, meta map[string]any) *Transaction {
	ref := spend.Ref
	return &Transaction{
		Operation: OpBid,
		Asset:     &Asset{ID: assetID},
		Inputs:    []*Input{{Fulfills: &ref, OwnersBefore: spend.Owners}},
		Outputs: []*Output{{
			PublicKeys: []string{escrowPub},
			Amount:     amount,
			PrevOwners: []string{bidder},
		}},
		Refs:     []string{rfqID},
		Metadata: meta,
		Version:  Version,
	}
}

// NewAcceptBid builds the nested ACCEPT_BID parent. Its inputs spend
// every escrow-held bid output for the REQUEST, winner first; its
// outputs mirror the inputs one-to-one and all stay under escrow, each
// recording the original bidder as previous owner. The server realizes
// them at commit with |I| children (Algorithm 3): one TRANSFER handing
// output 0 — the winning bid's shares — to the REQUEST's owner, and
// n-1 RETURNs handing each remaining output back to its recorded
// previous owner. The parent is committed first (non-locking) and the
// children follow asynchronously with eventual-commit semantics.
//
// The transaction's asset anchors to the winning bid id and R
// references the REQUEST. Inputs carry both the escrow and the
// requester as owners-before: the escrow signature proves custody and
// the requester signature proves the acceptance was authorized by the
// REQUEST's owner (Algorithm 3, line 6).
func NewAcceptBid(requesterPub, escrowPub, rfqID string, winBid *Transaction, losingBids []*Transaction, meta map[string]any) (*Transaction, error) {
	t := &Transaction{
		Operation: OpAcceptBid,
		Asset:     &Asset{ID: winBid.ID},
		Refs:      []string{rfqID},
		Metadata:  meta,
		Version:   Version,
	}
	appendBid := func(bid *Transaction) error {
		if len(bid.Outputs) == 0 {
			return fmt.Errorf("txn: bid %s has no outputs", abbrev(bid.ID))
		}
		out := bid.Outputs[0]
		if len(out.PrevOwners) == 0 {
			return fmt.Errorf("txn: bid %s output records no previous owner", abbrev(bid.ID))
		}
		t.Inputs = append(t.Inputs, &Input{
			Fulfills:     &OutputRef{TxID: bid.ID, Index: 0},
			OwnersBefore: []string{escrowPub, requesterPub},
		})
		t.Outputs = append(t.Outputs, &Output{
			PublicKeys: []string{escrowPub},
			Amount:     out.Amount,
			PrevOwners: append([]string(nil), out.PrevOwners...),
		})
		return nil
	}
	if err := appendBid(winBid); err != nil {
		return nil, err
	}
	for _, bid := range losingBids {
		if err := appendBid(bid); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// NewReturn builds the child RETURN transaction realizing one pending
// escrow output of a committed ACCEPT_BID: it spends parent output
// (acceptID, index) — held by escrowPub — and hands the shares back to
// the original bidder recorded there.
func NewReturn(escrowPub string, acceptID string, index int, recipient string, amount uint64, assetID string, meta map[string]any) *Transaction {
	return &Transaction{
		Operation: OpReturn,
		Asset:     &Asset{ID: assetID},
		Inputs: []*Input{{
			Fulfills:     &OutputRef{TxID: acceptID, Index: index},
			OwnersBefore: []string{escrowPub},
		}},
		Outputs: []*Output{{
			PublicKeys: []string{recipient},
			Amount:     amount,
			PrevOwners: []string{escrowPub},
		}},
		Refs:     []string{acceptID},
		Metadata: meta,
		Version:  Version,
	}
}
