// Package txn implements the formal blockchain transaction model of the
// paper (Definition 1): a transaction is a complex object
// ⟨ID, OP, A, O, I, Ch, R⟩ with divisible assets, owner-controlled
// outputs, signature-fulfilled inputs, child transactions, and a
// reference vector. The package provides canonical serialization,
// SHA3-256 transaction identifiers, signing and verification, and
// builders for the native SmartchainDB transaction types.
package txn

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync/atomic"
)

// Operation names — the reserved values 𝒪𝒫 of the formal model.
const (
	OpCreate    = "CREATE"
	OpTransfer  = "TRANSFER"
	OpRequest   = "REQUEST"
	OpBid       = "BID"
	OpReturn    = "RETURN"
	OpAcceptBid = "ACCEPT_BID"
)

// Version is the transaction format version stamped on every payload.
const Version = "2.0"

// Operations lists every native operation in registration order.
func Operations() []string {
	return []string{OpCreate, OpTransfer, OpRequest, OpBid, OpReturn, OpAcceptBid}
}

// IsNativeOp reports whether op is one of the native operations.
func IsNativeOp(op string) bool {
	switch op {
	case OpCreate, OpTransfer, OpRequest, OpBid, OpReturn, OpAcceptBid:
		return true
	}
	return false
}

// Asset is a blockchain asset A = ⟨(k,v), amt⟩: a nested key-value
// document plus a non-negative number of shares. A CREATE transaction
// carries the asset data inline; every downstream transaction refers to
// the asset by the ID of its creating transaction.
type Asset struct {
	// ID is the asset identifier (the CREATE transaction's ID). Empty
	// for CREATE transactions, where the asset is defined inline.
	ID string `json:"id,omitempty"`
	// Data is the nested key-value description of the asset. Only set
	// on CREATE.
	Data map[string]any `json:"data,omitempty"`
	// Shares is the total number of divisible shares the asset holds.
	// Only meaningful on CREATE; downstream amounts live on outputs.
	Shares uint64 `json:"shares,omitempty"`
}

// MarshalJSON renders the two legal asset shapes: an asset link
// {"id": ...} for downstream operations, or an inline definition
// {"data": ..., "shares": n} where data is always present (null when
// the asset has no descriptive document), matching the schema's
// asset_inline/asset_link alternatives.
func (a *Asset) MarshalJSON() ([]byte, error) {
	if a.ID != "" {
		return json.Marshal(map[string]any{"id": a.ID})
	}
	doc := map[string]any{"data": a.Data}
	if a.Shares != 0 {
		doc["shares"] = a.Shares
	}
	return json.Marshal(doc)
}

// OutputRef identifies the k-th output of a transaction — the object a
// later input "spends".
type OutputRef struct {
	TxID  string `json:"transaction_id"`
	Index int    `json:"output_index"`
}

// String renders the reference as txid:index.
func (r OutputRef) String() string { return fmt.Sprintf("%s:%d", r.TxID, r.Index) }

// Output is a transaction output object o = ⟨pb, amt, pb_prev⟩: the set
// of public keys that now control amt shares, plus the public keys of
// the previous owners (needed by ACCEPT_BID to route returns).
type Output struct {
	// PublicKeys are the base58 public keys of the new owners. More
	// than one key means joint (threshold-all) control.
	PublicKeys []string `json:"public_keys"`
	// Amount is the number of asset shares held by this output.
	Amount uint64 `json:"amount"`
	// PrevOwners are the base58 public keys of the owners this output's
	// shares came from (pb_prev in the model). Empty on CREATE.
	PrevOwners []string `json:"prev_owners,omitempty"`
}

// OwnedBy reports whether pub is one of the output's controlling keys.
func (o *Output) OwnedBy(pub string) bool {
	for _, k := range o.PublicKeys {
		if k == pub {
			return true
		}
	}
	return false
}

// Input is a transaction input object i = ⟨T'.o_b, ms⟩: a reference to
// the output being spent plus the fulfillment proving the spender
// controls it. CREATE inputs have no Fulfills reference.
type Input struct {
	// Fulfills is the output being spent; nil for CREATE/REQUEST inputs
	// that do not consume prior outputs.
	Fulfills *OutputRef `json:"fulfills,omitempty"`
	// OwnersBefore are the base58 public keys whose signatures the
	// fulfillment must carry (the owners of the spent output, or the
	// issuer for CREATE).
	OwnersBefore []string `json:"owners_before"`
	// Fulfillment is the signature string: either a single base58
	// ed25519 signature or a multi-signature wire string ("ms:...").
	Fulfillment string `json:"fulfillment,omitempty"`
}

// Transaction is the complex object of Definition 1.
type Transaction struct {
	// ID is the globally unique identifier: the lowercase hex SHA3-256
	// digest of the canonical unsigned payload.
	ID string `json:"id"`
	// Operation is OP ∈ 𝒪𝒫.
	Operation string `json:"operation"`
	// Asset is A.
	Asset *Asset `json:"asset"`
	// Outputs is O.
	Outputs []*Output `json:"outputs"`
	// Inputs is I.
	Inputs []*Input `json:"inputs"`
	// Children is Ch: the IDs of child transactions spawned by a nested
	// parent (filled in by the server at commit time for ACCEPT_BID).
	Children []string `json:"children,omitempty"`
	// Refs is R: the reference vector of transaction IDs this
	// transaction refers to without spending (e.g. a BID references its
	// REQUEST).
	Refs []string `json:"refs,omitempty"`
	// Metadata is arbitrary user metadata, queryable in the store.
	Metadata map[string]any `json:"metadata,omitempty"`
	// Version is the payload format version.
	Version string `json:"version"`

	// memo caches the canonical encodings and signature verdict (see
	// cache.go). Unexported: invisible to JSON, never copied by Clone.
	memo atomic.Pointer[txMemo]
}

// Hash returns the transaction identifier, satisfying the consensus
// engine's Tx interface.
func (t *Transaction) Hash() string { return t.ID }

// AssetID resolves the asset an operation manipulates: the transaction's
// own ID for CREATE (the created asset), otherwise the linked asset ID.
func (t *Transaction) AssetID() string {
	if t.Operation == OpCreate || t.Operation == OpRequest {
		return t.ID
	}
	if t.Asset != nil {
		return t.Asset.ID
	}
	return ""
}

// OutputAmount sums the shares across all outputs.
func (t *Transaction) OutputAmount() uint64 {
	var sum uint64
	for _, o := range t.Outputs {
		sum += o.Amount
	}
	return sum
}

// SpentRefs returns the output references consumed by this transaction's
// inputs, skipping unanchored (CREATE-style) inputs.
func (t *Transaction) SpentRefs() []OutputRef {
	refs := make([]OutputRef, 0, len(t.Inputs))
	for _, in := range t.Inputs {
		if in.Fulfills != nil {
			refs = append(refs, *in.Fulfills)
		}
	}
	return refs
}

// HasRef reports whether id appears in the reference vector R.
func (t *Transaction) HasRef(id string) bool {
	for _, r := range t.Refs {
		if r == id {
			return true
		}
	}
	return false
}

// OwnerSet returns the sorted union of output owner keys.
func (t *Transaction) OwnerSet() []string {
	set := make(map[string]struct{})
	for _, o := range t.Outputs {
		for _, k := range o.PublicKeys {
			set[k] = struct{}{}
		}
	}
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Clone returns a deep copy of the transaction. Stores hand out clones
// so callers cannot mutate committed state.
func (t *Transaction) Clone() *Transaction {
	if t == nil {
		return nil
	}
	c := &Transaction{
		ID:        t.ID,
		Operation: t.Operation,
		Version:   t.Version,
	}
	if t.Asset != nil {
		c.Asset = &Asset{ID: t.Asset.ID, Shares: t.Asset.Shares, Data: cloneMap(t.Asset.Data)}
	}
	c.Outputs = make([]*Output, len(t.Outputs))
	for i, o := range t.Outputs {
		c.Outputs[i] = &Output{
			PublicKeys: append([]string(nil), o.PublicKeys...),
			Amount:     o.Amount,
			PrevOwners: append([]string(nil), o.PrevOwners...),
		}
	}
	c.Inputs = make([]*Input, len(t.Inputs))
	for i, in := range t.Inputs {
		ci := &Input{
			OwnersBefore: append([]string(nil), in.OwnersBefore...),
			Fulfillment:  in.Fulfillment,
		}
		if in.Fulfills != nil {
			ref := *in.Fulfills
			ci.Fulfills = &ref
		}
		c.Inputs[i] = ci
	}
	c.Children = append([]string(nil), t.Children...)
	c.Refs = append([]string(nil), t.Refs...)
	c.Metadata = cloneMap(t.Metadata)
	return c
}

func cloneMap(m map[string]any) map[string]any {
	if m == nil {
		return nil
	}
	out := make(map[string]any, len(m))
	for k, v := range m {
		out[k] = cloneValue(v)
	}
	return out
}

func cloneValue(v any) any {
	switch x := v.(type) {
	case map[string]any:
		return cloneMap(x)
	case []any:
		out := make([]any, len(x))
		for i, e := range x {
			out[i] = cloneValue(e)
		}
		return out
	default:
		return v
	}
}
