package txn

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"smartchaindb/internal/keys"
)

func testCreate(t *testing.T, issuer *keys.KeyPair) *Transaction {
	t.Helper()
	tx := NewCreate(issuer.PublicBase58(), map[string]any{
		"capabilities": []any{"3d-printing", "cnc"},
		"model":        "MX-9",
	}, 10, map[string]any{"note": "test asset"})
	if err := Sign(tx, issuer); err != nil {
		t.Fatalf("sign: %v", err)
	}
	return tx
}

func TestCreateSignVerify(t *testing.T) {
	issuer := keys.MustGenerate()
	tx := testCreate(t, issuer)
	if tx.ID == "" || len(tx.ID) != 64 {
		t.Fatalf("ID = %q, want 64 hex chars", tx.ID)
	}
	if err := VerifyFulfillments(tx); err != nil {
		t.Fatalf("verify: %v", err)
	}
	if tx.AssetID() != tx.ID {
		t.Errorf("CREATE AssetID = %s, want own ID", tx.AssetID())
	}
}

func TestTamperedPayloadFailsVerification(t *testing.T) {
	issuer := keys.MustGenerate()
	tx := testCreate(t, issuer)

	tampered := tx.Clone()
	tampered.Outputs[0].Amount = 9999
	if err := VerifyFulfillments(tampered); err == nil {
		t.Fatal("tampered amount should fail verification")
	}

	tampered = tx.Clone()
	tampered.Metadata["note"] = "changed"
	if err := VerifyFulfillments(tampered); err == nil {
		t.Fatal("tampered metadata should fail verification")
	}

	tampered = tx.Clone()
	other := keys.MustGenerate()
	tampered.Outputs[0].PublicKeys = []string{other.PublicBase58()}
	if err := VerifyFulfillments(tampered); err == nil {
		t.Fatal("rerouted output should fail verification")
	}
}

func TestIDIndependentOfFulfillment(t *testing.T) {
	issuer := keys.MustGenerate()
	a := NewCreate(issuer.PublicBase58(), map[string]any{"k": "v"}, 1, nil)
	b := NewCreate(issuer.PublicBase58(), map[string]any{"k": "v"}, 1, nil)
	if err := Sign(a, issuer); err != nil {
		t.Fatal(err)
	}
	if err := Sign(b, issuer); err != nil {
		t.Fatal(err)
	}
	// ed25519 signatures are deterministic, but the ID must be derived
	// from the unsigned payload regardless.
	if a.ID != b.ID {
		t.Errorf("identical payloads got different IDs: %s vs %s", a.ID, b.ID)
	}
	if a.ComputeID() != a.ID {
		t.Error("ComputeID changed after signing")
	}
}

func TestChildrenExcludedFromID(t *testing.T) {
	issuer := keys.MustGenerate()
	tx := testCreate(t, issuer)
	withChildren := tx.Clone()
	withChildren.Children = []string{"deadbeef"}
	if withChildren.ComputeID() != tx.ID {
		t.Error("assigning children must not change the transaction ID")
	}
	if err := VerifyFulfillments(withChildren); err != nil {
		t.Errorf("children assignment must not break signatures: %v", err)
	}
}

func TestCanonicalDeterministic(t *testing.T) {
	issuer := keys.MustGenerate()
	tx := testCreate(t, issuer)
	a := tx.MarshalCanonical()
	b := tx.Clone().MarshalCanonical()
	if string(a) != string(b) {
		t.Error("canonical form differs between clones")
	}
	var doc map[string]any
	if err := json.Unmarshal(a, &doc); err != nil {
		t.Fatalf("canonical form is not valid JSON: %v", err)
	}
}

func TestCanonicalSortsKeys(t *testing.T) {
	got := string(canonicalize(map[string]any{"b": 1.0, "a": []any{map[string]any{"z": nil, "y": "s"}}}))
	want := `{"a":[{"y":"s","z":null}],"b":1}`
	if got != want {
		t.Errorf("canonicalize = %s, want %s", got, want)
	}
}

func TestCanonicalPropertyRoundTrip(t *testing.T) {
	// For arbitrary string->string maps, canonical JSON must round-trip
	// and be insensitive to insertion order.
	f := func(m map[string]string) bool {
		doc := make(map[string]any, len(m))
		for k, v := range m {
			doc[k] = v
		}
		c1 := canonicalize(doc)
		var back map[string]any
		if err := json.Unmarshal(c1, &back); err != nil {
			return false
		}
		return string(canonicalize(back)) == string(c1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestToDocFromDocRoundTrip(t *testing.T) {
	issuer := keys.MustGenerate()
	tx := testCreate(t, issuer)
	back, err := FromDoc(tx.ToDoc())
	if err != nil {
		t.Fatal(err)
	}
	if back.ID != tx.ID || back.Operation != tx.Operation {
		t.Errorf("round trip lost identity: %+v", back)
	}
	if string(back.MarshalCanonical()) != string(tx.MarshalCanonical()) {
		t.Error("round trip changed canonical form")
	}
	if err := VerifyFulfillments(back); err != nil {
		t.Errorf("round-tripped transaction no longer verifies: %v", err)
	}
}

func TestTransferBuilderAndMultiOwner(t *testing.T) {
	alice, bob, carol := keys.MustGenerate(), keys.MustGenerate(), keys.MustGenerate()
	create := NewCreate(alice.PublicBase58(), map[string]any{"thing": 1}, 5, nil)
	if err := Sign(create, alice); err != nil {
		t.Fatal(err)
	}
	// Transfer 5 shares to joint ownership of bob+carol.
	tr := NewTransfer(create.ID,
		[]Spend{{Ref: OutputRef{TxID: create.ID, Index: 0}, Owners: []string{alice.PublicBase58()}}},
		[]*Output{{PublicKeys: []string{bob.PublicBase58(), carol.PublicBase58()}, Amount: 5, PrevOwners: []string{alice.PublicBase58()}}},
		nil)
	if err := Sign(tr, alice); err != nil {
		t.Fatal(err)
	}
	if err := VerifyFulfillments(tr); err != nil {
		t.Fatal(err)
	}
	// Spend the joint output: requires both signatures.
	tr2 := NewTransfer(create.ID,
		[]Spend{{Ref: OutputRef{TxID: tr.ID, Index: 0}, Owners: []string{bob.PublicBase58(), carol.PublicBase58()}}},
		[]*Output{{PublicKeys: []string{alice.PublicBase58()}, Amount: 5}},
		nil)
	if err := Sign(tr2, bob); err == nil {
		t.Fatal("signing a joint input without all keys should fail")
	}
	if err := Sign(tr2, bob, carol); err != nil {
		t.Fatal(err)
	}
	if err := VerifyFulfillments(tr2); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(tr2.Inputs[0].Fulfillment, "ms:") {
		t.Error("joint input should carry a multisig fulfillment")
	}
}

func TestMultisigMissingOwnerSignatureRejected(t *testing.T) {
	alice, bob, eve := keys.MustGenerate(), keys.MustGenerate(), keys.MustGenerate()
	tr := NewTransfer("someasset",
		[]Spend{{Ref: OutputRef{TxID: "ff", Index: 0}, Owners: []string{alice.PublicBase58(), bob.PublicBase58()}}},
		[]*Output{{PublicKeys: []string{eve.PublicBase58()}, Amount: 1}}, nil)
	if err := Sign(tr, alice, bob); err != nil {
		t.Fatal(err)
	}
	// Swap bob's signature for eve's: owner coverage must fail.
	ms, err := keys.ParseMultiSig(tr.Inputs[0].Fulfillment)
	if err != nil {
		t.Fatal(err)
	}
	payload := tr.SigningPayload()
	delete(ms.Sigs, bob.PublicBase58())
	ms.Sigs[eve.PublicBase58()] = eve.Sign(payload)
	tr.Inputs[0].Fulfillment = ms.String()
	if err := VerifyFulfillments(tr); err == nil {
		t.Fatal("fulfillment missing an owner's signature should fail")
	}
}

func TestBidBuilder(t *testing.T) {
	bidder, escrow := keys.MustGenerate(), keys.MustGenerate()
	asset := testCreate(t, bidder)
	bid := NewBid(bidder.PublicBase58(), asset.ID,
		Spend{Ref: OutputRef{TxID: asset.ID, Index: 0}, Owners: []string{bidder.PublicBase58()}},
		10, escrow.PublicBase58(), "rfq-id-123", map[string]any{"price": 250})
	if err := Sign(bid, bidder); err != nil {
		t.Fatal(err)
	}
	if err := VerifyFulfillments(bid); err != nil {
		t.Fatal(err)
	}
	if !bid.HasRef("rfq-id-123") {
		t.Error("BID must reference its REQUEST")
	}
	if bid.Outputs[0].PublicKeys[0] != escrow.PublicBase58() {
		t.Error("BID output must be owned by escrow")
	}
	if bid.Outputs[0].PrevOwners[0] != bidder.PublicBase58() {
		t.Error("BID output must record bidder as previous owner")
	}
}

func TestAcceptBidBuilder(t *testing.T) {
	requester, escrow := keys.MustGenerate(), keys.MustGenerate()
	bidder1, bidder2 := keys.MustGenerate(), keys.MustGenerate()

	mkBid := func(b *keys.KeyPair) *Transaction {
		asset := testCreate(t, b)
		bid := NewBid(b.PublicBase58(), asset.ID,
			Spend{Ref: OutputRef{TxID: asset.ID, Index: 0}, Owners: []string{b.PublicBase58()}},
			10, escrow.PublicBase58(), "rfq-1", nil)
		if err := Sign(bid, b); err != nil {
			t.Fatal(err)
		}
		return bid
	}
	win, lose := mkBid(bidder1), mkBid(bidder2)

	acc, err := NewAcceptBid(requester.PublicBase58(), escrow.PublicBase58(), "rfq-1", win, []*Transaction{lose}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := Sign(acc, escrow, requester); err != nil {
		t.Fatal(err)
	}
	if err := VerifyFulfillments(acc); err != nil {
		t.Fatal(err)
	}
	if len(acc.Inputs) != 2 || len(acc.Outputs) != 2 {
		t.Fatalf("inputs/outputs = %d/%d, want 2/2", len(acc.Inputs), len(acc.Outputs))
	}
	// All parent outputs stay escrow-held; children realize them.
	if acc.Outputs[0].PublicKeys[0] != escrow.PublicBase58() {
		t.Error("winning output must stay under escrow pending child TRANSFER")
	}
	if acc.Outputs[0].PrevOwners[0] != bidder1.PublicBase58() {
		t.Error("winning output must record the winning bidder")
	}
	if acc.Outputs[1].PublicKeys[0] != escrow.PublicBase58() {
		t.Error("losing output must stay under escrow pending RETURN")
	}
	if acc.Outputs[1].PrevOwners[0] != bidder2.PublicBase58() {
		t.Error("losing output must record the original bidder")
	}
	if acc.Asset.ID != win.ID {
		t.Error("ACCEPT_BID asset must anchor to the winning bid")
	}
}

func TestAcceptBidRejectsBidWithoutPrevOwner(t *testing.T) {
	requester, escrow, bidder := keys.MustGenerate(), keys.MustGenerate(), keys.MustGenerate()
	bad := testCreate(t, bidder) // a CREATE, not a BID: no PrevOwners
	if _, err := NewAcceptBid(requester.PublicBase58(), escrow.PublicBase58(), "r", bad, nil, nil); err == nil {
		t.Fatal("expected error for bid lacking previous owner")
	}
}

func TestReturnBuilder(t *testing.T) {
	escrow, bidder := keys.MustGenerate(), keys.MustGenerate()
	ret := NewReturn(escrow.PublicBase58(), "accept-id", 1, bidder.PublicBase58(), 10, "asset-id", nil)
	if err := Sign(ret, escrow); err != nil {
		t.Fatal(err)
	}
	if err := VerifyFulfillments(ret); err != nil {
		t.Fatal(err)
	}
	if ret.Inputs[0].Fulfills.TxID != "accept-id" || ret.Inputs[0].Fulfills.Index != 1 {
		t.Errorf("RETURN must spend the parent output: %+v", ret.Inputs[0].Fulfills)
	}
	if !ret.HasRef("accept-id") {
		t.Error("RETURN must reference its parent")
	}
}

func TestSignMissingKey(t *testing.T) {
	alice, bob := keys.MustGenerate(), keys.MustGenerate()
	tx := NewCreate(alice.PublicBase58(), nil, 1, nil)
	if err := Sign(tx, bob); err == nil {
		t.Fatal("signing with the wrong key should fail")
	}
}

func TestHelpers(t *testing.T) {
	issuer := keys.MustGenerate()
	tx := testCreate(t, issuer)
	if got := tx.OutputAmount(); got != 10 {
		t.Errorf("OutputAmount = %d, want 10", got)
	}
	if refs := tx.SpentRefs(); len(refs) != 0 {
		t.Errorf("CREATE should spend nothing, got %v", refs)
	}
	owners := tx.OwnerSet()
	if len(owners) != 1 || owners[0] != issuer.PublicBase58() {
		t.Errorf("OwnerSet = %v", owners)
	}
	if !tx.Outputs[0].OwnedBy(issuer.PublicBase58()) {
		t.Error("OwnedBy should find issuer")
	}
	if tx.Outputs[0].OwnedBy("someone-else") {
		t.Error("OwnedBy should reject stranger")
	}
	if !IsNativeOp(OpBid) || IsNativeOp("NOPE") {
		t.Error("IsNativeOp misclassifies")
	}
	if len(Operations()) != 6 {
		t.Errorf("Operations() = %v", Operations())
	}
}

func TestCloneIsDeep(t *testing.T) {
	issuer := keys.MustGenerate()
	tx := testCreate(t, issuer)
	c := tx.Clone()
	c.Outputs[0].PublicKeys[0] = "mutated"
	c.Asset.Data["capabilities"].([]any)[0] = "mutated"
	c.Metadata["note"] = "mutated"
	if tx.Outputs[0].PublicKeys[0] == "mutated" {
		t.Error("clone shares output key slice")
	}
	if tx.Asset.Data["capabilities"].([]any)[0] == "mutated" {
		t.Error("clone shares asset data")
	}
	if tx.Metadata["note"] == "mutated" {
		t.Error("clone shares metadata")
	}
	if (*Transaction)(nil).Clone() != nil {
		t.Error("nil clone should be nil")
	}
}

func TestErrorStrings(t *testing.T) {
	errs := []error{
		&SchemaError{Op: "BID", Path: "/outputs/0", Msg: "missing"},
		&ValidationError{Op: "BID", Cond: "BID.6", Reason: "not escrow"},
		&ValidationError{Op: "BID", Reason: "generic"},
		&InputDoesNotExistError{TxID: "abcdef0123456789"},
		&DoubleSpendError{Ref: OutputRef{TxID: "abcdef0123456789", Index: 2}, SpentBy: "fedcba9876543210"},
		&DuplicateTransactionError{TxID: "abcdef0123456789", Reason: "accept exists"},
		&InsufficientCapabilitiesError{Missing: []string{"cnc"}},
		&AmountError{Op: "TRANSFER", Want: 5, Got: 7},
	}
	for _, e := range errs {
		if e.Error() == "" {
			t.Errorf("%T has empty message", e)
		}
	}
}

func TestDocTypesAreJSONSafe(t *testing.T) {
	issuer := keys.MustGenerate()
	tx := testCreate(t, issuer)
	doc := tx.ToDoc()
	// Everything in a doc must be JSON-native so the schema validator
	// and docstore can treat documents uniformly.
	var walk func(v any) bool
	walk = func(v any) bool {
		switch x := v.(type) {
		case nil, bool, string, float64:
			return true
		case map[string]any:
			for _, e := range x {
				if !walk(e) {
					return false
				}
			}
			return true
		case []any:
			for _, e := range x {
				if !walk(e) {
					return false
				}
			}
			return true
		default:
			t.Errorf("non-JSON type %T in doc", v)
			return false
		}
	}
	walk(doc)
	if !reflect.DeepEqual(doc["operation"], "CREATE") {
		t.Errorf("operation = %#v", doc["operation"])
	}
}
