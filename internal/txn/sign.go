package txn

import (
	"fmt"
	"strings"

	"smartchaindb/internal/keys"
)

// Sign fulfills every input of the transaction with signatures from the
// supplied key pairs and stamps the transaction ID. Each input needs a
// signature from every key listed in its OwnersBefore; signers not
// relevant to an input are ignored. Sign must be called after the
// transaction is otherwise complete — any later mutation invalidates
// both the signatures and the ID.
func Sign(t *Transaction, signers ...*keys.KeyPair) error {
	byPub := make(map[string]*keys.KeyPair, len(signers))
	for _, kp := range signers {
		byPub[kp.PublicBase58()] = kp
	}
	payload := t.SigningPayload()
	for i, in := range t.Inputs {
		if len(in.OwnersBefore) == 0 {
			return fmt.Errorf("txn: input %d has no owners_before", i)
		}
		need := make([]*keys.KeyPair, 0, len(in.OwnersBefore))
		for _, pub := range in.OwnersBefore {
			kp, ok := byPub[pub]
			if !ok {
				return fmt.Errorf("txn: input %d: no private key for owner %s", i, abbrev(pub))
			}
			need = append(need, kp)
		}
		if len(need) == 1 {
			in.Fulfillment = need[0].Sign(payload)
		} else {
			in.Fulfillment = keys.SignMulti(payload, len(need), need...).String()
		}
	}
	t.SetID()
	return nil
}

// VerifyFulfillments checks validation condition C(5) shared by all
// types: for every input, verify(s_i, pb_i, m_i) must hold. It also
// re-verifies the transaction ID so a tampered payload fails closed.
func VerifyFulfillments(t *Transaction) error {
	if !t.VerifyID() {
		return &ValidationError{Op: t.Operation, Reason: "transaction id does not match payload"}
	}
	payload := t.SigningPayload()
	for i, in := range t.Inputs {
		if err := verifyInput(in, payload); err != nil {
			return &ValidationError{Op: t.Operation, Reason: fmt.Sprintf("input %d: %v", i, err)}
		}
	}
	return nil
}

func verifyInput(in *Input, payload []byte) error {
	if in.Fulfillment == "" {
		return fmt.Errorf("missing fulfillment")
	}
	if strings.HasPrefix(in.Fulfillment, "ms:") {
		ms, err := keys.ParseMultiSig(in.Fulfillment)
		if err != nil {
			return err
		}
		// Every listed previous owner must have contributed a valid
		// signature.
		for _, pub := range in.OwnersBefore {
			sig, ok := ms.Sigs[pub]
			if !ok || !keys.Verify(sig, pub, payload) {
				return fmt.Errorf("missing or invalid signature from owner %s", abbrev(pub))
			}
		}
		if !ms.Verify(payload) {
			return fmt.Errorf("multisig threshold not met")
		}
		return nil
	}
	if len(in.OwnersBefore) != 1 {
		return fmt.Errorf("single signature but %d owners", len(in.OwnersBefore))
	}
	if !keys.Verify(in.Fulfillment, in.OwnersBefore[0], payload) {
		return fmt.Errorf("invalid signature from owner %s", abbrev(in.OwnersBefore[0]))
	}
	return nil
}

func abbrev(s string) string {
	if len(s) <= 8 {
		return s
	}
	return s[:8] + "..."
}
