package txn

import (
	"fmt"
	"strings"

	"smartchaindb/internal/keys"
)

// Sign fulfills every input of the transaction with signatures from the
// supplied key pairs and stamps the transaction ID. Each input needs a
// signature from every key listed in its OwnersBefore; signers not
// relevant to an input are ignored. Sign must be called after the
// transaction is otherwise complete — any later mutation invalidates
// both the signatures and the ID (re-signing is always safe: Sign
// drops any memoized encoding first, so the payload reflects the
// current content).
func Sign(t *Transaction, signers ...*keys.KeyPair) error {
	t.Invalidate()
	byPub := make(map[string]*keys.KeyPair, len(signers))
	for _, kp := range signers {
		byPub[kp.PublicBase58()] = kp
	}
	payload := t.SigningPayload()
	for i, in := range t.Inputs {
		if len(in.OwnersBefore) == 0 {
			return fmt.Errorf("txn: input %d has no owners_before", i)
		}
		need := make([]*keys.KeyPair, 0, len(in.OwnersBefore))
		for _, pub := range in.OwnersBefore {
			kp, ok := byPub[pub]
			if !ok {
				return fmt.Errorf("txn: input %d: no private key for owner %s", i, abbrev(pub))
			}
			need = append(need, kp)
		}
		if len(need) == 1 {
			in.Fulfillment = need[0].Sign(payload)
		} else {
			in.Fulfillment = keys.SignMulti(payload, len(need), need...).String()
		}
	}
	t.SetID()
	return nil
}

// VerifyFulfillments checks validation condition C(5) shared by all
// types: for every input, verify(s_i, pb_i, m_i) must hold. It also
// re-verifies the transaction ID so a tampered payload fails closed.
// A successful verdict is memoized on the transaction (dropped by
// Invalidate/Sign/Clone), so re-running the condition during block
// validation after batch admission already proved it costs O(1).
// The free function runs under the package default cache scope; a
// validator with its own scope calls the CacheScope method instead.
func VerifyFulfillments(t *Transaction) error {
	return (*CacheScope)(nil).VerifyFulfillments(t)
}

// VerifyFulfillments is the scoped form: memo lookups, verdict
// memoization, and hit/miss tallies all follow this scope's policy. A
// disabled scope re-verifies from scratch every time and records
// nothing (nil-safe; nil = the default scope, caching on).
func (sc *CacheScope) VerifyFulfillments(t *Transaction) error {
	if t.sigVerified(sc) {
		return nil
	}
	if !t.verifyID(sc) {
		return &ValidationError{Op: t.Operation, Reason: "transaction id does not match payload"}
	}
	payload := t.signingPayload(sc)
	for i, in := range t.Inputs {
		if err := verifyInput(in, payload); err != nil {
			return &ValidationError{Op: t.Operation, Reason: fmt.Sprintf("input %d: %v", i, err)}
		}
	}
	t.markSigVerified(sc)
	return nil
}

// BatchVerifyStats reports what one VerifyFulfillmentsBatch run did.
type BatchVerifyStats struct {
	// Reused counts transactions skipped entirely because their
	// verdict was already memoized from an earlier verification.
	Reused int
	// Sig is the signature-level accounting from keys.VerifyBatch.
	Sig keys.BatchStats
}

// VerifyFulfillmentsBatch verifies the fulfillments of a whole
// admission batch as one unit: every transaction's ID check runs
// first (memoizing its signing payload as a side effect), then all
// signature triples are collected into a single keys.VerifyBatch
// call — deduplicating the identical (pub, payload) pairs a
// multi-input transaction signs once per input — and verified across
// up to workers goroutines. Per-transaction verdicts match calling
// VerifyFulfillments on each transaction (pinned by a differential
// test); successes are memoized the same way. The errs map carries an
// entry only for failing transaction IDs; duplicate IDs in the batch
// share one verdict. The free function runs under the package default
// cache scope.
func VerifyFulfillmentsBatch(ts []*Transaction, workers int) (errs map[string]error, stats BatchVerifyStats) {
	return (*CacheScope)(nil).VerifyFulfillmentsBatch(ts, workers)
}

// VerifyFulfillmentsBatch is the scoped form of the batch verifier
// (nil-safe; nil = the default scope, caching on). A disabled scope
// never reuses memoized verdicts, so Reused stays 0 and every
// signature is re-checked.
func (sc *CacheScope) VerifyFulfillmentsBatch(ts []*Transaction, workers int) (errs map[string]error, stats BatchVerifyStats) {
	errs = make(map[string]error)
	type pending struct {
		t      *Transaction
		inputs []pendingInput
	}
	var tasks []keys.SigTask
	work := make([]pending, 0, len(ts))

	for _, t := range ts {
		if t == nil {
			continue
		}
		if _, done := errs[t.ID]; done {
			continue // duplicate ID in batch: first verdict stands
		}
		if t.sigVerified(sc) {
			stats.Reused++
			continue
		}
		if !t.verifyID(sc) {
			errs[t.ID] = &ValidationError{Op: t.Operation, Reason: "transaction id does not match payload"}
			continue
		}
		payload := t.signingPayload(sc)
		p := pending{t: t}
		mark := len(tasks)
		failed := false
		for i, in := range t.Inputs {
			pi, err := collectInputTasks(in, payload, &tasks)
			if err != nil {
				errs[t.ID] = &ValidationError{Op: t.Operation, Reason: fmt.Sprintf("input %d: %v", i, err)}
				tasks = tasks[:mark] // discard this tx's triples
				failed = true
				break
			}
			p.inputs = append(p.inputs, pi)
		}
		if failed {
			continue
		}
		work = append(work, p)
	}

	ok, sigStats := keys.VerifyBatch(tasks, workers)
	stats.Sig = sigStats

	for _, p := range work {
		if err := judgePending(p.t, p.inputs, ok); err != nil {
			errs[p.t.ID] = err
			continue
		}
		p.t.markSigVerified(sc)
	}
	return errs, stats
}

// pendingInput maps one input's structure onto its slice of the flat
// task list so the post-verification judgment can replay verifyInput's
// exact semantics from the batched verdicts.
type pendingInput struct {
	multi      *keys.MultiSig
	owners     []string // OwnersBefore, aligned with ownerTask
	ownerTask  []int    // task index per owner; -1 = owner absent from multisig
	entryTasks []int    // one task per ms.Sigs entry (threshold tally)
	single     int      // single-sig task index; -1 for multisig
}

// collectInputTasks performs verifyInput's parse-time checks and
// appends the input's signature triples to tasks. Errors returned here
// are exactly the ones verifyInput reports before any signature math.
func collectInputTasks(in *Input, payload []byte, tasks *[]keys.SigTask) (pendingInput, error) {
	pi := pendingInput{single: -1}
	if in.Fulfillment == "" {
		return pi, fmt.Errorf("missing fulfillment")
	}
	if strings.HasPrefix(in.Fulfillment, "ms:") {
		ms, err := keys.ParseMultiSig(in.Fulfillment)
		if err != nil {
			return pi, err
		}
		pi.multi = ms
		pi.owners = in.OwnersBefore
		// One task per ms.Sigs entry, mirroring MultiSig.Verify's tally
		// where every map entry counts at most once toward the
		// threshold; owners are then resolved onto those entries.
		byPub := make(map[string]int, len(ms.Sigs))
		for pub, sig := range ms.Sigs {
			byPub[pub] = len(*tasks)
			pi.entryTasks = append(pi.entryTasks, len(*tasks))
			*tasks = append(*tasks, keys.SigTask{Sig: sig, Pub: pub, Msg: payload})
		}
		pi.ownerTask = make([]int, len(in.OwnersBefore))
		for i, pub := range in.OwnersBefore {
			if ti, ok := byPub[pub]; ok {
				pi.ownerTask[i] = ti
			} else {
				pi.ownerTask[i] = -1
			}
		}
		return pi, nil
	}
	if len(in.OwnersBefore) != 1 {
		return pi, fmt.Errorf("single signature but %d owners", len(in.OwnersBefore))
	}
	pi.owners = in.OwnersBefore
	pi.single = len(*tasks)
	*tasks = append(*tasks, keys.SigTask{Sig: in.Fulfillment, Pub: in.OwnersBefore[0], Msg: payload})
	return pi, nil
}

// judgePending replays verifyInput's verdict logic over the batched
// signature results for each of t's inputs.
func judgePending(t *Transaction, inputs []pendingInput, ok []bool) error {
	fail := func(i int, err error) error {
		return &ValidationError{Op: t.Operation, Reason: fmt.Sprintf("input %d: %v", i, err)}
	}
	for i, pi := range inputs {
		if pi.multi != nil {
			for j, pub := range pi.owners {
				if ti := pi.ownerTask[j]; ti < 0 || !ok[ti] {
					return fail(i, fmt.Errorf("missing or invalid signature from owner %s", abbrev(pub)))
				}
			}
			valid := 0
			for _, ti := range pi.entryTasks {
				if ok[ti] {
					valid++
				}
			}
			ms := pi.multi
			if ms.Threshold <= 0 || len(ms.Sigs) < ms.Threshold || valid < ms.Threshold {
				return fail(i, fmt.Errorf("multisig threshold not met"))
			}
			continue
		}
		if !ok[pi.single] {
			return fail(i, fmt.Errorf("invalid signature from owner %s", abbrev(pi.owners[0])))
		}
	}
	return nil
}

func verifyInput(in *Input, payload []byte) error {
	if in.Fulfillment == "" {
		return fmt.Errorf("missing fulfillment")
	}
	if strings.HasPrefix(in.Fulfillment, "ms:") {
		ms, err := keys.ParseMultiSig(in.Fulfillment)
		if err != nil {
			return err
		}
		// Every listed previous owner must have contributed a valid
		// signature.
		for _, pub := range in.OwnersBefore {
			sig, ok := ms.Sigs[pub]
			if !ok || !keys.Verify(sig, pub, payload) {
				return fmt.Errorf("missing or invalid signature from owner %s", abbrev(pub))
			}
		}
		if !ms.Verify(payload) {
			return fmt.Errorf("multisig threshold not met")
		}
		return nil
	}
	if len(in.OwnersBefore) != 1 {
		return fmt.Errorf("single signature but %d owners", len(in.OwnersBefore))
	}
	if !keys.Verify(in.Fulfillment, in.OwnersBefore[0], payload) {
		return fmt.Errorf("invalid signature from owner %s", abbrev(in.OwnersBefore[0]))
	}
	return nil
}

func abbrev(s string) string {
	if len(s) <= 8 {
		return s
	}
	return s[:8] + "..."
}
