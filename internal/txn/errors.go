package txn

import "fmt"

// The error taxonomy mirrors the exceptions raised by the paper's
// validation algorithms (Algorithms 1–3): schema violations, semantic
// validation failures, missing inputs, double spends, duplicate
// nested parents, and insufficient bid capabilities.

// SchemaError reports a structural violation found by Algorithm 1.
type SchemaError struct {
	Op   string // operation whose schema was checked
	Path string // JSON-pointer-ish location of the offending field
	Msg  string
}

func (e *SchemaError) Error() string {
	return fmt.Sprintf("schema validation failed for %s at %s: %s", e.Op, e.Path, e.Msg)
}

// ValidationError reports a semantic validation condition failure.
type ValidationError struct {
	Op     string // operation being validated
	Cond   string // which condition of C_α failed, e.g. "BID.6"
	Reason string
}

func (e *ValidationError) Error() string {
	if e.Cond != "" {
		return fmt.Sprintf("validation failed for %s (condition %s): %s", e.Op, e.Cond, e.Reason)
	}
	return fmt.Sprintf("validation failed for %s: %s", e.Op, e.Reason)
}

// InputDoesNotExistError reports that a referenced or spent transaction
// is not committed (Algorithm 2, line 4; Algorithm 3, line 5).
type InputDoesNotExistError struct {
	TxID string
}

func (e *InputDoesNotExistError) Error() string {
	return fmt.Sprintf("input transaction %s does not exist or is not committed", abbrev(e.TxID))
}

// DoubleSpendError reports an attempt to spend an already-spent output.
type DoubleSpendError struct {
	Ref     OutputRef
	SpentBy string // ID of the transaction that already spent it
}

func (e *DoubleSpendError) Error() string {
	return fmt.Sprintf("output %s already spent by %s", e.Ref, abbrev(e.SpentBy))
}

// DuplicateTransactionError reports a second ACCEPT_BID for the same
// REQUEST (Algorithm 3, line 10) or a resubmitted transaction ID.
type DuplicateTransactionError struct {
	TxID   string
	Reason string
}

func (e *DuplicateTransactionError) Error() string {
	return fmt.Sprintf("duplicate transaction %s: %s", abbrev(e.TxID), e.Reason)
}

// InsufficientCapabilitiesError reports that a BID's asset capabilities
// do not cover the REQUEST's required capabilities (Algorithm 2,
// line 11; validation condition BID.7).
type InsufficientCapabilitiesError struct {
	Missing []string
}

func (e *InsufficientCapabilitiesError) Error() string {
	return fmt.Sprintf("bid asset lacks required capabilities %v", e.Missing)
}

// AmountError reports share-conservation violations.
type AmountError struct {
	Op   string
	Want uint64
	Got  uint64
}

func (e *AmountError) Error() string {
	return fmt.Sprintf("%s amount mismatch: inputs hold %d shares, outputs claim %d", e.Op, e.Want, e.Got)
}
