package storage

// The two-phase-commit log. Both backends store 2PC records as
// ordinary versioned documents in the reserved TwoPCCollection; the
// disk engine additionally frames them with the dedicated WAL ops
// (opPrepare, opDecide) so the log's durability points are
// distinguishable record types in the byte stream. Issued inside an
// open Group, a log write joins the group's single atomic WAL record —
// which is how a participant makes "apply the staged ops + record the
// decision + drop the prepare" one crash-atomic unit.

// LogPrepare durably records a participant PREPARE.
func (e *Engine) LogPrepare(key string, doc map[string]any) error {
	return e.logTwoPC(opPrepare, key, doc)
}

// LogDecision durably records a commit/abort decision.
func (e *Engine) LogDecision(key string, doc map[string]any) error {
	return e.logTwoPC(opDecide, key, doc)
}

func (e *Engine) logTwoPC(op byte, key string, doc map[string]any) error {
	data, err := marshalDoc(doc)
	if err != nil {
		return err
	}
	return e.apply(mutation{op: op, coll: TwoPCCollection, key: key, doc: data}, func() error {
		return e.mem.coll(TwoPCCollection).Put(key, doc)
	})
}

// ClearTwoPC removes a 2PC record; a missing key is a no-op.
func (e *Engine) ClearTwoPC(key string) error {
	return e.Collection(TwoPCCollection).Delete(key)
}

// TwoPCScan visits surviving 2PC records in insertion order.
func (e *Engine) TwoPCScan(fn func(key string, doc map[string]any) bool) {
	e.Collection(TwoPCCollection).Scan(fn)
}

// LogPrepare durably records a participant PREPARE (volatile on the
// memory backend, like everything else it stores).
func (m *Memory) LogPrepare(key string, doc map[string]any) error {
	return m.coll(TwoPCCollection).Put(key, doc)
}

// LogDecision records a commit/abort decision.
func (m *Memory) LogDecision(key string, doc map[string]any) error {
	return m.coll(TwoPCCollection).Put(key, doc)
}

// ClearTwoPC removes a 2PC record; a missing key is a no-op.
func (m *Memory) ClearTwoPC(key string) error {
	return m.coll(TwoPCCollection).Delete(key)
}

// TwoPCScan visits surviving 2PC records in insertion order.
func (m *Memory) TwoPCScan(fn func(key string, doc map[string]any) bool) {
	m.coll(TwoPCCollection).Scan(fn)
}
