package storage

import (
	"os"
	"path/filepath"
	"testing"
)

func scanTwoPC(b Backend) map[string]map[string]any {
	out := make(map[string]map[string]any)
	b.TwoPCScan(func(key string, doc map[string]any) bool {
		out[key] = doc
		return true
	})
	return out
}

// 2PC records are ordinary durable state: they survive reopen (WAL
// replay), survive compaction (segment round-trip), and a cleared
// record stays gone.
func TestTwoPCLogDurability(t *testing.T) {
	dir := t.TempDir()
	e, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	prep := map[string]any{"kind": "prepare", "tx": "t1", "shard": float64(2)}
	dec := map[string]any{"kind": "decision", "tx": "t0", "outcome": "commit"}
	if err := e.LogPrepare("p:t1", prep); err != nil {
		t.Fatal(err)
	}
	if err := e.LogDecision("d:t0", dec); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	e, err = Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	got := scanTwoPC(e)
	if len(got) != 2 {
		t.Fatalf("after reopen: %d records, want 2 (%v)", len(got), got)
	}
	if got["p:t1"]["kind"] != "prepare" || got["d:t0"]["outcome"] != "commit" {
		t.Fatalf("records corrupted across reopen: %v", got)
	}

	// Compaction folds the records into a segment; they still replay.
	if err := e.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := e.ClearTwoPC("p:t1"); err != nil {
		t.Fatal(err)
	}
	if err := e.ClearTwoPC("missing"); err != nil {
		t.Fatalf("clearing a missing key: %v", err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	e, err = Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	got = scanTwoPC(e)
	if len(got) != 1 || got["d:t0"] == nil {
		t.Fatalf("after clear+reopen: %v, want only d:t0", got)
	}
}

// A 2PC log write issued inside an open Group joins the group's
// atomic WAL record: a crash that truncates mid-record loses the
// collection write and the prepare together, never one of them.
func TestTwoPCGroupAtomicity(t *testing.T) {
	dir := t.TempDir()
	e, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	// A baseline group so the WAL has a committed prefix.
	if err := e.Group(func() error {
		return e.Collection("c").Put("base", map[string]any{"n": float64(0)})
	}); err != nil {
		t.Fatal(err)
	}
	cut := e.Stats().WALBytes

	if err := e.Group(func() error {
		if err := e.Collection("c").Put("x", map[string]any{"n": float64(1)}); err != nil {
			return err
		}
		return e.LogPrepare("p:t9", map[string]any{"kind": "prepare"})
	}); err != nil {
		t.Fatal(err)
	}
	e.Close()

	// Chop the tail mid-record: everything after the first group, plus
	// one torn byte, must vanish as a unit on replay.
	if err := os.Truncate(filepath.Join(dir, walName(0)), cut+1); err != nil {
		t.Fatal(err)
	}
	e, err = Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if _, ok := e.Collection("c").Get("x"); ok {
		t.Fatal("torn group leaked the collection write")
	}
	if got := scanTwoPC(e); len(got) != 0 {
		t.Fatalf("torn group leaked the prepare record: %v", got)
	}
	if _, ok := e.Collection("c").Get("base"); !ok {
		t.Fatal("committed prefix lost")
	}
}

// The memory backend serves the same 2PC surface, volatile.
func TestTwoPCMemoryBackend(t *testing.T) {
	m := NewMemory()
	if err := m.LogPrepare("p:a", map[string]any{"kind": "prepare"}); err != nil {
		t.Fatal(err)
	}
	if err := m.LogDecision("d:a", map[string]any{"kind": "decision"}); err != nil {
		t.Fatal(err)
	}
	if got := scanTwoPC(m); len(got) != 2 {
		t.Fatalf("records = %v, want 2", got)
	}
	if err := m.ClearTwoPC("p:a"); err != nil {
		t.Fatal(err)
	}
	if got := scanTwoPC(m); len(got) != 1 || got["d:a"] == nil {
		t.Fatalf("after clear: %v, want only d:a", got)
	}
}
