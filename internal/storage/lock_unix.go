package storage

import (
	"fmt"
	"os"
	"path/filepath"
	"syscall"
)

// lockDir takes an exclusive advisory lock on <dir>/LOCK for the
// engine's lifetime. A second Open of the same directory — another
// process, or a stray second engine in this one — fails immediately
// instead of corrupting the shared WAL.
func lockDir(dir string) (*os.File, error) {
	f, err := os.OpenFile(filepath.Join(dir, "LOCK"), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		f.Close()
		return nil, fmt.Errorf("storage: %s is locked by another engine: %w", dir, err)
	}
	return f, nil
}
