package storage

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
)

// forEachMVCCBackend runs fn over both backends so the height-stamped
// read contract is pinned to the Backend interface, not one
// implementation.
func forEachMVCCBackend(t *testing.T, fn func(t *testing.T, b Backend)) {
	t.Run("memory", func(t *testing.T) { fn(t, NewMemory()) })
	t.Run("disk", func(t *testing.T) {
		eng, err := Open(t.TempDir(), Options{NoSync: true})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { eng.Close() })
		fn(t, eng)
	})
}

func mustPut(t *testing.T, c Collection, key string, doc map[string]any) {
	t.Helper()
	if err := c.Put(key, doc); err != nil {
		t.Fatal(err)
	}
}

func docAt(t *testing.T, c Collection, key string, h int64) map[string]any {
	t.Helper()
	doc, ok := c.GetAt(key, h)
	if !ok {
		t.Fatalf("GetAt(%q, %d): missing", key, h)
	}
	return doc
}

func TestMVCCBlockVisibility(t *testing.T) {
	forEachMVCCBackend(t, func(t *testing.T, b Backend) {
		c := b.Collection("c")
		// Standalone writes (no open block) are immediately visible.
		mustPut(t, c, "k1", map[string]any{"v": 0.0})
		if got := docAt(t, c, "k1", b.Visible())["v"]; got != 0.0 {
			t.Fatalf("standalone write invisible at Visible(): v=%v", got)
		}

		b.BeginBlock(1)
		mustPut(t, c, "k1", map[string]any{"v": 1.0})
		mustPut(t, c, "k2", map[string]any{"v": 1.0})
		// Mid-block: the writer view sees the block's writes...
		if doc, ok := c.Get("k2"); !ok || doc["v"] != 1.0 {
			t.Fatalf("writer view misses in-flight write: %v %v", doc, ok)
		}
		if got := docAt(t, c, "k1", HeightLatest)["v"]; got != 1.0 {
			t.Fatalf("GetAt(HeightLatest) = %v, want writer view", got)
		}
		// ...but the snapshot at the previous height does not.
		if _, ok := c.GetAt("k2", 0); ok {
			t.Fatal("unsealed write visible at height 0")
		}
		if got := docAt(t, c, "k1", 0)["v"]; got != 0.0 {
			t.Fatalf("snapshot at 0 sees in-flight overwrite: v=%v", got)
		}
		b.SealBlock(1)

		if got := b.Visible(); got != 1 {
			t.Fatalf("Visible after seal = %d, want 1", got)
		}
		// The sealed block is visible at its height, and height 0 still
		// reads the pre-block state.
		if got := docAt(t, c, "k2", 1)["v"]; got != 1.0 {
			t.Fatalf("sealed write invisible at 1: v=%v", got)
		}
		if got := docAt(t, c, "k1", 0)["v"]; got != 0.0 {
			t.Fatalf("height 0 no longer stable after seal: v=%v", got)
		}
		if got, want := c.KeysAt(0), []string{"k1"}; !reflect.DeepEqual(got, want) {
			t.Fatalf("KeysAt(0) = %v, want %v", got, want)
		}
		if got, want := c.KeysAt(1), []string{"k1", "k2"}; !reflect.DeepEqual(got, want) {
			t.Fatalf("KeysAt(1) = %v, want %v", got, want)
		}
		if got := c.LenAt(0); got != 1 {
			t.Fatalf("LenAt(0) = %d, want 1", got)
		}
	})
}

func TestMVCCDeleteAndReinsert(t *testing.T) {
	forEachMVCCBackend(t, func(t *testing.T, b Backend) {
		c := b.Collection("c")
		b.SetRetain(64)
		b.BeginBlock(1)
		mustPut(t, c, "a", map[string]any{"v": 1.0})
		mustPut(t, c, "b", map[string]any{"v": 1.0})
		b.SealBlock(1)
		b.BeginBlock(2)
		if err := c.Delete("a"); err != nil {
			t.Fatal(err)
		}
		b.SealBlock(2)
		b.BeginBlock(3)
		mustPut(t, c, "a", map[string]any{"v": 3.0})
		b.SealBlock(3)

		if got := docAt(t, c, "a", 1)["v"]; got != 1.0 {
			t.Fatalf("a@1 = %v, want 1", got)
		}
		if _, ok := c.GetAt("a", 2); ok {
			t.Fatal("deleted key visible at its delete height")
		}
		if got := docAt(t, c, "a", 3)["v"]; got != 3.0 {
			t.Fatalf("a@3 = %v, want 3", got)
		}
		// Reinsertion re-enters iteration order at the back, and each
		// height scans exactly its own live set — no duplicates from
		// the delete/reinsert churn.
		if got, want := c.KeysAt(1), []string{"a", "b"}; !reflect.DeepEqual(got, want) {
			t.Fatalf("KeysAt(1) = %v, want %v", got, want)
		}
		if got, want := c.KeysAt(2), []string{"b"}; !reflect.DeepEqual(got, want) {
			t.Fatalf("KeysAt(2) = %v, want %v", got, want)
		}
		if got, want := c.KeysAt(3), []string{"b", "a"}; !reflect.DeepEqual(got, want) {
			t.Fatalf("KeysAt(3) = %v, want %v", got, want)
		}
		seen := map[string]int{}
		c.ScanAt(3, func(key string, doc map[string]any) bool {
			seen[key]++
			return true
		})
		if seen["a"] != 1 || seen["b"] != 1 || len(seen) != 2 {
			t.Fatalf("ScanAt(3) visit counts = %v", seen)
		}
	})
}

func TestMVCCRetentionFloor(t *testing.T) {
	forEachMVCCBackend(t, func(t *testing.T, b Backend) {
		c := b.Collection("c")
		b.SetRetain(2)
		for h := int64(1); h <= 6; h++ {
			b.BeginBlock(h)
			mustPut(t, c, "k", map[string]any{"v": float64(h)})
			mustPut(t, c, fmt.Sprintf("k%d", h), map[string]any{"v": float64(h)})
			b.SealBlock(h)
		}
		if got := b.Visible(); got != 6 {
			t.Fatalf("Visible = %d, want 6", got)
		}
		// retain=2 keeps heights {5, 6}: the floor is visible-retain+1.
		if got := b.Floor(); got != 5 {
			t.Fatalf("Floor = %d, want 5", got)
		}
		for h := int64(5); h <= 6; h++ {
			if got := docAt(t, c, "k", h)["v"]; got != float64(h) {
				t.Fatalf("k@%d = %v, want %v", h, got, float64(h))
			}
			if got := c.LenAt(h); got != int(h)+1 {
				t.Fatalf("LenAt(%d) = %d, want %d", h, got, h+1)
			}
		}
		// The writer view never expires.
		if got := docAt(t, c, "k", HeightLatest)["v"]; got != 6.0 {
			t.Fatalf("k@latest = %v, want 6", got)
		}
	})
}

func TestMVCCDiskReopenRecoversHeights(t *testing.T) {
	dir := t.TempDir()
	eng, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	c := eng.Collection("c")
	for h := int64(1); h <= 3; h++ {
		eng.BeginBlock(h)
		if err := eng.Group(func() error {
			return c.Put(fmt.Sprintf("k%d", h), map[string]any{"v": float64(h)})
		}); err != nil {
			t.Fatal(err)
		}
		eng.SealBlock(h)
	}
	wantKeys := c.Keys()
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}

	reopen := func(stage string) {
		eng2, err := Open(dir, Options{NoSync: true})
		if err != nil {
			t.Fatalf("%s: %v", stage, err)
		}
		defer eng2.Close()
		c2 := eng2.Collection("c")
		// The height clock recovers from the persisted records; version
		// history does not survive a restart, so the floor pins to the
		// recovered visible height.
		if got := eng2.Visible(); got != 3 {
			t.Fatalf("%s: Visible after reopen = %d, want 3", stage, got)
		}
		if got := eng2.Floor(); got != 3 {
			t.Fatalf("%s: Floor after reopen = %d, want 3", stage, got)
		}
		if got := c2.KeysAt(3); !reflect.DeepEqual(got, wantKeys) {
			t.Fatalf("%s: KeysAt(3) = %v, want %v", stage, got, wantKeys)
		}
		for h := int64(1); h <= 3; h++ {
			if got := docAt(t, c2, fmt.Sprintf("k%d", h), 3)["v"]; got != float64(h) {
				t.Fatalf("%s: k%d@3 = %v", stage, h, got)
			}
		}
	}
	reopen("wal-replay")

	// Compact folds the WAL into v2 segments (which persist per-record
	// birth heights); the clock must recover identically from them.
	eng3, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng3.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := eng3.Close(); err != nil {
		t.Fatal(err)
	}
	reopen("segments")
}

// TestWALPayloadV1Decodes pins backward compatibility: a pre-MVCC
// (v1) WAL payload — no height prefix — still decodes, with every
// mutation replayed at height 0.
func TestWALPayloadV1Decodes(t *testing.T) {
	var payload []byte
	payload = append(payload, walPayloadV1)
	payload = appendUvarint(payload, 2)
	payload = append(payload, opPut)
	payload = appendString(payload, "c")
	payload = appendString(payload, "k1")
	payload = appendBytes(payload, []byte(`{"v":1}`))
	payload = append(payload, opDelete)
	payload = appendString(payload, "c")
	payload = appendString(payload, "k2")

	type rec struct {
		h    int64
		op   byte
		key  string
		body string
	}
	var got []rec
	if err := decodeGroup(payload, func(h int64, m mutation) error {
		got = append(got, rec{h: h, op: m.op, key: m.key, body: string(m.doc)})
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	want := []rec{
		{h: 0, op: opPut, key: "k1", body: `{"v":1}`},
		{h: 0, op: opDelete, key: "k2", body: ""},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("v1 decode = %+v, want %+v", got, want)
	}

	// And the v2 round trip preserves the stamped height.
	v2 := encodeGroup(7, []mutation{{op: opPut, coll: "c", key: "k", doc: []byte(`{}`)}})
	var h2 int64 = -1
	if err := decodeGroup(v2, func(h int64, m mutation) error { h2 = h; return nil }); err != nil {
		t.Fatal(err)
	}
	if h2 != 7 {
		t.Fatalf("v2 height = %d, want 7", h2)
	}
}

// TestMVCCSnapshotReadersRaceAppliers is the race-gate pin for the
// lock-free read path: readers resolve full snapshots at pinned
// heights while a writer seals blocks underneath them, and every
// snapshot must be block-atomic — exactly the keys of blocks <= h,
// with the per-block counter matching the pinned height.
func TestMVCCSnapshotReadersRaceAppliers(t *testing.T) {
	forEachMVCCBackend(t, func(t *testing.T, b Backend) {
		const blocks = 40
		const perBlock = 4
		b.SetRetain(blocks + 2) // no height expires mid-read
		c := b.Collection("c")
		mustPut(t, c, "counter", map[string]any{"h": 0.0})

		stop := make(chan struct{})
		var wg sync.WaitGroup
		for r := 0; r < 4; r++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					h := b.Visible()
					doc, ok := c.GetAt("counter", h)
					if !ok {
						panic("counter missing from snapshot")
					}
					if got := int64(doc["h"].(float64)); got != h {
						panic(fmt.Sprintf("snapshot at %d reads counter %d", h, got))
					}
					if got, want := c.LenAt(h), 1+int(h)*perBlock; got != want {
						panic(fmt.Sprintf("LenAt(%d) = %d, want %d", h, got, want))
					}
					n := 0
					c.ScanAt(h, func(key string, doc map[string]any) bool {
						if bh := int64(doc["b"].(float64)); key != "counter" && bh > h {
							panic(fmt.Sprintf("snapshot at %d leaked a write from block %d", h, bh))
						}
						n++
						return true
					})
					if want := 1 + int(h)*perBlock; n != want {
						panic(fmt.Sprintf("ScanAt(%d) visited %d docs, want %d", h, n, want))
					}
				}
			}()
		}

		for h := int64(1); h <= blocks; h++ {
			b.BeginBlock(h)
			for j := 0; j < perBlock; j++ {
				mustPut(t, c, fmt.Sprintf("b%03d-%d", h, j), map[string]any{"b": float64(h)})
			}
			mustPut(t, c, "counter", map[string]any{"h": float64(h), "b": float64(h)})
			b.SealBlock(h)
		}
		close(stop)
		wg.Wait()
	})
}
