package storage

import (
	"sync"
	"testing"
	"time"
)

// TestSealGateOrdersOutOfOrderAppliers pins the gate contract: tickets
// entered out of registration order seal strictly in height order.
func TestSealGateOrdersOutOfOrderAppliers(t *testing.T) {
	var g SealGate
	tickets := make([]*SealTicket, 0, 4)
	for h := int64(1); h <= 4; h++ {
		tickets = append(tickets, g.Register(h))
	}
	var mu sync.Mutex
	var order []int64
	var wg sync.WaitGroup
	// Enter in reverse: every ticket but the head must stall.
	for i := len(tickets) - 1; i >= 0; i-- {
		tk := tickets[i]
		wg.Add(1)
		go func() {
			defer wg.Done()
			tk.Enter()
			mu.Lock()
			order = append(order, tk.height)
			mu.Unlock()
			tk.Done()
		}()
		time.Sleep(5 * time.Millisecond) // bias the race toward reverse entry
	}
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	for i, h := range order {
		if h != int64(i+1) {
			t.Fatalf("seal order %v, want heights ascending", order)
		}
	}
}

// TestSealGateAbandonedTicketUnblocks checks that a registered height
// that never seals (a failed commit calling Done without Enter) does
// not wedge later heights.
func TestSealGateAbandonedTicketUnblocks(t *testing.T) {
	var g SealGate
	t1 := g.Register(1)
	t2 := g.Register(2)
	done := make(chan struct{})
	go func() {
		t2.Enter()
		t2.Done()
		close(done)
	}()
	time.Sleep(10 * time.Millisecond)
	select {
	case <-done:
		t.Fatal("height 2 sealed before height 1 retired")
	default:
	}
	t1.Done() // abandon height 1
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("height 2 never admitted after height 1 was abandoned")
	}
}

// TestSealGateDoubleDonePanics pins the double-seal guard.
func TestSealGateDoubleDonePanics(t *testing.T) {
	var g SealGate
	tk := g.Register(1)
	tk.Enter()
	tk.Done()
	defer func() {
		if recover() == nil {
			t.Fatal("second Done did not panic")
		}
	}()
	tk.Done()
}
