package storage

import (
	"fmt"
	"sync"
)

// SealGate orders block seals by height when appliers overlap. The
// Backend contract requires blocks to be sequential — BeginBlock(h+1)
// only after SealBlock(h) — and every block's WAL group to land in
// height order, so the durable prefix is always a block prefix. With
// a depth-N commit pipeline several blocks stage concurrently and
// finish staging in arbitrary order; the gate is the serialization
// point in front of the backend: an applier registers its height up
// front (in height order, on the ordered consensus thread) and later
// enters the gate when its staging completes, parking until every
// earlier-registered height has sealed. Inside the gate the holder
// runs its BeginBlock → Group → SealBlock bracket exclusively, so
// out-of-order appliers can never reorder WAL groups.
//
// The zero value is ready to use.
type SealGate struct {
	mu   sync.Mutex
	cond *sync.Cond
	// queue holds the registered-but-unsealed heights in registration
	// (= height) order; the head is the only height allowed to seal.
	queue []int64
	// sealing marks a ticket inside Enter..Done (gate exclusivity).
	sealing bool
}

// SealTicket is one registered height's place in the seal order.
type SealTicket struct {
	g       *SealGate
	height  int64
	entered bool
	done    bool
}

func (g *SealGate) signal() *sync.Cond {
	if g.cond == nil {
		g.cond = sync.NewCond(&g.mu)
	}
	return g.cond
}

// Register reserves height's slot in the seal order. Heights must be
// registered in strictly increasing order — the caller's decide loop
// provides that — and Register panics on a regression, since a
// misordered registration would deadlock the gate later.
func (g *SealGate) Register(height int64) *SealTicket {
	g.mu.Lock()
	defer g.mu.Unlock()
	if n := len(g.queue); n > 0 && g.queue[n-1] >= height {
		panic(fmt.Sprintf("storage: seal gate Register(%d) after height %d", height, g.queue[n-1]))
	}
	g.queue = append(g.queue, height)
	return &SealTicket{g: g, height: height}
}

// Enter parks until every height registered before this ticket has
// sealed, then takes the gate exclusively. The caller runs its
// BeginBlock → Group → SealBlock bracket and must call Done. It
// reports whether the ticket had to stall behind an earlier unsealed
// height — the seal-reorder stall the pipeline metrics count.
func (t *SealTicket) Enter() (stalled bool) {
	g := t.g
	g.mu.Lock()
	defer g.mu.Unlock()
	for len(g.queue) == 0 || g.queue[0] != t.height || g.sealing {
		stalled = true
		g.signal().Wait()
	}
	g.sealing = true
	t.entered = true
	return stalled
}

// Done releases the gate and admits the next registered height. It
// panics on reuse so a double seal is caught at the gate, not in the
// WAL. A ticket abandoned without Enter (a commit that failed before
// sealing) still must call Done, or every later height deadlocks.
func (t *SealTicket) Done() {
	g := t.g
	g.mu.Lock()
	defer g.mu.Unlock()
	if t.done {
		panic(fmt.Sprintf("storage: seal gate Done(%d) twice", t.height))
	}
	t.done = true
	if t.entered {
		g.sealing = false
	}
	// Pop this height wherever it sits: the common case is the head
	// (an entered ticket), but an abandoned ticket may retire from the
	// middle of the queue.
	for i, h := range g.queue {
		if h == t.height {
			g.queue = append(g.queue[:i], g.queue[i+1:]...)
			break
		}
	}
	g.signal().Broadcast()
}
