package storage

import (
	"sort"
	"sync"
)

// NumShards is the per-collection lock-shard count. Point reads and
// writes lock one shard, so parallel validation's Get storm stops
// contending on a single collection-wide mutex with the commit writer.
const NumShards = 16

// memShard is one lock shard of a collection's document map.
type memShard struct {
	mu   sync.RWMutex
	docs map[string]map[string]any
}

// MemCollection is the sharded in-memory collection both backends use:
// the memory backend stores documents here directly, and the disk
// engine keeps it as the always-resident working set in front of the
// WAL and segments.
type MemCollection struct {
	name   string
	shards [NumShards]memShard

	// orderMu guards insertion order. Writers take it exclusively, so
	// a Scan/Keys holding it shared sees a stable collection; point
	// Gets never touch it.
	orderMu sync.RWMutex
	order   []string
	ords    map[string]uint64 // key -> insertion counter
	nextOrd uint64
}

func newMemCollection(name string) *MemCollection {
	c := &MemCollection{name: name, ords: make(map[string]uint64)}
	for i := range c.shards {
		c.shards[i].docs = make(map[string]map[string]any)
	}
	return c
}

func (c *MemCollection) shard(key string) *memShard {
	// Inline FNV-1a: the hasher interface would allocate on every
	// point read, the very path sharding exists to make cheap.
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return &c.shards[h%NumShards]
}

// Get returns the stored document, locking only the key's shard.
func (c *MemCollection) Get(key string) (map[string]any, bool) {
	sh := c.shard(key)
	sh.mu.RLock()
	doc, ok := sh.docs[key]
	sh.mu.RUnlock()
	return doc, ok
}

// Has reports whether key exists, locking only the key's shard.
func (c *MemCollection) Has(key string) bool {
	_, ok := c.Get(key)
	return ok
}

// Put stores doc under key.
func (c *MemCollection) Put(key string, doc map[string]any) error {
	c.orderMu.Lock()
	if _, exists := c.ords[key]; !exists {
		c.ords[key] = c.nextOrd
		c.nextOrd++
		c.order = append(c.order, key)
	}
	c.putShard(key, doc)
	c.orderMu.Unlock()
	return nil
}

// putLoaded stores a document recovered from a segment with its
// original insertion counter. The caller finishes with finishLoad.
func (c *MemCollection) putLoaded(key string, doc map[string]any, ord uint64) {
	c.orderMu.Lock()
	if _, exists := c.ords[key]; !exists {
		c.order = append(c.order, key)
	}
	c.ords[key] = ord
	if ord >= c.nextOrd {
		c.nextOrd = ord + 1
	}
	c.putShard(key, doc)
	c.orderMu.Unlock()
}

// finishLoad restores insertion order after segment loading (segments
// are key-sorted, iteration order is ord-sorted).
func (c *MemCollection) finishLoad() {
	c.orderMu.Lock()
	sort.Slice(c.order, func(i, j int) bool { return c.ords[c.order[i]] < c.ords[c.order[j]] })
	c.orderMu.Unlock()
}

func (c *MemCollection) putShard(key string, doc map[string]any) {
	sh := c.shard(key)
	sh.mu.Lock()
	sh.docs[key] = doc
	sh.mu.Unlock()
}

// Delete removes key; missing keys are a no-op.
func (c *MemCollection) Delete(key string) error {
	c.orderMu.Lock()
	if _, exists := c.ords[key]; exists {
		delete(c.ords, key)
		for i, k := range c.order {
			if k == key {
				c.order = append(c.order[:i], c.order[i+1:]...)
				break
			}
		}
		sh := c.shard(key)
		sh.mu.Lock()
		delete(sh.docs, key)
		sh.mu.Unlock()
	}
	c.orderMu.Unlock()
	return nil
}

// Len returns the number of documents.
func (c *MemCollection) Len() int {
	c.orderMu.RLock()
	n := len(c.order)
	c.orderMu.RUnlock()
	return n
}

// Keys returns the live keys in insertion order.
func (c *MemCollection) Keys() []string {
	c.orderMu.RLock()
	out := append([]string(nil), c.order...)
	c.orderMu.RUnlock()
	return out
}

// Scan visits documents in insertion order until fn returns false.
// Writers are excluded for the duration, point reads are not.
func (c *MemCollection) Scan(fn func(key string, doc map[string]any) bool) {
	c.orderMu.RLock()
	defer c.orderMu.RUnlock()
	for _, key := range c.order {
		sh := c.shard(key)
		sh.mu.RLock()
		doc := sh.docs[key]
		sh.mu.RUnlock()
		if !fn(key, doc) {
			return
		}
	}
}

// ordOf returns the insertion counter for key (segment writing).
func (c *MemCollection) ordOf(key string) uint64 {
	c.orderMu.RLock()
	ord := c.ords[key]
	c.orderMu.RUnlock()
	return ord
}

// Ords returns the insertion counters for keys (missing keys absent)
// under one order-lock acquisition.
func (c *MemCollection) Ords(keys []string) map[string]uint64 {
	out := make(map[string]uint64, len(keys))
	c.orderMu.RLock()
	for _, key := range keys {
		if ord, ok := c.ords[key]; ok {
			out[key] = ord
		}
	}
	c.orderMu.RUnlock()
	return out
}

// clear empties the collection in place so stale handles held across a
// Drop read nothing instead of resurrecting dropped documents.
func (c *MemCollection) clear() {
	c.orderMu.Lock()
	c.order = nil
	c.ords = make(map[string]uint64)
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		sh.docs = make(map[string]map[string]any)
		sh.mu.Unlock()
	}
	c.orderMu.Unlock()
}

// Memory is the volatile backend: the sharded memtable with no
// durability. It is the default a plain docstore.NewStore runs over.
type Memory struct {
	mu      sync.RWMutex
	groupMu sync.Mutex
	colls   map[string]*MemCollection
}

// NewMemory creates an empty memory backend.
func NewMemory() *Memory {
	return &Memory{colls: make(map[string]*MemCollection)}
}

func (m *Memory) coll(name string) *MemCollection {
	m.mu.RLock()
	c := m.colls[name]
	m.mu.RUnlock()
	if c != nil {
		return c
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if c := m.colls[name]; c != nil {
		return c
	}
	c = newMemCollection(name)
	m.colls[name] = c
	return c
}

// peek returns the named collection without creating it.
func (m *Memory) peek(name string) *MemCollection {
	m.mu.RLock()
	c := m.colls[name]
	m.mu.RUnlock()
	return c
}

// Collection returns the named collection, creating it on first use.
func (m *Memory) Collection(name string) Collection { return m.coll(name) }

// CollectionNames lists existing collections, sorted.
func (m *Memory) CollectionNames() []string {
	m.mu.RLock()
	names := make([]string, 0, len(m.colls))
	for n := range m.colls {
		names = append(names, n)
	}
	m.mu.RUnlock()
	sort.Strings(names)
	return names
}

// Drop removes a collection, emptying it in place for stale handles.
func (m *Memory) Drop(name string) error {
	m.mu.Lock()
	c := m.colls[name]
	delete(m.colls, name)
	m.mu.Unlock()
	if c != nil {
		c.clear()
	}
	return nil
}

// Group runs fn. Memory has no durability to batch, but Groups still
// serialize against each other so callers written against the Backend
// contract behave the same over both backends.
func (m *Memory) Group(fn func() error) error {
	m.groupMu.Lock()
	defer m.groupMu.Unlock()
	return fn()
}

// Compact is a no-op for the memory backend.
func (m *Memory) Compact() error { return nil }

// Close is a no-op; the memory backend's state dies with the process.
func (m *Memory) Close() error { return nil }
