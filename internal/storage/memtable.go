package storage

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"smartchaindb/internal/obs"
)

// memObs holds the MVCC metric handles both backends' memtables record
// into. The zero value's nil handles are no-ops, so collections never
// branch on whether observability is attached.
type memObs struct {
	prunedVersions *obs.Counter   // storage.mvcc.pruned_versions
	prunedChains   *obs.Counter   // storage.mvcc.pruned_chains
	chainLen       *obs.Histogram // storage.mvcc.chain_len (per GC'd key)
	visible        *obs.Gauge     // storage.mvcc.visible_height
	floor          *obs.Gauge     // storage.mvcc.floor_height
}

func newMemObs(reg *obs.Registry) *memObs {
	if reg == nil {
		return &memObs{}
	}
	return &memObs{
		prunedVersions: reg.Counter("storage.mvcc.pruned_versions"),
		prunedChains:   reg.Counter("storage.mvcc.pruned_chains"),
		chainLen:       reg.Histogram("storage.mvcc.chain_len"),
		visible:        reg.Gauge("storage.mvcc.visible_height"),
		floor:          reg.Gauge("storage.mvcc.floor_height"),
	}
}

// HeightLatest selects the writer view: the newest version of every
// key, including writes of a block that is still being applied. It is
// the height writers and intra-group readers use; committed snapshot
// readers pass a real block height instead.
const HeightLatest int64 = math.MaxInt64

// DefaultRetainHeights is K, the number of sealed block heights whose
// versions a collection retains for snapshot reads. Versions that no
// retained height can observe are garbage-collected at seal.
const DefaultRetainHeights = 8

// verClock is the backend's height clock. Writers stamp versions with
// the open block height (or the visible height outside a block);
// readers resolve against visible; GC trails at floor.
//
//	floor <= visible <= write (while a block is open)
//
// Snapshot reads are exact for heights in [floor, visible]. Reads
// below floor are "snapshot too old": GC may already have truncated
// the versions that height would need.
type verClock struct {
	write   atomic.Int64 // open block height; 0 = no block open
	visible atomic.Int64 // highest sealed height
	floor   atomic.Int64 // lowest height snapshot reads are exact for
	retain  atomic.Int64 // K: sealed heights kept for snapshots
}

// stamp returns the height the next write is tagged with: the open
// block's height, or — outside a block — the visible height, making
// standalone writes immediately visible (the documented relaxation
// for non-block usage).
func (c *verClock) stamp() int64 {
	if w := c.write.Load(); w > 0 {
		return w
	}
	return c.visible.Load()
}

// docVersion is one immutable version of a document. A nil doc is a
// tombstone. prev points at the next-older version; it is only ever
// rewritten by GC, which cuts links no supported snapshot can follow.
type docVersion struct {
	doc    map[string]any
	height int64
	ord    uint64
	prev   atomic.Pointer[docVersion]
}

// verChain is one key's version chain, newest first. The head pointer
// is the publication point: a version (and its prev link) is fully
// built before the head store, so lock-free readers walking from head
// always see complete versions.
type verChain struct {
	head atomic.Pointer[docVersion]
}

// versionAt resolves the chain at height h: the newest version whose
// height is <= h, or nil if the key did not exist at h.
func (ch *verChain) versionAt(h int64) *docVersion {
	for v := ch.head.Load(); v != nil; v = v.prev.Load() {
		if v.height <= h {
			return v
		}
	}
	return nil
}

// entry is one slot of a collection's append-only iteration log: the
// key and the insertion counter it was (re)inserted with. An entry is
// emitted by a scan at height h iff the key's chain resolves at h to a
// live version carrying the same ord — which both dedups re-inserts
// (only the current ord matches) and hides deleted keys.
type entry struct {
	key string
	ord uint64
}

// entrySeg is one fixed-capacity segment of the iteration log. The
// writer stores the element before publishing the new length, so a
// reader that observes n may read buf[:n] without any lock.
type entrySeg struct {
	buf  []entry
	n    atomic.Int64
	next atomic.Pointer[entrySeg]
}

const (
	entrySegMinCap = 64
	entrySegMaxCap = 1 << 15
)

// MemCollection is the in-memory MVCC collection both backends share:
// the memory backend stores documents here directly, and the disk
// engine keeps it as the always-resident working set in front of the
// WAL and segments. Every key holds an immutable version chain stamped
// with block heights; reads resolve a height against the chains and
// the iteration log with atomics only — no collection, shard, or order
// lock exists on the read path. Writers serialize on one mutex.
type MemCollection struct {
	name  string
	clock *verClock
	// ob points at the owning backend's attached metric handles; a
	// stored nil (never attached) reads as all-no-op handles.
	ob *atomic.Pointer[memObs]

	chains sync.Map // key -> *verChain
	log    atomic.Pointer[entrySeg]
	live   atomic.Int64 // keys live in the writer view

	// wmu serializes writers (and GC). Readers never take it.
	wmu     sync.Mutex
	tail    *entrySeg
	nextOrd uint64
	dead    int                           // log entries no snapshot can resolve
	dirty   map[int64]map[string]struct{} // height -> keys written (GC worklist)
}

func newMemCollection(name string, clock *verClock, ob *atomic.Pointer[memObs]) *MemCollection {
	c := &MemCollection{name: name, clock: clock, ob: ob, dirty: make(map[int64]map[string]struct{})}
	seg := &entrySeg{buf: make([]entry, entrySegMinCap)}
	c.log.Store(seg)
	c.tail = seg
	return c
}

func (c *MemCollection) chain(key string) *verChain {
	if v, ok := c.chains.Load(key); ok {
		return v.(*verChain)
	}
	v, _ := c.chains.LoadOrStore(key, &verChain{})
	return v.(*verChain)
}

// appendEntry publishes one log entry. Caller holds wmu.
func (c *MemCollection) appendEntry(e entry) {
	t := c.tail
	n := t.n.Load()
	if int(n) == len(t.buf) {
		cap := len(t.buf) * 2
		if cap > entrySegMaxCap {
			cap = entrySegMaxCap
		}
		ns := &entrySeg{buf: make([]entry, cap)}
		t.next.Store(ns)
		c.tail = ns
		t, n = ns, 0
	}
	t.buf[n] = e
	t.n.Store(n + 1)
}

// markDirty records key as written at height h so seal-time GC can
// find its chain once h falls past the retention horizon. Caller
// holds wmu.
func (c *MemCollection) markDirty(key string, h int64) {
	set := c.dirty[h]
	if set == nil {
		set = make(map[string]struct{})
		c.dirty[h] = set
	}
	set[key] = struct{}{}
}

// GetAt returns the document visible at height h.
func (c *MemCollection) GetAt(key string, h int64) (map[string]any, bool) {
	v, ok := c.chains.Load(key)
	if !ok {
		return nil, false
	}
	ver := v.(*verChain).versionAt(h)
	if ver == nil || ver.doc == nil {
		return nil, false
	}
	return ver.doc, true
}

// Get returns the stored document in the writer view.
func (c *MemCollection) Get(key string) (map[string]any, bool) {
	return c.GetAt(key, HeightLatest)
}

// Has reports whether key exists in the writer view.
func (c *MemCollection) Has(key string) bool {
	_, ok := c.Get(key)
	return ok
}

// Put stores doc under key, stamped with the clock's current height.
func (c *MemCollection) Put(key string, doc map[string]any) error {
	c.wmu.Lock()
	c.putAt(key, doc, c.clock.stamp())
	c.wmu.Unlock()
	return nil
}

// putAt installs a new version of key at height h. Caller holds wmu.
func (c *MemCollection) putAt(key string, doc map[string]any, h int64) {
	ch := c.chain(key)
	head := ch.head.Load()
	if head != nil && h < head.height {
		// Heights only move forward; treat a stale stamp as a
		// same-height rewrite of the newest version.
		h = head.height
	}
	v := &docVersion{doc: doc, height: h}
	switch {
	case head == nil || head.doc == nil:
		// Fresh insert (no chain, or over a tombstone): new insertion
		// counter and a new log entry.
		v.ord = c.nextOrd
		c.nextOrd++
		if head != nil && head.height == h {
			v.prev.Store(head.prev.Load())
		} else {
			v.prev.Store(head)
		}
		c.appendEntry(entry{key: key, ord: v.ord})
		c.live.Add(1)
		if head != nil {
			// The tombstone's entry (its pre-delete ord) can now only
			// resolve through history; once that history is below the
			// floor the entry is dead weight.
			c.dead++
		}
	case head.height == h:
		// Same-height rewrite: collapse — a chain never holds two
		// versions of one height, so chains stay one node per block.
		v.ord = head.ord
		v.prev.Store(head.prev.Load())
	default:
		v.ord = head.ord
		v.prev.Store(head)
	}
	if h <= c.clock.floor.Load() {
		// No supported snapshot can see anything older.
		v.prev.Store(nil)
	}
	ch.head.Store(v)
	c.markDirty(key, h)
}

// Delete removes key at the clock's current height; missing keys are a
// no-op.
func (c *MemCollection) Delete(key string) error {
	c.wmu.Lock()
	c.deleteAt(key, c.clock.stamp())
	c.wmu.Unlock()
	return nil
}

// deleteAt installs a tombstone for key at height h. Caller holds wmu.
func (c *MemCollection) deleteAt(key string, h int64) {
	v, ok := c.chains.Load(key)
	if !ok {
		return
	}
	ch := v.(*verChain)
	head := ch.head.Load()
	if head == nil || head.doc == nil {
		return
	}
	if h < head.height {
		h = head.height
	}
	c.live.Add(-1)
	if h <= c.clock.floor.Load() {
		// No snapshot can observe the key anymore: drop the chain
		// outright (this is the entire delete path for stores that
		// never seal blocks).
		c.chains.Delete(key)
		c.dead++
		c.markDirty(key, h)
		return
	}
	t := &docVersion{doc: nil, height: h, ord: head.ord}
	if head.height == h {
		t.prev.Store(head.prev.Load())
	} else {
		t.prev.Store(head)
	}
	if t.prev.Load() == nil {
		// Inserted and deleted above the floor with no history: the
		// chain can't serve any height.
		c.chains.Delete(key)
		c.dead++
		c.markDirty(key, h)
		return
	}
	ch.head.Store(t)
	c.dead++
	c.markDirty(key, h)
}

// putLoaded stores a document recovered from a segment with its
// original insertion counter and birth height. The caller finishes
// with finishLoad.
func (c *MemCollection) putLoaded(key string, doc map[string]any, ord uint64, h int64) {
	c.wmu.Lock()
	ch := c.chain(key)
	if ch.head.Load() == nil {
		c.appendEntry(entry{key: key, ord: ord})
		c.live.Add(1)
	}
	v := &docVersion{doc: doc, height: h, ord: ord}
	ch.head.Store(v)
	if ord >= c.nextOrd {
		c.nextOrd = ord + 1
	}
	c.wmu.Unlock()
}

// finishLoad restores insertion order after segment loading (segments
// are key-sorted, iteration order is ord-sorted).
func (c *MemCollection) finishLoad() {
	c.wmu.Lock()
	var all []entry
	for seg := c.log.Load(); seg != nil; seg = seg.next.Load() {
		n := seg.n.Load()
		all = append(all, seg.buf[:n]...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].ord < all[j].ord })
	c.resetLog(all)
	c.wmu.Unlock()
}

// putReplay / deleteReplay apply one recovered WAL mutation at its
// logged height.
func (c *MemCollection) putReplay(key string, doc map[string]any, h int64) {
	c.wmu.Lock()
	c.putAt(key, doc, h)
	c.wmu.Unlock()
}

func (c *MemCollection) deleteReplay(key string, h int64) {
	c.wmu.Lock()
	c.deleteAt(key, h)
	c.wmu.Unlock()
}

// resetLog replaces the iteration log with exactly entries. Caller
// holds wmu.
func (c *MemCollection) resetLog(entries []entry) {
	cap := entrySegMinCap
	for cap < len(entries) && cap < entrySegMaxCap {
		cap *= 2
	}
	seg := &entrySeg{buf: make([]entry, maxInt(cap, len(entries)))}
	copy(seg.buf, entries)
	seg.n.Store(int64(len(entries)))
	c.log.Store(seg)
	c.tail = seg
	c.dead = 0
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// LenAt returns the number of documents visible at height h.
func (c *MemCollection) LenAt(h int64) int {
	if h == HeightLatest {
		return int(c.live.Load())
	}
	n := 0
	c.ScanAt(h, func(string, map[string]any) bool {
		n++
		return true
	})
	return n
}

// Len returns the number of documents in the writer view.
func (c *MemCollection) Len() int { return c.LenAt(HeightLatest) }

// ScanAt visits the documents visible at height h in insertion order
// until fn returns false, without taking any lock.
func (c *MemCollection) ScanAt(h int64, fn func(key string, doc map[string]any) bool) {
	for seg := c.log.Load(); seg != nil; seg = seg.next.Load() {
		n := seg.n.Load()
		for i := int64(0); i < n; i++ {
			e := seg.buf[i]
			v, ok := c.chains.Load(e.key)
			if !ok {
				continue
			}
			ver := v.(*verChain).versionAt(h)
			if ver == nil || ver.doc == nil || ver.ord != e.ord {
				continue
			}
			if !fn(e.key, ver.doc) {
				return
			}
		}
	}
}

// Scan visits the writer view in insertion order until fn returns
// false.
func (c *MemCollection) Scan(fn func(key string, doc map[string]any) bool) {
	c.ScanAt(HeightLatest, fn)
}

// KeysAt returns the keys visible at height h in insertion order.
func (c *MemCollection) KeysAt(h int64) []string {
	var out []string
	c.ScanAt(h, func(key string, _ map[string]any) bool {
		out = append(out, key)
		return true
	})
	return out
}

// Keys returns the live keys in insertion order (writer view).
func (c *MemCollection) Keys() []string { return c.KeysAt(HeightLatest) }

// OrdsAt returns the insertion counters of the given keys as visible
// at height h (missing keys absent), lock-free.
func (c *MemCollection) OrdsAt(keys []string, h int64) map[string]uint64 {
	out := make(map[string]uint64, len(keys))
	for _, key := range keys {
		v, ok := c.chains.Load(key)
		if !ok {
			continue
		}
		if ver := v.(*verChain).versionAt(h); ver != nil && ver.doc != nil {
			out[key] = ver.ord
		}
	}
	return out
}

// Ords returns the insertion counters for keys in the writer view.
func (c *MemCollection) Ords(keys []string) map[string]uint64 {
	return c.OrdsAt(keys, HeightLatest)
}

// scanHead visits live writer-view versions in insertion order,
// exposing ord and birth height — the segment writer's iterator.
// Caller must exclude writers (Compact holds the compaction lock).
func (c *MemCollection) scanHead(fn func(key string, v *docVersion) bool) {
	for seg := c.log.Load(); seg != nil; seg = seg.next.Load() {
		n := seg.n.Load()
		for i := int64(0); i < n; i++ {
			e := seg.buf[i]
			cv, ok := c.chains.Load(e.key)
			if !ok {
				continue
			}
			head := cv.(*verChain).head.Load()
			if head == nil || head.doc == nil || head.ord != e.ord {
				continue
			}
			if !fn(e.key, head) {
				return
			}
		}
	}
}

// gc truncates version history that fell below horizon: every dirty
// set at or below horizon is processed — each chain keeps the version
// serving horizon and cuts everything older; chains whose newest
// surviving version is a tombstone are removed entirely. Readers
// racing the cut are safe: only links no height >= horizon can reach
// are rewritten, and a reader already past the cut holds direct
// version pointers.
func (c *MemCollection) gc(horizon int64) {
	ob := memObsOf(c.ob)
	c.wmu.Lock()
	for h, keys := range c.dirty {
		if h > horizon {
			continue
		}
		delete(c.dirty, h)
		for key := range keys {
			cv, ok := c.chains.Load(key)
			if !ok {
				continue
			}
			ch := cv.(*verChain)
			head := ch.head.Load()
			v := head
			depth := int64(0)
			for v != nil && v.height > horizon {
				depth++
				v = v.prev.Load()
			}
			if v == nil {
				ob.chainLen.Observe(depth)
				continue
			}
			ob.chainLen.Observe(depth + 1)
			if v == head && v.doc == nil {
				// The newest version is a tombstone at or below the
				// horizon: no supported snapshot sees this key.
				c.chains.Delete(key)
				c.dead++
				ob.prunedChains.Inc()
				ob.prunedVersions.Inc()
				continue
			}
			if old := v.prev.Load(); old != nil {
				if old.doc != nil || old.ord != v.ord {
					// History being cut held other insertion counters;
					// their log entries are now unresolvable.
					c.dead++
				}
				v.prev.Store(nil)
				for ; old != nil; old = old.prev.Load() {
					ob.prunedVersions.Inc()
				}
			}
		}
	}
	c.maybeCompactLog()
	c.wmu.Unlock()
}

// memObsOf dereferences a collection's handle pointer; nil (backend
// never attached) reads as the all-no-op zero handles.
func memObsOf(p *atomic.Pointer[memObs]) memObs {
	if p != nil {
		if ob := p.Load(); ob != nil {
			return *ob
		}
	}
	return memObs{}
}

// maybeCompactLog rebuilds the iteration log once dead entries
// outnumber live ones, keeping every entry some supported snapshot
// can still resolve. Caller holds wmu.
func (c *MemCollection) maybeCompactLog() {
	if c.dead <= entrySegMinCap || int64(c.dead) <= c.live.Load() {
		return
	}
	var kept []entry
	for seg := c.log.Load(); seg != nil; seg = seg.next.Load() {
		n := seg.n.Load()
		for i := int64(0); i < n; i++ {
			e := seg.buf[i]
			cv, ok := c.chains.Load(e.key)
			if !ok {
				continue
			}
			for v := cv.(*verChain).head.Load(); v != nil; v = v.prev.Load() {
				if v.ord == e.ord && v.doc != nil {
					kept = append(kept, e)
					break
				}
			}
		}
	}
	c.resetLog(kept)
}

// clear empties the collection in place so stale handles held across a
// Drop read nothing instead of resurrecting dropped documents.
func (c *MemCollection) clear() {
	c.wmu.Lock()
	c.chains.Range(func(k, _ any) bool {
		c.chains.Delete(k)
		return true
	})
	c.live.Store(0)
	c.dirty = make(map[int64]map[string]struct{})
	c.resetLog(nil)
	c.wmu.Unlock()
}

// Memory is the volatile backend: the MVCC memtable with no
// durability. It is the default a plain docstore.NewStore runs over.
type Memory struct {
	mu      sync.RWMutex
	groupMu sync.Mutex
	colls   map[string]*MemCollection
	clock   verClock
	ob      atomic.Pointer[memObs]
}

// NewMemory creates an empty memory backend.
func NewMemory() *Memory {
	m := &Memory{colls: make(map[string]*MemCollection)}
	m.clock.retain.Store(DefaultRetainHeights)
	return m
}

func (m *Memory) coll(name string) *MemCollection {
	m.mu.RLock()
	c := m.colls[name]
	m.mu.RUnlock()
	if c != nil {
		return c
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if c := m.colls[name]; c != nil {
		return c
	}
	c = newMemCollection(name, &m.clock, &m.ob)
	m.colls[name] = c
	return c
}

// SetObs attaches (or, with nil, detaches) an observability registry.
// Every collection — existing and future — records through it.
func (m *Memory) SetObs(reg *obs.Registry) {
	if reg == nil {
		m.ob.Store(nil)
		return
	}
	ob := newMemObs(reg)
	ob.visible.Set(m.clock.visible.Load())
	ob.floor.Set(m.clock.floor.Load())
	m.ob.Store(ob)
}

// peek returns the named collection without creating it.
func (m *Memory) peek(name string) *MemCollection {
	m.mu.RLock()
	c := m.colls[name]
	m.mu.RUnlock()
	return c
}

// Collection returns the named collection, creating it on first use.
func (m *Memory) Collection(name string) Collection { return m.coll(name) }

// CollectionNames lists existing collections, sorted.
func (m *Memory) CollectionNames() []string {
	m.mu.RLock()
	names := make([]string, 0, len(m.colls))
	for n := range m.colls {
		names = append(names, n)
	}
	m.mu.RUnlock()
	sort.Strings(names)
	return names
}

// Drop removes a collection, emptying it in place for stale handles.
func (m *Memory) Drop(name string) error {
	m.mu.Lock()
	c := m.colls[name]
	delete(m.colls, name)
	m.mu.Unlock()
	if c != nil {
		c.clear()
	}
	return nil
}

// Group runs fn. Memory has no durability to batch, but Groups still
// serialize against each other so callers written against the Backend
// contract behave the same over both backends.
func (m *Memory) Group(fn func() error) error {
	m.groupMu.Lock()
	defer m.groupMu.Unlock()
	return fn()
}

// BeginBlock opens block h: writes until SealBlock are stamped h and
// stay invisible to snapshot readers at the current visible height.
// Heights at or below visible (catch-up replays) degrade to
// immediately-visible writes.
func (m *Memory) BeginBlock(h int64) {
	if h > m.clock.visible.Load() {
		m.clock.write.Store(h)
	}
}

// SealBlock publishes block h — visible advances, so snapshot readers
// at the new height observe the block's writes — and garbage-collects
// versions that fell out of the retention window.
func (m *Memory) SealBlock(h int64) {
	for {
		cur := m.clock.visible.Load()
		if h <= cur || m.clock.visible.CompareAndSwap(cur, h) {
			break
		}
	}
	m.clock.write.Store(0)
	ob := memObsOf(&m.ob)
	ob.visible.Set(m.clock.visible.Load())
	horizon := m.clock.visible.Load() - m.clock.retain.Load() + 1
	if horizon <= m.clock.floor.Load() {
		return
	}
	ob.floor.Set(horizon)
	// Publish the new floor before cutting: a reader that validated
	// its height against the old floor and lost the race reads a
	// truncated chain only if it was already below the new floor —
	// the documented "snapshot too old" horizon.
	m.clock.floor.Store(horizon)
	m.mu.RLock()
	colls := make([]*MemCollection, 0, len(m.colls))
	for _, c := range m.colls {
		colls = append(colls, c)
	}
	m.mu.RUnlock()
	for _, c := range colls {
		c.gc(horizon)
	}
}

// Visible returns the highest sealed height — the height a consistent
// snapshot read of committed state uses.
func (m *Memory) Visible() int64 { return m.clock.visible.Load() }

// Floor returns the lowest height snapshot reads are exact for.
func (m *Memory) Floor() int64 { return m.clock.floor.Load() }

// StampHeight returns the height the next write would be stamped with.
func (m *Memory) StampHeight() int64 { return m.clock.stamp() }

// SetRetain sets K, the number of sealed heights retained for
// snapshot reads. Takes effect at the next SealBlock.
func (m *Memory) SetRetain(k int64) {
	if k < 1 {
		k = 1
	}
	m.clock.retain.Store(k)
}

// recoverClock pins the clock after recovery: visibility starts at
// the highest recovered height with no history below it — snapshot
// reads reach back only to blocks sealed after this open.
func (m *Memory) recoverClock(h int64) {
	if h > m.clock.visible.Load() {
		m.clock.visible.Store(h)
	}
	m.clock.floor.Store(m.clock.visible.Load())
	m.clock.write.Store(0)
}

// Compact is a no-op for the memory backend.
func (m *Memory) Compact() error { return nil }

// Close is a no-op; the memory backend's state dies with the process.
func (m *Memory) Close() error { return nil }
