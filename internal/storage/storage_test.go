package storage

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
)

func doc(vals ...any) map[string]any {
	d := make(map[string]any)
	for i := 0; i+1 < len(vals); i += 2 {
		d[vals[i].(string)] = vals[i+1]
	}
	return d
}

// dump renders a backend's full contents for equality checks. Empty
// collections are skipped: creation without a document is not durable
// until compaction, so they legitimately differ across a reopen.
func dump(b Backend) map[string]map[string]map[string]any {
	out := make(map[string]map[string]map[string]any)
	for _, name := range b.CollectionNames() {
		c := b.Collection(name)
		docs := make(map[string]map[string]any)
		c.Scan(func(key string, d map[string]any) bool {
			docs[key] = d
			return true
		})
		if len(docs) > 0 {
			out[name] = docs
		}
	}
	return out
}

func TestEngineReopenRecoversDocuments(t *testing.T) {
	dir := t.TempDir()
	e, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	c := e.Collection("txs")
	for i := 0; i < 10; i++ {
		if err := c.Put(fmt.Sprintf("k%02d", i), doc("i", float64(i), "s", "v")); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Delete("k03"); err != nil {
		t.Fatal(err)
	}
	if err := c.Put("k05", doc("i", 5.0, "s", "replaced")); err != nil {
		t.Fatal(err)
	}
	want := dump(e)
	wantKeys := c.Keys()
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	e2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	if got := dump(e2); !reflect.DeepEqual(got, want) {
		t.Fatalf("reopened state differs:\ngot  %v\nwant %v", got, want)
	}
	if got := e2.Collection("txs").Keys(); !reflect.DeepEqual(got, wantKeys) {
		t.Fatalf("iteration order differs: got %v want %v", got, wantKeys)
	}
}

func TestEngineReopenWithoutCloseRecovers(t *testing.T) {
	dir := t.TempDir()
	e, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	c := e.Collection("a")
	for i := 0; i < 5; i++ {
		if err := c.Put(fmt.Sprintf("k%d", i), doc("i", float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	want := dump(e)
	// Simulate SIGKILL: release the directory lock the way the kernel
	// would for a dead process, flushing nothing. The WAL bytes are
	// already in the file, so a fresh Open must recover everything.
	e.unlock()
	e2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	if got := dump(e2); !reflect.DeepEqual(got, want) {
		t.Fatalf("kill-reopen state differs:\ngot  %v\nwant %v", got, want)
	}
}

func TestEngineCompactionPreservesStateAndOrder(t *testing.T) {
	dir := t.TempDir()
	e, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	c := e.Collection("txs")
	u := e.Collection("utxos")
	for i := 0; i < 20; i++ {
		// Reverse-ish key order so segment sorting differs from
		// insertion order.
		if err := c.Put(fmt.Sprintf("k%02d", 19-i), doc("i", float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := u.Put("u1", doc("spent", false)); err != nil {
		t.Fatal(err)
	}
	wantKeys := c.Keys()
	want := dump(e)

	if err := e.Compact(); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.Gen != 1 || st.Segments != 2 {
		t.Fatalf("stats after compact = %+v, want gen 1 with 2 segments", st)
	}
	if got := dump(e); !reflect.DeepEqual(got, want) {
		t.Fatal("compaction changed live state")
	}
	// Post-compaction mutations land in the new WAL generation.
	if err := u.Put("u2", doc("spent", true)); err != nil {
		t.Fatal(err)
	}
	want = dump(e)
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	e2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	if got := dump(e2); !reflect.DeepEqual(got, want) {
		t.Fatalf("post-compaction reopen differs:\ngot  %v\nwant %v", got, want)
	}
	if got := e2.Collection("txs").Keys(); !reflect.DeepEqual(got, wantKeys) {
		t.Fatalf("iteration order lost through segments: got %v want %v", got, wantKeys)
	}
}

func TestEngineGroupIsAtomicAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	e, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	c := e.Collection("txs")
	if err := e.Group(func() error {
		c.Put("a", doc("v", 1.0))
		c.Put("b", doc("v", 2.0))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	// Second group: corrupt it by truncating mid-record afterwards.
	if err := e.Group(func() error {
		c.Put("c", doc("v", 3.0))
		c.Put("d", doc("v", 4.0))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	e.unlock() // "kill" the writer before corrupting its log
	walPath := filepath.Join(dir, walName(0))
	fi, err := os.Stat(walPath)
	if err != nil {
		t.Fatal(err)
	}
	// Chop the last few bytes: the final record is torn, so the whole
	// second group must vanish while the first survives intact.
	if err := os.Truncate(walPath, fi.Size()-3); err != nil {
		t.Fatal(err)
	}
	e2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	c2 := e2.Collection("txs")
	if !c2.Has("a") || !c2.Has("b") {
		t.Error("first (intact) group lost")
	}
	if c2.Has("c") || c2.Has("d") {
		t.Error("torn group partially applied; groups must be all-or-nothing")
	}
}

func TestEngineDropPersists(t *testing.T) {
	dir := t.TempDir()
	e, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	e.Collection("gone").Put("k", doc("v", 1.0))
	e.Collection("kept").Put("k", doc("v", 2.0))
	if err := e.Drop("gone"); err != nil {
		t.Fatal(err)
	}
	e.Close()
	e2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	names := e2.CollectionNames()
	if !reflect.DeepEqual(names, []string{"kept"}) {
		t.Fatalf("collections after reopen = %v, want [kept]", names)
	}
}

func TestEngineStaleHandleAfterDropStaysInert(t *testing.T) {
	dir := t.TempDir()
	e, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	stale := e.Collection("x")
	stale.Put("k", doc("v", 1.0))
	if err := e.Drop("x"); err != nil {
		t.Fatal(err)
	}
	// Reads through the stale handle must not re-register the
	// collection (a phantom that would become durable at Compact).
	if stale.Has("k") || stale.Len() != 0 || len(stale.Keys()) != 0 {
		t.Error("stale handle still serves dropped documents")
	}
	if names := e.CollectionNames(); len(names) != 0 {
		t.Fatalf("stale read resurrected the collection: %v", names)
	}
	if err := e.Compact(); err != nil {
		t.Fatal(err)
	}
	if st := e.Stats(); st.Segments != 0 {
		t.Fatalf("compaction wrote %d segments for dropped collections", st.Segments)
	}
	// A write through a stale handle re-creates, exactly as replaying
	// its WAL record would.
	if err := stale.Put("k2", doc("v", 2.0)); err != nil {
		t.Fatal(err)
	}
	if names := e.CollectionNames(); len(names) != 1 || names[0] != "x" {
		t.Fatalf("post-drop write: collections = %v", names)
	}
}

func TestEngineGroupRecoversFromPanickingFn(t *testing.T) {
	dir := t.TempDir()
	e, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	c := e.Collection("txs")
	func() {
		defer func() { recover() }()
		e.Group(func() error {
			c.Put("staged", doc("v", 1.0))
			panic("mid-group failure")
		})
	}()
	// The group must have closed: later writes go to the WAL, not an
	// abandoned stage buffer.
	if err := c.Put("after", doc("v", 2.0)); err != nil {
		t.Fatal(err)
	}
	e.Close()
	e2, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	c2 := e2.Collection("txs")
	if !c2.Has("after") {
		t.Fatal("write after a panicked group was not durable")
	}
	if !c2.Has("staged") {
		t.Fatal("mutation staged before the panic was lost despite reaching the memtable")
	}
}

func TestEngineAutoCompactsPastThreshold(t *testing.T) {
	dir := t.TempDir()
	e, err := Open(dir, Options{CompactWALBytes: 2048})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	c := e.Collection("txs")
	for i := 0; i < 64; i++ {
		if err := e.Group(func() error {
			return c.Put(fmt.Sprintf("k%03d", i), doc("pad", "xxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx"))
		}); err != nil {
			t.Fatal(err)
		}
	}
	if st := e.Stats(); st.Gen == 0 {
		t.Fatalf("engine never auto-compacted: %+v", st)
	}
	if c.Len() != 64 {
		t.Fatalf("len = %d after auto-compaction", c.Len())
	}
}

func TestMemCollectionConcurrentPointReads(t *testing.T) {
	c := newMemCollection("x", &verClock{}, nil)
	for i := 0; i < 256; i++ {
		c.Put(fmt.Sprintf("k%d", i), doc("i", float64(i)))
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				k := fmt.Sprintf("k%d", (i*7+g)%512)
				c.Get(k)
				if i%5 == 0 {
					c.Put(fmt.Sprintf("k%d", 256+(i+g)%256), doc("i", float64(i)))
				}
				if i%11 == 0 {
					c.Delete(fmt.Sprintf("k%d", 256+(i+g)%256))
				}
				if i%97 == 0 {
					c.Scan(func(string, map[string]any) bool { return true })
				}
			}
		}(g)
	}
	wg.Wait()
	if c.Len() != len(c.Keys()) {
		t.Fatalf("len %d != keys %d", c.Len(), len(c.Keys()))
	}
}

func TestEngineDirectoryLockRejectsSecondOpen(t *testing.T) {
	dir := t.TempDir()
	e, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{NoSync: true}); err == nil {
		t.Fatal("second engine on the same directory must be rejected")
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	e2, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatalf("reopen after close: %v", err)
	}
	e2.Close()
}

func TestMemoryBackendInterfaceBasics(t *testing.T) {
	var b Backend = NewMemory()
	c := b.Collection("a")
	if err := c.Put("k", doc("v", 1.0)); err != nil {
		t.Fatal(err)
	}
	if !c.Has("k") || c.Len() != 1 {
		t.Fatal("put not visible")
	}
	if err := b.Group(func() error { return c.Put("k2", doc("v", 2.0)) }); err != nil {
		t.Fatal(err)
	}
	if err := b.Drop("a"); err != nil {
		t.Fatal(err)
	}
	if len(b.CollectionNames()) != 0 {
		t.Fatal("drop left collection behind")
	}
	// Stale handle after drop reads empty rather than resurrecting.
	if c.Has("k") {
		t.Fatal("stale handle still serves dropped documents")
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
}
