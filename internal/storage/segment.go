package storage

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
)

// Segment files are the log-structured half of the engine: Compact
// snapshots each collection into one immutable, key-sorted segment
// file and starts a fresh WAL generation, so the recovery cost of a
// long-lived node stays proportional to the traffic since its last
// compaction rather than its whole history.

var segMagic = [8]byte{'S', 'C', 'D', 'B', 'S', 'E', 'G', '1'}

// Segment versions. v1 records carried [key][ord][doc]; v2 adds the
// version's birth height between ord and doc. Loading accepts both
// (v1 records load at height 0).
const (
	segVersionV1 = 1
	segVersion   = 2
)

const manifestName = "MANIFEST"

// manifest is the engine's atomically swapped root pointer: which
// generation is current, its WAL file, and its segment files.
type manifest struct {
	Version  int      `json:"version"`
	Gen      uint64   `json:"gen"`
	WAL      string   `json:"wal"`
	Segments []string `json:"segments"`
}

func walName(gen uint64) string { return fmt.Sprintf("wal-%06d.log", gen) }

func segName(gen uint64, idx int) string { return fmt.Sprintf("seg-%06d-%03d.seg", gen, idx) }

// readManifest loads dir's manifest; a missing file means generation 0
// with no segments.
func readManifest(dir string) (manifest, error) {
	data, err := os.ReadFile(filepath.Join(dir, manifestName))
	if os.IsNotExist(err) {
		return manifest{Version: 1, Gen: 0, WAL: walName(0)}, nil
	}
	if err != nil {
		return manifest{}, err
	}
	var m manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return manifest{}, fmt.Errorf("storage: corrupt manifest: %w", err)
	}
	if m.WAL == "" {
		m.WAL = walName(m.Gen)
	}
	return m, nil
}

// writeManifest atomically replaces dir's manifest (tmp + fsync +
// rename + directory fsync).
func writeManifest(dir string, m manifest) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	tmp := filepath.Join(dir, manifestName+".tmp")
	if err := writeFileSync(tmp, data); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(dir, manifestName)); err != nil {
		return err
	}
	return syncDir(dir)
}

func writeFileSync(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// crcWriter feeds everything written through a running CRC32-C.
type crcWriter struct {
	w   io.Writer
	crc uint32
}

func (cw *crcWriter) Write(p []byte) (int, error) {
	cw.crc = crc32.Update(cw.crc, castagnoli, p)
	return cw.w.Write(p)
}

// writeSegment snapshots one collection into the segment file at path:
// records sorted by key, each carrying its insertion counter so the
// loader can rebuild iteration order. The file is fsynced into place
// via a temporary name.
func writeSegment(path string, c *MemCollection) error {
	type rec struct {
		key    string
		doc    map[string]any
		ord    uint64
		height int64
	}
	var recs []rec
	c.scanHead(func(key string, v *docVersion) bool {
		recs = append(recs, rec{key: key, doc: v.doc, ord: v.ord, height: v.height})
		return true
	})
	sort.Slice(recs, func(i, j int) bool { return recs[i].key < recs[j].key })

	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	defer os.Remove(tmp) // no-op after the rename succeeds
	bw := bufio.NewWriterSize(f, 1<<16)
	if _, err := bw.Write(segMagic[:]); err != nil {
		f.Close()
		return err
	}
	cw := &crcWriter{w: bw}
	var scratch []byte
	emit := func(p []byte) error {
		_, err := cw.Write(p)
		return err
	}
	scratch = append(scratch[:0], segVersion)
	scratch = appendString(scratch, c.name)
	scratch = appendUvarint(scratch, uint64(len(recs)))
	if err := emit(scratch); err != nil {
		f.Close()
		return err
	}
	for _, rc := range recs {
		data, err := marshalDoc(rc.doc)
		if err != nil {
			f.Close()
			return err
		}
		scratch = appendString(scratch[:0], rc.key)
		scratch = appendUvarint(scratch, rc.ord)
		scratch = appendUvarint(scratch, uint64(rc.height))
		scratch = appendBytes(scratch, data)
		if err := emit(scratch); err != nil {
			f.Close()
			return err
		}
	}
	var footer [4]byte
	binary.BigEndian.PutUint32(footer[:], cw.crc)
	if _, err := bw.Write(footer[:]); err != nil {
		f.Close()
		return err
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// loadSegment reads the segment file at path into mem, verifying the
// whole-file checksum before handing documents out. It returns the
// highest birth height seen, so Open can recover the height clock.
func loadSegment(path string, mem *Memory) (int64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	if len(data) < len(segMagic)+4 || [8]byte(data[:8]) != segMagic {
		return 0, fmt.Errorf("storage: %s: not a segment file", filepath.Base(path))
	}
	body := data[len(segMagic) : len(data)-4]
	want := binary.BigEndian.Uint32(data[len(data)-4:])
	if crc32.Checksum(body, castagnoli) != want {
		return 0, fmt.Errorf("storage: %s: checksum mismatch", filepath.Base(path))
	}
	r := &byteReader{b: body}
	ver, err := r.readByte()
	if err != nil {
		return 0, err
	}
	if ver != segVersionV1 && ver != segVersion {
		return 0, fmt.Errorf("storage: %s: unknown segment version %d", filepath.Base(path), ver)
	}
	name, err := r.readString()
	if err != nil {
		return 0, err
	}
	count, err := r.uvarint()
	if err != nil {
		return 0, err
	}
	coll := mem.coll(name)
	var maxH int64
	for i := uint64(0); i < count; i++ {
		key, err := r.readString()
		if err != nil {
			return 0, err
		}
		ord, err := r.uvarint()
		if err != nil {
			return 0, err
		}
		var height int64
		if ver >= segVersion {
			h, err := r.uvarint()
			if err != nil {
				return 0, err
			}
			height = int64(h)
		}
		raw, err := r.bytes()
		if err != nil {
			return 0, err
		}
		doc, err := unmarshalDoc(raw)
		if err != nil {
			return 0, err
		}
		coll.putLoaded(key, doc, ord, height)
		if height > maxH {
			maxH = height
		}
	}
	coll.finishLoad()
	return maxH, nil
}
