package storage

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
)

// Mutation ops inside a WAL payload. opPrepare and opDecide are the
// cross-shard two-phase-commit record types: both carry a document
// like opPut (they target the reserved TwoPCCollection), but keep
// distinct frame tags so a WAL reader can classify 2PC traffic
// without parsing document payloads.
const (
	opPut     = 1
	opDelete  = 2
	opDrop    = 3 // drop a whole collection
	opPrepare = 4 // 2PC participant PREPARE record
	opDecide  = 5 // 2PC coordinator/participant decision record
)

// WAL payload versions. v1 had no height; v2 prefixes the mutation
// list with the block height the group's writes were stamped with.
// Decoding accepts both (v1 groups replay at height 0).
const (
	walPayloadV1      = 1
	walPayloadVersion = 2
)

// mutation is one durable document change staged into a WAL group.
type mutation struct {
	op   byte
	coll string
	key  string
	doc  []byte // canonical JSON, opPut only
}

func appendUvarint(b []byte, v uint64) []byte {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], v)
	return append(b, tmp[:n]...)
}

func appendString(b []byte, s string) []byte {
	b = appendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func appendBytes(b, p []byte) []byte {
	b = appendUvarint(b, uint64(len(p)))
	return append(b, p...)
}

// byteReader walks an encoded payload.
type byteReader struct {
	b   []byte
	off int
}

func (r *byteReader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		return 0, fmt.Errorf("storage: bad uvarint at offset %d", r.off)
	}
	r.off += n
	return v, nil
}

func (r *byteReader) bytes() ([]byte, error) {
	n, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if uint64(len(r.b)-r.off) < n {
		return nil, fmt.Errorf("storage: short field at offset %d", r.off)
	}
	p := r.b[r.off : r.off+int(n)]
	r.off += int(n)
	return p, nil
}

func (r *byteReader) readString() (string, error) {
	p, err := r.bytes()
	return string(p), err
}

func (r *byteReader) readByte() (byte, error) {
	if r.off >= len(r.b) {
		return 0, fmt.Errorf("storage: short payload")
	}
	b := r.b[r.off]
	r.off++
	return b, nil
}

// encodeGroup renders a mutation group into one WAL payload, stamped
// with the block height the group's memtable writes carried.
func encodeGroup(height int64, muts []mutation) []byte {
	b := []byte{walPayloadVersion}
	b = appendUvarint(b, uint64(height))
	b = appendUvarint(b, uint64(len(muts)))
	for _, m := range muts {
		b = append(b, m.op)
		b = appendString(b, m.coll)
		b = appendString(b, m.key)
		if m.op == opPut || m.op == opPrepare || m.op == opDecide {
			b = appendBytes(b, m.doc)
		}
	}
	return b
}

// decodeGroup parses one WAL payload, calling fn per mutation with
// the group's block height (0 for v1 payloads). The doc slice aliases
// the payload; fn must not retain it.
func decodeGroup(payload []byte, fn func(height int64, m mutation) error) error {
	r := &byteReader{b: payload}
	ver, err := r.readByte()
	if err != nil {
		return err
	}
	if ver != walPayloadV1 && ver != walPayloadVersion {
		return fmt.Errorf("storage: unknown wal payload version %d", ver)
	}
	var height int64
	if ver >= walPayloadVersion {
		h, err := r.uvarint()
		if err != nil {
			return err
		}
		height = int64(h)
	}
	count, err := r.uvarint()
	if err != nil {
		return err
	}
	for i := uint64(0); i < count; i++ {
		var m mutation
		if m.op, err = r.readByte(); err != nil {
			return err
		}
		if m.coll, err = r.readString(); err != nil {
			return err
		}
		if m.key, err = r.readString(); err != nil {
			return err
		}
		switch m.op {
		case opPut, opPrepare, opDecide:
			if m.doc, err = r.bytes(); err != nil {
				return err
			}
		case opDelete, opDrop:
		default:
			return fmt.Errorf("storage: unknown wal op %d", m.op)
		}
		if err := fn(height, m); err != nil {
			return err
		}
	}
	return nil
}

// EncodableDoc reports whether doc survives the durability round-trip
// — the same canonical-JSON encoding a disk backend's Put performs.
// The pipelined block commit checks user-controlled documents in its
// parallel apply phase, so an unencodable transaction is skipped with
// no side effects before the seal ever touches the WAL.
func EncodableDoc(doc map[string]any) error {
	_, err := marshalDoc(doc)
	return err
}

// marshalDoc renders a document into canonical JSON (object keys are
// sorted by encoding/json, so identical documents encode identically).
func marshalDoc(doc map[string]any) ([]byte, error) {
	data, err := json.Marshal(doc)
	if err != nil {
		return nil, fmt.Errorf("storage: document not JSON-representable: %w", err)
	}
	return data, nil
}

func unmarshalDoc(data []byte) (map[string]any, error) {
	var doc map[string]any
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("storage: corrupt document: %w", err)
	}
	return doc, nil
}
