package storage

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"smartchaindb/internal/obs"
)

// Options tunes a disk Engine.
type Options struct {
	// NoSync skips fsync on WAL commits. Writes still reach the file
	// (crash recovery from the file's bytes keeps working); only
	// power-loss durability is traded away. The test suites use it to
	// run the full tier-1 battery over the disk backend at memory
	// speed.
	NoSync bool
	// CompactWALBytes triggers an automatic compaction once the WAL
	// grows past this size. <= 0 means DefaultCompactWALBytes.
	CompactWALBytes int64
}

// DefaultCompactWALBytes is the automatic-compaction threshold.
const DefaultCompactWALBytes = 64 << 20

// Engine is the disk backend: the shared sharded memtable as the
// resident working set, a group-fsynced WAL for durability, and
// sorted segment files written by Compact. See the package comment
// for the on-disk formats.
type Engine struct {
	dir  string
	opts Options

	// compactMu is held shared by every logger and exclusively by
	// Compact, so a WAL-generation swap never races an append.
	compactMu sync.RWMutex

	// stageMu guards the open-group state. While a Group is open,
	// mutations from any goroutine stage into it and become durable
	// when the group commits as one WAL record.
	stageMu   sync.Mutex
	groupOpen bool
	staged    []mutation

	// groupMu serializes Groups.
	groupMu sync.Mutex

	mu     sync.Mutex // guards wal/gen swaps, reg, and closed
	wal    *wal
	gen    uint64
	closed bool
	reg    *obs.Registry

	lock *os.File // flock on <dir>/LOCK for the engine's lifetime
	mem  *Memory
}

// Open loads (or creates) the engine at dir: newest segment
// generation first, then the WAL tail, truncating a torn final
// record. The returned engine serves reads from memory and appends
// every mutation group to the WAL.
func Open(dir string, opts Options) (*Engine, error) {
	if opts.CompactWALBytes <= 0 {
		opts.CompactWALBytes = DefaultCompactWALBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	// One engine per directory: two writers appending to the same WAL
	// would silently corrupt each other's acknowledged records.
	lock, err := lockDir(dir)
	if err != nil {
		return nil, err
	}
	e := &Engine{dir: dir, opts: opts, lock: lock, mem: NewMemory()}
	man, err := readManifest(dir)
	if err != nil {
		e.unlock()
		return nil, err
	}
	e.gen = man.Gen
	var maxH int64
	for _, seg := range man.Segments {
		h, err := loadSegment(filepath.Join(dir, seg), e.mem)
		if err != nil {
			e.unlock()
			return nil, err
		}
		if h > maxH {
			maxH = h
		}
	}
	walPath := filepath.Join(dir, man.WAL)
	size, err := replayWAL(walPath, func(payload []byte) error {
		return decodeGroup(payload, func(h int64, m mutation) error {
			if h > maxH {
				maxH = h
			}
			return e.applyToMem(h, m)
		})
	})
	if err != nil {
		e.unlock()
		return nil, err
	}
	// Snapshot visibility starts at the highest recovered height with
	// no history below it: version history does not survive a restart.
	e.mem.recoverClock(maxH)
	e.wal, err = openWALForAppend(walPath, size, opts.NoSync)
	if err != nil {
		e.unlock()
		return nil, err
	}
	if e.wal.bytes() > opts.CompactWALBytes {
		if err := e.Compact(); err != nil {
			e.wal.close()
			e.unlock()
			return nil, err
		}
	}
	return e, nil
}

// applyToMem replays one recovered mutation into the memtable at its
// logged block height.
func (e *Engine) applyToMem(h int64, m mutation) error {
	switch m.op {
	case opPut, opPrepare, opDecide:
		doc, err := unmarshalDoc(m.doc)
		if err != nil {
			return err
		}
		e.mem.coll(m.coll).putReplay(m.key, doc, h)
		return nil
	case opDelete:
		e.mem.coll(m.coll).deleteReplay(m.key, h)
		return nil
	case opDrop:
		return e.mem.Drop(m.coll)
	}
	return fmt.Errorf("storage: unknown op %d", m.op)
}

// Dir returns the engine's data directory.
func (e *Engine) Dir() string { return e.dir }

// apply makes one mutation durable and applies it to the memtable.
// While a group is open the mutation stages into it (the open Group
// holds the compaction lock, covering the memtable update); otherwise
// it commits as its own WAL record, group-fsynced with any concurrent
// committers, under the compaction lock so a WAL-generation swap can
// never separate the log append from the memtable update.
func (e *Engine) apply(m mutation, memApply func() error) error {
	e.stageMu.Lock()
	if e.groupOpen {
		// Stage and update the memtable in one stageMu critical
		// section: the group cannot close (and compaction cannot
		// snapshot) between the WAL staging and the memtable write,
		// and same-key mutations hit both logs in the same order.
		e.staged = append(e.staged, m)
		err := memApply()
		e.stageMu.Unlock()
		return err
	}
	e.stageMu.Unlock()
	e.compactMu.RLock()
	defer e.compactMu.RUnlock()
	if err := e.commitPayload(encodeGroup(e.mem.StampHeight(), []mutation{m})); err != nil {
		return err
	}
	return memApply()
}

func (e *Engine) commitPayload(payload []byte) error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return fmt.Errorf("storage: engine is closed")
	}
	w := e.wal
	e.mu.Unlock()
	return w.commit(payload)
}

// Group commits every mutation fn issues as one atomic WAL record.
// Reads inside fn see the group's writes immediately; durability is
// all-or-nothing at the record boundary, which is how a block commit
// survives (or wholly vanishes across) a crash.
func (e *Engine) Group(fn func() error) error {
	if err := e.group(fn); err != nil {
		return err
	}
	// A node that cannot fold its WAL must hear about it: surfacing
	// the compaction failure here (even though the group itself is
	// already durable) stops the engine before the log grows without
	// bound on a sick disk.
	return e.maybeCompact()
}

func (e *Engine) group(fn func() error) (err error) {
	e.groupMu.Lock()
	defer e.groupMu.Unlock()
	e.compactMu.RLock()
	defer e.compactMu.RUnlock()

	e.stageMu.Lock()
	e.groupOpen = true
	e.staged = e.staged[:0]
	e.stageMu.Unlock()

	// Closing the group is deferred so a panicking fn cannot leave
	// groupOpen set — which would silently route every later
	// mutation into a stage buffer nobody flushes. Mutations issued
	// by fn already reached the memtable, so the record must land
	// even when fn failed part-way: the callers' per-item atomicity
	// (a failing transaction mutates nothing) decides what got
	// staged, the group decides crash atomicity.
	flushed := false
	flush := func() error {
		if flushed {
			return nil
		}
		flushed = true
		e.stageMu.Lock()
		e.groupOpen = false
		staged := e.staged
		e.staged = nil
		e.stageMu.Unlock()
		if len(staged) == 0 {
			return nil
		}
		// The group flushes before its block seals, so the stamp still
		// names the height the staged memtable writes carried.
		return e.commitPayload(encodeGroup(e.mem.StampHeight(), staged))
	}
	defer func() {
		// A flush failure outranks fn's error: it means acknowledged
		// memtable state never became durable.
		if ferr := flush(); ferr != nil {
			err = ferr
		}
	}()
	return fn()
}

// maybeCompact compacts when the WAL outgrew the threshold. Called
// without any engine lock held.
func (e *Engine) maybeCompact() error {
	e.mu.Lock()
	w := e.wal
	e.mu.Unlock()
	if w != nil && w.bytes() > e.opts.CompactWALBytes {
		return e.Compact()
	}
	return nil
}

// Collection returns the named backend collection, creating it on
// first use. Handles resolve the live memtable collection per
// operation, so a handle held across a Drop sees the re-created
// collection exactly as a WAL replay would.
func (e *Engine) Collection(name string) Collection {
	e.mem.coll(name)
	return &engineColl{e: e, name: name}
}

// CollectionNames lists existing collections, sorted.
func (e *Engine) CollectionNames() []string { return e.mem.CollectionNames() }

// BeginBlock opens block h on the engine's height clock.
func (e *Engine) BeginBlock(h int64) { e.mem.BeginBlock(h) }

// SealBlock publishes block h and garbage-collects stale versions.
func (e *Engine) SealBlock(h int64) { e.mem.SealBlock(h) }

// Visible returns the highest sealed height.
func (e *Engine) Visible() int64 { return e.mem.Visible() }

// Floor returns the lowest height snapshot reads are exact for.
func (e *Engine) Floor() int64 { return e.mem.Floor() }

// StampHeight returns the height the next write is stamped with.
func (e *Engine) StampHeight() int64 { return e.mem.StampHeight() }

// SetRetain sets K, the number of sealed heights retained.
func (e *Engine) SetRetain(k int64) { e.mem.SetRetain(k) }

// SetObs attaches an observability registry: WAL group bytes / fsync
// latency, segment and generation gauges, compaction durations, and
// the memtable's MVCC metrics all record into it.
func (e *Engine) SetObs(reg *obs.Registry) {
	e.mem.SetObs(reg)
	e.mu.Lock()
	defer e.mu.Unlock()
	e.reg = reg
	if e.wal != nil {
		e.wal.setObs(reg)
	}
	if reg != nil {
		segs, _ := filepath.Glob(filepath.Join(e.dir, fmt.Sprintf("seg-%06d-*.seg", e.gen)))
		reg.Gauge("storage.segments").Set(int64(len(segs)))
		reg.Gauge("storage.gen").Set(int64(e.gen))
	}
}

// Drop removes a collection and logs the removal.
func (e *Engine) Drop(name string) error {
	return e.apply(mutation{op: opDrop, coll: name}, func() error {
		return e.mem.Drop(name)
	})
}

// Compact snapshots every collection into a fresh generation of
// sorted segment files, atomically swaps the manifest, starts an
// empty WAL, and removes the previous generation's files.
func (e *Engine) Compact() error {
	e.compactMu.Lock()
	defer e.compactMu.Unlock()
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return fmt.Errorf("storage: engine is closed")
	}
	t0 := time.Now()

	oldGen := e.gen
	newGen := e.gen + 1
	names := e.mem.CollectionNames()
	segs := make([]string, 0, len(names))
	for i, name := range names {
		seg := segName(newGen, i)
		if err := writeSegment(filepath.Join(e.dir, seg), e.mem.coll(name)); err != nil {
			return fmt.Errorf("storage: compact %s: %w", name, err)
		}
		segs = append(segs, seg)
	}
	newWAL, err := createWAL(filepath.Join(e.dir, walName(newGen)), e.opts.NoSync)
	if err != nil {
		return err
	}
	if err := writeManifest(e.dir, manifest{Version: 1, Gen: newGen, WAL: walName(newGen), Segments: segs}); err != nil {
		newWAL.close()
		return err
	}
	oldWAL := e.wal
	e.wal = newWAL
	e.gen = newGen
	newWAL.setObs(e.reg)
	e.reg.Histogram("storage.compact_ns").ObserveSince(t0)
	e.reg.Counter("storage.compactions").Inc()
	e.reg.Gauge("storage.segments").Set(int64(len(segs)))
	e.reg.Gauge("storage.gen").Set(int64(newGen))
	if oldWAL != nil {
		oldWAL.close()
	}
	// The manifest no longer references the old generation; removal
	// is best-effort cleanup.
	os.Remove(filepath.Join(e.dir, walName(oldGen)))
	if olds, err := filepath.Glob(filepath.Join(e.dir, fmt.Sprintf("seg-%06d-*.seg", oldGen))); err == nil {
		for _, p := range olds {
			os.Remove(p)
		}
	}
	return nil
}

// Stats reports the engine's on-disk shape.
type Stats struct {
	Gen      uint64
	WALBytes int64
	Segments int
}

// Stats returns current generation, WAL size, and segment count.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	s := Stats{Gen: e.gen}
	if e.wal != nil {
		s.WALBytes = e.wal.bytes()
	}
	segs, _ := filepath.Glob(filepath.Join(e.dir, fmt.Sprintf("seg-%06d-*.seg", e.gen)))
	s.Segments = len(segs)
	return s
}

// Close flushes and closes the WAL. The directory can be reopened.
func (e *Engine) Close() error {
	e.compactMu.Lock()
	defer e.compactMu.Unlock()
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return nil
	}
	e.closed = true
	var err error
	if e.wal != nil {
		err = e.wal.close()
	}
	e.unlock()
	return err
}

// unlock releases the directory lock (closing the fd drops the flock).
func (e *Engine) unlock() {
	if e.lock != nil {
		e.lock.Close()
		e.lock = nil
	}
}

// engineColl is one collection handle: memtable for reads, WAL for
// durability. Writes resolve (re-creating if needed) the live
// memtable collection, mirroring what a WAL replay of the same ops
// would produce; reads peek without re-registering, so a stale handle
// held across a Drop stays inert like the memory backend's.
type engineColl struct {
	e    *Engine
	name string
}

func (c *engineColl) mem() *MemCollection { return c.e.mem.coll(c.name) }

// memRead returns the live memtable collection or nil after a Drop.
func (c *engineColl) memRead() *MemCollection { return c.e.mem.peek(c.name) }

func (c *engineColl) Get(key string) (map[string]any, bool) {
	return c.GetAt(key, HeightLatest)
}

func (c *engineColl) GetAt(key string, h int64) (map[string]any, bool) {
	if m := c.memRead(); m != nil {
		return m.GetAt(key, h)
	}
	return nil, false
}

func (c *engineColl) Has(key string) bool {
	_, ok := c.Get(key)
	return ok
}

func (c *engineColl) Ords(keys []string) map[string]uint64 {
	return c.OrdsAt(keys, HeightLatest)
}

func (c *engineColl) OrdsAt(keys []string, h int64) map[string]uint64 {
	if m := c.memRead(); m != nil {
		return m.OrdsAt(keys, h)
	}
	return nil
}

func (c *engineColl) Len() int { return c.LenAt(HeightLatest) }

func (c *engineColl) LenAt(h int64) int {
	if m := c.memRead(); m != nil {
		return m.LenAt(h)
	}
	return 0
}

func (c *engineColl) Keys() []string { return c.KeysAt(HeightLatest) }

func (c *engineColl) KeysAt(h int64) []string {
	if m := c.memRead(); m != nil {
		return m.KeysAt(h)
	}
	return nil
}

func (c *engineColl) Scan(fn func(key string, doc map[string]any) bool) {
	c.ScanAt(HeightLatest, fn)
}

func (c *engineColl) ScanAt(h int64, fn func(key string, doc map[string]any) bool) {
	if m := c.memRead(); m != nil {
		m.ScanAt(h, fn)
	}
}

func (c *engineColl) Put(key string, doc map[string]any) error {
	data, err := marshalDoc(doc)
	if err != nil {
		return err
	}
	return c.e.apply(mutation{op: opPut, coll: c.name, key: key, doc: data}, func() error {
		return c.mem().Put(key, doc)
	})
}

func (c *engineColl) Delete(key string) error {
	if m := c.memRead(); m == nil || !m.Has(key) {
		return nil
	}
	return c.e.apply(mutation{op: opDelete, coll: c.name, key: key}, func() error {
		return c.mem().Delete(key)
	})
}
