package storage

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// TestCrashAtRandomWALOffset is the torn-write property test: commit
// a sequence of mutation groups ("blocks"), kill the writer by
// truncating the WAL at a random byte offset, reopen, and require the
// recovered store to equal the state after the last group whose bytes
// fully survived — never a partial group.
func TestCrashAtRandomWALOffset(t *testing.T) {
	rng := rand.New(rand.NewSource(20260726))
	for trial := 0; trial < 25; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial%02d", trial), func(t *testing.T) {
			dir := t.TempDir()
			e, err := Open(dir, Options{NoSync: true})
			if err != nil {
				t.Fatal(err)
			}
			c := e.Collection("txs")
			u := e.Collection("utxos")

			walPath := filepath.Join(dir, walName(0))
			nGroups := 5 + rng.Intn(6)
			// snapshots[i] is the full state after group i; ends[i] the
			// WAL length once group i is on disk.
			snapshots := make([]map[string]map[string]map[string]any, 0, nGroups+1)
			ends := make([]int64, 0, nGroups+1)
			snapshots = append(snapshots, dump(e))
			ends = append(ends, walSize(t, walPath))
			key := 0
			for g := 0; g < nGroups; g++ {
				err := e.Group(func() error {
					n := 1 + rng.Intn(8)
					for j := 0; j < n; j++ {
						k := fmt.Sprintf("k%04d", key)
						key++
						if err := c.Put(k, doc("g", float64(g), "j", float64(j))); err != nil {
							return err
						}
						if err := u.Put("u-"+k, doc("spent", false)); err != nil {
							return err
						}
						if j%3 == 2 {
							// Mutate an earlier document inside the group.
							if err := u.Put("u-"+k, doc("spent", true, "spent_by", k)); err != nil {
								return err
							}
						}
					}
					return nil
				})
				if err != nil {
					t.Fatal(err)
				}
				snapshots = append(snapshots, dump(e))
				ends = append(ends, walSize(t, walPath))
			}

			// Kill: drop the directory lock as the kernel would for a
			// dead process, then truncate the WAL at a uniformly
			// random offset.
			e.unlock()
			full := ends[len(ends)-1]
			cut := int64(rng.Int63n(full + 1))
			if err := os.Truncate(walPath, cut); err != nil {
				t.Fatal(err)
			}
			// The expected survivor is the last group fully on disk.
			survivor := 0
			for i, end := range ends {
				if end <= cut {
					survivor = i
				}
			}

			e2, err := Open(dir, Options{NoSync: true})
			if err != nil {
				t.Fatalf("reopen after cut at %d/%d: %v", cut, full, err)
			}
			got := dump(e2)
			e2.Close()
			if !reflect.DeepEqual(got, snapshots[survivor]) {
				t.Fatalf("cut at byte %d of %d: recovered state is not the last fully-committed group %d",
					cut, full, survivor)
			}
		})
	}
}

func walSize(t *testing.T, path string) int64 {
	t.Helper()
	fi, err := os.Stat(path)
	if os.IsNotExist(err) {
		return 0
	}
	if err != nil {
		t.Fatal(err)
	}
	return fi.Size()
}
