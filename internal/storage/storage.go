// Package storage is the persistence layer under the document store: a
// dependency-free embedded storage engine in the spirit of the
// log-structured stores (bbolt, pebble) real blockchain databases sit
// on. It offers two backends behind one interface:
//
//   - Memory (NewMemory): the original volatile backend — sharded
//     in-memory maps, no files. A restarted node starts empty.
//   - Engine (Open): a disk backend combining an append-only
//     write-ahead log with immutable sorted segment files. Every
//     mutation is framed into the WAL ([length][CRC32-C][payload])
//     and group-fsynced; Compact snapshots the live state into sorted
//     per-collection segment files and starts a fresh WAL generation.
//     Open replays segments then the WAL tail, truncating a torn
//     final record, so a killed node recovers to its last durable
//     group — for the ledger, the last fully committed block.
//
// File layout of an Engine directory:
//
//	MANIFEST                 current generation (JSON, atomically renamed)
//	wal-<gen>.log            append-only log of mutation groups
//	seg-<gen>-<idx>.seg      one sorted immutable segment per collection
//
// WAL record frame (big endian):
//
//	[4B payload length][4B CRC32-C of payload][payload]
//
// WAL payload (v2; v1 lacked the height and decodes as height 0):
//
//	[1B version][height uvarint][count uvarint] then per mutation:
//	[1B op (1=put 2=delete 3=drop-collection)]
//	[collection uvarint len + bytes][key uvarint len + bytes]
//	[doc uvarint len + canonical JSON]   (op=put only)
//
// Segment file (v2; v1 records lacked the height):
//
//	"SCDBSEG1" [1B version][collection][count uvarint]
//	records sorted by key:
//	[key][ord uvarint][height uvarint][doc len uvarint][doc JSON]
//	[4B CRC32-C of everything after the magic]
//
// ord is the document's insertion counter; reloading sorts keys by ord
// so iteration order survives restarts byte-for-byte. height is the
// block height the version was written at (the MVCC stamp).
//
// # MVCC snapshot reads
//
// Both backends version every document by block height. A caller
// brackets a block commit with BeginBlock(h) / SealBlock(h): writes in
// between are stamped h and stay invisible to snapshot reads at
// heights below h until the seal publishes them. Each key holds an
// immutable version chain (newest first); reads at height h resolve
// the newest version with height <= h using atomics only — the read
// path takes no collection, shard, or order lock. Writes outside a
// block are stamped with the current visible height and become
// visible immediately (the standalone relaxation).
//
// SealBlock retains the last K sealed heights (SetRetain, default
// DefaultRetainHeights) and garbage-collects versions no retained
// height can observe; Floor reports the oldest exact height. Version
// history does not survive a restart: Open recovers every document at
// its logged height but pins the floor to the recovered visible
// height.
package storage

import "smartchaindb/internal/obs"

// TwoPCCollection is the reserved collection the two-phase-commit log
// lives in. It is an ordinary collection at the storage layer (it
// replays from the WAL, survives Compact as a segment, and is
// versioned like any other), but the ledger fingerprint excludes it
// and the docstore never indexes it — it is coordination state, not
// chain state.
const TwoPCCollection = "__twopc__"

// Backend is the persistence layer a docstore.Store runs over. It was
// extracted from the document store's collection primitives so the
// same Store (filters, indexes, deep-copy semantics) runs unchanged
// over volatile memory or the durable disk engine.
//
// Concurrency contract: Collection handles are safe for concurrent
// use. A Group serializes against other Groups; mutations issued
// outside an open Group while one is active join that group's
// atomicity (they become durable when the group commits).
type Backend interface {
	// Collection returns the named backend collection, creating it on
	// first use. Creation alone is not durable: an empty collection
	// that never receives a document is not persisted until Compact.
	Collection(name string) Collection
	// CollectionNames lists existing collections, sorted.
	CollectionNames() []string
	// Drop removes a collection and its documents.
	Drop(name string) error
	// Group runs fn and commits every mutation it issues as one
	// atomic, durable unit — on disk, a single WAL record covering
	// the whole group, fsynced once. Reads inside fn observe the
	// group's own writes. If fn returns an error the error is
	// returned, but mutations already applied stay applied in memory;
	// atomicity is a durability guarantee (all-or-nothing on disk
	// after a crash), not a rollback mechanism.
	Group(fn func() error) error
	// Compact folds the log into fresh segment files (disk) or is a
	// no-op (memory).
	Compact() error
	// Close flushes and releases the backend. The memory backend
	// forgets everything; the disk engine can be reopened.
	Close() error

	// BeginBlock opens block h: until SealBlock, writes are stamped h
	// and stay invisible to snapshot reads at earlier heights. Blocks
	// are sequential — at most one is open at a time.
	BeginBlock(h int64)
	// SealBlock publishes block h (Visible advances to h) and
	// garbage-collects versions outside the retention window.
	SealBlock(h int64)
	// Visible returns the highest sealed height — the height of the
	// newest committed snapshot.
	Visible() int64
	// Floor returns the lowest height snapshot reads are exact for;
	// reads below it may miss garbage-collected versions.
	Floor() int64
	// StampHeight returns the height the next write is stamped with:
	// the open block's height, or Visible outside a block.
	StampHeight() int64
	// SetRetain sets K, the number of sealed heights retained for
	// snapshot reads (minimum 1, default DefaultRetainHeights).
	SetRetain(k int64)

	// The two-phase-commit log, backing cross-shard transactions. All
	// four operate on TwoPCCollection; on disk, LogPrepare and
	// LogDecision frame dedicated WAL record types (opPrepare,
	// opDecide) so the log's durability points are visible in the
	// byte stream. Inside an open Group they join the group's atomic
	// record — the hook the participant apply uses to make
	// "seal + local decision + prepare removal" one durable unit.

	// LogPrepare durably records a participant PREPARE under key.
	LogPrepare(key string, doc map[string]any) error
	// LogDecision durably records a commit/abort decision under key.
	LogDecision(key string, doc map[string]any) error
	// ClearTwoPC removes a 2PC record; clearing a missing key is a
	// no-op.
	ClearTwoPC(key string) error
	// TwoPCScan visits the surviving 2PC records in insertion order
	// until fn returns false — the recovery walk on reopen.
	TwoPCScan(fn func(key string, doc map[string]any) bool)

	// SetObs attaches an observability registry: WAL group bytes and
	// fsync latency, segment counts, compaction durations, and MVCC
	// clock/GC metrics record into it. A nil registry (the default)
	// detaches; recording into the nil handles is a no-op.
	SetObs(reg *obs.Registry)
}

// Collection is one backend collection: an ordered, concurrency-safe
// key → document map. Iteration (Keys, Scan) is in insertion order —
// the determinism the validators' queries rely on. Documents are
// stored by reference; callers own copy-in/copy-out semantics.
type Collection interface {
	// Get returns the stored document (not a copy) and whether it
	// exists. Point reads lock only the key's shard, never the whole
	// collection.
	Get(key string) (map[string]any, bool)
	// Put stores doc under key (insert or replace). An insert appends
	// to the iteration order; a replace keeps the original position.
	// Documents must be JSON-representable (string/float64/bool/nil/
	// []any/map[string]any) — the canonical document shape everywhere
	// in this repo — or durability round-trips will change types.
	Put(key string, doc map[string]any) error
	// Delete removes key; deleting a missing key is a no-op.
	Delete(key string) error
	// Has reports whether key exists.
	Has(key string) bool
	// Ords returns the insertion counters for the given keys (missing
	// keys are absent from the result), acquired in one shot so a
	// candidate set costs a single order-lock acquisition. Ords are
	// unique per live key and ascend in insertion order (a replace
	// keeps the original counter), so index-backed readers can
	// reassemble insertion order from point reads without scanning
	// under any collection-wide lock.
	Ords(keys []string) map[string]uint64
	// Len returns the number of documents.
	Len() int
	// Keys returns the live keys in insertion order.
	Keys() []string
	// Scan visits documents in insertion order until fn returns false.
	Scan(fn func(key string, doc map[string]any) bool)

	// The At variants answer the same questions as-of block height h,
	// lock-free: they resolve each key's version chain to the newest
	// version with height <= h. HeightLatest selects the writer view,
	// making Get equivalent to GetAt(key, HeightLatest). Heights below
	// the backend's Floor may miss garbage-collected versions.
	GetAt(key string, h int64) (map[string]any, bool)
	OrdsAt(keys []string, h int64) map[string]uint64
	LenAt(h int64) int
	KeysAt(h int64) []string
	ScanAt(h int64, fn func(key string, doc map[string]any) bool)
}
