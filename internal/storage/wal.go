package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
	"time"

	"smartchaindb/internal/obs"
)

// WAL framing. Each commit appends one frame:
//
//	[4B big-endian payload length][4B CRC32-C of payload][payload]
//
// The file starts with an 8-byte magic. Recovery reads frames until
// EOF or the first bad length/CRC and truncates the file there — a
// torn final record (the process died mid-write) rolls back to the
// last fully durable group.

var walMagic = [8]byte{'S', 'C', 'D', 'B', 'W', 'A', 'L', '1'}

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

const (
	walHeaderLen     = 8
	walFrameOverhead = 8
	// maxWALPayload bounds a single record; anything larger in the
	// length field is treated as corruption during replay.
	maxWALPayload = 256 << 20
)

// wal is an append-only log with leader-based group fsync: concurrent
// committers append frames under the mutex, then the first one to
// reach the sync point fsyncs once for every frame written so far and
// wakes the rest — one fsync per batch of concurrent commits.
type wal struct {
	noSync bool

	mu        sync.Mutex
	cond      *sync.Cond
	f         *os.File
	size      int64 // bytes written (header included)
	syncedEnd int64 // bytes known durable
	syncing   bool
	err       error // sticky I/O failure; the engine is dead once set

	// Metric handles (guarded by mu; nil = no-op).
	fsyncNs    *obs.Histogram
	groupBytes *obs.Histogram
	groups     *obs.Counter
}

// setObs attaches (nil: detaches) the WAL's metric handles.
func (w *wal) setObs(reg *obs.Registry) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if reg == nil {
		w.fsyncNs, w.groupBytes, w.groups = nil, nil, nil
		return
	}
	w.fsyncNs = reg.Histogram("storage.wal.fsync_ns")
	w.groupBytes = reg.Histogram("storage.wal.group_bytes")
	w.groups = reg.Counter("storage.wal.groups")
}

// createWAL makes a fresh, empty, synced WAL file at path.
func createWAL(path string, noSync bool) (*wal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	if _, err := f.Write(walMagic[:]); err != nil {
		f.Close()
		return nil, err
	}
	if !noSync {
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, err
		}
	}
	w := &wal{f: f, size: walHeaderLen, syncedEnd: walHeaderLen, noSync: noSync}
	w.cond = sync.NewCond(&w.mu)
	return w, nil
}

// openWALForAppend opens an existing (already replayed and truncated)
// WAL file for appending. size is the validated byte length.
func openWALForAppend(path string, size int64, noSync bool) (*wal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	if size < walHeaderLen {
		if err := f.Truncate(0); err != nil {
			f.Close()
			return nil, err
		}
		if _, err := f.Write(walMagic[:]); err != nil {
			f.Close()
			return nil, err
		}
		size = walHeaderLen
	} else if _, err := f.Seek(size, io.SeekStart); err != nil {
		f.Close()
		return nil, err
	}
	w := &wal{f: f, size: size, syncedEnd: size, noSync: noSync}
	w.cond = sync.NewCond(&w.mu)
	return w, nil
}

// commit appends one payload frame and waits until it is durable.
// Concurrent commits share fsyncs (group commit).
func (w *wal) commit(payload []byte) error {
	if len(payload) > maxWALPayload {
		// Replay treats anything past this bound as corruption, so
		// acknowledging it would be silent data loss on restart.
		return fmt.Errorf("storage: wal record of %d bytes exceeds the %d-byte limit", len(payload), maxWALPayload)
	}
	frame := make([]byte, walFrameOverhead+len(payload))
	binary.BigEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(frame[4:8], crc32.Checksum(payload, castagnoli))
	copy(frame[8:], payload)

	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return w.err
	}
	if _, err := w.f.Write(frame); err != nil {
		w.err = fmt.Errorf("storage: wal append: %w", err)
		w.cond.Broadcast()
		return w.err
	}
	w.size += int64(len(frame))
	w.groups.Inc()
	w.groupBytes.Observe(int64(len(frame)))
	myEnd := w.size
	if w.noSync {
		return nil
	}
	for w.syncedEnd < myEnd {
		if w.err != nil {
			return w.err
		}
		if w.syncing {
			// Another committer is fsyncing; wait for its result.
			w.cond.Wait()
			continue
		}
		w.syncing = true
		target := w.size // everything appended so far rides this fsync
		fsyncNs := w.fsyncNs
		w.mu.Unlock()
		t0 := time.Now()
		err := w.f.Sync()
		fsyncNs.ObserveSince(t0)
		w.mu.Lock()
		w.syncing = false
		if err != nil {
			w.err = fmt.Errorf("storage: wal fsync: %w", err)
		} else if target > w.syncedEnd {
			w.syncedEnd = target
		}
		w.cond.Broadcast()
	}
	return w.err
}

// bytes reports the current WAL length.
func (w *wal) bytes() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.size
}

// close syncs and closes the file.
func (w *wal) close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil
	}
	var err error
	if !w.noSync && w.err == nil {
		err = w.f.Sync()
	}
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	w.f = nil
	return err
}

// replayWAL reads every intact frame of the file at path, calling
// apply for each payload in append order, and truncates the file at
// the first torn or corrupt frame. It returns the validated length.
// A missing file is an empty log.
func replayWAL(path string, apply func(payload []byte) error) (int64, error) {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	data, err := io.ReadAll(f)
	f.Close()
	if err != nil {
		return 0, err
	}
	valid := int64(0)
	if len(data) >= walHeaderLen && [8]byte(data[:8]) == walMagic {
		valid = walHeaderLen
		for {
			rest := data[valid:]
			if len(rest) < walFrameOverhead {
				break
			}
			n := int64(binary.BigEndian.Uint32(rest[0:4]))
			if n > maxWALPayload || int64(len(rest)) < walFrameOverhead+n {
				break // torn or corrupt tail
			}
			payload := rest[walFrameOverhead : walFrameOverhead+n]
			if binary.BigEndian.Uint32(rest[4:8]) != crc32.Checksum(payload, castagnoli) {
				break
			}
			if err := apply(payload); err != nil {
				return valid, err
			}
			valid += walFrameOverhead + n
		}
	}
	if valid < int64(len(data)) {
		if err := os.Truncate(path, valid); err != nil {
			return valid, fmt.Errorf("storage: truncate torn wal tail: %w", err)
		}
	}
	return valid, nil
}
