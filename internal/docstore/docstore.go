package docstore

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"smartchaindb/internal/storage"
)

// Store is a set of named collections over one storage backend. The
// zero value is not usable; call NewStore or NewStoreWith.
type Store struct {
	mu          sync.RWMutex
	backend     storage.Backend
	collections map[string]*Collection
}

// NewStore creates an empty store over the in-memory backend.
func NewStore() *Store { return NewStoreWith(storage.NewMemory()) }

// NewStoreWith creates a store over b, adopting every collection the
// backend already holds (a disk backend recovers them at open).
// Secondary indexes are not persisted; callers re-create them after
// open and CreateIndex rebuilds from the recovered documents.
func NewStoreWith(b storage.Backend) *Store {
	s := &Store{backend: b, collections: make(map[string]*Collection)}
	for _, name := range b.CollectionNames() {
		s.collections[name] = newCollection(name, b.Collection(name))
	}
	return s
}

// Collection returns the named collection, creating it on first use —
// the same lazy semantics MongoDB gives drivers.
func (s *Store) Collection(name string) *Collection {
	s.mu.RLock()
	c := s.collections[name]
	s.mu.RUnlock()
	if c != nil {
		return c
	}
	return s.locked(name, func() *Collection {
		return newCollection(name, s.backend.Collection(name))
	})
}

// locked is the one critical section Collection and Drop share: every
// create and every drop of a collection happens under the store lock,
// so a create/drop race can neither hand out a collection that
// survives its own drop nor resurrect dropped documents through a
// stale handle.
func (s *Store) locked(name string, create func() *Collection) *Collection {
	s.mu.Lock()
	defer s.mu.Unlock()
	if c := s.collections[name]; c != nil {
		return c
	}
	c := create()
	s.collections[name] = c
	return c
}

// CollectionNames lists existing collections, sorted.
func (s *Store) CollectionNames() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.backend.CollectionNames()
}

// Drop removes a collection, its documents, and its indexes. Handles
// held across the drop become inert: reads miss, writes fail with
// ErrCollectionDropped. Storage failure while logging the drop is
// fatal, like any other lost write.
func (s *Store) Drop(name string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if c := s.collections[name]; c != nil {
		// Mark under the collection's writer lock so any mutation
		// that raced the drop either completed before it or observes
		// the flag — never lands after the backend wiped the data.
		c.mu.Lock()
		c.dropped.Store(true)
		c.mu.Unlock()
		delete(s.collections, name)
	}
	if err := s.backend.Drop(name); err != nil {
		panic(fmt.Sprintf("docstore: drop %q: %v", name, err))
	}
}

// Group runs fn and commits every mutation it makes as one atomic,
// durable unit — on the disk backend a single fsynced WAL record, the
// all-or-nothing boundary crash recovery restores. The ledger wraps
// each block commit in one Group.
func (s *Store) Group(fn func() error) error { return s.backend.Group(fn) }

// Compact folds the backend's log into fresh segment files.
func (s *Store) Compact() error { return s.backend.Compact() }

// Close flushes and releases the backend.
func (s *Store) Close() error { return s.backend.Close() }

// Collection is a concurrency-safe set of documents keyed by a string
// primary key. Documents are deep-copied on the way in and out so
// callers can never alias stored state. Point reads (Get, Has) lock
// only the key's backend shard; scans and writers coordinate through
// the collection lock.
type Collection struct {
	name string

	// mu guards the secondary indexes, iteration consistency, and the
	// dropped flag. Writers hold it exclusively; full scans hold it
	// shared; point reads and planned (index-backed) reads skip it
	// entirely (the sharded backend and the indexes' own locks make
	// them safe), which is what keeps parallel validation's lookups
	// and the marketplace queries from contending with the commit
	// writer.
	mu      sync.RWMutex
	be      storage.Collection
	indexes map[string]secondaryIndex
	dropped atomic.Bool
	// scans counts executed full collection scans — the observable
	// tests use to assert a hot path resolves through the planner.
	scans atomic.Uint64
}

func newCollection(name string, be storage.Collection) *Collection {
	return &Collection{name: name, be: be, indexes: make(map[string]secondaryIndex)}
}

// Name returns the collection name.
func (c *Collection) Name() string { return c.name }

// ErrDuplicateKey reports an Insert with an existing primary key.
type ErrDuplicateKey struct{ Collection, Key string }

func (e *ErrDuplicateKey) Error() string {
	return fmt.Sprintf("docstore: duplicate key %q in collection %q", e.Key, e.Collection)
}

// ErrNotFound reports a missing primary key.
type ErrNotFound struct{ Collection, Key string }

func (e *ErrNotFound) Error() string {
	return fmt.Sprintf("docstore: key %q not found in collection %q", e.Key, e.Collection)
}

// ErrCollectionDropped reports a write through a handle that outlived
// its collection's Drop.
type ErrCollectionDropped struct{ Collection string }

func (e *ErrCollectionDropped) Error() string {
	return fmt.Sprintf("docstore: collection %q was dropped", e.Collection)
}

// Insert stores doc under key. It fails if the key already exists.
func (c *Collection) Insert(key string, doc map[string]any) error {
	if key == "" {
		return fmt.Errorf("docstore: empty key in collection %q", c.name)
	}
	cp := deepCopyMap(doc)
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.dropped.Load() {
		return &ErrCollectionDropped{Collection: c.name}
	}
	if c.be.Has(key) {
		return &ErrDuplicateKey{Collection: c.name, Key: key}
	}
	if err := c.be.Put(key, cp); err != nil {
		return err
	}
	for _, idx := range c.indexes {
		idx.add(key, cp)
	}
	return nil
}

// Upsert stores doc under key, replacing any existing document.
func (c *Collection) Upsert(key string, doc map[string]any) error {
	if key == "" {
		return nil
	}
	cp := deepCopyMap(doc)
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.dropped.Load() {
		return &ErrCollectionDropped{Collection: c.name}
	}
	old, existed := c.be.Get(key)
	if err := c.be.Put(key, cp); err != nil {
		return err
	}
	for _, idx := range c.indexes {
		if existed {
			idx.remove(key, old)
		}
		idx.add(key, cp)
	}
	return nil
}

// Get returns a copy of the document stored under key.
func (c *Collection) Get(key string) (map[string]any, error) {
	if c.dropped.Load() {
		return nil, &ErrNotFound{Collection: c.name, Key: key}
	}
	doc, ok := c.be.Get(key)
	if !ok {
		return nil, &ErrNotFound{Collection: c.name, Key: key}
	}
	return deepCopyMap(doc), nil
}

// Has reports whether key exists.
func (c *Collection) Has(key string) bool { return !c.dropped.Load() && c.be.Has(key) }

// Delete removes the document under key. Deleting a missing key is a
// no-op, matching MongoDB's deleteOne semantics.
func (c *Collection) Delete(key string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.dropped.Load() {
		return &ErrCollectionDropped{Collection: c.name}
	}
	old, ok := c.be.Get(key)
	if !ok {
		return nil
	}
	if err := c.be.Delete(key); err != nil {
		return err
	}
	for _, idx := range c.indexes {
		idx.remove(key, old)
	}
	return nil
}

// Update applies fn to a copy of the document under key and stores the
// result atomically. fn returning an error aborts the update.
func (c *Collection) Update(key string, fn func(doc map[string]any) error) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.dropped.Load() {
		return &ErrCollectionDropped{Collection: c.name}
	}
	old, ok := c.be.Get(key)
	if !ok {
		return &ErrNotFound{Collection: c.name, Key: key}
	}
	next := deepCopyMap(old)
	if err := fn(next); err != nil {
		return err
	}
	if err := c.be.Put(key, next); err != nil {
		return err
	}
	for _, idx := range c.indexes {
		idx.remove(key, old)
		idx.add(key, next)
	}
	return nil
}

// Len returns the number of documents.
func (c *Collection) Len() int {
	if c.dropped.Load() {
		return 0
	}
	return c.be.Len()
}

// Keys returns the live keys in insertion order.
func (c *Collection) Keys() []string {
	if c.dropped.Load() {
		return nil
	}
	return c.be.Keys()
}

// CreateIndex builds (or rebuilds) a hash index over the dot-path
// field. Equality filters on the path then use the index instead of a
// collection scan. Array values index every element, like MongoDB
// multikey indexes.
func (c *Collection) CreateIndex(path string) {
	c.buildIndex(path, newHashIndex(path))
}

// CreateOrderedIndex builds (or rebuilds) a sorted multikey index over
// the dot-path field. On top of everything a hash index answers, it
// serves the comparison operators (Gt, Gte, Lt, Lte) as range scans
// and value-ordered iteration (FindOrdered). It replaces any existing
// index on the path.
func (c *Collection) CreateOrderedIndex(path string) {
	c.buildIndex(path, newOrderedIndex(path))
}

// buildIndex populates idx from the current documents and installs it
// under the collection's writer lock, so no mutation can slip between
// the backfill scan and the index going live.
func (c *Collection) buildIndex(path string, idx secondaryIndex) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.be.Scan(func(key string, doc map[string]any) bool {
		idx.add(key, doc)
		return true
	})
	c.indexes[path] = idx
}

// IndexedPaths lists the indexed dot-paths, sorted.
func (c *Collection) IndexedPaths() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	paths := make([]string, 0, len(c.indexes))
	for p := range c.indexes {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	return paths
}

// Find returns copies of all documents matching filter, in insertion
// order. A nil filter matches everything.
func (c *Collection) Find(filter Filter) []map[string]any {
	return c.FindLimit(filter, 0)
}

// FindLimit is Find with a result cap; limit <= 0 means unlimited.
func (c *Collection) FindLimit(filter Filter, limit int) []map[string]any {
	var out []map[string]any
	c.visitCandidates(filter, func(_ string, doc map[string]any) bool {
		if filter == nil || filter.Matches(doc) {
			out = append(out, deepCopyMap(doc))
			if limit > 0 && len(out) >= limit {
				return false
			}
		}
		return true
	})
	return out
}

// FindKeys returns the keys of matching documents in insertion order.
func (c *Collection) FindKeys(filter Filter) []string {
	var out []string
	c.visitCandidates(filter, func(key string, doc map[string]any) bool {
		if filter == nil || filter.Matches(doc) {
			out = append(out, key)
		}
		return true
	})
	return out
}

// FindOne returns the first matching document, or ErrNotFound.
func (c *Collection) FindOne(filter Filter) (map[string]any, error) {
	res := c.FindLimit(filter, 1)
	if len(res) == 0 {
		return nil, &ErrNotFound{Collection: c.name, Key: "<filter>"}
	}
	return res[0], nil
}

// Count returns the number of matching documents.
func (c *Collection) Count(filter Filter) int {
	n := 0
	c.visitCandidates(filter, func(_ string, doc map[string]any) bool {
		if filter == nil || filter.Matches(doc) {
			n++
		}
		return true
	})
	return n
}

// visitCandidates is the single dispatch every query path shares: a
// dropped collection yields nothing; a filter the planner can compile
// onto indexes goes through the sharded scan path (no collection
// lock); everything else full-scans under the collection read lock.
// fn must apply the filter itself — candidates from a plan are a
// superset of matches.
func (c *Collection) visitCandidates(filter Filter, fn func(key string, doc map[string]any) bool) {
	if c.dropped.Load() {
		return
	}
	if keys, ok := resolveAccess(c.Plan(filter)); ok {
		c.shardedVisit(keys, fn)
		return
	}
	c.scanVisit(fn)
}

// scanVisit is the full-scan path: the whole collection in insertion
// order under the collection read lock — serialized, like every write,
// behind the commit writer.
func (c *Collection) scanVisit(fn func(key string, doc map[string]any) bool) {
	c.scans.Add(1)
	c.mu.RLock()
	defer c.mu.RUnlock()
	c.be.Scan(fn)
}

// FullScans reports how many queries executed the full-scan path since
// the collection was created — the counter hot-path tests assert stays
// flat while planned queries run.
func (c *Collection) FullScans() uint64 { return c.scans.Load() }

// shardedVisit is the sharded scan path: it resolves index candidate
// keys through shard-locked point reads, restores insertion order
// from the backend's ord counters, and streams the documents to fn —
// never taking the collection lock, so index-backed queries (the
// UTXO / spent-set lookups of block validation) no longer serialize
// behind the commit writer. The view is per-document consistent:
// each fetched document is a committed version, but a query racing a
// writer may miss (or see) that writer's in-flight keys. Readers that
// need stability against an in-flight block commit order themselves
// through the commit fence, which holds conflicting footprints back
// until the block seals.
func (c *Collection) shardedVisit(keys []string, fn func(key string, doc map[string]any) bool) {
	type cand struct {
		key string
		ord uint64
	}
	seen := make(map[string]struct{}, len(keys))
	unique := make([]string, 0, len(keys))
	for _, k := range keys {
		if _, dup := seen[k]; dup {
			continue
		}
		seen[k] = struct{}{}
		unique = append(unique, k)
	}
	ords := c.be.Ords(unique) // one order-lock acquisition for the whole candidate set
	cands := make([]cand, 0, len(ords))
	for _, k := range unique {
		if ord, ok := ords[k]; ok {
			cands = append(cands, cand{key: k, ord: ord})
		}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].ord < cands[j].ord })
	// Documents fetch lazily inside the streaming loop, so a limited
	// query (FindOne, FindLimit) that stops early skips the remaining
	// point reads — the early exit the ordered scan used to provide.
	for _, it := range cands {
		doc, ok := c.be.Get(it.key)
		if !ok {
			continue
		}
		if !fn(it.key, doc) {
			return
		}
	}
}

// FindScan is Find forced down the full-scan path, bypassing the
// planner — the reference implementation the planner/scan differential
// tests and the query benchmarks compare against. Results are
// byte-identical to Find in content and order.
func (c *Collection) FindScan(filter Filter) []map[string]any {
	if c.dropped.Load() {
		return nil
	}
	var out []map[string]any
	c.scanVisit(func(_ string, doc map[string]any) bool {
		if filter == nil || filter.Matches(doc) {
			out = append(out, deepCopyMap(doc))
		}
		return true
	})
	return out
}

// FindOrdered returns copies of the documents matching filter in
// index-value order over orderPath — ascending, or fully reversed when
// desc — with ties broken by insertion order; limit <= 0 means
// unlimited. Documents with no scalar value at orderPath are excluded,
// and a multikey document sorts at its smallest (largest when desc)
// value.
//
// With an ordered index on orderPath the walk streams straight off the
// index plus shard-locked point reads — no collection lock, and an
// early limit skips the remaining reads entirely. Without one it falls
// back to a full scan plus sort.
func (c *Collection) FindOrdered(filter Filter, orderPath string, desc bool, limit int) []map[string]any {
	if c.dropped.Load() {
		return nil
	}
	c.mu.RLock()
	idx := c.indexes[orderPath]
	c.mu.RUnlock()
	ord, ok := idx.(*orderedIndex)
	if !ok {
		return c.findOrderedScan(filter, orderPath, desc, limit)
	}
	var out []map[string]any
	seen := make(map[string]struct{}) // multikey docs appear under several values
	for _, group := range ord.valueGroups(desc) {
		fresh := group[:0]
		for _, k := range group {
			if _, dup := seen[k]; dup {
				continue
			}
			seen[k] = struct{}{}
			fresh = append(fresh, k)
		}
		ords := c.be.Ords(fresh)
		kept := fresh[:0]
		for _, k := range fresh {
			if _, live := ords[k]; live {
				kept = append(kept, k)
			}
		}
		sort.Slice(kept, func(i, j int) bool {
			if desc {
				return ords[kept[i]] > ords[kept[j]]
			}
			return ords[kept[i]] < ords[kept[j]]
		})
		for _, k := range kept {
			doc, live := c.be.Get(k)
			if !live {
				continue
			}
			if filter == nil || filter.Matches(doc) {
				out = append(out, deepCopyMap(doc))
				if limit > 0 && len(out) >= limit {
					return out
				}
			}
		}
	}
	return out
}

// findOrderedScan is FindOrdered's no-index fallback: scan, sort by
// the extreme scalar value at orderPath, then cut to limit.
func (c *Collection) findOrderedScan(filter Filter, orderPath string, desc bool, limit int) []map[string]any {
	type item struct {
		doc map[string]any
		val ordValue
		seq int
	}
	var items []item
	seq := 0
	c.scanVisit(func(_ string, doc map[string]any) bool {
		seq++
		if filter != nil && !filter.Matches(doc) {
			return true
		}
		val, ok := extremeOrdValue(doc, orderPath, desc)
		if !ok {
			return true
		}
		items = append(items, item{doc: deepCopyMap(doc), val: val, seq: seq})
		return true
	})
	sort.SliceStable(items, func(i, j int) bool {
		cmp := items[i].val.compare(items[j].val)
		if cmp == 0 {
			cmp = items[i].seq - items[j].seq
		}
		if desc {
			return cmp > 0
		}
		return cmp < 0
	})
	if limit > 0 && len(items) > limit {
		items = items[:limit]
	}
	out := make([]map[string]any, len(items))
	for i, it := range items {
		out[i] = it.doc
	}
	return out
}

// extremeOrdValue finds the smallest (largest when max) scalar value a
// document reaches at path, flattening arrays like the indexes do.
func extremeOrdValue(doc map[string]any, path string, max bool) (ordValue, bool) {
	vals, found := lookupPath(doc, path)
	if !found {
		return ordValue{}, false
	}
	var best ordValue
	have := false
	var visit func(v any)
	visit = func(v any) {
		if arr, isArr := v.([]any); isArr {
			for _, e := range arr {
				visit(e)
			}
			return
		}
		ov, ok := ordValueOf(v)
		if !ok {
			return
		}
		if !have {
			best, have = ov, true
			return
		}
		if cmp := ov.compare(best); (max && cmp > 0) || (!max && cmp < 0) {
			best = ov
		}
	}
	for _, v := range vals {
		visit(v)
	}
	return best, have
}

func deepCopyMap(m map[string]any) map[string]any {
	if m == nil {
		return nil
	}
	out := make(map[string]any, len(m))
	for k, v := range m {
		out[k] = deepCopyValue(v)
	}
	return out
}

func deepCopyValue(v any) any {
	switch x := v.(type) {
	case map[string]any:
		return deepCopyMap(x)
	case []any:
		out := make([]any, len(x))
		for i, e := range x {
			out[i] = deepCopyValue(e)
		}
		return out
	default:
		return v
	}
}
