// Package docstore is an embedded document store playing the role
// MongoDB plays in BigchainDB/SmartchainDB: each node keeps its
// transaction, asset, metadata, UTXO, and recovery collections in one.
// It supports JSON-style documents (map[string]any), dot-path filter
// queries with Mongo-flavoured operators ($gt, $in, $elemMatch, ...),
// secondary hash indexes, and deterministic iteration — enough to
// implement the validators' lookups (getTxFromDB, getLockedBids,
// getAcceptTxForRFQ) and the marketplace queryability study.
package docstore

import (
	"fmt"
	"sort"
	"sync"
)

// Store is a set of named collections. The zero value is not usable;
// call NewStore.
type Store struct {
	mu          sync.RWMutex
	collections map[string]*Collection
}

// NewStore creates an empty store.
func NewStore() *Store {
	return &Store{collections: make(map[string]*Collection)}
}

// Collection returns the named collection, creating it on first use —
// the same lazy semantics MongoDB gives drivers.
func (s *Store) Collection(name string) *Collection {
	s.mu.RLock()
	c, ok := s.collections[name]
	s.mu.RUnlock()
	if ok {
		return c
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if c, ok := s.collections[name]; ok {
		return c
	}
	c = newCollection(name)
	s.collections[name] = c
	return c
}

// CollectionNames lists existing collections, sorted.
func (s *Store) CollectionNames() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	names := make([]string, 0, len(s.collections))
	for n := range s.collections {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Drop removes a collection and its indexes.
func (s *Store) Drop(name string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.collections, name)
}

// Collection is a concurrency-safe set of documents keyed by a string
// primary key. Documents are deep-copied on the way in and out so
// callers can never alias stored state.
type Collection struct {
	name string

	mu      sync.RWMutex
	docs    map[string]map[string]any
	order   []string // insertion order of live keys
	indexes map[string]*hashIndex
}

func newCollection(name string) *Collection {
	return &Collection{
		name:    name,
		docs:    make(map[string]map[string]any),
		indexes: make(map[string]*hashIndex),
	}
}

// Name returns the collection name.
func (c *Collection) Name() string { return c.name }

// ErrDuplicateKey reports an Insert with an existing primary key.
type ErrDuplicateKey struct{ Collection, Key string }

func (e *ErrDuplicateKey) Error() string {
	return fmt.Sprintf("docstore: duplicate key %q in collection %q", e.Key, e.Collection)
}

// ErrNotFound reports a missing primary key.
type ErrNotFound struct{ Collection, Key string }

func (e *ErrNotFound) Error() string {
	return fmt.Sprintf("docstore: key %q not found in collection %q", e.Key, e.Collection)
}

// Insert stores doc under key. It fails if the key already exists.
func (c *Collection) Insert(key string, doc map[string]any) error {
	if key == "" {
		return fmt.Errorf("docstore: empty key in collection %q", c.name)
	}
	cp := deepCopyMap(doc)
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, exists := c.docs[key]; exists {
		return &ErrDuplicateKey{Collection: c.name, Key: key}
	}
	c.docs[key] = cp
	c.order = append(c.order, key)
	for _, idx := range c.indexes {
		idx.add(key, cp)
	}
	return nil
}

// Upsert stores doc under key, replacing any existing document.
func (c *Collection) Upsert(key string, doc map[string]any) {
	if key == "" {
		return
	}
	cp := deepCopyMap(doc)
	c.mu.Lock()
	defer c.mu.Unlock()
	if old, exists := c.docs[key]; exists {
		for _, idx := range c.indexes {
			idx.remove(key, old)
			idx.add(key, cp)
		}
		c.docs[key] = cp
		return
	}
	c.docs[key] = cp
	c.order = append(c.order, key)
	for _, idx := range c.indexes {
		idx.add(key, cp)
	}
}

// Get returns a copy of the document stored under key.
func (c *Collection) Get(key string) (map[string]any, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	doc, ok := c.docs[key]
	if !ok {
		return nil, &ErrNotFound{Collection: c.name, Key: key}
	}
	return deepCopyMap(doc), nil
}

// Has reports whether key exists.
func (c *Collection) Has(key string) bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	_, ok := c.docs[key]
	return ok
}

// Delete removes the document under key. Deleting a missing key is a
// no-op, matching MongoDB's deleteOne semantics.
func (c *Collection) Delete(key string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	old, ok := c.docs[key]
	if !ok {
		return
	}
	delete(c.docs, key)
	for i, k := range c.order {
		if k == key {
			c.order = append(c.order[:i], c.order[i+1:]...)
			break
		}
	}
	for _, idx := range c.indexes {
		idx.remove(key, old)
	}
}

// Update applies fn to a copy of the document under key and stores the
// result atomically. fn returning an error aborts the update.
func (c *Collection) Update(key string, fn func(doc map[string]any) error) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	old, ok := c.docs[key]
	if !ok {
		return &ErrNotFound{Collection: c.name, Key: key}
	}
	next := deepCopyMap(old)
	if err := fn(next); err != nil {
		return err
	}
	c.docs[key] = next
	for _, idx := range c.indexes {
		idx.remove(key, old)
		idx.add(key, next)
	}
	return nil
}

// Len returns the number of documents.
func (c *Collection) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.docs)
}

// Keys returns the live keys in insertion order.
func (c *Collection) Keys() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return append([]string(nil), c.order...)
}

// CreateIndex builds (or rebuilds) a hash index over the dot-path
// field. Equality filters on the path then use the index instead of a
// collection scan. Array values index every element, like MongoDB
// multikey indexes.
func (c *Collection) CreateIndex(path string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	idx := newHashIndex(path)
	for key, doc := range c.docs {
		idx.add(key, doc)
	}
	c.indexes[path] = idx
}

// IndexedPaths lists the indexed dot-paths, sorted.
func (c *Collection) IndexedPaths() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	paths := make([]string, 0, len(c.indexes))
	for p := range c.indexes {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	return paths
}

// Find returns copies of all documents matching filter, in insertion
// order. A nil filter matches everything.
func (c *Collection) Find(filter Filter) []map[string]any {
	return c.FindLimit(filter, 0)
}

// FindLimit is Find with a result cap; limit <= 0 means unlimited.
func (c *Collection) FindLimit(filter Filter, limit int) []map[string]any {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var out []map[string]any
	for _, key := range c.candidateKeys(filter) {
		doc, ok := c.docs[key]
		if !ok {
			continue
		}
		if filter == nil || filter.Matches(doc) {
			out = append(out, deepCopyMap(doc))
			if limit > 0 && len(out) >= limit {
				break
			}
		}
	}
	return out
}

// FindKeys returns the keys of matching documents in insertion order.
func (c *Collection) FindKeys(filter Filter) []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var out []string
	for _, key := range c.candidateKeys(filter) {
		doc, ok := c.docs[key]
		if !ok {
			continue
		}
		if filter == nil || filter.Matches(doc) {
			out = append(out, key)
		}
	}
	return out
}

// FindOne returns the first matching document, or ErrNotFound.
func (c *Collection) FindOne(filter Filter) (map[string]any, error) {
	res := c.FindLimit(filter, 1)
	if len(res) == 0 {
		return nil, &ErrNotFound{Collection: c.name, Key: "<filter>"}
	}
	return res[0], nil
}

// Count returns the number of matching documents.
func (c *Collection) Count(filter Filter) int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	n := 0
	for _, key := range c.candidateKeys(filter) {
		doc, ok := c.docs[key]
		if !ok {
			continue
		}
		if filter == nil || filter.Matches(doc) {
			n++
		}
	}
	return n
}

// candidateKeys consults indexes for an equality term in the filter and
// falls back to a full scan. Caller holds at least a read lock.
func (c *Collection) candidateKeys(filter Filter) []string {
	if eqf, ok := filter.(*fieldFilter); ok {
		if idx, exists := c.indexes[eqf.path]; exists {
			if keys, usable := idx.lookup(eqf); usable {
				// Preserve insertion order for determinism.
				set := make(map[string]struct{}, len(keys))
				for _, k := range keys {
					set[k] = struct{}{}
				}
				ordered := make([]string, 0, len(keys))
				for _, k := range c.order {
					if _, ok := set[k]; ok {
						ordered = append(ordered, k)
					}
				}
				return ordered
			}
		}
	}
	if andf, ok := filter.(andFilter); ok {
		// Use the first indexable conjunct.
		for _, sub := range andf {
			if eqf, ok := sub.(*fieldFilter); ok {
				if idx, exists := c.indexes[eqf.path]; exists {
					if keys, usable := idx.lookup(eqf); usable {
						set := make(map[string]struct{}, len(keys))
						for _, k := range keys {
							set[k] = struct{}{}
						}
						ordered := make([]string, 0, len(keys))
						for _, k := range c.order {
							if _, ok := set[k]; ok {
								ordered = append(ordered, k)
							}
						}
						return ordered
					}
				}
			}
		}
	}
	return c.order
}

func deepCopyMap(m map[string]any) map[string]any {
	if m == nil {
		return nil
	}
	out := make(map[string]any, len(m))
	for k, v := range m {
		out[k] = deepCopyValue(v)
	}
	return out
}

func deepCopyValue(v any) any {
	switch x := v.(type) {
	case map[string]any:
		return deepCopyMap(x)
	case []any:
		out := make([]any, len(x))
		for i, e := range x {
			out[i] = deepCopyValue(e)
		}
		return out
	default:
		return v
	}
}
