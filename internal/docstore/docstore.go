package docstore

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"smartchaindb/internal/obs"
	"smartchaindb/internal/storage"
)

// Store is a set of named collections over one storage backend. The
// zero value is not usable; call NewStore or NewStoreWith.
type Store struct {
	mu          sync.RWMutex
	backend     storage.Backend
	collections map[string]*Collection
	reg         *obs.Registry
}

// NewStore creates an empty store over the in-memory backend.
func NewStore() *Store { return NewStoreWith(storage.NewMemory()) }

// NewStoreWith creates a store over b, adopting every collection the
// backend already holds (a disk backend recovers them at open).
// Secondary indexes are not persisted; callers re-create them after
// open and CreateIndex rebuilds from the recovered documents.
func NewStoreWith(b storage.Backend) *Store {
	s := &Store{backend: b, collections: make(map[string]*Collection)}
	for _, name := range b.CollectionNames() {
		s.collections[name] = newCollection(name, b.Collection(name), b)
	}
	return s
}

// Backend returns the storage backend the store runs over — the
// handle for block-height bracketing (BeginBlock/SealBlock) and the
// snapshot clock (Visible/Floor).
func (s *Store) Backend() storage.Backend { return s.backend }

// SetObs attaches an observability registry to the store, its backend,
// and every collection (existing and future): planner decisions, full
// scans, index probes, snapshot handles, and the backend's WAL / MVCC
// metrics all record into it. A nil registry detaches.
func (s *Store) SetObs(reg *obs.Registry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.reg = reg
	s.backend.SetObs(reg)
	for _, c := range s.collections {
		c.setObs(reg)
	}
}

// Collection returns the named collection, creating it on first use —
// the same lazy semantics MongoDB gives drivers.
func (s *Store) Collection(name string) *Collection {
	s.mu.RLock()
	c := s.collections[name]
	s.mu.RUnlock()
	if c != nil {
		return c
	}
	return s.locked(name, func() *Collection {
		return newCollection(name, s.backend.Collection(name), s.backend)
	})
}

// locked is the one critical section Collection and Drop share: every
// create and every drop of a collection happens under the store lock,
// so a create/drop race can neither hand out a collection that
// survives its own drop nor resurrect dropped documents through a
// stale handle.
func (s *Store) locked(name string, create func() *Collection) *Collection {
	s.mu.Lock()
	defer s.mu.Unlock()
	if c := s.collections[name]; c != nil {
		return c
	}
	c := create()
	c.setObs(s.reg)
	s.collections[name] = c
	return c
}

// CollectionNames lists existing collections, sorted.
func (s *Store) CollectionNames() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.backend.CollectionNames()
}

// Drop removes a collection, its documents, and its indexes. Handles
// held across the drop become inert: reads miss, writes fail with
// ErrCollectionDropped. Storage failure while logging the drop is
// fatal, like any other lost write.
func (s *Store) Drop(name string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if c := s.collections[name]; c != nil {
		// Mark under the collection's writer lock so any mutation
		// that raced the drop either completed before it or observes
		// the flag — never lands after the backend wiped the data.
		c.mu.Lock()
		c.dropped.Store(true)
		c.mu.Unlock()
		delete(s.collections, name)
	}
	if err := s.backend.Drop(name); err != nil {
		panic(fmt.Sprintf("docstore: drop %q: %v", name, err))
	}
}

// SweepIndexes garbage-collects secondary-index lifespans against the
// backend's current retention floor. The ledger calls it after every
// block seal — the moment the floor actually advances — so index GC
// tracks version GC exactly instead of amortizing by mutation count.
// Indexes whose floor has not moved (or that hold no closed spans)
// return immediately.
func (s *Store) SweepIndexes() {
	floor := s.backend.Floor()
	s.mu.RLock()
	colls := make([]*Collection, 0, len(s.collections))
	for _, c := range s.collections {
		colls = append(colls, c)
	}
	s.mu.RUnlock()
	for _, c := range colls {
		for _, idx := range c.indexMap() {
			idx.sweepFloor(floor)
		}
	}
}

// Group runs fn and commits every mutation it makes as one atomic,
// durable unit — on the disk backend a single fsynced WAL record, the
// all-or-nothing boundary crash recovery restores. The ledger wraps
// each block commit in one Group.
func (s *Store) Group(fn func() error) error { return s.backend.Group(fn) }

// Compact folds the backend's log into fresh segment files.
func (s *Store) Compact() error { return s.backend.Compact() }

// Close flushes and releases the backend.
func (s *Store) Close() error { return s.backend.Close() }

// Collection is a concurrency-safe set of documents keyed by a string
// primary key. Documents are deep-copied on the way in and out so
// callers can never alias stored state.
//
// Reads come in two flavours. The plain methods (Get, Find, ...) read
// the writer view — the newest version of every document, including
// an in-flight block's writes — which is what writers (read-modify-
// write, duplicate checks) and intra-group readers need. Snapshot /
// SnapshotAt return an immutable as-of-height view whose reads take
// no collection lock and no fence: the MVCC read path.
type Collection struct {
	name string

	// mu guards writers (who must see their own collection's index
	// maintenance atomically) and the dropped flag. Full scans of the
	// writer view hold it shared so they see a stable iteration;
	// point reads, planned (index-backed) reads, and every snapshot
	// read skip it entirely.
	mu sync.RWMutex
	be storage.Collection
	bk storage.Backend

	// indexes is copy-on-write: writers swap a fresh map under mu,
	// readers (Plan, FindOrdered) load it with one atomic read.
	indexes atomic.Pointer[map[string]secondaryIndex]

	// plans caches compiled-plan estimate tapes by filter shape,
	// invalidated per path (via that path's DDL epoch) when its index
	// changes — shapes over untouched paths stay warm.
	plans planCache

	dropped atomic.Bool
	// ob holds the attached metric handles (nil: observability off;
	// the zero collObs handles are no-ops either way). Full scans,
	// planner decisions, and index probes record through it — the
	// observable the hot-path tests use to assert a query resolves
	// through the planner. Snapshot full scans count too: they are
	// lock-free but still O(collection).
	ob atomic.Pointer[collObs]
}

// collObs is one collection's bundle of cached metric handles.
type collObs struct {
	fullScans   *obs.Counter // docstore.full_scans
	indexProbes *obs.Counter // docstore.index_probes
	snapshots   *obs.Counter // docstore.snapshots
	plan        [AccessUnion + 1]*obs.Counter

	planCacheHits   *obs.Counter // docstore.plan_cache.hits
	planCacheMisses *obs.Counter // docstore.plan_cache.misses
	planCacheInvals *obs.Counter // docstore.plan_cache.invalidations
}

// obs returns the collection's handles; detached reads as all-no-op.
func (c *Collection) obs() collObs {
	if ob := c.ob.Load(); ob != nil {
		return *ob
	}
	return collObs{}
}

// setObs attaches (nil: detaches) the collection's metric handles.
func (c *Collection) setObs(reg *obs.Registry) {
	if reg == nil {
		c.ob.Store(nil)
		return
	}
	ob := &collObs{
		fullScans:       reg.Counter("docstore.full_scans"),
		indexProbes:     reg.Counter("docstore.index_probes"),
		snapshots:       reg.Counter("docstore.snapshots"),
		planCacheHits:   reg.Counter("docstore.plan_cache.hits"),
		planCacheMisses: reg.Counter("docstore.plan_cache.misses"),
		planCacheInvals: reg.Counter("docstore.plan_cache.invalidations"),
	}
	for k := range ob.plan {
		ob.plan[k] = reg.Counter("docstore.plan." + AccessKind(k).metricName())
	}
	c.ob.Store(ob)
}

func newCollection(name string, be storage.Collection, bk storage.Backend) *Collection {
	c := &Collection{name: name, be: be, bk: bk}
	empty := make(map[string]secondaryIndex)
	c.indexes.Store(&empty)
	return c
}

// indexMap returns the current index handles (copy-on-write; never
// mutated in place).
func (c *Collection) indexMap() map[string]secondaryIndex {
	return *c.indexes.Load()
}

// Name returns the collection name.
func (c *Collection) Name() string { return c.name }

// ErrDuplicateKey reports an Insert with an existing primary key.
type ErrDuplicateKey struct{ Collection, Key string }

func (e *ErrDuplicateKey) Error() string {
	return fmt.Sprintf("docstore: duplicate key %q in collection %q", e.Key, e.Collection)
}

// ErrNotFound reports a missing primary key.
type ErrNotFound struct{ Collection, Key string }

func (e *ErrNotFound) Error() string {
	return fmt.Sprintf("docstore: key %q not found in collection %q", e.Key, e.Collection)
}

// ErrCollectionDropped reports a write through a handle that outlived
// its collection's Drop.
type ErrCollectionDropped struct{ Collection string }

func (e *ErrCollectionDropped) Error() string {
	return fmt.Sprintf("docstore: collection %q was dropped", e.Collection)
}

// Insert stores doc under key. It fails if the key already exists.
func (c *Collection) Insert(key string, doc map[string]any) error {
	if key == "" {
		return fmt.Errorf("docstore: empty key in collection %q", c.name)
	}
	cp := deepCopyMap(doc)
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.dropped.Load() {
		return &ErrCollectionDropped{Collection: c.name}
	}
	if c.be.Has(key) {
		return &ErrDuplicateKey{Collection: c.name, Key: key}
	}
	if err := c.be.Put(key, cp); err != nil {
		return err
	}
	h := c.bk.StampHeight()
	for _, idx := range c.indexMap() {
		idx.add(key, cp, h)
	}
	return nil
}

// Upsert stores doc under key, replacing any existing document.
func (c *Collection) Upsert(key string, doc map[string]any) error {
	if key == "" {
		return nil
	}
	cp := deepCopyMap(doc)
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.dropped.Load() {
		return &ErrCollectionDropped{Collection: c.name}
	}
	old, existed := c.be.Get(key)
	if err := c.be.Put(key, cp); err != nil {
		return err
	}
	h := c.bk.StampHeight()
	for _, idx := range c.indexMap() {
		if existed {
			idx.remove(key, old, h)
		}
		idx.add(key, cp, h)
	}
	return nil
}

// Get returns a copy of the document stored under key (writer view).
func (c *Collection) Get(key string) (map[string]any, error) {
	if c.dropped.Load() {
		return nil, &ErrNotFound{Collection: c.name, Key: key}
	}
	doc, ok := c.be.Get(key)
	if !ok {
		return nil, &ErrNotFound{Collection: c.name, Key: key}
	}
	return deepCopyMap(doc), nil
}

// Has reports whether key exists (writer view).
func (c *Collection) Has(key string) bool { return !c.dropped.Load() && c.be.Has(key) }

// Delete removes the document under key. Deleting a missing key is a
// no-op, matching MongoDB's deleteOne semantics.
func (c *Collection) Delete(key string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.dropped.Load() {
		return &ErrCollectionDropped{Collection: c.name}
	}
	old, ok := c.be.Get(key)
	if !ok {
		return nil
	}
	if err := c.be.Delete(key); err != nil {
		return err
	}
	h := c.bk.StampHeight()
	for _, idx := range c.indexMap() {
		idx.remove(key, old, h)
	}
	return nil
}

// Update applies fn to a copy of the document under key and stores the
// result atomically. fn returning an error aborts the update.
func (c *Collection) Update(key string, fn func(doc map[string]any) error) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.dropped.Load() {
		return &ErrCollectionDropped{Collection: c.name}
	}
	old, ok := c.be.Get(key)
	if !ok {
		return &ErrNotFound{Collection: c.name, Key: key}
	}
	next := deepCopyMap(old)
	if err := fn(next); err != nil {
		return err
	}
	if err := c.be.Put(key, next); err != nil {
		return err
	}
	h := c.bk.StampHeight()
	for _, idx := range c.indexMap() {
		idx.remove(key, old, h)
		idx.add(key, next, h)
	}
	return nil
}

// Len returns the number of documents (writer view).
func (c *Collection) Len() int {
	if c.dropped.Load() {
		return 0
	}
	return c.be.Len()
}

// Keys returns the live keys in insertion order (writer view).
func (c *Collection) Keys() []string {
	if c.dropped.Load() {
		return nil
	}
	return c.be.Keys()
}

// CreateIndex builds (or rebuilds) a hash index over the dot-path
// field. Equality filters on the path then use the index instead of a
// collection scan. Array values index every element, like MongoDB
// multikey indexes.
func (c *Collection) CreateIndex(path string) {
	c.buildIndex(path, newHashIndex(path))
}

// CreateOrderedIndex builds (or rebuilds) a sorted multikey index over
// the dot-path field. On top of everything a hash index answers, it
// serves the comparison operators (Gt, Gte, Lt, Lte) as range scans
// and value-ordered iteration (FindOrdered). It replaces any existing
// index on the path.
func (c *Collection) CreateOrderedIndex(path string) {
	c.buildIndex(path, newOrderedIndex(path))
}

// buildIndex populates idx from the current documents and installs it
// under the collection's writer lock, so no mutation can slip between
// the backfill scan and the index going live. Backfilled lifespans
// are born at height 0 — a deliberate over-claim: snapshot reads
// re-resolve every candidate against version chains and re-apply the
// filter, so an over-inclusive candidate set can never produce a
// wrong result, while documents deleted before the index existed are
// unreachable below the backend floor anyway (the chain-state indexes
// are built at open, when floor == visible).
func (c *Collection) buildIndex(path string, idx secondaryIndex) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.be.Scan(func(key string, doc map[string]any) bool {
		idx.add(key, doc, 0)
		return true
	})
	cur := c.indexMap()
	next := make(map[string]secondaryIndex, len(cur)+1)
	for p, ix := range cur {
		next[p] = ix
	}
	next[path] = idx
	c.indexes.Store(&next)
	c.plans.invalidatePath(path)
	c.obs().planCacheInvals.Inc()
}

// DropIndex removes the index on path and reports whether one existed.
// Queries on the path fall back to full scans; cached plans whose
// filters reference the path are invalidated through its epoch bump,
// while plans over other paths stay cached.
func (c *Collection) DropIndex(path string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	cur := c.indexMap()
	if _, ok := cur[path]; !ok {
		return false
	}
	next := make(map[string]secondaryIndex, len(cur)-1)
	for p, ix := range cur {
		if p != path {
			next[p] = ix
		}
	}
	c.indexes.Store(&next)
	c.plans.invalidatePath(path)
	c.obs().planCacheInvals.Inc()
	return true
}

// IndexedPaths lists the indexed dot-paths, sorted.
func (c *Collection) IndexedPaths() []string {
	m := c.indexMap()
	paths := make([]string, 0, len(m))
	for p := range m {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	return paths
}

// Snapshot returns an immutable read view of the collection at the
// backend's current visible height — the newest committed snapshot.
func (c *Collection) Snapshot() *Snapshot { return c.SnapshotAt(c.bk.Visible()) }

// SnapshotAt returns an immutable read view of the collection as of
// block height h. Every read through the view resolves against
// height-stamped version chains and per-version index lifespans with
// no fence wait and no collection or shard lock; an in-flight block's
// writes are invisible until that block seals. Heights must lie in
// [Backend().Floor(), Backend().Visible()] for exact results; older
// heights may miss garbage-collected versions ("snapshot too old").
func (c *Collection) SnapshotAt(h int64) *Snapshot {
	c.obs().snapshots.Inc()
	return &Snapshot{c: c, h: h}
}

// Find returns copies of all documents matching filter, in insertion
// order (writer view). A nil filter matches everything.
func (c *Collection) Find(filter Filter) []map[string]any {
	return c.FindLimit(filter, 0)
}

// FindLimit is Find with a result cap; limit <= 0 means unlimited.
func (c *Collection) FindLimit(filter Filter, limit int) []map[string]any {
	return c.findLimitAt(storage.HeightLatest, filter, limit)
}

func (c *Collection) findLimitAt(h int64, filter Filter, limit int) []map[string]any {
	var out []map[string]any
	c.visitCandidatesAt(h, filter, func(_ string, doc map[string]any) bool {
		if filter == nil || filter.Matches(doc) {
			out = append(out, deepCopyMap(doc))
			if limit > 0 && len(out) >= limit {
				return false
			}
		}
		return true
	})
	return out
}

// FindKeys returns the keys of matching documents in insertion order.
func (c *Collection) FindKeys(filter Filter) []string {
	return c.findKeysAt(storage.HeightLatest, filter)
}

func (c *Collection) findKeysAt(h int64, filter Filter) []string {
	var out []string
	c.visitCandidatesAt(h, filter, func(key string, doc map[string]any) bool {
		if filter == nil || filter.Matches(doc) {
			out = append(out, key)
		}
		return true
	})
	return out
}

// FindOne returns the first matching document, or ErrNotFound.
func (c *Collection) FindOne(filter Filter) (map[string]any, error) {
	res := c.FindLimit(filter, 1)
	if len(res) == 0 {
		return nil, &ErrNotFound{Collection: c.name, Key: "<filter>"}
	}
	return res[0], nil
}

// Count returns the number of matching documents.
func (c *Collection) Count(filter Filter) int {
	return c.countAt(storage.HeightLatest, filter)
}

func (c *Collection) countAt(h int64, filter Filter) int {
	n := 0
	c.visitCandidatesAt(h, filter, func(_ string, doc map[string]any) bool {
		if filter == nil || filter.Matches(doc) {
			n++
		}
		return true
	})
	return n
}

// visitCandidatesAt is the single dispatch every query path shares: a
// dropped collection yields nothing; a filter the planner can compile
// onto indexes goes through the sharded visit path (no collection
// lock); everything else full-scans — under the collection read lock
// for the writer view, lock-free over the version chains for a
// snapshot height. fn must apply the filter itself — candidates from
// a plan are a superset of matches.
func (c *Collection) visitCandidatesAt(h int64, filter Filter, fn func(key string, doc map[string]any) bool) {
	if c.dropped.Load() {
		return
	}
	plan := c.Plan(filter)
	if k := int(plan.Kind); k >= 0 && k < len(c.obs().plan) {
		c.obs().plan[k].Inc()
	}
	if keys, ok := resolveAccess(plan, h); ok {
		c.shardedVisitAt(h, keys, fn)
		return
	}
	c.scanVisitAt(h, fn)
}

// scanVisitAt is the full-scan path. At HeightLatest it scans the
// writer view under the collection read lock — serialized, like every
// write, behind the commit writer. At a snapshot height it walks the
// iteration log and version chains with no lock at all.
func (c *Collection) scanVisitAt(h int64, fn func(key string, doc map[string]any) bool) {
	c.obs().fullScans.Inc()
	if h == storage.HeightLatest {
		c.mu.RLock()
		defer c.mu.RUnlock()
		c.be.Scan(fn)
		return
	}
	c.be.ScanAt(h, fn)
}

// shardedVisitAt is the planned path: it resolves index candidate
// keys through lock-free point reads at height h, restores insertion
// order from the version chains' ord counters, and streams the
// documents to fn — never taking the collection lock, so index-backed
// queries (the UTXO / spent-set lookups of block validation) never
// serialize behind the commit writer. At HeightLatest the view is
// per-document consistent (a query racing a writer may miss or see
// the writer's in-flight keys); at a snapshot height it is exactly
// the sealed state of that block.
func (c *Collection) shardedVisitAt(h int64, keys []string, fn func(key string, doc map[string]any) bool) {
	type cand struct {
		key string
		ord uint64
	}
	seen := make(map[string]struct{}, len(keys))
	unique := make([]string, 0, len(keys))
	for _, k := range keys {
		if _, dup := seen[k]; dup {
			continue
		}
		seen[k] = struct{}{}
		unique = append(unique, k)
	}
	ords := c.be.OrdsAt(unique, h)
	cands := make([]cand, 0, len(ords))
	for _, k := range unique {
		if ord, ok := ords[k]; ok {
			cands = append(cands, cand{key: k, ord: ord})
		}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].ord < cands[j].ord })
	// Documents fetch lazily inside the streaming loop, so a limited
	// query (FindOne, FindLimit) that stops early skips the remaining
	// point reads — the early exit the ordered scan used to provide.
	for _, it := range cands {
		doc, ok := c.be.GetAt(it.key, h)
		if !ok {
			continue
		}
		if !fn(it.key, doc) {
			return
		}
	}
}

// FindScan is Find forced down the full-scan path, bypassing the
// planner — the reference implementation the planner/scan differential
// tests and the query benchmarks compare against. Results are
// byte-identical to Find in content and order.
func (c *Collection) FindScan(filter Filter) []map[string]any {
	if c.dropped.Load() {
		return nil
	}
	var out []map[string]any
	c.scanVisitAt(storage.HeightLatest, func(_ string, doc map[string]any) bool {
		if filter == nil || filter.Matches(doc) {
			out = append(out, deepCopyMap(doc))
		}
		return true
	})
	return out
}

// FindOrdered returns copies of the documents matching filter in
// index-value order over orderPath — ascending, or fully reversed when
// desc — with ties broken by insertion order; limit <= 0 means
// unlimited. Documents with no scalar value at orderPath are excluded,
// and a multikey document sorts at its smallest (largest when desc)
// value.
//
// With an ordered index on orderPath the walk streams value groups
// lazily off the index plus lock-free point reads — no collection
// lock, O(group) index-lock holds, and an early limit stops the walk
// after O(limit) work. Without one it falls back to a full scan plus
// sort.
func (c *Collection) FindOrdered(filter Filter, orderPath string, desc bool, limit int) []map[string]any {
	return c.findOrderedAt(storage.HeightLatest, filter, orderPath, desc, limit)
}

func (c *Collection) findOrderedAt(h int64, filter Filter, orderPath string, desc bool, limit int) []map[string]any {
	if c.dropped.Load() {
		return nil
	}
	ord, ok := c.indexMap()[orderPath].(*orderedIndex)
	if !ok {
		return c.findOrderedScanAt(h, filter, orderPath, desc, limit)
	}
	var out []map[string]any
	seen := make(map[string]struct{}) // multikey docs appear under several values
	cur := ord.groups(desc)
	for {
		group, more := cur.next(h)
		if !more {
			return out
		}
		fresh := group[:0]
		for _, k := range group {
			if _, dup := seen[k]; dup {
				continue
			}
			seen[k] = struct{}{}
			fresh = append(fresh, k)
		}
		ords := c.be.OrdsAt(fresh, h)
		kept := fresh[:0]
		for _, k := range fresh {
			if _, live := ords[k]; live {
				kept = append(kept, k)
			}
		}
		sort.Slice(kept, func(i, j int) bool {
			if desc {
				return ords[kept[i]] > ords[kept[j]]
			}
			return ords[kept[i]] < ords[kept[j]]
		})
		for _, k := range kept {
			doc, live := c.be.GetAt(k, h)
			if !live {
				continue
			}
			if filter == nil || filter.Matches(doc) {
				out = append(out, deepCopyMap(doc))
				if limit > 0 && len(out) >= limit {
					return out
				}
			}
		}
	}
}

// findOrderedScan is FindOrdered's no-index fallback: scan, sort by
// the extreme scalar value at orderPath, then cut to limit.
func (c *Collection) findOrderedScan(filter Filter, orderPath string, desc bool, limit int) []map[string]any {
	return c.findOrderedScanAt(storage.HeightLatest, filter, orderPath, desc, limit)
}

func (c *Collection) findOrderedScanAt(h int64, filter Filter, orderPath string, desc bool, limit int) []map[string]any {
	type item struct {
		doc map[string]any
		val ordValue
		seq int
	}
	var items []item
	seq := 0
	c.scanVisitAt(h, func(_ string, doc map[string]any) bool {
		seq++
		if filter != nil && !filter.Matches(doc) {
			return true
		}
		val, ok := extremeOrdValue(doc, orderPath, desc)
		if !ok {
			return true
		}
		items = append(items, item{doc: deepCopyMap(doc), val: val, seq: seq})
		return true
	})
	sort.SliceStable(items, func(i, j int) bool {
		cmp := items[i].val.compare(items[j].val)
		if cmp == 0 {
			cmp = items[i].seq - items[j].seq
		}
		if desc {
			return cmp > 0
		}
		return cmp < 0
	})
	if limit > 0 && len(items) > limit {
		items = items[:limit]
	}
	out := make([]map[string]any, len(items))
	for i, it := range items {
		out[i] = it.doc
	}
	return out
}

// Snapshot is an immutable as-of-height read view of one collection.
// Every method resolves documents and index candidates as they stood
// when the view's block height sealed, touching no fence, collection
// lock, or shard lock — concurrent block commits can neither block
// nor be observed by a snapshot read. Views are cheap (two words);
// take a fresh one per logical read for the newest sealed state.
type Snapshot struct {
	c *Collection
	h int64
}

// Height returns the block height the view reads as of.
func (s *Snapshot) Height() int64 { return s.h }

// Get returns a copy of the document under key as of the view height.
func (s *Snapshot) Get(key string) (map[string]any, error) {
	if s.c.dropped.Load() {
		return nil, &ErrNotFound{Collection: s.c.name, Key: key}
	}
	doc, ok := s.c.be.GetAt(key, s.h)
	if !ok {
		return nil, &ErrNotFound{Collection: s.c.name, Key: key}
	}
	return deepCopyMap(doc), nil
}

// Has reports whether key existed at the view height.
func (s *Snapshot) Has(key string) bool {
	if s.c.dropped.Load() {
		return false
	}
	_, ok := s.c.be.GetAt(key, s.h)
	return ok
}

// Len returns the number of documents at the view height.
func (s *Snapshot) Len() int {
	if s.c.dropped.Load() {
		return 0
	}
	return s.c.be.LenAt(s.h)
}

// Keys returns the keys at the view height in insertion order.
func (s *Snapshot) Keys() []string {
	if s.c.dropped.Load() {
		return nil
	}
	return s.c.be.KeysAt(s.h)
}

// Find returns copies of all documents matching filter at the view
// height, in insertion order.
func (s *Snapshot) Find(filter Filter) []map[string]any { return s.FindLimit(filter, 0) }

// FindLimit is Find with a result cap; limit <= 0 means unlimited.
func (s *Snapshot) FindLimit(filter Filter, limit int) []map[string]any {
	return s.c.findLimitAt(s.h, filter, limit)
}

// FindKeys returns the keys of matching documents in insertion order.
func (s *Snapshot) FindKeys(filter Filter) []string { return s.c.findKeysAt(s.h, filter) }

// FindOne returns the first matching document, or ErrNotFound.
func (s *Snapshot) FindOne(filter Filter) (map[string]any, error) {
	res := s.FindLimit(filter, 1)
	if len(res) == 0 {
		return nil, &ErrNotFound{Collection: s.c.name, Key: "<filter>"}
	}
	return res[0], nil
}

// Count returns the number of matching documents at the view height.
func (s *Snapshot) Count(filter Filter) int { return s.c.countAt(s.h, filter) }

// FindOrdered is Collection.FindOrdered as of the view height.
func (s *Snapshot) FindOrdered(filter Filter, orderPath string, desc bool, limit int) []map[string]any {
	return s.c.findOrderedAt(s.h, filter, orderPath, desc, limit)
}

// extremeOrdValue finds the smallest (largest when max) scalar value a
// document reaches at path, flattening arrays like the indexes do.
func extremeOrdValue(doc map[string]any, path string, max bool) (ordValue, bool) {
	vals, found := lookupPath(doc, path)
	if !found {
		return ordValue{}, false
	}
	var best ordValue
	have := false
	var visit func(v any)
	visit = func(v any) {
		if arr, isArr := v.([]any); isArr {
			for _, e := range arr {
				visit(e)
			}
			return
		}
		ov, ok := ordValueOf(v)
		if !ok {
			return
		}
		if !have {
			best, have = ov, true
			return
		}
		if cmp := ov.compare(best); (max && cmp > 0) || (!max && cmp < 0) {
			best = ov
		}
	}
	for _, v := range vals {
		visit(v)
	}
	return best, have
}

func deepCopyMap(m map[string]any) map[string]any {
	if m == nil {
		return nil
	}
	out := make(map[string]any, len(m))
	for k, v := range m {
		out[k] = deepCopyValue(v)
	}
	return out
}

func deepCopyValue(v any) any {
	switch x := v.(type) {
	case map[string]any:
		return deepCopyMap(x)
	case []any:
		out := make([]any, len(x))
		for i, e := range x {
			out[i] = deepCopyValue(e)
		}
		return out
	default:
		return v
	}
}
