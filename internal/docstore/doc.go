// Package docstore is an embedded document store playing the role
// MongoDB plays in BigchainDB/SmartchainDB: each node keeps its
// transaction, asset, metadata, UTXO, and recovery collections in one.
// It supports JSON-style documents (map[string]any), dot-path filter
// queries with Mongo-flavoured operators ($gt, $in, $elemMatch, ...),
// secondary indexes, and deterministic iteration — enough to implement
// the validators' lookups (getTxFromDB, getLockedBids,
// getAcceptTxForRFQ) and the marketplace queryability study.
//
// The store runs over a pluggable storage.Backend: the volatile
// memory backend (the default) or the disk engine, which makes every
// mutation durable through a write-ahead log and recovers it on
// reopen. Filters, secondary indexes, deep-copy isolation, and
// iteration order behave identically on both; Group exposes the
// backend's atomic-durability batches to the ledger's block commit.
//
// # Query planning
//
// Every read entry point (Find, FindLimit, FindKeys, FindOne, Count)
// resolves through a cost-aware planner. A filter tree is first made
// introspectable by Analyze (filter.go), then compiled against the
// collection's secondary indexes into an access plan (planner.go):
//
//   - equality-class operators (Eq, Contains, In) probe a hash or
//     ordered index for candidate keys;
//   - comparisons (Gt, Gte, Lt, Lte) become range scans over an
//     ordered index (CreateOrderedIndex), a deterministic skip list
//     ordering numbers and strings (ordindex.go);
//   - And intersects its indexable conjuncts — the lowest-estimate
//     index drives, chosen from index cardinalities, and the others
//     shrink its candidates via O(1) membership probes — while
//     unindexable conjuncts are left to the residual filter;
//   - Or unions its branches when every branch is indexable;
//   - provably empty filters (Never, In with no values, comparisons
//     against non-comparable arguments) plan to nothing at all;
//   - everything else falls back to the full collection scan.
//
// Planned reads resolve candidates through the indexes' own locks and
// shard-locked point reads, re-ordered into insertion order from the
// backend's ord counters — never the collection-wide lock, so they do
// not serialize behind the commit writer. Candidates are a superset
// of the matches (multikey indexes fan arrays out) and every fetched
// document is re-checked against the full filter, so plans affect
// performance, never results: FindScan forces the full-scan path and
// must return byte-identical output, which the planner/scan
// differential property test pins on both backends.
//
// Explain renders the compiled plan ("point(operation eq "BID")[3]",
// "intersect[2](...)", "full-scan(no index on "x")") for tests and
// benchmarks; with a Store.SetObs registry attached, executed full
// scans, planner decisions, and index probes record into the
// docstore.* obs counters, so hot paths can assert they never take
// the collection lock. FindOrdered streams
// documents in index-value order (ties in insertion order) straight
// off an ordered index — the "most recent first" query shape.
package docstore
