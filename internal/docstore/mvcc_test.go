package docstore

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"
)

func mustInsert(t *testing.T, c *Collection, key string, doc map[string]any) {
	t.Helper()
	if err := c.Insert(key, doc); err != nil {
		t.Fatal(err)
	}
}

// TestSnapshotIsolationAcrossSeal pins the core snapshot contract: a
// snapshot taken before a block opens keeps reading the pre-block
// state — mid-block and after the seal — while a fresh snapshot picks
// up the sealed writes.
func TestSnapshotIsolationAcrossSeal(t *testing.T) {
	forEachBackend(t, func(t *testing.T, s *Store) {
		bk := s.Backend()
		c := s.Collection("docs")
		c.CreateIndex("kind")
		c.CreateOrderedIndex("rank")
		mustInsert(t, c, "a", map[string]any{"kind": "x", "rank": 1.0})
		mustInsert(t, c, "b", map[string]any{"kind": "y", "rank": 2.0})

		pre := c.Snapshot()
		if pre.Height() != bk.Visible() {
			t.Fatalf("Snapshot height %d, want %d", pre.Height(), bk.Visible())
		}

		h := bk.Visible() + 1
		bk.BeginBlock(h)
		mustInsert(t, c, "cc", map[string]any{"kind": "x", "rank": 3.0})
		if err := c.Delete("b"); err != nil {
			t.Fatal(err)
		}
		if err := c.Update("a", func(doc map[string]any) error {
			doc["rank"] = 9.0
			return nil
		}); err != nil {
			t.Fatal(err)
		}

		check := func(stage string) {
			t.Helper()
			if got := pre.Len(); got != 2 {
				t.Fatalf("%s: pre.Len = %d, want 2", stage, got)
			}
			if doc, err := pre.Get("a"); err != nil || doc["rank"] != 1.0 {
				t.Fatalf("%s: pre a = %v (%v), want rank 1", stage, doc, err)
			}
			if !pre.Has("b") {
				t.Fatalf("%s: pre lost deleted doc b", stage)
			}
			if pre.Has("cc") {
				t.Fatalf("%s: pre sees doc cc from the newer block", stage)
			}
			// Index-planned reads honor the same visibility: the hash
			// index must not leak cc, and the ordered index must surface
			// a's old rank.
			if got := len(pre.Find(Eq("kind", "x"))); got != 1 {
				t.Fatalf("%s: pre Find(kind=x) = %d docs, want 1", stage, got)
			}
			ordered := pre.FindOrdered(nil, "rank", true, 1)
			if len(ordered) != 1 || ordered[0]["rank"] != 2.0 {
				t.Fatalf("%s: pre FindOrdered top = %v, want rank 2", stage, ordered)
			}
		}
		check("mid-block")
		bk.SealBlock(h)
		check("post-seal")

		post := c.Snapshot()
		if post.Height() != h {
			t.Fatalf("post snapshot height %d, want %d", post.Height(), h)
		}
		if got, want := post.Keys(), []string{"a", "cc"}; !reflect.DeepEqual(got, want) {
			t.Fatalf("post.Keys = %v, want %v", got, want)
		}
		if doc, err := post.Get("a"); err != nil || doc["rank"] != 9.0 {
			t.Fatalf("post a = %v (%v), want rank 9", doc, err)
		}
		ordered := post.FindOrdered(Eq("kind", "x"), "rank", false, 0)
		if len(ordered) != 2 || ordered[0]["rank"] != 3.0 || ordered[1]["rank"] != 9.0 {
			t.Fatalf("post FindOrdered(kind=x) = %v", ordered)
		}
		// The old snapshot handle is still pinned to its height.
		check("after-new-snapshot")
	})
}

// TestSnapshotReadsTakeNoCollectionLock is the structural pin for the
// acceptance criterion "zero locks on the read path": snapshot reads
// must complete while the collection mutex is held exclusively. If any
// snapshot read path reacquires c.mu, this test deadlocks and fails
// by timeout.
func TestSnapshotReadsTakeNoCollectionLock(t *testing.T) {
	forEachBackend(t, func(t *testing.T, s *Store) {
		c := s.Collection("docs")
		c.CreateIndex("kind")
		c.CreateOrderedIndex("rank")
		for i := 0; i < 16; i++ {
			mustInsert(t, c, fmt.Sprintf("k%02d", i), map[string]any{
				"kind": fmt.Sprintf("t%d", i%3), "rank": float64(i),
			})
		}
		snap := c.Snapshot()

		c.mu.Lock()
		defer c.mu.Unlock()
		done := make(chan struct{})
		go func() {
			defer close(done)
			snap.Get("k03")
			snap.Has("k07")
			snap.Len()
			snap.Keys()
			snap.Find(Eq("kind", "t1"))
			snap.FindKeys(And(Eq("kind", "t0"), Gte("rank", 3.0)))
			snap.Count(Lte("rank", 8.0))
			snap.FindOrdered(nil, "rank", true, 5)
			snap.FindOrdered(Eq("kind", "t2"), "rank", false, 0)
		}()
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Fatal("snapshot read blocked on the collection lock")
		}
	})
}

// TestSnapshotReadersRaceBlockAppliers is the race-gate pin at the
// docstore layer: each block rewrites every document with a uniform
// version stamp, and concurrent snapshot readers must always observe
// one coherent stamp across the whole collection — never a torn mix
// of two blocks.
func TestSnapshotReadersRaceBlockAppliers(t *testing.T) {
	forEachBackend(t, func(t *testing.T, s *Store) {
		const blocks = 30
		const docs = 8
		bk := s.Backend()
		bk.SetRetain(blocks + 2)
		c := s.Collection("docs")
		c.CreateIndex("kind")
		for i := 0; i < docs; i++ {
			mustInsert(t, c, fmt.Sprintf("k%d", i), map[string]any{"v": 0.0, "kind": "d"})
		}

		stop := make(chan struct{})
		var wg sync.WaitGroup
		for r := 0; r < 4; r++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					snap := c.Snapshot()
					want := -1.0
					for i := 0; i < docs; i++ {
						doc, err := snap.Get(fmt.Sprintf("k%d", i))
						if err != nil {
							panic(err)
						}
						v := doc["v"].(float64)
						if want < 0 {
							want = v
						} else if v != want {
							panic(fmt.Sprintf("torn snapshot at height %d: saw versions %v and %v",
								snap.Height(), want, v))
						}
					}
					// The indexed path resolves against the same height.
					if got := len(snap.Find(Eq("kind", "d"))); got != docs {
						panic(fmt.Sprintf("indexed read at height %d returned %d docs, want %d",
							snap.Height(), got, docs))
					}
				}
			}()
		}

		start := bk.Visible()
		for h := start + 1; h <= start+blocks; h++ {
			bk.BeginBlock(h)
			for i := 0; i < docs; i++ {
				if err := c.Upsert(fmt.Sprintf("k%d", i), map[string]any{
					"v": float64(h), "kind": "d",
				}); err != nil {
					t.Fatal(err)
				}
			}
			bk.SealBlock(h)
		}
		close(stop)
		wg.Wait()
	})
}
