package docstore

import (
	"fmt"
	"testing"

	"smartchaindb/internal/storage"
)

// Index lifespan GC is tied to the retention floor advancing at block
// seal: closed spans survive exactly as long as a snapshot could read
// them, and Store.SweepIndexes drops them the moment the floor passes
// their death height — no mutation-count threshold involved.
func TestSweepIndexesFollowsFloor(t *testing.T) {
	be := storage.NewMemory()
	be.SetRetain(1) // floor == visible: every sealed block expires the last
	s := NewStoreWith(be)
	c := s.Collection("t")
	c.CreateIndex("v")
	c.CreateOrderedIndex("w")

	hash := c.indexMap()["v"].(*hashIndex)
	ord := c.indexMap()["w"].(*orderedIndex)

	for h := int64(1); h <= 5; h++ {
		be.BeginBlock(h)
		key := fmt.Sprintf("doc-%d", h)
		if err := c.Insert(key, map[string]any{"v": float64(h), "w": float64(h)}); err != nil {
			t.Fatalf("insert %s: %v", key, err)
		}
		// Close the previous block's spans: the update moves both
		// indexed values, ending one lifespan per index.
		if h > 1 {
			prev := fmt.Sprintf("doc-%d", h-1)
			if err := c.Update(prev, func(doc map[string]any) error {
				doc["v"] = float64(-h)
				doc["w"] = float64(-h)
				return nil
			}); err != nil {
				t.Fatalf("update %s: %v", prev, err)
			}
		}
		be.SealBlock(h)

		// Before the sweep the block's closed spans are still present;
		// after it, everything below the floor is gone. With retain=1
		// the floor sits at h, so every span closed this block sweeps.
		s.SweepIndexes()
		hash.mu.RLock()
		hd := hash.deadSpans
		hash.mu.RUnlock()
		ord.mu.RLock()
		od := ord.deadSpans
		ord.mu.RUnlock()
		if hd != 0 || od != 0 {
			t.Fatalf("after seal %d: deadSpans hash=%d ord=%d, want 0 (floor %d)", h, hd, od, be.Floor())
		}
	}

	// The live entries are untouched by the sweeps.
	if got := len(c.Find(Eq("v", float64(5)))); got != 1 {
		t.Fatalf("doc-5 lookup after sweeps: %d docs, want 1", got)
	}
}

// A sweep at an unmoved floor must not walk the index: closed spans
// above the floor stay, and deadSpans only drops when the floor
// actually advances past the deaths.
func TestSweepIndexesStableFloorKeepsSpans(t *testing.T) {
	be := storage.NewMemory()
	be.SetRetain(100) // wide window: floor stays far behind
	s := NewStoreWith(be)
	c := s.Collection("t")
	c.CreateIndex("v")
	hash := c.indexMap()["v"].(*hashIndex)

	be.BeginBlock(1)
	if err := c.Insert("a", map[string]any{"v": "x"}); err != nil {
		t.Fatal(err)
	}
	be.SealBlock(1)
	be.BeginBlock(2)
	if err := c.Delete("a"); err != nil {
		t.Fatal(err)
	}
	be.SealBlock(2)

	s.SweepIndexes() // floor is still below the death height
	hash.mu.RLock()
	dead := hash.deadSpans
	hash.mu.RUnlock()
	if dead != 1 {
		t.Fatalf("deadSpans = %d after sweep under a wide window, want 1 (retained for snapshots)", dead)
	}
	// The historical read the retained span serves still works.
	if keys := hash.lookupEq("x", 1); len(keys) != 1 || keys[0] != "a" {
		t.Fatalf("lookupEq at h=1 = %v, want [a]", keys)
	}
}
