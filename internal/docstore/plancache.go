package docstore

import (
	"encoding/binary"
	"sync"
	"sync/atomic"
)

// Prepared-plan cache. Hot validator and marketplace queries compile
// the same filter shapes over and over; what makes compilation
// expensive is not the tree walk but the selectivity estimates, which
// take every probed index's shard locks. The cache therefore keys on
// the filter's *shape* — the Analyze tree with argument values
// abstracted to their index classes, which is exactly what compile's
// control flow depends on — and stores the estimate tape the last
// compile produced. A hit replays the tape through a fresh compile:
// the plan structure (including the intersect drive order, which sorts
// by estimate) is byte-identical to the cached compile, no index lock
// is touched, and the materialize/probe closures bind the *current*
// arguments and index handles, so correctness never depends on the
// cache. Entries carry the collection's index epoch; CreateIndex /
// CreateOrderedIndex / DropIndex bump it, so a stale entry simply
// misses and the shape recompiles against the new index set.

// estTape carries selectivity estimates between a recording compile
// and replaying ones. The leaf visit order is a pure function of the
// filter shape, so positional replay is exact.
type estTape struct {
	vals   []int
	pos    int
	replay bool
}

// est returns the next taped estimate when replaying, records the
// computed one when recording, and just computes when no tape is
// attached. A replay that runs past the tape (impossible for
// same-shape filters; defended anyway) falls back to computing.
func (t *estTape) est(compute func() int) int {
	if t == nil {
		return compute()
	}
	if t.replay {
		if t.pos < len(t.vals) {
			v := t.vals[t.pos]
			t.pos++
			return v
		}
		return compute()
	}
	t.vals = append(t.vals, compute())
	return t.vals[len(t.vals)-1]
}

// planCache is one collection's shape → estimate-tape map.
type planCache struct {
	mu      sync.RWMutex
	entries map[string]*planEntry
	epoch   atomic.Uint64
}

type planEntry struct {
	epoch uint64
	vals  []int
}

// get returns the tape recorded for key at the current epoch. The
// string(key) conversion inside a map index compiles to a no-alloc
// lookup.
func (pc *planCache) get(key []byte, epoch uint64) ([]int, bool) {
	pc.mu.RLock()
	e := pc.entries[string(key)]
	pc.mu.RUnlock()
	if e == nil || e.epoch != epoch {
		return nil, false
	}
	return e.vals, true
}

// put stores a freshly recorded tape unless the epoch moved while the
// compile ran (an index was created or dropped mid-flight: the tape
// may describe indexes that no longer exist).
func (pc *planCache) put(key []byte, epoch uint64, vals []int) {
	if pc.epoch.Load() != epoch {
		return
	}
	pc.mu.Lock()
	if pc.entries == nil {
		pc.entries = make(map[string]*planEntry)
	}
	pc.entries[string(key)] = &planEntry{epoch: epoch, vals: vals}
	pc.mu.Unlock()
}

// invalidate drops every cached plan and moves the epoch so in-flight
// recordings against the old index set are refused.
func (pc *planCache) invalidate() {
	pc.epoch.Add(1)
	pc.mu.Lock()
	pc.entries = nil
	pc.mu.Unlock()
}

// shapeKeyPool recycles key scratch so a cache hit allocates nothing.
var shapeKeyPool = sync.Pool{New: func() any { s := make([]byte, 0, 128); return &s }}

// appendShape serializes everything compile's control flow depends on:
// node kinds, paths, operators, child counts, and each argument's
// index class (indexKey scalar-ness and ordValueOf comparison class
// are both functions of the class alone). Two filters with equal shape
// keys compile to structurally identical plans modulo estimates.
func appendShape(dst []byte, n Node) []byte {
	switch n.Kind {
	case KindField:
		dst = append(dst, 'F')
		dst = append(dst, n.Path...)
		dst = append(dst, 0)
		dst = append(dst, n.Op...)
		dst = append(dst, 0, argClass(n.Arg))
		dst = binary.AppendUvarint(dst, uint64(len(n.List)))
		for _, a := range n.List {
			dst = append(dst, argClass(a))
		}
	case KindAnd, KindOr:
		marker := byte('&')
		if n.Kind == KindOr {
			marker = '|'
		}
		dst = append(dst, marker)
		dst = binary.AppendUvarint(dst, uint64(len(n.Children)))
		for _, ch := range n.Children {
			dst = appendShape(dst, ch)
		}
	case KindNot:
		dst = append(dst, '!')
		for _, ch := range n.Children {
			dst = appendShape(dst, ch)
		}
	case KindAll:
		dst = append(dst, '*')
	default:
		dst = append(dst, '?')
	}
	return dst
}

// argClass buckets an argument value by how the planner can use it:
// nil / bool / number / string scalars, or 'o' for anything indexKey
// refuses (maps, arrays).
func argClass(v any) byte {
	switch normalize(v).(type) {
	case nil:
		return 'n'
	case bool:
		return 'b'
	case float64:
		return 'f'
	case string:
		return 's'
	}
	return 'o'
}
