package docstore

import (
	"encoding/binary"
	"sync"
	"sync/atomic"
)

// Prepared-plan cache. Hot validator and marketplace queries compile
// the same filter shapes over and over; what makes compilation
// expensive is not the tree walk but the selectivity estimates, which
// take every probed index's shard locks. The cache therefore keys on
// the filter's *shape* — the Analyze tree with argument values
// abstracted to their index classes, which is exactly what compile's
// control flow depends on — and stores the estimate tape the last
// compile produced. A hit replays the tape through a fresh compile:
// the plan structure (including the intersect drive order, which sorts
// by estimate) is byte-identical to the cached compile, no index lock
// is touched, and the materialize/probe closures bind the *current*
// arguments and index handles, so correctness never depends on the
// cache. Invalidation is per path: every entry is stamped with the sum
// of the per-path DDL epochs over the paths its filter references, and
// CreateIndex / CreateOrderedIndex / DropIndex bump only their own
// path's epoch. Path epochs never decrease, so any DDL on a referenced
// path strictly moves the sum and the entry misses — while shapes over
// untouched paths stay warm across unrelated DDL instead of being
// flushed wholesale.

// estTape carries selectivity estimates between a recording compile
// and replaying ones. The leaf visit order is a pure function of the
// filter shape, so positional replay is exact.
type estTape struct {
	vals   []int
	pos    int
	replay bool
}

// est returns the next taped estimate when replaying, records the
// computed one when recording, and just computes when no tape is
// attached. A replay that runs past the tape (impossible for
// same-shape filters; defended anyway) falls back to computing.
func (t *estTape) est(compute func() int) int {
	if t == nil {
		return compute()
	}
	if t.replay {
		if t.pos < len(t.vals) {
			v := t.vals[t.pos]
			t.pos++
			return v
		}
		return compute()
	}
	t.vals = append(t.vals, compute())
	return t.vals[len(t.vals)-1]
}

// planCache is one collection's shape → estimate-tape map.
type planCache struct {
	mu      sync.RWMutex
	entries map[string]*planEntry
	// pathEpochs maps dot-path → DDL epoch, copy-on-write so the hot
	// path reads it with one atomic load. Mutators (buildIndex /
	// DropIndex) run under the collection's writer lock, which
	// serializes the read-copy-update.
	pathEpochs atomic.Pointer[map[string]uint64]
}

type planEntry struct {
	stamp uint64 // epochOf the filter's paths at record time
	vals  []int
}

// epochOf sums the current epochs of the given paths — the validity
// stamp for any shape referencing exactly those paths. Epochs only
// grow, so DDL on any referenced path strictly increases the sum.
func (pc *planCache) epochOf(paths []string) uint64 {
	m := pc.pathEpochs.Load()
	if m == nil {
		return 0
	}
	var sum uint64
	for _, p := range paths {
		sum += (*m)[p]
	}
	return sum
}

// get returns the tape recorded for key at the given stamp. The
// string(key) conversion inside a map index compiles to a no-alloc
// lookup.
func (pc *planCache) get(key []byte, stamp uint64) ([]int, bool) {
	pc.mu.RLock()
	e := pc.entries[string(key)]
	pc.mu.RUnlock()
	if e == nil || e.stamp != stamp {
		return nil, false
	}
	return e.vals, true
}

// put stores a freshly recorded tape unless a referenced path's epoch
// moved while the compile ran (an index on one of the filter's paths
// was created or dropped mid-flight: the tape may describe indexes
// that no longer exist).
func (pc *planCache) put(key []byte, paths []string, stamp uint64, vals []int) {
	if pc.epochOf(paths) != stamp {
		return
	}
	pc.mu.Lock()
	if pc.entries == nil {
		pc.entries = make(map[string]*planEntry)
	}
	pc.entries[string(key)] = &planEntry{stamp: stamp, vals: vals}
	pc.mu.Unlock()
}

// invalidatePath bumps one path's DDL epoch: every cached shape whose
// filter references the path misses from now on (including full-scan
// shapes recorded before the path ever had an index), and every other
// shape stays warm. The caller must hold the collection's writer lock.
func (pc *planCache) invalidatePath(path string) {
	old := pc.pathEpochs.Load()
	var next map[string]uint64
	if old == nil {
		next = map[string]uint64{path: 1}
	} else {
		next = make(map[string]uint64, len(*old)+1)
		for p, e := range *old {
			next[p] = e
		}
		next[path]++
	}
	pc.pathEpochs.Store(&next)
}

// shapeScratch recycles the shape key and referenced-path scratch so a
// cache hit allocates nothing.
type shapeScratch struct {
	key   []byte
	paths []string
}

var shapeScratchPool = sync.Pool{New: func() any {
	return &shapeScratch{key: make([]byte, 0, 128), paths: make([]string, 0, 8)}
}}

// appendShape serializes everything compile's control flow depends on:
// node kinds, paths, operators, child counts, and each argument's
// index class (indexKey scalar-ness and ordValueOf comparison class
// are both functions of the class alone). Two filters with equal shape
// keys compile to structurally identical plans modulo estimates. It
// also collects every referenced dot-path into paths — the set the
// entry's per-path epoch stamp is computed over.
func appendShape(dst []byte, paths []string, n Node) ([]byte, []string) {
	switch n.Kind {
	case KindField:
		dst = append(dst, 'F')
		dst = append(dst, n.Path...)
		dst = append(dst, 0)
		dst = append(dst, n.Op...)
		dst = append(dst, 0, argClass(n.Arg))
		dst = binary.AppendUvarint(dst, uint64(len(n.List)))
		for _, a := range n.List {
			dst = append(dst, argClass(a))
		}
		paths = append(paths, n.Path)
	case KindAnd, KindOr:
		marker := byte('&')
		if n.Kind == KindOr {
			marker = '|'
		}
		dst = append(dst, marker)
		dst = binary.AppendUvarint(dst, uint64(len(n.Children)))
		for _, ch := range n.Children {
			dst, paths = appendShape(dst, paths, ch)
		}
	case KindNot:
		dst = append(dst, '!')
		for _, ch := range n.Children {
			dst, paths = appendShape(dst, paths, ch)
		}
	case KindAll:
		dst = append(dst, '*')
	default:
		dst = append(dst, '?')
	}
	return dst, paths
}

// argClass buckets an argument value by how the planner can use it:
// nil / bool / number / string scalars, or 'o' for anything indexKey
// refuses (maps, arrays).
func argClass(v any) byte {
	switch normalize(v).(type) {
	case nil:
		return 'n'
	case bool:
		return 'b'
	case float64:
		return 'f'
	case string:
		return 's'
	}
	return 'o'
}
