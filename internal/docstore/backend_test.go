package docstore

import (
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"smartchaindb/internal/storage"
)

// forEachBackend runs the sub-test over both storage backends so the
// docstore contract is pinned to the interface, not the memory
// implementation.
func forEachBackend(t *testing.T, fn func(t *testing.T, s *Store)) {
	t.Run("memory", func(t *testing.T) { fn(t, NewStore()) })
	t.Run("disk", func(t *testing.T) {
		eng, err := storage.Open(t.TempDir(), storage.Options{NoSync: true})
		if err != nil {
			t.Fatal(err)
		}
		s := NewStoreWith(eng)
		t.Cleanup(func() { s.Close() })
		fn(t, s)
	})
}

func TestBackendsAgreeOnCoreOperations(t *testing.T) {
	forEachBackend(t, func(t *testing.T, s *Store) {
		c := s.Collection("txs")
		c.CreateIndex("op")
		for i := 0; i < 8; i++ {
			if err := c.Insert(fmt.Sprintf("k%d", i), map[string]any{
				"op": []any{"CREATE", "TRANSFER"}[i%2].(string), "i": float64(i),
			}); err != nil {
				t.Fatal(err)
			}
		}
		if err := c.Insert("k0", nil); !errors.As(err, new(*ErrDuplicateKey)) {
			t.Fatalf("duplicate insert: %v", err)
		}
		if err := c.Delete("k3"); err != nil {
			t.Fatal(err)
		}
		if err := c.Update("k4", func(d map[string]any) error {
			d["op"] = "BID"
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if got := c.Count(Eq("op", "CREATE")); got != 3 {
			t.Errorf("CREATE count = %d, want 3", got)
		}
		if got := c.Count(Eq("op", "BID")); got != 1 {
			t.Errorf("BID count = %d, want 1", got)
		}
		wantKeys := []string{"k0", "k1", "k2", "k4", "k5", "k6", "k7"}
		if got := c.Keys(); !reflect.DeepEqual(got, wantKeys) {
			t.Errorf("keys = %v, want %v", got, wantKeys)
		}
		docs := c.Find(Eq("op", "TRANSFER"))
		if len(docs) != 3 {
			t.Fatalf("TRANSFER docs = %d, want 3", len(docs))
		}
		// Returned documents are copies, never aliases of stored state.
		docs[0]["op"] = "mutated"
		if got := c.Count(Eq("op", "mutated")); got != 0 {
			t.Error("Find leaked a reference into the store")
		}
	})
}

// TestDiskStoreReopenPreservesDocstoreState checks the full docstore
// view (documents, iteration order, index-backed queries) survives a
// close/reopen of the disk backend.
func TestDiskStoreReopenPreservesDocstoreState(t *testing.T) {
	dir := t.TempDir()
	eng, err := storage.Open(dir, storage.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	s := NewStoreWith(eng)
	c := s.Collection("txs")
	for i := 0; i < 12; i++ {
		if err := c.Insert(fmt.Sprintf("t%02d", i), map[string]any{
			"operation": []string{"CREATE", "BID", "TRANSFER"}[i%3],
			"n":         float64(i),
		}); err != nil {
			t.Fatal(err)
		}
	}
	c.Delete("t07")
	wantKeys := c.Keys()
	wantDocs := c.Find(nil)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	eng2, err := storage.Open(dir, storage.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	s2 := NewStoreWith(eng2)
	defer s2.Close()
	c2 := s2.Collection("txs")
	c2.CreateIndex("operation") // rebuilt over recovered documents
	if got := c2.Keys(); !reflect.DeepEqual(got, wantKeys) {
		t.Fatalf("keys after reopen = %v, want %v", got, wantKeys)
	}
	if got := c2.Find(nil); !reflect.DeepEqual(got, wantDocs) {
		t.Fatalf("docs after reopen differ:\ngot  %v\nwant %v", got, wantDocs)
	}
	if got := c2.Count(Eq("operation", "BID")); got != 3 {
		t.Errorf("indexed count after reopen = %d, want 3", got)
	}
}

// TestStoreCollectionDropRace hammers concurrent create/insert/drop of
// one collection name; run under -race it pins the shared
// Collection/Drop critical section, and the final state must be
// either absent or a live collection that accepted writes after its
// re-creation — never resurrected pre-drop documents.
func TestStoreCollectionDropRace(t *testing.T) {
	forEachBackend(t, func(t *testing.T, s *Store) {
		const goroutines = 8
		const iters = 200
		var wg sync.WaitGroup
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := 0; i < iters; i++ {
					switch (g + i) % 4 {
					case 0:
						s.Drop("contended")
					case 1:
						c := s.Collection("contended")
						// A stale handle may race a Drop; the only
						// acceptable failures are dropped/duplicate.
						err := c.Insert(fmt.Sprintf("g%d-i%d", g, i), map[string]any{"g": float64(g)})
						if err != nil {
							var dropped *ErrCollectionDropped
							var dup *ErrDuplicateKey
							if !errors.As(err, &dropped) && !errors.As(err, &dup) {
								panic(err)
							}
						}
					case 2:
						s.Collection("contended").Get(fmt.Sprintf("g%d-i%d", g, i-1))
					default:
						s.Collection("contended").Find(nil)
					}
				}
			}(g)
		}
		wg.Wait()
		// Every surviving document must be readable and well-formed.
		c := s.Collection("contended")
		for _, key := range c.Keys() {
			if _, err := c.Get(key); err != nil {
				t.Fatalf("surviving key %s unreadable: %v", key, err)
			}
		}
	})
}

// TestDropInvalidatesStaleHandles pins the double-checked-locking fix:
// a handle that outlives Drop must not write into the re-created
// collection's backend behind the store's back.
func TestDropInvalidatesStaleHandles(t *testing.T) {
	forEachBackend(t, func(t *testing.T, s *Store) {
		stale := s.Collection("c")
		if err := stale.Insert("old", map[string]any{"v": 1.0}); err != nil {
			t.Fatal(err)
		}
		s.Drop("c")
		if err := stale.Insert("ghost", map[string]any{"v": 2.0}); !errors.As(err, new(*ErrCollectionDropped)) {
			t.Fatalf("stale insert after drop: err = %v, want ErrCollectionDropped", err)
		}
		if err := stale.Upsert("ghost", map[string]any{"v": 2.0}); !errors.As(err, new(*ErrCollectionDropped)) {
			t.Fatalf("stale upsert after drop: err = %v", err)
		}
		if stale.Has("old") {
			t.Error("stale handle still reads dropped documents")
		}
		fresh := s.Collection("c")
		if fresh.Len() != 0 {
			t.Fatalf("re-created collection has %d documents, want 0", fresh.Len())
		}
		if err := fresh.Insert("new", map[string]any{"v": 3.0}); err != nil {
			t.Fatal(err)
		}
		// The stale handle stays inert even after the name is
		// re-created — reads miss on both backends.
		if stale.Has("new") || stale.Len() != 0 {
			t.Error("stale handle reads the re-created collection")
		}
		if _, err := stale.Get("new"); err == nil {
			t.Error("stale Get sees the re-created collection")
		}
		if docs := stale.Find(nil); len(docs) != 0 {
			t.Errorf("stale Find returned %d docs", len(docs))
		}
	})
}
