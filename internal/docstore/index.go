package docstore

import (
	"fmt"
	"sync"
)

// secondaryIndex is the maintenance-and-probe surface the collection
// keeps per indexed dot path. Two implementations exist: hashIndex
// (equality probes only) and orderedIndex (equality probes plus range
// scans and value-ordered iteration; see ordindex.go). The planner
// type-switches for the capabilities beyond this interface.
type secondaryIndex interface {
	// add / remove maintain the index for one document mutation. They
	// are called under the collection's writer lock.
	add(docKey string, doc map[string]any)
	remove(docKey string, doc map[string]any)
	// lookupEq returns the candidate document keys holding arg at the
	// indexed path (a superset for multikey paths; callers re-apply
	// the filter). estimateEq is its cost-free cardinality estimate,
	// and containsDoc the O(1) membership probe the planner uses to
	// intersect without materializing non-driving candidate sets.
	lookupEq(arg any) []string
	estimateEq(arg any) int
	containsDoc(arg any, docKey string) bool
}

// hashIndex is a multikey equality index over one dot path: each value
// reached at the path maps to the set of document keys holding it.
// The index carries its own lock so index-backed readers can answer
// candidate lookups without the collection-wide lock — writers mutate
// it under the collection lock as before, but a scan no longer
// serializes behind them (the sharded scan path).
type hashIndex struct {
	path string

	mu      sync.RWMutex
	entries map[string]map[string]struct{} // indexKey -> doc keys
}

func newHashIndex(path string) *hashIndex {
	return &hashIndex{path: path, entries: make(map[string]map[string]struct{})}
}

// indexKey renders a scalar into a collision-safe string key. Only
// scalars are indexable; maps and arrays fan out to their elements.
func indexKey(v any) (string, bool) {
	switch x := normalize(v).(type) {
	case nil:
		return "n:", true
	case bool:
		return fmt.Sprintf("b:%t", x), true
	case float64:
		return fmt.Sprintf("f:%g", x), true
	case string:
		return "s:" + x, true
	}
	return "", false
}

func (ix *hashIndex) add(docKey string, doc map[string]any) {
	vals, found := lookupPath(doc, ix.path)
	if !found {
		return
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()
	for _, v := range vals {
		ix.addValue(docKey, v)
	}
}

func (ix *hashIndex) addValue(docKey string, v any) {
	if arr, ok := v.([]any); ok {
		for _, e := range arr {
			ix.addValue(docKey, e)
		}
		return
	}
	k, ok := indexKey(v)
	if !ok {
		return
	}
	set, exists := ix.entries[k]
	if !exists {
		set = make(map[string]struct{})
		ix.entries[k] = set
	}
	set[docKey] = struct{}{}
}

func (ix *hashIndex) remove(docKey string, doc map[string]any) {
	vals, found := lookupPath(doc, ix.path)
	if !found {
		return
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()
	for _, v := range vals {
		ix.removeValue(docKey, v)
	}
}

func (ix *hashIndex) removeValue(docKey string, v any) {
	if arr, ok := v.([]any); ok {
		for _, e := range arr {
			ix.removeValue(docKey, e)
		}
		return
	}
	k, ok := indexKey(v)
	if !ok {
		return
	}
	if set, exists := ix.entries[k]; exists {
		delete(set, docKey)
		if len(set) == 0 {
			delete(ix.entries, k)
		}
	}
}

// lookupEq answers an equality probe (Eq / Contains candidates).
func (ix *hashIndex) lookupEq(arg any) []string {
	k, ok := indexKey(arg)
	if !ok {
		return nil
	}
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	set := ix.entries[k]
	keys := make([]string, 0, len(set))
	for dk := range set {
		keys = append(keys, dk)
	}
	return keys
}

// estimateEq reports the candidate count of an equality probe without
// materializing it — the planner's selectivity estimate.
func (ix *hashIndex) estimateEq(arg any) int {
	k, ok := indexKey(arg)
	if !ok {
		return 0
	}
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.entries[k])
}

// containsDoc reports whether docKey is among the candidates for arg.
func (ix *hashIndex) containsDoc(arg any, docKey string) bool {
	k, ok := indexKey(arg)
	if !ok {
		return false
	}
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	_, held := ix.entries[k][docKey]
	return held
}
