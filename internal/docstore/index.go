package docstore

import (
	"fmt"
	"sync"
)

// hashIndex is a multikey equality index over one dot path: each value
// reached at the path maps to the set of document keys holding it.
// The index carries its own lock so index-backed readers can answer
// candidate lookups without the collection-wide lock — writers mutate
// it under the collection lock as before, but a scan no longer
// serializes behind them (the sharded scan path).
type hashIndex struct {
	path string

	mu      sync.RWMutex
	entries map[string]map[string]struct{} // indexKey -> doc keys
}

func newHashIndex(path string) *hashIndex {
	return &hashIndex{path: path, entries: make(map[string]map[string]struct{})}
}

// indexKey renders a scalar into a collision-safe string key. Only
// scalars are indexable; maps and arrays fan out to their elements.
func indexKey(v any) (string, bool) {
	switch x := normalize(v).(type) {
	case nil:
		return "n:", true
	case bool:
		return fmt.Sprintf("b:%t", x), true
	case float64:
		return fmt.Sprintf("f:%g", x), true
	case string:
		return "s:" + x, true
	}
	return "", false
}

func (ix *hashIndex) add(docKey string, doc map[string]any) {
	vals, found := lookupPath(doc, ix.path)
	if !found {
		return
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()
	for _, v := range vals {
		ix.addValue(docKey, v)
	}
}

func (ix *hashIndex) addValue(docKey string, v any) {
	if arr, ok := v.([]any); ok {
		for _, e := range arr {
			ix.addValue(docKey, e)
		}
		return
	}
	k, ok := indexKey(v)
	if !ok {
		return
	}
	set, exists := ix.entries[k]
	if !exists {
		set = make(map[string]struct{})
		ix.entries[k] = set
	}
	set[docKey] = struct{}{}
}

func (ix *hashIndex) remove(docKey string, doc map[string]any) {
	vals, found := lookupPath(doc, ix.path)
	if !found {
		return
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()
	for _, v := range vals {
		ix.removeValue(docKey, v)
	}
}

func (ix *hashIndex) removeValue(docKey string, v any) {
	if arr, ok := v.([]any); ok {
		for _, e := range arr {
			ix.removeValue(docKey, e)
		}
		return
	}
	k, ok := indexKey(v)
	if !ok {
		return
	}
	if set, exists := ix.entries[k]; exists {
		delete(set, docKey)
		if len(set) == 0 {
			delete(ix.entries, k)
		}
	}
}

// lookup answers an equality-style filter from the index. It reports
// the candidate keys and whether the filter shape was answerable.
func (ix *hashIndex) lookup(f *fieldFilter) ([]string, bool) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	collect := func(arg any) []string {
		k, ok := indexKey(arg)
		if !ok {
			return nil
		}
		set := ix.entries[k]
		keys := make([]string, 0, len(set))
		for dk := range set {
			keys = append(keys, dk)
		}
		return keys
	}
	switch f.op {
	case opEq, opContains:
		return collect(f.arg), true
	case opIn:
		seen := make(map[string]struct{})
		var out []string
		for _, arg := range f.list {
			for _, dk := range collect(arg) {
				if _, dup := seen[dk]; !dup {
					seen[dk] = struct{}{}
					out = append(out, dk)
				}
			}
		}
		return out, true
	}
	return nil, false
}
