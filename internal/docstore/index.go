package docstore

import (
	"fmt"
	"sync"

	"smartchaindb/internal/storage"
)

// secondaryIndex is the maintenance-and-probe surface the collection
// keeps per indexed dot path. Two implementations exist: hashIndex
// (equality probes only) and orderedIndex (equality probes plus range
// scans and value-ordered iteration; see ordindex.go). The planner
// type-switches for the capabilities beyond this interface.
//
// Indexes are height-aware: every (value, document) pairing carries
// its visibility lifespans, so probes answer "which documents held
// this value as of block height h". storage.HeightLatest probes the
// current (writer-view) contents.
type secondaryIndex interface {
	// add / remove maintain the index for one document mutation at
	// block height h. They are called under the collection's writer
	// lock.
	add(docKey string, doc map[string]any, h int64)
	remove(docKey string, doc map[string]any, h int64)
	// lookupEq returns the candidate document keys holding arg at the
	// indexed path as of height h (a superset for multikey paths;
	// callers re-apply the filter). estimateEq is its cost-free
	// cardinality estimate (over current contents — plan choice, not
	// correctness), and containsDoc the O(1) membership probe the
	// planner uses to intersect without materializing non-driving
	// candidate sets.
	lookupEq(arg any, h int64) []string
	estimateEq(arg any) int
	containsDoc(arg any, docKey string, h int64) bool
	// sweepFloor drops every lifespan that closed at or below floor —
	// no supported snapshot height can observe it. The store calls it
	// when the backend's retention floor advances at block seal, so
	// sweep work tracks version GC instead of accumulating by mutation
	// count between amortization thresholds.
	sweepFloor(floor int64)
}

// span is one visibility interval of a (value, document) pairing:
// the pairing is visible at h iff born <= h and h is below died (an
// open span has died == spanOpen and additionally covers
// storage.HeightLatest).
type span struct{ born, died int64 }

const spanOpen = storage.HeightLatest

// spanList holds one document's lifespans under one value, newest
// last. Zero-width spans (born == died: added and removed at the same
// height) are naturally invisible at every height.
type spanList []span

func (s spanList) aliveAt(h int64) bool {
	for i := len(s) - 1; i >= 0; i-- {
		if s[i].born <= h && (s[i].died == spanOpen || h < s[i].died) {
			return true
		}
	}
	return false
}

// open reports whether the newest span is still open.
func (s spanList) open() bool {
	return len(s) > 0 && s[len(s)-1].died == spanOpen
}

// sweep drops spans that closed at or below floor — no supported
// snapshot can see them — returning the survivors and how many
// closed-but-live spans remain.
func (s spanList) sweep(floor int64) (spanList, int) {
	kept := s[:0]
	dead := 0
	for _, sp := range s {
		if sp.died != spanOpen && sp.died <= floor {
			continue
		}
		if sp.died != spanOpen {
			dead++
		}
		kept = append(kept, sp)
	}
	return kept, dead
}

// idxEntry is one indexed value's document set: lifespans per document
// key plus the open-span count estimates use.
type idxEntry struct {
	docs  map[string]spanList
	alive int
}

// hashIndex is a multikey equality index over one dot path: each value
// reached at the path maps to the documents that held it, with
// visibility lifespans. The index carries its own lock so index-backed
// readers can answer candidate lookups without the collection-wide
// lock — writers mutate it under the collection lock as before, but a
// scan no longer serializes behind them (the sharded scan path).
type hashIndex struct {
	path string

	mu        sync.RWMutex
	entries   map[string]*idxEntry // indexKey -> value entry
	deadSpans int
	lastFloor int64 // floor the last sweep ran at
}

func newHashIndex(path string) *hashIndex {
	return &hashIndex{path: path, entries: make(map[string]*idxEntry)}
}

// indexKey renders a scalar into a collision-safe string key. Only
// scalars are indexable; maps and arrays fan out to their elements.
func indexKey(v any) (string, bool) {
	switch x := normalize(v).(type) {
	case nil:
		return "n:", true
	case bool:
		return fmt.Sprintf("b:%t", x), true
	case float64:
		return fmt.Sprintf("f:%g", x), true
	case string:
		return "s:" + x, true
	}
	return "", false
}

func (ix *hashIndex) add(docKey string, doc map[string]any, h int64) {
	vals, found := lookupPath(doc, ix.path)
	if !found {
		return
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()
	for _, v := range vals {
		ix.addValue(docKey, v, h)
	}
}

func (ix *hashIndex) addValue(docKey string, v any, h int64) {
	if arr, ok := v.([]any); ok {
		for _, e := range arr {
			ix.addValue(docKey, e, h)
		}
		return
	}
	k, ok := indexKey(v)
	if !ok {
		return
	}
	e, exists := ix.entries[k]
	if !exists {
		e = &idxEntry{docs: make(map[string]spanList)}
		ix.entries[k] = e
	}
	sl := e.docs[docKey]
	if sl.open() {
		// Duplicate occurrence (multikey array): already indexed.
		return
	}
	e.docs[docKey] = append(sl, span{born: h, died: spanOpen})
	e.alive++
}

func (ix *hashIndex) remove(docKey string, doc map[string]any, h int64) {
	vals, found := lookupPath(doc, ix.path)
	if !found {
		return
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()
	for _, v := range vals {
		ix.removeValue(docKey, v, h)
	}
}

func (ix *hashIndex) removeValue(docKey string, v any, h int64) {
	if arr, ok := v.([]any); ok {
		for _, e := range arr {
			ix.removeValue(docKey, e, h)
		}
		return
	}
	k, ok := indexKey(v)
	if !ok {
		return
	}
	e, exists := ix.entries[k]
	if !exists {
		return
	}
	sl := e.docs[docKey]
	if !sl.open() {
		return
	}
	sl[len(sl)-1].died = h
	e.docs[docKey] = sl
	e.alive--
	ix.deadSpans++
}

// sweepFloor drops every span no snapshot at or above floor can
// reach. Driven by the retention floor advancing at block seal
// (Store.SweepIndexes); a floor that has not moved since the last
// sweep, or an index with no closed spans, returns without touching
// an entry.
func (ix *hashIndex) sweepFloor(floor int64) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if ix.deadSpans == 0 || floor <= ix.lastFloor {
		if floor > ix.lastFloor {
			ix.lastFloor = floor
		}
		return
	}
	ix.lastFloor = floor
	remaining := 0
	for k, e := range ix.entries {
		for dk, sl := range e.docs {
			kept, dead := sl.sweep(floor)
			remaining += dead
			if len(kept) == 0 {
				delete(e.docs, dk)
				continue
			}
			e.docs[dk] = kept
		}
		if len(e.docs) == 0 {
			delete(ix.entries, k)
		}
	}
	ix.deadSpans = remaining
}

// lookupEq answers an equality probe (Eq / Contains candidates) as of
// height h.
func (ix *hashIndex) lookupEq(arg any, h int64) []string {
	k, ok := indexKey(arg)
	if !ok {
		return nil
	}
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	e := ix.entries[k]
	if e == nil {
		return nil
	}
	keys := make([]string, 0, e.alive)
	for dk, sl := range e.docs {
		if sl.aliveAt(h) {
			keys = append(keys, dk)
		}
	}
	return keys
}

// estimateEq reports the candidate count of an equality probe without
// materializing it — the planner's selectivity estimate.
func (ix *hashIndex) estimateEq(arg any) int {
	k, ok := indexKey(arg)
	if !ok {
		return 0
	}
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	if e := ix.entries[k]; e != nil {
		return e.alive
	}
	return 0
}

// containsDoc reports whether docKey is among the candidates for arg
// as of height h.
func (ix *hashIndex) containsDoc(arg any, docKey string, h int64) bool {
	k, ok := indexKey(arg)
	if !ok {
		return false
	}
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	if e := ix.entries[k]; e != nil {
		return e.docs[docKey].aliveAt(h)
	}
	return false
}
