package docstore

import (
	"fmt"
	"sync"
	"testing"
)

// TestShardedFindRacesWriter drives the index-backed sharded scan path
// concurrently with a writer mutating the same collection — the shape
// of a next-height validation query racing a block commit's appliers.
// The race detector is the primary assertion; semantically, every
// document a query returns must actually match its filter (a torn
// index hit must never surface a non-matching document).
func TestShardedFindRacesWriter(t *testing.T) {
	s := NewStore()
	defer s.Close()
	c := s.Collection("utxos")
	c.CreateIndex("owner")
	c.CreateIndex("spent")

	const owners = 8
	const docsPerOwner = 64
	var wg sync.WaitGroup
	wg.Add(1 + owners)
	go func() {
		defer wg.Done()
		for i := 0; i < owners*docsPerOwner; i++ {
			key := fmt.Sprintf("u%04d", i)
			owner := fmt.Sprintf("o%d", i%owners)
			if err := c.Insert(key, map[string]any{"owner": owner, "spent": false, "n": float64(i)}); err != nil {
				t.Error(err)
				return
			}
			if i%3 == 0 {
				if err := c.Update(key, func(doc map[string]any) error {
					doc["spent"] = true
					return nil
				}); err != nil {
					t.Error(err)
					return
				}
			}
		}
	}()
	for o := 0; o < owners; o++ {
		owner := fmt.Sprintf("o%d", o)
		go func() {
			defer wg.Done()
			for r := 0; r < 50; r++ {
				for _, doc := range c.Find(And(Eq("owner", owner), Eq("spent", false))) {
					if doc["owner"] != owner {
						t.Errorf("sharded find returned owner %v, want %v", doc["owner"], owner)
						return
					}
					if doc["spent"] != false {
						t.Errorf("sharded find returned spent doc %v", doc)
						return
					}
				}
				c.Count(Eq("owner", owner))
			}
		}()
	}
	wg.Wait()

	// Quiesced: the index-backed path must now agree with a full scan.
	for o := 0; o < owners; o++ {
		owner := fmt.Sprintf("o%d", o)
		got := len(c.Find(Eq("owner", owner)))
		want := 0
		c.mu.RLock()
		c.be.Scan(func(_ string, doc map[string]any) bool {
			if doc["owner"] == owner {
				want++
			}
			return true
		})
		c.mu.RUnlock()
		if got != want {
			t.Errorf("owner %s: indexed find %d docs, scan %d", owner, got, want)
		}
	}
}
