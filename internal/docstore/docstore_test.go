package docstore

import (
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"testing/quick"
)

func doc(kv ...any) map[string]any {
	m := make(map[string]any, len(kv)/2)
	for i := 0; i+1 < len(kv); i += 2 {
		m[kv[i].(string)] = kv[i+1]
	}
	return m
}

func TestInsertGetDelete(t *testing.T) {
	s := NewStore()
	c := s.Collection("transactions")
	if err := c.Insert("a", doc("op", "CREATE", "n", 1.0)); err != nil {
		t.Fatal(err)
	}
	got, err := c.Get("a")
	if err != nil {
		t.Fatal(err)
	}
	if got["op"] != "CREATE" {
		t.Errorf("got %v", got)
	}
	if err := c.Insert("a", doc()); err == nil {
		t.Fatal("duplicate insert should fail")
	}
	var dup *ErrDuplicateKey
	if !errors.As(c.Insert("a", doc()), &dup) {
		t.Error("want ErrDuplicateKey")
	}
	c.Delete("a")
	if _, err := c.Get("a"); err == nil {
		t.Fatal("get after delete should fail")
	}
	var nf *ErrNotFound
	_, err = c.Get("a")
	if !errors.As(err, &nf) {
		t.Error("want ErrNotFound")
	}
	c.Delete("missing") // no-op
	if err := c.Insert("", doc()); err == nil {
		t.Error("empty key should fail")
	}
}

func TestDocumentsAreIsolated(t *testing.T) {
	c := NewStore().Collection("c")
	original := doc("nested", map[string]any{"x": 1.0}, "list", []any{"a"})
	if err := c.Insert("k", original); err != nil {
		t.Fatal(err)
	}
	// Mutating the inserted map must not affect the store.
	original["nested"].(map[string]any)["x"] = 99.0
	got, _ := c.Get("k")
	if got["nested"].(map[string]any)["x"] != 1.0 {
		t.Error("store aliased inserted document")
	}
	// Mutating a returned copy must not affect the store.
	got["list"].([]any)[0] = "mutated"
	again, _ := c.Get("k")
	if again["list"].([]any)[0] != "a" {
		t.Error("store aliased returned document")
	}
}

func TestUpsertAndUpdate(t *testing.T) {
	c := NewStore().Collection("c")
	c.Upsert("k", doc("v", 1.0))
	c.Upsert("k", doc("v", 2.0))
	got, _ := c.Get("k")
	if got["v"] != 2.0 {
		t.Errorf("v = %v", got["v"])
	}
	if err := c.Update("k", func(d map[string]any) error {
		d["v"] = d["v"].(float64) + 1
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	got, _ = c.Get("k")
	if got["v"] != 3.0 {
		t.Errorf("v = %v", got["v"])
	}
	// Failed update leaves document untouched.
	if err := c.Update("k", func(d map[string]any) error {
		d["v"] = 99.0
		return fmt.Errorf("abort")
	}); err == nil {
		t.Fatal("update should propagate error")
	}
	got, _ = c.Get("k")
	if got["v"] != 3.0 {
		t.Errorf("aborted update mutated doc: v = %v", got["v"])
	}
	if err := c.Update("missing", func(map[string]any) error { return nil }); err == nil {
		t.Error("update of missing key should fail")
	}
}

func TestFindFilters(t *testing.T) {
	c := NewStore().Collection("c")
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(c.Insert("1", doc("op", "CREATE", "amount", 5.0, "caps", []any{"cnc", "3d"})))
	must(c.Insert("2", doc("op", "BID", "amount", 10.0, "caps", []any{"cnc"})))
	must(c.Insert("3", doc("op", "BID", "amount", 7.0, "nested", map[string]any{"deep": "x"})))
	must(c.Insert("4", doc("op", "REQUEST", "amount", 10.0)))

	cases := []struct {
		name   string
		filter Filter
		want   []string
	}{
		{"eq", Eq("op", "BID"), []string{"2", "3"}},
		{"eq number", Eq("amount", 10), []string{"2", "4"}},
		{"ne", Ne("op", "BID"), []string{"1", "4"}},
		{"gt", Gt("amount", 7), []string{"2", "4"}},
		{"gte", Gte("amount", 7), []string{"2", "3", "4"}},
		{"lt", Lt("amount", 7), []string{"1"}},
		{"lte", Lte("amount", 7), []string{"1", "3"}},
		{"in", In("op", "CREATE", "REQUEST"), []string{"1", "4"}},
		{"exists yes", Exists("nested", true), []string{"3"}},
		{"exists no", Exists("nested", false), []string{"1", "2", "4"}},
		{"contains", Contains("caps", "cnc"), []string{"1", "2"}},
		{"containsAll", ContainsAll("caps", "cnc", "3d"), []string{"1"}},
		{"eq into array", Eq("caps", "3d"), []string{"1"}},
		{"dotted", Eq("nested.deep", "x"), []string{"3"}},
		{"regex", Regex("op", "^B"), []string{"2", "3"}},
		{"and", And(Eq("op", "BID"), Gt("amount", 8)), []string{"2"}},
		{"or", Or(Eq("op", "CREATE"), Eq("op", "REQUEST")), []string{"1", "4"}},
		{"not", Not(Eq("op", "BID")), []string{"1", "4"}},
		{"all", All(), []string{"1", "2", "3", "4"}},
		{"nil", nil, []string{"1", "2", "3", "4"}},
		{"bad regex", Regex("op", "["), nil},
		{"string gt", Gt("op", "BID"), []string{"1", "4"}},
		{"uncomparable", Gt("caps", 1), nil},
	}
	for _, tc := range cases {
		got := c.FindKeys(tc.filter)
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("%s: got %v, want %v", tc.name, got, tc.want)
		}
		if n := c.Count(tc.filter); n != len(tc.want) {
			t.Errorf("%s: Count = %d, want %d", tc.name, n, len(tc.want))
		}
	}
}

func TestFindLimitAndFindOne(t *testing.T) {
	c := NewStore().Collection("c")
	for i := 0; i < 10; i++ {
		if err := c.Insert(fmt.Sprint(i), doc("i", float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if got := c.FindLimit(All(), 3); len(got) != 3 {
		t.Errorf("limit 3 returned %d", len(got))
	}
	one, err := c.FindOne(Eq("i", 7))
	if err != nil || one["i"] != 7.0 {
		t.Errorf("FindOne = %v, %v", one, err)
	}
	if _, err := c.FindOne(Eq("i", 99)); err == nil {
		t.Error("FindOne miss should error")
	}
}

func TestArrayFanOutPath(t *testing.T) {
	c := NewStore().Collection("c")
	if err := c.Insert("tx", doc(
		"outputs", []any{
			map[string]any{"public_keys": []any{"alice"}, "amount": 1.0},
			map[string]any{"public_keys": []any{"escrow"}, "amount": 2.0},
		},
	)); err != nil {
		t.Fatal(err)
	}
	if got := c.FindKeys(Eq("outputs.public_keys", "escrow")); len(got) != 1 {
		t.Errorf("array fan-out lookup failed: %v", got)
	}
	if got := c.FindKeys(Eq("outputs.amount", 2)); len(got) != 1 {
		t.Errorf("array fan-out number lookup failed: %v", got)
	}
	if got := c.FindKeys(Eq("outputs.public_keys", "nobody")); len(got) != 0 {
		t.Errorf("unexpected match: %v", got)
	}
}

func TestIndexedLookupMatchesScan(t *testing.T) {
	c := NewStore().Collection("c")
	for i := 0; i < 50; i++ {
		op := "CREATE"
		if i%3 == 0 {
			op = "BID"
		}
		if err := c.Insert(fmt.Sprint(i), doc("op", op, "i", float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	scan := c.FindKeys(Eq("op", "BID"))
	c.CreateIndex("op")
	indexed := c.FindKeys(Eq("op", "BID"))
	if !reflect.DeepEqual(scan, indexed) {
		t.Errorf("indexed result %v differs from scan %v", indexed, scan)
	}
	if got := c.IndexedPaths(); !reflect.DeepEqual(got, []string{"op"}) {
		t.Errorf("IndexedPaths = %v", got)
	}
	// Index stays consistent across insert/update/delete.
	if err := c.Insert("new", doc("op", "BID")); err != nil {
		t.Fatal(err)
	}
	if err := c.Update("new", func(d map[string]any) error { d["op"] = "CREATE"; return nil }); err != nil {
		t.Fatal(err)
	}
	if keys := c.FindKeys(Eq("op", "BID")); len(keys) != len(scan) {
		t.Errorf("after update: %d BIDs, want %d", len(keys), len(scan))
	}
	c.Delete("0")
	if keys := c.FindKeys(Eq("op", "BID")); len(keys) != len(scan)-1 {
		t.Errorf("after delete: %d BIDs, want %d", len(keys), len(scan)-1)
	}
	// In and And filters also use the index.
	inKeys := c.FindKeys(In("op", "BID", "CREATE"))
	if len(inKeys) != c.Len() {
		t.Errorf("In matched %d of %d", len(inKeys), c.Len())
	}
	andKeys := c.FindKeys(And(Eq("op", "BID"), Gt("i", 10)))
	for _, k := range andKeys {
		d, _ := c.Get(k)
		if d["op"] != "BID" || d["i"].(float64) <= 10 {
			t.Errorf("And via index returned wrong doc %v", d)
		}
	}
}

func TestIndexOverArrayValues(t *testing.T) {
	c := NewStore().Collection("c")
	if err := c.Insert("a", doc("caps", []any{"cnc", "3d"})); err != nil {
		t.Fatal(err)
	}
	if err := c.Insert("b", doc("caps", []any{"paint"})); err != nil {
		t.Fatal(err)
	}
	c.CreateIndex("caps")
	if got := c.FindKeys(Contains("caps", "cnc")); !reflect.DeepEqual(got, []string{"a"}) {
		t.Errorf("Contains via index = %v", got)
	}
}

func TestIndexPropertyEquivalence(t *testing.T) {
	// Property: for random docs, indexed Eq returns the same set as a scan.
	f := func(vals []uint8) bool {
		c := NewStore().Collection("p")
		for i, v := range vals {
			if err := c.Insert(fmt.Sprint(i), doc("v", float64(v%4))); err != nil {
				return false
			}
		}
		scan := c.FindKeys(Eq("v", 2))
		c.CreateIndex("v")
		indexed := c.FindKeys(Eq("v", 2))
		return reflect.DeepEqual(scan, indexed)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestStoreCollections(t *testing.T) {
	s := NewStore()
	s.Collection("b")
	s.Collection("a")
	s.Collection("a") // idempotent
	if got := s.CollectionNames(); !reflect.DeepEqual(got, []string{"a", "b"}) {
		t.Errorf("CollectionNames = %v", got)
	}
	if err := s.Collection("a").Insert("k", doc()); err != nil {
		t.Fatal(err)
	}
	s.Drop("a")
	if s.Collection("a").Has("k") {
		t.Error("dropped collection should be empty on recreation")
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := NewStore().Collection("c")
	c.CreateIndex("op")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				key := fmt.Sprintf("%d-%d", g, i)
				if err := c.Insert(key, doc("op", "BID", "g", float64(g))); err != nil {
					t.Error(err)
					return
				}
				if _, err := c.Get(key); err != nil {
					t.Error(err)
					return
				}
				c.Find(Eq("op", "BID"))
				if i%3 == 0 {
					c.Delete(key)
				}
			}
		}(g)
	}
	wg.Wait()
	want := 8 * 100 * 2 / 3
	if got := c.Len(); got < want-10 || got > want+10 {
		t.Errorf("Len = %d, want about %d", got, want)
	}
}

func TestKeysInsertionOrder(t *testing.T) {
	c := NewStore().Collection("c")
	for _, k := range []string{"z", "a", "m"} {
		if err := c.Insert(k, doc()); err != nil {
			t.Fatal(err)
		}
	}
	if got := c.Keys(); !reflect.DeepEqual(got, []string{"z", "a", "m"}) {
		t.Errorf("Keys = %v", got)
	}
}
