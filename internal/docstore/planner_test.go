package docstore

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"smartchaindb/internal/obs"
)

// plannerFixture builds a small collection with one hash index (op),
// one ordered index (n), and one multikey hash index (tags); "u" stays
// unindexed.
func plannerFixture(t *testing.T) *Collection {
	t.Helper()
	s := NewStore()
	t.Cleanup(func() { s.Close() })
	c := s.Collection("docs")
	c.CreateIndex("op")
	c.CreateOrderedIndex("n")
	c.CreateIndex("tags")
	docs := []map[string]any{
		{"op": "A", "n": 1, "tags": []any{"x", "y"}, "u": 10},
		{"op": "B", "n": 5, "tags": []any{"y"}, "u": 20},
		{"op": "A", "n": 9, "tags": []any{"z"}, "u": 30},
		{"op": "C", "n": "str", "u": 40},
		{"op": "B", "n": 12, "tags": []any{"x"}, "u": 50},
	}
	for i, d := range docs {
		if err := c.Insert(string(rune('a'+i)), d); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

func TestExplainShapes(t *testing.T) {
	c := plannerFixture(t)
	cases := []struct {
		name   string
		filter Filter
		want   string // prefix of the Explain rendering
	}{
		{"eq-point", Eq("op", "A"), `point(op eq "A")[2]`},
		{"contains-point", Contains("tags", "y"), `point(tags contains "y")[2]`},
		{"in-point", In("op", "A", "C"), `point(op in 2 values)[3]`},
		{"gt-range", Gt("n", 4), `range(n >4)[3]`},
		{"lte-range", Lte("n", 5), `range(n <=5)[2]`},
		{"string-range", Gte("n", "a"), `range(n >="a")[1]`},
		{"and-intersect", And(Eq("op", "B"), Gt("n", 0)), `intersect[2](point(op eq "B")[2], range(n >0)[4])`},
		{"and-prunes-unindexed", And(Eq("op", "A"), Eq("u", 10)), `point(op eq "A")[2]`},
		{"or-union", Or(Eq("op", "C"), Gt("n", 10)), `union[2](point(op eq "C")[1], range(n >10)[1])`},
		{"or-unindexable", Or(Eq("op", "A"), Eq("u", 10)), `full-scan(unindexable or-branch: no index on "u")`},
		{"not", Not(Eq("op", "A")), "full-scan(negation)"},
		{"ne", Ne("op", "A"), `full-scan(index on "op" cannot answer ne)`},
		{"exists", Exists("op", true), `full-scan(index on "op" cannot answer exists)`},
		{"unindexed", Eq("u", 10), `full-scan(no index on "u")`},
		{"hash-cannot-range", Gt("op", "A"), `full-scan(hash index on "op" cannot answer gt)`},
		{"match-all", All(), "full-scan(match-all)"},
		{"nil", nil, "full-scan(match-all)"},
		{"empty-in", In("op"), "none"},
		{"bad-regex", Regex("op", "("), "none"},
		{"incomparable-range", Gt("n", true), "none"},
		{"contains-all", ContainsAll("tags", "x", "y"), `intersect[2](point(tags contains "x")[2], point(tags contains "y")[2])`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := c.Explain(tc.filter); got != tc.want {
				t.Errorf("Explain = %s, want %s", got, tc.want)
			}
		})
	}
}

// TestIntersectDrivingIndex pins the selectivity choice: the smaller
// candidate set leads the intersect regardless of conjunct order.
func TestIntersectDrivingIndex(t *testing.T) {
	c := plannerFixture(t)
	ex := c.Explain(And(Gt("n", 0), Eq("op", "C"))) // op=C is rarer than n>0
	if !strings.HasPrefix(ex, `intersect[1](point(op eq "C")[1], `) {
		t.Errorf("driving index not the most selective: %s", ex)
	}
}

// TestPlannedResultsMatchScan spot-checks that every plan shape
// returns exactly what the full scan returns, in insertion order.
func TestPlannedResultsMatchScan(t *testing.T) {
	c := plannerFixture(t)
	filters := []Filter{
		Eq("op", "A"),
		Contains("tags", "y"),
		In("op", "A", "C"),
		Gt("n", 4),
		And(Eq("op", "B"), Gt("n", 0)),
		And(Gte("n", 2), Lte("n", 10)),
		Or(Eq("op", "C"), Gt("n", 10)),
		ContainsAll("tags", "x", "y"),
		Gte("n", "a"), // string class only: numeric n must not leak in
		In("op"),
		Regex("op", "("),
	}
	for _, f := range filters {
		ex := c.Explain(f)
		if strings.Contains(ex, "full-scan") {
			t.Errorf("filter unexpectedly unplanned: %s", ex)
			continue
		}
		planned, scanned := c.Find(f), c.FindScan(f)
		if !reflect.DeepEqual(planned, scanned) {
			t.Errorf("plan %s: planned %v != scanned %v", ex, planned, scanned)
		}
	}
}

// TestMultikeyRangeIntersection pins the reason comparisons on one
// path are never merged into a single bounded scan: through an
// intermediate array, a document can satisfy Gte AND Lte with two
// different values that both lie outside the merged band.
func TestMultikeyRangeIntersection(t *testing.T) {
	s := NewStore()
	defer s.Close()
	c := s.Collection("docs")
	c.CreateOrderedIndex("items.v")
	item := func(vs ...any) map[string]any {
		arr := make([]any, len(vs))
		for i, v := range vs {
			arr[i] = map[string]any{"v": v}
		}
		return map[string]any{"items": arr}
	}
	if err := c.Insert("straddle", item(3, 20)); err != nil {
		t.Fatal(err)
	}
	if err := c.Insert("inside", item(7)); err != nil {
		t.Fatal(err)
	}
	if err := c.Insert("outside", item(1)); err != nil {
		t.Fatal(err)
	}
	f := And(Gte("items.v", 5), Lte("items.v", 10))
	keys := c.FindKeys(f)
	if !reflect.DeepEqual(keys, []string{"straddle", "inside"}) {
		t.Errorf("multikey band keys = %v, want [straddle inside]", keys)
	}
	if !reflect.DeepEqual(c.Find(f), c.FindScan(f)) {
		t.Error("planned band differs from scan")
	}
}

// TestFullScanCounter pins the observable: planned queries leave the
// obs registry's full-scan counter flat, unplannable ones bump it,
// and the planner's decisions land in the plan-kind counters.
func TestFullScanCounter(t *testing.T) {
	c := plannerFixture(t)
	reg := obs.New()
	c.setObs(reg)
	scans := reg.Counter("docstore.full_scans")
	base := scans.Value()
	c.Find(Eq("op", "A"))
	c.Count(And(Eq("op", "B"), Gt("n", 0)))
	c.FindKeys(Or(Eq("op", "C"), Lt("n", 3)))
	c.FindOrdered(Eq("op", "A"), "n", true, 0)
	if got := scans.Value(); got != base {
		t.Fatalf("planned queries executed %d full scans", got-base)
	}
	if reg.Counter("docstore.plan.point").Value() == 0 {
		t.Fatal("point plans not counted")
	}
	if reg.Counter("docstore.index_probes").Value() == 0 {
		t.Fatal("index probes not counted")
	}
	c.Find(Eq("u", 10))
	if got := scans.Value(); got != base+1 {
		t.Fatalf("full-scan counter = %d, want %d", got, base+1)
	}
	if reg.Counter("docstore.plan.full_scan").Value() == 0 {
		t.Fatal("full-scan plans not counted")
	}
}

func TestFindOrdered(t *testing.T) {
	c := plannerFixture(t)
	vals := func(docs []map[string]any) []any {
		out := make([]any, len(docs))
		for i, d := range docs {
			out[i] = d["n"]
		}
		return out
	}
	// Ascending: numbers before the string class, insertion order ties.
	// (The memory backend stores the inserted ints verbatim.)
	asc := c.FindOrdered(nil, "n", false, 0)
	if got, want := vals(asc), []any{1, 5, 9, 12, "str"}; !reflect.DeepEqual(got, want) {
		t.Errorf("asc = %v, want %v", got, want)
	}
	// Descending with filter and limit.
	desc := c.FindOrdered(Eq("op", "B"), "n", true, 1)
	if got, want := vals(desc), []any{12}; !reflect.DeepEqual(got, want) {
		t.Errorf("desc limit = %v, want %v", got, want)
	}
	// The no-index fallback must agree with the indexed path: "u"
	// holds 10..50 in insertion order, so descending by u walks the
	// docs backwards.
	fallback := c.FindOrdered(nil, "u", true, 3)
	if got, want := vals(fallback), []any{12, "str", 9}; !reflect.DeepEqual(got, want) {
		t.Errorf("fallback desc n-values = %v, want %v", got, want)
	}
}

// TestFindOrderedMultikeyDedup: a document indexed under several
// values must stream exactly once, at its first value in walk order.
func TestFindOrderedMultikeyDedup(t *testing.T) {
	s := NewStore()
	defer s.Close()
	c := s.Collection("docs")
	c.CreateOrderedIndex("v")
	if err := c.Insert("multi", map[string]any{"v": []any{1, 9}}); err != nil {
		t.Fatal(err)
	}
	if err := c.Insert("mid", map[string]any{"v": 5}); err != nil {
		t.Fatal(err)
	}
	got := c.FindOrdered(nil, "v", false, 0)
	if len(got) != 2 {
		t.Fatalf("multikey doc duplicated: %d results", len(got))
	}
	if !reflect.DeepEqual(got[0]["v"], []any{1, 9}) || !reflect.DeepEqual(got[1]["v"], 5) {
		t.Errorf("order = %v", got)
	}
	// Matches the scan+sort fallback semantics (min value when asc).
	if fb := c.findOrderedScan(nil, "v", false, 0); !reflect.DeepEqual(got, fb) {
		t.Errorf("indexed %v != fallback %v", got, fb)
	}
}

// TestInSetMatchesLinearSemantics pins the hash-set fast path of In
// against the linear valuesEqual reference: NaN members match nothing,
// -0 and +0 are one value, and a non-scalar member falls back to the
// linear scan without changing scalar results.
func TestInSetMatchesLinearSemantics(t *testing.T) {
	nan := math.NaN()
	doc := func(v any) map[string]any { return map[string]any{"v": v} }
	if In("v", nan).Matches(doc(nan)) {
		t.Error("In(NaN) matched a NaN value; NaN equals nothing")
	}
	if !In("v", -0.0, "x").Matches(doc(0.0)) || !In("v", 0.0).Matches(doc(-0.0)) {
		t.Error("-0 and +0 must be the same In member")
	}
	// A non-scalar member forces the linear path; scalar members still match.
	mixed := In("v", []any{"weird"}, 3)
	if !mixed.Matches(doc(3.0)) || mixed.Matches(doc(4.0)) {
		t.Error("linear fallback diverged on scalar members")
	}
}

func TestAnalyze(t *testing.T) {
	n := Analyze(And(Eq("a", 1), Or(Gt("b", 2), Not(Contains("c", "x")))))
	if n.Kind != KindAnd || len(n.Children) != 2 {
		t.Fatalf("root = %+v", n)
	}
	if leaf := n.Children[0]; leaf.Kind != KindField || leaf.Op != OpEq || leaf.Path != "a" || leaf.Arg != 1.0 {
		t.Errorf("eq leaf = %+v", leaf)
	}
	or := n.Children[1]
	if or.Kind != KindOr || len(or.Children) != 2 {
		t.Fatalf("or = %+v", or)
	}
	if or.Children[1].Kind != KindNot || or.Children[1].Children[0].Op != OpContains {
		t.Errorf("not = %+v", or.Children[1])
	}
	if got := Analyze(nil); got.Kind != KindAll {
		t.Errorf("nil analyzes to %+v", got)
	}
	type opaque struct{ Filter }
	if got := Analyze(opaque{}); got.Kind != KindOpaque {
		t.Errorf("foreign filter analyzes to %+v", got)
	}
}
