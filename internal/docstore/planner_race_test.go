package docstore

import (
	"fmt"
	"sync"
	"testing"
)

// TestPlannedReadsRaceWriter drives every planned access shape — point,
// range, intersect, union, and ordered iteration — concurrently with a
// writer mutating the same collection, on both backends: the shape of
// marketplace queries racing a block commit. The race detector is the
// primary assertion; semantically, every returned document must match
// its filter (a torn index hit must never surface a non-match).
func TestPlannedReadsRaceWriter(t *testing.T) {
	forEachBackend(t, func(t *testing.T, s *Store) {
		c := s.Collection("utxos")
		c.CreateIndex("owner")
		c.CreateOrderedIndex("amount")
		c.CreateOrderedIndex("spent")

		const owners = 4
		const docs = 512
		var wg sync.WaitGroup
		wg.Add(1 + owners)
		go func() {
			defer wg.Done()
			for i := 0; i < docs; i++ {
				key := fmt.Sprintf("u%04d", i)
				if err := c.Insert(key, map[string]any{
					"owner":  fmt.Sprintf("o%d", i%owners),
					"amount": float64(i % 100),
					"spent":  false,
				}); err != nil {
					t.Error(err)
					return
				}
				switch i % 4 {
				case 0:
					if err := c.Update(key, func(doc map[string]any) error {
						doc["spent"] = true
						return nil
					}); err != nil {
						t.Error(err)
						return
					}
				case 1:
					if err := c.Delete(fmt.Sprintf("u%04d", i/2)); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}()
		for o := 0; o < owners; o++ {
			owner := fmt.Sprintf("o%d", o)
			lo, hi := float64(o*10), float64(o*10+40)
			go func() {
				defer wg.Done()
				for r := 0; r < 40; r++ {
					for _, doc := range c.Find(And(Eq("owner", owner), Eq("spent", false))) {
						if doc["owner"] != owner || doc["spent"] != false {
							t.Errorf("intersect returned non-match %v", doc)
							return
						}
					}
					for _, doc := range c.Find(And(Gte("amount", lo), Lt("amount", hi))) {
						amt := doc["amount"].(float64)
						if amt < lo || amt >= hi {
							t.Errorf("range returned amount %v outside [%v,%v)", amt, lo, hi)
							return
						}
					}
					for _, doc := range c.Find(Or(Eq("owner", owner), Gte("amount", 95))) {
						if doc["owner"] != owner && doc["amount"].(float64) < 95 {
							t.Errorf("union returned non-match %v", doc)
							return
						}
					}
					prev := -1.0
					for _, doc := range c.FindOrdered(Eq("spent", false), "amount", false, 16) {
						amt := doc["amount"].(float64)
						if amt < prev {
							t.Errorf("ordered iteration went backwards: %v after %v", amt, prev)
							return
						}
						prev = amt
					}
				}
			}()
		}
		wg.Wait()

		// Quiesced: every planned shape must agree with the full scan.
		for _, f := range []Filter{
			And(Eq("owner", "o1"), Eq("spent", false)),
			And(Gte("amount", 10), Lt("amount", 50)),
			Or(Eq("owner", "o2"), Gte("amount", 95)),
			Eq("spent", true),
		} {
			if planned, scanned := c.Find(f), c.FindScan(f); len(planned) != len(scanned) {
				t.Errorf("quiesced: plan %s found %d docs, scan %d", c.Explain(f), len(planned), len(scanned))
			}
		}
	})
}
