package docstore

import (
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"smartchaindb/internal/storage"
)

// indexProbes are the planned queries the maintenance tests re-check
// after every mutation: a hash point, an ordered point, a range, an
// intersect, and a union.
func indexProbes() []Filter {
	return []Filter{
		Eq("op", "A"),
		Eq("v", 5),
		And(Gte("v", 3), Lt("v", 8)),
		And(Eq("op", "B"), Gt("v", 0)),
		Or(Eq("op", "A"), Gte("v", 9)),
		Contains("tags", "hot"),
	}
}

func checkPlannedAgainstScan(t *testing.T, c *Collection, stage string) {
	t.Helper()
	for _, f := range indexProbes() {
		if ex := c.Explain(f); strings.Contains(ex, "full-scan") {
			t.Fatalf("%s: probe not planned: %s", stage, ex)
		}
		if planned, scanned := c.Find(f), c.FindScan(f); !reflect.DeepEqual(planned, scanned) {
			t.Fatalf("%s: planned %v != scanned %v (plan %s)", stage, planned, scanned, c.Explain(f))
		}
	}
}

// TestIndexMaintenanceThroughMutations drives ordered and hash indexes
// through Insert/Upsert/Update/Delete and checks the planned paths
// stay consistent with the full scan at every step, on both backends.
func TestIndexMaintenanceThroughMutations(t *testing.T) {
	forEachBackend(t, func(t *testing.T, s *Store) {
		c := s.Collection("docs")
		c.CreateIndex("op")
		c.CreateOrderedIndex("v")
		c.CreateIndex("tags")
		for i := 0; i < 16; i++ {
			doc := map[string]any{
				"op": []any{"A", "B"}[i%2], "v": float64(i % 10),
			}
			if i%3 == 0 {
				doc["tags"] = []any{"hot", fmt.Sprintf("t%d", i)}
			}
			if err := c.Insert(fmt.Sprintf("k%02d", i), doc); err != nil {
				t.Fatal(err)
			}
		}
		checkPlannedAgainstScan(t, c, "after insert")

		// Update: move documents across index values (scalar and array).
		for i := 0; i < 16; i += 4 {
			if err := c.Update(fmt.Sprintf("k%02d", i), func(doc map[string]any) error {
				doc["v"] = float64(9 - i%10)
				doc["op"] = "B"
				delete(doc, "tags")
				return nil
			}); err != nil {
				t.Fatal(err)
			}
		}
		checkPlannedAgainstScan(t, c, "after update")

		// Upsert: replace one document, create another.
		if err := c.Upsert("k01", map[string]any{"op": "A", "v": float64(7), "tags": []any{"hot"}}); err != nil {
			t.Fatal(err)
		}
		if err := c.Upsert("k99", map[string]any{"op": "B", "v": float64(3)}); err != nil {
			t.Fatal(err)
		}
		checkPlannedAgainstScan(t, c, "after upsert")

		// Delete, including a multikey document.
		for _, key := range []string{"k03", "k06", "k99"} {
			if err := c.Delete(key); err != nil {
				t.Fatal(err)
			}
		}
		checkPlannedAgainstScan(t, c, "after delete")

		// Drop: planned reads go empty, writes fail, the handle is inert.
		s.Drop("docs")
		if got := c.Find(Eq("op", "A")); got != nil {
			t.Fatalf("dropped collection returned %d docs", len(got))
		}
		if got := c.FindOrdered(nil, "v", false, 0); got != nil {
			t.Fatalf("dropped collection FindOrdered returned %d docs", len(got))
		}
		if err := c.Insert("kx", map[string]any{"op": "A"}); !errors.As(err, new(*ErrCollectionDropped)) {
			t.Fatalf("write through dropped handle: %v", err)
		}
	})
}

// TestIndexesRebuiltOnReopen pins the disk-backend contract: indexes
// are not persisted, but re-creating them over the recovered documents
// yields identical planned results, plans, and ordered iteration.
func TestIndexesRebuiltOnReopen(t *testing.T) {
	dir := t.TempDir()
	eng, err := storage.Open(dir, storage.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	s := NewStoreWith(eng)
	c := s.Collection("docs")
	c.CreateIndex("op")
	c.CreateOrderedIndex("v")
	c.CreateIndex("tags")
	for i := 0; i < 24; i++ {
		doc := map[string]any{"op": []any{"A", "B"}[i%2], "v": float64((i * 7) % 12)}
		if i%3 == 0 {
			doc["tags"] = []any{"hot"}
		}
		if err := c.Insert(fmt.Sprintf("k%02d", i), doc); err != nil {
			t.Fatal(err)
		}
	}
	var wantFinds [][]map[string]any
	for _, f := range indexProbes() {
		wantFinds = append(wantFinds, c.Find(f))
	}
	wantOrdered := c.FindOrdered(Eq("op", "A"), "v", true, 0)
	wantPlans := make([]string, len(indexProbes()))
	for i, f := range indexProbes() {
		wantPlans[i] = c.Explain(f)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	eng2, err := storage.Open(dir, storage.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	s2 := NewStoreWith(eng2)
	defer s2.Close()
	c2 := s2.Collection("docs")
	c2.CreateIndex("op")
	c2.CreateOrderedIndex("v")
	c2.CreateIndex("tags")
	checkPlannedAgainstScan(t, c2, "after reopen")
	for i, f := range indexProbes() {
		if got := c2.Find(f); !reflect.DeepEqual(got, wantFinds[i]) {
			t.Errorf("reopen changed results for %s", c2.Explain(f))
		}
		if got := c2.Explain(f); got != wantPlans[i] {
			t.Errorf("reopen changed plan: %s -> %s", wantPlans[i], got)
		}
	}
	if got := c2.FindOrdered(Eq("op", "A"), "v", true, 0); !reflect.DeepEqual(got, wantOrdered) {
		t.Errorf("reopen changed ordered iteration: %v != %v", got, wantOrdered)
	}
}
