package docstore

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"testing"
)

// The planner/scan differential property: for random documents and
// random filter trees — over indexed and unindexed paths, hash and
// ordered indexes, scalar and multikey values — the planned path must
// return byte-identical results, in identical insertion order, to the
// forced full scan. It runs over both storage backends, and keeps
// checking while documents mutate underneath the indexes.

// propPaths are the queryable dot paths. op/tags carry hash indexes,
// n/m.x ordered ones; u stays unindexed so filters mix planned and
// residual terms.
var propPaths = []string{"op", "n", "tags", "m.x", "u"}

func propDoc(rng *rand.Rand) map[string]any {
	doc := make(map[string]any)
	if rng.Intn(10) > 0 {
		doc["op"] = fmt.Sprintf("OP%d", rng.Intn(4))
	}
	if rng.Intn(10) > 0 {
		// Mixed classes on the ordered path: numbers and strings.
		if rng.Intn(4) == 0 {
			doc["n"] = fmt.Sprintf("s%02d", rng.Intn(30))
		} else {
			doc["n"] = float64(rng.Intn(50))
		}
	}
	if rng.Intn(3) > 0 {
		tags := make([]any, rng.Intn(3)+1)
		for i := range tags {
			tags[i] = fmt.Sprintf("t%d", rng.Intn(6))
		}
		doc["tags"] = tags
	}
	if rng.Intn(2) == 0 {
		doc["m"] = map[string]any{"x": float64(rng.Intn(20))}
	}
	if rng.Intn(2) == 0 {
		doc["u"] = float64(rng.Intn(10))
	}
	return doc
}

func propArg(rng *rand.Rand, path string) any {
	switch path {
	case "op":
		return fmt.Sprintf("OP%d", rng.Intn(5))
	case "tags":
		return fmt.Sprintf("t%d", rng.Intn(7))
	case "n":
		if rng.Intn(4) == 0 {
			return fmt.Sprintf("s%02d", rng.Intn(30))
		}
		return float64(rng.Intn(50))
	case "m.x":
		return float64(rng.Intn(22))
	default:
		return float64(rng.Intn(12))
	}
}

func propFilter(rng *rand.Rand, depth int) Filter {
	if depth > 0 && rng.Intn(3) == 0 {
		n := rng.Intn(2) + 2
		subs := make([]Filter, n)
		for i := range subs {
			subs[i] = propFilter(rng, depth-1)
		}
		switch rng.Intn(3) {
		case 0:
			return And(subs...)
		case 1:
			return Or(subs...)
		default:
			return Not(subs[0])
		}
	}
	path := propPaths[rng.Intn(len(propPaths))]
	switch rng.Intn(9) {
	case 0:
		return Eq(path, propArg(rng, path))
	case 1:
		return Ne(path, propArg(rng, path))
	case 2:
		return Gt(path, propArg(rng, path))
	case 3:
		return Gte(path, propArg(rng, path))
	case 4:
		return Lt(path, propArg(rng, path))
	case 5:
		return Lte(path, propArg(rng, path))
	case 6:
		args := make([]any, rng.Intn(4))
		for i := range args {
			args[i] = propArg(rng, path)
		}
		return In(path, args...)
	case 7:
		return Contains(path, propArg(rng, path))
	default:
		return Exists(path, rng.Intn(2) == 0)
	}
}

func TestPlannerScanDifferentialProperty(t *testing.T) {
	forEachBackend(t, func(t *testing.T, s *Store) {
		rng := rand.New(rand.NewSource(0xD1FF))
		c := s.Collection("docs")
		c.CreateIndex("op")
		c.CreateOrderedIndex("n")
		c.CreateIndex("tags")
		c.CreateOrderedIndex("m.x")

		live := 0
		insert := func(n int) {
			for i := 0; i < n; i++ {
				if err := c.Insert(fmt.Sprintf("d%05d", live), propDoc(rng)); err != nil {
					t.Fatal(err)
				}
				live++
			}
		}
		mutate := func(n int) {
			for i := 0; i < n; i++ {
				key := fmt.Sprintf("d%05d", rng.Intn(live))
				switch rng.Intn(3) {
				case 0:
					_ = c.Delete(key)
				case 1:
					_ = c.Update(key, func(doc map[string]any) error {
						for k, v := range propDoc(rng) {
							doc[k] = v
						}
						if rng.Intn(3) == 0 {
							delete(doc, propPaths[rng.Intn(len(propPaths)-1)])
						}
						return nil
					})
				default:
					_ = c.Upsert(key, propDoc(rng))
				}
			}
		}

		check := func(round int) {
			for i := 0; i < 80; i++ {
				f := propFilter(rng, 2)
				planned, scanned := c.Find(f), c.FindScan(f)
				pb, err := json.Marshal(planned)
				if err != nil {
					t.Fatal(err)
				}
				sb, err := json.Marshal(scanned)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(pb, sb) {
					t.Fatalf("round %d: plan %q diverged from scan\nplanned: %d docs %s\nscanned: %d docs %s",
						round, c.Explain(f), len(planned), pb, len(scanned), sb)
				}
				if pc, sc := c.Count(f), len(scanned); pc != sc {
					t.Fatalf("round %d: plan %q Count = %d, scan = %d", round, c.Explain(f), pc, sc)
				}
			}
		}

		insert(300)
		check(0)
		for round := 1; round <= 4; round++ {
			mutate(60)
			insert(20)
			check(round)
		}
	})
}
