package docstore

import (
	"fmt"
	"sort"
	"strings"

	"smartchaindb/internal/obs"
)

// The query planner compiles a filter tree (via Analyze) into an
// access plan: which secondary indexes can produce a candidate key
// set, and how their answers combine. Executed plans resolve
// candidates through the indexes' own locks plus shard-locked point
// reads — never the collection lock — so every planned read stays off
// the commit writer's critical section. Only filters no index can
// answer fall back to the full collection scan.
//
// Plan shapes:
//
//	point      an equality-class probe (Eq, Contains, In) on any index
//	range      an ordered-index scan for Gt/Gte/Lt/Lte, confined to the
//	           bound's comparison class (numbers or strings)
//	intersect  an AND of indexable children: the lowest-estimate child
//	           drives (its candidates are materialized) and the others
//	           shrink the set, by O(1) index probes where possible
//	union      an OR whose branches are all indexable
//	none       a provably empty result (Never, In with no values,
//	           comparisons against non-comparable arguments)
//	full-scan  the fallback: scan under the collection read lock
//
// Candidate sets are supersets of the matching documents (multikey
// indexes fan arrays out), so executors always re-apply the full
// filter to each fetched document; correctness never depends on the
// plan, only performance does. Notably, comparisons on one path are
// NOT merged into a single bounded scan: with multikey values,
// Gte(p,5) AND Lte(p,10) matches a document whose values are {3, 20},
// which no [5,10] scan would surface — each comparison materializes
// its own candidates and the intersection keeps the superset property.

// AccessKind classifies one node of a compiled access plan.
type AccessKind int

const (
	// AccessFullScan scans the whole collection under its read lock.
	AccessFullScan AccessKind = iota
	// AccessNone yields no candidates: the filter probably cannot
	// match any document (Never, empty In, class-mismatched range).
	AccessNone
	// AccessPoint probes an index for equality-class candidates.
	AccessPoint
	// AccessRange walks an ordered index between comparison bounds.
	AccessRange
	// AccessIntersect combines indexable AND-conjuncts.
	AccessIntersect
	// AccessUnion combines indexable OR-branches.
	AccessUnion
)

// metricName returns the kind's obs counter suffix
// (docstore.plan.<name>).
func (k AccessKind) metricName() string {
	switch k {
	case AccessFullScan:
		return "full_scan"
	case AccessNone:
		return "none"
	case AccessPoint:
		return "point"
	case AccessRange:
		return "range"
	case AccessIntersect:
		return "intersect"
	case AccessUnion:
		return "union"
	}
	return "invalid"
}

// Access is one node of a compiled access plan. Est is the planner's
// selectivity estimate from index cardinalities — for an intersect it
// is the driving (smallest) child's estimate, and children are ordered
// ascending by estimate, so Children[0] is always the driving index.
type Access struct {
	Kind     AccessKind
	Path     string    // leaf: the indexed dot path
	Op       string    // leaf: the operator (OpEq, OpIn, OpGt, ...)
	Detail   string    // leaf: rendered argument or range bounds
	Reason   string    // AccessFullScan: why the planner gave up
	Est      int       // estimated candidate count
	Children []*Access // intersect / union members

	materialize func(h int64) []string            // leaves: produce candidates as of height h
	probe       func(docKey string, h int64) bool // nil when not probe-capable
}

// FullScan reports whether executing this plan takes the collection
// lock. Composite plans never contain a full-scan child (the planner
// prunes AND-conjuncts and refuses OR-branches), so the root decides.
func (a *Access) FullScan() bool { return a.Kind == AccessFullScan }

// String renders the plan for Explain output and test assertions.
func (a *Access) String() string {
	switch a.Kind {
	case AccessFullScan:
		return fmt.Sprintf("full-scan(%s)", a.Reason)
	case AccessNone:
		return "none"
	case AccessPoint:
		return fmt.Sprintf("point(%s %s %s)[%d]", a.Path, a.Op, a.Detail, a.Est)
	case AccessRange:
		return fmt.Sprintf("range(%s %s)[%d]", a.Path, a.Detail, a.Est)
	case AccessIntersect, AccessUnion:
		name := "intersect"
		if a.Kind == AccessUnion {
			name = "union"
		}
		parts := make([]string, len(a.Children))
		for i, ch := range a.Children {
			parts[i] = ch.String()
		}
		return fmt.Sprintf("%s[%d](%s)", name, a.Est, strings.Join(parts, ", "))
	}
	return "invalid"
}

// Plan compiles filter against the collection's current indexes. The
// index handle map is copy-on-write (an atomic pointer swap per
// CreateIndex), so compilation takes no lock at all; estimation runs
// under the indexes' own locks — unless the prepared-plan cache holds
// an estimate tape for this filter shape at the current index epoch,
// in which case the compile replays the taped estimates and touches no
// index lock at all (see plancache.go). The plan is a point-in-time
// compilation: it does not follow later CreateIndex calls, and its
// materialize/probe closures answer for whatever height the executor
// passes, so one plan serves the writer view and snapshot reads alike.
func (c *Collection) Plan(f Filter) *Access {
	p := planner{idx: c.indexMap(), probes: c.obs().indexProbes}
	n := Analyze(f)
	sc := shapeScratchPool.Get().(*shapeScratch)
	key, paths := appendShape(sc.key[:0], sc.paths[:0], n)
	stamp := c.plans.epochOf(paths)
	ob := c.obs()
	if vals, hit := c.plans.get(key, stamp); hit {
		ob.planCacheHits.Inc()
		p.tape = &estTape{vals: vals, replay: true}
		a := p.compile(n)
		sc.key, sc.paths = key, paths
		shapeScratchPool.Put(sc)
		return a
	}
	ob.planCacheMisses.Inc()
	p.tape = &estTape{}
	a := p.compile(n)
	c.plans.put(key, paths, stamp, p.tape.vals)
	sc.key, sc.paths = key, paths
	shapeScratchPool.Put(sc)
	return a
}

// Explain renders the access plan with live selectivity estimates —
// the planner's debugging and test surface. A plan containing
// "full-scan" takes the collection lock; anything else resolves
// entirely through index and shard locks.
//
// Explain deliberately bypasses tape replay. The prepared-plan cache
// keys on filter *shape*, so a cached tape may carry estimates
// recorded from a different argument of the same shape
// (Eq("operation", "BID") and Eq("operation", "ACCEPT_BID") share one
// entry), and replaying those numbers would make Explain's output
// depend on which argument happened to compile first. Explain instead
// compiles fresh — estimates are a pure function of the data — and
// stores the resulting tape, so it doubles as a cache refresher. The
// hot path (Find and friends, via Plan) keeps the lock-free replay: a
// replayed intersect may drive in a different order than Explain
// reports, but its closures bind the current arguments, so the result
// set never differs.
func (c *Collection) Explain(f Filter) string {
	n := Analyze(f)
	p := planner{idx: c.indexMap(), probes: c.obs().indexProbes, tape: &estTape{}}
	sc := shapeScratchPool.Get().(*shapeScratch)
	key, paths := appendShape(sc.key[:0], sc.paths[:0], n)
	stamp := c.plans.epochOf(paths)
	a := p.compile(n)
	c.plans.put(key, paths, stamp, p.tape.vals)
	sc.key, sc.paths = key, paths
	shapeScratchPool.Put(sc)
	return a.String()
}

type planner struct {
	idx map[string]secondaryIndex
	// probes counts executed index lookups and membership probes
	// (docstore.index_probes); nil is a no-op handle.
	probes *obs.Counter
	// tape records or replays leaf selectivity estimates for the
	// prepared-plan cache; nil computes them directly.
	tape *estTape
}

func fullScan(reason string) *Access { return &Access{Kind: AccessFullScan, Reason: reason} }

func noneAccess() *Access {
	a := &Access{Kind: AccessNone}
	a.materialize = func(int64) []string { return nil }
	a.probe = func(string, int64) bool { return false }
	return a
}

func (p planner) compile(n Node) *Access {
	switch n.Kind {
	case KindField:
		return p.compileField(n)
	case KindAnd:
		return p.compileAnd(n.Children)
	case KindOr:
		return p.compileOr(n.Children)
	case KindAll:
		return fullScan("match-all")
	case KindNot:
		return fullScan("negation")
	}
	return fullScan("opaque filter")
}

func (p planner) compileField(n Node) *Access {
	if n.Op == OpNever {
		return noneAccess()
	}
	ix, indexed := p.idx[n.Path]
	if !indexed {
		// Comparisons against non-comparable arguments match nothing
		// regardless of any index: compareValues only relates numbers
		// to numbers and strings to strings.
		if isComparison(n.Op) && !comparableArg(n.Arg) {
			return noneAccess()
		}
		if n.Op == OpIn && len(n.List) == 0 {
			return noneAccess()
		}
		return fullScan(fmt.Sprintf("no index on %q", n.Path))
	}
	switch n.Op {
	case OpEq, OpContains:
		if _, ok := indexKey(n.Arg); !ok {
			return fullScan(fmt.Sprintf("non-scalar %s argument on %q", n.Op, n.Path))
		}
		return p.pointAccess(ix, n.Path, n.Op, renderArg(n.Arg), []any{n.Arg})
	case OpIn:
		if len(n.List) == 0 {
			return noneAccess()
		}
		for _, arg := range n.List {
			if _, ok := indexKey(arg); !ok {
				return fullScan(fmt.Sprintf("non-scalar in argument on %q", n.Path))
			}
		}
		return p.pointAccess(ix, n.Path, n.Op, fmt.Sprintf("%d values", len(n.List)), n.List)
	case OpGt, OpGte, OpLt, OpLte:
		return p.rangeAccess(ix, n)
	case OpContainsAll:
		// Candidates must hold every element, so the point probes
		// intersect — a superset even for elements spread across
		// distinct arrays of a multikey path (the residual filter
		// rejects those).
		if len(n.List) == 0 {
			return fullScan(fmt.Sprintf("contains-all without values on %q", n.Path))
		}
		children := make([]*Access, 0, len(n.List))
		for _, arg := range n.List {
			if _, ok := indexKey(arg); !ok {
				return fullScan(fmt.Sprintf("non-scalar contains-all argument on %q", n.Path))
			}
			children = append(children, p.pointAccess(ix, n.Path, OpContains, renderArg(arg), []any{arg}))
		}
		return intersectAccess(children)
	}
	return fullScan(fmt.Sprintf("index on %q cannot answer %s", n.Path, n.Op))
}

// pointAccess builds an equality-class leaf over one or more probe
// arguments (one for Eq/Contains, the list for In).
func (p planner) pointAccess(ix secondaryIndex, path, op, detail string, args []any) *Access {
	est := p.tape.est(func() int {
		sum := 0
		for _, arg := range args {
			sum += ix.estimateEq(arg)
		}
		return sum
	})
	probes := p.probes
	a := &Access{Kind: AccessPoint, Path: path, Op: op, Detail: detail, Est: est}
	a.materialize = func(h int64) []string {
		probes.Add(uint64(len(args)))
		if len(args) == 1 {
			return ix.lookupEq(args[0], h)
		}
		var out []string
		for _, arg := range args {
			out = append(out, ix.lookupEq(arg, h)...)
		}
		return out
	}
	a.probe = func(docKey string, h int64) bool {
		probes.Inc()
		for _, arg := range args {
			if ix.containsDoc(arg, docKey, h) {
				return true
			}
		}
		return false
	}
	return a
}

func (p planner) rangeAccess(ix secondaryIndex, n Node) *Access {
	ov, ok := ordValueOf(n.Arg)
	if !ok || (ov.class != ordClassNumber && ov.class != ordClassString) {
		// The comparison can never hold (wrong class), whatever the
		// index could answer.
		return noneAccess()
	}
	ord, isOrdered := ix.(*orderedIndex)
	if !isOrdered {
		return fullScan(fmt.Sprintf("hash index on %q cannot answer %s", n.Path, n.Op))
	}
	r := ordRange{class: ov.class}
	switch n.Op {
	case OpGt:
		r.lo, r.hasLo, r.loStrict = ov, true, true
	case OpGte:
		r.lo, r.hasLo = ov, true
	case OpLt:
		r.hi, r.hasHi, r.hiStrict = ov, true, true
	case OpLte:
		r.hi, r.hasHi = ov, true
	}
	a := &Access{Kind: AccessRange, Path: n.Path, Op: n.Op, Detail: r.String(), Est: p.tape.est(func() int { return ord.estimateRange(r) })}
	a.materialize = func(h int64) []string { return ord.lookupRange(r, h) }
	return a
}

func (p planner) compileAnd(children []Node) *Access {
	indexable := make([]*Access, 0, len(children))
	for _, ch := range children {
		a := p.compile(ch)
		switch a.Kind {
		case AccessNone:
			// One impossible conjunct empties the whole AND.
			return a
		case AccessFullScan:
			// Unindexable conjuncts are pruned: the residual filter
			// re-checks them on every candidate anyway.
			continue
		default:
			indexable = append(indexable, a)
		}
	}
	if len(indexable) == 0 {
		return fullScan("no indexed conjunct")
	}
	return intersectAccess(indexable)
}

func intersectAccess(children []*Access) *Access {
	if len(children) == 1 {
		return children[0]
	}
	// Ascending estimate: the smallest (driving) index materializes,
	// the rest only shrink its candidates.
	sort.SliceStable(children, func(i, j int) bool { return children[i].Est < children[j].Est })
	a := &Access{Kind: AccessIntersect, Est: children[0].Est, Children: children}
	a.materialize = func(h int64) []string {
		keys := dedupKeys(children[0].materialize(h))
		for _, ch := range children[1:] {
			if len(keys) == 0 {
				return nil
			}
			probe := ch.probe
			if probe == nil {
				// A probe-less child (a range) intersects by
				// materializing its whole candidate set. When that set
				// dwarfs the driving one — a half-bounded comparison
				// like Gte(amount, 0) covers most of the collection —
				// building it costs more than letting the residual
				// filter reject the few extra candidates, so skip it:
				// the result stays a superset either way.
				if ch.Est > 4*len(keys) {
					continue
				}
				set := make(map[string]struct{})
				for _, k := range ch.materialize(h) {
					set[k] = struct{}{}
				}
				probe = func(docKey string, _ int64) bool {
					_, ok := set[docKey]
					return ok
				}
			}
			kept := keys[:0]
			for _, k := range keys {
				if probe(k, h) {
					kept = append(kept, k)
				}
			}
			keys = kept
		}
		return keys
	}
	a.probe = composeProbes(children, true)
	return a
}

func (p planner) compileOr(children []Node) *Access {
	accesses := make([]*Access, 0, len(children))
	est := 0
	for _, ch := range children {
		a := p.compile(ch)
		switch a.Kind {
		case AccessNone:
			continue
		case AccessFullScan:
			// One unindexable branch may match documents no index
			// knows about: the whole OR must scan.
			return fullScan(fmt.Sprintf("unindexable or-branch: %s", a.Reason))
		}
		accesses = append(accesses, a)
		est += a.Est
	}
	if len(accesses) == 0 {
		return noneAccess()
	}
	if len(accesses) == 1 {
		return accesses[0]
	}
	a := &Access{Kind: AccessUnion, Est: est, Children: accesses}
	a.materialize = func(h int64) []string {
		var out []string
		for _, ch := range accesses {
			out = append(out, ch.materialize(h)...)
		}
		return out
	}
	a.probe = composeProbes(accesses, false)
	return a
}

// composeProbes builds a composite O(1) membership probe when every
// child supports one (ranges do not — they cannot answer "does this
// document hold a value in range" without the document).
func composeProbes(children []*Access, all bool) func(string, int64) bool {
	probes := make([]func(string, int64) bool, len(children))
	for i, ch := range children {
		if ch.probe == nil {
			return nil
		}
		probes[i] = ch.probe
	}
	return func(docKey string, h int64) bool {
		for _, pr := range probes {
			if pr(docKey, h) != all {
				return !all
			}
		}
		return all
	}
}

func isComparison(op string) bool {
	switch op {
	case OpGt, OpGte, OpLt, OpLte:
		return true
	}
	return false
}

// comparableArg reports whether any document value can ever compare
// against arg (compareValues relates numbers and strings only).
func comparableArg(arg any) bool {
	switch normalize(arg).(type) {
	case float64, string:
		return true
	}
	return false
}

func renderArg(arg any) string {
	if s, ok := arg.(string); ok {
		return fmt.Sprintf("%q", s)
	}
	return fmt.Sprintf("%v", arg)
}

func dedupKeys(keys []string) []string {
	seen := make(map[string]struct{}, len(keys))
	out := keys[:0]
	for _, k := range keys {
		if _, dup := seen[k]; dup {
			continue
		}
		seen[k] = struct{}{}
		out = append(out, k)
	}
	return out
}

// resolveAccess executes a plan as of height h: the candidate keys
// and whether the plan avoided a full scan. Candidates may repeat
// (multikey unions); the sharded visit dedups.
func resolveAccess(a *Access, h int64) ([]string, bool) {
	if a.Kind == AccessFullScan {
		return nil, false
	}
	return a.materialize(h), true
}
