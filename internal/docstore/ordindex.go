package docstore

import (
	"fmt"
	"math"
	"strings"
	"sync"
)

// orderedIndex is a sorted multikey index over one dot path: a skip
// list of distinct values, each holding the documents that reach the
// value at the path, with visibility lifespans per (value, document)
// pairing. On top of the point lookups a hash index answers (Eq,
// Contains, In), it serves ordered range scans for the comparison
// operators (Gt/Gte/Lt/Lte) and value-ordered document iteration
// (Collection.FindOrdered), both as-of any supported block height.
//
// Like hashIndex, it carries its own RWMutex: writers mutate it under
// the collection lock as part of every Insert/Update/Delete, but
// planned readers take only this lock plus lock-free point reads — a
// range scan never serializes behind the commit writer on the
// collection lock. Value-group iteration (FindOrdered) is streaming:
// the cursor copies one node's visible keys per brief lock
// acquisition, so a limit-k query allocates O(k) and never holds the
// lock for the whole index.
//
// Ordering follows the filter comparison semantics (compareValues):
// only numbers compare with numbers and strings with strings, so a
// range scan is confined to the bound's class and values of any other
// class can never leak into a comparison result. Across classes the
// skip list still needs a total order for storage; it uses
// nil < bool < number < string.
type orderedIndex struct {
	path string

	mu        sync.RWMutex
	head      *ordNode            // sentinel; head.next[0] is the first value
	tail      *ordNode            // last value node, head when empty
	byKey     map[string]*ordNode // indexKey(value) -> node, for point lookups
	size      int                 // open (value, document) pairs
	deadSpans int
	lastFloor int64  // floor the last sweep ran at
	rng       uint64 // deterministic xorshift state for levels
}

const ordMaxLevel = 16

// ordNode is one distinct indexed value and its document lifespans.
// prev links level 0 backwards so descending iteration streams like
// ascending. An unlinked node keeps its own next/prev pointers, so a
// cursor parked on it can still step off into the live list.
type ordNode struct {
	val   ordValue
	docs  map[string]spanList
	alive int // docs with an open span
	next  []*ordNode
	prev  *ordNode
}

// ordValue is a scalar rendered into the index's total order.
type ordValue struct {
	class uint8 // 0 nil, 1 bool, 2 number, 3 string
	num   float64
	str   string
}

const (
	ordClassNil    = 0
	ordClassBool   = 1
	ordClassNumber = 2
	ordClassString = 3
)

// ordValueOf renders a scalar into the index order; non-scalars
// (maps, arrays — arrays fan out before this point) are not indexable.
func ordValueOf(v any) (ordValue, bool) {
	switch x := normalize(v).(type) {
	case nil:
		return ordValue{class: ordClassNil}, true
	case bool:
		n := 0.0
		if x {
			n = 1
		}
		return ordValue{class: ordClassBool, num: n}, true
	case float64:
		return ordValue{class: ordClassNumber, num: x}, true
	case string:
		return ordValue{class: ordClassString, str: x}, true
	}
	return ordValue{}, false
}

func (a ordValue) compare(b ordValue) int {
	if a.class != b.class {
		return int(a.class) - int(b.class)
	}
	switch a.class {
	case ordClassString:
		return strings.Compare(a.str, b.str)
	case ordClassNil:
		return 0
	default:
		switch {
		case a.num < b.num:
			return -1
		case a.num > b.num:
			return 1
		}
		return 0
	}
}

// classFloor is the smallest ordValue of a class — the range-scan
// start for an unbounded-below comparison like Lt.
func classFloor(class uint8) ordValue {
	switch class {
	case ordClassNumber:
		return ordValue{class: ordClassNumber, num: math.Inf(-1)}
	case ordClassString:
		return ordValue{class: ordClassString, str: ""}
	}
	return ordValue{class: class}
}

func newOrderedIndex(path string) *orderedIndex {
	head := &ordNode{next: make([]*ordNode, ordMaxLevel)}
	return &orderedIndex{
		path:  path,
		head:  head,
		tail:  head,
		byKey: make(map[string]*ordNode),
		rng:   0x9e3779b97f4a7c15, // fixed seed: levels are reproducible
	}
}

// randLevel draws a skip-list level from a deterministic xorshift64
// stream (p = 1/2 per level), so index structure — and therefore
// performance — is identical across runs and nodes.
func (ix *orderedIndex) randLevel() int {
	ix.rng ^= ix.rng << 13
	ix.rng ^= ix.rng >> 7
	ix.rng ^= ix.rng << 17
	lvl := 1
	for v := ix.rng; v&1 == 1 && lvl < ordMaxLevel; v >>= 1 {
		lvl++
	}
	return lvl
}

// preds fills the per-level predecessors of the first node >= v.
func (ix *orderedIndex) preds(v ordValue, out *[ordMaxLevel]*ordNode) {
	n := ix.head
	for lvl := ordMaxLevel - 1; lvl >= 0; lvl-- {
		for n.next[lvl] != nil && n.next[lvl].val.compare(v) < 0 {
			n = n.next[lvl]
		}
		out[lvl] = n
	}
}

// seekGE returns the first node whose value is >= v.
func (ix *orderedIndex) seekGE(v ordValue) *ordNode {
	n := ix.head
	for lvl := ordMaxLevel - 1; lvl >= 0; lvl-- {
		for n.next[lvl] != nil && n.next[lvl].val.compare(v) < 0 {
			n = n.next[lvl]
		}
	}
	return n.next[0]
}

// add indexes every scalar reached at the path, fanning arrays out to
// their elements like a MongoDB multikey index.
func (ix *orderedIndex) add(docKey string, doc map[string]any, h int64) {
	vals, found := lookupPath(doc, ix.path)
	if !found {
		return
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()
	for _, v := range vals {
		ix.addValue(docKey, v, h)
	}
}

func (ix *orderedIndex) addValue(docKey string, v any, h int64) {
	if arr, ok := v.([]any); ok {
		for _, e := range arr {
			ix.addValue(docKey, e, h)
		}
		return
	}
	k, ok := indexKey(v)
	if !ok {
		return
	}
	if n, exists := ix.byKey[k]; exists {
		sl := n.docs[docKey]
		if sl.open() {
			return
		}
		n.docs[docKey] = append(sl, span{born: h, died: spanOpen})
		n.alive++
		ix.size++
		return
	}
	ov, ok := ordValueOf(v)
	if !ok {
		return
	}
	var pred [ordMaxLevel]*ordNode
	ix.preds(ov, &pred)
	n := &ordNode{
		val:   ov,
		docs:  map[string]spanList{docKey: {span{born: h, died: spanOpen}}},
		alive: 1,
		next:  make([]*ordNode, ix.randLevel()),
	}
	for lvl := range n.next {
		n.next[lvl] = pred[lvl].next[lvl]
		pred[lvl].next[lvl] = n
	}
	n.prev = pred[0]
	if succ := n.next[0]; succ != nil {
		succ.prev = n
	} else {
		ix.tail = n
	}
	ix.byKey[k] = n
	ix.size++
}

func (ix *orderedIndex) remove(docKey string, doc map[string]any, h int64) {
	vals, found := lookupPath(doc, ix.path)
	if !found {
		return
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()
	for _, v := range vals {
		ix.removeValue(docKey, v, h)
	}
}

func (ix *orderedIndex) removeValue(docKey string, v any, h int64) {
	if arr, ok := v.([]any); ok {
		for _, e := range arr {
			ix.removeValue(docKey, e, h)
		}
		return
	}
	k, ok := indexKey(v)
	if !ok {
		return
	}
	n, exists := ix.byKey[k]
	if !exists {
		return
	}
	sl := n.docs[docKey]
	if !sl.open() {
		return
	}
	sl[len(sl)-1].died = h
	n.docs[docKey] = sl
	n.alive--
	ix.size--
	ix.deadSpans++
}

// sweepFloor drops every span no snapshot at or above floor can reach
// and unlinks nodes left with no lifespans at all. Driven by the
// retention floor advancing at block seal (Store.SweepIndexes); a
// floor that has not moved since the last sweep, or an index with no
// closed spans, returns without walking the list.
func (ix *orderedIndex) sweepFloor(floor int64) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if ix.deadSpans == 0 || floor <= ix.lastFloor {
		if floor > ix.lastFloor {
			ix.lastFloor = floor
		}
		return
	}
	ix.lastFloor = floor
	remaining := 0
	var empty []*ordNode
	for n := ix.head.next[0]; n != nil; n = n.next[0] {
		for dk, sl := range n.docs {
			kept, dead := sl.sweep(floor)
			remaining += dead
			if len(kept) == 0 {
				delete(n.docs, dk)
				continue
			}
			n.docs[dk] = kept
		}
		if len(n.docs) == 0 {
			empty = append(empty, n)
		}
	}
	for _, n := range empty {
		ix.unlink(n)
	}
	ix.deadSpans = remaining
}

// unlink removes n from the skip list. n keeps its own pointers so a
// parked cursor can still step forward/backward off it. Caller holds
// ix.mu.
func (ix *orderedIndex) unlink(n *ordNode) {
	var pred [ordMaxLevel]*ordNode
	ix.preds(n.val, &pred)
	for lvl := 0; lvl < len(n.next); lvl++ {
		if pred[lvl].next[lvl] == n {
			pred[lvl].next[lvl] = n.next[lvl]
		}
	}
	if succ := n.next[0]; succ != nil {
		succ.prev = n.prev
	} else if ix.tail == n {
		ix.tail = n.prev
	}
	k, _ := indexKey(ordValueScalar(n.val))
	delete(ix.byKey, k)
}

// ordValueScalar converts an ordValue back into the scalar indexKey
// expects — the inverse of ordValueOf for keys held by the index.
func ordValueScalar(v ordValue) any {
	switch v.class {
	case ordClassBool:
		return v.num != 0
	case ordClassNumber:
		return v.num
	case ordClassString:
		return v.str
	}
	return nil
}

// lookupEq answers an equality probe (Eq / Contains candidates) as of
// height h.
func (ix *orderedIndex) lookupEq(arg any, h int64) []string {
	k, ok := indexKey(arg)
	if !ok {
		return nil
	}
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return docKeysAt(ix.byKey[k], h)
}

// estimateEq reports the candidate count of an equality probe without
// materializing it — the planner's selectivity estimate.
func (ix *orderedIndex) estimateEq(arg any) int {
	k, ok := indexKey(arg)
	if !ok {
		return 0
	}
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	if n := ix.byKey[k]; n != nil {
		return n.alive
	}
	return 0
}

// containsDoc reports whether docKey is among the candidates for arg
// as of height h.
func (ix *orderedIndex) containsDoc(arg any, docKey string, h int64) bool {
	k, ok := indexKey(arg)
	if !ok {
		return false
	}
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	if n := ix.byKey[k]; n != nil {
		return n.docs[docKey].aliveAt(h)
	}
	return false
}

// ordRange is a planner-compiled range over one class of values:
// lo/hi bounds (either side optional), inclusive or strict.
type ordRange struct {
	class              uint8
	lo, hi             ordValue
	hasLo, hasHi       bool
	loStrict, hiStrict bool
}

// empty reports a provably empty range (lo above hi).
func (r ordRange) empty() bool {
	if !r.hasLo || !r.hasHi {
		return false
	}
	cmp := r.lo.compare(r.hi)
	return cmp > 0 || (cmp == 0 && (r.loStrict || r.hiStrict))
}

func (r ordRange) String() string {
	var b strings.Builder
	if r.hasLo {
		if r.loStrict {
			b.WriteString(">")
		} else {
			b.WriteString(">=")
		}
		b.WriteString(r.lo.render())
	}
	if r.hasHi {
		if r.hasLo {
			b.WriteString(" ")
		}
		if r.hiStrict {
			b.WriteString("<")
		} else {
			b.WriteString("<=")
		}
		b.WriteString(r.hi.render())
	}
	return b.String()
}

func (v ordValue) render() string {
	switch v.class {
	case ordClassString:
		return fmt.Sprintf("%q", v.str)
	case ordClassNumber:
		return fmt.Sprintf("%g", v.num)
	case ordClassBool:
		return fmt.Sprintf("%t", v.num != 0)
	}
	return "null"
}

// lookupRange materializes the candidate keys of a range scan as of
// height h: the walk starts at the lower bound (or the class floor)
// and stops at the upper bound or the end of the class. Keys may
// repeat across values for multikey documents; callers dedup
// (shardedVisit does).
func (ix *orderedIndex) lookupRange(r ordRange, h int64) []string {
	start := classFloor(r.class)
	if r.hasLo {
		start = r.lo
	}
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	n := ix.seekGE(start)
	if r.hasLo && r.loStrict {
		for n != nil && n.val.compare(r.lo) == 0 {
			n = n.next[0]
		}
	}
	var out []string
	for ; n != nil && n.val.class == r.class; n = n.next[0] {
		if r.hasHi {
			cmp := n.val.compare(r.hi)
			if cmp > 0 || (cmp == 0 && r.hiStrict) {
				break
			}
		}
		for dk, sl := range n.docs {
			if sl.aliveAt(h) {
				out = append(out, dk)
			}
		}
	}
	return out
}

// ordEstimateNodeBudget caps the estimation walk: selectivity only has
// to be exact for ranges narrow enough to be worth driving a plan.
const ordEstimateNodeBudget = 512

// estimateRange counts the (value, document) pairs a range scan would
// visit — the planner's selectivity estimate for comparisons. The walk
// is exact up to a fixed node budget; a range still open after that
// many distinct values saturates to the index's total size. The
// pessimistic saturation biases the planner toward point-driven plans
// for sweeping comparisons (a half-bounded Gte over a large index),
// without paying an O(distinct values) walk just to learn the range is
// wide — mis-ranking only shifts work onto the residual filter, never
// the results.
func (ix *orderedIndex) estimateRange(r ordRange) int {
	start := classFloor(r.class)
	if r.hasLo {
		start = r.lo
	}
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	n := ix.seekGE(start)
	if r.hasLo && r.loStrict {
		for n != nil && n.val.compare(r.lo) == 0 {
			n = n.next[0]
		}
	}
	est := 0
	for nodes := 0; n != nil && n.val.class == r.class; n = n.next[0] {
		if r.hasHi {
			cmp := n.val.compare(r.hi)
			if cmp > 0 || (cmp == 0 && r.hiStrict) {
				break
			}
		}
		if nodes++; nodes > ordEstimateNodeBudget {
			return ix.size
		}
		est += n.alive
	}
	return est
}

// groupCursor streams FindOrdered's value groups lazily: each next
// call copies one node's visible document keys under one brief lock
// acquisition, then releases the lock before the caller resolves
// documents. A limit-k query therefore allocates O(k) work instead of
// materializing every value group of the whole index up front, and
// the index lock is held O(group) per step rather than O(index) per
// query. The iteration is weakly consistent against concurrent
// writers: a node inserted or unlinked between steps may be missed,
// exactly like the point-in-time snapshot it replaces could miss
// writes landing after it was taken.
type groupCursor struct {
	ix      *orderedIndex
	desc    bool
	cur     *ordNode
	started bool
}

// groups starts a value-ordered group cursor (reversed when desc).
func (ix *orderedIndex) groups(desc bool) *groupCursor {
	return &groupCursor{ix: ix, desc: desc}
}

// next returns the next value group's document keys visible at height
// h. Groups may be empty (every lifespan at the value misses h); a
// false second result ends the iteration.
func (gc *groupCursor) next(h int64) ([]string, bool) {
	gc.ix.mu.RLock()
	var n *ordNode
	switch {
	case !gc.started:
		gc.started = true
		if gc.desc {
			n = gc.ix.tail
		} else {
			n = gc.ix.head.next[0]
		}
	case gc.cur == nil:
	case gc.desc:
		n = gc.cur.prev
	default:
		n = gc.cur.next[0]
	}
	if n == gc.ix.head {
		n = nil
	}
	gc.cur = n
	if n == nil {
		gc.ix.mu.RUnlock()
		return nil, false
	}
	keys := docKeysAt(n, h)
	gc.ix.mu.RUnlock()
	return keys, true
}

// docKeysAt copies the node's document keys visible at height h.
// Caller holds ix.mu (shared suffices).
func docKeysAt(n *ordNode, h int64) []string {
	if n == nil {
		return nil
	}
	out := make([]string, 0, n.alive)
	for dk, sl := range n.docs {
		if sl.aliveAt(h) {
			out = append(out, dk)
		}
	}
	return out
}
