package docstore

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

// randOrderedDoc generates documents that exercise every branch of
// ordered-index key extraction: scalar order values, multikey ([]any)
// values, docs missing the order path entirely, and ties — plus a few
// secondary fields for filtered variants.
func randOrderedDoc(rng *rand.Rand) map[string]any {
	doc := map[string]any{
		"kind": fmt.Sprintf("t%d", rng.Intn(3)),
		"n":    float64(rng.Intn(50)),
	}
	switch rng.Intn(10) {
	case 0: // no order key at all
	case 1, 2: // multikey
		vals := make([]any, 1+rng.Intn(3))
		for i := range vals {
			vals[i] = float64(rng.Intn(12))
		}
		doc["rank"] = vals
	case 3: // string-typed order value
		doc["rank"] = fmt.Sprintf("s%02d", rng.Intn(12))
	default: // scalar, deliberately small domain to force ties
		doc["rank"] = float64(rng.Intn(12))
	}
	return doc
}

// TestFindOrderedMatchesScan is the differential property test pinning
// the indexed FindOrdered path to the brute-force scan: for random
// document sets under interleaved inserts, updates, and deletes, both
// paths must return byte-identical results for every combination of
// direction, limit, and filter — on both backends.
func TestFindOrderedMatchesScan(t *testing.T) {
	forEachBackend(t, func(t *testing.T, s *Store) {
		rng := rand.New(rand.NewSource(7))
		c := s.Collection("docs")
		c.CreateOrderedIndex("rank")
		c.CreateIndex("kind")

		filters := []struct {
			name string
			f    Filter
		}{
			{"nil", nil},
			{"eq-kind", Eq("kind", "t1")},
			{"range-n", And(Gte("n", 10.0), Lte("n", 35.0))},
		}
		check := func(round int) {
			t.Helper()
			for _, desc := range []bool{false, true} {
				for _, limit := range []int{0, 1, 3, 7, 1000} {
					for _, flt := range filters {
						want := c.findOrderedScan(flt.f, "rank", desc, limit)
						got := c.FindOrdered(flt.f, "rank", desc, limit)
						if !reflect.DeepEqual(got, want) {
							t.Fatalf("round %d desc=%v limit=%d filter=%s:\nindexed = %v\nscan    = %v",
								round, desc, limit, flt.name, got, want)
						}
					}
				}
			}
		}

		live := []string{}
		for round := 0; round < 12; round++ {
			// Mutate: a batch of inserts plus some updates and deletes of
			// existing keys, so version chains and index lifespans churn.
			for i := 0; i < 15; i++ {
				key := fmt.Sprintf("r%02d-%02d", round, i)
				mustInsert(t, c, key, randOrderedDoc(rng))
				live = append(live, key)
			}
			for i := 0; i < 5 && len(live) > 0; i++ {
				key := live[rng.Intn(len(live))]
				if rng.Intn(2) == 0 {
					if err := c.Upsert(key, randOrderedDoc(rng)); err != nil {
						t.Fatal(err)
					}
				} else {
					if err := c.Delete(key); err != nil {
						t.Fatal(err)
					}
					for j, k := range live {
						if k == key {
							live = append(live[:j], live[j+1:]...)
							break
						}
					}
				}
			}
			check(round)

			// Every other round, seal the churn as a block so later
			// rounds read through multi-height version chains.
			if round%2 == 1 {
				bk := s.Backend()
				h := bk.Visible() + 1
				bk.BeginBlock(h)
				mustInsert(t, c, fmt.Sprintf("blk-%02d", round), randOrderedDoc(rng))
				live = append(live, fmt.Sprintf("blk-%02d", round))
				bk.SealBlock(h)
				check(round)
			}
		}
	})
}
