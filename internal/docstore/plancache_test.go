package docstore

import (
	"math/rand"
	"reflect"
	"testing"

	"smartchaindb/internal/obs"
)

// randomFilter builds filters over the plannerFixture paths, mixing
// indexed and unindexed leaves, every operator the planner handles,
// and nested boolean structure — the shape space the cache keys on.
func randomFilter(rng *rand.Rand, depth int) Filter {
	if depth > 0 && rng.Float64() < 0.4 {
		n := 2 + rng.Intn(2)
		fs := make([]Filter, n)
		for i := range fs {
			fs[i] = randomFilter(rng, depth-1)
		}
		switch rng.Intn(3) {
		case 0:
			return And(fs...)
		case 1:
			return Or(fs...)
		default:
			return Not(fs[0])
		}
	}
	paths := []string{"op", "n", "tags", "u"}
	path := paths[rng.Intn(len(paths))]
	vals := []any{"A", "B", "C", 1, 5, 9, 12, "str", 10, "x", "y"}
	v := vals[rng.Intn(len(vals))]
	switch rng.Intn(6) {
	case 0:
		return Eq(path, v)
	case 1:
		return Gt(path, v)
	case 2:
		return Lte(path, v)
	case 3:
		return In(path, vals[rng.Intn(len(vals))], vals[rng.Intn(len(vals))])
	case 4:
		return All()
	default:
		return Eq(path, v)
	}
}

// TestPlanCacheReplayMatchesFreshCompile pins the cache's core
// contract: a replayed compile renders byte-identical to the recording
// one (same access kinds, same drive order, same estimates) and
// executes to the same result set as an index-free scan.
func TestPlanCacheReplayMatchesFreshCompile(t *testing.T) {
	c := plannerFixture(t)
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 300; i++ {
		f := randomFilter(rng, 2)
		first := c.Plan(f).String() // records on miss (or replays an earlier shape)
		for rep := 0; rep < 2; rep++ {
			if got := c.Plan(f).String(); got != first {
				t.Fatalf("filter %d rep %d: plan drifted under cache:\nfirst: %s\nthen:  %s", i, rep, first, got)
			}
		}
		if got, want := c.Find(f), c.FindScan(f); !sameDocSet(got, want) {
			t.Fatalf("filter %d (%s): cached plan results diverge from scan", i, first)
		}
	}
}

// TestPlanCacheHitBindsCurrentArgs: two filters sharing a shape share
// a tape, but the hit's closures must bind the *current* argument —
// the property that makes the cache correctness-neutral.
func TestPlanCacheHitBindsCurrentArgs(t *testing.T) {
	c := plannerFixture(t)
	reg := obs.New()
	c.setObs(reg)
	hits := reg.Counter("docstore.plan_cache.hits")

	a := c.FindKeys(Eq("op", "A"))
	base := hits.Value()
	b := c.FindKeys(Eq("op", "B")) // same shape, different value: a hit
	if hits.Value() == base {
		t.Fatal("same-shape filter did not hit the plan cache")
	}
	if reflect.DeepEqual(a, b) {
		t.Fatalf("cached plan returned the recording filter's rows: %v vs %v", a, b)
	}
	if want := c.FindKeys(Eq("op", "B")); !reflect.DeepEqual(b, want) {
		t.Fatalf("hit keys = %v, want %v", b, want)
	}
}

// TestPlanCacheInvalidation: index DDL must invalidate — a shape that
// full-scanned gains an index and replans, a shape that used an index
// loses it and falls back, and repeated compiles stay stable between
// invalidations.
func TestPlanCacheInvalidation(t *testing.T) {
	c := plannerFixture(t)
	reg := obs.New()
	c.setObs(reg)
	invals := reg.Counter("docstore.plan_cache.invalidations")

	f := Eq("u", 10)
	if got := c.Plan(f).String(); got != `full-scan(no index on "u")` {
		t.Fatalf("pre-index plan = %s", got)
	}
	c.Plan(f) // warm the cache with the full-scan shape

	base := invals.Value()
	c.CreateIndex("u")
	if invals.Value() != base+1 {
		t.Fatalf("CreateIndex bumped invalidations by %d, want 1", invals.Value()-base)
	}
	if got := c.Plan(f).String(); got != `point(u eq 10)[1]` {
		t.Fatalf("post-index plan = %s (stale cached plan?)", got)
	}
	if got, want := c.FindKeys(f), []string{"a"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("post-index keys = %v, want %v", got, want)
	}

	g := Eq("op", "A")
	c.Plan(g)
	c.Plan(g) // cached as point(op ...)
	if !c.DropIndex("op") {
		t.Fatal("DropIndex(op) = false, index exists")
	}
	if got := c.Plan(g).String(); got != `full-scan(no index on "op")` {
		t.Fatalf("post-drop plan = %s (stale cached plan?)", got)
	}
	if got, want := c.FindKeys(g), []string{"a", "c"}; !sameKeySet(got, want) {
		t.Fatalf("post-drop keys = %v, want %v", got, want)
	}
	if c.DropIndex("op") {
		t.Fatal("second DropIndex(op) = true, index already gone")
	}
	if c.DropIndex("nonexistent") {
		t.Fatal("DropIndex(nonexistent) = true")
	}
}

// TestPlanCacheCounters: misses on first compile of a shape, hits on
// repeats, and distinct shapes (different arg class, different list
// length, different structure) miss independently.
func TestPlanCacheCounters(t *testing.T) {
	c := plannerFixture(t)
	reg := obs.New()
	c.setObs(reg)
	hits := reg.Counter("docstore.plan_cache.hits")
	misses := reg.Counter("docstore.plan_cache.misses")

	c.Plan(Eq("op", "A"))
	if hits.Value() != 0 || misses.Value() != 1 {
		t.Fatalf("after first compile: hits=%d misses=%d", hits.Value(), misses.Value())
	}
	c.Plan(Eq("op", "Z"))
	if hits.Value() != 1 || misses.Value() != 1 {
		t.Fatalf("after same shape: hits=%d misses=%d", hits.Value(), misses.Value())
	}
	c.Plan(Eq("op", 7)) // different arg class: new shape
	if misses.Value() != 2 {
		t.Fatalf("different arg class did not miss: misses=%d", misses.Value())
	}
	c.Plan(In("op", "A", "B"))
	c.Plan(In("op", "A", "B", "C")) // different list length: new shape
	if misses.Value() != 4 {
		t.Fatalf("IN list lengths shared a shape: misses=%d", misses.Value())
	}
}

// TestExplainFreshAcrossSameShapeArgs: Explain must report live
// estimates no matter which same-shape argument warmed the cache —
// the tape replay that serves Find would otherwise leak the recording
// argument's cardinality into the rendering (and make the output
// depend on compile order, which showed up as a flaky
// plan-stability-across-reopen test at the ledger layer).
func TestExplainFreshAcrossSameShapeArgs(t *testing.T) {
	c := plannerFixture(t)
	// Warm the Eq(op, string) shape with "A" (cardinality 2) via the
	// replaying hot path, then Explain "C" (cardinality 1): the
	// rendering must carry C's own estimate, not A's taped one.
	c.Plan(Eq("op", "A"))
	if got := c.Explain(Eq("op", "C")); got != `point(op eq "C")[1]` {
		t.Fatalf(`Explain(op eq "C") = %s, want live estimate [1]`, got)
	}
	// And the reverse order: warm with the rarer value, Explain the
	// denser one.
	c.Plan(Eq("n", 5))
	if got := c.Explain(Eq("op", "A")); got != `point(op eq "A")[2]` {
		t.Fatalf(`Explain(op eq "A") = %s, want live estimate [2]`, got)
	}
}

// TestPlanCacheEpochRace: a put recorded against a pre-invalidation
// path epoch must be refused — the tape may describe dropped indexes.
// A put whose paths were untouched by the DDL is accepted.
func TestPlanCacheEpochRace(t *testing.T) {
	var pc planCache
	key := []byte("shape")
	paths := []string{"u"}
	stamp := pc.epochOf(paths)
	pc.invalidatePath("u") // DDL on u lands while the recording compile runs
	pc.put(key, paths, stamp, []int{1, 2, 3})
	if _, ok := pc.get(key, pc.epochOf(paths)); ok {
		t.Fatal("stale-epoch tape was cached")
	}
	// A recording against the current epoch is accepted.
	now := pc.epochOf(paths)
	pc.put(key, paths, now, []int{4})
	if vals, ok := pc.get(key, now); !ok || len(vals) != 1 || vals[0] != 4 {
		t.Fatalf("current-epoch tape not served: %v %v", vals, ok)
	}
	// DDL on an unrelated path leaves the entry valid...
	pc.invalidatePath("other")
	if _, ok := pc.get(key, pc.epochOf(paths)); !ok {
		t.Fatal("unrelated DDL invalidated the entry")
	}
	// ...while DDL on a referenced path moves its stamp and misses.
	pc.invalidatePath("u")
	if _, ok := pc.get(key, pc.epochOf(paths)); ok {
		t.Fatal("entry from an older path epoch served after DDL on its path")
	}
	// A put recorded concurrently with an unrelated DDL also lands.
	key2, paths2 := []byte("shape2"), []string{"op", "n"}
	stamp2 := pc.epochOf(paths2)
	pc.invalidatePath("u")
	pc.put(key2, paths2, stamp2, []int{7})
	if vals, ok := pc.get(key2, pc.epochOf(paths2)); !ok || vals[0] != 7 {
		t.Fatal("unrelated mid-compile DDL refused a valid recording")
	}
}

// TestPlanCacheCrossDDLWarmth is the cross-DDL differential: index DDL
// on one path must replan every shape referencing that path (including
// full-scan shapes on a previously-unindexed path) while shapes over
// untouched paths stay warm — and every query result stays identical
// to the index-free scan across each DDL step.
func TestPlanCacheCrossDDLWarmth(t *testing.T) {
	c := plannerFixture(t)
	reg := obs.New()
	c.setObs(reg)
	hits := reg.Counter("docstore.plan_cache.hits")
	misses := reg.Counter("docstore.plan_cache.misses")

	fOp := Eq("op", "A")  // indexed path "op"
	fN := Gt("n", 4)      // ordered-indexed path "n"
	fU := Eq("u", 10)     // unindexed path "u": full-scan shape
	all := []Filter{fOp, fN, fU}
	check := func(step string) {
		t.Helper()
		for _, f := range all {
			if got, want := c.Find(f), c.FindScan(f); !sameDocSet(got, want) {
				t.Fatalf("%s: cached plan diverges from scan for %v", step, f)
			}
		}
	}
	for _, f := range all {
		c.Plan(f) // warm every shape
	}
	check("warm")

	// DDL on "u" (create an index where none existed): the full-scan
	// shape on u must miss and replan to a point lookup; op and n
	// shapes must stay warm.
	h0, m0 := hits.Value(), misses.Value()
	c.CreateIndex("u")
	c.Plan(fOp)
	c.Plan(fN)
	if hits.Value() != h0+2 || misses.Value() != m0 {
		t.Fatalf("unrelated shapes went cold after CreateIndex(u): hits %d→%d misses %d→%d",
			h0, hits.Value(), m0, misses.Value())
	}
	if got := c.Plan(fU).String(); got != `point(u eq 10)[1]` {
		t.Fatalf("post-index plan on u = %s (stale full-scan tape?)", got)
	}
	if misses.Value() != m0+1 {
		t.Fatalf("shape on u did not replan after CreateIndex(u): misses %d→%d", m0, misses.Value())
	}
	check("create-u")

	// DDL on "op" (drop): the op shape falls back to a full scan; the
	// n and u shapes stay warm.
	h1, m1 := hits.Value(), misses.Value()
	if !c.DropIndex("op") {
		t.Fatal("DropIndex(op) = false")
	}
	c.Plan(fN)
	c.Plan(fU)
	if hits.Value() != h1+2 || misses.Value() != m1 {
		t.Fatalf("unrelated shapes went cold after DropIndex(op): hits %d→%d misses %d→%d",
			h1, hits.Value(), m1, misses.Value())
	}
	if got := c.Plan(fOp).String(); got != `full-scan(no index on "op")` {
		t.Fatalf("post-drop plan on op = %s (stale indexed tape?)", got)
	}
	check("drop-op")

	// A compound shape referencing both a touched and an untouched
	// path must miss when either of its paths moves.
	fBoth := And(Gt("n", 4), Eq("u", 10))
	c.Plan(fBoth)
	mm := misses.Value()
	c.DropIndex("u")
	c.Plan(fBoth)
	if misses.Value() != mm+1 {
		t.Fatal("compound shape referencing a dropped path did not replan")
	}
	check("drop-u")
}

func sameDocSet(a, b []map[string]any) bool {
	if len(a) != len(b) {
		return false
	}
	used := make([]bool, len(b))
outer:
	for _, d := range a {
		for i, e := range b {
			if !used[i] && reflect.DeepEqual(d, e) {
				used[i] = true
				continue outer
			}
		}
		return false
	}
	return true
}

func sameKeySet(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	set := make(map[string]int, len(a))
	for _, k := range a {
		set[k]++
	}
	for _, k := range b {
		set[k]--
	}
	for _, n := range set {
		if n != 0 {
			return false
		}
	}
	return true
}
