package docstore

import (
	"regexp"
	"strings"
)

// Filter matches documents. Filters compose with And/Or/Not; leaf
// filters test one dot-path against a value or operator.
type Filter interface {
	Matches(doc map[string]any) bool
}

// Eq matches documents whose value at path equals v. If the value at
// path is an array, any element equal to v matches (Mongo semantics).
func Eq(path string, v any) Filter { return &fieldFilter{path: path, op: opEq, arg: normalize(v)} }

// Ne matches documents whose value at path does not equal v.
func Ne(path string, v any) Filter { return &fieldFilter{path: path, op: opNe, arg: normalize(v)} }

// Gt matches numeric or string values strictly greater than v.
func Gt(path string, v any) Filter { return &fieldFilter{path: path, op: opGt, arg: normalize(v)} }

// Gte matches values greater than or equal to v.
func Gte(path string, v any) Filter { return &fieldFilter{path: path, op: opGte, arg: normalize(v)} }

// Lt matches values strictly less than v.
func Lt(path string, v any) Filter { return &fieldFilter{path: path, op: opLt, arg: normalize(v)} }

// Lte matches values less than or equal to v.
func Lte(path string, v any) Filter { return &fieldFilter{path: path, op: opLte, arg: normalize(v)} }

// In matches documents whose value at path equals any of vs. With an
// all-scalar value list the membership test is a hash probe, so a
// large list (e.g. the accepted-RFQ ids of the open-requests indexed
// difference) costs O(1) per candidate document, not O(len(vs)).
func In(path string, vs ...any) Filter {
	norm := make([]any, len(vs))
	set := make(map[string]struct{}, len(vs))
	for i, v := range vs {
		norm[i] = normalize(v)
		if set != nil {
			if f, isF := norm[i].(float64); isF && f != f {
				// NaN equals nothing under valuesEqual (and indexKey
				// would happily render it); leaving it out of the set
				// is exact.
				continue
			}
			if k, ok := indexKey(norm[i]); ok {
				set[k] = struct{}{}
			} else {
				set = nil // non-scalar member: fall back to the linear scan
			}
		}
	}
	return &fieldFilter{path: path, op: opIn, list: norm, inSet: set}
}

// Exists matches documents that have (or lack) any value at path.
func Exists(path string, want bool) Filter {
	return &fieldFilter{path: path, op: opExists, arg: want}
}

// Contains matches documents whose array at path contains element v.
// It is Eq restricted to arrays; on non-arrays it never matches.
func Contains(path string, v any) Filter {
	return &fieldFilter{path: path, op: opContains, arg: normalize(v)}
}

// ContainsAll matches arrays containing every one of vs.
func ContainsAll(path string, vs ...any) Filter {
	norm := make([]any, len(vs))
	for i, v := range vs {
		norm[i] = normalize(v)
	}
	return &fieldFilter{path: path, op: opContainsAll, list: norm}
}

// Regex matches string values against the pattern. Compilation errors
// yield a filter that never matches.
func Regex(path, pattern string) Filter {
	re, err := regexp.Compile(pattern)
	if err != nil {
		return &fieldFilter{path: path, op: opNever}
	}
	return &fieldFilter{path: path, op: opRegex, re: re}
}

// And matches documents satisfying every sub-filter.
func And(fs ...Filter) Filter { return andFilter(fs) }

// Or matches documents satisfying at least one sub-filter.
func Or(fs ...Filter) Filter { return orFilter(fs) }

// Not inverts a filter.
func Not(f Filter) Filter { return notFilter{f} }

// All matches every document.
func All() Filter { return allFilter{} }

type fieldOp int

const (
	opEq fieldOp = iota
	opNe
	opGt
	opGte
	opLt
	opLte
	opIn
	opExists
	opContains
	opContainsAll
	opRegex
	opNever
)

type fieldFilter struct {
	path string
	op   fieldOp
	arg  any
	list []any
	// inSet is the hash form of an all-scalar In list (nil otherwise):
	// membership keyed by indexKey, which equates values exactly like
	// valuesEqual does for scalars.
	inSet map[string]struct{}
	re    *regexp.Regexp
}

func (f *fieldFilter) Matches(doc map[string]any) bool {
	vals, found := lookupPath(doc, f.path)
	switch f.op {
	case opExists:
		return found == f.arg.(bool)
	case opNever:
		return false
	case opNe:
		if !found {
			return true
		}
		for _, v := range vals {
			if valuesEqual(v, f.arg) {
				return false
			}
		}
		return true
	}
	if !found {
		return false
	}
	for _, v := range vals {
		if f.matchOne(v) {
			return true
		}
	}
	return false
}

func (f *fieldFilter) matchOne(v any) bool {
	switch f.op {
	case opEq:
		if valuesEqual(v, f.arg) {
			return true
		}
		if arr, ok := v.([]any); ok {
			for _, e := range arr {
				if valuesEqual(e, f.arg) {
					return true
				}
			}
		}
		return false
	case opGt, opGte, opLt, opLte:
		cmp, ok := compareValues(v, f.arg)
		if !ok {
			return false
		}
		switch f.op {
		case opGt:
			return cmp > 0
		case opGte:
			return cmp >= 0
		case opLt:
			return cmp < 0
		default:
			return cmp <= 0
		}
	case opIn:
		if f.inSet != nil {
			// A non-scalar document value can never equal a scalar
			// list member, so missing the key map is a definitive no.
			if k, ok := indexKey(v); ok {
				_, hit := f.inSet[k]
				return hit
			}
			return false
		}
		for _, e := range f.list {
			if valuesEqual(v, e) {
				return true
			}
		}
		return false
	case opContains:
		arr, ok := v.([]any)
		if !ok {
			return false
		}
		for _, e := range arr {
			if valuesEqual(e, f.arg) {
				return true
			}
		}
		return false
	case opContainsAll:
		arr, ok := v.([]any)
		if !ok {
			return false
		}
		for _, want := range f.list {
			foundOne := false
			for _, e := range arr {
				if valuesEqual(e, want) {
					foundOne = true
					break
				}
			}
			if !foundOne {
				return false
			}
		}
		return true
	case opRegex:
		s, ok := v.(string)
		return ok && f.re.MatchString(s)
	}
	return false
}

type andFilter []Filter

func (fs andFilter) Matches(doc map[string]any) bool {
	for _, f := range fs {
		if !f.Matches(doc) {
			return false
		}
	}
	return true
}

type orFilter []Filter

func (fs orFilter) Matches(doc map[string]any) bool {
	for _, f := range fs {
		if f.Matches(doc) {
			return true
		}
	}
	return false
}

type notFilter struct{ f Filter }

func (n notFilter) Matches(doc map[string]any) bool { return !n.f.Matches(doc) }

type allFilter struct{}

func (allFilter) Matches(map[string]any) bool { return true }

// Introspection ------------------------------------------------------
//
// Analyze converts any filter built from this package's constructors
// into a structural tree the query planner (planner.go) can reason
// about. It replaces the old approach of type-sniffing concrete filter
// types at the call sites: every consumer that needs to know what a
// filter *is* — rather than merely what it matches — goes through the
// Node view.

// NodeKind classifies one node of an analyzed filter tree.
type NodeKind int

const (
	// KindField is a leaf testing one dot path against an operator.
	KindField NodeKind = iota
	// KindAnd / KindOr / KindNot are the boolean combinators.
	KindAnd
	KindOr
	KindNot
	// KindAll matches every document (All(), or a nil filter).
	KindAll
	// KindOpaque is a foreign Filter implementation: only Matches is
	// known, so the planner must fall back to a full scan.
	KindOpaque
)

// Field-node operator names reported by Analyze.
const (
	OpEq          = "eq"
	OpNe          = "ne"
	OpGt          = "gt"
	OpGte         = "gte"
	OpLt          = "lt"
	OpLte         = "lte"
	OpIn          = "in"
	OpExists      = "exists"
	OpContains    = "contains"
	OpContainsAll = "contains-all"
	OpRegex       = "regex"
	OpNever       = "never"
)

var fieldOpNames = map[fieldOp]string{
	opEq: OpEq, opNe: OpNe, opGt: OpGt, opGte: OpGte, opLt: OpLt,
	opLte: OpLte, opIn: OpIn, opExists: OpExists, opContains: OpContains,
	opContainsAll: OpContainsAll, opRegex: OpRegex, opNever: OpNever,
}

// Node is the introspectable view of one filter-tree node. Field nodes
// carry the tested path, the operator name, and the (normalized)
// argument; combinator nodes carry their children. Arg and List alias
// the filter's own storage and must not be mutated.
type Node struct {
	Kind     NodeKind
	Path     string // KindField: the tested dot path
	Op       string // KindField: one of the Op* operator names
	Arg      any    // KindField: scalar argument (eq, gt, ..., exists)
	List     []any  // KindField: list argument (in, contains-all)
	Children []Node // KindAnd / KindOr / KindNot
}

// Analyze returns the structural tree of a filter. A nil filter
// analyzes as KindAll (match everything), mirroring Find's treatment.
func Analyze(f Filter) Node {
	switch x := f.(type) {
	case nil:
		return Node{Kind: KindAll}
	case *fieldFilter:
		return Node{Kind: KindField, Path: x.path, Op: fieldOpNames[x.op], Arg: x.arg, List: x.list}
	case andFilter:
		children := make([]Node, len(x))
		for i, sub := range x {
			children[i] = Analyze(sub)
		}
		return Node{Kind: KindAnd, Children: children}
	case orFilter:
		children := make([]Node, len(x))
		for i, sub := range x {
			children[i] = Analyze(sub)
		}
		return Node{Kind: KindOr, Children: children}
	case notFilter:
		return Node{Kind: KindNot, Children: []Node{Analyze(x.f)}}
	case allFilter:
		return Node{Kind: KindAll}
	}
	return Node{Kind: KindOpaque}
}

// lookupPath navigates a dot path through nested maps. Arrays fan out:
// each element is tried for the remaining path, like MongoDB. It
// returns all values reached and whether any path resolved.
func lookupPath(doc map[string]any, path string) ([]any, bool) {
	parts := strings.Split(path, ".")
	vals := []any{any(doc)}
	for _, part := range parts {
		var next []any
		for _, v := range vals {
			switch x := v.(type) {
			case map[string]any:
				if child, ok := x[part]; ok {
					next = append(next, child)
				}
			case []any:
				for _, e := range x {
					if m, ok := e.(map[string]any); ok {
						if child, ok := m[part]; ok {
							next = append(next, child)
						}
					}
				}
			}
		}
		if len(next) == 0 {
			return nil, false
		}
		vals = next
	}
	return vals, true
}

// normalize converts ints to float64 so filters compare like JSON,
// and folds negative zero into +0 so hash keys (indexKey) equate
// values exactly like float equality does.
func normalize(v any) any {
	switch x := v.(type) {
	case int:
		return float64(x)
	case int32:
		return float64(x)
	case int64:
		return float64(x)
	case uint64:
		return float64(x)
	case float32:
		return float64(x)
	case float64:
		if x == 0 {
			return float64(0)
		}
		return v
	default:
		return v
	}
}

func valuesEqual(a, b any) bool {
	a, b = normalize(a), normalize(b)
	if af, aok := a.(float64); aok {
		bf, bok := b.(float64)
		return bok && af == bf
	}
	return a == b
}

// compareValues orders two scalars of the same kind. It reports the
// sign and whether the pair is comparable.
func compareValues(a, b any) (int, bool) {
	a, b = normalize(a), normalize(b)
	switch x := a.(type) {
	case float64:
		y, ok := b.(float64)
		if !ok {
			return 0, false
		}
		switch {
		case x < y:
			return -1, true
		case x > y:
			return 1, true
		default:
			return 0, true
		}
	case string:
		y, ok := b.(string)
		if !ok {
			return 0, false
		}
		return strings.Compare(x, y), true
	}
	return 0, false
}
