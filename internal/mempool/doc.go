// Package mempool is the ingest leg of the parallel pipeline: a
// sharded, footprint-indexed pending-transaction pool that replaces the
// plain arrival-order slice inside the consensus engine.
//
// The paper's thesis — declarative transactions expose their read/write
// footprints before execution — is applied here to the receiver path,
// ahead of any validation:
//
//   - Admission is batched. Incoming client and gossip transactions are
//     screened structurally against the pool's indexes first (duplicate
//     IDs and already-claimed spent outputs are rejected in O(1),
//     before any signature is verified), and only the survivors reach
//     the semantic CheckFn, which the server implements over the
//     dependency-aware parallel scheduler so one batch validates
//     concurrently across a worker pool with per-transaction verdicts.
//
//   - The pool indexes every pending transaction by its declarative
//     spend keys, sharded by key hash. Point lookups (is this output
//     already claimed? is this ID pending?) lock one shard; block-commit
//     compaction becomes an index sweep — each committed spend key
//     evicts its pending rival directly — instead of a full rescan.
//
//   - Pack selects the next block. PackFIFO reproduces arrival order
//     (the pre-mempool behaviour); PackMakespan groups the pending set
//     into conflict groups with a union-find over footprint keys and
//     greedily balances group chains across the validators' workers, so
//     the proposed block's parallel-validation makespan is minimized
//     rather than inherited from arrival order.
//
// The pool is safe for concurrent use: real deployments admit batches
// from many connections while a proposer packs and the commit path
// sweeps. The simulated consensus engine drives it single-threaded
// through the virtual clock, but its CheckFn still fans out across real
// goroutines.
package mempool
