package mempool

import (
	"smartchaindb/internal/parallel"
	"smartchaindb/internal/txn"
)

// Tx is the pool's unit: anything with a stable unique hash. It is
// method-compatible with consensus.Tx, so consensus transactions flow
// in and out without wrapping.
type Tx interface{ Hash() string }

// Footprint is the pool's view of one transaction's declarative
// read/write set.
//
// Spends are the exclusive claims — the spent-output keys. At most one
// pending transaction may hold a given spend key, so a claim collision
// rejects admission in O(1); the block-commit sweep uses the same index
// to evict the pending rival of every freshly committed spend. Writes
// and Reads drive conflict grouping for makespan-aware packing only
// (two writers of one key conflict, as do a writer and a reader;
// readers sharing a key stay independent), mirroring
// parallel.BuildPlan.
type Footprint struct {
	Spends []string
	Writes []string
	Reads  []string
}

// FootprintFn derives a transaction's footprint without executing it —
// the declarative contract of the paper.
type FootprintFn func(Tx) Footprint

// ForTransaction is the footprint function for SmartchainDB
// transactions: declarative footprints from parallel.FootprintOf, with
// the spent-output keys doubling as the exclusive spend claims.
// Foreign transaction types (e.g. the baseline chain's) fall back to
// DefaultFootprint and are treated as mutually independent.
func ForTransaction(tx Tx) Footprint {
	t, ok := tx.(*txn.Transaction)
	if !ok {
		return DefaultFootprint(tx)
	}
	fp := parallel.FootprintOf(t)
	return Footprint{
		Spends: parallel.SpendKeys(t),
		Writes: fp.Writes,
		Reads:  fp.Reads,
	}
}

// DefaultFootprint treats a transaction as writing only its own
// identity: no spend claims, no conflicts with anything else.
func DefaultFootprint(tx Tx) Footprint {
	return Footprint{Writes: []string{"tx:" + tx.Hash()}}
}
