package mempool

import "testing"

// reader builds a transaction that reads a key without writing it.
func reader(hash string, reads ...string) *fakeTx {
	return &fakeTx{hash: hash, fp: Footprint{Writes: []string{"tx:" + hash}, Reads: reads}}
}

func freshOf(t *testing.T, p *Pool, txs ...Tx) []bool {
	t.Helper()
	return p.Fresh(txs)
}

// TestFreshLifecycle pins the verdict-reuse state machine: independent
// admissions start fresh, batch-conflicting admissions start stale,
// commits staling exactly the pending transactions whose footprints
// they write into, and unknown transactions never reporting fresh.
func TestFreshLifecycle(t *testing.T) {
	p := newPool(t, Config{})

	// a and b are independent: both admitted fresh.
	a, b := indep("a"), indep("b")
	admit(t, p, a, b)
	if got := freshOf(t, p, a, b); !got[0] || !got[1] {
		t.Fatalf("independent admissions not fresh: %v", got)
	}

	// c reads a key d writes in the same batch: both enter stale —
	// their verdicts may have consulted each other, not committed
	// state.
	c := reader("c", "k:shared")
	d := &fakeTx{hash: "d", fp: Footprint{Writes: []string{"tx:d", "k:shared"}}}
	admit(t, p, c, d)
	if got := freshOf(t, p, c, d); got[0] || got[1] {
		t.Fatalf("batch-dependent admissions must start stale: %v", got)
	}

	// The same pair admitted in separate batches stays fresh... until a
	// commit writes into the shared key.
	p2 := newPool(t, Config{})
	admit(t, p2, c)
	admit(t, p2, indep("x"))
	if got := p2.Fresh([]Tx{c}); !got[0] {
		t.Fatal("solo admission must be fresh")
	}
	// A foreign commit (never pooled here) writing k:shared stales c.
	p2.RemoveCommitted([]Tx{d})
	if got := p2.Fresh([]Tx{c}); got[0] {
		t.Fatal("commit into read footprint must stale the reader")
	}
	// x is untouched by d's writes and stays fresh.
	if got := p2.Fresh([]Tx{indep("x")}); !got[0] {
		t.Fatal("disjoint pending transaction must stay fresh")
	}

	// Unknown transactions are never fresh.
	if got := p.Fresh([]Tx{indep("nope")}); got[0] {
		t.Fatal("unknown transaction reported fresh")
	}
}

// TestFreshCommitSweepScope checks the sweep uses write keys only:
// committing a pure reader of a key must not stale other readers
// (read/read is not a conflict), while committing a writer must.
func TestFreshCommitSweepScope(t *testing.T) {
	p := newPool(t, Config{})
	r1 := reader("r1", "k:a")
	admit(t, p, r1)
	admit(t, p, reader("r2", "k:a")) // separate batch: both fresh
	if got := p.Fresh([]Tx{r1}); !got[0] {
		t.Fatal("reader not fresh after solo admission")
	}
	// r2 commits (say, through another node's block): it only read
	// k:a, so r1's verdict still stands.
	p.RemoveCommitted([]Tx{reader("r2", "k:a")})
	if got := p.Fresh([]Tx{r1}); !got[0] {
		t.Fatal("committing a reader staled a co-reader")
	}
	// A writer of k:a commits: r1 goes stale.
	p.RemoveCommitted([]Tx{&fakeTx{hash: "w", fp: Footprint{Writes: []string{"tx:w", "k:a"}}}})
	if got := p.Fresh([]Tx{r1}); got[0] {
		t.Fatal("committing a writer did not stale the reader")
	}
}

// TestMarkValidatedRefreshesSingletons pins the post-validation
// re-arming: a clean block validation makes singleton-conflict-group
// members fresh again, leaves multi-member groups stale, and is voided
// by an interleaved commit sweep.
func TestMarkValidatedRefreshesSingletons(t *testing.T) {
	p := newPool(t, Config{})
	// c reads what d writes: admitted in one batch, both start stale.
	c := reader("c", "k:shared")
	d := &fakeTx{hash: "d", fp: Footprint{Writes: []string{"tx:d", "k:shared"}}}
	admit(t, p, c, d)
	if got := p.Fresh([]Tx{c, d}); got[0] || got[1] {
		t.Fatalf("batch-dependent admissions not stale: %v", got)
	}

	// A clean validation of a block holding both: they conflict within
	// the block too, so neither may become fresh.
	epoch := p.Epoch()
	p.MarkValidated([]Tx{c, d}, epoch)
	if got := p.Fresh([]Tx{c, d}); got[0] || got[1] {
		t.Fatalf("multi-member group re-marked fresh: %v", got)
	}

	// A clean validation of a block holding only c: singleton group,
	// verdict re-proven against committed state — fresh again.
	p.MarkValidated([]Tx{c}, p.Epoch())
	if got := p.Fresh([]Tx{c, d}); !got[0] || got[1] {
		t.Fatalf("singleton not refreshed (or rival leaked): %v", got)
	}

	// A foreign block member sharing a footprint key keeps the pooled
	// member's group multi-sized even though the foreigner is unknown.
	e := reader("e", "k:other")
	admit(t, p, e)
	p.RemoveCommitted([]Tx{&fakeTx{hash: "w", fp: Footprint{Writes: []string{"tx:w", "k:other"}}}})
	if got := p.Fresh([]Tx{e}); got[0] {
		t.Fatal("commit sweep did not stale the reader")
	}
	foreign := &fakeTx{hash: "f", fp: Footprint{Writes: []string{"tx:f", "k:other"}}}
	p.MarkValidated([]Tx{e, foreign}, p.Epoch())
	if got := p.Fresh([]Tx{e}); got[0] {
		t.Fatal("member of a group with a foreign writer re-marked fresh")
	}
	p.MarkValidated([]Tx{e}, p.Epoch())
	if got := p.Fresh([]Tx{e}); !got[0] {
		t.Fatal("singleton not refreshed after foreign-writer round")
	}
}

// TestMarkValidatedEpochGuard: a commit sweep between the epoch
// snapshot and the marking voids it — the sweep's staling wins.
func TestMarkValidatedEpochGuard(t *testing.T) {
	p := newPool(t, Config{})
	r := reader("r", "k:a")
	admit(t, p, r)
	epoch := p.Epoch() // validation starts here...
	// ...but a block writing k:a commits before the marking lands.
	p.RemoveCommitted([]Tx{&fakeTx{hash: "w", fp: Footprint{Writes: []string{"tx:w", "k:a"}}}})
	p.MarkValidated([]Tx{r}, epoch)
	if got := p.Fresh([]Tx{r}); got[0] {
		t.Fatal("stale epoch marking overwrote the commit sweep")
	}
	// With a current epoch the same marking sticks.
	p.MarkValidated([]Tx{r}, p.Epoch())
	if got := p.Fresh([]Tx{r}); !got[0] {
		t.Fatal("current-epoch marking did not stick")
	}
}

// TestFreshEvictionReleasesIndex checks evicted entries leave the key
// index: a later commit sweeping their keys must not resurrect or
// touch them, and re-admission starts a clean verdict.
func TestFreshEvictionReleasesIndex(t *testing.T) {
	p := newPool(t, Config{})
	s := spender("s", "utxo:1")
	admit(t, p, s)
	p.Remove([]Tx{s})
	if p.Contains("s") {
		t.Fatal("evicted entry still pooled")
	}
	if len(p.keyIndex) != 0 {
		t.Fatalf("key index leaked %d keys after eviction", len(p.keyIndex))
	}
	admit(t, p, s)
	if got := p.Fresh([]Tx{s}); !got[0] {
		t.Fatal("re-admitted entry must start fresh")
	}
	p.RemoveCommitted([]Tx{s})
	if len(p.keyIndex) != 0 {
		t.Fatalf("key index leaked %d keys after commit", len(p.keyIndex))
	}
}
