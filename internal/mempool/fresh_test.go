package mempool

import "testing"

// reader builds a transaction that reads a key without writing it.
func reader(hash string, reads ...string) *fakeTx {
	return &fakeTx{hash: hash, fp: Footprint{Writes: []string{"tx:" + hash}, Reads: reads}}
}

func freshOf(t *testing.T, p *Pool, txs ...Tx) []bool {
	t.Helper()
	return p.Fresh(txs)
}

// TestFreshLifecycle pins the verdict-reuse state machine: independent
// admissions start fresh, batch-conflicting admissions start stale,
// commits staling exactly the pending transactions whose footprints
// they write into, and unknown transactions never reporting fresh.
func TestFreshLifecycle(t *testing.T) {
	p := newPool(t, Config{})

	// a and b are independent: both admitted fresh.
	a, b := indep("a"), indep("b")
	admit(t, p, a, b)
	if got := freshOf(t, p, a, b); !got[0] || !got[1] {
		t.Fatalf("independent admissions not fresh: %v", got)
	}

	// c reads a key d writes in the same batch: both enter stale —
	// their verdicts may have consulted each other, not committed
	// state.
	c := reader("c", "k:shared")
	d := &fakeTx{hash: "d", fp: Footprint{Writes: []string{"tx:d", "k:shared"}}}
	admit(t, p, c, d)
	if got := freshOf(t, p, c, d); got[0] || got[1] {
		t.Fatalf("batch-dependent admissions must start stale: %v", got)
	}

	// The same pair admitted in separate batches stays fresh... until a
	// commit writes into the shared key.
	p2 := newPool(t, Config{})
	admit(t, p2, c)
	admit(t, p2, indep("x"))
	if got := p2.Fresh([]Tx{c}); !got[0] {
		t.Fatal("solo admission must be fresh")
	}
	// A foreign commit (never pooled here) writing k:shared stales c.
	p2.RemoveCommitted([]Tx{d})
	if got := p2.Fresh([]Tx{c}); got[0] {
		t.Fatal("commit into read footprint must stale the reader")
	}
	// x is untouched by d's writes and stays fresh.
	if got := p2.Fresh([]Tx{indep("x")}); !got[0] {
		t.Fatal("disjoint pending transaction must stay fresh")
	}

	// Unknown transactions are never fresh.
	if got := p.Fresh([]Tx{indep("nope")}); got[0] {
		t.Fatal("unknown transaction reported fresh")
	}
}

// TestFreshCommitSweepScope checks the sweep uses write keys only:
// committing a pure reader of a key must not stale other readers
// (read/read is not a conflict), while committing a writer must.
func TestFreshCommitSweepScope(t *testing.T) {
	p := newPool(t, Config{})
	r1 := reader("r1", "k:a")
	admit(t, p, r1)
	admit(t, p, reader("r2", "k:a")) // separate batch: both fresh
	if got := p.Fresh([]Tx{r1}); !got[0] {
		t.Fatal("reader not fresh after solo admission")
	}
	// r2 commits (say, through another node's block): it only read
	// k:a, so r1's verdict still stands.
	p.RemoveCommitted([]Tx{reader("r2", "k:a")})
	if got := p.Fresh([]Tx{r1}); !got[0] {
		t.Fatal("committing a reader staled a co-reader")
	}
	// A writer of k:a commits: r1 goes stale.
	p.RemoveCommitted([]Tx{&fakeTx{hash: "w", fp: Footprint{Writes: []string{"tx:w", "k:a"}}}})
	if got := p.Fresh([]Tx{r1}); got[0] {
		t.Fatal("committing a writer did not stale the reader")
	}
}

// TestFreshEvictionReleasesIndex checks evicted entries leave the key
// index: a later commit sweeping their keys must not resurrect or
// touch them, and re-admission starts a clean verdict.
func TestFreshEvictionReleasesIndex(t *testing.T) {
	p := newPool(t, Config{})
	s := spender("s", "utxo:1")
	admit(t, p, s)
	p.Remove([]Tx{s})
	if p.Contains("s") {
		t.Fatal("evicted entry still pooled")
	}
	if len(p.keyIndex) != 0 {
		t.Fatalf("key index leaked %d keys after eviction", len(p.keyIndex))
	}
	admit(t, p, s)
	if got := p.Fresh([]Tx{s}); !got[0] {
		t.Fatal("re-admitted entry must start fresh")
	}
	p.RemoveCommitted([]Tx{s})
	if len(p.keyIndex) != 0 {
		t.Fatalf("key index leaked %d keys after commit", len(p.keyIndex))
	}
}
