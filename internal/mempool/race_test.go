package mempool

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// TestConcurrentAdmitPackRemove hammers one pool from every direction
// at once — batched admitters racing over shared spend keys, a packer,
// a commit sweeper, and point readers — and checks the invariants
// afterwards. Run under -race (the Makefile race gate includes this
// package).
func TestConcurrentAdmitPackRemove(t *testing.T) {
	p := newPool(t, Config{Shards: 8, Policy: PackMakespan, PackWorkers: 4})

	const admitters = 4
	const batches = 40
	const batchSize = 16

	var wg sync.WaitGroup
	committedCh := make(chan []Tx, admitters*batches)

	// Admitters: independent txs, chained txs, contested spends, and
	// duplicates across goroutines.
	for a := 0; a < admitters; a++ {
		wg.Add(1)
		go func(a int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(a + 1)))
			for b := 0; b < batches; b++ {
				batch := make([]Tx, 0, batchSize)
				for i := 0; i < batchSize; i++ {
					switch rng.Intn(4) {
					case 0: // contested spend: same key across all admitters
						batch = append(batch, spender(fmt.Sprintf("s-%d-%d-%d", a, b, i), fmt.Sprintf("utxo:hot%d", rng.Intn(8))))
					case 1: // chained
						batch = append(batch, chained(fmt.Sprintf("c-%d-%d-%d", a, b, i), fmt.Sprintf("chain:%d", rng.Intn(4))))
					case 2: // duplicate of a shared name (same across admitters)
						batch = append(batch, indep(fmt.Sprintf("dup-%d", rng.Intn(64))))
					default:
						batch = append(batch, indep(fmt.Sprintf("i-%d-%d-%d", a, b, i)))
					}
				}
				res := p.AdmitBatch(batch)
				if len(res.Admitted) > 0 && rng.Intn(3) == 0 {
					committedCh <- res.Admitted
				}
			}
		}(a)
	}

	// Packer: keeps proposing off the live pool.
	stop := make(chan struct{})
	var packerWg sync.WaitGroup
	packerWg.Add(1)
	go func() {
		defer packerWg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			block := p.Pack(32, 4)
			for _, tx := range block {
				_ = p.Contains(tx.Hash())
			}
			_ = p.PendingCount()
		}
	}()

	// Commit sweeper: applies admitted batches as blocks.
	packerWg.Add(1)
	go func() {
		defer packerWg.Done()
		for txs := range committedCh {
			p.RemoveCommitted(txs)
		}
	}()

	wg.Wait()
	close(committedCh)
	close(stop)
	packerWg.Wait()

	// Invariants: every live entry is reachable by hash, every claim
	// points at a live entry, and the pool packs cleanly.
	block := p.Pack(0, 4)
	seen := make(map[string]bool, len(block))
	for _, tx := range block {
		if seen[tx.Hash()] {
			t.Fatalf("duplicate %s in packed block", tx.Hash())
		}
		seen[tx.Hash()] = true
		if !p.Contains(tx.Hash()) {
			t.Fatalf("packed %s not in pool", tx.Hash())
		}
	}
	claimed := make(map[string]string)
	for _, tx := range block {
		for _, key := range fakeFootprint(tx).Spends {
			if owner, ok := claimed[key]; ok {
				t.Fatalf("spend key %s claimed by both %s and %s", key, owner, tx.Hash())
			}
			claimed[key] = tx.Hash()
		}
	}
}
