package mempool

import (
	"errors"
	"testing"
)

// Cross-shard claim holds: a 2PC coordinator claims spend keys on
// behalf of a transaction that never enters the pool, and the
// admission screen treats the claims exactly like a pending rival's.
func TestHoldBlocksAdmission(t *testing.T) {
	p := newPool(t, Config{})
	if err := p.Hold([]string{"k:1", "k:2"}, "xs-1"); err != nil {
		t.Fatalf("hold on free keys: %v", err)
	}

	// A rival spending a held key is skipped at admission (a claim
	// clash is transient: the hold may release, so not a hard reject).
	res := admit(t, p, spender("a", "k:1"))
	var claimed *ErrSpendClaimed
	if err := res.Skipped["a"]; !errors.As(err, &claimed) {
		t.Fatalf("rival over a held key: %+v", res)
	}
	if claimed.ClaimedBy != "xs-1" {
		t.Fatalf("claimant = %q, want xs-1", claimed.ClaimedBy)
	}

	// Release frees the keys; the same rival now admits.
	p.Release([]string{"k:1", "k:2"}, "xs-1")
	if res := admit(t, p, spender("a", "k:1")); len(res.Admitted) != 1 {
		t.Fatalf("post-release admit: %+v", res)
	}
}

func TestHoldAllOrNothing(t *testing.T) {
	p := newPool(t, Config{})
	// A pooled transaction claims k:2 via its spends.
	admit(t, p, spender("a", "k:2"))

	err := p.Hold([]string{"k:1", "k:2", "k:3"}, "xs-1")
	var claimed *ErrSpendClaimed
	if !errors.As(err, &claimed) {
		t.Fatalf("hold over a pooled claim: %v", err)
	}
	if claimed.Key != "k:2" || claimed.ClaimedBy != "a" {
		t.Fatalf("clash = %+v", claimed)
	}
	// Nothing partial was taken: k:1 and k:3 are still free.
	for _, key := range []string{"k:1", "k:3"} {
		if owner, ok := p.claimant(key); ok {
			t.Fatalf("failed hold leaked a claim on %s (owner %s)", key, owner)
		}
	}
}

func TestHoldIdempotentAndOwnerScopedRelease(t *testing.T) {
	p := newPool(t, Config{})
	if err := p.Hold([]string{"k:1"}, "xs-1"); err != nil {
		t.Fatal(err)
	}
	// Re-holding the same key for the same owner is a no-op.
	if err := p.Hold([]string{"k:1"}, "xs-1"); err != nil {
		t.Fatalf("idempotent re-hold: %v", err)
	}
	// A different owner is refused.
	if err := p.Hold([]string{"k:1"}, "xs-2"); err == nil {
		t.Fatal("rival hold succeeded over an existing hold")
	}
	// Release under the wrong owner leaves the claim intact.
	p.Release([]string{"k:1"}, "xs-2")
	if owner, ok := p.claimant("k:1"); !ok || owner != "xs-1" {
		t.Fatalf("foreign release dropped the claim (owner=%q ok=%v)", owner, ok)
	}
	p.Release([]string{"k:1"}, "xs-1")
	if _, ok := p.claimant("k:1"); ok {
		t.Fatal("owner release left the claim")
	}
}

// The commit sweep evicts pooled rivals of a committed cross-shard
// transaction but does not release the transaction's own holds — the
// shard layer pairs every Hold with an explicit Release.
func TestRemoveCommittedKeepsOwnHolds(t *testing.T) {
	p := newPool(t, Config{})
	if err := p.Hold([]string{"k:1"}, "xs-1"); err != nil {
		t.Fatal(err)
	}
	// The cross-shard transaction commits without ever being pooled.
	p.RemoveCommitted([]Tx{spender("xs-1", "k:1")})
	if owner, ok := p.claimant("k:1"); !ok || owner != "xs-1" {
		t.Fatalf("commit sweep released the committed tx's own hold (owner=%q ok=%v)", owner, ok)
	}
	p.Release([]string{"k:1"}, "xs-1")
	if _, ok := p.claimant("k:1"); ok {
		t.Fatal("release failed after commit sweep")
	}
}
