package mempool

import (
	"sort"
	"time"

	"smartchaindb/internal/obs"
	"smartchaindb/internal/parallel"
)

// Pack selects up to maxTxs pending, unreserved transactions for the
// next block. maxTxs <= 0 means no cap. workers is the validation
// worker count the proposer assumes on the validators (PackMakespan
// balances for it; zero falls back to Config.PackWorkers).
//
// PackFIFO returns the arrival-order prefix. PackMakespan computes the
// pending set's conflict groups (union-find over footprint keys, the
// same relation parallel.BuildPlan uses) and fills the block small
// groups first, each group capped at one worker's fair share, so the
// packed block's conflict-group chains list-schedule onto the workers
// with minimal makespan. Within a group, arrival order is preserved —
// a prefix of a group never separates a transaction from a pending
// dependency, because a dependency always shares a footprint key and
// arrived earlier.
//
// Liveness: the group holding the oldest pending transaction is always
// selected first, so no conflict chain is starved by a stream of
// fresher independent work.
func (p *Pool) Pack(maxTxs, workers int) []Tx {
	t0 := time.Now()
	out := p.pack(maxTxs, workers)
	if len(out) > 0 {
		d := time.Since(t0)
		p.ob.packNs.ObserveDuration(d)
		if p.ob.tracer != nil {
			p.ob.tracer.ObserveEach(p.ob.hashesOf(out), obs.StagePack, d)
		}
	}
	return out
}

func (p *Pool) pack(maxTxs, workers int) []Tx {
	if workers <= 0 {
		workers = p.cfg.PackWorkers
	}
	entries := p.snapshot()
	if len(entries) == 0 {
		return nil
	}
	if maxTxs <= 0 || maxTxs > len(entries) {
		maxTxs = len(entries)
	}
	if p.cfg.Policy != PackMakespan || workers <= 1 {
		out := make([]Tx, maxTxs)
		for i := range out {
			out[i] = entries[i].tx
		}
		return out
	}
	return packMakespan(entries, maxTxs, workers)
}

// packEntry is an immutable snapshot of one pooled transaction.
type packEntry struct {
	tx Tx
	fp Footprint
}

// snapshot copies the packable entries in arrival order.
func (p *Pool) snapshot() []packEntry {
	p.mu.RLock()
	defer p.mu.RUnlock()
	out := make([]packEntry, 0, p.live)
	for _, e := range p.order {
		if !e.gone && !e.reserved {
			out = append(out, packEntry{tx: e.tx, fp: e.fp})
		}
	}
	return out
}

// groupEntries partitions a snapshot into conflict groups through the
// system's single grouping relation, parallel.GroupFootprints — so the
// packer's groups are exactly the groups validators will plan with.
// Each group lists its members in arrival order; groups are ordered by
// first member.
func groupEntries(entries []packEntry) [][]int {
	fps := make([]parallel.Footprint, len(entries))
	for i, e := range entries {
		fps[i] = parallel.Footprint{Writes: e.fp.Writes, Reads: e.fp.Reads}
	}
	return parallel.GroupFootprints(fps)
}

// packMakespan is the greedy group-balancing selection.
func packMakespan(entries []packEntry, maxTxs, workers int) []Tx {
	if len(entries) <= maxTxs {
		// Everything fits: block composition is fixed, so keep arrival
		// order (identical to FIFO; validators re-plan the groups).
		out := make([]Tx, len(entries))
		for i, e := range entries {
			out[i] = e.tx
		}
		return out
	}
	groups := groupEntries(entries)
	// fair is one worker's share of the block: a group contributing
	// more than this forms a chain longer than the schedule's lower
	// bound, so the first pass never takes more.
	fair := (maxTxs + workers - 1) / workers

	// Selection order: the group holding the oldest pending transaction
	// first (liveness), then ascending size — small independent groups
	// balance across workers, big chains dilute the block last.
	order := make([]int, len(groups))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		ga, gb := groups[order[a]], groups[order[b]]
		oldestA, oldestB := ga[0] == 0, gb[0] == 0
		if oldestA != oldestB {
			return oldestA
		}
		if len(ga) != len(gb) {
			return len(ga) < len(gb)
		}
		return ga[0] < gb[0]
	})

	budget := maxTxs
	taken := make([]int, len(groups)) // prefix length taken per group
	for _, gi := range order {
		if budget == 0 {
			break
		}
		take := len(groups[gi])
		if take > fair {
			take = fair
		}
		if take > budget {
			take = budget
		}
		taken[gi] = take
		budget -= take
	}
	// Second pass: only big groups have untapped capacity (all small
	// ones are exhausted). Extend one transaction at a time onto the
	// currently shortest chain so the leftover budget stays balanced —
	// dumping it into one group could hand FIFO the better schedule.
	for budget > 0 {
		best := -1
		for _, gi := range order {
			if taken[gi] < len(groups[gi]) && (best < 0 || taken[gi] < taken[best]) {
				best = gi
			}
		}
		if best < 0 {
			break
		}
		taken[best]++
		budget--
	}
	// Emit the selected prefixes in global arrival order —
	// deterministic, and a pick never precedes a same-group
	// dependency.
	picks := make([]int, 0, maxTxs)
	for gi, g := range groups {
		picks = append(picks, g[:taken[gi]]...)
	}
	sort.Ints(picks)
	out := make([]Tx, len(picks))
	for i, idx := range picks {
		out[i] = entries[idx].tx
	}
	return out
}
