package mempool

import (
	"fmt"
	"testing"
)

// TestScreenPrimitivesZeroAlloc pins the O(1) structural-screen
// primitives — the sharded spend-key lookup and the hash lookup — at
// zero allocations per call on a warm pool. The inline FNV hash in
// shardFor exists precisely so these stay garbage-free on the
// admission hot path; this test keeps future PRs from regressing it.
func TestScreenPrimitivesZeroAlloc(t *testing.T) {
	p := newPool(t, Config{})
	for i := 0; i < 64; i++ {
		admit(t, p, spender(fmt.Sprintf("tx-%d", i), fmt.Sprintf("utxo:%d", i)))
	}
	hit, miss := "utxo:13", "utxo:9999"
	hash, absent := "tx-13", "tx-9999"

	allocs := testing.AllocsPerRun(500, func() {
		if _, ok := p.claimant(hit); !ok {
			t.Fatal("claimed key not found")
		}
		if _, ok := p.claimant(miss); ok {
			t.Fatal("unclaimed key found")
		}
	})
	if allocs != 0 {
		t.Fatalf("claimant allocations = %v, want 0", allocs)
	}

	allocs = testing.AllocsPerRun(500, func() {
		if !p.Contains(hash) {
			t.Fatal("pooled hash not found")
		}
		if p.Contains(absent) {
			t.Fatal("absent hash found")
		}
	})
	if allocs != 0 {
		t.Fatalf("Contains allocations = %v, want 0", allocs)
	}
}
