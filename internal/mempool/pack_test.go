package mempool

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

// chained builds a transaction joined to a conflict chain via a shared
// write key.
func chained(hash, chainKey string) *fakeTx {
	return &fakeTx{hash: hash, fp: Footprint{Writes: []string{"tx:" + hash, chainKey}}}
}

// makespanOf list-schedules a block's conflict-group sizes on w
// workers — the metric Pack(…, w) minimizes, restated over fake
// footprints the way parallel.Plan.Makespan states it over real ones.
func makespanOf(block []Tx, w int) int {
	entries := make([]packEntry, len(block))
	for i, tx := range block {
		entries[i] = packEntry{tx: tx, fp: fakeFootprint(tx)}
	}
	groups := groupEntries(entries)
	if w <= 1 {
		return len(block)
	}
	sizes := make([]int, len(groups))
	for i, g := range groups {
		sizes[i] = len(g)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(sizes)))
	if w > len(sizes) {
		w = len(sizes)
	}
	if w == 0 {
		return 0
	}
	load := make([]int, w)
	for _, sz := range sizes {
		least := 0
		for i := 1; i < w; i++ {
			if load[i] < load[least] {
				least = i
			}
		}
		load[least] += sz
	}
	max := 0
	for _, l := range load {
		if l > max {
			max = l
		}
	}
	return max
}

func fillPool(t *testing.T, policy Policy, workers int, txs []Tx) *Pool {
	t.Helper()
	p := newPool(t, Config{Policy: policy, PackWorkers: workers})
	res := p.AdmitBatch(txs)
	if len(res.Admitted) != len(txs) {
		t.Fatalf("admitted %d of %d", len(res.Admitted), len(txs))
	}
	return p
}

// interleavedWorkload mixes one long conflict chain into independent
// traffic, the arrival pattern where FIFO packs badly.
func interleavedWorkload(n int, chainEvery int) []Tx {
	txs := make([]Tx, 0, n)
	for i := 0; i < n; i++ {
		h := fmt.Sprintf("t%04d", i)
		if chainEvery > 0 && i%chainEvery == 0 {
			txs = append(txs, chained(h, "chain:hot"))
		} else {
			txs = append(txs, indep(h))
		}
	}
	return txs
}

func TestPackFIFOKeepsArrivalPrefix(t *testing.T) {
	txs := interleavedWorkload(32, 3)
	p := fillPool(t, PackFIFO, 4, txs)
	block := p.Pack(10, 4)
	if len(block) != 10 {
		t.Fatalf("block size = %d", len(block))
	}
	for i, tx := range block {
		if tx.Hash() != txs[i].Hash() {
			t.Fatalf("FIFO order broken at %d", i)
		}
	}
}

func TestPackMakespanBeatsFIFOOnChainedTraffic(t *testing.T) {
	const n, blockTxs, workers = 256, 64, 8
	txs := interleavedWorkload(n, 4) // 25% of traffic on one chain
	fifo := fillPool(t, PackFIFO, workers, txs).Pack(blockTxs, workers)
	packed := fillPool(t, PackMakespan, workers, txs).Pack(blockTxs, workers)
	if len(fifo) != blockTxs || len(packed) != blockTxs {
		t.Fatalf("block sizes: fifo=%d packed=%d", len(fifo), len(packed))
	}
	fm, pm := makespanOf(fifo, workers), makespanOf(packed, workers)
	if pm >= fm {
		t.Fatalf("makespan not improved: fifo=%d packed=%d", fm, pm)
	}
}

func TestPackMakespanTwoBigChainsStayBalanced(t *testing.T) {
	// Two 20-tx chains, interleaved arrivals, block of 16 on 4 workers.
	// FIFO picks 8+8 (makespan 8); the greedy pass must not dump its
	// leftover budget into one chain (12+4 would schedule at 12).
	txs := make([]Tx, 0, 40)
	for i := 0; i < 40; i++ {
		txs = append(txs, chained(fmt.Sprintf("t%04d", i), fmt.Sprintf("chain:%d", i%2)))
	}
	const blockTxs, workers = 16, 4
	fifo := fillPool(t, PackFIFO, workers, txs).Pack(blockTxs, workers)
	packed := fillPool(t, PackMakespan, workers, txs).Pack(blockTxs, workers)
	fm, pm := makespanOf(fifo, workers), makespanOf(packed, workers)
	if pm > fm {
		t.Fatalf("leftover budget unbalanced: packed makespan %d > fifo %d", pm, fm)
	}
}

func TestPackMakespanNeverWorseThanFIFO(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 32 + rng.Intn(200)
		blockTxs := 8 + rng.Intn(n)
		workers := 2 + rng.Intn(8)
		chains := 1 + rng.Intn(5)
		txs := make([]Tx, 0, n)
		for i := 0; i < n; i++ {
			h := fmt.Sprintf("t%04d", i)
			if rng.Float64() < 0.4 {
				txs = append(txs, chained(h, fmt.Sprintf("chain:%d", rng.Intn(chains))))
			} else {
				txs = append(txs, indep(h))
			}
		}
		fifo := fillPool(t, PackFIFO, workers, txs).Pack(blockTxs, workers)
		packed := fillPool(t, PackMakespan, workers, txs).Pack(blockTxs, workers)
		if len(fifo) != len(packed) {
			t.Fatalf("trial %d: block sizes differ: %d vs %d", trial, len(fifo), len(packed))
		}
		fm, pm := makespanOf(fifo, workers), makespanOf(packed, workers)
		if pm > fm {
			t.Fatalf("trial %d (n=%d block=%d w=%d): packed makespan %d > fifo %d",
				trial, n, blockTxs, workers, pm, fm)
		}
	}
}

func TestPackMakespanPreservesChainPrefixes(t *testing.T) {
	// A pick from a conflict chain must bring every earlier chain
	// member along: later members may depend on earlier ones.
	const n, blockTxs, workers = 128, 32, 4
	txs := interleavedWorkload(n, 3)
	p := fillPool(t, PackMakespan, workers, txs)
	block := p.Pack(blockTxs, workers)
	picked := make(map[string]bool, len(block))
	for _, tx := range block {
		picked[tx.Hash()] = true
	}
	// Once one chain member is skipped, no later member may appear.
	skipped := false
	for i := 0; i < n; i += 3 { // the chain members, in arrival order
		h := fmt.Sprintf("t%04d", i)
		if !picked[h] {
			skipped = true
		} else if skipped {
			t.Fatalf("chain member %s picked after an earlier member was skipped", h)
		}
	}
}

func TestPackLivenessOldestChainNeverStarved(t *testing.T) {
	// The pool's oldest transaction sits on a huge conflict chain;
	// plenty of fresh independent work competes. The chain's head must
	// still be packed.
	txs := make([]Tx, 0, 300)
	for i := 0; i < 100; i++ {
		txs = append(txs, chained(fmt.Sprintf("c%03d", i), "chain:old"))
	}
	for i := 0; i < 200; i++ {
		txs = append(txs, indep(fmt.Sprintf("f%03d", i)))
	}
	p := fillPool(t, PackMakespan, 4, txs)
	block := p.Pack(64, 4)
	found := false
	for _, tx := range block {
		if tx.Hash() == "c000" {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("oldest pending transaction starved by fresh independent work")
	}
}

func TestPackDeterministic(t *testing.T) {
	txs := interleavedWorkload(200, 5)
	a := fillPool(t, PackMakespan, 8, txs).Pack(64, 8)
	b := fillPool(t, PackMakespan, 8, txs).Pack(64, 8)
	if len(a) != len(b) {
		t.Fatal("sizes differ")
	}
	for i := range a {
		if a[i].Hash() != b[i].Hash() {
			t.Fatalf("pick %d differs: %s vs %s", i, a[i].Hash(), b[i].Hash())
		}
	}
}

func TestPackEverythingFitsKeepsArrivalOrder(t *testing.T) {
	txs := interleavedWorkload(20, 4)
	p := fillPool(t, PackMakespan, 4, txs)
	block := p.Pack(64, 4)
	if len(block) != 20 {
		t.Fatalf("block = %d", len(block))
	}
	for i, tx := range block {
		if tx.Hash() != txs[i].Hash() {
			t.Fatalf("order changed at %d despite full fit", i)
		}
	}
}

func TestPackSequentialWorkersFallsBackToFIFO(t *testing.T) {
	txs := interleavedWorkload(64, 2)
	p := fillPool(t, PackMakespan, 1, txs)
	block := p.Pack(16, 1)
	for i, tx := range block {
		if tx.Hash() != txs[i].Hash() {
			t.Fatalf("w=1 must be FIFO; differs at %d", i)
		}
	}
}
