package mempool

import (
	"time"

	"smartchaindb/internal/obs"
)

// poolObs caches the admission path's metric handles. The zero value
// (all-nil handles) is the no-op build — every obs method is nil-safe —
// so instrumented code never branches on "is observability on"; only
// the tracer's batch-ID slices are guarded, to keep the no-op path
// allocation-free.
type poolObs struct {
	screenDup     *obs.Counter   // mempool.screen_reject_duplicate
	screenClaimed *obs.Counter   // mempool.screen_reject_spend_claimed
	admitted      *obs.Counter   // mempool.admitted
	rejected      *obs.Counter   // mempool.rejected
	reuseHits     *obs.Counter   // mempool.verdict_reuse_hits
	reuseMisses   *obs.Counter   // mempool.verdict_reuse_misses
	batchSize     *obs.Histogram // mempool.admit_batch_size
	screenNs      *obs.Histogram // mempool.screen_ns
	verifyNs      *obs.Histogram // mempool.verify_ns
	packNs        *obs.Histogram // mempool.pack_ns
	live          *obs.Gauge     // mempool.live
	tracer        *obs.Tracer
}

func newPoolObs(reg *obs.Registry) poolObs {
	if reg == nil {
		return poolObs{}
	}
	return poolObs{
		screenDup:     reg.Counter("mempool.screen_reject_duplicate"),
		screenClaimed: reg.Counter("mempool.screen_reject_spend_claimed"),
		admitted:      reg.Counter("mempool.admitted"),
		rejected:      reg.Counter("mempool.rejected"),
		reuseHits:     reg.Counter("mempool.verdict_reuse_hits"),
		reuseMisses:   reg.Counter("mempool.verdict_reuse_misses"),
		batchSize:     reg.Histogram("mempool.admit_batch_size"),
		screenNs:      reg.Histogram("mempool.screen_ns"),
		verifyNs:      reg.Histogram("mempool.verify_ns"),
		packNs:        reg.Histogram("mempool.pack_ns"),
		live:          reg.Gauge("mempool.live"),
		tracer:        reg.Tracer(),
	}
}

// observeStage attributes one admission phase's duration to every
// member transaction's trace. No-op (and allocation-free) without a
// tracer.
func (o *poolObs) observeStage(hashes []string, s obs.Stage, d time.Duration) {
	if o.tracer == nil {
		return
	}
	o.tracer.ObserveEach(hashes, s, d)
}

// hashesOf collects transaction hashes for a tracer batch call; returns
// nil (allocating nothing) when no tracer is attached.
func (o *poolObs) hashesOf(txs []Tx) []string {
	if o.tracer == nil || len(txs) == 0 {
		return nil
	}
	out := make([]string, len(txs))
	for i, tx := range txs {
		out[i] = tx.Hash()
	}
	return out
}
