package mempool

import (
	"fmt"
	"sync"
	"time"

	"smartchaindb/internal/obs"
	"smartchaindb/internal/parallel"
)

// CheckFn validates an admission batch semantically and returns the
// per-transaction errors, keyed by transaction hash. Transactions
// absent from the result are admitted. The server wires this to its
// CheckTx-stage pipeline (schema validation plus the condition sets,
// dispatched over the dependency-aware parallel scheduler); a nil
// CheckFn admits every structurally sound transaction, which the
// synthetic engine tests and packing benchmarks use.
type CheckFn func(txs []Tx) map[string]error

// Policy selects how Pack composes blocks.
type Policy int

const (
	// PackFIFO packs in arrival order — the pre-mempool behaviour and
	// the baseline every makespan improvement is measured against.
	PackFIFO Policy = iota
	// PackMakespan balances conflict-group chains across the
	// validators' workers so the packed block's parallel-validation
	// makespan is minimized. With PackWorkers <= 1 there is nothing to
	// balance and it degenerates to FIFO.
	PackMakespan
)

// Config parameterizes a pool. The zero value is usable: FIFO packing,
// per-transaction batches, default sharding, independent footprints.
type Config struct {
	// Shards is the spend-index shard count (default 16). Point
	// lookups and claims lock a single shard.
	Shards int
	// BatchSize caps one admission batch (default 64). The consensus
	// receiver path accumulates arrivals up to this size while the
	// node's execution resource is busy with the previous batch.
	BatchSize int
	// Policy selects the packing policy.
	Policy Policy
	// PackWorkers is the validation worker count PackMakespan balances
	// for — the proposers' model of the validators' parallelism.
	PackWorkers int
	// Footprint derives declarative footprints (default: ForTransaction).
	Footprint FootprintFn
	// Check is the semantic admission validator (may be nil; see CheckFn).
	Check CheckFn
	// Obs attaches an observability registry: admission counters and
	// phase histograms (mempool.*) plus the per-transaction stage
	// tracer. Nil keeps the no-op build.
	Obs *obs.Registry
}

func (c *Config) fill() {
	if c.Shards <= 0 {
		c.Shards = 16
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 64
	}
	if c.Footprint == nil {
		c.Footprint = ForTransaction
	}
}

// ErrDuplicate rejects a transaction whose ID the pool already holds.
type ErrDuplicate struct{ TxHash string }

func (e *ErrDuplicate) Error() string {
	return fmt.Sprintf("mempool: transaction %.12s already pending", e.TxHash)
}

// ErrSpendClaimed rejects a transaction that spends an output another
// pending transaction already claims — at most one of the two can ever
// commit, and the pool keeps the first.
type ErrSpendClaimed struct {
	TxHash    string
	Key       string
	ClaimedBy string
}

func (e *ErrSpendClaimed) Error() string {
	return fmt.Sprintf("mempool: %s already claimed by pending transaction %.12s", e.Key, e.ClaimedBy)
}

// entry is one pooled transaction. Arrival order is the order slice's
// order; entries carry no sequence number of their own.
type entry struct {
	tx       Tx
	fp       Footprint
	reserved bool
	gone     bool
	// stale is the verdict-reuse flag: false means the admission
	// verdict was computed against committed state alone and no block
	// committed since has written into this transaction's footprint —
	// so block validation may skip its semantic re-check. It starts
	// true for transactions whose admission batch contained a
	// footprint-conflicting member (their verdict may have leaned on
	// in-flight, not-yet-committed state) and flips true whenever the
	// commit sweep observes a conflicting write.
	stale bool
}

// indexShard is one slice of the spend index: spend key -> hash of the
// pending claimant.
type indexShard struct {
	mu     sync.Mutex
	claims map[string]string
}

// Pool is the footprint-indexed mempool.
type Pool struct {
	cfg Config
	ob  poolObs

	mu     sync.RWMutex
	byHash map[string]*entry
	order  []*entry // arrival order, with tombstones compacted lazily
	live   int
	// keyIndex maps every footprint key (reads and writes) of every
	// live entry to its holders — the staleness sweep: when a block
	// commits, each of its write keys marks the pending holders stale
	// in O(holders), independent of pool size. Guarded by mu (all
	// writers already hold it), unlike the lock-free spend shards.
	keyIndex map[string]map[*entry]struct{}
	// sweepEpoch counts RemoveCommitted sweeps. An admission batch
	// records it before semantic validation; candidates inserted after
	// the epoch moved enter stale — their verdict raced a commit whose
	// write keys could not have marked them (they were not indexed
	// yet), so freshness must not be assumed.
	sweepEpoch uint64

	shards []*indexShard
}

// New builds an empty pool.
func New(cfg Config) *Pool {
	cfg.fill()
	p := &Pool{
		cfg:      cfg,
		ob:       newPoolObs(cfg.Obs),
		byHash:   make(map[string]*entry),
		keyIndex: make(map[string]map[*entry]struct{}),
		shards:   make([]*indexShard, cfg.Shards),
	}
	for i := range p.shards {
		p.shards[i] = &indexShard{claims: make(map[string]string)}
	}
	return p
}

func (p *Pool) shardFor(key string) *indexShard {
	// Inline FNV-1a: the spend index is the O(1) hot path, and
	// hash/fnv would allocate a hasher plus a []byte copy per lookup.
	const offset32, prime32 = 2166136261, 16777619
	h := uint32(offset32)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= prime32
	}
	return p.shards[h%uint32(len(p.shards))]
}

// claimant returns the pending transaction holding a spend key, if any.
func (p *Pool) claimant(key string) (string, bool) {
	s := p.shardFor(key)
	s.mu.Lock()
	owner, ok := s.claims[key]
	s.mu.Unlock()
	return owner, ok
}

// Contains reports whether the pool holds a transaction.
func (p *Pool) Contains(hash string) bool {
	p.mu.RLock()
	_, ok := p.byHash[hash]
	p.mu.RUnlock()
	return ok
}

// Len returns the pooled transaction count, including reserved ones.
func (p *Pool) Len() int {
	p.mu.RLock()
	n := p.live
	p.mu.RUnlock()
	return n
}

// PendingCount returns the packable transaction count (unreserved).
func (p *Pool) PendingCount() int {
	p.mu.RLock()
	defer p.mu.RUnlock()
	n := 0
	for _, e := range p.order {
		if !e.gone && !e.reserved {
			n++
		}
	}
	return n
}

// Pending returns the packable transactions in arrival order.
func (p *Pool) Pending() []Tx {
	p.mu.RLock()
	defer p.mu.RUnlock()
	out := make([]Tx, 0, p.live)
	for _, e := range p.order {
		if !e.gone && !e.reserved {
			out = append(out, e.tx)
		}
	}
	return out
}

// BatchSize exposes the configured admission batch cap.
func (p *Pool) BatchSize() int { return p.cfg.BatchSize }

// AdmitResult reports one admission batch's outcome.
type AdmitResult struct {
	// Admitted holds the transactions now in the pool, batch order.
	Admitted []Tx
	// Rejected holds semantic CheckFn failures — the rejections a
	// receiver reports back to the client as permanent.
	Rejected map[string]error
	// Skipped holds structural screen-outs: duplicate IDs and spend
	// claims already held by a pending rival. These are not permanent
	// verdicts (the rival may yet be evicted), so callers treat them
	// as "drop and let the client retry".
	Skipped map[string]error
}

// Add admits a single transaction; it is AdmitBatch of one, returning
// that transaction's rejection (semantic or structural), if any.
func (p *Pool) Add(tx Tx) error {
	res := p.AdmitBatch([]Tx{tx})
	if err, ok := res.Rejected[tx.Hash()]; ok {
		return err
	}
	if err, ok := res.Skipped[tx.Hash()]; ok {
		return err
	}
	return nil
}

// AdmitBatch pushes one batch through the admission pipeline:
//
//  1. Structural screen against the indexes — duplicate IDs (in the
//     pool or earlier in the batch) and already-claimed spend keys are
//     skipped in O(1) per key, before any semantic work.
//  2. Semantic validation of the survivors through CheckFn (the
//     expensive stage — signature checks and condition sets — which
//     the server runs concurrently over conflict groups).
//  3. Insertion under the pool lock, re-verifying the structural
//     claims that may have been lost to a concurrent batch.
func (p *Pool) AdmitBatch(txs []Tx) AdmitResult {
	res := AdmitResult{
		Rejected: make(map[string]error),
		Skipped:  make(map[string]error),
	}
	// Close the recv stage for every batch member: dwell is the time
	// since the receiver's Arrive (zero for transactions that entered
	// through a path with no arrival stamp).
	if p.ob.tracer != nil {
		p.ob.tracer.MarkReceived(p.ob.hashesOf(txs))
	}
	p.ob.batchSize.Observe(int64(len(txs)))
	screenT := time.Now()
	type candidate struct {
		tx Tx
		fp Footprint
		// dep marks a candidate that footprint-conflicts with another
		// member of this batch: its semantic verdict may have consulted
		// in-flight batch state (ResolveTx/SpentBy hit the admission
		// batch before committed state), so it enters the pool stale —
		// ineligible for verdict reuse until block validation re-proves
		// it.
		dep bool
	}
	cands := make([]candidate, 0, len(txs))
	p.mu.RLock()
	epoch := p.sweepEpoch
	p.mu.RUnlock()
	batchSeen := make(map[string]bool, len(txs))
	batchClaims := make(map[string]string)
	for _, tx := range txs {
		h := tx.Hash()
		if batchSeen[h] || p.Contains(h) {
			res.Skipped[h] = &ErrDuplicate{TxHash: h}
			p.ob.screenDup.Inc()
			continue
		}
		fp := p.cfg.Footprint(tx)
		var clash error
		for _, key := range fp.Spends {
			if owner, ok := batchClaims[key]; ok {
				clash = &ErrSpendClaimed{TxHash: h, Key: key, ClaimedBy: owner}
				break
			}
			if owner, ok := p.claimant(key); ok {
				clash = &ErrSpendClaimed{TxHash: h, Key: key, ClaimedBy: owner}
				break
			}
		}
		if clash != nil {
			res.Skipped[h] = clash
			p.ob.screenClaimed.Inc()
			continue
		}
		batchSeen[h] = true
		for _, key := range fp.Spends {
			batchClaims[key] = h
		}
		cands = append(cands, candidate{tx: tx, fp: fp})
	}
	screenD := time.Since(screenT)
	p.ob.screenNs.ObserveDuration(screenD)
	if p.ob.tracer != nil && len(cands) > 0 {
		ids := make([]string, len(cands))
		for i, c := range cands {
			ids[i] = c.tx.Hash()
		}
		p.ob.tracer.ObserveEach(ids, obs.StageAdmitScreen, screenD)
	}

	if len(cands) > 1 {
		fps := make([]parallel.Footprint, len(cands))
		for i, c := range cands {
			fps[i] = parallel.Footprint{Writes: c.fp.Writes, Reads: c.fp.Reads}
		}
		for _, g := range parallel.GroupFootprints(fps) {
			if len(g) > 1 {
				for _, i := range g {
					cands[i].dep = true
				}
			}
		}
	}

	var verifyD time.Duration
	if p.cfg.Check != nil && len(cands) > 0 {
		checked := make([]Tx, len(cands))
		for i, c := range cands {
			checked[i] = c.tx
		}
		verifyT := time.Now()
		errs := p.cfg.Check(checked)
		verifyD = time.Since(verifyT)
		p.ob.verifyNs.ObserveDuration(verifyD)
		kept := cands[:0]
		for _, c := range cands {
			if err, bad := errs[c.tx.Hash()]; bad {
				res.Rejected[c.tx.Hash()] = err
				p.ob.rejected.Inc()
				continue
			}
			kept = append(kept, c)
		}
		cands = kept
	}
	// Surviving candidates carry the semantic phase's latency (zero
	// when admission runs without a CheckFn).
	if p.ob.tracer != nil && len(cands) > 0 {
		ids := make([]string, len(cands))
		for i, c := range cands {
			ids[i] = c.tx.Hash()
		}
		p.ob.tracer.ObserveEach(ids, obs.StageAdmitVerify, verifyD)
	}

	// Rescue round: a transaction screened out because a same-batch
	// rival claimed its spend key is admittable after all if that
	// rival just failed semantic validation — re-admit it after the
	// survivors instead of making the client wait out a retry
	// round-trip. Recursion terminates: each round's input is strictly
	// smaller than the batch that produced it.
	var rescues []Tx
	for _, tx := range txs {
		h := tx.Hash()
		clash, ok := res.Skipped[h].(*ErrSpendClaimed)
		if !ok {
			continue
		}
		if _, rejected := res.Rejected[clash.ClaimedBy]; rejected {
			rescues = append(rescues, tx)
			delete(res.Skipped, h)
		}
	}

	if len(cands) > 0 {
		p.mu.Lock()
		for _, c := range cands {
			h := c.tx.Hash()
			if _, dup := p.byHash[h]; dup {
				res.Skipped[h] = &ErrDuplicate{TxHash: h}
				p.ob.screenDup.Inc()
				continue
			}
			// Re-verify the claims under the pool lock: a concurrent
			// batch may have taken one between the screen and here.
			lost := false
			for _, key := range c.fp.Spends {
				if owner, ok := p.claimant(key); ok {
					res.Skipped[h] = &ErrSpendClaimed{TxHash: h, Key: key, ClaimedBy: owner}
					p.ob.screenClaimed.Inc()
					lost = true
					break
				}
			}
			if lost {
				continue
			}
			// A commit sweep that ran while this batch validated could
			// not see these entries in the key index; treat the whole
			// batch's verdicts as conservatively stale in that case.
			e := &entry{tx: c.tx, fp: c.fp, stale: c.dep || p.sweepEpoch != epoch}
			p.byHash[h] = e
			p.order = append(p.order, e)
			p.live++
			p.indexKeysLocked(e)
			for _, key := range c.fp.Spends {
				s := p.shardFor(key)
				s.mu.Lock()
				s.claims[key] = h
				s.mu.Unlock()
			}
			res.Admitted = append(res.Admitted, c.tx)
			p.ob.admitted.Inc()
		}
		p.ob.live.Set(int64(p.live))
		p.mu.Unlock()
	}

	if len(rescues) > 0 {
		sub := p.AdmitBatch(rescues)
		res.Admitted = append(res.Admitted, sub.Admitted...)
		for h, err := range sub.Rejected {
			res.Rejected[h] = err
		}
		for h, err := range sub.Skipped {
			res.Skipped[h] = err
		}
	}
	if p.ob.tracer != nil && (len(res.Rejected) > 0 || len(res.Skipped) > 0) {
		drop := make([]string, 0, len(res.Rejected)+len(res.Skipped))
		for h := range res.Rejected {
			drop = append(drop, h)
		}
		for h, err := range res.Skipped {
			// A duplicate shares its hash with the pooled original, whose
			// live trace must survive the rejection of its copy.
			if _, dup := err.(*ErrDuplicate); !dup {
				drop = append(drop, h)
			}
		}
		p.ob.tracer.Drop(drop)
	}
	return res
}

// Hold claims spend keys on behalf of a cross-shard transaction that
// never enters this pool: while held, the admission screen rejects any
// pooled rival spending them, exactly as if a pending transaction held
// the claim. All-or-nothing — if any key is already claimed by a
// different owner, nothing is taken and the clash is returned (the
// coordinator's signal to abort). Holding a key the same owner already
// holds is a no-op, so retries are idempotent. Pair with Release; the
// commit sweep does not release foreign holds.
func (p *Pool) Hold(keys []string, owner string) error {
	// The pool lock excludes AdmitBatch's insert phase and rival Holds,
	// making check-then-claim atomic against both.
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, key := range keys {
		if cur, ok := p.claimant(key); ok && cur != owner {
			return &ErrSpendClaimed{TxHash: owner, Key: key, ClaimedBy: cur}
		}
	}
	for _, key := range keys {
		s := p.shardFor(key)
		s.mu.Lock()
		s.claims[key] = owner
		s.mu.Unlock()
	}
	return nil
}

// Release drops the owner's claim holds. Keys the owner does not hold
// (raced by an eviction, or never taken) are left untouched.
func (p *Pool) Release(keys []string, owner string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, key := range keys {
		s := p.shardFor(key)
		s.mu.Lock()
		if s.claims[key] == owner {
			delete(s.claims, key)
		}
		s.mu.Unlock()
	}
}

// Reserve marks transactions as belonging to a precommitted-but-not-
// finalized block (consensus pipelining); Pack and Pending skip them.
// Unknown hashes are ignored.
func (p *Pool) Reserve(txs []Tx) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, tx := range txs {
		if e, ok := p.byHash[tx.Hash()]; ok {
			e.reserved = true
		}
	}
}

// Remove evicts transactions (e.g. ones block validation rejected) and
// releases their spend claims. Unknown hashes are ignored.
func (p *Pool) Remove(txs []Tx) {
	p.mu.Lock()
	for _, tx := range txs {
		if e, ok := p.byHash[tx.Hash()]; ok {
			p.dropLocked(e)
		}
	}
	p.compactLocked()
	p.ob.live.Set(int64(p.live))
	p.mu.Unlock()
	// Evicted transactions leave the pipeline uncommitted.
	if p.ob.tracer != nil {
		p.ob.tracer.Drop(p.ob.hashesOf(txs))
	}
}

// RemoveCommitted is the block-commit compaction: an index sweep, not a
// rescan. Each committed transaction is dropped from the pool, each of
// its spend keys evicts the pending rival claiming it (that rival
// spends an output the chain just consumed, so it can never commit),
// and each of its write keys marks the pending transactions whose
// footprints it touches stale — their admission verdicts no longer
// describe committed state and block validation must re-prove them.
// Cost is linear in the block's footprint keys, independent of pool
// size.
func (p *Pool) RemoveCommitted(txs []Tx) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.sweepEpoch++
	for _, tx := range txs {
		h := tx.Hash()
		e, pooled := p.byHash[h]
		var writes []string
		if pooled {
			writes = e.fp.Writes
		} else {
			// Committed through catch-up without ever entering this
			// pool: derive the footprint to sweep by.
			fp := p.cfg.Footprint(tx)
			writes = fp.Writes
			for _, key := range fp.Spends {
				if owner, ok := p.claimant(key); ok && owner != h {
					if rival, live := p.byHash[owner]; live {
						p.dropLocked(rival)
					}
				}
			}
		}
		// Staleness sweep: every pending holder of a key this commit
		// wrote loses its cached verdict.
		for _, key := range writes {
			for holder := range p.keyIndex[key] {
				if !holder.gone {
					holder.stale = true
				}
			}
		}
		if pooled {
			// Dropping the entry releases its cached claims, and no
			// rival can have held a spend key it held — no rival sweep
			// needed.
			p.dropLocked(e)
		}
	}
	p.compactLocked()
	p.ob.live.Set(int64(p.live))
}

// Fresh reports, per transaction, whether the pool holds it with a
// still-valid admission verdict: validated against committed state
// alone, with no conflicting write committed since. Block validation
// uses the flags to skip semantic re-checks for the fresh ones
// (structural intra-block checks always re-run). Unknown transactions
// report false.
func (p *Pool) Fresh(txs []Tx) []bool {
	out := make([]bool, len(txs))
	p.mu.RLock()
	defer p.mu.RUnlock()
	for i, tx := range txs {
		if e, ok := p.byHash[tx.Hash()]; ok {
			out[i] = !e.stale
		}
		if out[i] {
			p.ob.reuseHits.Inc()
		} else {
			p.ob.reuseMisses.Inc()
		}
	}
	return out
}

// Epoch returns the current commit-sweep epoch. Callers that intend to
// MarkValidated snapshot it before validation begins; a sweep in
// between moves the epoch and voids the marking.
func (p *Pool) Epoch() uint64 {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.sweepEpoch
}

// MarkValidated re-arms verdict reuse after a clean block validation:
// a ValidateBlock pass that rejected nothing re-proved every member
// against committed state, so pooled members whose conflict group
// *within the block* is a singleton get their stale flag cleared —
// their re-proven verdict depends on committed state alone. Members of
// multi-transaction groups stay stale: their clean verdict leaned on
// in-block prior state (an intra-block spend chain), which is not
// committed state until the block itself commits.
//
// epoch is the Epoch() snapshot taken before validation started. If a
// commit sweep ran since, the marking is dropped wholesale — the
// sweep's staling must not be overwritten by a verdict proven against
// pre-sweep state. This closes the PR 4 follow-up: without it, only
// admission granted freshness, so conflict-heavy pools re-validated
// every propose round even after a clean validation.
func (p *Pool) MarkValidated(txs []Tx, epoch uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.sweepEpoch != epoch {
		return
	}
	entries := make([]*entry, len(txs))
	fps := make([]parallel.Footprint, len(txs))
	for i, tx := range txs {
		// Non-pooled members (e.g. from a foreign proposer) still
		// contribute their footprints: they decide whether a pooled
		// member's group is a singleton.
		if e, ok := p.byHash[tx.Hash()]; ok {
			entries[i] = e
			fps[i] = parallel.Footprint{Writes: e.fp.Writes, Reads: e.fp.Reads}
		} else {
			fp := p.cfg.Footprint(tx)
			fps[i] = parallel.Footprint{Writes: fp.Writes, Reads: fp.Reads}
		}
	}
	for _, g := range parallel.GroupFootprints(fps) {
		if len(g) != 1 {
			continue
		}
		if e := entries[g[0]]; e != nil && !e.gone {
			e.stale = false
		}
	}
}

// indexKeysLocked registers an entry under every footprint key the
// staleness sweep may probe. Caller holds p.mu.
func (p *Pool) indexKeysLocked(e *entry) {
	for _, keys := range [][]string{e.fp.Writes, e.fp.Reads} {
		for _, key := range keys {
			set, ok := p.keyIndex[key]
			if !ok {
				set = make(map[*entry]struct{})
				p.keyIndex[key] = set
			}
			set[e] = struct{}{}
		}
	}
}

// unindexKeysLocked removes an entry from the key index. Caller holds
// p.mu.
func (p *Pool) unindexKeysLocked(e *entry) {
	for _, keys := range [][]string{e.fp.Writes, e.fp.Reads} {
		for _, key := range keys {
			if set, ok := p.keyIndex[key]; ok {
				delete(set, e)
				if len(set) == 0 {
					delete(p.keyIndex, key)
				}
			}
		}
	}
}

// dropLocked removes one entry and releases its claims. Caller holds p.mu.
func (p *Pool) dropLocked(e *entry) {
	if e.gone {
		return
	}
	h := e.tx.Hash()
	e.gone = true
	p.live--
	delete(p.byHash, h)
	p.unindexKeysLocked(e)
	for _, key := range e.fp.Spends {
		s := p.shardFor(key)
		s.mu.Lock()
		if s.claims[key] == h {
			delete(s.claims, key)
		}
		s.mu.Unlock()
	}
}

// compactLocked rewrites the arrival list once tombstones dominate,
// keeping removal amortized O(1). Caller holds p.mu.
func (p *Pool) compactLocked() {
	if len(p.order) < 32 || len(p.order) < 2*p.live {
		return
	}
	kept := make([]*entry, 0, p.live)
	for _, e := range p.order {
		if !e.gone {
			kept = append(kept, e)
		}
	}
	p.order = kept
}
