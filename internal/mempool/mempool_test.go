package mempool

import (
	"errors"
	"fmt"
	"testing"
)

// fakeTx is a string-hashed transaction with a synthetic footprint.
type fakeTx struct {
	hash string
	fp   Footprint
}

func (t *fakeTx) Hash() string { return t.hash }

// fakeFootprint reads the footprint off the fake transaction itself.
func fakeFootprint(tx Tx) Footprint { return tx.(*fakeTx).fp }

func newPool(t *testing.T, cfg Config) *Pool {
	t.Helper()
	if cfg.Footprint == nil {
		cfg.Footprint = fakeFootprint
	}
	return New(cfg)
}

// spender builds a transaction spending the given keys (conflict
// grouping sees them as writes too, as real spends are).
func spender(hash string, keys ...string) *fakeTx {
	return &fakeTx{hash: hash, fp: Footprint{Spends: keys, Writes: append([]string{"tx:" + hash}, keys...)}}
}

// indep builds a fully independent transaction.
func indep(hash string) *fakeTx {
	return &fakeTx{hash: hash, fp: Footprint{Writes: []string{"tx:" + hash}}}
}

func admit(t *testing.T, p *Pool, txs ...Tx) AdmitResult {
	t.Helper()
	return p.AdmitBatch(txs)
}

func TestAdmitAndContains(t *testing.T) {
	p := newPool(t, Config{})
	res := admit(t, p, indep("a"), indep("b"))
	if len(res.Admitted) != 2 || len(res.Skipped) != 0 || len(res.Rejected) != 0 {
		t.Fatalf("admit = %+v", res)
	}
	if !p.Contains("a") || !p.Contains("b") || p.Contains("c") {
		t.Error("Contains wrong")
	}
	if p.Len() != 2 || p.PendingCount() != 2 {
		t.Errorf("Len=%d Pending=%d", p.Len(), p.PendingCount())
	}
}

func TestDuplicateIDRejectedAtAdmission(t *testing.T) {
	p := newPool(t, Config{})
	a := indep("a")
	admit(t, p, a)
	// Duplicate against the pool.
	res := admit(t, p, a)
	var dup *ErrDuplicate
	if err := res.Skipped["a"]; !errors.As(err, &dup) {
		t.Fatalf("pool duplicate not skipped: %v", res)
	}
	// Duplicate within one batch.
	b := indep("b")
	res = admit(t, p, b, b)
	if len(res.Admitted) != 1 {
		t.Fatalf("batch duplicate admitted twice: %+v", res)
	}
	if err := res.Skipped["b"]; !errors.As(err, &dup) {
		t.Fatalf("batch duplicate not skipped: %v", res)
	}
	if p.Len() != 2 {
		t.Errorf("Len = %d, want 2", p.Len())
	}
}

func TestSpendClaimRejectedAndReleasedOnRemove(t *testing.T) {
	p := newPool(t, Config{})
	a := spender("a", "utxo:x")
	b := spender("b", "utxo:x")
	admit(t, p, a)
	res := admit(t, p, b)
	var clash *ErrSpendClaimed
	if err := res.Skipped["b"]; !errors.As(err, &clash) || clash.ClaimedBy != "a" {
		t.Fatalf("rival spend not skipped: %+v", res)
	}
	// Evicting the claimant releases the key for a later admission.
	p.Remove([]Tx{a})
	if res := admit(t, p, b); len(res.Admitted) != 1 {
		t.Fatalf("spend key not released after Remove: %+v", res)
	}
}

func TestIntraBatchSpendConflict(t *testing.T) {
	p := newPool(t, Config{})
	res := admit(t, p, spender("a", "utxo:x"), spender("b", "utxo:x"))
	if len(res.Admitted) != 1 || res.Admitted[0].Hash() != "a" {
		t.Fatalf("first claimant should win in batch order: %+v", res)
	}
	if _, ok := res.Skipped["b"]; !ok {
		t.Fatal("second claimant not skipped")
	}
}

func TestCheckRejectionsArePerTransaction(t *testing.T) {
	bad := errors.New("semantic failure")
	p := newPool(t, Config{
		Check: func(txs []Tx) map[string]error {
			errs := make(map[string]error)
			for _, tx := range txs {
				if tx.Hash() == "evil" {
					errs[tx.Hash()] = bad
				}
			}
			return errs
		},
	})
	res := admit(t, p, indep("good"), indep("evil"), indep("fine"))
	if len(res.Admitted) != 2 {
		t.Fatalf("admitted = %d, want 2", len(res.Admitted))
	}
	if !errors.Is(res.Rejected["evil"], bad) {
		t.Fatalf("rejection missing: %+v", res.Rejected)
	}
	if p.Contains("evil") {
		t.Error("rejected transaction entered the pool")
	}
}

func TestRivalOfRejectedClaimantRescuedInSameBatch(t *testing.T) {
	bad := errors.New("bad signature")
	p := newPool(t, Config{
		Check: func(txs []Tx) map[string]error {
			errs := make(map[string]error)
			for _, tx := range txs {
				if tx.Hash() == "a" {
					errs["a"] = bad
				}
			}
			return errs
		},
	})
	// a claims utxo:x first but fails semantically; b — screened out by
	// a's claim — must be admitted in the same batch, not bounced to a
	// client retry. c chains behind b's claim through a, transitively.
	a := spender("a", "utxo:x")
	b := spender("b", "utxo:x")
	res := admit(t, p, a, b)
	if !errors.Is(res.Rejected["a"], bad) {
		t.Fatalf("claimant not rejected: %+v", res)
	}
	if len(res.Admitted) != 1 || res.Admitted[0].Hash() != "b" {
		t.Fatalf("rival not rescued: %+v", res)
	}
	if !p.Contains("b") || p.Contains("a") {
		t.Error("pool contents wrong after rescue")
	}
	// Two rivals blocked by the same rejected claimant: the rescue
	// round re-arbitrates between them, first in batch order wins.
	p2 := newPool(t, Config{
		Check: func(txs []Tx) map[string]error {
			for _, tx := range txs {
				if tx.Hash() == "a" {
					return map[string]error{"a": bad}
				}
			}
			return nil
		},
	})
	res = admit(t, p2, spender("a", "utxo:y"), spender("b", "utxo:y"), spender("c", "utxo:y"))
	if len(res.Admitted) != 1 || res.Admitted[0].Hash() != "b" {
		t.Fatalf("rescue arbitration wrong: %+v", res)
	}
	if _, ok := res.Skipped["c"]; !ok {
		t.Fatalf("losing rescue not re-skipped: %+v", res)
	}
}

func TestCheckSkippedForScreenedTransactions(t *testing.T) {
	checked := make(map[string]int)
	p := newPool(t, Config{
		Check: func(txs []Tx) map[string]error {
			for _, tx := range txs {
				checked[tx.Hash()]++
			}
			return nil
		},
	})
	a := spender("a", "utxo:x")
	admit(t, p, a)
	// Resubmitted duplicate and a pending rival: neither may reach the
	// semantic validator — that skip is the admission fast path.
	admit(t, p, a, spender("b", "utxo:x"))
	if checked["a"] != 1 {
		t.Errorf("duplicate re-validated: %d", checked["a"])
	}
	if checked["b"] != 0 {
		t.Errorf("screened rival validated: %d", checked["b"])
	}
}

func TestRemoveCommittedSweepsTransactionAndRivals(t *testing.T) {
	p := newPool(t, Config{})
	a := spender("a", "utxo:x")
	c := indep("c")
	admit(t, p, a, c)
	// A block commits a foreign transaction (never pooled here) that
	// consumed utxo:x — the pending claimant can never commit now.
	foreign := spender("f", "utxo:x")
	p.RemoveCommitted([]Tx{foreign})
	if p.Contains("a") {
		t.Error("stale rival survived the commit sweep")
	}
	if !p.Contains("c") {
		t.Error("unrelated transaction swept")
	}
	// Committing a pooled transaction removes it and frees its claims.
	p.RemoveCommitted([]Tx{c})
	if p.Contains("c") || p.Len() != 0 {
		t.Error("committed transaction survived")
	}
}

func TestReserveExcludesFromPackingUntilCommit(t *testing.T) {
	p := newPool(t, Config{})
	a, b := indep("a"), indep("b")
	admit(t, p, a, b)
	p.Reserve([]Tx{a})
	if p.PendingCount() != 1 {
		t.Fatalf("PendingCount = %d, want 1", p.PendingCount())
	}
	if got := p.Pack(10, 1); len(got) != 1 || got[0].Hash() != "b" {
		t.Fatalf("Pack over reserved = %v", got)
	}
	if p.Len() != 2 {
		t.Errorf("reserved tx left the pool")
	}
	p.RemoveCommitted([]Tx{a})
	if p.Len() != 1 {
		t.Errorf("commit did not clear reserved entry")
	}
}

func TestArrivalOrderSurvivesChurn(t *testing.T) {
	p := newPool(t, Config{})
	var want []string
	for i := 0; i < 100; i++ {
		h := fmt.Sprintf("t%03d", i)
		admit(t, p, indep(h))
		want = append(want, h)
	}
	// Remove a scattered half to force tombstone compaction.
	var removed []Tx
	var kept []string
	for i, h := range want {
		if i%2 == 0 {
			removed = append(removed, indep(h))
		} else {
			kept = append(kept, h)
		}
	}
	p.RemoveCommitted(removed)
	got := p.Pending()
	if len(got) != len(kept) {
		t.Fatalf("pending = %d, want %d", len(got), len(kept))
	}
	for i, tx := range got {
		if tx.Hash() != kept[i] {
			t.Fatalf("order broken at %d: %s != %s", i, tx.Hash(), kept[i])
		}
	}
}

func TestAddSingle(t *testing.T) {
	p := newPool(t, Config{})
	if err := p.Add(indep("a")); err != nil {
		t.Fatal(err)
	}
	if err := p.Add(indep("a")); err == nil {
		t.Fatal("duplicate Add succeeded")
	}
}
