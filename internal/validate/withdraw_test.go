package validate

import (
	"errors"
	"testing"

	"smartchaindb/internal/keys"
	"smartchaindb/internal/txn"
)

// withdrawWorld sets up a committed RFQ with two escrowed bids.
func withdrawWorld(t *testing.T) (*world, *txn.Transaction, []*txn.Transaction, []*keys.KeyPair) {
	t.Helper()
	w := newWorld(t)
	rfq := w.request("cnc")
	w.mustCommit(rfq)
	b1, b2 := keys.MustGenerate(), keys.MustGenerate()
	bid1 := w.bid(b1, rfq.ID, "cnc")
	w.mustCommit(bid1)
	bid2 := w.bid(b2, rfq.ID, "cnc")
	w.mustCommit(bid2)
	return w, rfq, []*txn.Transaction{bid1, bid2}, []*keys.KeyPair{b1, b2}
}

func TestWithdrawBidHappyPath(t *testing.T) {
	w, rfq, bids, bidders := withdrawWorld(t)
	wd, err := NewWithdrawBid(w.escrow.PublicBase58(), bidders[0].PublicBase58(), bids[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := txn.Sign(wd, w.escrow, bidders[0]); err != nil {
		t.Fatal(err)
	}
	if err := w.validate(wd); err != nil {
		t.Fatalf("withdraw: %v", err)
	}
	if err := w.state.CommitTx(wd); err != nil {
		t.Fatal(err)
	}
	// The bidder has the backing asset again.
	bidTx, _ := w.state.GetTx(bids[0].ID)
	if w.state.Balance(bidders[0].PublicBase58(), bidTx.AssetID()) != 1 {
		t.Error("bidder should have the asset back")
	}
	// Withdrawn bids no longer count as locked.
	if locked := w.state.LockedBidsForRFQ(rfq.ID); len(locked) != 1 {
		t.Fatalf("locked = %d, want 1", len(locked))
	}
	// ACCEPT_BID composes: only the remaining bid is spendable.
	acc := w.accept(rfq, bids[1])
	if err := w.validate(acc); err != nil {
		t.Fatalf("accept after withdrawal: %v", err)
	}
}

func TestWithdrawBidAuthorization(t *testing.T) {
	w, _, bids, _ := withdrawWorld(t)
	eve := keys.MustGenerate()
	// Eve builds a withdrawal routing the shares to herself.
	wd, err := NewWithdrawBid(w.escrow.PublicBase58(), eve.PublicBase58(), bids[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := txn.Sign(wd, w.escrow, eve); err != nil {
		t.Fatal(err)
	}
	if err := w.validate(wd); err == nil {
		t.Fatal("withdrawal to a non-bidder should fail")
	}
}

func TestWithdrawBidAfterAcceptRejected(t *testing.T) {
	w, rfq, bids, bidders := withdrawWorld(t)
	acc := w.accept(rfq, bids[0], bids[1])
	w.mustCommit(acc)
	wd, err := NewWithdrawBid(w.escrow.PublicBase58(), bidders[1].PublicBase58(), bids[1])
	if err != nil {
		t.Fatal(err)
	}
	if err := txn.Sign(wd, w.escrow, bidders[1]); err != nil {
		t.Fatal(err)
	}
	err = w.validate(wd)
	if err == nil {
		t.Fatal("withdrawal after settlement should fail")
	}
	// Either WITHDRAW.5 fires or the double-spend check catches the
	// already-spent escrow output — both are correct rejections.
	var ds *txn.DoubleSpendError
	var ve *txn.ValidationError
	if !errors.As(err, &ds) && !errors.As(err, &ve) {
		t.Errorf("unexpected error type: %v", err)
	}
}

func TestWithdrawBidPartialAmountRejected(t *testing.T) {
	w, _, bids, bidders := withdrawWorld(t)
	wd, err := NewWithdrawBid(w.escrow.PublicBase58(), bidders[0].PublicBase58(), bids[0])
	if err != nil {
		t.Fatal(err)
	}
	wd.Outputs[0].Amount = 2 // bid escrowed 1 share
	if err := txn.Sign(wd, w.escrow, bidders[0]); err != nil {
		t.Fatal(err)
	}
	if err := w.validate(wd); err == nil {
		t.Fatal("withdrawal of the wrong amount should fail")
	}
}

func TestWithdrawBidMustSpendABid(t *testing.T) {
	w, _, _, bidders := withdrawWorld(t)
	// Target a CREATE output instead of a BID output.
	asset := w.create(bidders[0], 1, "cnc")
	w.mustCommit(asset)
	// Hand-build a withdrawal spending the CREATE (escrow never owned it).
	wd := &txn.Transaction{
		Operation: OpWithdrawBid,
		Asset:     &txn.Asset{ID: asset.ID},
		Inputs: []*txn.Input{{
			Fulfills:     &txn.OutputRef{TxID: asset.ID, Index: 0},
			OwnersBefore: []string{w.escrow.PublicBase58(), bidders[0].PublicBase58()},
		}},
		Outputs: []*txn.Output{{PublicKeys: []string{bidders[0].PublicBase58()}, Amount: 1}},
		Refs:    []string{asset.ID},
		Version: txn.Version,
	}
	if err := txn.Sign(wd, w.escrow, bidders[0]); err != nil {
		t.Fatal(err)
	}
	if err := w.validate(wd); err == nil {
		t.Fatal("withdrawal of a non-bid output should fail")
	}
}

func TestWithdrawBidSchemaRegistered(t *testing.T) {
	w, _, bids, bidders := withdrawWorld(t)
	wd, err := NewWithdrawBid(w.escrow.PublicBase58(), bidders[0].PublicBase58(), bids[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := txn.Sign(wd, w.escrow, bidders[0]); err != nil {
		t.Fatal(err)
	}
	// The embedded schema registry knows the extension type too.
	if err := w.schemas().ValidateTx(wd); err != nil {
		t.Fatalf("schema validation: %v", err)
	}
}
