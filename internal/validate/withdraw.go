package validate

import (
	"fmt"

	"smartchaindb/internal/txn"
	"smartchaindb/internal/txtype"
)

// OpWithdrawBid is the extension transaction type of the repository:
// a bidder retracts an escrow-held BID before acceptance. The paper
// lists bid withdrawal among the behaviours smart contracts must
// hand-code ("managing bid withdrawals and deletions by authorized
// parties only"); in the declarative model it is one schema and one
// condition set. It composes with ACCEPT_BID automatically: a
// withdrawn bid's escrow output is spent, so it no longer counts as a
// locked bid and condition ACCEPT_BID.1 excludes it with no changes.
const OpWithdrawBid = "WITHDRAW_BID"

// WithdrawBidType builds the condition set C_WITHDRAW_BID.
func WithdrawBidType() *txtype.Type {
	return &txtype.Type{
		Op: OpWithdrawBid,
		Conditions: []txtype.Condition{
			{Name: "WITHDRAW.dup", Doc: "transaction is not a duplicate", Check: checkNotDuplicate},
			{Name: "WITHDRAW.1", Doc: "exactly one input and one output", Check: func(ctx *txtype.Context, t *txn.Transaction) error {
				if len(t.Inputs) != 1 || len(t.Outputs) != 1 {
					return &txn.ValidationError{Op: t.Operation, Reason: "WITHDRAW_BID must have exactly one input and one output"}
				}
				return nil
			}},
			{Name: "WITHDRAW.2", Doc: "all fulfillments verify", Check: checkSignatures},
			{Name: "WITHDRAW.3", Doc: "spends the escrow-held output of a committed BID", Check: func(ctx *txtype.Context, t *txn.Transaction) error {
				if err := checkTransferInputs(ctx, t, inputOpts{reservedOnly: true, sameAsset: true}); err != nil {
					return err
				}
				bid, _, err := spentOutput(ctx, *t.Inputs[0].Fulfills)
				if err != nil {
					return err
				}
				if bid.Operation != txn.OpBid {
					return &txn.ValidationError{Op: t.Operation, Reason: "WITHDRAW_BID must spend a BID output"}
				}
				if !t.HasRef(bid.ID) {
					return &txn.ValidationError{Op: t.Operation, Reason: "WITHDRAW_BID must reference the withdrawn BID"}
				}
				return nil
			}},
			{Name: "WITHDRAW.4", Doc: "only the original bidder may withdraw, receiving all shares back", Check: func(ctx *txtype.Context, t *txn.Transaction) error {
				_, spent, err := spentOutput(ctx, *t.Inputs[0].Fulfills)
				if err != nil {
					return err
				}
				if len(spent.PrevOwners) == 0 {
					return &txn.ValidationError{Op: t.Operation, Reason: "escrowed bid records no previous owner"}
				}
				out := t.Outputs[0]
				if out.Amount != spent.Amount {
					return &txn.AmountError{Op: t.Operation, Want: spent.Amount, Got: out.Amount}
				}
				for _, prev := range spent.PrevOwners {
					if !out.OwnedBy(prev) {
						return &txn.ValidationError{Op: t.Operation, Reason: fmt.Sprintf("shares must return to the original bidder %s", short(prev))}
					}
				}
				// Authorization: the bidder co-signs the withdrawal (the
				// escrow alone must not be able to re-route a bid).
				bidder := spent.PrevOwners[0]
				signed := false
				for _, k := range t.Inputs[0].OwnersBefore {
					if k == bidder {
						signed = true
						break
					}
				}
				if !signed {
					return &txn.ValidationError{Op: t.Operation, Reason: "withdrawal is not authorized by the bidder"}
				}
				return nil
			}},
			{Name: "WITHDRAW.5", Doc: "the auction is still open: no ACCEPT_BID exists for the REQUEST", Check: func(ctx *txtype.Context, t *txn.Transaction) error {
				bid, _, err := spentOutput(ctx, *t.Inputs[0].Fulfills)
				if err != nil {
					return err
				}
				rfq, err := theRequest(ctx, bid)
				if err != nil {
					return err
				}
				if acc, accepted := ctx.State.AcceptForRFQ(rfq.ID); accepted {
					return &txn.ValidationError{Op: t.Operation, Reason: fmt.Sprintf("auction already settled by %s", short(acc.ID))}
				}
				return nil
			}},
		},
	}
}

// NewWithdrawBid builds the withdrawal transaction: the escrow-held
// bid output returns to the bidder, co-signed by escrow and bidder.
func NewWithdrawBid(escrowPub, bidderPub string, bid *txn.Transaction) (*txn.Transaction, error) {
	if len(bid.Outputs) == 0 {
		return nil, fmt.Errorf("validate: bid %s has no outputs", short(bid.ID))
	}
	out := bid.Outputs[0]
	return &txn.Transaction{
		Operation: OpWithdrawBid,
		Asset:     &txn.Asset{ID: bid.AssetID()},
		Inputs: []*txn.Input{{
			Fulfills:     &txn.OutputRef{TxID: bid.ID, Index: 0},
			OwnersBefore: []string{escrowPub, bidderPub},
		}},
		Outputs: []*txn.Output{{
			PublicKeys: []string{bidderPub},
			Amount:     out.Amount,
			PrevOwners: []string{escrowPub},
		}},
		Refs:    []string{bid.ID},
		Version: txn.Version,
	}, nil
}
