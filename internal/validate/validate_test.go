package validate

import (
	"errors"
	"strings"
	"testing"

	"smartchaindb/internal/keys"
	"smartchaindb/internal/ledger"
	"smartchaindb/internal/schema"
	"smartchaindb/internal/txn"
	"smartchaindb/internal/txtype"
)

// world wires a chain state, reserved accounts, and the native type
// registry into a reusable test fixture.
type world struct {
	t         *testing.T
	state     *ledger.State
	reserved  *keys.Reserved
	registry  *txtype.Registry
	escrow    *keys.KeyPair
	requester *keys.KeyPair
	seq       int
}

func newWorld(t *testing.T) *world {
	t.Helper()
	w := &world{
		t:         t,
		state:     ledger.NewState(),
		reserved:  keys.NewReservedWithDefaults(1),
		registry:  NewRegistry(),
		requester: keys.MustGenerate(),
	}
	w.escrow = w.reserved.Escrow()
	return w
}

func (w *world) ctx() *txtype.Context {
	return &txtype.Context{State: w.state, Reserved: w.reserved, Batch: txtype.NewBatch()}
}

func (w *world) schemas() *schema.Registry { return schema.MustNewRegistry() }

func (w *world) validate(t *txn.Transaction) error {
	return w.registry.Validate(w.ctx(), t)
}

func (w *world) mustCommit(tx *txn.Transaction) {
	w.t.Helper()
	if err := w.validate(tx); err != nil {
		w.t.Fatalf("validate before commit: %v", err)
	}
	if err := w.state.CommitTx(tx); err != nil {
		w.t.Fatal(err)
	}
}

func (w *world) create(owner *keys.KeyPair, shares uint64, caps ...any) *txn.Transaction {
	w.t.Helper()
	w.seq++
	tx := txn.NewCreate(owner.PublicBase58(), map[string]any{"capabilities": caps, "seq": w.seq}, shares, nil)
	if err := txn.Sign(tx, owner); err != nil {
		w.t.Fatal(err)
	}
	return tx
}

func (w *world) request(caps ...any) *txn.Transaction {
	w.t.Helper()
	w.seq++
	req := txn.NewRequest(w.requester.PublicBase58(), map[string]any{"capabilities": caps, "seq": w.seq}, nil)
	if err := txn.Sign(req, w.requester); err != nil {
		w.t.Fatal(err)
	}
	return req
}

func (w *world) bid(bidder *keys.KeyPair, rfqID string, caps ...any) *txn.Transaction {
	w.t.Helper()
	asset := w.create(bidder, 1, caps...)
	w.mustCommit(asset)
	bid := txn.NewBid(bidder.PublicBase58(), asset.ID,
		txn.Spend{Ref: txn.OutputRef{TxID: asset.ID, Index: 0}, Owners: []string{bidder.PublicBase58()}},
		1, w.escrow.PublicBase58(), rfqID, nil)
	if err := txn.Sign(bid, bidder); err != nil {
		w.t.Fatal(err)
	}
	return bid
}

func (w *world) accept(rfq *txn.Transaction, win *txn.Transaction, losing ...*txn.Transaction) *txn.Transaction {
	w.t.Helper()
	acc, err := txn.NewAcceptBid(w.requester.PublicBase58(), w.escrow.PublicBase58(), rfq.ID, win, losing, nil)
	if err != nil {
		w.t.Fatal(err)
	}
	if err := txn.Sign(acc, w.escrow, w.requester); err != nil {
		w.t.Fatal(err)
	}
	return acc
}

func TestValidCreateRequestTransfer(t *testing.T) {
	w := newWorld(t)
	alice, bob := keys.MustGenerate(), keys.MustGenerate()

	create := w.create(alice, 5, "cnc")
	if err := w.validate(create); err != nil {
		t.Fatalf("CREATE: %v", err)
	}
	w.mustCommit(create)

	req := w.request("cnc")
	if err := w.validate(req); err != nil {
		t.Fatalf("REQUEST: %v", err)
	}
	w.mustCommit(req)

	tr := txn.NewTransfer(create.ID,
		[]txn.Spend{{Ref: txn.OutputRef{TxID: create.ID, Index: 0}, Owners: []string{alice.PublicBase58()}}},
		[]*txn.Output{{PublicKeys: []string{bob.PublicBase58()}, Amount: 5}}, nil)
	if err := txn.Sign(tr, alice); err != nil {
		t.Fatal(err)
	}
	if err := w.validate(tr); err != nil {
		t.Fatalf("TRANSFER: %v", err)
	}
}

func TestCreateConditionFailures(t *testing.T) {
	w := newWorld(t)
	alice := keys.MustGenerate()

	dup := w.create(alice, 1)
	w.mustCommit(dup)
	if err := w.validate(dup); err == nil {
		t.Error("duplicate CREATE should fail")
	}

	short := w.create(alice, 5)
	short.Outputs[0].Amount = 3
	if err := txn.Sign(short, alice); err != nil {
		t.Fatal(err)
	}
	var amt *txn.AmountError
	if err := w.validate(short); !errors.As(err, &amt) {
		t.Errorf("share mismatch should yield AmountError, got %v", err)
	}

	anchored := w.create(alice, 1)
	anchored.Inputs[0].Fulfills = &txn.OutputRef{TxID: strings.Repeat("a", 64), Index: 0}
	if err := txn.Sign(anchored, alice); err != nil {
		t.Fatal(err)
	}
	if err := w.validate(anchored); err == nil {
		t.Error("anchored CREATE input should fail")
	}

	linked := w.create(alice, 1)
	linked.Asset.ID = strings.Repeat("b", 64)
	if err := txn.Sign(linked, alice); err != nil {
		t.Fatal(err)
	}
	if err := w.validate(linked); err == nil {
		t.Error("CREATE with asset link should fail")
	}

	unsigned := w.create(alice, 1)
	unsigned.Inputs[0].Fulfillment = ""
	if err := w.validate(unsigned); err == nil {
		t.Error("unsigned CREATE should fail")
	}
}

func TestRequestConditionFailures(t *testing.T) {
	w := newWorld(t)

	noCaps := txn.NewRequest(w.requester.PublicBase58(), map[string]any{"capabilities": []any{}}, nil)
	if err := txn.Sign(noCaps, w.requester); err != nil {
		t.Fatal(err)
	}
	if err := w.validate(noCaps); err == nil {
		t.Error("REQUEST with no capabilities should fail")
	}

	stranger := keys.MustGenerate()
	wrongOwner := w.request("cnc")
	wrongOwner.Outputs[0].PublicKeys = []string{stranger.PublicBase58()}
	if err := txn.Sign(wrongOwner, w.requester); err != nil {
		t.Fatal(err)
	}
	if err := w.validate(wrongOwner); err == nil {
		t.Error("REQUEST output owned by stranger should fail")
	}
}

func TestTransferConditionFailures(t *testing.T) {
	w := newWorld(t)
	alice, bob, eve := keys.MustGenerate(), keys.MustGenerate(), keys.MustGenerate()
	create := w.create(alice, 5)
	w.mustCommit(create)
	ref := txn.OutputRef{TxID: create.ID, Index: 0}

	// Non-conserving transfer.
	leak := txn.NewTransfer(create.ID,
		[]txn.Spend{{Ref: ref, Owners: []string{alice.PublicBase58()}}},
		[]*txn.Output{{PublicKeys: []string{bob.PublicBase58()}, Amount: 9}}, nil)
	if err := txn.Sign(leak, alice); err != nil {
		t.Fatal(err)
	}
	var amt *txn.AmountError
	if err := w.validate(leak); !errors.As(err, &amt) {
		t.Errorf("want AmountError, got %v", err)
	}

	// Wrong asset link.
	other := w.create(alice, 5)
	w.mustCommit(other)
	wrongAsset := txn.NewTransfer(other.ID,
		[]txn.Spend{{Ref: ref, Owners: []string{alice.PublicBase58()}}},
		[]*txn.Output{{PublicKeys: []string{bob.PublicBase58()}, Amount: 5}}, nil)
	if err := txn.Sign(wrongAsset, alice); err != nil {
		t.Fatal(err)
	}
	if err := w.validate(wrongAsset); err == nil {
		t.Error("transfer naming the wrong asset should fail")
	}

	// Stranger claiming to own the output.
	theft := txn.NewTransfer(create.ID,
		[]txn.Spend{{Ref: ref, Owners: []string{eve.PublicBase58()}}},
		[]*txn.Output{{PublicKeys: []string{eve.PublicBase58()}, Amount: 5}}, nil)
	if err := txn.Sign(theft, eve); err != nil {
		t.Fatal(err)
	}
	if err := w.validate(theft); err == nil {
		t.Error("spend without owner signature should fail")
	}

	// Missing source transaction.
	ghost := txn.NewTransfer(create.ID,
		[]txn.Spend{{Ref: txn.OutputRef{TxID: strings.Repeat("0", 64), Index: 0}, Owners: []string{alice.PublicBase58()}}},
		[]*txn.Output{{PublicKeys: []string{bob.PublicBase58()}, Amount: 5}}, nil)
	if err := txn.Sign(ghost, alice); err != nil {
		t.Fatal(err)
	}
	var missing *txn.InputDoesNotExistError
	if err := w.validate(ghost); !errors.As(err, &missing) {
		t.Errorf("want InputDoesNotExistError, got %v", err)
	}

	// Double spend after commit.
	spend := txn.NewTransfer(create.ID,
		[]txn.Spend{{Ref: ref, Owners: []string{alice.PublicBase58()}}},
		[]*txn.Output{{PublicKeys: []string{bob.PublicBase58()}, Amount: 5}}, nil)
	if err := txn.Sign(spend, alice); err != nil {
		t.Fatal(err)
	}
	w.mustCommit(spend)
	again := txn.NewTransfer(create.ID,
		[]txn.Spend{{Ref: ref, Owners: []string{alice.PublicBase58()}}},
		[]*txn.Output{{PublicKeys: []string{eve.PublicBase58()}, Amount: 5}}, nil)
	if err := txn.Sign(again, alice); err != nil {
		t.Fatal(err)
	}
	var ds *txn.DoubleSpendError
	if err := w.validate(again); !errors.As(err, &ds) {
		t.Errorf("want DoubleSpendError, got %v", err)
	}

	// Out-of-range output index.
	outOfRange := txn.NewTransfer(create.ID,
		[]txn.Spend{{Ref: txn.OutputRef{TxID: create.ID, Index: 7}, Owners: []string{alice.PublicBase58()}}},
		[]*txn.Output{{PublicKeys: []string{bob.PublicBase58()}, Amount: 5}}, nil)
	if err := txn.Sign(outOfRange, alice); err != nil {
		t.Fatal(err)
	}
	if err := w.validate(outOfRange); err == nil {
		t.Error("out-of-range output index should fail")
	}
}

func TestIntraBlockDoubleSpendDetected(t *testing.T) {
	w := newWorld(t)
	alice, bob, eve := keys.MustGenerate(), keys.MustGenerate(), keys.MustGenerate()
	create := w.create(alice, 5)
	w.mustCommit(create)
	ref := txn.OutputRef{TxID: create.ID, Index: 0}

	mk := func(to string) *txn.Transaction {
		tr := txn.NewTransfer(create.ID,
			[]txn.Spend{{Ref: ref, Owners: []string{alice.PublicBase58()}}},
			[]*txn.Output{{PublicKeys: []string{to}, Amount: 5}}, nil)
		if err := txn.Sign(tr, alice); err != nil {
			t.Fatal(err)
		}
		return tr
	}
	first, second := mk(bob.PublicBase58()), mk(eve.PublicBase58())

	ctx := w.ctx()
	if err := w.registry.Validate(ctx, first); err != nil {
		t.Fatal(err)
	}
	if err := ctx.Batch.Add(first); err != nil {
		t.Fatal(err)
	}
	var ds *txn.DoubleSpendError
	if err := w.registry.Validate(ctx, second); !errors.As(err, &ds) {
		t.Errorf("intra-block double spend: want DoubleSpendError, got %v", err)
	}
	// The batch itself also refuses the conflicting transaction.
	if err := ctx.Batch.Add(second); !errors.As(err, &ds) {
		t.Errorf("batch.Add: want DoubleSpendError, got %v", err)
	}
}

func TestBatchDependencyWithinBlock(t *testing.T) {
	// A transfer can spend the output of a CREATE validated in the same
	// block: dependencies resolve through the batch.
	w := newWorld(t)
	alice, bob := keys.MustGenerate(), keys.MustGenerate()
	create := w.create(alice, 2)
	ctx := w.ctx()
	if err := w.registry.Validate(ctx, create); err != nil {
		t.Fatal(err)
	}
	if err := ctx.Batch.Add(create); err != nil {
		t.Fatal(err)
	}
	tr := txn.NewTransfer(create.ID,
		[]txn.Spend{{Ref: txn.OutputRef{TxID: create.ID, Index: 0}, Owners: []string{alice.PublicBase58()}}},
		[]*txn.Output{{PublicKeys: []string{bob.PublicBase58()}, Amount: 2}}, nil)
	if err := txn.Sign(tr, alice); err != nil {
		t.Fatal(err)
	}
	if err := w.registry.Validate(ctx, tr); err != nil {
		t.Errorf("same-block dependency should validate: %v", err)
	}
}

func TestValidBidFlow(t *testing.T) {
	w := newWorld(t)
	rfq := w.request("cnc", "3d-printing")
	w.mustCommit(rfq)
	bidder := keys.MustGenerate()
	bid := w.bid(bidder, rfq.ID, "cnc", "3d-printing", "laser")
	if err := w.validate(bid); err != nil {
		t.Fatalf("BID: %v", err)
	}
}

func TestBidConditionFailures(t *testing.T) {
	w := newWorld(t)
	rfq := w.request("cnc", "3d-printing")
	w.mustCommit(rfq)
	bidder := keys.MustGenerate()

	// BID.7: missing capability.
	weak := w.bid(bidder, rfq.ID, "cnc")
	var insuf *txn.InsufficientCapabilitiesError
	if err := w.validate(weak); !errors.As(err, &insuf) {
		t.Errorf("want InsufficientCapabilitiesError, got %v", err)
	}

	// BID.3: reference is not a REQUEST.
	notRFQ := w.create(bidder, 1)
	w.mustCommit(notRFQ)
	badRef := w.bid(bidder, notRFQ.ID, "cnc", "3d-printing")
	if err := w.validate(badRef); err == nil {
		t.Error("BID referencing a non-REQUEST should fail")
	}

	// BID.3: REQUEST not committed.
	ghostRFQ := w.request("cnc")
	orphan := w.bid(bidder, ghostRFQ.ID, "cnc", "3d-printing")
	var missing *txn.InputDoesNotExistError
	if err := w.validate(orphan); !errors.As(err, &missing) {
		t.Errorf("want InputDoesNotExistError, got %v", err)
	}

	// BID.6: output not escrow-held.
	own := w.bid(bidder, rfq.ID, "cnc", "3d-printing")
	own.Outputs[0].PublicKeys = []string{bidder.PublicBase58()}
	if err := txn.Sign(own, bidder); err != nil {
		t.Fatal(err)
	}
	if err := w.validate(own); err == nil {
		t.Error("BID output not under escrow should fail")
	}

	// BID.6: forged previous owner.
	stranger := keys.MustGenerate()
	forged := w.bid(bidder, rfq.ID, "cnc", "3d-printing")
	forged.Outputs[0].PrevOwners = []string{stranger.PublicBase58()}
	if err := txn.Sign(forged, bidder); err != nil {
		t.Fatal(err)
	}
	if err := w.validate(forged); err == nil {
		t.Error("BID with forged previous owner should fail")
	}
}

func TestValidAcceptBidFlow(t *testing.T) {
	w := newWorld(t)
	rfq := w.request("cnc")
	w.mustCommit(rfq)
	b1, b2, b3 := keys.MustGenerate(), keys.MustGenerate(), keys.MustGenerate()
	win := w.bid(b1, rfq.ID, "cnc")
	w.mustCommit(win)
	lose1 := w.bid(b2, rfq.ID, "cnc")
	w.mustCommit(lose1)
	lose2 := w.bid(b3, rfq.ID, "cnc")
	w.mustCommit(lose2)

	acc := w.accept(rfq, win, lose1, lose2)
	if err := w.validate(acc); err != nil {
		t.Fatalf("ACCEPT_BID: %v", err)
	}
	w.mustCommit(acc)

	// Children validate and commit.
	specs, err := w.state.PendingReturnsFor(acc, w.escrow.PublicBase58(), w.requester.PublicBase58())
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 3 {
		t.Fatalf("children = %d, want 3", len(specs))
	}
	for _, spec := range specs {
		child := ledger.BuildChild(spec, w.escrow.PublicBase58())
		if err := txn.Sign(child, w.escrow); err != nil {
			t.Fatal(err)
		}
		if err := w.validate(child); err != nil {
			t.Fatalf("child %s: %v", spec.Kind, err)
		}
		if err := w.state.CommitTx(child); err != nil {
			t.Fatal(err)
		}
	}
	// End state: requester owns the winning asset, losers are refunded.
	if w.state.Balance(w.requester.PublicBase58(), win.AssetID()) != 1 {
		t.Error("requester should own the winning asset")
	}
	if w.state.Balance(b2.PublicBase58(), lose1.AssetID()) != 1 {
		t.Error("losing bidder 2 should be refunded")
	}
	if w.state.Balance(b3.PublicBase58(), lose2.AssetID()) != 1 {
		t.Error("losing bidder 3 should be refunded")
	}
}

func TestAcceptBidConditionFailures(t *testing.T) {
	w := newWorld(t)
	rfq := w.request("cnc")
	w.mustCommit(rfq)
	b1, b2 := keys.MustGenerate(), keys.MustGenerate()
	win := w.bid(b1, rfq.ID, "cnc")
	w.mustCommit(win)
	lose := w.bid(b2, rfq.ID, "cnc")
	w.mustCommit(lose)

	// ACCEPT_BID.1: not spending all locked bids.
	partial, err := txn.NewAcceptBid(w.requester.PublicBase58(), w.escrow.PublicBase58(), rfq.ID, win, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := txn.Sign(partial, w.escrow, w.requester); err != nil {
		t.Fatal(err)
	}
	if err := w.validate(partial); err == nil {
		t.Error("ACCEPT_BID ignoring a locked bid should fail")
	}

	// ACCEPT_BID.signer: accept not co-signed by the REQUEST owner.
	imposter := keys.MustGenerate()
	forged, err := txn.NewAcceptBid(imposter.PublicBase58(), w.escrow.PublicBase58(), rfq.ID, win, []*txn.Transaction{lose}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := txn.Sign(forged, w.escrow, imposter); err != nil {
		t.Fatal(err)
	}
	if err := w.validate(forged); err == nil {
		t.Error("ACCEPT_BID signed by an imposter should fail")
	}

	// Valid accept commits; a second accept for the same RFQ is a duplicate.
	acc := w.accept(rfq, win, lose)
	w.mustCommit(acc)
	// Re-arm: make two new bids for a *new* request to build a second accept
	// against the old request id — it must be rejected as duplicate before
	// any other condition fires.
	dup := w.accept(rfq, win, lose)
	var dupErr *txn.DuplicateTransactionError
	if err := w.validate(dup); !errors.As(err, &dupErr) {
		t.Errorf("second ACCEPT_BID: want DuplicateTransactionError, got %v", err)
	}
}

func TestAcceptBidWinnerMustBeEscrowHeldBid(t *testing.T) {
	w := newWorld(t)
	rfq := w.request("cnc")
	w.mustCommit(rfq)
	b1 := keys.MustGenerate()
	win := w.bid(b1, rfq.ID, "cnc")
	w.mustCommit(win)

	acc := w.accept(rfq, win)
	// Tamper: anchor the asset to the RFQ instead of the winning bid.
	acc.Asset.ID = rfq.ID
	if err := txn.Sign(acc, w.escrow, w.requester); err != nil {
		t.Fatal(err)
	}
	if err := w.validate(acc); err == nil {
		t.Error("ACCEPT_BID anchored to a non-bid should fail")
	}
}

func TestAcceptBidOutputTampering(t *testing.T) {
	w := newWorld(t)
	rfq := w.request("cnc")
	w.mustCommit(rfq)
	b1, b2 := keys.MustGenerate(), keys.MustGenerate()
	win := w.bid(b1, rfq.ID, "cnc")
	w.mustCommit(win)
	lose := w.bid(b2, rfq.ID, "cnc")
	w.mustCommit(lose)

	// Output routed to a non-reserved account.
	acc := w.accept(rfq, win, lose)
	acc.Outputs[1].PublicKeys = []string{w.requester.PublicBase58()}
	if err := txn.Sign(acc, w.escrow, w.requester); err != nil {
		t.Fatal(err)
	}
	if err := w.validate(acc); err == nil {
		t.Error("ACCEPT_BID leaking an output out of escrow should fail")
	}

	// Previous-owner record replaced: RETURN would be misrouted.
	eve := keys.MustGenerate()
	acc2 := w.accept(rfq, win, lose)
	acc2.Outputs[1].PrevOwners = []string{eve.PublicBase58()}
	if err := txn.Sign(acc2, w.escrow, w.requester); err != nil {
		t.Fatal(err)
	}
	if err := w.validate(acc2); err == nil {
		t.Error("ACCEPT_BID rerouting a return should fail")
	}

	// Children count mismatch.
	acc3 := w.accept(rfq, win, lose)
	acc3.Children = []string{strings.Repeat("a", 64)}
	if err := w.validate(acc3); err == nil {
		t.Error("ACCEPT_BID with |Ch| != |I| should fail")
	}
}

func TestReturnConditionFailures(t *testing.T) {
	w := newWorld(t)
	rfq := w.request("cnc")
	w.mustCommit(rfq)
	b1, b2 := keys.MustGenerate(), keys.MustGenerate()
	win := w.bid(b1, rfq.ID, "cnc")
	w.mustCommit(win)
	lose := w.bid(b2, rfq.ID, "cnc")
	w.mustCommit(lose)
	acc := w.accept(rfq, win, lose)
	w.mustCommit(acc)

	specs, err := w.state.PendingReturnsFor(acc, w.escrow.PublicBase58(), w.requester.PublicBase58())
	if err != nil {
		t.Fatal(err)
	}
	retSpec := specs[1] // the RETURN child

	// Misrouted recipient.
	eve := keys.MustGenerate()
	misrouted := txn.NewReturn(w.escrow.PublicBase58(), retSpec.AcceptID, retSpec.OutputIndex,
		eve.PublicBase58(), retSpec.Amount, retSpec.AssetID, nil)
	if err := txn.Sign(misrouted, w.escrow); err != nil {
		t.Fatal(err)
	}
	if err := w.validate(misrouted); err == nil {
		t.Error("RETURN to the wrong recipient should fail")
	}

	// Partial amount.
	partial := txn.NewReturn(w.escrow.PublicBase58(), retSpec.AcceptID, retSpec.OutputIndex,
		retSpec.Recipient, retSpec.Amount+1, retSpec.AssetID, nil)
	if err := txn.Sign(partial, w.escrow); err != nil {
		t.Fatal(err)
	}
	if err := w.validate(partial); err == nil {
		t.Error("RETURN with wrong amount should fail")
	}

	// Spending a non-ACCEPT_BID output.
	notParent := txn.NewReturn(w.escrow.PublicBase58(), win.ID, 0,
		retSpec.Recipient, 1, retSpec.AssetID, nil)
	if err := txn.Sign(notParent, w.escrow); err != nil {
		t.Fatal(err)
	}
	if err := w.validate(notParent); err == nil {
		t.Error("RETURN spending a non-parent output should fail")
	}

	// Valid RETURN passes.
	good := ledger.BuildChild(retSpec, w.escrow.PublicBase58())
	if err := txn.Sign(good, w.escrow); err != nil {
		t.Fatal(err)
	}
	if err := w.validate(good); err != nil {
		t.Errorf("valid RETURN rejected: %v", err)
	}
}

func TestUnknownOperationRejected(t *testing.T) {
	w := newWorld(t)
	alice := keys.MustGenerate()
	tx := w.create(alice, 1)
	tx.Operation = "DESTROY"
	if err := w.validate(tx); err == nil {
		t.Error("unknown operation should be rejected")
	}
}

func TestConditionSetIntrospection(t *testing.T) {
	// The declarative framework exposes its condition sets as data.
	r := NewRegistry()
	if len(r.Operations()) != 7 {
		t.Fatalf("Operations = %v (6 paper types + WITHDRAW_BID)", r.Operations())
	}
	bid, ok := r.Type(txn.OpBid)
	if !ok {
		t.Fatal("BID type missing")
	}
	if len(bid.Conditions) < 8 {
		t.Errorf("BID has %d conditions, want >= 8 (Definition 3 has 8)", len(bid.Conditions))
	}
	for _, c := range bid.Conditions {
		if c.Name == "" || c.Doc == "" || c.Check == nil {
			t.Errorf("condition %+v incomplete", c.Name)
		}
	}
	acc, _ := r.Type(txn.OpAcceptBid)
	if !acc.Nested {
		t.Error("ACCEPT_BID must be marked nested")
	}
	if create, _ := r.Type(txn.OpCreate); create.Nested {
		t.Error("CREATE must not be nested")
	}
}
