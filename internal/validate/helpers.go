// Package validate implements the semantic validation algorithms of
// SmartchainDB: the concrete condition sets C_α for the six native
// transaction types (Definitions 3–4 and Algorithms 2–3 of the paper),
// registered into the declarative txtype framework. The server runs
// these conditions at each of the three validation points of the
// transaction life cycle (receiver node, CheckTx, DeliverTx).
package validate

import (
	"fmt"

	"smartchaindb/internal/txn"
	"smartchaindb/internal/txtype"
)

// spentOutput resolves an input's reference to the source transaction
// and the output object being spent, looking at the current batch
// first and committed state second.
func spentOutput(ctx *txtype.Context, ref txn.OutputRef) (*txn.Transaction, *txn.Output, error) {
	source, err := ctx.ResolveTx(ref.TxID)
	if err != nil {
		return nil, nil, &txn.InputDoesNotExistError{TxID: ref.TxID}
	}
	if ref.Index < 0 || ref.Index >= len(source.Outputs) {
		return nil, nil, &txn.ValidationError{
			Op:     source.Operation,
			Reason: fmt.Sprintf("output index %d out of range (tx %s has %d outputs)", ref.Index, short(ref.TxID), len(source.Outputs)),
		}
	}
	return source, source.Outputs[ref.Index], nil
}

// outputAssetID resolves the asset whose shares an output holds,
// following nested parents down to the underlying bid asset.
func outputAssetID(ctx *txtype.Context, ref txn.OutputRef) (string, error) {
	if id, ok := ctx.State.OutputAssetID(ref); ok {
		return id, nil
	}
	// Not committed yet: resolve through the batch.
	source, _, err := spentOutput(ctx, ref)
	if err != nil {
		return "", err
	}
	if source.Operation == txn.OpAcceptBid {
		if ref.Index >= len(source.Inputs) || source.Inputs[ref.Index].Fulfills == nil {
			return "", &txn.ValidationError{Op: source.Operation, Reason: fmt.Sprintf("nested parent output %d has no mirroring input", ref.Index)}
		}
		return outputAssetID(ctx, *source.Inputs[ref.Index].Fulfills)
	}
	return source.AssetID(), nil
}

// inputOpts selects which shared checks apply for a transaction type.
type inputOpts struct {
	sameAsset    bool // every spent output must hold shares of t's asset
	reservedOnly bool // every spent output must be owned by PBPK-Res
}

// checkTransferInputs is the shared validateTransferInputs routine:
// every input must spend an existing, committed (or same-block),
// unspent output whose owners are covered by the input's owners-before
// set.
func checkTransferInputs(ctx *txtype.Context, t *txn.Transaction, opts inputOpts) error {
	if len(t.Inputs) == 0 {
		return &txn.ValidationError{Op: t.Operation, Reason: "no inputs"}
	}
	for i, in := range t.Inputs {
		if in.Fulfills == nil {
			return &txn.ValidationError{Op: t.Operation, Reason: fmt.Sprintf("input %d spends nothing", i)}
		}
		ref := *in.Fulfills
		_, out, err := spentOutput(ctx, ref)
		if err != nil {
			return err
		}
		// Owner coverage: every controlling key of the spent output must
		// appear among owners-before (extra co-signers, e.g. the
		// requester on ACCEPT_BID, are permitted).
		owners := make(map[string]bool, len(in.OwnersBefore))
		for _, k := range in.OwnersBefore {
			owners[k] = true
		}
		for _, k := range out.PublicKeys {
			if !owners[k] {
				return &txn.ValidationError{Op: t.Operation, Reason: fmt.Sprintf("input %d does not carry owner %s of the spent output", i, short(k))}
			}
		}
		if spender, spent := ctx.SpentBy(ref); spent && spender != t.ID {
			return &txn.DoubleSpendError{Ref: ref, SpentBy: spender}
		}
		if opts.reservedOnly {
			for _, k := range out.PublicKeys {
				if !ctx.Reserved.IsReserved(k) {
					return &txn.ValidationError{Op: t.Operation, Reason: fmt.Sprintf("input %d spends an output not held by a reserved account", i)}
				}
			}
		}
		if opts.sameAsset {
			assetID, err := outputAssetID(ctx, ref)
			if err != nil {
				return err
			}
			if t.Asset == nil || t.Asset.ID != assetID {
				want := "<nil>"
				if t.Asset != nil {
					want = short(t.Asset.ID)
				}
				return &txn.ValidationError{Op: t.Operation, Reason: fmt.Sprintf("input %d spends asset %s but transaction manipulates %s", i, short(assetID), want)}
			}
		}
	}
	return nil
}

// inputTotal sums the shares held by all spent outputs.
func inputTotal(ctx *txtype.Context, t *txn.Transaction) (uint64, error) {
	var sum uint64
	for _, in := range t.Inputs {
		if in.Fulfills == nil {
			continue
		}
		_, out, err := spentOutput(ctx, *in.Fulfills)
		if err != nil {
			return 0, err
		}
		sum += out.Amount
	}
	return sum, nil
}

// checkConservation enforces sum(inputs) == sum(outputs).
func checkConservation(ctx *txtype.Context, t *txn.Transaction) error {
	in, err := inputTotal(ctx, t)
	if err != nil {
		return err
	}
	if out := t.OutputAmount(); out != in {
		return &txn.AmountError{Op: t.Operation, Want: in, Got: out}
	}
	return nil
}

// checkNotDuplicate rejects a transaction already committed or already
// admitted to the block being built.
func checkNotDuplicate(ctx *txtype.Context, t *txn.Transaction) error {
	if ctx.State.IsCommitted(t.ID) {
		return &txn.DuplicateTransactionError{TxID: t.ID, Reason: "already committed"}
	}
	if ctx.Batch != nil {
		if _, ok := ctx.Batch.Get(t.ID); ok {
			return &txn.DuplicateTransactionError{TxID: t.ID, Reason: "already in current block"}
		}
	}
	return nil
}

// checkSignatures verifies the transaction ID and every fulfillment —
// condition (5) shared by all types — under the validating node's
// cache scope.
func checkSignatures(ctx *txtype.Context, t *txn.Transaction) error {
	return ctx.Cache.VerifyFulfillments(t)
}

// capabilities extracts the "capabilities" string list from an asset
// data document (getCapsFromRFQ / getCapsFromAsset in Algorithm 2).
func capabilities(data map[string]any) []string {
	raw, ok := data["capabilities"].([]any)
	if !ok {
		return nil
	}
	out := make([]string, 0, len(raw))
	for _, e := range raw {
		if s, ok := e.(string); ok {
			out = append(out, s)
		}
	}
	return out
}

// missingCapabilities returns the requested capabilities not covered by
// the offered set.
func missingCapabilities(requested, offered []string) []string {
	have := make(map[string]bool, len(offered))
	for _, c := range offered {
		have[c] = true
	}
	var missing []string
	for _, c := range requested {
		if !have[c] {
			missing = append(missing, c)
		}
	}
	return missing
}

// requestOwner resolves the public key that owns a REQUEST transaction
// (getPubKey(RFQTx) in Algorithm 3).
func requestOwner(rfq *txn.Transaction) (string, error) {
	if len(rfq.Outputs) == 0 || len(rfq.Outputs[0].PublicKeys) == 0 {
		return "", &txn.ValidationError{Op: rfq.Operation, Reason: "REQUEST has no owner output"}
	}
	return rfq.Outputs[0].PublicKeys[0], nil
}

// theRequest resolves and checks the single committed REQUEST named in
// a transaction's reference vector.
func theRequest(ctx *txtype.Context, t *txn.Transaction) (*txn.Transaction, error) {
	var rfq *txn.Transaction
	for _, id := range t.Refs {
		ref, err := ctx.ResolveTx(id)
		if err != nil {
			return nil, &txn.InputDoesNotExistError{TxID: id}
		}
		if ref.Operation == txn.OpRequest {
			if rfq != nil {
				return nil, &txn.ValidationError{Op: t.Operation, Reason: "reference vector names more than one REQUEST"}
			}
			rfq = ref
		}
	}
	if rfq == nil {
		return nil, &txn.ValidationError{Op: t.Operation, Reason: "reference vector names no REQUEST"}
	}
	return rfq, nil
}

func short(s string) string {
	if len(s) <= 8 {
		return s
	}
	return s[:8] + "..."
}
