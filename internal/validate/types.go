package validate

import (
	"fmt"

	"smartchaindb/internal/txn"
	"smartchaindb/internal/txtype"
)

// NewRegistry builds the txtype registry holding the condition sets of
// all six native SmartchainDB transaction types. Each condition is
// named after its counterpart in the paper's Definitions 3–4 and
// Algorithms 2–3.
func NewRegistry() *txtype.Registry {
	r := txtype.NewRegistry()
	r.Register(createType())
	r.Register(requestType())
	r.Register(transferType())
	r.Register(bidType())
	r.Register(returnType())
	r.Register(acceptBidType())
	r.Register(WithdrawBidType())
	return r
}

func createType() *txtype.Type {
	return &txtype.Type{
		Op: txn.OpCreate,
		Conditions: []txtype.Condition{
			{Name: "CREATE.dup", Doc: "transaction is not a duplicate", Check: checkNotDuplicate},
			{Name: "CREATE.1", Doc: "exactly one unanchored input", Check: func(ctx *txtype.Context, t *txn.Transaction) error {
				if len(t.Inputs) != 1 || t.Inputs[0].Fulfills != nil {
					return &txn.ValidationError{Op: t.Operation, Reason: "CREATE must have exactly one input spending nothing"}
				}
				return nil
			}},
			{Name: "CREATE.2", Doc: "asset is defined inline", Check: func(ctx *txtype.Context, t *txn.Transaction) error {
				if t.Asset == nil || t.Asset.ID != "" {
					return &txn.ValidationError{Op: t.Operation, Reason: "CREATE must define its asset inline"}
				}
				return nil
			}},
			{Name: "CREATE.3", Doc: "all fulfillments verify", Check: checkSignatures},
			{Name: "CREATE.4", Doc: "outputs hold exactly the minted shares", Check: func(ctx *txtype.Context, t *txn.Transaction) error {
				if got := t.OutputAmount(); got != t.Asset.Shares {
					return &txn.AmountError{Op: t.Operation, Want: t.Asset.Shares, Got: got}
				}
				return nil
			}},
		},
	}
}

func requestType() *txtype.Type {
	return &txtype.Type{
		Op: txn.OpRequest,
		Conditions: []txtype.Condition{
			{Name: "REQUEST.dup", Doc: "transaction is not a duplicate", Check: checkNotDuplicate},
			{Name: "REQUEST.1", Doc: "exactly one unanchored input", Check: func(ctx *txtype.Context, t *txn.Transaction) error {
				if len(t.Inputs) != 1 || t.Inputs[0].Fulfills != nil {
					return &txn.ValidationError{Op: t.Operation, Reason: "REQUEST must have exactly one input spending nothing"}
				}
				return nil
			}},
			{Name: "REQUEST.2", Doc: "single output owned by the requester", Check: func(ctx *txtype.Context, t *txn.Transaction) error {
				if len(t.Outputs) != 1 {
					return &txn.ValidationError{Op: t.Operation, Reason: "REQUEST must have exactly one output"}
				}
				issuer := t.Inputs[0].OwnersBefore[0]
				if !t.Outputs[0].OwnedBy(issuer) {
					return &txn.ValidationError{Op: t.Operation, Reason: "REQUEST output must be owned by its issuer"}
				}
				return nil
			}},
			{Name: "REQUEST.3", Doc: "requirements name at least one capability", Check: func(ctx *txtype.Context, t *txn.Transaction) error {
				if t.Asset == nil || len(capabilities(t.Asset.Data)) == 0 {
					return &txn.ValidationError{Op: t.Operation, Reason: "REQUEST must state required capabilities"}
				}
				return nil
			}},
			{Name: "REQUEST.4", Doc: "all fulfillments verify", Check: checkSignatures},
		},
	}
}

func transferType() *txtype.Type {
	return &txtype.Type{
		Op: txn.OpTransfer,
		Conditions: []txtype.Condition{
			{Name: "TRANSFER.dup", Doc: "transaction is not a duplicate", Check: checkNotDuplicate},
			{Name: "TRANSFER.1", Doc: "at least one input", Check: func(ctx *txtype.Context, t *txn.Transaction) error {
				if len(t.Inputs) == 0 {
					return &txn.ValidationError{Op: t.Operation, Reason: "no inputs"}
				}
				return nil
			}},
			{Name: "TRANSFER.2", Doc: "all fulfillments verify", Check: checkSignatures},
			{Name: "TRANSFER.3", Doc: "inputs spend unspent outputs of the same asset", Check: func(ctx *txtype.Context, t *txn.Transaction) error {
				return checkTransferInputs(ctx, t, inputOpts{sameAsset: true})
			}},
			{Name: "TRANSFER.4", Doc: "shares are conserved", Check: checkConservation},
		},
	}
}

// bidType implements C_BID (Definition 3) and Algorithm 2.
func bidType() *txtype.Type {
	return &txtype.Type{
		Op: txn.OpBid,
		Conditions: []txtype.Condition{
			{Name: "BID.dup", Doc: "transaction is not a duplicate", Check: checkNotDuplicate},
			{Name: "BID.1", Doc: "|I| >= 1: at least one input object", Check: func(ctx *txtype.Context, t *txn.Transaction) error {
				if len(t.Inputs) < 1 {
					return &txn.ValidationError{Op: t.Operation, Reason: "must have at least one input"}
				}
				return nil
			}},
			{Name: "BID.2", Doc: "|R| >= 1: reference vector is non-empty", Check: func(ctx *txtype.Context, t *txn.Transaction) error {
				if len(t.Refs) < 1 {
					return &txn.ValidationError{Op: t.Operation, Reason: "reference vector is empty"}
				}
				return nil
			}},
			{Name: "BID.3", Doc: "exactly one committed REQUEST in the reference vector", Check: func(ctx *txtype.Context, t *txn.Transaction) error {
				_, err := theRequest(ctx, t)
				return err
			}},
			{Name: "BID.4", Doc: "at least one input holds a non-null asset", Check: func(ctx *txtype.Context, t *txn.Transaction) error {
				total, err := inputTotal(ctx, t)
				if err != nil {
					return err
				}
				if total == 0 {
					return &txn.ValidationError{Op: t.Operation, Reason: "no input holds any shares"}
				}
				return nil
			}},
			{Name: "BID.5", Doc: "all fulfillments verify", Check: checkSignatures},
			{Name: "BID.6", Doc: "every output is held by a reserved (escrow) account and records the bidder", Check: func(ctx *txtype.Context, t *txn.Transaction) error {
				// Collect the actual owners of the spent outputs so the
				// recorded previous owners cannot be forged.
				actualOwners := make(map[string]bool)
				for _, in := range t.Inputs {
					if in.Fulfills == nil {
						continue
					}
					_, out, err := spentOutput(ctx, *in.Fulfills)
					if err != nil {
						return err
					}
					for _, k := range out.PublicKeys {
						actualOwners[k] = true
					}
				}
				for j, out := range t.Outputs {
					for _, k := range out.PublicKeys {
						if !ctx.Reserved.IsReserved(k) {
							return &txn.ValidationError{Op: t.Operation, Reason: fmt.Sprintf("output %d is not held by a reserved account", j)}
						}
					}
					if len(out.PrevOwners) == 0 {
						return &txn.ValidationError{Op: t.Operation, Reason: fmt.Sprintf("output %d records no previous owner", j)}
					}
					for _, k := range out.PrevOwners {
						if !actualOwners[k] {
							return &txn.ValidationError{Op: t.Operation, Reason: fmt.Sprintf("output %d records previous owner %s who owned no spent output", j, short(k))}
						}
					}
				}
				return nil
			}},
			{Name: "BID.7", Doc: "requested capabilities are a subset of the bid assets' capabilities", Check: func(ctx *txtype.Context, t *txn.Transaction) error {
				rfq, err := theRequest(ctx, t)
				if err != nil {
					return err
				}
				requested := capabilities(rfq.Asset.Data)
				var offered []string
				seen := make(map[string]bool)
				for _, in := range t.Inputs {
					if in.Fulfills == nil {
						continue
					}
					assetID, err := outputAssetID(ctx, *in.Fulfills)
					if err != nil {
						return err
					}
					if seen[assetID] {
						continue
					}
					seen[assetID] = true
					assetTx, err := ctx.ResolveTx(assetID)
					if err != nil {
						return &txn.InputDoesNotExistError{TxID: assetID}
					}
					if assetTx.Asset != nil {
						offered = append(offered, capabilities(assetTx.Asset.Data)...)
					}
				}
				if missing := missingCapabilities(requested, offered); len(missing) > 0 {
					return &txn.InsufficientCapabilitiesError{Missing: missing}
				}
				return nil
			}},
			{Name: "BID.8", Doc: "every input spends a valid unspent output of the bid asset, conserving shares", Check: func(ctx *txtype.Context, t *txn.Transaction) error {
				if err := checkTransferInputs(ctx, t, inputOpts{sameAsset: true}); err != nil {
					return err
				}
				return checkConservation(ctx, t)
			}},
		},
	}
}

// returnType validates the child RETURN transactions of a nested parent.
func returnType() *txtype.Type {
	return &txtype.Type{
		Op: txn.OpReturn,
		Conditions: []txtype.Condition{
			{Name: "RETURN.dup", Doc: "transaction is not a duplicate", Check: checkNotDuplicate},
			{Name: "RETURN.1", Doc: "exactly one input and one output", Check: func(ctx *txtype.Context, t *txn.Transaction) error {
				if len(t.Inputs) != 1 || len(t.Outputs) != 1 {
					return &txn.ValidationError{Op: t.Operation, Reason: "RETURN must have exactly one input and one output"}
				}
				return nil
			}},
			{Name: "RETURN.2", Doc: "all fulfillments verify", Check: checkSignatures},
			{Name: "RETURN.3", Doc: "spends an escrow-held output of a committed ACCEPT_BID", Check: func(ctx *txtype.Context, t *txn.Transaction) error {
				if err := checkTransferInputs(ctx, t, inputOpts{reservedOnly: true, sameAsset: true}); err != nil {
					return err
				}
				parent, _, err := spentOutput(ctx, *t.Inputs[0].Fulfills)
				if err != nil {
					return err
				}
				if parent.Operation != txn.OpAcceptBid {
					return &txn.ValidationError{Op: t.Operation, Reason: "RETURN must spend an ACCEPT_BID output"}
				}
				if !t.HasRef(parent.ID) {
					return &txn.ValidationError{Op: t.Operation, Reason: "RETURN must reference its parent ACCEPT_BID"}
				}
				return nil
			}},
			{Name: "RETURN.4", Doc: "shares go back to the recorded previous owner, fully", Check: func(ctx *txtype.Context, t *txn.Transaction) error {
				_, spent, err := spentOutput(ctx, *t.Inputs[0].Fulfills)
				if err != nil {
					return err
				}
				out := t.Outputs[0]
				if out.Amount != spent.Amount {
					return &txn.AmountError{Op: t.Operation, Want: spent.Amount, Got: out.Amount}
				}
				if len(spent.PrevOwners) == 0 {
					return &txn.ValidationError{Op: t.Operation, Reason: "spent output records no previous owner"}
				}
				for _, prev := range spent.PrevOwners {
					if !out.OwnedBy(prev) {
						return &txn.ValidationError{Op: t.Operation, Reason: fmt.Sprintf("shares must return to previous owner %s", short(prev))}
					}
				}
				return nil
			}},
		},
	}
}

// acceptBidType implements C_ACCEPT_BID (Definition 4) and Algorithm 3.
func acceptBidType() *txtype.Type {
	return &txtype.Type{
		Op:     txn.OpAcceptBid,
		Nested: true,
		Conditions: []txtype.Condition{
			{Name: "ACCEPT_BID.dup", Doc: "no other ACCEPT_BID exists for the REQUEST", Check: func(ctx *txtype.Context, t *txn.Transaction) error {
				if err := checkNotDuplicate(ctx, t); err != nil {
					return err
				}
				rfq, err := theRequest(ctx, t)
				if err != nil {
					return err
				}
				if dup, ok := ctx.State.AcceptForRFQ(rfq.ID); ok {
					return &txn.DuplicateTransactionError{TxID: dup.ID, Reason: "REQUEST already has an accepted bid"}
				}
				if ctx.Batch != nil {
					for _, other := range ctx.Batch.Transactions() {
						if other.Operation == txn.OpAcceptBid && other.HasRef(rfq.ID) && other.ID != t.ID {
							return &txn.DuplicateTransactionError{TxID: other.ID, Reason: "REQUEST already has an accepted bid in this block"}
						}
					}
				}
				return nil
			}},
			{Name: "ACCEPT_BID.2", Doc: "|R| == 1: exactly one reference", Check: func(ctx *txtype.Context, t *txn.Transaction) error {
				if len(t.Refs) != 1 {
					return &txn.ValidationError{Op: t.Operation, Reason: fmt.Sprintf("reference vector has %d elements, want 1", len(t.Refs))}
				}
				return nil
			}},
			{Name: "ACCEPT_BID.3", Doc: "the reference is a committed REQUEST", Check: func(ctx *txtype.Context, t *txn.Transaction) error {
				_, err := theRequest(ctx, t)
				return err
			}},
			{Name: "ACCEPT_BID.5", Doc: "all fulfillments verify", Check: checkSignatures},
			{Name: "ACCEPT_BID.signer", Doc: "signer of ACCEPT_BID is the signer of the REQUEST", Check: func(ctx *txtype.Context, t *txn.Transaction) error {
				rfq, err := theRequest(ctx, t)
				if err != nil {
					return err
				}
				owner, err := requestOwner(rfq)
				if err != nil {
					return err
				}
				for i, in := range t.Inputs {
					found := false
					for _, k := range in.OwnersBefore {
						if k == owner {
							found = true
							break
						}
					}
					if !found {
						return &txn.ValidationError{Op: t.Operation, Reason: fmt.Sprintf("input %d is not co-signed by the REQUEST owner", i)}
					}
				}
				return nil
			}},
			{Name: "ACCEPT_BID.1", Doc: "|I| == n: inputs spend every escrow-held bid for the REQUEST", Check: func(ctx *txtype.Context, t *txn.Transaction) error {
				rfq, err := theRequest(ctx, t)
				if err != nil {
					return err
				}
				locked := ctx.State.LockedBidsForRFQ(rfq.ID)
				if len(t.Inputs) != len(locked) {
					return &txn.ValidationError{Op: t.Operation, Reason: fmt.Sprintf("spends %d bids but %d are escrow-held for the REQUEST", len(t.Inputs), len(locked))}
				}
				lockedSet := make(map[string]bool, len(locked))
				for _, b := range locked {
					lockedSet[b.ID] = true
				}
				for i, in := range t.Inputs {
					if in.Fulfills == nil || !lockedSet[in.Fulfills.TxID] {
						return &txn.ValidationError{Op: t.Operation, Reason: fmt.Sprintf("input %d does not spend an escrow-held bid for the REQUEST", i)}
					}
				}
				return nil
			}},
			{Name: "ACCEPT_BID.win", Doc: "the winning bid is escrow-held for this REQUEST and spent first", Check: func(ctx *txtype.Context, t *txn.Transaction) error {
				if t.Asset == nil || t.Asset.ID == "" {
					return &txn.ValidationError{Op: t.Operation, Reason: "asset must anchor to the winning bid"}
				}
				if len(t.Inputs) == 0 || t.Inputs[0].Fulfills == nil || t.Inputs[0].Fulfills.TxID != t.Asset.ID {
					return &txn.ValidationError{Op: t.Operation, Reason: "first input must spend the winning bid"}
				}
				win, err := ctx.ResolveTx(t.Asset.ID)
				if err != nil {
					return &txn.InputDoesNotExistError{TxID: t.Asset.ID}
				}
				if win.Operation != txn.OpBid {
					return &txn.ValidationError{Op: t.Operation, Reason: "asset does not name a BID transaction"}
				}
				return nil
			}},
			{Name: "ACCEPT_BID.7", Doc: "each input spends an output held by a reserved account", Check: func(ctx *txtype.Context, t *txn.Transaction) error {
				return checkTransferInputs(ctx, t, inputOpts{reservedOnly: true})
			}},
			{Name: "ACCEPT_BID.6", Doc: "outputs mirror inputs one-to-one under escrow, recording original bidders", Check: func(ctx *txtype.Context, t *txn.Transaction) error {
				if len(t.Outputs) != len(t.Inputs) {
					return &txn.ValidationError{Op: t.Operation, Reason: fmt.Sprintf("%d outputs for %d inputs", len(t.Outputs), len(t.Inputs))}
				}
				for i, out := range t.Outputs {
					_, spent, err := spentOutput(ctx, *t.Inputs[i].Fulfills)
					if err != nil {
						return err
					}
					if out.Amount != spent.Amount {
						return &txn.AmountError{Op: t.Operation, Want: spent.Amount, Got: out.Amount}
					}
					for _, k := range out.PublicKeys {
						if !ctx.Reserved.IsReserved(k) {
							return &txn.ValidationError{Op: t.Operation, Reason: fmt.Sprintf("output %d must stay under a reserved account until its child commits", i)}
						}
					}
					// Condition 8: the recorded previous owner must be the
					// original bidder so the child can route the return.
					if len(out.PrevOwners) == 0 || len(spent.PrevOwners) == 0 {
						return &txn.ValidationError{Op: t.Operation, Reason: fmt.Sprintf("output %d loses the original bidder record", i)}
					}
					prevSet := make(map[string]bool, len(spent.PrevOwners))
					for _, k := range spent.PrevOwners {
						prevSet[k] = true
					}
					for _, k := range out.PrevOwners {
						if !prevSet[k] {
							return &txn.ValidationError{Op: t.Operation, Reason: fmt.Sprintf("output %d records previous owner %s not matching the bid", i, short(k))}
						}
					}
				}
				return nil
			}},
			{Name: "ACCEPT_BID.4", Doc: "|Ch| == |I| once children are assigned", Check: func(ctx *txtype.Context, t *txn.Transaction) error {
				if len(t.Children) != 0 && len(t.Children) != len(t.Inputs) {
					return &txn.ValidationError{Op: t.Operation, Reason: fmt.Sprintf("%d children for %d inputs", len(t.Children), len(t.Inputs))}
				}
				return nil
			}},
		},
	}
}
