package obs

import (
	"sync"
	"time"
)

// Stage identifies one pipeline stage a transaction passes through on
// its way from the wire to the sealed chain.
type Stage uint8

const (
	// StageRecv is the receive queue: from client arrival at the node
	// to the admission batch being picked up.
	StageRecv Stage = iota
	// StageAdmitScreen is the mempool's O(1) structural screen
	// (duplicate IDs, claimed spend keys).
	StageAdmitScreen
	// StageAdmitVerify is semantic admission: schema plus condition
	// sets over the parallel scheduler.
	StageAdmitVerify
	// StagePack is block packing (conflict-group balancing).
	StagePack
	// StageValidate is block validation on the packed block.
	StageValidate
	// StageFenceWait is time blocked on the commit fence waiting for a
	// footprint-conflicting in-flight commit.
	StageFenceWait
	// StageApply is the commit pipeline's apply phase (conflict groups
	// staging writes concurrently).
	StageApply
	// StageSeal is the commit pipeline's seal phase (block-order seal
	// into the atomic WAL group).
	StageSeal

	// StageCount is the number of stages.
	StageCount
)

var stageNames = [StageCount]string{
	"recv", "admit-screen", "admit-verify", "pack",
	"validate", "fence-wait", "apply", "seal",
}

// String returns the stage's wire name.
func (s Stage) String() string {
	if s < StageCount {
		return stageNames[s]
	}
	return "unknown"
}

// StageNames returns the stage names in pipeline order.
func StageNames() []string {
	out := make([]string, StageCount)
	copy(out, stageNames[:])
	return out
}

// Trace is one transaction's per-stage dwell record.
type Trace struct {
	// ID is the transaction hash.
	ID string `json:"id"`
	// Height is the block height the transaction sealed at; 0 while it
	// is still in flight.
	Height int64 `json:"height"`
	// Stages holds the dwell time per stage in nanoseconds, indexed by
	// Stage; -1 marks a stage not yet observed.
	Stages [StageCount]int64 `json:"stages"`

	arrived time.Time
}

// Observed reports whether the stage has been recorded.
func (t *Trace) Observed(s Stage) bool { return t.Stages[s] >= 0 }

const (
	defaultMaxActive = 1 << 16
	defaultDoneCap   = 4096
)

// Tracer records per-transaction stage dwell times, height-stamped at
// seal. Each stage is first-observation-wins: the proposer validates a
// packed block once at propose and once at prevote, and only the first
// measurement counts — so a committed trace reports every stage
// exactly once. Memory is bounded: at most maxActive in-flight traces
// (later arrivals are dropped and counted) and a fixed ring of
// completed ones. All methods are nil-safe no-ops.
type Tracer struct {
	mu      sync.Mutex
	active  map[string]*Trace
	done    []*Trace // ring of completed traces
	next    int
	stage   [StageCount]*Histogram
	dropped uint64

	maxActive int
}

func newTracer() *Tracer {
	t := &Tracer{
		active:    make(map[string]*Trace),
		done:      make([]*Trace, 0, defaultDoneCap),
		maxActive: defaultMaxActive,
	}
	for i := range t.stage {
		t.stage[i] = newHistogram()
	}
	return t
}

// newTrace builds an all-unset trace.
func newTrace(id string) *Trace {
	tr := &Trace{ID: id}
	for i := range tr.Stages {
		tr.Stages[i] = -1
	}
	return tr
}

// traceLocked returns the active trace for id, creating it if the
// bound allows. Caller holds t.mu.
func (t *Tracer) traceLocked(id string) *Trace {
	if tr, ok := t.active[id]; ok {
		return tr
	}
	if len(t.active) >= t.maxActive {
		t.dropped++
		return nil
	}
	tr := newTrace(id)
	t.active[id] = tr
	return tr
}

// Arrive opens a trace for a transaction entering the node, stamping
// its arrival time for the recv-stage dwell.
func (t *Tracer) Arrive(id string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if tr := t.traceLocked(id); tr != nil && tr.arrived.IsZero() {
		tr.arrived = time.Now()
	}
	t.mu.Unlock()
}

// MarkReceived closes the recv stage for each id: dwell is the time
// since Arrive. IDs that never arrived record a zero recv dwell.
func (t *Tracer) MarkReceived(ids []string) {
	if t == nil || len(ids) == 0 {
		return
	}
	now := time.Now()
	t.mu.Lock()
	for _, id := range ids {
		tr := t.traceLocked(id)
		if tr == nil || tr.Stages[StageRecv] >= 0 {
			continue
		}
		var d time.Duration
		if !tr.arrived.IsZero() {
			d = now.Sub(tr.arrived)
		}
		t.setLocked(tr, StageRecv, d)
	}
	t.mu.Unlock()
}

// setLocked records a stage dwell first-observation-wins and feeds the
// aggregate stage histogram. Caller holds t.mu.
func (t *Tracer) setLocked(tr *Trace, s Stage, d time.Duration) {
	if tr.Stages[s] >= 0 {
		return
	}
	if d < 0 {
		d = 0
	}
	tr.Stages[s] = int64(d)
	t.stage[s].ObserveDuration(d)
}

// Observe records one transaction's dwell in a stage.
func (t *Tracer) Observe(id string, s Stage, d time.Duration) {
	if t == nil || s >= StageCount {
		return
	}
	t.mu.Lock()
	if tr := t.traceLocked(id); tr != nil {
		t.setLocked(tr, s, d)
	}
	t.mu.Unlock()
}

// ObserveEach records the same dwell for a batch of transactions under
// one lock acquisition — the batch stages (screen, verify, pack,
// validate, apply, seal) attribute the phase latency to every member.
func (t *Tracer) ObserveEach(ids []string, s Stage, d time.Duration) {
	if t == nil || s >= StageCount || len(ids) == 0 {
		return
	}
	t.mu.Lock()
	for _, id := range ids {
		if tr := t.traceLocked(id); tr != nil {
			t.setLocked(tr, s, d)
		}
	}
	t.mu.Unlock()
}

// Sealed completes traces at a block height: each is height-stamped
// and moved to the completed ring.
func (t *Tracer) Sealed(ids []string, height int64) {
	if t == nil || len(ids) == 0 {
		return
	}
	t.mu.Lock()
	for _, id := range ids {
		tr, ok := t.active[id]
		if !ok {
			continue
		}
		delete(t.active, id)
		tr.Height = height
		if len(t.done) < cap(t.done) {
			t.done = append(t.done, tr)
		} else {
			t.done[t.next] = tr
			t.next = (t.next + 1) % cap(t.done)
		}
	}
	t.mu.Unlock()
}

// Drop discards the active traces of transactions leaving the pipeline
// uncommitted (rejections, evictions).
func (t *Tracer) Drop(ids []string) {
	if t == nil || len(ids) == 0 {
		return
	}
	t.mu.Lock()
	for _, id := range ids {
		delete(t.active, id)
	}
	t.mu.Unlock()
}

// Trace returns a copy of a transaction's trace, completed or active.
func (t *Tracer) Trace(id string) (Trace, bool) {
	if t == nil {
		return Trace{}, false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if tr, ok := t.active[id]; ok {
		return *tr, true
	}
	for _, tr := range t.done {
		if tr.ID == id {
			return *tr, true
		}
	}
	return Trace{}, false
}

// Completed returns copies of the completed traces, oldest first.
func (t *Tracer) Completed() []Trace {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Trace, 0, len(t.done))
	for i := 0; i < len(t.done); i++ {
		out = append(out, *t.done[(t.next+i)%len(t.done)])
	}
	return out
}

// Dropped returns the number of traces refused at the active bound.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// StageHistogram returns the aggregate dwell histogram for one stage.
func (t *Tracer) StageHistogram(s Stage) *Histogram {
	if t == nil || s >= StageCount {
		return nil
	}
	return t.stage[s]
}

// stageSnapshots summarizes every stage's aggregate histogram, keyed
// by stage name. Nil-safe.
func (t *Tracer) stageSnapshots() map[string]HistSnapshot {
	out := make(map[string]HistSnapshot, StageCount)
	if t == nil {
		return out
	}
	for i := Stage(0); i < StageCount; i++ {
		out[i.String()] = t.stage[i].Snapshot()
	}
	return out
}
