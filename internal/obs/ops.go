package obs

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Handler returns the ops endpoint for a registry:
//
//	/metrics        expvar-style JSON snapshot of every metric
//	/traces         the most recent completed transaction traces
//	/debug/pprof/*  the standard runtime profiles
//
// The handler is safe to serve while the node is under load; snapshots
// read each metric atomically.
func Handler(r *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(r.Snapshot())
	})
	mux.HandleFunc("/traces", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		type wire struct {
			ID     string           `json:"id"`
			Height int64            `json:"height"`
			Stages map[string]int64 `json:"stages_ns"`
		}
		var out []wire
		for _, tr := range r.Tracer().Completed() {
			stages := make(map[string]int64, StageCount)
			for s := Stage(0); s < StageCount; s++ {
				if tr.Observed(s) {
					stages[s.String()] = tr.Stages[s]
				}
			}
			out = append(out, wire{ID: tr.ID, Height: tr.Height, Stages: stages})
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(out)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// LabeledHandler returns an ops endpoint over several registries at
// once — a sharded deployment exposes every shard's metrics in one
// scrape, keyed by label:
//
//	/metrics        {"<label>": <snapshot>, ...}
//	/debug/pprof/*  the standard runtime profiles
//
// Labels are caller-chosen (e.g. "shard-0"); the map is read per
// request, so it must not be mutated after the handler is built.
func LabeledHandler(regs map[string]*Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		out := make(map[string]Snapshot, len(regs))
		for label, r := range regs {
			out[label] = r.Snapshot()
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(out)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// OpsServer is a running ops endpoint.
type OpsServer struct {
	l   net.Listener
	srv *http.Server
}

// Serve starts the ops endpoint on addr (e.g. "localhost:6060"; ":0"
// picks a free port) and serves it in the background until Close.
func Serve(addr string, r *Registry) (*OpsServer, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: Handler(r), ReadHeaderTimeout: 5 * time.Second}
	go srv.Serve(l)
	return &OpsServer{l: l, srv: srv}, nil
}

// ServeLabeled starts a multi-registry ops endpoint on addr and serves
// it in the background until Close.
func ServeLabeled(addr string, regs map[string]*Registry) (*OpsServer, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: LabeledHandler(regs), ReadHeaderTimeout: 5 * time.Second}
	go srv.Serve(l)
	return &OpsServer{l: l, srv: srv}, nil
}

// Addr returns the address the endpoint is listening on.
func (s *OpsServer) Addr() string { return s.l.Addr().String() }

// Close stops the endpoint.
func (s *OpsServer) Close() error { return s.srv.Close() }
