package obs

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"slices"
	"sync"
	"testing"
	"time"
)

// TestCounterConcurrentExact pins the sharded counter's core contract:
// however increments spread over the cells, the aggregated total is
// exact.
func TestCounterConcurrentExact(t *testing.T) {
	reg := New()
	c := reg.Counter("test.hits")
	const workers, perWorker = 16, 20000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got, want := c.Value(), uint64(workers*perWorker); got != want {
		t.Fatalf("counter total = %d, want %d", got, want)
	}
	if got := reg.Counter("test.hits").Value(); got != uint64(workers*perWorker) {
		t.Fatalf("re-looked-up counter disagrees: %d", got)
	}
}

func TestGauge(t *testing.T) {
	reg := New()
	g := reg.Gauge("test.height")
	g.Set(42)
	g.Add(-2)
	if got := g.Value(); got != 40 {
		t.Fatalf("gauge = %d, want 40", got)
	}
}

// TestHistogramConcurrentExactTotals: N writers record a known value
// multiset; count and sum must be exact, min/max observed.
func TestHistogramConcurrentExactTotals(t *testing.T) {
	reg := New()
	h := reg.Histogram("test.lat_ns")
	const workers, perWorker = 8, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < perWorker; i++ {
				h.Observe(rng.Int63n(1_000_000))
			}
		}(int64(w))
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != workers*perWorker {
		t.Fatalf("count = %d, want %d", s.Count, workers*perWorker)
	}
	var wantSum int64
	var wantMin, wantMax int64 = math.MaxInt64, math.MinInt64
	for w := 0; w < workers; w++ {
		rng := rand.New(rand.NewSource(int64(w)))
		for i := 0; i < perWorker; i++ {
			v := rng.Int63n(1_000_000)
			wantSum += v
			if v < wantMin {
				wantMin = v
			}
			if v > wantMax {
				wantMax = v
			}
		}
	}
	if s.Sum != wantSum {
		t.Fatalf("sum = %d, want %d", s.Sum, wantSum)
	}
	if s.Min != wantMin || s.Max != wantMax {
		t.Fatalf("min/max = %d/%d, want %d/%d", s.Min, s.Max, wantMin, wantMax)
	}
}

// TestHistogramQuantileErrorBound pins the log-linear design's error
// bound: every reported quantile is within 6.25% of the exact one.
func TestHistogramQuantileErrorBound(t *testing.T) {
	for _, dist := range []struct {
		name string
		gen  func(rng *rand.Rand) int64
	}{
		{"uniform", func(rng *rand.Rand) int64 { return rng.Int63n(10_000_000) }},
		{"exponential", func(rng *rand.Rand) int64 { return int64(rng.ExpFloat64() * 250_000) }},
		{"bimodal", func(rng *rand.Rand) int64 {
			if rng.Intn(10) == 0 {
				return 5_000_000 + rng.Int63n(100_000)
			}
			return 10_000 + rng.Int63n(1000)
		}},
	} {
		t.Run(dist.name, func(t *testing.T) {
			h := newHistogram()
			rng := rand.New(rand.NewSource(7))
			const n = 200000
			vals := make([]int64, n)
			for i := range vals {
				vals[i] = dist.gen(rng)
				h.Observe(vals[i])
			}
			exact := func(q float64) int64 { return quantileExact(vals, q) }
			s := h.Snapshot()
			for _, tc := range []struct {
				q   float64
				got int64
			}{{0.50, s.P50}, {0.90, s.P90}, {0.99, s.P99}, {0.999, s.P999}} {
				want := exact(tc.q)
				// Relative error bound: bucket width / value <= 2^-histSubBits,
				// midpoint reporting halves it; allow the full bound.
				tol := float64(want) / float64(histSubCount)
				if tol < 1 {
					tol = 1
				}
				if diff := math.Abs(float64(tc.got - want)); diff > tol {
					t.Errorf("q%.3f: got %d, exact %d (diff %.0f > tol %.0f)", tc.q, tc.got, want, diff, tol)
				}
			}
		})
	}
}

func quantileExact(vals []int64, q float64) int64 {
	sorted := append([]int64(nil), vals...)
	slices.Sort(sorted)
	i := int(q * float64(len(sorted)))
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// TestBucketIndexMonotone sanity-checks the log-linear indexing:
// indexes are monotone in the value and midpoints stay within bucket
// error of the value.
func TestBucketIndexMonotone(t *testing.T) {
	prev := -1
	for _, v := range []uint64{0, 1, 15, 16, 17, 31, 32, 63, 64, 1000, 4096, 1 << 20, 1 << 40, 1 << 62} {
		i := bucketIndex(v)
		if i < prev {
			t.Fatalf("bucketIndex(%d) = %d < previous %d", v, i, prev)
		}
		if i >= histBuckets {
			t.Fatalf("bucketIndex(%d) = %d out of range", v, i)
		}
		mid := bucketMid(i)
		if v >= 16 {
			rel := math.Abs(float64(mid)-float64(v)) / float64(v)
			if rel > 1.0/histSubCount {
				t.Fatalf("bucketMid(%d)=%d for v=%d: rel err %.3f", i, mid, v, rel)
			}
		}
	}
}

// TestNilRegistryNoops: the nil registry is the documented no-op
// build; every handle and method must be callable.
func TestNilRegistryNoops(t *testing.T) {
	var reg *Registry
	reg.Counter("a").Inc()
	reg.Counter("a").Add(3)
	if reg.Counter("a").Value() != 0 {
		t.Fatal("nil counter has a value")
	}
	reg.Gauge("g").Set(1)
	reg.Gauge("g").Add(1)
	reg.Histogram("h").Observe(5)
	reg.Histogram("h").ObserveDuration(time.Millisecond)
	reg.Histogram("h").ObserveSince(time.Now())
	_ = reg.Histogram("h").Snapshot()
	tr := reg.Tracer()
	tr.Arrive("x")
	tr.Observe("x", StageApply, time.Millisecond)
	tr.ObserveEach([]string{"x"}, StageSeal, time.Millisecond)
	tr.MarkReceived([]string{"x"})
	tr.Sealed([]string{"x"}, 1)
	tr.Drop([]string{"x"})
	if _, ok := tr.Trace("x"); ok {
		t.Fatal("nil tracer returned a trace")
	}
	snap := reg.Snapshot()
	if len(snap.Counters) != 0 || len(snap.Stages) != 0 {
		t.Fatal("nil registry snapshot not empty")
	}
}

// TestTracerFirstObservationWins pins the double-validation semantics:
// a stage observed twice keeps the first dwell and feeds the aggregate
// histogram once.
func TestTracerFirstObservationWins(t *testing.T) {
	reg := New()
	tr := reg.Tracer()
	tr.Observe("tx1", StageValidate, 10*time.Millisecond)
	tr.Observe("tx1", StageValidate, 99*time.Millisecond)
	got, ok := tr.Trace("tx1")
	if !ok {
		t.Fatal("trace missing")
	}
	if got.Stages[StageValidate] != int64(10*time.Millisecond) {
		t.Fatalf("validate dwell = %d, want first observation", got.Stages[StageValidate])
	}
	if s := tr.StageHistogram(StageValidate).Snapshot(); s.Count != 1 {
		t.Fatalf("stage histogram count = %d, want 1", s.Count)
	}
}

// TestTracerLifecycle: arrive -> stages -> sealed moves the trace to
// the completed ring, height-stamped, with recv dwell from Arrive.
func TestTracerLifecycle(t *testing.T) {
	reg := New()
	tr := reg.Tracer()
	tr.Arrive("tx1")
	time.Sleep(time.Millisecond)
	tr.MarkReceived([]string{"tx1"})
	for s := StageAdmitScreen; s < StageCount; s++ {
		tr.ObserveEach([]string{"tx1"}, s, time.Duration(s)*time.Millisecond)
	}
	tr.Sealed([]string{"tx1"}, 7)
	got, ok := tr.Trace("tx1")
	if !ok || got.Height != 7 {
		t.Fatalf("sealed trace: ok=%v height=%d", ok, got.Height)
	}
	for s := Stage(0); s < StageCount; s++ {
		if !got.Observed(s) {
			t.Fatalf("stage %v unobserved", s)
		}
	}
	if got.Stages[StageRecv] < int64(time.Millisecond)/2 {
		t.Fatalf("recv dwell = %dns, want >= ~1ms", got.Stages[StageRecv])
	}
	done := tr.Completed()
	if len(done) != 1 || done[0].ID != "tx1" {
		t.Fatalf("completed ring = %+v", done)
	}
	// Dropped traces disappear.
	tr.Arrive("tx2")
	tr.Drop([]string{"tx2"})
	if _, ok := tr.Trace("tx2"); ok {
		t.Fatal("dropped trace still present")
	}
}

// TestTracerBounded: the active map refuses new traces past the bound
// and counts the refusals.
func TestTracerBounded(t *testing.T) {
	tr := newTracer()
	tr.maxActive = 4
	for i := 0; i < 10; i++ {
		tr.Arrive(fmt.Sprintf("tx%d", i))
	}
	if n := tr.Dropped(); n != 6 {
		t.Fatalf("dropped = %d, want 6", n)
	}
	// Completed ring wraps at capacity.
	tr2 := newTracer()
	ids := make([]string, 0, defaultDoneCap+10)
	for i := 0; i < defaultDoneCap+10; i++ {
		id := fmt.Sprintf("tx%d", i)
		tr2.Observe(id, StageApply, time.Microsecond)
		tr2.Sealed([]string{id}, int64(i))
		ids = append(ids, id)
	}
	done := tr2.Completed()
	if len(done) != defaultDoneCap {
		t.Fatalf("ring len = %d, want %d", len(done), defaultDoneCap)
	}
	if done[0].ID != ids[10] || done[len(done)-1].ID != ids[len(ids)-1] {
		t.Fatalf("ring order wrong: first=%s last=%s", done[0].ID, done[len(done)-1].ID)
	}
}

// TestTracerConcurrent exercises the tracer under racing writers for
// the -race gate.
func TestTracerConcurrent(t *testing.T) {
	reg := New()
	tr := reg.Tracer()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				id := fmt.Sprintf("w%d-tx%d", w, i)
				tr.Arrive(id)
				tr.MarkReceived([]string{id})
				tr.ObserveEach([]string{id}, StageApply, time.Microsecond)
				tr.Sealed([]string{id}, int64(i))
			}
		}(w)
	}
	wg.Wait()
	if s := tr.StageHistogram(StageApply).Snapshot(); s.Count != 8*500 {
		t.Fatalf("apply observations = %d, want %d", s.Count, 8*500)
	}
}

// TestSnapshotAndOpsEndpoint: the registry snapshot reaches /metrics
// as JSON and /traces lists completed traces.
func TestSnapshotAndOpsEndpoint(t *testing.T) {
	reg := New()
	reg.Counter("a.hits").Add(3)
	reg.Gauge("a.height").Set(9)
	reg.Histogram("a.lat_ns").ObserveDuration(2 * time.Millisecond)
	reg.Tracer().Observe("txA", StageSeal, time.Millisecond)
	reg.Tracer().Sealed([]string{"txA"}, 5)

	snap := reg.Snapshot()
	if snap.Counters["a.hits"] != 3 || snap.Gauges["a.height"] != 9 {
		t.Fatalf("snapshot = %+v", snap)
	}
	if snap.Histograms["a.lat_ns"].Count != 1 {
		t.Fatalf("histogram snapshot missing: %+v", snap.Histograms)
	}
	if snap.Stages["seal"].Count != 1 {
		t.Fatalf("stage snapshot missing: %+v", snap.Stages)
	}
	if got := snap.CounterNames(); len(got) != 1 || got[0] != "a.hits" {
		t.Fatalf("counter names = %v", got)
	}

	srv, err := Serve("localhost:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + srv.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var wire Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&wire); err != nil {
		t.Fatal(err)
	}
	if wire.Counters["a.hits"] != 3 {
		t.Fatalf("/metrics counters = %+v", wire.Counters)
	}
	resp2, err := http.Get("http://" + srv.Addr() + "/traces")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var traces []map[string]any
	if err := json.NewDecoder(resp2.Body).Decode(&traces); err != nil {
		t.Fatal(err)
	}
	if len(traces) != 1 || traces[0]["id"] != "txA" {
		t.Fatalf("/traces = %+v", traces)
	}
}
