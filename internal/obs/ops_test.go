package obs

import (
	"encoding/json"
	"net/http/httptest"
	"testing"
)

// The labeled ops endpoint serves every registry's snapshot in one
// scrape, keyed by its label — how a sharded deployment keeps
// per-shard metrics distinguishable.
func TestLabeledHandlerMetrics(t *testing.T) {
	regs := map[string]*Registry{
		"shard-0": New(),
		"shard-1": New(),
	}
	regs["shard-0"].Counter("shard.local_blocks").Add(3)
	regs["shard-1"].Counter("shard.local_blocks").Add(7)
	regs["shard-1"].Gauge("shard.height").Set(42)

	srv := httptest.NewServer(LabeledHandler(regs))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var got map[string]Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("labels = %d, want 2", len(got))
	}
	if got["shard-0"].Counters["shard.local_blocks"] != 3 {
		t.Fatalf("shard-0 snapshot: %+v", got["shard-0"].Counters)
	}
	if got["shard-1"].Counters["shard.local_blocks"] != 7 || got["shard-1"].Gauges["shard.height"] != 42 {
		t.Fatalf("shard-1 snapshot: %+v", got["shard-1"])
	}
}
