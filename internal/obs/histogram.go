package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// The histogram is log-linear (HDR-style): each power-of-two magnitude
// is split into 2^histSubBits linear sub-buckets, so any recorded
// value lands in a bucket whose width is at most 1/16th of the value —
// a bounded ~6.25% relative error on any quantile, with the bucket
// midpoint halving that. Values 0..15 get exact unit buckets.
const (
	histSubBits  = 4
	histSubCount = 1 << histSubBits
	// histBuckets covers the full non-negative int64 range: rows 1..60
	// of 16 sub-buckets above the 16 exact low buckets.
	histBuckets = (64-histSubBits)*histSubCount + histSubCount
)

// bucketIndex maps a non-negative value to its bucket.
func bucketIndex(v uint64) int {
	if v < histSubCount {
		return int(v)
	}
	k := bits.Len64(v) - 1 // 2^k <= v < 2^(k+1), k >= histSubBits
	row := k - histSubBits + 1
	sub := (v >> uint(k-histSubBits)) & (histSubCount - 1)
	return row<<histSubBits + int(sub)
}

// bucketMid returns the midpoint of a bucket — the value a quantile
// falling in that bucket reports.
func bucketMid(i int) int64 {
	if i < histSubCount {
		return int64(i)
	}
	row := i >> histSubBits
	sub := uint64(i & (histSubCount - 1))
	k := row + histSubBits - 1
	lo := uint64(1)<<uint(k) + sub<<uint(k-histSubBits)
	width := uint64(1) << uint(k-histSubBits)
	return int64(lo + width/2)
}

// Histogram is a lock-free log-linear histogram. Observe is one atomic
// add on the bucket plus count/sum updates — no locks, no allocation.
// All methods are nil-safe no-ops.
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Int64
	min     atomic.Int64
	max     atomic.Int64
	buckets [histBuckets]atomic.Uint64
}

func newHistogram() *Histogram {
	h := &Histogram{}
	h.min.Store(math.MaxInt64)
	h.max.Store(math.MinInt64)
	return h
}

// Observe records one value. Negative values clamp to zero.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.buckets[bucketIndex(uint64(v))].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		m := h.min.Load()
		if v >= m || h.min.CompareAndSwap(m, v) {
			break
		}
	}
	for {
		m := h.max.Load()
		if v <= m || h.max.CompareAndSwap(m, v) {
			break
		}
	}
}

// ObserveDuration records a duration in nanoseconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(int64(d)) }

// ObserveSince records the nanoseconds elapsed since t0.
func (h *Histogram) ObserveSince(t0 time.Time) { h.Observe(int64(time.Since(t0))) }

// HistSnapshot is a point-in-time summary of one histogram. Sum, Min,
// Max, and the quantiles are exact for the min/max/sum/count fields
// and bucket-midpoint approximations (<= ~6.25% relative error) for
// the quantiles. For metrics named *_ns the values are nanoseconds.
type HistSnapshot struct {
	Count uint64 `json:"count"`
	Sum   int64  `json:"sum"`
	Min   int64  `json:"min"`
	Max   int64  `json:"max"`
	P50   int64  `json:"p50"`
	P90   int64  `json:"p90"`
	P99   int64  `json:"p99"`
	P999  int64  `json:"p999"`
}

// Mean returns the exact mean, or 0 for an empty snapshot.
func (s HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Snapshot summarizes the histogram. Concurrent Observes may straddle
// the bucket walk; each bucket is still read atomically.
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	if h == nil || h.count.Load() == 0 {
		return s
	}
	var counts [histBuckets]uint64
	var total uint64
	for i := range h.buckets {
		counts[i] = h.buckets[i].Load()
		total += counts[i]
	}
	s.Count = total
	s.Sum = h.sum.Load()
	s.Min = h.min.Load()
	s.Max = h.max.Load()
	quantile := func(q float64) int64 {
		rank := uint64(q * float64(total))
		if rank >= total {
			rank = total - 1
		}
		var seen uint64
		for i, c := range counts {
			seen += c
			if seen > rank {
				v := bucketMid(i)
				// Clamp to the observed extremes: the top and bottom
				// buckets' midpoints can overshoot them.
				if v < s.Min {
					v = s.Min
				}
				if v > s.Max {
					v = s.Max
				}
				return v
			}
		}
		return s.Max
	}
	s.P50 = quantile(0.50)
	s.P90 = quantile(0.90)
	s.P99 = quantile(0.99)
	s.P999 = quantile(0.999)
	return s
}
