// Package obs is the pipeline-wide observability layer: a dependency-
// free registry of sharded lock-free counters, gauges, log-linear
// latency histograms, and a height-stamped per-stage transaction
// tracer. Every layer of the node — mempool admission, the parallel
// scheduler, the ledger commit pipeline, the storage engine, the
// docstore planner, and the query engine — records into one Registry,
// and the same Registry backs the opt-in HTTP ops endpoint
// (smartchaindb -opsaddr) and scdb-bench's machine-readable output.
//
// Every handle and the Registry itself are nil-safe: a nil *Registry
// hands out nil handles whose methods are no-ops, so instrumented code
// never branches on "is observability on" — the nil receiver check is
// the no-op build, and `make bench-obs` pins its cost against the
// instrumented one.
package obs

import (
	"math/rand/v2"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
)

// cellCount is the number of padded shards a Counter spreads its
// increments over: the next power of two covering GOMAXPROCS, capped
// so an idle many-core box doesn't pay a large read-side sum.
var cellCount, cellMask = func() (int, uint32) {
	n := 1
	for n < runtime.GOMAXPROCS(0) && n < 64 {
		n <<= 1
	}
	return n, uint32(n - 1)
}()

// ccell is one padded counter shard. The padding keeps concurrent
// writers on different cells out of each other's cache lines.
type ccell struct {
	n atomic.Uint64
	_ [56]byte
}

// Counter is a monotone counter sharded across padded cells. Add picks
// a cell with cheap per-thread randomness (no lock, no allocation);
// Value sums the cells, so totals are exact regardless of how the
// increments were spread. All methods are nil-safe no-ops.
type Counter struct {
	cells []ccell
}

func newCounter() *Counter { return &Counter{cells: make([]ccell, cellCount)} }

// Add adds n to the counter.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.cells[rand.Uint32()&cellMask].n.Add(n)
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the exact total across all cells.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	var sum uint64
	for i := range c.cells {
		sum += c.cells[i].n.Load()
	}
	return sum
}

// Gauge is a settable instantaneous value (heights, segment counts,
// pool sizes). Gauges are written rarely compared to counters, so a
// single atomic is enough. All methods are nil-safe no-ops.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adds d.
func (g *Gauge) Add(d int64) {
	if g == nil {
		return
	}
	g.v.Add(d)
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Registry is the root of the observability tree: named counters,
// gauges, histograms, and the stage tracer. Get-or-create lookups are
// lock-free after first use (sync.Map fast path); hot paths should
// nevertheless cache the returned handle — the handle, not the name
// lookup, is the allocation-free increment.
//
// A nil *Registry is the no-op registry: every accessor returns a nil
// handle whose methods do nothing.
type Registry struct {
	counters sync.Map // name -> *Counter
	gauges   sync.Map // name -> *Gauge
	hists    sync.Map // name -> *Histogram
	tracer   *Tracer
}

// New builds an empty registry with an attached tracer.
func New() *Registry {
	return &Registry{tracer: newTracer()}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	if v, ok := r.counters.Load(name); ok {
		return v.(*Counter)
	}
	v, _ := r.counters.LoadOrStore(name, newCounter())
	return v.(*Counter)
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	if v, ok := r.gauges.Load(name); ok {
		return v.(*Gauge)
	}
	v, _ := r.gauges.LoadOrStore(name, &Gauge{})
	return v.(*Gauge)
}

// Histogram returns the named histogram, creating it on first use.
// Metric names ending in _ns hold durations in nanoseconds; others
// hold plain values (bytes, batch sizes, group counts).
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	if v, ok := r.hists.Load(name); ok {
		return v.(*Histogram)
	}
	v, _ := r.hists.LoadOrStore(name, newHistogram())
	return v.(*Histogram)
}

// Tracer returns the registry's stage tracer (nil for a nil registry).
func (r *Registry) Tracer() *Tracer {
	if r == nil {
		return nil
	}
	return r.tracer
}

// Snapshot is a point-in-time copy of every metric in a registry.
type Snapshot struct {
	Counters   map[string]uint64       `json:"counters"`
	Gauges     map[string]int64        `json:"gauges"`
	Histograms map[string]HistSnapshot `json:"histograms"`
	// Stages holds the tracer's aggregate per-stage dwell histograms,
	// keyed by stage name in pipeline order (recv ... seal).
	Stages map[string]HistSnapshot `json:"stages"`
}

// Snapshot captures every counter, gauge, histogram, and the tracer's
// per-stage aggregates. Safe to call concurrently with writers; each
// metric is read atomically (the snapshot as a whole is not a single
// consistent cut, which monitoring never needs).
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]uint64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistSnapshot{},
		Stages:     map[string]HistSnapshot{},
	}
	if r == nil {
		return s
	}
	r.counters.Range(func(k, v any) bool {
		s.Counters[k.(string)] = v.(*Counter).Value()
		return true
	})
	r.gauges.Range(func(k, v any) bool {
		s.Gauges[k.(string)] = v.(*Gauge).Value()
		return true
	})
	r.hists.Range(func(k, v any) bool {
		s.Histograms[k.(string)] = v.(*Histogram).Snapshot()
		return true
	})
	for st, h := range r.tracer.stageSnapshots() {
		s.Stages[st] = h
	}
	return s
}

// Names returns the sorted metric names of one snapshot section.
func names[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// CounterNames returns the snapshot's counter names, sorted.
func (s Snapshot) CounterNames() []string { return names(s.Counters) }

// GaugeNames returns the snapshot's gauge names, sorted.
func (s Snapshot) GaugeNames() []string { return names(s.Gauges) }

// HistogramNames returns the snapshot's histogram names, sorted.
func (s Snapshot) HistogramNames() []string { return names(s.Histograms) }
