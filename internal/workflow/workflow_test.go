package workflow

import (
	"reflect"
	"testing"

	"smartchaindb/internal/keys"
	"smartchaindb/internal/server"
	"smartchaindb/internal/txn"
)

func TestValidSequences(t *testing.T) {
	ra := ReverseAuction()
	good := [][]string{
		{txn.OpCreate},
		{txn.OpCreate, txn.OpTransfer},
		{txn.OpCreate, txn.OpBid, txn.OpAcceptBid},
		{txn.OpRequest, txn.OpBid, txn.OpAcceptBid, txn.OpTransfer},
		{txn.OpCreate, txn.OpBid, txn.OpAcceptBid, txn.OpReturn},
		{txn.OpCreate, txn.OpTransfer, txn.OpTransfer},
	}
	for _, seq := range good {
		if err := ra.ValidSequence(seq); err != nil {
			t.Errorf("%v rejected: %v", seq, err)
		}
	}
	bad := [][]string{
		{},
		{txn.OpBid},                     // cannot initiate
		{txn.OpCreate, txn.OpAcceptBid}, // illegal step
		{txn.OpRequest},                 // REQUEST is not terminal
		{txn.OpRequest, txn.OpBid},      // BID is not terminal
		{txn.OpCreate, txn.OpRequest},   // illegal step
	}
	for _, seq := range bad {
		if err := ra.ValidSequence(seq); err == nil {
			t.Errorf("%v accepted", seq)
		}
	}
}

func TestSimpleTransferSpec(t *testing.T) {
	st := SimpleTransfer()
	if err := st.ValidSequence([]string{txn.OpCreate, txn.OpTransfer, txn.OpTransfer}); err != nil {
		t.Error(err)
	}
	if err := st.ValidSequence([]string{txn.OpCreate, txn.OpBid}); err == nil {
		t.Error("BID should be illegal in simple-transfer")
	}
}

func TestTracker(t *testing.T) {
	tr := NewTracker(ReverseAuction())
	if err := tr.Advance("rfq1", txn.OpRequest); err != nil {
		t.Fatal(err)
	}
	if tr.Completed("rfq1") {
		t.Error("REQUEST alone should not complete")
	}
	if err := tr.Advance("rfq1", txn.OpBid); err != nil {
		t.Fatal(err)
	}
	if err := tr.Advance("rfq1", txn.OpAcceptBid); err != nil {
		t.Fatal(err)
	}
	if !tr.Completed("rfq1") {
		t.Error("ACCEPT_BID should complete the instance")
	}
	if got := tr.Path("rfq1"); !reflect.DeepEqual(got, []string{"REQUEST", "BID", "ACCEPT_BID"}) {
		t.Errorf("path = %v", got)
	}
	// Illegal transitions are rejected and do not advance the path.
	if err := tr.Advance("rfq1", txn.OpBid); err == nil {
		t.Error("ACCEPT_BID -> BID should be illegal")
	}
	if err := tr.Advance("rfq2", txn.OpBid); err == nil {
		t.Error("instance cannot start with BID")
	}
}

// buildAuction runs a complete auction on a standalone server node and
// returns the node plus the key transactions.
func buildAuction(t *testing.T) (*server.Node, *txn.Transaction, *txn.Transaction, *txn.Transaction) {
	t.Helper()
	n := server.NewNode(server.Config{ReservedSeed: 3})
	requester, bidder := keys.MustGenerate(), keys.MustGenerate()

	rfq := txn.NewRequest(requester.PublicBase58(), map[string]any{"capabilities": []any{"cnc"}}, nil)
	if err := txn.Sign(rfq, requester); err != nil {
		t.Fatal(err)
	}
	if err := n.Apply(rfq); err != nil {
		t.Fatal(err)
	}
	asset := txn.NewCreate(bidder.PublicBase58(), map[string]any{"capabilities": []any{"cnc"}}, 1, nil)
	if err := txn.Sign(asset, bidder); err != nil {
		t.Fatal(err)
	}
	if err := n.Apply(asset); err != nil {
		t.Fatal(err)
	}
	bid := txn.NewBid(bidder.PublicBase58(), asset.ID,
		txn.Spend{Ref: txn.OutputRef{TxID: asset.ID, Index: 0}, Owners: []string{bidder.PublicBase58()}},
		1, n.Escrow().PublicBase58(), rfq.ID, nil)
	if err := txn.Sign(bid, bidder); err != nil {
		t.Fatal(err)
	}
	if err := n.Apply(bid); err != nil {
		t.Fatal(err)
	}
	accept, err := txn.NewAcceptBid(requester.PublicBase58(), n.Escrow().PublicBase58(), rfq.ID, bid, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := txn.Sign(accept, n.Escrow(), requester); err != nil {
		t.Fatal(err)
	}
	if err := n.Apply(accept); err != nil {
		t.Fatal(err)
	}
	return n, asset, bid, accept
}

func TestTraceReconstructsWorkflow(t *testing.T) {
	n, asset, _, accept := buildAuction(t)
	// The accept's child TRANSFER ends the winning asset's workflow.
	parent, err := n.State().GetTx(accept.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(parent.Children) != 1 {
		t.Fatalf("children = %v", parent.Children)
	}
	ops, ids, err := Trace(n.State(), parent.Children[0])
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"CREATE", "BID", "ACCEPT_BID", "TRANSFER"}
	if !reflect.DeepEqual(ops, want) {
		t.Errorf("ops = %v, want %v", ops, want)
	}
	if ids[0] != asset.ID {
		t.Errorf("trace head = %s, want the CREATE", ids[0][:8])
	}
	// The traced op path validates against the reverse-auction spec.
	if err := ReverseAuction().ValidSequence(ops); err != nil {
		t.Errorf("traced sequence invalid: %v", err)
	}
}

func TestTraceErrors(t *testing.T) {
	n := server.NewNode(server.Config{ReservedSeed: 3})
	if _, _, err := Trace(n.State(), "missing"); err == nil {
		t.Error("tracing a missing tx should fail")
	}
}

func TestValidateChain(t *testing.T) {
	n, asset, bid, _ := buildAuction(t)
	assetTx, _ := n.State().GetTx(asset.ID)
	bidTx, _ := n.State().GetTx(bid.ID)
	if err := ValidateChain(n.State(), []*txn.Transaction{assetTx, bidTx}); err != nil {
		t.Errorf("valid chain rejected: %v", err)
	}
	// A head with a spending input violates Definition 5.
	if err := ValidateChain(n.State(), []*txn.Transaction{bidTx}); err == nil {
		t.Error("BID as head should be rejected")
	}
	if err := ValidateChain(n.State(), nil); err == nil {
		t.Error("empty chain should be rejected")
	}
	// A follow-up spending an uncommitted transaction is rejected.
	ghost := bidTx.Clone()
	ghost.Inputs[0].Fulfills.TxID = "0000000000000000000000000000000000000000000000000000000000000000"
	if err := ValidateChain(n.State(), []*txn.Transaction{assetTx, ghost}); err == nil {
		t.Error("chain referencing uncommitted input should be rejected")
	}
}
