// Package workflow implements blockchain transaction workflows
// (Definition 5 of the paper): named sequences of transaction types
// composing marketplace processes, e.g. the reverse auction
// CREATE → REQUEST → BID → ACCEPT_BID → TRANSFER. A Spec declares the
// legal op sequences as data; a Tracker follows live instances against
// chain state; and Trace reconstructs a completed workflow from the
// spend/reference graph — the queryability the paper contrasts with
// smart contracts, whose workflow state hides inside program storage.
package workflow

import (
	"fmt"

	"smartchaindb/internal/txn"
)

// Spec declares a workflow as an op transition relation.
type Spec struct {
	// Name identifies the workflow.
	Name string
	// Heads are the operations allowed to initiate an instance. Per
	// Definition 5 a head transaction has no spending inputs.
	Heads []string
	// Transitions maps an operation to its legal successors.
	Transitions map[string][]string
	// Terminals are operations that may end an instance.
	Terminals []string
}

// ReverseAuction is the procurement workflow of the evaluation:
// CREATE and REQUEST initiate; bids respond to requests; an accepted
// bid triggers the closing transfers/returns.
func ReverseAuction() *Spec {
	return &Spec{
		Name:  "reverse-auction",
		Heads: []string{txn.OpCreate, txn.OpRequest},
		Transitions: map[string][]string{
			txn.OpCreate:    {txn.OpTransfer, txn.OpBid},
			txn.OpRequest:   {txn.OpBid},
			txn.OpBid:       {txn.OpAcceptBid},
			txn.OpAcceptBid: {txn.OpTransfer, txn.OpReturn},
			txn.OpTransfer:  {txn.OpTransfer, txn.OpBid},
			txn.OpReturn:    {txn.OpTransfer, txn.OpBid},
		},
		Terminals: []string{txn.OpCreate, txn.OpTransfer, txn.OpReturn, txn.OpAcceptBid},
	}
}

// SimpleTransfer is the minimal workflow CREATE or CREATE → TRANSFER*.
func SimpleTransfer() *Spec {
	return &Spec{
		Name:  "simple-transfer",
		Heads: []string{txn.OpCreate},
		Transitions: map[string][]string{
			txn.OpCreate:   {txn.OpTransfer},
			txn.OpTransfer: {txn.OpTransfer},
		},
		Terminals: []string{txn.OpCreate, txn.OpTransfer},
	}
}

// IsHead reports whether op may initiate an instance.
func (s *Spec) IsHead(op string) bool { return contains(s.Heads, op) }

// IsTerminal reports whether op may end an instance.
func (s *Spec) IsTerminal(op string) bool { return contains(s.Terminals, op) }

// ValidStep reports whether to may follow from.
func (s *Spec) ValidStep(from, to string) bool { return contains(s.Transitions[from], to) }

// ValidSequence checks a full op sequence against the spec: the head
// initiates, every step is a legal transition, and the tail terminates.
func (s *Spec) ValidSequence(ops []string) error {
	if len(ops) == 0 {
		return fmt.Errorf("workflow %s: empty sequence", s.Name)
	}
	if !s.IsHead(ops[0]) {
		return fmt.Errorf("workflow %s: %s cannot initiate", s.Name, ops[0])
	}
	for i := 1; i < len(ops); i++ {
		if !s.ValidStep(ops[i-1], ops[i]) {
			return fmt.Errorf("workflow %s: illegal step %s -> %s", s.Name, ops[i-1], ops[i])
		}
	}
	if !s.IsTerminal(ops[len(ops)-1]) {
		return fmt.Errorf("workflow %s: %s cannot terminate", s.Name, ops[len(ops)-1])
	}
	return nil
}

func contains(list []string, v string) bool {
	for _, e := range list {
		if e == v {
			return true
		}
	}
	return false
}

// ChainState is the read view Trace and Tracker need.
type ChainState interface {
	GetTx(id string) (*txn.Transaction, error)
	IsCommitted(id string) bool
}

// ValidateChain checks Definition 5 over concrete transactions: the
// head spends nothing, and every later transaction's inputs come from
// committed transactions.
func ValidateChain(state ChainState, seq []*txn.Transaction) error {
	if len(seq) == 0 {
		return fmt.Errorf("workflow: empty chain")
	}
	head := seq[0]
	for _, in := range head.Inputs {
		if in.Fulfills != nil {
			return fmt.Errorf("workflow: head %s spends an output; heads must have null input", short(head.ID))
		}
	}
	for _, t := range seq[1:] {
		for _, in := range t.Inputs {
			if in.Fulfills == nil {
				continue
			}
			if !state.IsCommitted(in.Fulfills.TxID) {
				return fmt.Errorf("workflow: %s input spends uncommitted %s", short(t.ID), short(in.Fulfills.TxID))
			}
		}
	}
	return nil
}

// Trace reconstructs the op path ending at txID by walking spending
// inputs backwards to the workflow head. It demonstrates that workflow
// provenance is a chain query in the declarative model.
func Trace(state ChainState, txID string) ([]string, []string, error) {
	var ops, ids []string
	cur := txID
	for depth := 0; depth < 1024; depth++ {
		t, err := state.GetTx(cur)
		if err != nil {
			return nil, nil, err
		}
		ops = append([]string{t.Operation}, ops...)
		ids = append([]string{t.ID}, ids...)
		var next string
		for _, in := range t.Inputs {
			if in.Fulfills != nil {
				next = in.Fulfills.TxID
				break
			}
		}
		if next == "" {
			return ops, ids, nil
		}
		cur = next
	}
	return nil, nil, fmt.Errorf("workflow: trace exceeded depth limit at %s", short(txID))
}

// Tracker follows live workflow instances keyed by an instance ID
// (the REQUEST transaction for reverse auctions).
type Tracker struct {
	spec      *Spec
	instances map[string][]string // instance -> op path so far
}

// NewTracker creates a tracker for one spec.
func NewTracker(spec *Spec) *Tracker {
	return &Tracker{spec: spec, instances: make(map[string][]string)}
}

// Advance records the next transaction of an instance, rejecting
// illegal transitions.
func (tr *Tracker) Advance(instanceID string, op string) error {
	path := tr.instances[instanceID]
	if len(path) == 0 {
		if !tr.spec.IsHead(op) {
			return fmt.Errorf("workflow %s: instance %s cannot start with %s", tr.spec.Name, short(instanceID), op)
		}
	} else if !tr.spec.ValidStep(path[len(path)-1], op) {
		return fmt.Errorf("workflow %s: instance %s illegal step %s -> %s", tr.spec.Name, short(instanceID), path[len(path)-1], op)
	}
	tr.instances[instanceID] = append(path, op)
	return nil
}

// Path returns the op path of an instance so far.
func (tr *Tracker) Path(instanceID string) []string {
	return append([]string(nil), tr.instances[instanceID]...)
}

// Completed reports whether the instance currently ends on a terminal
// operation.
func (tr *Tracker) Completed(instanceID string) bool {
	path := tr.instances[instanceID]
	return len(path) > 0 && tr.spec.IsTerminal(path[len(path)-1])
}

func short(s string) string {
	if len(s) <= 8 {
		return s
	}
	return s[:8] + "..."
}
