package bench

import "testing"

// TestRunStorageDiskRecoversEverything smoke-runs the storage
// experiment and requires both disk recovery legs (WAL replay and
// segment load) to reproduce the committed state exactly.
func TestRunStorageDiskRecoversEverything(t *testing.T) {
	res := RunStorage(StorageParams{Blocks: 2, BlockSizes: []int{16, 64}, Seed: 11})
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d, want 4 (memory+disk per size)", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.Txs != 2*row.BlockTxs {
			t.Errorf("%s/%d committed %d txs, want %d", row.Backend, row.BlockTxs, row.Txs, 2*row.BlockTxs)
		}
		if row.TPS <= 0 {
			t.Errorf("%s/%d reported tps %f", row.Backend, row.BlockTxs, row.TPS)
		}
		if row.Backend == "disk" {
			if !row.Match {
				t.Errorf("disk/%d recovery mismatch: recovered %d of %d", row.BlockTxs, row.Recovered, row.Txs)
			}
			if row.WALBytes == 0 {
				t.Errorf("disk/%d reported empty WAL", row.BlockTxs)
			}
		}
	}
}
