package bench

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunSCDBSmall(t *testing.T) {
	res := RunSCDB(SCDBParams{PayloadBytes: 371, Auctions: 2, Bidders: 3, Seed: 1})
	// 2 requests + 6 creates + 6 bids + 2 accepts + 6 children = 22.
	if res.Committed != 22 {
		t.Fatalf("committed = %d, want 22", res.Committed)
	}
	for _, op := range []string{"CREATE", "REQUEST", "BID", "ACCEPT_BID"} {
		st := res.PerOp[op]
		if st.Count == 0 || st.Mean <= 0 {
			t.Errorf("%s stats = %+v", op, st)
		}
	}
	if res.Throughput <= 0 {
		t.Error("throughput should be positive")
	}
}

func TestSCDBLatencyFlatAcrossSizes(t *testing.T) {
	small := RunSCDB(SCDBParams{PayloadBytes: 112, Auctions: 2, Bidders: 3, Seed: 2})
	big := RunSCDB(SCDBParams{PayloadBytes: 1740, Auctions: 2, Bidders: 3, Seed: 2})
	// The declarative system's validation cost is payload-independent:
	// latency at 1.74 KB stays within 50% of the 0.11 KB point.
	for _, op := range []string{"CREATE", "BID"} {
		s, b := small.PerOp[op].Mean, big.PerOp[op].Mean
		if b > s*3/2 {
			t.Errorf("%s latency grew with size: %v -> %v", op, s, b)
		}
	}
}

func TestRunETHSmall(t *testing.T) {
	res, err := RunETH(ETHParams{PayloadBytes: 371, Auctions: 1, Bidders: 3, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	// 1 rfq + 3 assets + 3 bids + 1 accept = 8.
	if res.Committed != 8 {
		t.Fatalf("committed = %d, want 8", res.Committed)
	}
	if res.Failed != 0 {
		t.Errorf("failed receipts = %d", res.Failed)
	}
	for _, op := range []string{"CREATE", "REQUEST", "BID", "ACCEPT_BID"} {
		if res.PerOp[op].Count == 0 {
			t.Errorf("%s missing", op)
		}
		if res.GasPerOp[op] == 0 {
			t.Errorf("%s gas missing", op)
		}
	}
}

func TestETHBidGasGrowsWithSize(t *testing.T) {
	small, err := RunETH(ETHParams{PayloadBytes: 112, Auctions: 1, Bidders: 2, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	big, err := RunETH(ETHParams{PayloadBytes: 1740, Auctions: 1, Bidders: 2, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if big.GasPerOp["BID"] < small.GasPerOp["BID"]*2 {
		t.Errorf("BID gas should grow steeply with size: %d -> %d",
			small.GasPerOp["BID"], big.GasPerOp["BID"])
	}
	if big.GasPerOp["CREATE"] < small.GasPerOp["CREATE"]*2 {
		t.Errorf("CREATE gas should grow with stored payload: %d -> %d",
			small.GasPerOp["CREATE"], big.GasPerOp["CREATE"])
	}
	if big.PerOp["BID"].Mean <= small.PerOp["BID"].Mean {
		t.Errorf("BID latency should grow with size: %v -> %v",
			small.PerOp["BID"].Mean, big.PerOp["BID"].Mean)
	}
}

func TestFig2(t *testing.T) {
	r, err := RunFig2(5)
	if err != nil {
		t.Fatal(err)
	}
	if r.NativeGas != 21000 {
		t.Errorf("native gas = %d", r.NativeGas)
	}
	if r.GasOverheadPct < 20 || r.GasOverheadPct > 120 {
		t.Errorf("gas overhead = %.0f%%, want roughly the paper's +40%%", r.GasOverheadPct)
	}
	var buf bytes.Buffer
	PrintFig2(&buf, r)
	if !strings.Contains(buf.String(), "native TRANSFER") {
		t.Error("Fig2 printout missing rows")
	}
}

func TestUsability(t *testing.T) {
	r, err := RunUsability()
	if err != nil {
		t.Fatal(err)
	}
	if r.ContractLines < 150 || r.ContractLines > 200 {
		t.Errorf("contract lines = %d, want ~175", r.ContractLines)
	}
	if r.DeclarativeLines != 0 {
		t.Errorf("declarative lines = %d, want 0", r.DeclarativeLines)
	}
	var buf bytes.Buffer
	PrintUsability(&buf, r)
	if !strings.Contains(buf.String(), "175") {
		t.Error("usability printout missing paper reference")
	}
}

func TestFig7TinySweepShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep is slow")
	}
	rows, err := RunFig7([]int{112, 1740}, Fig7Scale{Auctions: 1, Bidders: 3}, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	smallRow, bigRow := rows[0], rows[1]
	// Shape 1: SCDB flat, ETH grows (latency for BID).
	if bigRow.SCDB.PerOp["BID"].Mean > smallRow.SCDB.PerOp["BID"].Mean*2 {
		t.Error("SCDB BID latency should stay flat")
	}
	if bigRow.ETH.PerOp["BID"].Mean <= smallRow.ETH.PerOp["BID"].Mean {
		t.Error("ETH BID latency should grow")
	}
	// Shape 2: ETH is slower than SCDB at every size.
	for _, row := range rows {
		if row.ETH.PerOp["BID"].Mean < row.SCDB.PerOp["BID"].Mean {
			t.Error("ETH-SC should be slower than SCDB")
		}
	}
	// Shape 3: SCDB throughput above ETH at every size, and the ETH BID
	// latency gap widens sharply at the largest payload.
	for _, row := range rows {
		if row.SCDB.Throughput < row.ETH.Throughput*3 {
			t.Errorf("SCDB throughput %0.1f should exceed ETH %0.2f",
				row.SCDB.Throughput, row.ETH.Throughput)
		}
	}
	bigRatio := float64(bigRow.ETH.PerOp["BID"].Mean) / float64(bigRow.SCDB.PerOp["BID"].Mean)
	if bigRatio < 5 {
		t.Errorf("ETH/SCDB BID latency ratio at 1.74KB = %.1fx, want the gap to widen", bigRatio)
	}
	var buf bytes.Buffer
	PrintFig7(&buf, rows)
	for _, want := range []string{"Figure 7a", "Figure 7b", "Figure 7c"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("printout missing %s", want)
		}
	}
}

func TestFig8TinySweepShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep is slow")
	}
	rows, err := RunFig8([]int{4, 8}, Fig7Scale{Auctions: 1, Bidders: 3}, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Latency stays stable as the cluster grows (Figures 8a/8b).
	for _, op := range []string{"CREATE", "BID"} {
		s4 := rows[0].SCDB.PerOp[op].Mean
		s8 := rows[1].SCDB.PerOp[op].Mean
		if s8 > s4*2 {
			t.Errorf("SCDB %s latency doubled from 4 to 8 nodes: %v -> %v", op, s4, s8)
		}
	}
	var buf bytes.Buffer
	PrintFig8(&buf, rows)
	for _, want := range []string{"Figure 8a", "Figure 8b", "Figure 8c"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("printout missing %s", want)
		}
	}
}
