package bench

import (
	"sort"
	"testing"
	"time"

	"smartchaindb/internal/consensus"
	"smartchaindb/internal/server"
	"smartchaindb/internal/workload"
)

// TestPackingPolicyDifferential drives the identical conflict-heavy
// auction workload through two full consensus clusters — one packing
// blocks in arrival order, one with the makespan-aware policy — and
// requires them to commit exactly the same transaction set and
// byte-identical chain state on every validator. Packing may reshape
// blocks; it must never reshape state.
func TestPackingPolicyDifferential(t *testing.T) {
	const auctions, bidders = 3, 5

	type outcome struct {
		committed    []string
		fingerprints []string
	}
	run := func(packing string) outcome {
		cluster := server.NewCluster(server.ClusterConfig{
			Nodes:         4,
			Seed:          4242, // same seed: identical scheduling and workload
			BlockInterval: 40 * time.Millisecond,
			MaxBlockTxs:   8,
			Pipelined:     true,
			ChildDelay:    100 * time.Millisecond,
			Packing:       packing,
			Node: server.Config{
				ReceiverTime:        2 * time.Millisecond,
				ValidationTimePerTx: time.Millisecond,
				ParallelWorkers:     4,
				AdmissionWorkers:    4,
				MempoolBatch:        16,
			},
		})
		defer cluster.Close()
		var committed []string
		cluster.OnCommit(func(tx consensus.Tx, _ time.Duration) {
			committed = append(committed, tx.Hash())
		})
		gen := workload.NewGenerator(55, cluster.ServerNode(0).Escrow())
		groups := make([]*workload.AuctionGroup, 0, auctions)
		base := 0
		for i := 0; i < auctions; i++ {
			groups = append(groups, gen.NewAuctionGroup(base, workload.AuctionGroupSpec{
				BiddersPerAuction: bidders, PayloadBytes: 96,
			}))
			base += bidders + 1
		}
		driveAuctionPhases(cluster, groups, 3*time.Millisecond)
		sort.Strings(committed)
		var fps []string
		for i := 0; i < 4; i++ {
			fps = append(fps, cluster.ServerNode(i).State().Fingerprint())
		}
		return outcome{committed: committed, fingerprints: fps}
	}

	fifo := run("fifo")
	packed := run("makespan")

	if len(fifo.committed) == 0 {
		t.Fatal("FIFO cluster committed nothing")
	}
	if len(fifo.committed) != len(packed.committed) {
		t.Fatalf("committed counts differ: fifo=%d makespan=%d", len(fifo.committed), len(packed.committed))
	}
	for i := range fifo.committed {
		if fifo.committed[i] != packed.committed[i] {
			t.Fatalf("committed sets differ at %d: %.8s vs %.8s", i, fifo.committed[i], packed.committed[i])
		}
	}
	// Replicas agree within each cluster...
	for i, fp := range fifo.fingerprints {
		if fp != fifo.fingerprints[0] {
			t.Fatalf("FIFO node %d state diverged", i)
		}
	}
	for i, fp := range packed.fingerprints {
		if fp != packed.fingerprints[0] {
			t.Fatalf("makespan node %d state diverged", i)
		}
	}
	// ...and across the two policies, byte for byte.
	if fifo.fingerprints[0] != packed.fingerprints[0] {
		t.Fatal("packing policy changed committed state")
	}
}

// TestRunMempoolSmoke pins the experiment's acceptance shape on a
// small instance: the packing leg must strictly beat FIFO's makespan
// at conflict rates >= 25%, the virtual-time admission leg must speed
// up with workers, and every admission path must agree on verdicts.
func TestRunMempoolSmoke(t *testing.T) {
	r := RunMempool(MempoolParams{
		Txs:           256,
		Batch:         32,
		Workers:       []int{1, 4},
		ConflictRates: []float64{0.25, 0.5},
		BlockTxs:      64,
		PackWorkers:   8,
		Reps:          1,
		Seed:          99,
	})
	if !r.Agree {
		t.Fatal("admission paths disagreed")
	}
	for _, row := range r.PackRows {
		if row.PackedMakespan >= row.FIFOMakespan {
			t.Errorf("conflict %.0f%%: packed makespan %d not strictly below FIFO %d",
				row.ConflictRate*100, row.PackedMakespan, row.FIFOMakespan)
		}
	}
	if len(r.SimRows) != 2 {
		t.Fatalf("sim rows = %d", len(r.SimRows))
	}
	if r.SimRows[1].Throughput <= r.SimRows[0].Throughput {
		t.Errorf("batched parallel admission did not raise virtual-time throughput: w1=%.1f w4=%.1f",
			r.SimRows[0].Throughput, r.SimRows[1].Throughput)
	}
	for _, row := range r.AdmissionRows {
		if row.TPS <= 0 || row.Admitted == 0 {
			t.Errorf("degenerate admission row: %+v", row)
		}
	}
	// The structural screen must be doing the work the index exists
	// for: duplicates and double-spends skipped before validation.
	batched := r.AdmissionRows[len(r.AdmissionRows)-1]
	if batched.Screened == 0 {
		t.Error("batched admission screened nothing")
	}
}
