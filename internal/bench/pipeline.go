package bench

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"smartchaindb/internal/netsim"
	"smartchaindb/internal/parallel"
	"smartchaindb/internal/server"
	"smartchaindb/internal/txn"
	"smartchaindb/internal/workload"
)

// PipelineParams configures the deep-commit-pipeline experiment: the
// same independent-block workload committed with 1, 2, 4, 8 blocks
// concurrently mid-apply, sealing in height order, on both storage
// backends — the measurement behind the claim that the WAL group seal
// is the only serial stage left.
type PipelineParams struct {
	// Blocks is the number of blocks committed per measurement.
	Blocks int
	// BlockTxs is the number of transactions per block.
	BlockTxs int
	// Depths sweeps the concurrently-applying block bound (the
	// footprint fence's in-flight capacity). Depth 1 is the serial
	// baseline; server.Config.CommitDepth = depth+1 reproduces each
	// point on a live node (its ordered caller thread is the +1).
	Depths []int
	// ConflictRate is the intra-block chain rate of the workload;
	// blocks are mutually independent regardless, so the sweep isolates
	// cross-block pipelining from intra-block grouping.
	ConflictRate float64
	// Workers is the per-block commit apply worker count.
	Workers int
	// Reps repeats each measurement, keeping the fastest run.
	Reps int
	// Seed drives workload generation.
	Seed int64
}

func (p *PipelineParams) fill() {
	if p.Blocks <= 0 {
		p.Blocks = 8
	}
	if p.BlockTxs <= 0 {
		p.BlockTxs = 256
	}
	if len(p.Depths) == 0 {
		p.Depths = []int{1, 2, 4, 8}
	}
	hasSerial := false
	for _, d := range p.Depths {
		if d <= 1 {
			hasSerial = true
			break
		}
	}
	if !hasSerial {
		p.Depths = append([]int{1}, p.Depths...)
	}
	if p.ConflictRate <= 0 {
		p.ConflictRate = 0.25
	}
	if p.Workers <= 0 {
		p.Workers = 4
	}
	if p.Reps <= 0 {
		p.Reps = 3
	}
}

// PipelineDepthRow is one (backend, depth) point of the sweep.
type PipelineDepthRow struct {
	Backend string
	Depth   int
	Elapsed time.Duration
	TPS     float64
	Speedup float64 // vs the depth-1 row of the same backend
	Match   bool    // fingerprint equals the sequential CommitBlockAt reference
}

// PipelineSimRow is one depth point of the consensus-simulation leg:
// the auction workload through a commit-bound cluster with
// Config.CommitDepth swept directly. Virtual-time results are
// deterministic and independent of host cores.
type PipelineSimRow struct {
	CommitDepth int
	Throughput  float64 // committed tx per simulated second
	MeanMs      float64 // mean commit latency, simulated ms
	Committed   int
}

// PipelineResult is the full sweep.
type PipelineResult struct {
	Params  PipelineParams
	Rows    []PipelineDepthRow
	SimRows []PipelineSimRow
	// SimMatch records that every depth committed the same transaction
	// count with byte-identical state on every validator.
	SimMatch bool
}

// runPipelineOnce commits the prepared blocks through the depth-N
// pipeline: the driver thread admits each height through the footprint
// fence and reserves its seal slot, a per-block goroutine stages
// off-lock and seals in height order. Returns the wall time and the
// final state fingerprint. Depth 1 serializes (each admission waits
// out the previous seal) — the same code path as every other depth.
func runPipelineOnce(backend string, depth, workers int, setup []*txn.Transaction, blocks [][]*txn.Transaction) (time.Duration, string) {
	st, cleanup := commitState(backend)
	defer cleanup()
	commitSetup(st, setup)
	st.SetCommitWorkers(workers)
	var fence parallel.PipelineFence
	fence.SetDepth(depth)
	start := time.Now()
	for i := range blocks {
		block := blocks[i]
		h := int64(i + 2)
		fence.Begin(h, parallel.WriteKeys(block))
		pending := st.BeginBlockCommit(h)
		go func() {
			fence.WaitApply(h, parallel.TouchKeys(block))
			pending.Stage(block)
			committed, skipped, err := pending.Seal()
			if err != nil {
				panic(fmt.Sprintf("bench: pipeline seal block %d: %v", h, err))
			}
			if len(skipped) != 0 || len(committed) != len(block) {
				panic(fmt.Sprintf("bench: pipeline block %d committed %d of %d (skipped %d)", h, len(committed), len(block), len(skipped)))
			}
			fence.End(h)
		}()
	}
	fence.Drain()
	return time.Since(start), st.Fingerprint()
}

// RunPipeline measures the deep-commit-pipeline depth sweep.
func RunPipeline(p PipelineParams) PipelineResult {
	p.fill()
	res := PipelineResult{Params: p}
	setup, blocks := commitWorkload(CommitParams{
		Blocks: p.Blocks, BlockTxs: p.BlockTxs, Seed: p.Seed,
	}, p.ConflictRate)

	for _, backend := range []string{"memory", "disk"} {
		// Sequential CommitBlockAt reference: the fingerprint ground
		// truth every depth must reproduce byte for byte.
		refState, refCleanup := commitState(backend)
		commitSetup(refState, setup)
		refState.SetCommitWorkers(p.Workers)
		commitBlocksTimed(refState, blocks, 1)
		refFP := refState.Fingerprint()
		refCleanup()

		var base time.Duration
		for _, depth := range p.Depths {
			elapsed, fp := fastest(p.Reps, func() (time.Duration, string) {
				return runPipelineOnce(backend, depth, p.Workers, setup, blocks)
			})
			if fp != refFP {
				panic(fmt.Sprintf("bench: pipeline depth %d on %s diverged from the sequential reference:\n got  %s\n want %s",
					depth, backend, fp, refFP))
			}
			if depth <= 1 || base == 0 {
				base = elapsed
			}
			res.Rows = append(res.Rows, PipelineDepthRow{
				Backend: backend,
				Depth:   depth,
				Elapsed: elapsed,
				TPS:     tps(p.Blocks*p.BlockTxs, elapsed),
				Speedup: float64(base) / float64(elapsed),
				Match:   true, // divergence panics above
			})
		}
	}

	var fps []string
	for _, depth := range p.Depths {
		row, rowFPs := runSimPipeline(depth, p.Workers, p.Seed)
		res.SimRows = append(res.SimRows, row)
		fps = append(fps, rowFPs...)
	}
	res.SimMatch = len(fps) > 0
	for _, fp := range fps {
		if fp != fps[0] {
			res.SimMatch = false
		}
	}
	for i := 1; i < len(res.SimRows); i++ {
		if res.SimRows[i].Committed != res.SimRows[0].Committed {
			res.SimMatch = false
		}
	}
	return res
}

// runSimPipeline drives one auction workload through a commit-bound
// cluster at the given CommitDepth and returns the row plus every
// validator's final fingerprint.
func runSimPipeline(commitDepth, workers int, seed int64) (PipelineSimRow, []string) {
	cluster := server.NewCluster(server.ClusterConfig{
		Nodes:         4,
		Seed:          seed,
		BlockInterval: 10 * time.Millisecond,
		MaxBlockTxs:   64,
		Pipelined:     true,
		Latency:       netsim.UniformLatency{Base: 5 * time.Millisecond, Jitter: 2 * time.Millisecond},
		ChildDelay:    100 * time.Millisecond,
		Node: server.Config{
			ReceiverTime:        time.Millisecond,
			ValidationTimePerTx: 2 * time.Millisecond,
			CommitTimePerTx:     8 * time.Millisecond,
			ParallelWorkers:     workers,
			CommitWorkers:       workers,
			CommitDepth:         commitDepth,
		},
	})
	defer cluster.Close()
	gen := workload.NewGenerator(seed+7, cluster.ServerNode(0).Escrow())
	const auctions, bidders = 6, 8
	groups := make([]*workload.AuctionGroup, 0, auctions)
	base := 0
	for i := 0; i < auctions; i++ {
		groups = append(groups, gen.NewAuctionGroup(base, workload.AuctionGroupSpec{
			BiddersPerAuction: bidders, PayloadBytes: 128,
		}))
		base += bidders + 1
	}
	driveAuctionPhases(cluster, groups, 2*time.Millisecond)
	sum := cluster.Summarize()
	var fps []string
	for i := 0; i < 4; i++ {
		// A decided block may still be applying in the background;
		// drain before snapshotting so the fingerprint sees the seal.
		cluster.ServerNode(i).DrainCommits()
		fps = append(fps, cluster.ServerNode(i).State().Fingerprint())
	}
	return PipelineSimRow{
		CommitDepth: commitDepth,
		Throughput:  sum.Throughput,
		MeanMs:      float64(sum.MeanLatency) / float64(time.Millisecond),
		Committed:   sum.Committed,
	}, fps
}

// PrintPipeline renders the depth sweep.
func PrintPipeline(w io.Writer, r PipelineResult) {
	fmt.Fprintf(w, "Deep commit pipeline — %d blocks x %d txs per point, %d apply workers per block\n",
		r.Params.Blocks, r.Params.BlockTxs, r.Params.Workers)
	fmt.Fprintln(w, "Depth sweep — up to N blocks mid-apply at once, sealing in height order (server CommitDepth = depth+1)")
	fmt.Fprintf(w, "  %-8s %6s %12s %12s %9s %6s\n", "backend", "depth", "commit(ms)", "commit tps", "speedup", "match")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "  %-8s %6d %12.1f %12.0f %8.2fx %6t\n",
			row.Backend, row.Depth, ms(row.Elapsed), row.TPS, row.Speedup, row.Match)
	}
	fmt.Fprintf(w, "  (wall-clock rows depend on host cores: GOMAXPROCS=%d)\n", runtime.GOMAXPROCS(0))
	fmt.Fprintln(w)
	fmt.Fprintln(w, "Deep commit pipeline — consensus simulation (commit-bound cluster, virtual time, deterministic)")
	fmt.Fprintf(w, "  %-12s %12s %14s %10s\n", "commitdepth", "tps", "latency(ms)", "committed")
	for _, row := range r.SimRows {
		fmt.Fprintf(w, "  %-12d %12.1f %14.1f %10d\n", row.CommitDepth, row.Throughput, row.MeanMs, row.Committed)
	}
	fmt.Fprintf(w, "  states identical across depths and validators: %t\n", r.SimMatch)
	fmt.Fprintln(w)
}
