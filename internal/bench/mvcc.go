package bench

import (
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"smartchaindb/internal/docstore"
	"smartchaindb/internal/ledger"
	"smartchaindb/internal/storage"
	"smartchaindb/internal/txn"
)

// MVCCParams configures the snapshot-read interference experiment:
// the same marketplace query mix measured twice on one warmed chain
// state — once with the commit pipeline idle, once with blocks
// sealing concurrently. Snapshot readers take no fence and no
// collection lock, so the two rates should be close; the gap is the
// experiment's signal.
type MVCCParams struct {
	// Blocks/BlockTxs size the commit load (half warms the state, the
	// rest seals during the loaded measurement).
	Blocks   int
	BlockTxs int
	// Readers is the concurrent query goroutine count.
	Readers int
	// Seed drives workload generation.
	Seed int64
}

func (p *MVCCParams) fill() {
	if p.Blocks <= 0 {
		p.Blocks = 8
	}
	if p.BlockTxs <= 0 {
		p.BlockTxs = 256
	}
	if p.Readers <= 0 {
		p.Readers = 4
	}
}

// MVCCRow is one (backend, mode) measurement.
type MVCCRow struct {
	Backend string
	Mode    string        // idle | commit
	Commit  time.Duration // commit wall-clock (commit mode only)
	// Window is the effective measurement window; Queries counts only
	// queries completed inside it (QPS = Queries / Window).
	Window  time.Duration
	Queries int
	QPS     float64
}

// MVCCResult is the full experiment.
type MVCCResult struct {
	Params MVCCParams
	Rows   []MVCCRow
}

// mvccMeasure runs the snapshot-reader pool while load() executes and
// returns the in-window query count, the window, and load()'s own
// wall-clock. Every query round pins a fresh StateView — the newest
// sealed block — and runs its reads lock-free against that height.
// target stretches the window for idle measurements so both modes
// integrate over comparable wall-clock.
func mvccMeasure(state *ledger.State, ownerPubs []string, readers int, target time.Duration, load func()) (n int, window, loadElapsed time.Duration) {
	var queries atomic.Int64
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(readers)
	for r := 0; r < readers; r++ {
		r := r
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-done:
					return
				default:
				}
				owner := ownerPubs[(r+i)%len(ownerPubs)]
				v := state.View()
				utxos := v.Collection(ledger.ColUTXOs)
				txs := v.Collection(ledger.ColTransactions)
				utxos.Find(docstore.And(docstore.Eq("owner", owner), docstore.Eq("spent", false)))
				lo := float64(80 + (i*13)%17)
				utxos.Find(docstore.And(docstore.Eq("spent", false),
					docstore.Gte("amount", lo), docstore.Lte("amount", lo+5)))
				txs.Find(docstore.And(docstore.Eq("operation", txn.OpTransfer),
					docstore.Eq("inputs.owners_before", owner)))
				queries.Add(3)
			}
		}()
	}
	start := time.Now()
	q0 := queries.Load()
	load()
	loadElapsed = time.Since(start)
	// Floor the window so smoke-scale loads still observe at least one
	// query round per reader and enough wall time for a stable rate.
	floor := start.Add(100 * time.Millisecond)
	if target > 0 && start.Add(target).After(floor) {
		floor = start.Add(target)
	}
	for deadline := floor.Add(2 * time.Second); (queries.Load()-q0 < int64(3*readers) || time.Now().Before(floor)) && time.Now().Before(deadline); {
		time.Sleep(time.Millisecond)
	}
	window = time.Since(start)
	n = int(queries.Load() - q0)
	close(done)
	wg.Wait()
	return n, window, loadElapsed
}

// runMVCCBackend measures both modes on one backend: idle first (warm
// state, no commits), then the same readers with the remaining blocks
// sealing underneath them.
func runMVCCBackend(p MVCCParams, backend string, newBackend func() storage.Backend) []MVCCRow {
	blocks, ownerPubs := queryChurnBlocks(QueryParams{Blocks: p.Blocks, BlockTxs: p.BlockTxs, Seed: p.Seed})
	warm := len(blocks) / 2
	state := ledger.NewStateWith(newBackend())
	defer state.Close()
	for i := 0; i < warm; i++ {
		if _, skipped, err := state.CommitBlockAt(int64(i+1), blocks[i]); err != nil || len(skipped) != 0 {
			panic(fmt.Sprintf("bench: mvcc warm commit: err=%v skipped=%d", err, len(skipped)))
		}
	}

	// Loaded leg first, idle leg second on the final state: the idle
	// baseline then reads the *larger* document set, so the reported
	// interference ratio can only understate snapshot-read throughput,
	// never flatter it with a smaller-data baseline.
	var rows []MVCCRow
	n, window, commitElapsed := mvccMeasure(state, ownerPubs, p.Readers, 0, func() {
		for i := warm; i < len(blocks); i++ {
			if _, skipped, err := state.CommitBlockAt(int64(i+1), blocks[i]); err != nil || len(skipped) != 0 {
				panic(fmt.Sprintf("bench: mvcc churn commit: err=%v skipped=%d", err, len(skipped)))
			}
		}
	})
	rows = append(rows, MVCCRow{
		Backend: backend, Mode: "commit", Commit: commitElapsed, Window: window,
		Queries: n, QPS: float64(n) / window.Seconds(),
	})

	idleWindow := window
	if idleWindow < 150*time.Millisecond {
		idleWindow = 150 * time.Millisecond
	}
	n, window, _ = mvccMeasure(state, ownerPubs, p.Readers, idleWindow, func() {})
	rows = append(rows, MVCCRow{
		Backend: backend, Mode: "idle", Window: window,
		Queries: n, QPS: float64(n) / window.Seconds(),
	})
	return rows
}

// RunMVCC runs the snapshot-read interference experiment on both
// backends.
func RunMVCC(p MVCCParams) MVCCResult {
	p.fill()
	res := MVCCResult{Params: p}
	res.Rows = append(res.Rows,
		runMVCCBackend(p, "memory", func() storage.Backend { return storage.NewMemory() })...)
	dir, err := os.MkdirTemp("", "scdb-bench-mvcc-*")
	if err != nil {
		panic(fmt.Sprintf("bench: temp dir: %v", err))
	}
	defer os.RemoveAll(dir)
	res.Rows = append(res.Rows,
		runMVCCBackend(p, "disk", func() storage.Backend {
			eng, err := storage.Open(dir, storage.Options{})
			if err != nil {
				panic(fmt.Sprintf("bench: open disk engine: %v", err))
			}
			return eng
		})...)
	return res
}

// PrintMVCC renders the experiment.
func PrintMVCC(w io.Writer, r MVCCResult) {
	fmt.Fprintln(w, "MVCC snapshot reads — query throughput with and without concurrent block commits")
	fmt.Fprintf(w, "  %d readers on height-pinned snapshots; commit load %d blocks x %d txs\n",
		r.Params.Readers, r.Params.Blocks-r.Params.Blocks/2, r.Params.BlockTxs)
	fmt.Fprintf(w, "  %-8s %-8s %12s %12s %10s %12s\n",
		"backend", "mode", "commit(ms)", "window(ms)", "queries", "queries/s")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "  %-8s %-8s %12.1f %12.1f %10d %12.0f\n",
			row.Backend, row.Mode, ms(row.Commit), ms(row.Window), row.Queries, row.QPS)
	}
	for _, backend := range []string{"memory", "disk"} {
		var idle, loaded *MVCCRow
		for i := range r.Rows {
			row := &r.Rows[i]
			if row.Backend != backend {
				continue
			}
			if row.Mode == "idle" {
				idle = row
			} else {
				loaded = row
			}
		}
		if idle != nil && loaded != nil && idle.QPS > 0 {
			fmt.Fprintf(w, "  %s: under commit load, snapshot readers sustain %.0f%% of the idle query rate\n",
				backend, 100*loaded.QPS/idle.QPS)
		}
	}
	fmt.Fprintln(w)
}
