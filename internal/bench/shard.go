package bench

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"smartchaindb/internal/keys"
	"smartchaindb/internal/mempool"
	"smartchaindb/internal/shard"
	"smartchaindb/internal/txn"
)

// ShardParams configures the horizontal-sharding experiment: wall-clock
// throughput of a sharded cluster over shard count × cross-shard rate.
// The workload is independent transfer chains, pre-signed and split
// evenly across the shards; at rate 0 every transaction is
// single-shard (zero coordination — the near-linear scaling leg), and
// each cross slot migrates its chain to the next shard through the
// footprint-driven 2PC path.
type ShardParams struct {
	// ShardCounts sweeps the shard count; 1 is the unsharded baseline
	// every speedup is computed against.
	ShardCounts []int
	// CrossRates sweeps the fraction of transfers that cross shards.
	CrossRates []float64
	// Chains is the total number of concurrent transfer chains,
	// distributed round-robin across the shards.
	Chains int
	// Rounds is the number of lockstep rounds; each round advances
	// every chain by one transfer (Chains × Rounds transfers total).
	Rounds int
	// Reps repeats each measurement, keeping the fastest run.
	Reps int
	// Seed drives workload generation.
	Seed int64
}

func (p *ShardParams) fill() {
	if len(p.ShardCounts) == 0 {
		p.ShardCounts = []int{1, 2, 4}
	}
	hasBase := false
	for _, s := range p.ShardCounts {
		if s == 1 {
			hasBase = true
			break
		}
	}
	if !hasBase {
		p.ShardCounts = append([]int{1}, p.ShardCounts...)
	}
	if len(p.CrossRates) == 0 {
		p.CrossRates = []float64{0, 0.1, 0.3}
	}
	if p.Chains <= 0 {
		p.Chains = 32
	}
	if p.Rounds <= 0 {
		p.Rounds = 8
	}
	if p.Reps <= 0 {
		p.Reps = 2
	}
}

// ShardRow is one (shard count, cross rate) measurement. Makespan is
// the critical path: per round, every shard's local admission+commit
// work is timed separately and the round costs the slowest shard plus
// the serialized cross-shard 2PC tail — what a host with one core per
// shard would take. Like the commit experiment's virtual-time rows, it
// is the acceptance anchor: independent of host cores (the wall
// elapsed on a small container serializes all shards and shows none of
// the scaling).
type ShardRow struct {
	Shards    int
	CrossRate float64
	Elapsed   time.Duration // wall clock of the whole measured pass
	Makespan  time.Duration // critical path across shards
	Committed int
	Cross     int     // transfers that actually ran 2PC
	TPS       float64 // committed / makespan
	Speedup   float64 // vs the 1-shard row of the same cross rate
}

// ShardResult is the full sweep.
type ShardResult struct {
	Params ShardParams
	Rows   []ShardRow
}

// shardWorkload pre-builds the setup assets and the per-round transfer
// batches for a given shard count: chain i starts on shard i%shards,
// and each cross slot hints the transfer to the next shard, migrating
// the chain (its later hops home there). Everything is signed up
// front, so the timed phase is pure admission + commit. Deterministic
// in seed.
func shardWorkload(p ShardParams, shards int, rate float64) (setup []*txn.Transaction, rounds [][]*txn.Transaction, cross int) {
	rng := rand.New(rand.NewSource(p.Seed + int64(shards)*1000))
	type chainState struct {
		owner *keys.KeyPair
		asset string
		ref   txn.OutputRef
		home  int
	}
	chains := make([]*chainState, p.Chains)
	for i := range chains {
		owner := keys.DeterministicKeyPair(p.Seed + int64(i))
		home := i % shards
		create := txn.NewCreate(owner.PublicBase58(),
			map[string]any{"chain": float64(i)}, 1,
			map[string]any{shard.MetaShardHint: float64(home)})
		if err := txn.Sign(create, owner); err != nil {
			panic(fmt.Sprintf("bench: sign create: %v", err))
		}
		setup = append(setup, create)
		chains[i] = &chainState{owner: owner, asset: create.ID, ref: txn.OutputRef{TxID: create.ID, Index: 0}, home: home}
	}
	rounds = make([][]*txn.Transaction, p.Rounds)
	slot := 0
	for r := range rounds {
		batch := make([]*txn.Transaction, 0, p.Chains)
		for _, ch := range chains {
			slot++
			next := keys.DeterministicKeyPair(p.Seed + 1_000_000 + int64(slot))
			var meta map[string]any
			if shards > 1 && rng.Float64() < rate {
				ch.home = (ch.home + 1) % shards
				meta = map[string]any{shard.MetaShardHint: float64(ch.home)}
				cross++
			}
			tr := txn.NewTransfer(ch.asset,
				[]txn.Spend{{Ref: ch.ref, Owners: []string{ch.owner.PublicBase58()}}},
				[]*txn.Output{{PublicKeys: []string{next.PublicBase58()}, Amount: 1}}, meta)
			if err := txn.Sign(tr, ch.owner); err != nil {
				panic(fmt.Sprintf("bench: sign transfer: %v", err))
			}
			batch = append(batch, tr)
			ch.owner = next
			ch.ref = txn.OutputRef{TxID: tr.ID, Index: 0}
		}
		rounds[r] = batch
	}
	return setup, rounds, cross
}

// runShardOnce builds a fresh in-memory sharded cluster, loads the
// setup untimed, then drives the full ingest round by round. Each
// shard's slice of a round — its admission batch plus its local block
// — is timed on its own (shards are independent, so a multi-core host
// runs them concurrently); the round's critical path is the slowest
// shard plus the cross-shard 2PC transfers, which serialize through
// the coordinator. Returns (wall elapsed, makespan, committed).
func runShardOnce(p ShardParams, shards int, rate float64) (wall, makespan time.Duration, committed int) {
	setup, rounds, _ := shardWorkload(p, shards, rate)
	c := shard.New(shard.Config{Shards: shards, MempoolBatch: p.Chains})
	defer c.Close()
	if errs := c.SubmitBatch(setup); len(errs) != 0 {
		panic(fmt.Sprintf("bench: shard setup: %v", errs))
	}
	c.DrainLocal(p.Chains)
	start := time.Now()
	for _, batch := range rounds {
		perShard := make([][]mempool.Tx, shards)
		var cross []*txn.Transaction
		for _, t := range batch {
			r, err := c.RouteOf(t)
			if err != nil {
				panic(fmt.Sprintf("bench: route: %v", err))
			}
			if r.Cross() {
				cross = append(cross, t)
				continue
			}
			perShard[r.Home] = append(perShard[r.Home], t)
		}
		var slowest time.Duration
		for s, local := range perShard {
			if len(local) == 0 {
				continue
			}
			t0 := time.Now()
			res := c.Shard(s).Pool.AdmitBatch(local)
			if len(res.Rejected)+len(res.Skipped) != 0 {
				panic(fmt.Sprintf("bench: shard %d admission: %+v", s, res))
			}
			for len(c.CommitLocal(s, p.Chains)) != 0 {
			}
			if d := time.Since(t0); d > slowest {
				slowest = d
			}
			committed += len(local)
		}
		t0 := time.Now()
		for _, t := range cross {
			if err := c.Submit(t); err != nil {
				panic(fmt.Sprintf("bench: cross transfer: %v", err))
			}
		}
		committed += len(cross)
		makespan += slowest + time.Since(t0)
	}
	return time.Since(start), makespan, committed
}

// RunShard measures the sharding sweep.
func RunShard(p ShardParams) ShardResult {
	p.fill()
	res := ShardResult{Params: p}
	base := make(map[float64]time.Duration)
	for _, rate := range p.CrossRates {
		for _, s := range p.ShardCounts {
			_, _, cross := shardWorkload(p, s, rate)
			type run struct {
				wall      time.Duration
				committed int
			}
			// fastest keys on the makespan; the wall clock and commit
			// count of the kept run ride along in the payload.
			span, best := fastest(p.Reps, func() (time.Duration, run) {
				wall, mk, committed := runShardOnce(p, s, rate)
				return mk, run{wall: wall, committed: committed}
			})
			row := ShardRow{
				Shards:    s,
				CrossRate: rate,
				Elapsed:   best.wall,
				Makespan:  span,
				Committed: best.committed,
				Cross:     cross,
				TPS:       tps(best.committed, span),
			}
			if s == 1 {
				base[rate] = span
			}
			if b, ok := base[rate]; ok && span > 0 {
				row.Speedup = float64(b) / float64(span)
			}
			res.Rows = append(res.Rows, row)
		}
	}
	return res
}

// PrintShard renders the sweep.
func PrintShard(w io.Writer, r ShardResult) {
	fmt.Fprintf(w, "horizontal sharding: %d chains x %d rounds, fastest of %d\n",
		r.Params.Chains, r.Params.Rounds, r.Params.Reps)
	fmt.Fprintf(w, "%-8s %-10s %-12s %-10s %-10s %-10s %-8s\n",
		"shards", "cross", "makespan", "wall", "tps", "speedup", "2pc-txs")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-8d %-10.2f %-12.1f %-10.1f %-10.0f %-10.2f %-8d\n",
			row.Shards, row.CrossRate, ms(row.Makespan), ms(row.Elapsed), row.TPS, row.Speedup, row.Cross)
	}
}
