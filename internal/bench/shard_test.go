package bench

import (
	"strings"
	"testing"
)

func TestRunShardSmoke(t *testing.T) {
	p := ShardParams{
		ShardCounts: []int{1, 2},
		CrossRates:  []float64{0, 0.25},
		Chains:      8,
		Rounds:      3,
		Reps:        1,
		Seed:        42,
	}
	r := RunShard(p)
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(r.Rows))
	}
	total := p.Chains * p.Rounds
	for _, row := range r.Rows {
		if row.Committed != total {
			t.Fatalf("row %+v committed %d, want %d", row, row.Committed, total)
		}
		if row.TPS <= 0 || row.Elapsed <= 0 || row.Makespan <= 0 {
			t.Fatalf("degenerate row %+v", row)
		}
		if row.Makespan > row.Elapsed {
			t.Fatalf("makespan exceeds wall clock: %+v", row)
		}
		if row.Shards == 1 && row.Cross != 0 {
			t.Fatalf("unsharded baseline ran 2PC: %+v", row)
		}
		if row.Shards > 1 && row.CrossRate > 0 && row.Cross == 0 {
			t.Fatalf("cross rate %.2f produced no 2PC transfers: %+v", row.CrossRate, row)
		}
	}
	var sb strings.Builder
	PrintShard(&sb, r)
	if !strings.Contains(sb.String(), "horizontal sharding") || !strings.Contains(sb.String(), "2pc-txs") {
		t.Fatalf("report rendering:\n%s", sb.String())
	}
}
