package bench

import (
	"fmt"
	"io"
	"math/rand"
	"os"
	"runtime"
	"sync"
	"time"

	"smartchaindb/internal/consensus"
	"smartchaindb/internal/driver"
	"smartchaindb/internal/keys"
	"smartchaindb/internal/ledger"
	"smartchaindb/internal/obs"
	"smartchaindb/internal/parallel"
	"smartchaindb/internal/server"
	"smartchaindb/internal/txn"
)

// The traffic experiment is the repo's first latency-under-load
// benchmark. Every other experiment is closed-loop: the driver waits
// for each verdict before issuing more work, so under saturation it
// throttles itself and the tail disappears (coordinated omission).
// Here the arrival process is fixed in advance — Poisson arrivals over
// pre-generated distinct keypairs, one independent user per
// transaction — and each transaction's latency is measured from its
// *scheduled* arrival, so queueing delay shows up in p99/p999 instead
// of vanishing into the generator. The experiment doubles as the gate
// for the admission fast path: every leg runs with the caches on
// (batched dedup signature verification + canonical-bytes memo) and
// off, on both storage backends.

// TrafficParams configures the open-loop traffic experiment.
type TrafficParams struct {
	// Users is the pre-generated keypair population; each transaction
	// is signed by a distinct user drawn from it (default 1,000,000).
	Users int
	// Txs is the number of traffic transactions per leg (default 16384).
	Txs int
	// Inputs is the number of inputs per transfer — the workload's
	// multi-input weight; each input re-signs the same payload, which
	// is what batch dedup collapses (default 4).
	Inputs int
	// Rates sweeps offered load in transactions/second for the
	// open-loop legs (default 2000, 6000).
	Rates []float64
	// Batch caps one admission batch (default 128).
	Batch int
	// Depths sweeps the commit stage's concurrently-applying block
	// bound — the depth-N pipeline's footprint-fence capacity (default
	// 1, 4; 1 reproduces the old one-block-at-a-time commit loop).
	Depths []int
	// Workers is the admission worker count (default NumCPU, max 8).
	Workers int
	// Reps repeats the closed-loop throughput measurement, keeping the
	// fastest (default 3).
	Reps int
	// Backends selects storage engines (default memory, disk).
	Backends []string
	// Seed drives keygen, workload, and arrival draws.
	Seed int64
}

func (p *TrafficParams) fill() {
	if p.Users <= 0 {
		p.Users = 1_000_000
	}
	if p.Txs <= 0 {
		p.Txs = 16_384
	}
	if p.Inputs <= 0 {
		p.Inputs = 4
	}
	if len(p.Rates) == 0 {
		p.Rates = []float64{2000, 6000}
	}
	if p.Batch <= 0 {
		p.Batch = 128
	}
	if len(p.Depths) == 0 {
		p.Depths = []int{1, 4}
	}
	if p.Workers <= 0 {
		p.Workers = runtime.NumCPU()
		if p.Workers > 8 {
			p.Workers = 8
		}
	}
	if p.Reps <= 0 {
		p.Reps = 3
	}
	if len(p.Backends) == 0 {
		p.Backends = []string{"memory", "disk"}
	}
}

// TrafficLatencyRow is one open-loop leg: a backend × fast-path × rate
// point with scheduled-arrival latency quantiles for admission (batch
// verdict returned) and commit (block sealed).
type TrafficLatencyRow struct {
	Backend  string
	FastPath bool
	Depth    int     // commit pipeline depth (concurrently-applying blocks)
	Rate     float64 // offered load, tx/s
	Offered  int
	Admitted int
	Rejected int
	Elapsed  time.Duration
	Achieved float64 // admitted tx/s over the leg

	AdmitP50, AdmitP99, AdmitP999    time.Duration
	CommitP50, CommitP99, CommitP999 time.Duration

	SigTasks  uint64 // signature triples submitted to the batch verifier
	DedupHits uint64 // triples answered by an identical triple
}

// TrafficThroughputRow is one closed-loop CheckTxBatch measurement —
// the ≥1.5× fast-path acceptance gate runs on these.
type TrafficThroughputRow struct {
	Backend  string
	FastPath bool
	Elapsed  time.Duration
	TPS      float64
	Admitted int
}

// TrafficResult is the full experiment.
type TrafficResult struct {
	Params        TrafficParams
	KeygenElapsed time.Duration
	KeygenPerSec  float64

	LatencyRows    []TrafficLatencyRow
	ThroughputRows []TrafficThroughputRow

	// ThroughputGain is caches-on TPS / caches-off TPS per backend.
	ThroughputGain map[string]float64
	// P99Improved reports that at every (backend, rate) point the
	// fast-path admission p99 was strictly below the caches-off p99.
	P99Improved bool
}

// trafficUsers pre-generates the keypair population in parallel. Every
// signer in the run is distinct, so no verification can be answered by
// cross-transaction key reuse — the fast path's wins come only from
// the structural redundancy it actually targets.
func trafficUsers(n int, seed int64) []*keys.KeyPair {
	users := make([]*keys.KeyPair, n)
	workers := runtime.NumCPU()
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				users[i] = keys.DeterministicKeyPair(seed + int64(i))
			}
		}(lo, hi)
	}
	wg.Wait()
	return users
}

// trafficWorkload builds the backing CREATEs (one per traffic
// transaction, holding p.Inputs unit outputs) and the traffic stream:
// multi-input transfers, each spending all of its user's CREATE
// outputs. Every input signs the same payload with the same key, so a
// K-input transfer carries K byte-identical signature triples — the
// redundancy profile of real multi-UTXO wallets.
func trafficWorkload(p TrafficParams, users []*keys.KeyPair) (backing, stream []*txn.Transaction) {
	backing = make([]*txn.Transaction, p.Txs)
	stream = make([]*txn.Transaction, p.Txs)
	workers := runtime.NumCPU()
	var wg sync.WaitGroup
	chunk := (p.Txs + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > p.Txs {
			hi = p.Txs
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				owner := users[i%len(users)]
				recipient := users[(i+1)%len(users)]
				pub := owner.PublicBase58()
				create := txn.NewCreate(pub, map[string]any{"kind": "wallet", "seq": i}, uint64(p.Inputs), nil)
				outs := make([]*txn.Output, p.Inputs)
				for j := range outs {
					outs[j] = &txn.Output{PublicKeys: []string{pub}, Amount: 1}
				}
				create.Outputs = outs
				if err := txn.Sign(create, owner); err != nil {
					panic(fmt.Sprintf("bench: sign create: %v", err))
				}
				spends := make([]txn.Spend, p.Inputs)
				for j := range spends {
					spends[j] = txn.Spend{Ref: txn.OutputRef{TxID: create.ID, Index: j}, Owners: []string{pub}}
				}
				tr := txn.NewTransfer(create.ID, spends,
					[]*txn.Output{{PublicKeys: []string{recipient.PublicBase58()}, Amount: uint64(p.Inputs)}}, nil)
				if err := txn.Sign(tr, owner); err != nil {
					panic(fmt.Sprintf("bench: sign transfer: %v", err))
				}
				backing[i] = create
				stream[i] = tr
			}
		}(lo, hi)
	}
	wg.Wait()
	return backing, stream
}

// newTrafficNode opens a node on the given backend with the fast path
// toggled, commits the backing CREATEs, and returns it with a cleanup.
func newTrafficNode(p TrafficParams, backend string, fastPath bool, reg *obs.Registry, backing []*txn.Transaction) (*server.Node, func()) {
	cfg := server.Config{
		ReservedSeed:             p.Seed + 9300,
		AdmissionWorkers:         p.Workers,
		DisableAdmissionFastPath: !fastPath,
		Obs:                      reg,
	}
	cleanup := func() {}
	if backend == "disk" {
		dir, err := os.MkdirTemp("", "scdb-bench-traffic-*")
		if err != nil {
			panic(fmt.Sprintf("bench: temp dir: %v", err))
		}
		cfg.DataDir = dir
		cfg.NoSync = true
		cleanup = func() { os.RemoveAll(dir) }
	}
	node := server.NewNode(cfg)
	for start := 0; start < len(backing); start += 1024 {
		end := start + 1024
		if end > len(backing) {
			end = len(backing)
		}
		committed, skipped := node.State().CommitBlock(backing[start:end])
		if len(skipped) != 0 || len(committed) != end-start {
			panic(fmt.Sprintf("bench: backing commit: %d of %d, skipped %d", len(committed), end-start, len(skipped)))
		}
	}
	rm := cleanup
	return node, func() { node.Close(); rm() }
}

// cloneStream deep-copies the traffic transactions so every leg starts
// with cold canonical-bytes caches and unmemoized verdicts.
func cloneStream(stream []*txn.Transaction) []*txn.Transaction {
	out := make([]*txn.Transaction, len(stream))
	for i, t := range stream {
		out[i] = t.Clone()
	}
	return out
}

// checkStream pushes the stream through CheckTxBatch in batches and
// returns the admitted count.
func checkStream(node *server.Node, stream []*txn.Transaction, batch int) int {
	admitted := 0
	for start := 0; start < len(stream); start += batch {
		end := start + batch
		if end > len(stream) {
			end = len(stream)
		}
		in := make([]consensus.Tx, end-start)
		for i, t := range stream[start:end] {
			in[i] = t
		}
		errs := node.CheckTxBatch(in)
		admitted += (end - start) - len(errs)
	}
	return admitted
}

// runTrafficThroughput is the closed-loop ≥1.5× gate: the whole stream
// through CheckTxBatch, caches as configured. The node's own cache
// scope (off when the fast path is off) covers the leg — no global
// state to flip, so the on and off legs cannot contaminate each other.
func runTrafficThroughput(p TrafficParams, backend string, fastPath bool, backing, stream []*txn.Transaction) TrafficThroughputRow {
	row := TrafficThroughputRow{Backend: backend, FastPath: fastPath}
	el, admitted := fastest(p.Reps, func() (time.Duration, int) {
		node, cleanup := newTrafficNode(p, backend, fastPath, nil, backing)
		defer cleanup()
		fresh := cloneStream(stream) // cold caches every rep
		start := time.Now()
		n := checkStream(node, fresh, p.Batch)
		return time.Since(start), n
	})
	row.Elapsed = el
	row.Admitted = admitted
	row.TPS = float64(len(stream)) / el.Seconds()
	return row
}

// trafficArrival carries one scheduled transaction through the
// admission and commit stages.
type trafficArrival struct {
	tx        *txn.Transaction
	scheduled time.Time
}

// runTrafficLeg runs one open-loop leg: Poisson arrivals at rate tx/s
// fired at absolute deadlines, batched admission, then the depth-N
// pipelined block commit — up to depth blocks mid-apply behind the
// footprint fence, sealing in height order — with per-transaction
// latency measured from the scheduled arrival.
func runTrafficLeg(p TrafficParams, backend string, fastPath bool, depth int, rate float64, backing, stream []*txn.Transaction) TrafficLatencyRow {
	reg := obs.New()
	node, cleanup := newTrafficNode(p, backend, fastPath, reg, backing)
	defer cleanup()
	fresh := cloneStream(stream)
	admitNs := reg.Histogram("traffic.admit_ns")
	commitNs := reg.Histogram("traffic.commit_ns")

	row := TrafficLatencyRow{Backend: backend, FastPath: fastPath, Depth: depth, Rate: rate, Offered: len(fresh)}
	rng := rand.New(rand.NewSource(p.Seed + 71))
	schedule := driver.PoissonSchedule(len(fresh), rate, rng)

	// Buffered to the full stream so the generator never blocks on a
	// slow receiver: backlog becomes measured queueing delay, not a
	// stretched schedule.
	arrivals := make(chan trafficArrival, len(fresh))
	commits := make(chan []trafficArrival, len(fresh)/p.Batch+1)
	done := make(chan struct{})

	go func() { // admission stage
		defer close(commits)
		for a := range arrivals {
			batch := make([]trafficArrival, 1, p.Batch)
			batch[0] = a
		drain:
			for len(batch) < p.Batch {
				select {
				case b, ok := <-arrivals:
					if !ok {
						break drain
					}
					batch = append(batch, b)
				default:
					break drain
				}
			}
			in := make([]consensus.Tx, len(batch))
			for i, b := range batch {
				in[i] = b.tx
			}
			errs := node.CheckTxBatch(in)
			now := time.Now()
			admitted := make([]trafficArrival, 0, len(batch))
			for _, b := range batch {
				admitNs.Observe(int64(now.Sub(b.scheduled)))
				if _, bad := errs[b.tx.ID]; bad {
					continue
				}
				admitted = append(admitted, b)
			}
			if len(admitted) > 0 {
				commits <- admitted
			}
		}
	}()

	go func() { // commit stage: depth-N pipelined block commits
		defer close(done)
		var fence parallel.PipelineFence
		fence.SetDepth(depth)
		var sealWG sync.WaitGroup
		var rowMu sync.Mutex
		state := node.State()
		h := state.Height()
		for batch := range commits {
			h++
			txs := make([]*txn.Transaction, len(batch))
			for i, b := range batch {
				txs[i] = b.tx
			}
			fence.Begin(h, parallel.WriteKeys(txs))
			pending := state.BeginBlockCommit(h)
			sealWG.Add(1)
			go func(h int64, batch []trafficArrival, txs []*txn.Transaction, pending *ledger.PendingCommit) {
				defer sealWG.Done()
				fence.WaitApply(h, parallel.TouchKeys(txs))
				pending.Stage(txs)
				committed, skipped, err := pending.Seal()
				if err != nil {
					panic(fmt.Sprintf("bench: traffic seal block %d: %v", h, err))
				}
				fence.End(h)
				now := time.Now()
				for _, b := range batch {
					commitNs.Observe(int64(now.Sub(b.scheduled)))
				}
				rowMu.Lock()
				row.Admitted += len(committed)
				row.Rejected += len(skipped)
				rowMu.Unlock()
			}(h, batch, txs, pending)
		}
		sealWG.Wait()
	}()

	start := time.Now()
	driver.Pacer{Schedule: schedule}.Run(func(i int, scheduled time.Time) {
		arrivals <- trafficArrival{tx: fresh[i], scheduled: scheduled}
	})
	close(arrivals)
	<-done
	row.Elapsed = time.Since(start)
	row.Achieved = float64(row.Admitted) / row.Elapsed.Seconds()

	snap := reg.Snapshot()
	a, c := snap.Histograms["traffic.admit_ns"], snap.Histograms["traffic.commit_ns"]
	row.AdmitP50, row.AdmitP99, row.AdmitP999 = time.Duration(a.P50), time.Duration(a.P99), time.Duration(a.P999)
	row.CommitP50, row.CommitP99, row.CommitP999 = time.Duration(c.P50), time.Duration(c.P99), time.Duration(c.P999)
	row.SigTasks = snap.Counters["server.admit.sig_tasks"]
	row.DedupHits = snap.Counters["server.admit.sig_dedup_hits"]
	return row
}

// RunTraffic runs the full experiment: keygen, closed-loop throughput
// gate (fast path on/off per backend), then the open-loop rate sweep.
func RunTraffic(p TrafficParams) TrafficResult {
	p.fill()
	res := TrafficResult{Params: p, ThroughputGain: map[string]float64{}, P99Improved: true}

	t0 := time.Now()
	users := trafficUsers(p.Users, p.Seed+51)
	res.KeygenElapsed = time.Since(t0)
	res.KeygenPerSec = float64(p.Users) / res.KeygenElapsed.Seconds()

	backing, stream := trafficWorkload(p, users)

	for _, backend := range p.Backends {
		slow := runTrafficThroughput(p, backend, false, backing, stream)
		fast := runTrafficThroughput(p, backend, true, backing, stream)
		res.ThroughputRows = append(res.ThroughputRows, slow, fast)
		if slow.TPS > 0 {
			res.ThroughputGain[backend] = fast.TPS / slow.TPS
		}
	}

	for _, backend := range p.Backends {
		for _, depth := range p.Depths {
			for _, rate := range p.Rates {
				slow := runTrafficLeg(p, backend, false, depth, rate, backing, stream)
				fast := runTrafficLeg(p, backend, true, depth, rate, backing, stream)
				res.LatencyRows = append(res.LatencyRows, slow, fast)
				if fast.AdmitP99 >= slow.AdmitP99 {
					res.P99Improved = false
				}
			}
		}
	}
	return res
}

func onoff(fast bool) string {
	if fast {
		return "fast-path"
	}
	return "baseline"
}

// PrintTraffic renders the experiment.
func PrintTraffic(w io.Writer, r TrafficResult) {
	p := r.Params
	fmt.Fprintf(w, "Traffic — open-loop Poisson load: %d users, %d txs/leg, %d inputs/tx, batch %d, %d admission workers\n",
		p.Users, p.Txs, p.Inputs, p.Batch, p.Workers)
	fmt.Fprintf(w, "  keygen: %d distinct keypairs in %.2fs (%.0f keys/s)\n\n",
		p.Users, r.KeygenElapsed.Seconds(), r.KeygenPerSec)

	fmt.Fprintln(w, "Traffic — closed-loop CheckTxBatch throughput (fast path = batched dedup verify + canonical-bytes cache)")
	fmt.Fprintf(w, "  %-8s %-10s %12s %12s %9s\n", "backend", "path", "elapsed(ms)", "tps", "admitted")
	for _, row := range r.ThroughputRows {
		fmt.Fprintf(w, "  %-8s %-10s %12.1f %12.0f %9d\n",
			row.Backend, onoff(row.FastPath), ms(row.Elapsed), row.TPS, row.Admitted)
	}
	for _, backend := range p.Backends {
		fmt.Fprintf(w, "  %s fast-path gain: %.2fx\n", backend, r.ThroughputGain[backend])
	}
	fmt.Fprintln(w)

	fmt.Fprintln(w, "Traffic — open-loop latency from scheduled arrival (admission verdict / depth-N pipelined commit)")
	fmt.Fprintf(w, "  %-8s %-10s %5s %8s %9s %9s %9s %9s %9s %9s %9s %10s\n",
		"backend", "path", "depth", "rate", "admit p50", "p99", "p999", "commit p50", "p99", "p999", "achieved", "dedup")
	for _, row := range r.LatencyRows {
		fmt.Fprintf(w, "  %-8s %-10s %5d %8.0f %8.2fms %8.2fms %8.2fms %9.2fms %8.2fms %8.2fms %9.0f %4d/%d\n",
			row.Backend, onoff(row.FastPath), row.Depth, row.Rate,
			ms(row.AdmitP50), ms(row.AdmitP99), ms(row.AdmitP999),
			ms(row.CommitP50), ms(row.CommitP99), ms(row.CommitP999),
			row.Achieved, row.DedupHits, row.SigTasks)
	}
	fmt.Fprintf(w, "  (latency includes queueing delay behind the fixed arrival schedule; p99 fast-path strictly better everywhere: %v; GOMAXPROCS=%d)\n\n",
		r.P99Improved, runtime.GOMAXPROCS(0))
}
