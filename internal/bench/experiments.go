package bench

import (
	"fmt"
	"io"
	"time"

	"smartchaindb/internal/ethchain"
	"smartchaindb/internal/minisol"
	"smartchaindb/internal/netsim"
)

// PayloadSizes is the transaction-size axis of Experiment 1 (Figure 7):
// 0.11 KB up to 1.74 KB, the paper's largest point.
var PayloadSizes = []int{112, 371, 743, 1114, 1486, 1740}

// ClusterSizes is the validator-count axis of Experiment 2 (Figure 8).
var ClusterSizes = []int{4, 8, 16, 32}

// Fig8PayloadBytes is the fixed transaction size of Experiment 2
// (1.09 KB in the paper).
const Fig8PayloadBytes = 1114

// Fig2Result compares the native TRANSFER primitive with its
// smart-contract equivalent (Figure 2).
type Fig2Result struct {
	NativeGas       uint64
	ContractGas     uint64
	GasOverheadPct  float64
	NativeLatency   time.Duration
	ContractLatency time.Duration
	LatencyRatio    float64
}

// RunFig2 measures gas and commit latency for a native value transfer
// vs the Token contract's transfer method on the same IBFT cluster.
func RunFig2(seed int64) (Fig2Result, error) {
	src, err := ethchain.ContractSource("token")
	if err != nil {
		return Fig2Result{}, err
	}
	deployTx := &ethchain.Tx{Kind: ethchain.KindDeploy, From: "minter", Source: src, Contract: "Token", Nonce: 1}
	addr := ethchain.ContractAddr(deployTx)
	cluster := ethchain.NewCluster(ethchain.ClusterConfig{
		Nodes:        4,
		BlockPeriod:  250 * time.Millisecond,
		GasPerSecond: 2_000_000,
		Latency:      netsim.UniformLatency{Base: 12 * time.Millisecond, Jitter: 6 * time.Millisecond},
		Seed:         seed,
	}, func(c *ethchain.Chain) {
		c.Execute(deployTx)
		c.Fund("alice", 1_000_000)
	})

	// Fund both parties so the contract transfer touches warm slots,
	// matching the paper's steady-state measurement.
	mintA := &ethchain.Tx{Kind: ethchain.KindCall, From: "minter", To: addr, Fn: "mint",
		Args: []minisol.Value{minisol.Addr("alice"), minisol.Int(1000)}, GasLimit: 1_000_000, Nonce: cluster.NextNonce()}
	mintB := &ethchain.Tx{Kind: ethchain.KindCall, From: "minter", To: addr, Fn: "mint",
		Args: []minisol.Value{minisol.Addr("bob"), minisol.Int(1000)}, GasLimit: 1_000_000, Nonce: cluster.NextNonce()}
	cluster.Submit(mintA)
	cluster.Submit(mintB)
	if got := cluster.RunUntilCommitted(2, time.Hour); got != 2 {
		return Fig2Result{}, fmt.Errorf("bench: mint did not commit")
	}

	native := &ethchain.Tx{Kind: ethchain.KindNativeTransfer, From: "alice", To: "bob", Amount: 10, Nonce: cluster.NextNonce()}
	cluster.Submit(native)
	if got := cluster.RunUntilCommitted(3, cluster.Sched().Now()+time.Hour); got != 3 {
		return Fig2Result{}, fmt.Errorf("bench: native transfer did not commit")
	}
	contract := &ethchain.Tx{Kind: ethchain.KindCall, From: "alice", To: addr, Fn: "transfer",
		Args: []minisol.Value{minisol.Addr("bob"), minisol.Int(10)}, GasLimit: 1_000_000, Nonce: cluster.NextNonce()}
	cluster.Submit(contract)
	if got := cluster.RunUntilCommitted(4, cluster.Sched().Now()+time.Hour); got != 4 {
		return Fig2Result{}, fmt.Errorf("bench: contract transfer did not commit")
	}

	var res Fig2Result
	if r, ok := cluster.Receipt(native.Hash()); ok {
		res.NativeGas = r.GasUsed
	}
	if r, ok := cluster.Receipt(contract.Hash()); ok {
		if r.Failed() {
			return res, fmt.Errorf("bench: contract transfer reverted: %v", r.Err)
		}
		res.ContractGas = r.GasUsed
	}
	res.GasOverheadPct = (float64(res.ContractGas)/float64(res.NativeGas) - 1) * 100
	res.NativeLatency, _ = cluster.Latency(native.Hash())
	res.ContractLatency, _ = cluster.Latency(contract.Hash())
	if res.NativeLatency > 0 {
		res.LatencyRatio = float64(res.ContractLatency) / float64(res.NativeLatency)
	}
	return res, nil
}

// Fig7Row is one payload-size point of Experiment 1, covering Figures
// 7a (REQUEST/CREATE latency), 7b (BID/ACCEPT_BID latency), and 7c
// (throughput).
type Fig7Row struct {
	PayloadBytes int
	SCDB         SCDBResult
	ETH          ETHResult
}

// Fig7Scale shrinks the workload for quick runs; 1 = bench default.
// Workers > 1 runs every SmartchainDB validator with the parallel
// pipeline (admission, validation, packing) on that many workers, so
// the headline curves reflect it; zero keeps the sequential paths.
type Fig7Scale struct {
	Auctions int
	Bidders  int
	Workers  int
}

// RunFig7 sweeps payload sizes on both systems.
func RunFig7(sizes []int, scale Fig7Scale, seed int64) ([]Fig7Row, error) {
	if scale.Auctions <= 0 {
		scale.Auctions = 4
	}
	if scale.Bidders <= 0 {
		scale.Bidders = 10
	}
	rows := make([]Fig7Row, 0, len(sizes))
	for i, size := range sizes {
		scdb := RunSCDB(SCDBParams{
			Nodes: 4, PayloadBytes: size,
			Auctions: scale.Auctions, Bidders: scale.Bidders,
			Workers: scale.Workers,
			Seed:    seed + int64(i),
		})
		eth, err := RunETH(ETHParams{
			Nodes: 4, PayloadBytes: size,
			Auctions: scale.Auctions, Bidders: scale.Bidders,
			Seed: seed + 100 + int64(i),
		})
		if err != nil {
			return nil, fmt.Errorf("bench: fig7 size %d: %w", size, err)
		}
		rows = append(rows, Fig7Row{PayloadBytes: size, SCDB: scdb, ETH: eth})
	}
	return rows, nil
}

// Fig8Row is one cluster-size point of Experiment 2 (Figures 8a-8c).
type Fig8Row struct {
	Nodes int
	SCDB  SCDBResult
	ETH   ETHResult
}

// RunFig8 sweeps validator counts at the fixed 1.09 KB payload.
func RunFig8(nodeCounts []int, scale Fig7Scale, seed int64) ([]Fig8Row, error) {
	if scale.Auctions <= 0 {
		scale.Auctions = 4
	}
	if scale.Bidders <= 0 {
		scale.Bidders = 10
	}
	rows := make([]Fig8Row, 0, len(nodeCounts))
	for i, n := range nodeCounts {
		scdb := RunSCDB(SCDBParams{
			Nodes: n, PayloadBytes: Fig8PayloadBytes,
			Auctions: scale.Auctions, Bidders: scale.Bidders,
			Workers: scale.Workers,
			Seed:    seed + int64(i),
		})
		eth, err := RunETH(ETHParams{
			Nodes: n, PayloadBytes: Fig8PayloadBytes,
			Auctions: scale.Auctions, Bidders: scale.Bidders,
			Seed: seed + 100 + int64(i),
		})
		if err != nil {
			return nil, fmt.Errorf("bench: fig8 nodes %d: %w", n, err)
		}
		rows = append(rows, Fig8Row{Nodes: n, SCDB: scdb, ETH: eth})
	}
	return rows, nil
}

// UsabilityResult is the §5.2.2 lines-of-code comparison.
type UsabilityResult struct {
	ContractLines    int // hand-written smart-contract lines
	DeclarativeLines int // user code required by SmartchainDB: none
}

// RunUsability counts the meaningful source lines of the marketplace
// contract. SmartchainDB needs zero user-implemented lines: the
// marketplace primitives are native transaction types.
func RunUsability() (UsabilityResult, error) {
	src, err := ethchain.ContractSource("marketplace")
	if err != nil {
		return UsabilityResult{}, err
	}
	prog, err := minisol.Compile(src)
	if err != nil {
		return UsabilityResult{}, err
	}
	return UsabilityResult{
		ContractLines:    prog.File.Contracts[0].SourceLines,
		DeclarativeLines: 0,
	}, nil
}

// Printing helpers -----------------------------------------------------

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// PrintFig2 renders the Figure 2 comparison.
func PrintFig2(w io.Writer, r Fig2Result) {
	fmt.Fprintln(w, "Figure 2 — TRANSFER: native primitive vs smart contract (ETH-SC)")
	fmt.Fprintf(w, "  %-22s %12s %14s\n", "variant", "gas", "latency(ms)")
	fmt.Fprintf(w, "  %-22s %12d %14.1f\n", "native TRANSFER", r.NativeGas, ms(r.NativeLatency))
	fmt.Fprintf(w, "  %-22s %12d %14.1f\n", "contract transfer()", r.ContractGas, ms(r.ContractLatency))
	fmt.Fprintf(w, "  gas overhead: +%.0f%%   (paper: +40%%)\n", r.GasOverheadPct)
	fmt.Fprintf(w, "  latency ratio: %.2fx\n\n", r.LatencyRatio)
}

var fig7Ops = []string{"CREATE", "REQUEST", "BID", "ACCEPT_BID"}

// PrintFig7 renders Figures 7a, 7b and 7c as one table per figure.
func PrintFig7(w io.Writer, rows []Fig7Row) {
	fmt.Fprintln(w, "Figure 7a — latency vs transaction size: REQUEST and CREATE (ms)")
	fmt.Fprintf(w, "  %-10s %14s %14s %14s %14s\n", "size(KB)", "SCDB CREATE", "ETH CREATE", "SCDB REQUEST", "ETH REQUEST")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-10.2f %14.1f %14.1f %14.1f %14.1f\n",
			float64(r.PayloadBytes)/1024,
			ms(r.SCDB.PerOp["CREATE"].Mean), ms(r.ETH.PerOp["CREATE"].Mean),
			ms(r.SCDB.PerOp["REQUEST"].Mean), ms(r.ETH.PerOp["REQUEST"].Mean))
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, "Figure 7b — latency vs transaction size: BID and ACCEPT_BID (ms)")
	fmt.Fprintf(w, "  %-10s %14s %14s %14s %14s %10s\n", "size(KB)", "SCDB BID", "ETH BID", "SCDB ACCEPT", "ETH ACCEPT", "BID ratio")
	for _, r := range rows {
		scdbBid := r.SCDB.PerOp["BID"].Mean
		ethBid := r.ETH.PerOp["BID"].Mean
		ratio := 0.0
		if scdbBid > 0 {
			ratio = float64(ethBid) / float64(scdbBid)
		}
		fmt.Fprintf(w, "  %-10.2f %14.1f %14.1f %14.1f %14.1f %9.0fx\n",
			float64(r.PayloadBytes)/1024,
			ms(scdbBid), ms(ethBid),
			ms(r.SCDB.PerOp["ACCEPT_BID"].Mean), ms(r.ETH.PerOp["ACCEPT_BID"].Mean), ratio)
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, "Figure 7c — throughput vs transaction size (tps)")
	fmt.Fprintf(w, "  %-10s %12s %12s\n", "size(KB)", "SCDB", "ETH-SC")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-10.2f %12.1f %12.2f\n",
			float64(r.PayloadBytes)/1024, r.SCDB.Throughput, r.ETH.Throughput)
	}
	fmt.Fprintln(w)
}

// PrintFig8 renders Figures 8a, 8b and 8c.
func PrintFig8(w io.Writer, rows []Fig8Row) {
	fmt.Fprintln(w, "Figure 8a — SCDB latency vs cluster size (ms, 1.09 KB tx)")
	fmt.Fprintf(w, "  %-8s", "nodes")
	for _, op := range fig7Ops {
		fmt.Fprintf(w, " %12s", op)
	}
	fmt.Fprintln(w)
	for _, r := range rows {
		fmt.Fprintf(w, "  %-8d", r.Nodes)
		for _, op := range fig7Ops {
			fmt.Fprintf(w, " %12.1f", ms(r.SCDB.PerOp[op].Mean))
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, "Figure 8b — ETH-SC latency vs cluster size (ms, 1.09 KB tx)")
	fmt.Fprintf(w, "  %-8s", "nodes")
	for _, op := range fig7Ops {
		fmt.Fprintf(w, " %12s", op)
	}
	fmt.Fprintln(w)
	for _, r := range rows {
		fmt.Fprintf(w, "  %-8d", r.Nodes)
		for _, op := range fig7Ops {
			fmt.Fprintf(w, " %12.1f", ms(r.ETH.PerOp[op].Mean))
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, "Figure 8c — throughput vs cluster size (tps, 1.09 KB tx)")
	fmt.Fprintf(w, "  %-8s %12s %12s\n", "nodes", "SCDB", "ETH-SC")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-8d %12.1f %12.2f\n", r.Nodes, r.SCDB.Throughput, r.ETH.Throughput)
	}
	fmt.Fprintln(w)
}

// PrintUsability renders the §5.2.2 comparison.
func PrintUsability(w io.Writer, r UsabilityResult) {
	fmt.Fprintln(w, "Usability — user code to stand up one marketplace (§5.2.2)")
	fmt.Fprintf(w, "  %-24s %8s\n", "approach", "LoC")
	fmt.Fprintf(w, "  %-24s %8d   (paper: 175)\n", "ETH-SC smart contract", r.ContractLines)
	fmt.Fprintf(w, "  %-24s %8d   (native transaction types)\n\n", "SmartchainDB", r.DeclarativeLines)
}
