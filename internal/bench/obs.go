package bench

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"smartchaindb/internal/obs"
)

// ObsParams configures the observability-overhead experiment: the
// same prepared block-commit workload run twice over fresh in-memory
// state — once on the no-op (nil-registry) build, once fully
// instrumented — plus microbenchmarks of the primitives themselves.
type ObsParams struct {
	// Blocks and BlockTxs shape the commit workload (see commitWorkload).
	Blocks   int
	BlockTxs int
	// Workers is the pipelined commit's apply-worker count.
	Workers int
	// Reps repeats each wall-clock measurement, keeping the fastest.
	Reps int
	// Seed drives workload generation.
	Seed int64
}

func (p *ObsParams) fill() {
	if p.Blocks <= 0 {
		p.Blocks = 6
	}
	if p.BlockTxs <= 0 {
		p.BlockTxs = 256
	}
	if p.Workers <= 0 {
		p.Workers = 4
	}
	if p.Reps <= 0 {
		p.Reps = 5
	}
}

// ObsRow is one macro measurement: the commit workload under one
// registry build.
type ObsRow struct {
	Registry string        `json:"registry"` // "noop" or "live"
	Elapsed  time.Duration `json:"elapsed_ns"`
	TPS      float64       `json:"tps"`
}

// ObsMicroRow is one primitive's single-threaded cost.
type ObsMicroRow struct {
	Op   string  `json:"op"`
	NsOp float64 `json:"ns_op"`
}

// ObsResult is the full overhead measurement.
type ObsResult struct {
	Params ObsParams
	// Rows holds the noop then live macro rows.
	Rows []ObsRow
	// OverheadPct is the live pass's wall-time overhead vs noop, in
	// percent; negative means within noise.
	OverheadPct float64
	// Micro holds per-op costs of the registry primitives: the nil
	// handle (the disabled build's cost at every instrumentation site)
	// vs live counters and histograms.
	Micro []ObsMicroRow
}

// RunObs measures instrumentation overhead: the pipelined block
// commit — the hottest instrumented path, metrics plus per-tx stage
// tracing — with a live registry vs the no-op build, on the in-memory
// backend so storage cost doesn't mask the difference.
func RunObs(p ObsParams) ObsResult {
	p.fill()
	res := ObsResult{Params: p}
	setup, blocks := commitWorkload(CommitParams{Blocks: p.Blocks, BlockTxs: p.BlockTxs, Seed: p.Seed}, 0.25)

	commitOnce := func(reg *obs.Registry) time.Duration {
		st, cleanup := commitState("memory")
		defer cleanup()
		commitSetup(st, setup)
		st.SetCommitWorkers(p.Workers)
		st.SetObs(reg)
		runtime.GC() // level the heap so GC drift doesn't land on one build
		return commitBlocksTimed(st, blocks, 1)
	}

	// Interleave the builds rep by rep: the commit workload's noise
	// (index sweeps, GC) drifts over a process's lifetime, so two
	// back-to-back pass-per-build measurements would charge that drift
	// to whichever build ran second.
	txs := p.Blocks * p.BlockTxs
	noop, live := time.Duration(1<<62-1), time.Duration(1<<62-1)
	for rep := 0; rep < p.Reps; rep++ {
		if el := commitOnce(nil); el < noop {
			noop = el
		}
		if el := commitOnce(obs.New()); el < live {
			live = el
		}
	}
	res.Rows = append(res.Rows,
		ObsRow{Registry: "noop", Elapsed: noop, TPS: tps(txs, noop)},
		ObsRow{Registry: "live", Elapsed: live, TPS: tps(txs, live)})
	if noop > 0 {
		res.OverheadPct = (float64(live)/float64(noop) - 1) * 100
	}

	// Primitive costs, single-threaded. The nil-handle row is what every
	// instrumentation site costs when observability is off.
	const iters = 2_000_000
	micro := func(op string, f func(i int)) {
		el, _ := fastest(p.Reps, func() (time.Duration, struct{}) {
			return timed(func() {
				for i := 0; i < iters; i++ {
					f(i)
				}
			}), struct{}{}
		})
		res.Micro = append(res.Micro, ObsMicroRow{Op: op, NsOp: float64(el) / iters})
	}
	var nilCounter *obs.Counter
	micro("counter.inc (nil)", func(int) { nilCounter.Inc() })
	reg := obs.New()
	c := reg.Counter("bench.counter")
	micro("counter.inc (live)", func(int) { c.Inc() })
	h := reg.Histogram("bench.hist")
	micro("histogram.observe", func(i int) { h.Observe(int64(i)) })
	return res
}

// PrintObs renders the overhead comparison.
func PrintObs(w io.Writer, r ObsResult) {
	fmt.Fprintf(w, "Observability overhead — pipelined commit, %d blocks x %d txs, memory backend, %d workers (best of %d)\n",
		r.Params.Blocks, r.Params.BlockTxs, r.Params.Workers, r.Params.Reps)
	fmt.Fprintf(w, "  %-10s %12s %12s\n", "registry", "commit(ms)", "commit tps")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "  %-10s %12.1f %12.0f\n", row.Registry, ms(row.Elapsed), row.TPS)
	}
	fmt.Fprintf(w, "  instrumented overhead: %+.2f%%\n", r.OverheadPct)
	fmt.Fprintf(w, "  %-20s %10s\n", "primitive", "ns/op")
	for _, row := range r.Micro {
		fmt.Fprintf(w, "  %-20s %10.1f\n", row.Op, row.NsOp)
	}
	fmt.Fprintln(w)
}
