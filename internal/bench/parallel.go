package bench

import (
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"time"

	"smartchaindb/internal/keys"
	"smartchaindb/internal/ledger"
	"smartchaindb/internal/netsim"
	"smartchaindb/internal/parallel"
	"smartchaindb/internal/server"
	"smartchaindb/internal/txn"
	"smartchaindb/internal/validate"
	"smartchaindb/internal/workload"
)

// ParallelParams configures the parallel-validation experiment: the
// wall-clock throughput of the DeliverTx-stage batch validation,
// sequential vs the dependency-aware parallel scheduler, across worker
// counts and conflict rates.
type ParallelParams struct {
	// Batches is the number of blocks validated per measurement.
	Batches int
	// BatchTxs is the number of transactions per block.
	BatchTxs int
	// Workers are the worker counts to sweep; 1 is the sequential
	// baseline every speedup is computed against.
	Workers []int
	// ConflictRate is the fraction of batch slots filled with a
	// conflicting transaction: alternately a double-spend of the
	// previous slot's output and a BID on the block's shared REQUEST.
	ConflictRate float64
	// Reps repeats each measurement, keeping the fastest run.
	Reps int
	// Seed drives workload generation.
	Seed int64
}

func (p *ParallelParams) fill() {
	if p.Batches <= 0 {
		p.Batches = 4
	}
	if p.BatchTxs <= 0 {
		p.BatchTxs = 256
	}
	if len(p.Workers) == 0 {
		p.Workers = []int{1, 2, 4, 8}
	}
	// Every sweep carries the sequential baseline: speedups and the
	// determinism cross-check are defined against workers=1.
	hasSeq := false
	for _, w := range p.Workers {
		if w <= 1 {
			hasSeq = true
			break
		}
	}
	if !hasSeq {
		p.Workers = append([]int{1}, p.Workers...)
	}
	if p.Reps <= 0 {
		p.Reps = 3
	}
}

// ParallelRow is one worker-count measurement.
type ParallelRow struct {
	Workers int
	Elapsed time.Duration
	TPS     float64
	Speedup float64 // vs the workers=1 row
	Valid   int
	Invalid int
}

// SimRow is one worker-count point of the consensus-simulation leg:
// the same reverse-auction workload driven through a validation-bound
// SmartchainDB cluster, with DeliverTx block validation costed at the
// parallel plan's makespan. Virtual-time results are deterministic and
// independent of the host's core count.
type SimRow struct {
	Workers    int
	Throughput float64 // committed tx per simulated second
	MeanMs     float64 // mean commit latency, simulated ms
	Committed  int
}

// ParallelResult is the full sweep.
type ParallelResult struct {
	Params      ParallelParams
	TotalTxs    int
	MeanGroups  float64 // conflict groups per batch
	MeanLargest float64 // critical-path length per batch
	Rows        []ParallelRow
	// SimRows is the consensus-simulation leg, one row per worker
	// count.
	SimRows []SimRow
	// Agree reports that every worker count produced the identical
	// valid-transaction sequence — the determinism guarantee.
	Agree bool
}

// parallelWorkload pre-commits the backing state and builds the
// batches. Returned state holds the committed CREATEs and REQUESTs the
// batch transactions depend on.
func parallelWorkload(p ParallelParams) (*ledger.State, *keys.Reserved, [][]*txn.Transaction) {
	reserved := keys.NewReservedWithDefaults(p.Seed + 9000)
	state := ledger.NewState()
	gen := workload.NewGenerator(p.Seed, reserved.Escrow())
	rng := rand.New(rand.NewSource(p.Seed + 17))

	const payload = 128
	batches := make([][]*txn.Transaction, p.Batches)
	slot := 0
	for b := range batches {
		// One shared REQUEST per block: every conflicting BID references
		// it, forming one conflict group.
		requester := gen.Account(1_000_000 + b)
		rfq := gen.Request(requester, []string{"cnc"}, payload)
		if err := state.CommitTx(rfq); err != nil {
			panic(fmt.Sprintf("bench: commit rfq: %v", err))
		}
		batch := make([]*txn.Transaction, 0, p.BatchTxs)
		var prev *txn.Transaction   // previous independent transfer, for double-spends
		var prevOwner *keys.KeyPair // its spender, who must co-sign the duplicate
		dsTurn := true
		for j := 0; j < p.BatchTxs; j++ {
			owner := gen.Account(slot)
			asset := gen.Create(owner, []string{"cnc"}, payload)
			if err := state.CommitTx(asset); err != nil {
				panic(fmt.Sprintf("bench: commit asset: %v", err))
			}
			conflicting := rng.Float64() < p.ConflictRate
			switch {
			case conflicting && dsTurn && prev != nil:
				// Double-spend: respend the previous transfer's input to a
				// different recipient. Same conflict group; invalid.
				dup := txn.NewTransfer(prev.Asset.ID,
					[]txn.Spend{{Ref: *prev.Inputs[0].Fulfills, Owners: prev.Inputs[0].OwnersBefore}},
					[]*txn.Output{{PublicKeys: []string{gen.Account(2_000_000 + slot).PublicBase58()}, Amount: 1}},
					nil)
				if err := txn.Sign(dup, prevOwner); err != nil {
					panic(fmt.Sprintf("bench: sign dup: %v", err))
				}
				batch = append(batch, dup)
				dsTurn = false
			case conflicting:
				// BID on the block's shared REQUEST: valid but conflicting
				// with every other bid on the same REQUEST.
				batch = append(batch, gen.Bid(owner, asset, rfq, payload))
				dsTurn = true
			default:
				recipient := gen.Account(3_000_000 + slot)
				tr := txn.NewTransfer(asset.ID,
					[]txn.Spend{{Ref: txn.OutputRef{TxID: asset.ID, Index: 0}, Owners: []string{owner.PublicBase58()}}},
					[]*txn.Output{{PublicKeys: []string{recipient.PublicBase58()}, Amount: 1}},
					nil)
				if err := txn.Sign(tr, owner); err != nil {
					panic(fmt.Sprintf("bench: sign transfer: %v", err))
				}
				batch = append(batch, tr)
				prev, prevOwner = tr, owner
			}
			slot++
		}
		batches[b] = batch
	}
	return state, reserved, batches
}

// runSimValidation drives one auction workload through a
// validation-bound cluster (large blocks, expensive per-transaction
// DeliverTx checks) and reports its virtual-time summary.
func runSimValidation(workers int, seed int64) SimRow {
	cluster := server.NewCluster(server.ClusterConfig{
		Nodes:         4,
		Seed:          seed,
		BlockInterval: 50 * time.Millisecond,
		MaxBlockTxs:   64,
		Pipelined:     true,
		Latency:       netsim.UniformLatency{Base: 5 * time.Millisecond, Jitter: 2 * time.Millisecond},
		// Children re-enter the network only after every replica has
		// applied the parent block; an early child hitting a lagging
		// receiver would be rejected permanently.
		ChildDelay: 100 * time.Millisecond,
		Node: server.Config{
			ReceiverTime:        2 * time.Millisecond,
			ValidationTimePerTx: 2 * time.Millisecond,
			ParallelWorkers:     workers,
		},
	})
	defer cluster.Close()
	gen := workload.NewGenerator(seed+7, cluster.ServerNode(0).Escrow())
	const auctions, bidders = 6, 8
	groups := make([]*workload.AuctionGroup, 0, auctions)
	base := 0
	for i := 0; i < auctions; i++ {
		groups = append(groups, gen.NewAuctionGroup(base, workload.AuctionGroupSpec{
			BiddersPerAuction: bidders, PayloadBytes: 128,
		}))
		base += bidders + 1
	}
	driveAuctionPhases(cluster, groups, 2*time.Millisecond)
	sum := cluster.Summarize()
	return SimRow{
		Workers:    workers,
		Throughput: sum.Throughput,
		MeanMs:     float64(sum.MeanLatency) / float64(time.Millisecond),
		Committed:  sum.Committed,
	}
}

// driveAuctionPhases submits the auction groups' transactions in the
// three dependency phases (requests+creates, bids, accepts), letting
// every replica settle between phases — a dependent transaction
// hitting a lagging receiver would be rejected permanently — and runs
// the cluster until every client transaction and nested child commits.
// It returns the client-transaction and child counts driven.
func driveAuctionPhases(cluster *server.Cluster, groups []*workload.AuctionGroup, gap time.Duration) (count, children int) {
	at := cluster.Sched().Now()
	submit := func(t *txn.Transaction) {
		cluster.SubmitAt(at, t)
		at += gap
		count++
	}
	settle := func() {
		cluster.RunUntil(cluster.Sched().Now() + time.Second)
		at = cluster.Sched().Now()
	}
	for _, g := range groups {
		submit(g.Request)
		for _, c := range g.Creates {
			submit(c)
		}
	}
	cluster.RunUntilCommitted(count, at+time.Hour)
	settle()
	for _, g := range groups {
		for _, b := range g.Bids {
			submit(b)
		}
	}
	cluster.RunUntilCommitted(count, at+time.Hour)
	settle()
	for _, g := range groups {
		submit(g.Accept)
		children += len(g.Bids)
	}
	cluster.RunUntilCommitted(count+children, at+time.Hour)
	cluster.RunUntil(cluster.Sched().Now() + time.Second)
	return count, children
}

// RunParallel measures sequential vs parallel validation throughput on
// identical batches and verifies the outcomes agree.
func RunParallel(p ParallelParams) ParallelResult {
	p.fill()
	state, reserved, batches := parallelWorkload(p)
	reg := validate.NewRegistry()

	res := ParallelResult{Params: p, Agree: true}
	for _, batch := range batches {
		res.TotalTxs += len(batch)
		plan := parallel.BuildPlan(batch)
		res.MeanGroups += float64(len(plan.Groups))
		res.MeanLargest += float64(plan.Largest())
	}
	if p.Batches > 0 {
		res.MeanGroups /= float64(p.Batches)
		res.MeanLargest /= float64(p.Batches)
	}

	rowValid := make([][]string, len(p.Workers))
	baseline := 0 // index of the sequential reference row (fill guarantees one)
	for i, w := range p.Workers {
		if w <= 1 {
			baseline = i
			break
		}
	}
	for wi, w := range p.Workers {
		sched := &parallel.Scheduler{Workers: w}
		row := ParallelRow{Workers: w}
		var validIDs []string
		row.Elapsed, validIDs = fastest(p.Reps, func() (time.Duration, []string) {
			ids := make([]string, 0, res.TotalTxs)
			valid, invalid := 0, 0
			start := time.Now()
			for _, batch := range batches {
				r := sched.ValidateBatch(reg, state, reserved, batch)
				valid += len(r.Valid)
				invalid += len(r.Invalid)
				for _, t := range r.Valid {
					ids = append(ids, t.ID)
				}
			}
			el := time.Since(start)
			row.Valid, row.Invalid = valid, invalid
			return el, ids
		})
		if row.Elapsed > 0 {
			row.TPS = float64(res.TotalTxs) / row.Elapsed.Seconds()
		}
		rowValid[wi] = validIDs
		res.Rows = append(res.Rows, row)
	}
	for wi := range res.Rows {
		if !sameIDs(rowValid[baseline], rowValid[wi]) {
			res.Agree = false
		}
		if res.Rows[baseline].TPS > 0 {
			res.Rows[wi].Speedup = res.Rows[wi].TPS / res.Rows[baseline].TPS
		}
	}
	for _, w := range p.Workers {
		res.SimRows = append(res.SimRows, runSimValidation(w, p.Seed))
	}
	return res
}

func sameIDs(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// PrintParallel renders the parallel-validation sweep.
func PrintParallel(w io.Writer, r ParallelResult) {
	fmt.Fprintf(w, "Parallel validation — %d blocks x %d txs, conflict rate %.0f%%\n",
		r.Params.Batches, r.Params.BatchTxs, r.Params.ConflictRate*100)
	fmt.Fprintf(w, "  conflict groups per block: %.1f (critical path %.1f txs)\n",
		r.MeanGroups, r.MeanLargest)
	fmt.Fprintf(w, "  %-8s %12s %12s %9s %8s %8s\n", "workers", "elapsed(ms)", "tps", "speedup", "valid", "invalid")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "  %-8d %12.1f %12.0f %8.2fx %8d %8d\n",
			row.Workers, ms(row.Elapsed), row.TPS, row.Speedup, row.Valid, row.Invalid)
	}
	if !r.Agree {
		fmt.Fprintln(w, "  WARNING: worker counts disagreed on the valid set")
	}
	fmt.Fprintf(w, "  (wall-clock rows depend on host cores: GOMAXPROCS=%d)\n", runtime.GOMAXPROCS(0))
	fmt.Fprintln(w)
	fmt.Fprintln(w, "Parallel validation — consensus simulation (validation-bound cluster, virtual time)")
	fmt.Fprintf(w, "  %-8s %12s %14s %10s\n", "workers", "tps", "latency(ms)", "committed")
	for _, row := range r.SimRows {
		fmt.Fprintf(w, "  %-8d %12.1f %14.1f %10d\n", row.Workers, row.Throughput, row.MeanMs, row.Committed)
	}
	fmt.Fprintln(w)
}
