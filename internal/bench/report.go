package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"smartchaindb/internal/obs"
)

// This file is the shared reporting machinery: the best-of-reps
// measurement loop every wall-clock experiment repeats, per-stage
// latency-distribution capture off a live obs registry, and the
// machine-readable report scdb-bench -json emits.

// fastest repeats run and returns the rep with the lowest elapsed
// time — the wall-clock discipline of every experiment here (the
// minimum over reps rejects scheduler noise; means average it in).
// The payload rides along with its rep's measurement.
func fastest[T any](reps int, run func() (time.Duration, T)) (time.Duration, T) {
	best := time.Duration(1<<62 - 1)
	var out T
	for rep := 0; rep < reps; rep++ {
		el, v := run()
		if el < best {
			best, out = el, v
		}
	}
	return best, out
}

// timed runs f once and returns its wall time, for use as a fastest
// payload-free measurement body.
func timed(f func()) time.Duration {
	start := time.Now()
	f()
	return time.Since(start)
}

// stageMetric names one histogram a stage table reports: the short
// label rendered in tables and the registry metric it snapshots.
type stageMetric struct {
	Label  string
	Metric string
}

// StageDist is one per-stage latency distribution captured off a live
// obs registry during an instrumented pass. Dist values are
// nanoseconds for *_ns metrics.
type StageDist struct {
	Backend string           `json:"backend"`
	Stage   string           `json:"stage"`
	Metric  string           `json:"metric"`
	Dist    obs.HistSnapshot `json:"dist"`
}

// captureStages snapshots the named histograms from a live registry
// into stage rows, in table order.
func captureStages(reg *obs.Registry, backend string, metrics []stageMetric) []StageDist {
	out := make([]StageDist, 0, len(metrics))
	for _, m := range metrics {
		out = append(out, StageDist{
			Backend: backend,
			Stage:   m.Label,
			Metric:  m.Metric,
			Dist:    reg.Histogram(m.Metric).Snapshot(),
		})
	}
	return out
}

// printStages renders stage rows as one quantile table (µs).
func printStages(w io.Writer, rows []StageDist) {
	fmt.Fprintf(w, "  %-8s %-8s %8s %10s %10s %10s %10s\n", "backend", "stage", "count", "p50(µs)", "p99(µs)", "p999(µs)", "max(µs)")
	for _, r := range rows {
		d := r.Dist
		fmt.Fprintf(w, "  %-8s %-8s %8d %10.1f %10.1f %10.1f %10.1f\n",
			r.Backend, r.Stage, d.Count,
			float64(d.P50)/1e3, float64(d.P99)/1e3, float64(d.P999)/1e3, float64(d.Max)/1e3)
	}
}

// Report accumulates every selected experiment's result struct for
// the -json emission. The structs marshal as-is: durations are
// nanosecond integers, histograms are HistSnapshot objects.
type Report struct {
	GoMaxProcs  int           `json:"gomaxprocs"`
	Experiments []ReportEntry `json:"experiments"`
}

// ReportEntry is one experiment's full result under its -exp name.
type ReportEntry struct {
	Name   string `json:"name"`
	Result any    `json:"result"`
}

// NewReport starts an empty report.
func NewReport() *Report {
	return &Report{GoMaxProcs: runtime.GOMAXPROCS(0)}
}

// Add records one experiment's result.
func (r *Report) Add(name string, result any) {
	r.Experiments = append(r.Experiments, ReportEntry{Name: name, Result: result})
}

// WriteFile writes the report as indented JSON to path.
func (r *Report) WriteFile(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return fmt.Errorf("bench: marshal report: %w", err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("bench: write report: %w", err)
	}
	return nil
}
