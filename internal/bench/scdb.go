// Package bench is the experiment harness: it regenerates every table
// and figure of the paper's evaluation (Figure 2, Figures 7a–7c,
// Figures 8a–8c, and the §5.2.2 usability comparison) on the simulated
// SmartchainDB and ETH-SC clusters, printing paper-style rows so the
// measured shapes can be compared against the published ones.
package bench

import (
	"time"

	"smartchaindb/internal/netsim"
	"smartchaindb/internal/server"
	"smartchaindb/internal/txn"
	"smartchaindb/internal/workload"
)

// SCDBParams configures one SmartchainDB run. The defaults are
// calibrated so a 4-node cluster lands near the paper's operating
// point: per-transaction commit latency ≈ 0.10 s and throughput in the
// low-40s TPS, flat across payload sizes.
type SCDBParams struct {
	Nodes        int
	PayloadBytes int
	Auctions     int
	Bidders      int
	Seed         int64
	// SubmitGap spaces client submissions (offered load pacing).
	SubmitGap time.Duration
	// Workers enables the parallel pipeline on every validator:
	// DeliverTx-stage block validation, CheckTx-stage batched
	// admission, and makespan-aware packing all run on this many
	// workers. Zero keeps the sequential paths.
	Workers int
}

func (p *SCDBParams) fill() {
	if p.Nodes <= 0 {
		p.Nodes = 4
	}
	if p.Auctions <= 0 {
		p.Auctions = 10
	}
	if p.Bidders <= 0 {
		p.Bidders = 10
	}
	if p.SubmitGap <= 0 {
		// Offered load pacing at the cluster's service capacity
		// (~45 tps), matching the paper's steady-state operating point.
		p.SubmitGap = 22 * time.Millisecond
	}
}

// newSCDBCluster builds a cluster with the calibrated service times.
func newSCDBCluster(p SCDBParams) *server.Cluster {
	return server.NewCluster(server.ClusterConfig{
		Nodes:         p.Nodes,
		Seed:          p.Seed,
		BlockInterval: 70 * time.Millisecond,
		MaxBlockTxs:   3,
		Pipelined:     true,
		Latency:       netsim.UniformLatency{Base: 10 * time.Millisecond, Jitter: 5 * time.Millisecond},
		Node: server.Config{
			ReceiverTime:        20 * time.Millisecond,
			ValidationTimePerTx: 500 * time.Microsecond,
			ParallelWorkers:     p.Workers,
			AdmissionWorkers:    p.Workers,
		},
	})
}

// OpStats aggregates per-operation latencies.
type OpStats struct {
	Count int
	Mean  time.Duration
	Max   time.Duration
}

// SCDBResult is one SmartchainDB run's measurements.
type SCDBResult struct {
	PayloadBytes int
	Nodes        int
	PerOp        map[string]OpStats
	Committed    int
	Submitted    int
	// Throughput is committed transactions per second between first
	// submission and last commit (§5.1.4).
	Throughput float64
}

// RunSCDB drives the reverse-auction workload through a SmartchainDB
// cluster in the three dependency phases (creates+requests, bids,
// accepts) and collects per-operation latency and overall throughput.
func RunSCDB(p SCDBParams) SCDBResult {
	p.fill()
	cluster := newSCDBCluster(p)
	gen := workload.NewGenerator(p.Seed+7, cluster.ServerNode(0).Escrow())

	var groups []*workload.AuctionGroup
	base := 0
	for i := 0; i < p.Auctions; i++ {
		groups = append(groups, gen.NewAuctionGroup(base, workload.AuctionGroupSpec{
			BiddersPerAuction: p.Bidders,
			PayloadBytes:      p.PayloadBytes,
		}))
		base += p.Bidders + 1
	}

	byOp := map[string][]string{} // op -> tx ids
	record := func(t *txn.Transaction) {
		byOp[t.Operation] = append(byOp[t.Operation], t.ID)
	}

	// Phase 1: requests and backing assets.
	at := cluster.Sched().Now()
	phase1 := 0
	for _, g := range groups {
		cluster.SubmitAt(at, g.Request)
		record(g.Request)
		at += p.SubmitGap
		phase1++
		for _, c := range g.Creates {
			cluster.SubmitAt(at, c)
			record(c)
			at += p.SubmitGap
			phase1++
		}
	}
	deadline := at + time.Hour
	cluster.RunUntilCommitted(phase1, deadline)

	// Phase 2: bids.
	at = cluster.Sched().Now()
	phase2 := phase1
	for _, g := range groups {
		for _, b := range g.Bids {
			cluster.SubmitAt(at, b)
			record(b)
			at += p.SubmitGap
			phase2++
		}
	}
	cluster.RunUntilCommitted(phase2, at+time.Hour)

	// Phase 3: accepts (children follow automatically).
	at = cluster.Sched().Now()
	total := phase2
	for _, g := range groups {
		cluster.SubmitAt(at, g.Accept)
		record(g.Accept)
		at += p.SubmitGap
		total++
		total += len(g.Bids) // children: 1 transfer + (bidders-1) returns
	}
	cluster.RunUntilCommitted(total, at+time.Hour)
	cluster.RunUntil(cluster.Sched().Now() + time.Second)

	res := SCDBResult{
		PayloadBytes: p.PayloadBytes,
		Nodes:        p.Nodes,
		PerOp:        make(map[string]OpStats),
	}
	for op, ids := range byOp {
		var sum time.Duration
		st := OpStats{}
		for _, id := range ids {
			lat, ok := cluster.Latency(id)
			if !ok {
				continue
			}
			st.Count++
			sum += lat
			if lat > st.Max {
				st.Max = lat
			}
		}
		if st.Count > 0 {
			st.Mean = sum / time.Duration(st.Count)
		}
		res.PerOp[op] = st
	}
	sum := cluster.Summarize()
	res.Committed = sum.Committed
	res.Submitted = sum.Submitted
	res.Throughput = sum.Throughput
	return res
}
