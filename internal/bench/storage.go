package bench

import (
	"fmt"
	"io"
	"os"
	"time"

	"smartchaindb/internal/keys"
	"smartchaindb/internal/ledger"
	"smartchaindb/internal/storage"
	"smartchaindb/internal/txn"
)

// StorageParams configures the storage-engine experiment: block-commit
// throughput and reopen/recovery time of the in-memory backend vs the
// persistent WAL+segment engine, across block sizes.
type StorageParams struct {
	// Blocks is the number of blocks committed per measurement.
	Blocks int
	// BlockSizes sweeps transactions per block.
	BlockSizes []int
	// Seed drives workload generation.
	Seed int64
}

func (p *StorageParams) fill() {
	if p.Blocks <= 0 {
		p.Blocks = 8
	}
	if len(p.BlockSizes) == 0 {
		p.BlockSizes = []int{64, 256, 1024}
	}
}

// StorageRow is one (backend, block size) measurement.
type StorageRow struct {
	Backend  string
	BlockTxs int
	Txs      int           // transactions committed
	Commit   time.Duration // wall time for all block commits
	TPS      float64
	WALBytes int64 // disk only: WAL size after the commits
	// Reopen is the close→open→replay time of the disk backend with
	// the whole history in the WAL; ReopenSeg the same after Compact
	// folded it into sorted segments.
	Reopen    time.Duration
	ReopenSeg time.Duration
	Recovered int  // TxCount after the reopen
	Match     bool // recovered state equals the committed state
}

// StorageResult is the full sweep.
type StorageResult struct {
	Params StorageParams
	Rows   []StorageRow
}

// storageBlocks builds deterministic valid blocks: CREATE+TRANSFER
// pairs, signing done up front so the measured region is pure commit.
func storageBlocks(p StorageParams, blockTxs int) [][]*txn.Transaction {
	owner := keys.DeterministicKeyPair(p.Seed + int64(blockTxs))
	to := keys.DeterministicKeyPair(p.Seed + int64(blockTxs) + 1)
	blocks := make([][]*txn.Transaction, p.Blocks)
	for b := range blocks {
		block := make([]*txn.Transaction, 0, blockTxs)
		for j := 0; j < blockTxs/2; j++ {
			c := txn.NewCreate(owner.PublicBase58(), map[string]any{
				"size": float64(blockTxs), "b": float64(b), "j": float64(j),
			}, 1, nil)
			if err := txn.Sign(c, owner); err != nil {
				panic(fmt.Sprintf("bench: sign create: %v", err))
			}
			tr := txn.NewTransfer(c.ID,
				[]txn.Spend{{Ref: txn.OutputRef{TxID: c.ID, Index: 0}, Owners: []string{owner.PublicBase58()}}},
				[]*txn.Output{{PublicKeys: []string{to.PublicBase58()}, Amount: 1}}, nil)
			if err := txn.Sign(tr, owner); err != nil {
				panic(fmt.Sprintf("bench: sign transfer: %v", err))
			}
			block = append(block, c, tr)
		}
		blocks[b] = block
	}
	return blocks
}

// commitAll commits the blocks at heights 1..n and returns the wall
// time and the committed-transaction count.
func commitAll(state *ledger.State, blocks [][]*txn.Transaction) (time.Duration, int) {
	total := 0
	start := time.Now()
	for i, block := range blocks {
		committed, skipped, err := state.CommitBlockAt(int64(i+1), block)
		if err != nil {
			panic(fmt.Sprintf("bench: commit block %d: %v", i+1, err))
		}
		if len(skipped) != 0 {
			panic(fmt.Sprintf("bench: block %d skipped %d transactions", i+1, len(skipped)))
		}
		total += len(committed)
	}
	return time.Since(start), total
}

// RunStorage measures commit throughput and recovery time for the
// memory and disk backends on identical workloads. The disk engine
// runs with fsync on — the group-commit batching per block is exactly
// what the experiment quantifies.
func RunStorage(p StorageParams) StorageResult {
	p.fill()
	res := StorageResult{Params: p}
	for _, blockTxs := range p.BlockSizes {
		blocks := storageBlocks(p, blockTxs)

		// Memory baseline.
		memState := ledger.NewStateWith(storage.NewMemory())
		elapsed, txs := commitAll(memState, blocks)
		res.Rows = append(res.Rows, StorageRow{
			Backend: "memory", BlockTxs: blockTxs, Txs: txs,
			Commit: elapsed, TPS: tps(txs, elapsed),
			// A restarted memory node recovers nothing; Match records
			// that the backend cannot meet the recovery criterion.
			Match: false,
		})

		// Disk engine, fsync on.
		dir, err := os.MkdirTemp("", "scdb-bench-storage-*")
		if err != nil {
			panic(fmt.Sprintf("bench: temp dir: %v", err))
		}
		row := StorageRow{Backend: "disk", BlockTxs: blockTxs}
		eng, err := storage.Open(dir, storage.Options{})
		if err != nil {
			panic(fmt.Sprintf("bench: open engine: %v", err))
		}
		diskState := ledger.NewStateWith(eng)
		row.Commit, row.Txs = commitAll(diskState, blocks)
		row.TPS = tps(row.Txs, row.Commit)
		row.WALBytes = eng.Stats().WALBytes
		wantHeight := diskState.Height()
		if err := diskState.Close(); err != nil {
			panic(fmt.Sprintf("bench: close: %v", err))
		}

		// Recovery leg 1: reopen with the whole history in the WAL.
		start := time.Now()
		st2 := reopenState(dir)
		row.Reopen = time.Since(start)
		row.Recovered = st2.TxCount()
		row.Match = st2.Height() == wantHeight && row.Recovered == row.Txs

		// Recovery leg 2: compact into segments, reopen again.
		if err := st2.Store().Compact(); err != nil {
			panic(fmt.Sprintf("bench: compact: %v", err))
		}
		if err := st2.Close(); err != nil {
			panic(fmt.Sprintf("bench: close: %v", err))
		}
		start = time.Now()
		st3 := reopenState(dir)
		row.ReopenSeg = time.Since(start)
		row.Match = row.Match && st3.TxCount() == row.Txs && st3.Height() == wantHeight
		st3.Close()
		os.RemoveAll(dir)
		res.Rows = append(res.Rows, row)
	}
	return res
}

func reopenState(dir string) *ledger.State {
	eng, err := storage.Open(dir, storage.Options{})
	if err != nil {
		panic(fmt.Sprintf("bench: reopen engine: %v", err))
	}
	return ledger.NewStateWith(eng)
}

func tps(n int, d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return float64(n) / d.Seconds()
}

// PrintStorage renders the storage-engine sweep.
func PrintStorage(w io.Writer, r StorageResult) {
	fmt.Fprintf(w, "Storage engine — %d blocks per point, fsync on, group commit per block\n", r.Params.Blocks)
	fmt.Fprintf(w, "  %-8s %9s %8s %12s %12s %9s %11s %12s %6s\n",
		"backend", "blocktxs", "txs", "commit(ms)", "commit tps", "wal(KB)", "reopen(ms)", "re-seg(ms)", "match")
	for _, row := range r.Rows {
		match := "-"
		reopen, reseg, wal := "-", "-", "-"
		if row.Backend == "disk" {
			match = fmt.Sprintf("%t", row.Match)
			reopen = fmt.Sprintf("%.1f", ms(row.Reopen))
			reseg = fmt.Sprintf("%.1f", ms(row.ReopenSeg))
			wal = fmt.Sprintf("%d", row.WALBytes/1024)
		}
		fmt.Fprintf(w, "  %-8s %9d %8d %12.1f %12.0f %9s %11s %12s %6s\n",
			row.Backend, row.BlockTxs, row.Txs, ms(row.Commit), row.TPS, wal, reopen, reseg, match)
	}
	fmt.Fprintln(w, "  (memory rows have no recovery legs: a restarted memory node starts empty)")
	fmt.Fprintln(w)
}
