package bench

import (
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"time"

	"smartchaindb/internal/consensus"
	"smartchaindb/internal/keys"
	"smartchaindb/internal/mempool"
	"smartchaindb/internal/netsim"
	"smartchaindb/internal/parallel"
	"smartchaindb/internal/server"
	"smartchaindb/internal/txn"
	"smartchaindb/internal/workload"
)

// MempoolParams configures the mempool-subsystem experiment: the
// ingest leg of the parallel pipeline. Three measurements:
//
//   - Admission (wall clock): one transaction stream — with the
//     resubmitted duplicates and pending double-spends a live receiver
//     sees — admitted one-at-a-time through seed-style CheckTx vs in
//     batches through the footprint-indexed pool, whose O(1) structural
//     screen drops duplicates and claimed spends before any signature
//     is verified and whose CheckFn validates each batch over the
//     conflict-group scheduler.
//   - Admission (virtual time): the same comparison end-to-end through
//     a receiver-bound consensus cluster, deterministic and
//     independent of host cores.
//   - Packing: pending pools at several conflict rates, packed FIFO vs
//     makespan-aware; the packed block's Plan.Makespan on the
//     validators' workers is the metric.
type MempoolParams struct {
	// Txs is the admission stream length (default 2048).
	Txs int
	// Batch is the admission batch size (default 64).
	Batch int
	// Workers are the admission worker counts for the batched rows;
	// the serial CheckTx baseline is always measured.
	Workers []int
	// ConflictRates sweeps the packing leg (default 0.10, 0.25, 0.50).
	ConflictRates []float64
	// BlockTxs is the packed block size (default 64).
	BlockTxs int
	// PackWorkers is the validation worker count the packer balances
	// for (default 8).
	PackWorkers int
	// PoolFactor sizes the pending pool for the packing leg as a
	// multiple of BlockTxs (default 4).
	PoolFactor int
	// Reps repeats wall-clock measurements, keeping the fastest.
	Reps int
	// Seed drives workload generation.
	Seed int64
}

func (p *MempoolParams) fill() {
	if p.Txs <= 0 {
		p.Txs = 2048
	}
	if p.Batch <= 0 {
		p.Batch = 64
	}
	if len(p.Workers) == 0 {
		p.Workers = []int{1, 2, 4, 8}
	}
	if len(p.ConflictRates) == 0 {
		p.ConflictRates = []float64{0.10, 0.25, 0.50}
	}
	if p.BlockTxs <= 0 {
		p.BlockTxs = 64
	}
	if p.PackWorkers <= 0 {
		p.PackWorkers = 8
	}
	if p.PoolFactor <= 0 {
		p.PoolFactor = 4
	}
	if p.Reps <= 0 {
		p.Reps = 3
	}
}

// MempoolAdmissionRow is one wall-clock admission measurement.
type MempoolAdmissionRow struct {
	Label    string // "serial CheckTx" or "batched wN"
	Workers  int
	Elapsed  time.Duration
	TPS      float64 // stream transactions per second
	Speedup  float64 // vs the serial row
	Admitted int
	Screened int // structural skips: duplicate IDs, claimed spends
	Rejected int // semantic rejections
}

// MempoolSimRow is one virtual-time point: a receiver-bound cluster
// with the given admission worker count.
type MempoolSimRow struct {
	Workers    int
	Throughput float64 // committed tx per simulated second
	MeanMs     float64
	Committed  int
}

// MempoolPackRow compares the two packing policies at one conflict
// rate. Makespans are in transaction units on PackWorkers workers.
type MempoolPackRow struct {
	ConflictRate   float64
	FIFOMakespan   int
	PackedMakespan int
	FIFOGroups     int
	PackedGroups   int
	Improvement    float64 // FIFO / packed
}

// MempoolResult is the full experiment.
type MempoolResult struct {
	Params        MempoolParams
	AdmissionRows []MempoolAdmissionRow
	SimRows       []MempoolSimRow
	PackRows      []MempoolPackRow
	// Agree reports that every batched worker count admitted the same
	// transaction count (wall clock) and committed the same set
	// (virtual time). The serial baseline is deliberately outside the
	// check: it admits pending double-spend rivals the index screens,
	// so its admitted count legitimately differs.
	Agree bool
}

// admissionWorkload builds the backing transactions (one shared
// REQUEST plus the assets) and a stream of p.Txs admissions:
// independent transfers, bids on the shared REQUEST, resubmitted
// duplicates (~15%), and double-spends of pending transfers (~10%) —
// the traffic shape the structural screen exists for.
func admissionWorkload(p MempoolParams) (backing, stream []*txn.Transaction) {
	reserved := keys.NewReservedWithDefaults(p.Seed + 9100)
	gen := workload.NewGenerator(p.Seed+11, reserved.Escrow())
	rng := rand.New(rand.NewSource(p.Seed + 23))

	const payload = 128
	requester := gen.Account(4_000_000)
	rfq := gen.Request(requester, []string{"cnc"}, payload)
	backing = append(backing, rfq)
	stream = make([]*txn.Transaction, 0, p.Txs)
	fresh := make([]*txn.Transaction, 0, p.Txs) // originals eligible for duplication
	var prev *txn.Transaction
	var prevOwner *keys.KeyPair
	for i := 0; i < p.Txs; i++ {
		r := rng.Float64()
		switch {
		case r < 0.15 && len(fresh) > 0:
			// Resubmitted duplicate (client retry storm).
			stream = append(stream, fresh[rng.Intn(len(fresh))])
			continue
		case r < 0.25 && prev != nil:
			// Double-spend of a pending transfer's input.
			dup := txn.NewTransfer(prev.Asset.ID,
				[]txn.Spend{{Ref: *prev.Inputs[0].Fulfills, Owners: prev.Inputs[0].OwnersBefore}},
				[]*txn.Output{{PublicKeys: []string{gen.Account(5_000_000 + i).PublicBase58()}, Amount: 1}},
				nil)
			if err := txn.Sign(dup, prevOwner); err != nil {
				panic(fmt.Sprintf("bench: sign dup: %v", err))
			}
			stream = append(stream, dup)
			continue
		}
		owner := gen.Account(4_100_000 + i)
		asset := gen.Create(owner, []string{"cnc"}, payload)
		backing = append(backing, asset)
		if r < 0.35 {
			// Bid on the shared REQUEST: valid, conflicting with every
			// other bid on it.
			bid := gen.Bid(owner, asset, rfq, payload)
			stream = append(stream, bid)
			fresh = append(fresh, bid)
			continue
		}
		recipient := gen.Account(6_000_000 + i)
		tr := txn.NewTransfer(asset.ID,
			[]txn.Spend{{Ref: txn.OutputRef{TxID: asset.ID, Index: 0}, Owners: []string{owner.PublicBase58()}}},
			[]*txn.Output{{PublicKeys: []string{recipient.PublicBase58()}, Amount: 1}},
			nil)
		if err := txn.Sign(tr, owner); err != nil {
			panic(fmt.Sprintf("bench: sign transfer: %v", err))
		}
		stream = append(stream, tr)
		fresh = append(fresh, tr)
		prev, prevOwner = tr, owner
	}
	return backing, stream
}

// newAdmissionNode builds a server node with the backing transactions
// committed.
func newAdmissionNode(backing []*txn.Transaction, seed int64, workers int) *server.Node {
	n := server.NewNode(server.Config{ReservedSeed: seed + 9100, AdmissionWorkers: workers})
	for _, t := range backing {
		if err := n.State().CommitTx(t); err != nil {
			panic(fmt.Sprintf("bench: commit backing tx: %v", err))
		}
	}
	return n
}

// runSerialAdmission is the seed receiver path: full CheckTx per
// stream entry, one at a time, with the arrival-order dedup map.
func runSerialAdmission(node *server.Node, stream []*txn.Transaction) MempoolAdmissionRow {
	row := MempoolAdmissionRow{Label: "serial CheckTx", Workers: 1}
	inMempool := make(map[string]bool, len(stream))
	for _, t := range stream {
		if err := node.ValidateTx(t); err != nil {
			row.Rejected++
			continue
		}
		if inMempool[t.ID] {
			row.Screened++ // paid full validation before the dedup
			continue
		}
		inMempool[t.ID] = true
		row.Admitted++
	}
	return row
}

// runBatchedAdmission pushes the stream through the pool in batches.
func runBatchedAdmission(node *server.Node, stream []*txn.Transaction, batch int) MempoolAdmissionRow {
	var row MempoolAdmissionRow
	pool := mempool.New(mempool.Config{
		BatchSize: batch,
		Footprint: mempool.ForTransaction,
		Check: func(txs []mempool.Tx) map[string]error {
			batchTxs := make([]consensus.Tx, len(txs))
			for i, tx := range txs {
				batchTxs[i] = tx.(consensus.Tx)
			}
			return node.CheckTxBatch(batchTxs)
		},
	})
	for start := 0; start < len(stream); start += batch {
		end := start + batch
		if end > len(stream) {
			end = len(stream)
		}
		in := make([]mempool.Tx, end-start)
		for i, t := range stream[start:end] {
			in[i] = t
		}
		res := pool.AdmitBatch(in)
		row.Admitted += len(res.Admitted)
		row.Screened += len(res.Skipped)
		row.Rejected += len(res.Rejected)
	}
	return row
}

// runMempoolSim drives a receiver-bound cluster (fast submissions,
// expensive receiver validation) with the given admission worker
// count and reports its virtual-time summary.
func runMempoolSim(workers int, seed int64) MempoolSimRow {
	cluster := server.NewCluster(server.ClusterConfig{
		Nodes:         4,
		Seed:          seed,
		BlockInterval: 40 * time.Millisecond,
		MaxBlockTxs:   64,
		Pipelined:     true,
		Latency:       netsim.UniformLatency{Base: 3 * time.Millisecond, Jitter: 2 * time.Millisecond},
		ChildDelay:    100 * time.Millisecond,
		Node: server.Config{
			ReceiverTime:        8 * time.Millisecond,
			ValidationTimePerTx: 200 * time.Microsecond,
			ParallelWorkers:     4,
			AdmissionWorkers:    workers,
			MempoolBatch:        32,
		},
	})
	defer cluster.Close()
	gen := workload.NewGenerator(seed+7, cluster.ServerNode(0).Escrow())
	const auctions, bidders = 8, 6
	groups := make([]*workload.AuctionGroup, 0, auctions)
	base := 0
	for i := 0; i < auctions; i++ {
		groups = append(groups, gen.NewAuctionGroup(base, workload.AuctionGroupSpec{
			BiddersPerAuction: bidders, PayloadBytes: 128,
		}))
		base += bidders + 1
	}
	driveAuctionPhases(cluster, groups, time.Millisecond)
	sum := cluster.Summarize()
	return MempoolSimRow{
		Workers:    workers,
		Throughput: sum.Throughput,
		MeanMs:     float64(sum.MeanLatency) / float64(time.Millisecond),
		Committed:  sum.Committed,
	}
}

// packingWorkload fills a pending pool at one conflict rate:
// conflicting slots are bids on one shared REQUEST (a single growing
// conflict group), the rest independent transfers.
func packingWorkload(p MempoolParams, rate float64) []*txn.Transaction {
	reserved := keys.NewReservedWithDefaults(p.Seed + 9200)
	gen := workload.NewGenerator(p.Seed+31, reserved.Escrow())
	rng := rand.New(rand.NewSource(p.Seed + 37))

	// The packing leg measures conflict structure only (admission is
	// structural, Check-free), so the backing CREATEs/REQUEST need not
	// be committed anywhere.
	const payload = 128
	requester := gen.Account(7_000_000)
	rfq := gen.Request(requester, []string{"cnc"}, payload)
	total := p.PoolFactor * p.BlockTxs
	pending := make([]*txn.Transaction, 0, total)
	for i := 0; i < total; i++ {
		owner := gen.Account(7_100_000 + i)
		asset := gen.Create(owner, []string{"cnc"}, payload)
		if rng.Float64() < rate {
			pending = append(pending, gen.Bid(owner, asset, rfq, payload))
			continue
		}
		recipient := gen.Account(7_200_000 + i)
		tr := txn.NewTransfer(asset.ID,
			[]txn.Spend{{Ref: txn.OutputRef{TxID: asset.ID, Index: 0}, Owners: []string{owner.PublicBase58()}}},
			[]*txn.Output{{PublicKeys: []string{recipient.PublicBase58()}, Amount: 1}},
			nil)
		if err := txn.Sign(tr, owner); err != nil {
			panic(fmt.Sprintf("bench: sign transfer: %v", err))
		}
		pending = append(pending, tr)
	}
	return pending
}

// packWith admits the pending set into a pool with the given policy
// and packs one block.
func packWith(pending []*txn.Transaction, policy mempool.Policy, blockTxs, workers int) []*txn.Transaction {
	pool := mempool.New(mempool.Config{Policy: policy, PackWorkers: workers})
	in := make([]mempool.Tx, len(pending))
	for i, t := range pending {
		in[i] = t
	}
	pool.AdmitBatch(in)
	packed := pool.Pack(blockTxs, workers)
	out := make([]*txn.Transaction, len(packed))
	for i, tx := range packed {
		out[i] = tx.(*txn.Transaction)
	}
	return out
}

// RunMempool runs the full experiment.
func RunMempool(p MempoolParams) MempoolResult {
	p.fill()
	res := MempoolResult{Params: p, Agree: true}

	// --- Admission, wall clock ---------------------------------------
	backing, stream := admissionWorkload(p)
	measure := func(run func() MempoolAdmissionRow) MempoolAdmissionRow {
		el, best := fastest(p.Reps, func() (time.Duration, MempoolAdmissionRow) {
			start := time.Now()
			row := run()
			return time.Since(start), row
		})
		best.Elapsed = el
		best.TPS = float64(len(stream)) / el.Seconds()
		return best
	}
	node1 := newAdmissionNode(backing, p.Seed, 1)
	serial := measure(func() MempoolAdmissionRow { return runSerialAdmission(node1, stream) })
	serial.Speedup = 1
	res.AdmissionRows = append(res.AdmissionRows, serial)
	admittedWant := -1
	for _, w := range p.Workers {
		node := newAdmissionNode(backing, p.Seed, w)
		row := measure(func() MempoolAdmissionRow { return runBatchedAdmission(node, stream, p.Batch) })
		row.Label = fmt.Sprintf("batched w%d", w)
		row.Workers = w
		if serial.Elapsed > 0 {
			row.Speedup = float64(serial.Elapsed) / float64(row.Elapsed)
		}
		if admittedWant < 0 {
			admittedWant = row.Admitted
		} else if row.Admitted != admittedWant {
			res.Agree = false // worker counts must admit identical sets
		}
		res.AdmissionRows = append(res.AdmissionRows, row)
	}

	// --- Admission, virtual time -------------------------------------
	committedWant := -1
	for _, w := range p.Workers {
		row := runMempoolSim(w, p.Seed)
		if committedWant < 0 {
			committedWant = row.Committed
		} else if row.Committed != committedWant {
			res.Agree = false
		}
		res.SimRows = append(res.SimRows, row)
	}

	// --- Packing ------------------------------------------------------
	for _, rate := range p.ConflictRates {
		pending := packingWorkload(p, rate)
		fifo := packWith(pending, mempool.PackFIFO, p.BlockTxs, p.PackWorkers)
		packed := packWith(pending, mempool.PackMakespan, p.BlockTxs, p.PackWorkers)
		fifoPlan := parallel.BuildPlan(fifo)
		packedPlan := parallel.BuildPlan(packed)
		row := MempoolPackRow{
			ConflictRate:   rate,
			FIFOMakespan:   fifoPlan.Makespan(p.PackWorkers),
			PackedMakespan: packedPlan.Makespan(p.PackWorkers),
			FIFOGroups:     len(fifoPlan.Groups),
			PackedGroups:   len(packedPlan.Groups),
		}
		if row.PackedMakespan > 0 {
			row.Improvement = float64(row.FIFOMakespan) / float64(row.PackedMakespan)
		}
		res.PackRows = append(res.PackRows, row)
	}
	return res
}

// PrintMempool renders the experiment.
func PrintMempool(w io.Writer, r MempoolResult) {
	p := r.Params
	fmt.Fprintf(w, "Mempool — batched admission, %d-tx stream (~15%% duplicates, ~10%% double-spends), batch %d\n",
		p.Txs, p.Batch)
	fmt.Fprintf(w, "  %-16s %12s %12s %9s %9s %9s %9s\n",
		"path", "elapsed(ms)", "tps", "speedup", "admitted", "screened", "rejected")
	for _, row := range r.AdmissionRows {
		fmt.Fprintf(w, "  %-16s %12.1f %12.0f %8.2fx %9d %9d %9d\n",
			row.Label, ms(row.Elapsed), row.TPS, row.Speedup, row.Admitted, row.Screened, row.Rejected)
	}
	fmt.Fprintf(w, "  (screened = O(1) index skips before any signature check; wall-clock rows depend on host cores: GOMAXPROCS=%d)\n\n",
		runtime.GOMAXPROCS(0))
	fmt.Fprintln(w, "Mempool — batched admission, receiver-bound consensus cluster (virtual time)")
	fmt.Fprintf(w, "  %-10s %12s %14s %10s\n", "workers", "tps", "latency(ms)", "committed")
	for _, row := range r.SimRows {
		fmt.Fprintf(w, "  %-10d %12.1f %14.1f %10d\n", row.Workers, row.Throughput, row.MeanMs, row.Committed)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "Mempool — block packing, %d-tx blocks from a %d-tx pool, makespan on %d workers\n",
		p.BlockTxs, p.PoolFactor*p.BlockTxs, p.PackWorkers)
	fmt.Fprintf(w, "  %-10s %14s %14s %14s %14s %9s\n",
		"conflict", "fifo span", "packed span", "fifo groups", "packed groups", "gain")
	for _, row := range r.PackRows {
		fmt.Fprintf(w, "  %-10.0f %14d %14d %14d %14d %8.2fx\n",
			row.ConflictRate*100, row.FIFOMakespan, row.PackedMakespan, row.FIFOGroups, row.PackedGroups, row.Improvement)
	}
	if !r.Agree {
		fmt.Fprintln(w, "  WARNING: admission paths disagreed")
	}
	fmt.Fprintln(w)
}
