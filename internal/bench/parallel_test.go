package bench

import (
	"bytes"
	"runtime"
	"strings"
	"testing"
)

// TestParallelValidationAgrees runs the wall-clock sweep at a small
// scale and checks every worker count admits the identical valid set,
// with the injected conflicts actually rejected.
func TestParallelValidationAgrees(t *testing.T) {
	r := RunParallel(ParallelParams{
		Batches: 2, BatchTxs: 64, Workers: []int{1, 2, 8},
		ConflictRate: 0.25, Reps: 1, Seed: 11,
	})
	if !r.Agree {
		t.Fatal("worker counts disagreed on the valid set")
	}
	if len(r.Rows) != 3 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.Valid == 0 {
			t.Errorf("workers=%d admitted nothing", row.Workers)
		}
		if row.Invalid == 0 {
			t.Errorf("workers=%d rejected nothing despite injected double-spends", row.Workers)
		}
		if row.Valid != r.Rows[0].Valid || row.Invalid != r.Rows[0].Invalid {
			t.Errorf("workers=%d counts differ from baseline", row.Workers)
		}
	}
	if r.MeanGroups <= 1 {
		t.Errorf("mean groups = %.1f, expected many independent groups", r.MeanGroups)
	}
	var buf bytes.Buffer
	PrintParallel(&buf, r)
	if !strings.Contains(buf.String(), "Parallel validation") {
		t.Error("printout missing header")
	}
}

// TestSimulatedParallelThroughput checks the consensus-simulation leg:
// with DeliverTx validation costed at the plan makespan, 4 workers
// must beat the sequential baseline on the low-conflict auction
// workload. Virtual time makes this deterministic on any host.
func TestSimulatedParallelThroughput(t *testing.T) {
	seq := runSimValidation(1, 21)
	par := runSimValidation(4, 21)
	if seq.Committed != par.Committed {
		t.Fatalf("committed counts differ: seq=%d par=%d", seq.Committed, par.Committed)
	}
	if par.Throughput < seq.Throughput {
		t.Errorf("parallel throughput %.1f tps below sequential %.1f tps",
			par.Throughput, seq.Throughput)
	}
	if par.MeanMs > seq.MeanMs {
		t.Errorf("parallel latency %.1f ms above sequential %.1f ms", par.MeanMs, seq.MeanMs)
	}
	t.Logf("sequential: %.1f tps / %.1f ms; 4 workers: %.1f tps / %.1f ms",
		seq.Throughput, seq.MeanMs, par.Throughput, par.MeanMs)
}

// TestParallelWallClockSpeedup checks real-core speedup of the
// validation worker pool on a low-conflict workload. It needs physical
// parallelism, so it only runs on hosts with enough cores.
func TestParallelWallClockSpeedup(t *testing.T) {
	if runtime.NumCPU() < 4 {
		t.Skipf("need >= 4 CPUs for wall-clock speedup, have %d", runtime.NumCPU())
	}
	r := RunParallel(ParallelParams{
		Batches: 3, BatchTxs: 256, Workers: []int{1, 4},
		ConflictRate: 0.05, Reps: 3, Seed: 33,
	})
	if !r.Agree {
		t.Fatal("worker counts disagreed on the valid set")
	}
	seq, par := r.Rows[0], r.Rows[1]
	if par.TPS < seq.TPS {
		t.Errorf("4-worker wall-clock throughput %.0f tps below sequential %.0f tps", par.TPS, seq.TPS)
	}
	t.Logf("sequential %.0f tps, 4 workers %.0f tps (%.2fx)", seq.TPS, par.TPS, par.Speedup)
}
