package bench

import (
	"fmt"
	"time"

	"smartchaindb/internal/ethchain"
	"smartchaindb/internal/minisol"
	"smartchaindb/internal/netsim"
)

// ETHParams configures one baseline (ETH-SC) run. Defaults model a
// 4-node Quorum/IBFT network: sub-second block period, a mainnet-sized
// block gas limit, and sequential contract execution at a few million
// gas per second — the regime where storage-heavy and quadratic
// transactions queue up.
type ETHParams struct {
	Nodes        int
	PayloadBytes int
	Auctions     int
	Bidders      int
	Seed         int64
	SubmitGap    time.Duration
}

func (p *ETHParams) fill() {
	if p.Nodes <= 0 {
		p.Nodes = 4
	}
	if p.Auctions <= 0 {
		p.Auctions = 4
	}
	if p.Bidders <= 0 {
		p.Bidders = 10
	}
	if p.SubmitGap <= 0 {
		p.SubmitGap = 10 * time.Millisecond
	}
}

// ETHResult is one baseline run's measurements, keyed by the
// SmartchainDB operation names so the two systems print side by side.
type ETHResult struct {
	PayloadBytes int
	Nodes        int
	PerOp        map[string]OpStats
	GasPerOp     map[string]uint64 // mean gas
	Committed    int
	Throughput   float64
	Failed       int
}

// ethOpNames maps contract methods to the paper's operation names.
var ethOpNames = map[string]string{
	"createAsset": "CREATE",
	"createRfq":   "REQUEST",
	"createBid":   "BID",
	"acceptBid":   "ACCEPT_BID",
}

// RunETH drives the equivalent reverse-auction workload through the
// marketplace smart contract on the IBFT baseline.
func RunETH(p ETHParams) (ETHResult, error) {
	p.fill()
	src, err := ethchain.ContractSource("marketplace")
	if err != nil {
		return ETHResult{}, err
	}
	deployTx := &ethchain.Tx{Kind: ethchain.KindDeploy, From: "genesis", Source: src, Contract: "Marketplace", Nonce: 1}
	addr := ethchain.ContractAddr(deployTx)
	cluster := ethchain.NewCluster(ethchain.ClusterConfig{
		Nodes:         p.Nodes,
		BlockPeriod:   250 * time.Millisecond,
		BlockGasLimit: 30_000_000,
		GasPerSecond:  2_000_000,
		Latency:       netsim.UniformLatency{Base: 12 * time.Millisecond, Jitter: 6 * time.Millisecond},
		Seed:          p.Seed,
	}, func(c *ethchain.Chain) { c.Execute(deployTx) })

	// Capability payloads: the request asks for 8 capabilities holding
	// half the payload; the asset advertises 16 (full payload): 8
	// extras first — certifications, work history — then the 8 the
	// request needs. The matcher therefore scans the extras before
	// finding each match, the O(n²) behaviour the paper measures.
	rfqCaps := capabilityArray("need", 8, p.PayloadBytes/2)
	extraCaps := capabilityArray("cert", 8, p.PayloadBytes/2)
	assetCaps := &minisol.Array{Elems: append(append([]minisol.Value{}, extraCaps.Elems...), rfqCaps.Elems...)}

	byOp := map[string][]string{}
	mkCall := func(from, fn string, args ...minisol.Value) *ethchain.Tx {
		tx := &ethchain.Tx{
			Kind: ethchain.KindCall, From: from, To: addr, Fn: fn,
			Args: args, GasLimit: 25_000_000, Nonce: cluster.NextNonce(),
		}
		byOp[ethOpNames[fn]] = append(byOp[ethOpNames[fn]], tx.Hash())
		return tx
	}

	// Phase 1: assets and RFQs.
	at := cluster.Sched().Now()
	count := 0
	for a := 0; a < p.Auctions; a++ {
		buyer := fmt.Sprintf("buyer-%d", a)
		cluster.SubmitAt(at, mkCall(buyer, "createRfq", rfqCaps))
		at += p.SubmitGap
		count++
		for b := 0; b < p.Bidders; b++ {
			sup := fmt.Sprintf("sup-%d-%d", a, b)
			cluster.SubmitAt(at, mkCall(sup, "createAsset", assetCaps))
			at += p.SubmitGap
			count++
		}
	}
	if got := cluster.RunUntilCommitted(count, at+10*time.Hour); got != count {
		return ETHResult{}, fmt.Errorf("bench: ETH phase 1 committed %d of %d", got, count)
	}

	// Read assigned ids from a replica snapshot.
	reader := cluster.Chain(0).Clone()
	view := func(fn string, args ...minisol.Value) minisol.Value {
		r := reader.Execute(&ethchain.Tx{
			Kind: ethchain.KindCall, From: "reader", To: addr, Fn: fn,
			Args: args, GasLimit: 1 << 40, Nonce: cluster.NextNonce(),
		})
		return r.Ret
	}
	assetOf := map[string]int64{} // owner -> asset id
	totalAssets := int64(p.Auctions * p.Bidders)
	for id := int64(1); id <= totalAssets; id++ {
		if owner, ok := view("assetOwner", minisol.Int(id)).(minisol.Addr); ok && owner != "" {
			assetOf[string(owner)] = id
		}
	}
	rfqOf := map[string]int64{} // buyer -> rfq id
	for id := int64(1); id <= int64(p.Auctions); id++ {
		if buyer, ok := view("rfqBuyer", minisol.Int(id)).(minisol.Addr); ok && buyer != "" {
			rfqOf[string(buyer)] = id
		}
	}

	// Phase 2: bids.
	at = cluster.Sched().Now()
	for a := 0; a < p.Auctions; a++ {
		buyer := fmt.Sprintf("buyer-%d", a)
		rfqID := rfqOf[buyer]
		for b := 0; b < p.Bidders; b++ {
			sup := fmt.Sprintf("sup-%d-%d", a, b)
			cluster.SubmitAt(at, mkCall(sup, "createBid", minisol.Int(rfqID), minisol.Int(assetOf[sup])))
			at += p.SubmitGap
			count++
		}
	}
	if got := cluster.RunUntilCommitted(count, at+100*time.Hour); got != count {
		return ETHResult{}, fmt.Errorf("bench: ETH phase 2 committed %d of %d", got, count)
	}

	// Phase 3: accepts — each buyer accepts the first bid on its RFQ.
	reader = cluster.Chain(0).Clone()
	at = cluster.Sched().Now()
	for a := 0; a < p.Auctions; a++ {
		buyer := fmt.Sprintf("buyer-%d", a)
		rfqID := rfqOf[buyer]
		win := view2(reader, addr, cluster, "bidAt", minisol.Int(rfqID), minisol.Int(0))
		winID, _ := win.(minisol.Int)
		cluster.SubmitAt(at, mkCall(buyer, "acceptBid", minisol.Int(rfqID), winID))
		at += p.SubmitGap
		count++
	}
	if got := cluster.RunUntilCommitted(count, at+100*time.Hour); got != count {
		return ETHResult{}, fmt.Errorf("bench: ETH phase 3 committed %d of %d", got, count)
	}
	cluster.RunUntil(cluster.Sched().Now() + time.Second)

	res := ETHResult{
		PayloadBytes: p.PayloadBytes,
		Nodes:        p.Nodes,
		PerOp:        make(map[string]OpStats),
		GasPerOp:     make(map[string]uint64),
	}
	for op, ids := range byOp {
		var sum time.Duration
		var gasSum uint64
		st := OpStats{}
		for _, id := range ids {
			lat, ok := cluster.Latency(id)
			if !ok {
				continue
			}
			st.Count++
			sum += lat
			if lat > st.Max {
				st.Max = lat
			}
			if r, ok := cluster.Receipt(id); ok {
				gasSum += r.GasUsed
				if r.Failed() {
					res.Failed++
				}
			}
		}
		if st.Count > 0 {
			st.Mean = sum / time.Duration(st.Count)
			res.GasPerOp[op] = gasSum / uint64(st.Count)
		}
		res.PerOp[op] = st
	}
	sum := cluster.Summarize()
	res.Committed = sum.Committed
	res.Throughput = sum.Throughput
	return res, nil
}

func view2(reader *ethchain.Chain, addr string, cluster *ethchain.Cluster, fn string, args ...minisol.Value) minisol.Value {
	r := reader.Execute(&ethchain.Tx{
		Kind: ethchain.KindCall, From: "reader", To: addr, Fn: fn,
		Args: args, GasLimit: 1 << 40, Nonce: cluster.NextNonce(),
	})
	return r.Ret
}

// capabilityArray builds n capability strings totalling close to
// totalBytes, deterministic in content.
func capabilityArray(prefix string, n, totalBytes int) *minisol.Array {
	if n <= 0 {
		n = 1
	}
	per := totalBytes / n
	if per < 8 {
		per = 8
	}
	arr := &minisol.Array{}
	for i := 0; i < n; i++ {
		label := fmt.Sprintf("%s-%02d-", prefix, i)
		for len(label) < per {
			label += string(rune('a' + (i+len(label))%26))
		}
		arr.Elems = append(arr.Elems, minisol.Str(label))
	}
	return arr
}
