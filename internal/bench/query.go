package bench

import (
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"smartchaindb/internal/docstore"
	"smartchaindb/internal/keys"
	"smartchaindb/internal/ledger"
	"smartchaindb/internal/storage"
	"smartchaindb/internal/txn"
)

// QueryParams configures the query-planner experiment: the
// planner-vs-full-scan latency sweep over collection sizes, and query
// throughput concurrent with block commits on both backends.
type QueryParams struct {
	// Docs sweeps the latency leg's collection sizes.
	Docs []int
	// Reps is the number of queries per shape per measurement.
	Reps int
	// Blocks/BlockTxs size the concurrent leg's commit load.
	Blocks   int
	BlockTxs int
	// Readers is the concurrent leg's query goroutine count.
	Readers int
	// Seed drives workload generation.
	Seed int64
}

func (p *QueryParams) fill() {
	if len(p.Docs) == 0 {
		p.Docs = []int{1000, 10000, 50000}
	}
	if p.Reps <= 0 {
		p.Reps = 64
	}
	if p.Blocks <= 0 {
		p.Blocks = 8
	}
	if p.BlockTxs <= 0 {
		p.BlockTxs = 256
	}
	if p.Readers <= 0 {
		p.Readers = 4
	}
}

// QueryLatencyRow is one (collection size, query shape) point of the
// latency sweep: mean planned latency vs mean forced-full-scan latency
// for identical results.
type QueryLatencyRow struct {
	Docs    int
	Shape   string // point | intersect | range | union
	Plan    string // Explain rendering of the planned access
	Planned time.Duration
	Scan    time.Duration
	Speedup float64
	Match   bool // planned and scan returned identical result counts
}

// QueryThroughputRow is one (backend, mode) measurement of the
// concurrent leg: queries running against a state while blocks commit.
type QueryThroughputRow struct {
	Backend string
	Mode    string // planned | full-scan
	Commit  time.Duration
	// Window is the effective measurement window: Queries counts only
	// the queries completed inside it, so QPS = Queries / Window by
	// construction — setup and reader spin-up are excluded from both.
	Window  time.Duration
	Queries int
	QPS     float64
}

// QueryResult is the full experiment.
type QueryResult struct {
	Params     QueryParams
	Latency    []QueryLatencyRow
	Throughput []QueryThroughputRow
}

// queryShape is one query template of the latency sweep; the filter
// varies with the rep counter so repeated measurements do not replay
// one cached candidate set.
type queryShape struct {
	name   string
	filter func(rep int) docstore.Filter
}

// queryCollection builds a UTXO-shaped collection of n documents with
// the chain registry's index mix: hash indexes on owner/asset_id,
// ordered indexes on spent/amount.
func queryCollection(s *docstore.Store, n int) (*docstore.Collection, []queryShape) {
	owners := n / 256
	if owners < 8 {
		owners = 8
	}
	assets := n / 128
	if assets < 8 {
		assets = 8
	}
	c := s.Collection("utxos")
	c.CreateIndex("owner")
	c.CreateIndex("asset_id")
	c.CreateOrderedIndex("spent")
	c.CreateOrderedIndex("amount")
	for i := 0; i < n; i++ {
		doc := map[string]any{
			"owner":    fmt.Sprintf("owner-%04d", i%owners),
			"asset_id": fmt.Sprintf("asset-%05d", i%assets),
			"amount":   float64(i % 1000),
			"spent":    i%8 == 0,
		}
		if err := c.Insert(fmt.Sprintf("u%07d", i), doc); err != nil {
			panic(fmt.Sprintf("bench: query insert: %v", err))
		}
	}
	shapes := []queryShape{
		{"point", func(rep int) docstore.Filter {
			return docstore.Eq("owner", fmt.Sprintf("owner-%04d", rep%owners))
		}},
		{"intersect", func(rep int) docstore.Filter {
			return docstore.And(
				docstore.Eq("asset_id", fmt.Sprintf("asset-%05d", rep%assets)),
				docstore.Eq("spent", false))
		}},
		// A selective band at the top of the value domain (the
		// "high-value holdings" query). The driving Gte side covers at
		// most 10% of the collection and the planner drops the wide Lt
		// side onto the residual filter; a band in the middle of a
		// uniform domain has ~50% selectivity per side, where no index
		// can beat a sequential scan.
		{"range", func(rep int) docstore.Filter {
			lo := float64(900 + (rep*7)%90)
			return docstore.And(docstore.Gte("amount", lo), docstore.Lt("amount", lo+10))
		}},
		{"union", func(rep int) docstore.Filter {
			return docstore.Or(
				docstore.Eq("owner", fmt.Sprintf("owner-%04d", rep%owners)),
				docstore.Eq("owner", fmt.Sprintf("owner-%04d", (rep+1)%owners)))
		}},
	}
	return c, shapes
}

// runQueryLatency measures each shape through the planner and through
// the forced full scan on identical data.
func runQueryLatency(p QueryParams) []QueryLatencyRow {
	var rows []QueryLatencyRow
	for _, n := range p.Docs {
		s := docstore.NewStore()
		c, shapes := queryCollection(s, n)
		for _, shape := range shapes {
			row := QueryLatencyRow{Docs: n, Shape: shape.name, Match: true,
				Plan: c.Explain(shape.filter(0))}
			start := time.Now()
			plannedCounts := make([]int, p.Reps)
			for r := 0; r < p.Reps; r++ {
				plannedCounts[r] = len(c.Find(shape.filter(r)))
			}
			row.Planned = time.Since(start) / time.Duration(p.Reps)
			start = time.Now()
			for r := 0; r < p.Reps; r++ {
				if got := len(c.FindScan(shape.filter(r))); got != plannedCounts[r] {
					row.Match = false
				}
			}
			row.Scan = time.Since(start) / time.Duration(p.Reps)
			if row.Planned > 0 {
				row.Speedup = float64(row.Scan) / float64(row.Planned)
			}
			rows = append(rows, row)
		}
		s.Close()
	}
	return rows
}

// queryChurnBlocks builds the concurrent leg's commit load: CREATEs
// with varying share amounts and the TRANSFERs spending them, rotating
// a small owner population so the measured queries stay selective.
func queryChurnBlocks(p QueryParams) (blocks [][]*txn.Transaction, ownerPubs []string) {
	const ownerCount = 8
	owners := make([]*keys.KeyPair, ownerCount)
	ownerPubs = make([]string, ownerCount)
	for i := range owners {
		owners[i] = keys.DeterministicKeyPair(p.Seed + int64(i))
		ownerPubs[i] = owners[i].PublicBase58()
	}
	blocks = make([][]*txn.Transaction, p.Blocks)
	for b := range blocks {
		block := make([]*txn.Transaction, 0, p.BlockTxs)
		for j := 0; j < p.BlockTxs/2; j++ {
			owner := owners[(b+j)%ownerCount]
			to := owners[(b+j+1)%ownerCount]
			amount := uint64((b*31+j)%97 + 1)
			c := txn.NewCreate(owner.PublicBase58(), map[string]any{
				"b": float64(b), "j": float64(j),
			}, amount, nil)
			if err := txn.Sign(c, owner); err != nil {
				panic(fmt.Sprintf("bench: sign create: %v", err))
			}
			tr := txn.NewTransfer(c.ID,
				[]txn.Spend{{Ref: txn.OutputRef{TxID: c.ID, Index: 0}, Owners: []string{owner.PublicBase58()}}},
				[]*txn.Output{{PublicKeys: []string{to.PublicBase58()}, Amount: amount}}, nil)
			if err := txn.Sign(tr, owner); err != nil {
				panic(fmt.Sprintf("bench: sign transfer: %v", err))
			}
			block = append(block, c, tr)
		}
		blocks[b] = block
	}
	return blocks, ownerPubs
}

// runQueryThroughput measures sustained query throughput while blocks
// commit, planned vs forced full scan, on one backend. Planned reads
// resolve off the indexes' locks and shard reads; full scans serialize
// behind the commit writer on the collection lock — the gap is what
// the experiment quantifies.
func runQueryThroughput(p QueryParams, backend string, newBackend func() storage.Backend) []QueryThroughputRow {
	blocks, ownerPubs := queryChurnBlocks(p)
	warm := len(blocks) / 2
	var rows []QueryThroughputRow
	for _, mode := range []string{"planned", "full-scan"} {
		state := ledger.NewStateWith(newBackend())
		for i := 0; i < warm; i++ {
			if _, skipped, err := state.CommitBlockAt(int64(i+1), blocks[i]); err != nil || len(skipped) != 0 {
				panic(fmt.Sprintf("bench: warm commit: err=%v skipped=%d", err, len(skipped)))
			}
		}
		utxos := state.Store().Collection(ledger.ColUTXOs)
		txs := state.Store().Collection(ledger.ColTransactions)
		find := utxos.Find
		findTx := txs.Find
		if mode == "full-scan" {
			find = utxos.FindScan
			findTx = txs.FindScan
		}

		var queries atomic.Int64
		done := make(chan struct{})
		var wg sync.WaitGroup
		wg.Add(p.Readers)
		for r := 0; r < p.Readers; r++ {
			r := r
			go func() {
				defer wg.Done()
				for i := 0; ; i++ {
					select {
					case <-done:
						return
					default:
					}
					owner := ownerPubs[(r+i)%len(ownerPubs)]
					find(docstore.And(docstore.Eq("owner", owner), docstore.Eq("spent", false)))
					lo := float64(80 + (i*13)%17)
					find(docstore.And(docstore.Eq("spent", false),
						docstore.Gte("amount", lo), docstore.Lte("amount", lo+5)))
					findTx(docstore.And(docstore.Eq("operation", txn.OpTransfer),
						docstore.Eq("inputs.owners_before", owner)))
					queries.Add(3)
				}
			}()
		}
		// The measurement window opens here: queries completed before
		// this point (readers spin up and run during setup) belong to
		// warm-up, not the rate, so the counter is snapshotted at both
		// edges and only the in-window delta enters the QPS numerator.
		start := time.Now()
		q0 := queries.Load()
		for i := warm; i < len(blocks); i++ {
			if _, skipped, err := state.CommitBlockAt(int64(i+1), blocks[i]); err != nil || len(skipped) != 0 {
				panic(fmt.Sprintf("bench: churn commit: err=%v skipped=%d", err, len(skipped)))
			}
		}
		// Commit wall-clock ends here — the reader-interference signal
		// must not include the padding below.
		commitElapsed := time.Since(start)
		// Floor the QPS measurement window so smoke-scale commit loads
		// (a couple of in-memory blocks) still observe at least one
		// full query round per reader and enough wall time for a
		// stable rate; real runs are commit-bound far past the floor.
		floor := start.Add(100 * time.Millisecond)
		for deadline := start.Add(2 * time.Second); (queries.Load()-q0 < int64(3*p.Readers) || time.Now().Before(floor)) && time.Now().Before(deadline); {
			time.Sleep(time.Millisecond)
		}
		// Close the window before stopping the readers: queries that
		// finish during teardown would otherwise inflate the numerator
		// against a denominator that stopped growing.
		window := time.Since(start)
		n := int(queries.Load() - q0)
		close(done)
		wg.Wait()
		state.Close()
		rows = append(rows, QueryThroughputRow{
			Backend: backend, Mode: mode, Commit: commitElapsed, Window: window,
			Queries: n, QPS: float64(n) / window.Seconds(),
		})
	}
	return rows
}

// RunQuery runs the query-planner experiment.
func RunQuery(p QueryParams) QueryResult {
	p.fill()
	res := QueryResult{Params: p}
	res.Latency = runQueryLatency(p)
	res.Throughput = append(res.Throughput,
		runQueryThroughput(p, "memory", func() storage.Backend { return storage.NewMemory() })...)
	var dirs []string
	res.Throughput = append(res.Throughput,
		runQueryThroughput(p, "disk", func() storage.Backend {
			dir, err := os.MkdirTemp("", "scdb-bench-query-*")
			if err != nil {
				panic(fmt.Sprintf("bench: temp dir: %v", err))
			}
			dirs = append(dirs, dir)
			eng, err := storage.Open(dir, storage.Options{})
			if err != nil {
				panic(fmt.Sprintf("bench: open disk engine: %v", err))
			}
			return eng
		})...)
	for _, dir := range dirs {
		os.RemoveAll(dir)
	}
	return res
}

// PrintQuery renders the experiment.
func PrintQuery(w io.Writer, r QueryResult) {
	fmt.Fprintln(w, "Query planner — planned (index) reads vs forced full scans")
	fmt.Fprintf(w, "  latency per query (%d reps per point)\n", r.Params.Reps)
	fmt.Fprintf(w, "  %-8s %-10s %12s %12s %9s %7s  %s\n",
		"docs", "shape", "planned(us)", "scan(us)", "speedup", "match", "plan")
	for _, row := range r.Latency {
		plan := row.Plan
		if len(plan) > 56 {
			plan = plan[:53] + "..."
		}
		fmt.Fprintf(w, "  %-8d %-10s %12.1f %12.1f %8.1fx %7t  %s\n",
			row.Docs, row.Shape,
			float64(row.Planned)/float64(time.Microsecond),
			float64(row.Scan)/float64(time.Microsecond),
			row.Speedup, row.Match, plan)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "  query throughput concurrent with block commits (%d blocks x %d txs, %d readers)\n",
		r.Params.Blocks, r.Params.BlockTxs, r.Params.Readers)
	fmt.Fprintf(w, "  %-8s %-10s %12s %12s %10s %12s\n", "backend", "reads", "commit(ms)", "window(ms)", "queries", "queries/s")
	for _, row := range r.Throughput {
		fmt.Fprintf(w, "  %-8s %-10s %12.1f %12.1f %10d %12.0f\n",
			row.Backend, row.Mode, ms(row.Commit), ms(row.Window), row.Queries, row.QPS)
	}
	for _, backend := range []string{"memory", "disk"} {
		var planned, scanned *QueryThroughputRow
		for i := range r.Throughput {
			row := &r.Throughput[i]
			if row.Backend != backend {
				continue
			}
			if row.Mode == "planned" {
				planned = row
			} else {
				scanned = row
			}
		}
		if planned != nil && scanned != nil && scanned.QPS > 0 {
			fmt.Fprintf(w, "  %s: planned reads sustain %.1fx the full-scan query rate under commit load\n",
				backend, planned.QPS/scanned.QPS)
		}
	}
	fmt.Fprintln(w)
}
