package bench

import (
	"bytes"
	"strings"
	"testing"
)

// TestRunQuerySmoke runs a miniature query experiment end to end: the
// latency sweep must produce planned (non-full-scan) access plans with
// scan-identical result counts, and both backends must report
// throughput rows for both read modes.
func TestRunQuerySmoke(t *testing.T) {
	res := RunQuery(QueryParams{
		Docs:     []int{256, 1024},
		Reps:     8,
		Blocks:   2,
		BlockTxs: 32,
		Readers:  2,
		Seed:     5,
	})
	if len(res.Latency) != 8 { // 2 sizes x 4 shapes
		t.Fatalf("latency rows = %d, want 8", len(res.Latency))
	}
	for _, row := range res.Latency {
		if !row.Match {
			t.Errorf("%s@%d: planned and scan results diverged", row.Shape, row.Docs)
		}
		if strings.Contains(row.Plan, "full-scan") {
			t.Errorf("%s@%d compiled to a full scan: %s", row.Shape, row.Docs, row.Plan)
		}
		if row.Planned <= 0 || row.Scan <= 0 {
			t.Errorf("%s@%d: non-positive timings %v / %v", row.Shape, row.Docs, row.Planned, row.Scan)
		}
	}
	if len(res.Throughput) != 4 { // 2 backends x 2 modes
		t.Fatalf("throughput rows = %d, want 4", len(res.Throughput))
	}
	for _, row := range res.Throughput {
		if row.Queries <= 0 || row.QPS <= 0 {
			t.Errorf("%s/%s: no queries completed", row.Backend, row.Mode)
		}
	}
	var buf bytes.Buffer
	PrintQuery(&buf, res)
	if !strings.Contains(buf.String(), "Query planner") {
		t.Error("print output missing header")
	}
}
