package bench

import (
	"fmt"
	"testing"

	"smartchaindb/internal/ethchain"
	"smartchaindb/internal/keys"
	"smartchaindb/internal/minisol"
	"smartchaindb/internal/schema"
	"smartchaindb/internal/server"
	"smartchaindb/internal/txn"
	"smartchaindb/internal/txtype"
)

// TestCrossSystemOutcomeEquivalence runs the *same* reverse auction on
// both systems — SmartchainDB's native types and the baseline's
// marketplace contract — and checks they agree on the economics: the
// winner receives the winning asset, every loser is made whole, and a
// second acceptance is rejected. The two implementations share no
// code, so agreement is strong evidence both model the paper's
// semantics correctly.
func TestCrossSystemOutcomeEquivalence(t *testing.T) {
	const bidders = 4
	const winIdx = 2 // accept the third bid in both systems

	// --- SmartchainDB side -------------------------------------------
	node := server.NewNode(server.Config{ReservedSeed: 77})
	requester := keys.MustGenerate()
	rfq := txn.NewRequest(requester.PublicBase58(), map[string]any{"capabilities": []any{"cnc"}}, nil)
	if err := txn.Sign(rfq, requester); err != nil {
		t.Fatal(err)
	}
	if err := node.Apply(rfq); err != nil {
		t.Fatal(err)
	}
	var scdbBidders []*keys.KeyPair
	var scdbAssets, scdbBids []*txn.Transaction
	for i := 0; i < bidders; i++ {
		kp := keys.MustGenerate()
		scdbBidders = append(scdbBidders, kp)
		asset := txn.NewCreate(kp.PublicBase58(), map[string]any{"capabilities": []any{"cnc"}, "i": i}, 1, nil)
		if err := txn.Sign(asset, kp); err != nil {
			t.Fatal(err)
		}
		if err := node.Apply(asset); err != nil {
			t.Fatal(err)
		}
		scdbAssets = append(scdbAssets, asset)
		bid := txn.NewBid(kp.PublicBase58(), asset.ID,
			txn.Spend{Ref: txn.OutputRef{TxID: asset.ID, Index: 0}, Owners: []string{kp.PublicBase58()}},
			1, node.Escrow().PublicBase58(), rfq.ID, nil)
		if err := txn.Sign(bid, kp); err != nil {
			t.Fatal(err)
		}
		if err := node.Apply(bid); err != nil {
			t.Fatal(err)
		}
		scdbBids = append(scdbBids, bid)
	}
	var losing []*txn.Transaction
	for i, b := range scdbBids {
		if i != winIdx {
			losing = append(losing, b)
		}
	}
	accept, err := txn.NewAcceptBid(requester.PublicBase58(), node.Escrow().PublicBase58(), rfq.ID, scdbBids[winIdx], losing, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := txn.Sign(accept, node.Escrow(), requester); err != nil {
		t.Fatal(err)
	}
	if err := node.Apply(accept); err != nil {
		t.Fatal(err)
	}
	// Second acceptance attempt must fail.
	accept2, err := txn.NewAcceptBid(requester.PublicBase58(), node.Escrow().PublicBase58(), rfq.ID, scdbBids[0], nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := txn.Sign(accept2, node.Escrow(), requester); err != nil {
		t.Fatal(err)
	}
	scdbSecondAcceptRejected := node.Apply(accept2) != nil

	scdbWinnerHolds := node.State().Balance(requester.PublicBase58(), scdbAssets[winIdx].ID) == 1
	scdbLosersWhole := true
	for i, kp := range scdbBidders {
		if i == winIdx {
			continue
		}
		if node.State().Balance(kp.PublicBase58(), scdbAssets[i].ID) != 1 {
			scdbLosersWhole = false
		}
	}

	// --- ETH-SC side --------------------------------------------------
	src, err := ethchain.ContractSource("marketplace")
	if err != nil {
		t.Fatal(err)
	}
	chain := ethchain.NewChain()
	deploy := &ethchain.Tx{Kind: ethchain.KindDeploy, From: "genesis", Source: src, Contract: "Marketplace", Nonce: 1}
	dr := chain.Execute(deploy)
	if dr.Failed() {
		t.Fatal(dr.Err)
	}
	addr := dr.ContractAddr
	nonce := uint64(1)
	call := func(from, fn string, args ...minisol.Value) *ethchain.Receipt {
		nonce++
		return chain.Execute(&ethchain.Tx{Kind: ethchain.KindCall, From: from, To: addr, Fn: fn,
			Args: args, GasLimit: 1 << 40, Nonce: nonce})
	}
	capsArr := &minisol.Array{Elems: []minisol.Value{minisol.Str("cnc")}}
	if r := call("buyer", "createRfq", capsArr); r.Failed() {
		t.Fatal(r.Err)
	}
	for i := 0; i < bidders; i++ {
		if r := call(fmt.Sprintf("sup%d", i), "createAsset", capsArr); r.Failed() {
			t.Fatal(r.Err)
		}
	}
	for i := 0; i < bidders; i++ {
		if r := call(fmt.Sprintf("sup%d", i), "createBid", minisol.Int(1), minisol.Int(int64(i+1))); r.Failed() {
			t.Fatal(r.Err)
		}
	}
	if r := call("buyer", "acceptBid", minisol.Int(1), minisol.Int(int64(winIdx+1))); r.Failed() {
		t.Fatal(r.Err)
	}
	ethSecondAcceptRejected := call("buyer", "acceptBid", minisol.Int(1), minisol.Int(1)).Failed()

	ethWinnerHolds := call("x", "assetOwner", minisol.Int(int64(winIdx+1))).Ret == minisol.Addr("buyer")
	ethLosersWhole := true
	for i := 0; i < bidders; i++ {
		if i == winIdx {
			continue
		}
		owner := call("x", "assetOwner", minisol.Int(int64(i+1))).Ret
		locked := call("x", "assetLocked", minisol.Int(int64(i+1))).Ret
		if owner != minisol.Addr(fmt.Sprintf("sup%d", i)) || locked != minisol.Bool(false) {
			ethLosersWhole = false
		}
	}

	// --- The two systems must agree -----------------------------------
	if !scdbWinnerHolds || !ethWinnerHolds {
		t.Errorf("winner outcome: scdb=%v eth=%v", scdbWinnerHolds, ethWinnerHolds)
	}
	if !scdbLosersWhole || !ethLosersWhole {
		t.Errorf("loser refunds: scdb=%v eth=%v", scdbLosersWhole, ethLosersWhole)
	}
	if !scdbSecondAcceptRejected || !ethSecondAcceptRejected {
		t.Errorf("double accept: scdb rejected=%v eth rejected=%v",
			scdbSecondAcceptRejected, ethSecondAcceptRejected)
	}
}

// TestServerAcceptsCustomTypeEndToEnd registers a brand-new operation
// on a running server node — schema and semantics — and validates a
// transaction of that type through the full receiver path, proving the
// extensibility story at the node level.
func TestServerAcceptsCustomTypeEndToEnd(t *testing.T) {
	node := server.NewNode(server.Config{ReservedSeed: 5})
	// NOTARIZE: like CREATE but requires a non-empty "document" hash in
	// the asset data. One schema + one condition set, no server changes.
	schemaSrc := `
type: object
required: [id, operation, asset, outputs, inputs, version]
properties:
  operation:
    enum: [NOTARIZE]
  asset:
    type: object
    required: [data]
    properties:
      data:
        type: object
        required: [document]
`
	compiled, err := schema.CompileYAML(schemaSrc)
	if err != nil {
		t.Fatal(err)
	}
	node.Schemas().Register("NOTARIZE", compiled)
	node.Types().Register(&txtype.Type{
		Op: "NOTARIZE",
		Conditions: []txtype.Condition{
			{Name: "NOTARIZE.1", Doc: "all fulfillments verify", Check: func(_ *txtype.Context, t *txn.Transaction) error {
				return txn.VerifyFulfillments(t)
			}},
			{Name: "NOTARIZE.2", Doc: "not a duplicate", Check: func(ctx *txtype.Context, t *txn.Transaction) error {
				if ctx.State.IsCommitted(t.ID) {
					return &txn.DuplicateTransactionError{TxID: t.ID, Reason: "already committed"}
				}
				return nil
			}},
		},
	})

	kp := keys.MustGenerate()
	tx := txn.NewCreate(kp.PublicBase58(), map[string]any{"document": "abc123"}, 1, nil)
	tx.Operation = "NOTARIZE"
	if err := txn.Sign(tx, kp); err != nil {
		t.Fatal(err)
	}
	if err := node.Apply(tx); err != nil {
		t.Fatalf("custom type rejected: %v", err)
	}
	// Missing document: schema rejects.
	bad := txn.NewCreate(kp.PublicBase58(), map[string]any{"other": 1}, 1, nil)
	bad.Operation = "NOTARIZE"
	if err := txn.Sign(bad, kp); err != nil {
		t.Fatal(err)
	}
	if err := node.Apply(bad); err == nil {
		t.Fatal("schema should reject document-less NOTARIZE")
	}
}
